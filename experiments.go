package govhost

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/report"
)

func clusterCut(root *cluster.Node, k int) [][]string { return cluster.Cut(root, k) }

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	ID    string // e.g. "fig2", "table5"
	Title string
	Run   func(s *Study) string
}

// Experiments returns the registry of every reproducible table and
// figure, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Fig. 1 — majority third-party vs Govt&SOE map", (*Study).reportFig1},
		{"table1", "Table 1 / §4.2 — classification-method yields", (*Study).reportTable1},
		{"table2", "Table 2 — serving-infrastructure record example", (*Study).reportTable2},
		{"table3", "Table 3 — dataset statistics", (*Study).reportTable3},
		{"table4", "Table 4 — geolocation validation", (*Study).reportTable4},
		{"fig2", "Fig. 2 — global category shares", (*Study).reportFig2},
		{"fig3", "Fig. 3 — governments vs top sites (categories)", (*Study).reportFig3},
		{"fig4", "Fig. 4 — regional category shares", (*Study).reportFig4},
		{"fig5", "Fig. 5 — country-strategy clustering", (*Study).reportFig5},
		{"fig6", "Fig. 6 — domestic vs international", (*Study).reportFig6},
		{"fig7", "Fig. 7 — governments vs top sites (domestic)", (*Study).reportFig7},
		{"fig8", "Fig. 8 — regional domestic vs international", (*Study).reportFig8},
		{"fig9", "Fig. 9 — cross-border dependencies", (*Study).reportFig9},
		{"table5", "Table 5 — in-region cross-border share", (*Study).reportTable5},
		{"table6", "Table 6 — government-vs-topsites country subset", (*Study).reportTable6},
		{"fig10", "Fig. 10 — global-provider footprints", (*Study).reportFig10},
		{"fig11", "Fig. 11 — HHI diversification", (*Study).reportFig11},
		{"fig12", "Fig. 12 — explanatory OLS model", (*Study).reportFig12},
		{"table7", "Table 7 — variance inflation factors", (*Study).reportTable7},
		{"table8", "Table 8 — per-country dataset statistics", (*Study).reportTable8},
		{"table9", "Table 9 — country panel", (*Study).reportTable9},
		{"findings", "Key findings — headline numbers", (*Study).reportFindings},
		{"coverage", "Coverage — fetch failure taxonomy and degradation ledger", (*Study).reportCoverage},
		{"metrics", "Metrics — per-stage pipeline counters and timings", (*Study).reportMetrics},
		{"ext-https", "Extension — HTTPS validity (Singanamalla et al.)", (*Study).reportExtHTTPS},
		{"ext-weight", "Extension — page weight vs development (Habib et al.)", (*Study).reportExtWeight},
	}
}

// Report renders one experiment by ID ("fig2", "table5", …), or a
// per-country drill-down for IDs of the form "country:UY".
func (s *Study) Report(id string) string {
	if code, ok := strings.CutPrefix(id, "country:"); ok {
		return report.Section("Country drill-down — "+strings.ToUpper(code),
			s.CountryReport(strings.ToUpper(code)))
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return report.Section(e.Title, e.Run(s))
		}
	}
	return fmt.Sprintf("unknown experiment %q\n", id)
}

// ReportAll renders every experiment.
func (s *Study) ReportAll() string {
	var b strings.Builder
	for _, e := range Experiments() {
		b.WriteString(report.Section(e.Title, e.Run(s)))
		b.WriteString("\n")
	}
	return b.String()
}
