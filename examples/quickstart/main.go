// Quickstart: run a small government-hosting study end to end and
// print the headline findings next to the paper's published numbers.
//
//	go run ./examples/quickstart
//
//lint:deterministic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	govhost "repro"
)

func main() {
	//lint:ignore nondeterminism -- wall-time suffix of the progress line; the printed findings are seed-deterministic
	start := time.Now()

	// A study over eight countries spanning every strategy archetype,
	// at 5 % of the paper's estate size. Everything is deterministic
	// in the seed.
	study, err := govhost.Run(context.Background(), govhost.Config{
		Seed:      42,
		Scale:     0.05,
		Countries: []string{"US", "MX", "BR", "DE", "UY", "IN", "JP", "FR"},
	})
	if err != nil {
		log.Fatal(err)
	}

	st := study.Stats()
	fmt.Printf("crawled %d URLs on %d hostnames, served by %d addresses on %d networks (%.1fs)\n\n",
		//lint:ignore nondeterminism -- wall-time suffix of the progress line; the printed findings are seed-deterministic
		st.UniqueURLs, st.UniqueHostnames, st.UniqueIPs, st.ASes, time.Since(start).Seconds())

	// Fig. 2 for the subset: who serves government content?
	shares := study.GlobalShares()
	fmt.Println("hosting mix by URLs (subset):")
	for _, cat := range []govhost.Category{govhost.GovtSOE, govhost.Local3P, govhost.Global3P, govhost.Region3P} {
		fmt.Printf("  %-12s %5.1f%% of URLs, %5.1f%% of bytes\n",
			cat, 100*shares.URLs[cat], 100*shares.Bytes[cat])
	}

	// Fig. 6: how much stays home?
	split := study.DomesticSplit()
	fmt.Printf("\nserved from domestic servers:        %5.1f%%  (paper: 87%%)\n", 100*split.GeoDomestic)
	fmt.Printf("domestically registered organizations: %5.1f%%  (paper: 77%%)\n", 100*split.RegDomestic)

	// One bilateral relationship the paper highlights.
	fmt.Printf("\nMexico's URLs served from the US:    %5.1f%%  (paper: 79.2%%)\n",
		100*study.FlowShare(govhost.ByLocation, "MX", "US"))

	// The same thing as a ready-made paper-vs-measured report.
	fmt.Println()
	fmt.Print(study.Report("findings"))
}
