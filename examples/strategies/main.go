// Strategies reproduces §5.3: each country's hosting signature is a
// four-dimensional vector of category shares, and Ward-linkage
// hierarchical clustering groups countries into three branches — one
// per principal hosting source. The example prints the branches and
// checks the paper's anecdotes (the Southern Cone splits three ways;
// Brazil, Vietnam and Russia cluster together).
//
//	go run ./examples/strategies
//
//lint:deterministic
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	govhost "repro"
)

func main() {
	study, err := govhost.Run(context.Background(), govhost.Config{
		Seed:  42,
		Scale: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, byBytes := range []bool{false, true} {
		label := "URL"
		if byBytes {
			label = "byte"
		}
		branches, err := study.ClusterBranches(byBytes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("three-branch cut of the %s-signature dendrogram (Fig. 5):\n", label)
		for i, br := range branches {
			fmt.Printf("  branch %d (%2d countries): %s\n", i+1, len(br), strings.Join(br, " "))
		}
		fmt.Println()
	}

	// The Fig. 1 world map as two tallies.
	majority := study.MajorityThirdParty()
	var third, gov int
	for _, tp := range majority {
		if tp {
			third++
		} else {
			gov++
		}
	}
	fmt.Printf("majority third-party (Fig. 1 brown): %d countries\n", third)
	fmt.Printf("majority Govt&SOE    (Fig. 1 purple): %d countries\n", gov)

	// §5.3's Southern Cone anecdote, straight from the signatures.
	fmt.Println("\nthe Southern Cone splits three ways (§5.3):")
	shares := study.CountryShares()
	for _, code := range []string{"AR", "BR", "CL"} {
		s := shares[code]
		dom, val := govhost.GovtSOE, s.URLs[govhost.GovtSOE]
		for _, cat := range []govhost.Category{govhost.Local3P, govhost.Global3P, govhost.Region3P} {
			if s.URLs[cat] > val {
				dom, val = cat, s.URLs[cat]
			}
		}
		fmt.Printf("  %s leans on %-12s (%4.1f%% of URLs)\n", code, dom, 100*val)
	}
}
