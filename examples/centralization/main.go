// Centralization reproduces §7: which global providers serve how many
// governments (Fig. 10), how concentrated each country's serving
// infrastructure is (Fig. 11, Herfindahl–Hirschman Index), and the
// diversification-vs-strategy finding: governments on their own
// infrastructure depend on a single network far more often than
// governments on global providers.
//
//	go run ./examples/centralization
//
//lint:deterministic
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	govhost "repro"
)

func main() {
	study, err := govhost.Run(context.Background(), govhost.Config{
		Seed:  42,
		Scale: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 10: provider footprints.
	fmt.Println("global providers by number of governments served (Fig. 10):")
	provs := study.GlobalProviders()
	max := 1
	if len(provs) > 0 {
		max = provs[0].Countries
	}
	for i, p := range provs {
		if i == 12 {
			break
		}
		bar := strings.Repeat("#", p.Countries*30/max)
		fmt.Printf("  %-28s AS%-7d %2d %s\n", p.Org, p.ASN, p.Countries, bar)
	}
	fmt.Println("  (paper: Cloudflare 49, Microsoft 31, Amazon 28)")

	// Fig. 11: concentration by dominant strategy.
	divs := study.Diversification()
	type group struct {
		n, single int
		hhiSum    float64
	}
	groups := map[govhost.Category]*group{}
	for _, d := range divs {
		g := groups[d.Dominant]
		if g == nil {
			g = &group{}
			groups[d.Dominant] = g
		}
		g.n++
		g.hhiSum += d.HHIBytes
		if d.TopNetShare > 0.5 {
			g.single++
		}
	}
	fmt.Println("\nprovider concentration by dominant byte source (Fig. 11 / §7.2):")
	for _, cat := range []govhost.Category{govhost.GovtSOE, govhost.Local3P, govhost.Global3P} {
		g := groups[cat]
		if g == nil || g.n == 0 {
			continue
		}
		fmt.Printf("  %-12s %2d countries, mean byte HHI %.2f, %4.0f%% rely on a single network\n",
			cat, g.n, g.hhiSum/float64(g.n), 100*float64(g.single)/float64(g.n))
	}
	fmt.Println("  (paper: 63% of Govt&SOE countries vs 32% of 3P-Global countries")
	fmt.Println("   serve over half their bytes from one network)")

	// The most concentrated countries, for flavour.
	fmt.Println("\nmost single-network-dependent countries:")
	top := append([]govhost.Diversification(nil), divs...)
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].TopNetShare > top[i].TopNetShare {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	for i := 0; i < 8 && i < len(top); i++ {
		d := top[i]
		fmt.Printf("  %s: top network holds %4.1f%% of bytes (dominant source: %s)\n",
			d.Country, 100*d.TopNetShare, d.Dominant)
	}
}
