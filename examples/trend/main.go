// Trend runs the longitudinal extension: the same world measured now
// and after five years of the consolidation trend the paper's related
// work documents (hosting shifting steadily onto global third-party
// providers). Compare Kumar et al.'s observation that third-party
// dependencies keep increasing year over year.
//
//	go run ./examples/trend
//
//lint:deterministic
package main

import (
	"context"
	"fmt"
	"log"

	govhost "repro"
)

func main() {
	base := govhost.Config{Seed: 42, Scale: 0.05, SkipTopsites: true}

	now, err := govhost.Run(context.Background(), base)
	if err != nil {
		log.Fatal(err)
	}
	later := base
	later.TrendYears = 5
	future, err := govhost.Run(context.Background(), later)
	if err != nil {
		log.Fatal(err)
	}

	a, b := now.GlobalShares(), future.GlobalShares()
	fmt.Println("global hosting mix, today vs +5 years of consolidation:")
	for _, cat := range []govhost.Category{govhost.GovtSOE, govhost.Local3P, govhost.Global3P, govhost.Region3P} {
		fmt.Printf("  %-12s URLs %5.1f%% -> %5.1f%%   bytes %5.1f%% -> %5.1f%%\n",
			cat, 100*a.URLs[cat], 100*b.URLs[cat], 100*a.Bytes[cat], 100*b.Bytes[cat])
	}

	pa := now.GlobalProviders()
	pb := future.GlobalProviders()
	if len(pa) > 0 && len(pb) > 0 {
		fmt.Printf("\nleading provider footprint: %d -> %d countries (%s)\n",
			pa[0].Countries, pb[0].Countries, pb[0].Org)
	}

	da, db := now.DomesticSplit(), future.DomesticSplit()
	fmt.Printf("domestically registered URLs: %5.1f%% -> %5.1f%%\n",
		100*da.RegDomestic, 100*db.RegDomestic)
	fmt.Println("\nas the related work predicts, consolidation pushes content onto")
	fmt.Println("foreign-registered global platforms even while serving locations")
	fmt.Println("stay largely domestic (anycast and in-country data centres).")
	fmt.Printf("served domestically: %5.1f%% -> %5.1f%%\n",
		100*da.GeoDomestic, 100*db.GeoDomestic)
}
