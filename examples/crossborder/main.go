// Crossborder walks through §6 of the paper: where are government URLs
// registered and served, which dependencies cross borders, how much
// stays in-region (Table 5), and how well EU members comply with GDPR.
//
//	go run ./examples/crossborder
//
//lint:deterministic
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	govhost "repro"
)

func main() {
	// Cross-border structure needs the whole panel; run it at a
	// moderate scale.
	study, err := govhost.Run(context.Background(), govhost.Config{
		Seed:  42,
		Scale: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 8: regional domestic/international splits.
	fmt.Println("regional shares of domestically served government URLs:")
	regional := study.RegionalDomesticSplit()
	regions := make([]string, 0, len(regional))
	for r := range regional {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool {
		return regional[regions[i]].GeoDomestic < regional[regions[j]].GeoDomestic
	})
	for _, r := range regions {
		sp := regional[r]
		fmt.Printf("  %-5s served domestically %5.1f%%, registered domestically %5.1f%%\n",
			r, 100*sp.GeoDomestic, 100*sp.RegDomestic)
	}

	// Fig. 9: the largest cross-border location flows.
	fmt.Println("\nlargest cross-border location dependencies:")
	flows := study.CrossBorderFlows(govhost.ByLocation)
	sort.Slice(flows, func(i, j int) bool { return flows[i].URLs > flows[j].URLs })
	for i, f := range flows {
		if i == 10 {
			break
		}
		fmt.Printf("  %s -> %s: %5.1f%% of %s's URLs (%d URLs)\n",
			f.Src, f.Dst, 100*f.Share, f.Src, f.URLs)
	}

	// Table 5: how much of the dependency stays in-region.
	fmt.Println("\nshare of cross-border dependencies staying in-region (Table 5):")
	inRegion := study.InRegionDependency()
	for _, r := range []string{"ECA", "EAP", "NA", "LAC", "SSA", "MENA", "SA"} {
		fmt.Printf("  %-5s %5.1f%%\n", r, 100*inRegion[r])
	}

	// §6.3 bilateral findings.
	fmt.Println("\nbilateral relationships the paper highlights:")
	for _, pair := range [][2]string{{"MX", "US"}, {"CN", "JP"}, {"NZ", "AU"}, {"MA", "FR"}, {"FR", "NC"}, {"BR", "US"}} {
		fmt.Printf("  %s -> %s: %5.1f%%\n", pair[0], pair[1],
			100*study.FlowShare(govhost.ByLocation, pair[0], pair[1]))
	}

	// GDPR compliance of EU-member government hosting.
	frac, n := study.GDPRCompliance()
	fmt.Printf("\nEU government URLs served inside the EU: %.1f%% of %d (paper: 98.3%%)\n",
		100*frac, n)
}
