package govhost

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// Sharding configures a supervised multi-process run: n worker
// processes each collect the countries whose index in the sorted study
// panel is congruent to their shard number, checkpointing into the
// shared Config.CheckpointDir; a final in-process assembly pass merges
// the checkpoints into a Study whose exports are byte-identical to an
// uninterrupted single-process run of the same Config.
type Sharding struct {
	// Shards is the number of worker processes to supervise.
	Shards int
	// MaxRestarts caps restarts per crashed shard (0 = default of 3,
	// negative = never restart). A shard that exhausts the budget does
	// not abort the run: its uncollected countries become typed failure
	// rows in the assembled partial dataset.
	MaxRestarts int
	// BackoffBase and BackoffCap bound the seed-jittered exponential
	// restart delay (defaults 250ms and 5s).
	BackoffBase, BackoffCap time.Duration
	// Worker builds the worker process for one shard — typically the
	// running binary re-executed with a -shard i/n flag. The command
	// must honour ctx cancellation (exec.CommandContext does).
	Worker func(ctx context.Context, shard, shards int) *exec.Cmd
	// Log, when set, receives one line per worker crash, restart and
	// exhaustion.
	Log io.Writer
}

// RunShardWorker executes one shard's share of the study in-process:
// the worker collects only its owned countries, skips the topsites
// baseline (the assembly pass runs it), and persists every finished
// country into cfg.CheckpointDir. It returns how many countries the
// worker holds finished checkpoints for — its own plus any it found
// already stored on resume.
func RunShardWorker(ctx context.Context, cfg Config, shardIndex, shards int) (int, error) {
	ccfg := cfg.toCore()
	ccfg.ShardIndex = shardIndex
	ccfg.ShardCount = shards
	env := core.NewEnv(ccfg)
	ds, err := env.Run(ctx)
	if err != nil {
		return 0, fmt.Errorf("govhost: shard %d/%d: %w", shardIndex, shards, err)
	}
	return len(ds.PerCountry), nil
}

// RunSharded validates the checkpoint directory, supervises sh.Shards
// worker processes to completion (restarting crashes with capped
// backoff), then assembles the checkpoints into a Study. Shards that
// exhaust their restart budget degrade the run instead of failing it:
// their countries appear as Failed rows with a typed reason, and the
// per-shard outcomes report what happened. The error is non-nil only
// for configuration mistakes, cancellation, or an assembly failure.
func RunSharded(ctx context.Context, cfg Config, sh Sharding) (*Study, []shard.Outcome, error) {
	if cfg.CheckpointDir == "" {
		return nil, nil, errors.New("govhost: sharded runs need Config.CheckpointDir")
	}
	if sh.Shards <= 0 {
		return nil, nil, errors.New("govhost: Sharding.Shards must be positive")
	}
	if sh.Worker == nil {
		return nil, nil, errors.New("govhost: Sharding.Worker must build the shard worker command")
	}

	// Validate the directory once up front — a stale manifest or a live
	// lease should fail the launch with one clear error, not n worker
	// crash loops.
	ccfg := cfg.toCore()
	manifest := core.StudyManifest(ccfg)
	if _, _, err := checkpoint.Open(cfg.CheckpointDir, manifest, checkpoint.Options{
		Resume:       cfg.Resume,
		ValidateOnly: true,
	}); err != nil {
		return nil, nil, fmt.Errorf("govhost: %w", err)
	}

	var sm metrics.ShardMetrics
	sup := &shard.Supervisor{
		Shards:      sh.Shards,
		MaxRestarts: sh.MaxRestarts,
		BackoffBase: sh.BackoffBase,
		BackoffCap:  sh.BackoffCap,
		Seed:        manifest.Seed,
		Command:     sh.Worker,
		Metrics:     &sm,
		Log:         sh.Log,
	}
	outcomes, err := sup.Run(ctx)
	if err != nil {
		return nil, outcomes, fmt.Errorf("govhost: %w", err)
	}

	// Countries owned by exhausted shards that never reached a
	// checkpoint become typed failure rows; any the dead shard did
	// store load normally — stored work always wins.
	var failed []string
	for _, o := range outcomes {
		if o.Err != nil {
			failed = append(failed, shard.Owned(manifest.Countries, o.Shard, sh.Shards)...)
		}
	}

	acfg := ccfg
	acfg.Resume = true
	acfg.FailCountries = failed
	env := core.NewEnv(acfg)
	ds, err := env.Run(ctx)
	if err != nil {
		return nil, outcomes, fmt.Errorf("govhost: assembly: %w", err)
	}
	// Fold the supervision tallies into the assembled study's runtime
	// metrics so one snapshot tells the whole story.
	if reg := env.Metrics(); reg != nil {
		reg.Shard.Restarts.Add(sm.Restarts.Load())
		reg.Shard.Exhausted.Add(sm.Exhausted.Load())
	}
	return &Study{cfg: cfg, env: env, ds: ds}, outcomes, nil
}

// FailedCountries returns the sorted codes of countries whose
// collection failed wholesale — a vantage that never came up, or a
// shard that exhausted its restart budget. Empty for a fully collected
// study. The affected countries carry no records; everything else in
// the study is complete.
func (s *Study) FailedCountries() []string {
	return append([]string(nil), s.ds.FailedCountries...)
}
