package govhost

import (
	"context"
	"fmt"
	"os"

	"repro/internal/serve"
)

// NewServeSnapshot freezes a completed study into a serving snapshot
// for the govserve daemon. The study's AnalysisWorkers knob shapes
// how many goroutines the index build uses; the snapshot bytes are
// identical at any setting.
func NewServeSnapshot(st *Study, desc string) (*serve.Snapshot, error) {
	return serve.NewSnapshotWorkers(st.ds, desc, st.cfg.AnalysisWorkers)
}

// ServeSnapshotFromJSONL loads an exported study file into a serving
// snapshot. The snapshot's version is a pure function of the file's
// canonical export bytes, so a client holding the same file computes
// the same version the daemon will claim.
func ServeSnapshotFromJSONL(path string) (*serve.Snapshot, error) {
	return ServeSnapshotFromJSONLWorkers(path, 0)
}

// ServeSnapshotFromJSONLWorkers is ServeSnapshotFromJSONL with an
// explicit index-build worker count (0 picks the default of 8). Any
// value yields byte-identical snapshots; the knob trades only the
// build's wall-clock time, which is the critical path of daemon
// startup and /admin/reload.
func ServeSnapshotFromJSONLWorkers(path string, workers int) (*serve.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("govhost: %w", err)
	}
	defer f.Close()
	st, err := Load(f)
	if err != nil {
		return nil, err
	}
	return serve.NewSnapshotWorkers(st.ds, "jsonl:"+path, workers)
}

// ServeSnapshotFromCheckpoint resumes cfg's study from its checkpoint
// directory — completing any unfinished countries — and freezes the
// result. A directory whose manifest diverges from cfg surfaces the
// typed checkpoint mismatch, which the daemon maps to 409.
func ServeSnapshotFromCheckpoint(ctx context.Context, cfg Config) (*serve.Snapshot, error) {
	cfg.Resume = true
	st, err := Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return serve.NewSnapshotWorkers(st.ds, "checkpoint:"+cfg.CheckpointDir, cfg.AnalysisWorkers)
}

// ServeReloader wires the daemon's /admin/reload (and SIGHUP) to the
// study loaders. cfg supplies the manifest-relevant knobs a
// checkpoint reload must match; JSONL reloads ignore it.
func ServeReloader(cfg Config) serve.ReloadFunc {
	return func(ctx context.Context, src serve.Source) (*serve.Snapshot, error) {
		switch src.Kind {
		case "jsonl":
			return ServeSnapshotFromJSONLWorkers(src.Path, cfg.AnalysisWorkers)
		case "checkpoint":
			c := cfg
			c.CheckpointDir = src.Path
			return ServeSnapshotFromCheckpoint(ctx, c)
		}
		return nil, fmt.Errorf("govhost: unknown reload source kind %q", src.Kind)
	}
}
