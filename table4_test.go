package govhost

import (
	"context"
	"net/netip"
	"testing"

	"repro/internal/dataset"
	"repro/internal/probing"
)

// TestGeoValidationStatsCountsUniqueAddresses locks the Table 4
// accounting: a unicast address serving several governments carries one
// verdict, so it must count once; anycast verification is per vantage,
// so the same anycast address counts once per country (and duplicates
// within a country still collapse).
func TestGeoValidationStatsCountsUniqueAddresses(t *testing.T) {
	uni := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	anyc := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	rec := func(country string, ip netip.Addr, anycast bool, method probing.Method) dataset.URLRecord {
		return dataset.URLRecord{
			Country: country, IP: ip, Anycast: anycast,
			ServeCountry: country, GeoMethod: string(method),
		}
	}
	ds := &dataset.Dataset{Records: []dataset.URLRecord{
		// The same unicast address crawled from three countries, twice in DE.
		rec("DE", uni, false, probing.MethodAP),
		rec("DE", uni, false, probing.MethodAP),
		rec("FR", uni, false, probing.MethodAP),
		rec("UY", uni, false, probing.MethodAP),
		// The same anycast address verified from two vantages, twice in FR.
		rec("DE", anyc, true, probing.MethodAP),
		rec("FR", anyc, true, probing.MethodAP),
		rec("FR", anyc, true, probing.MethodAP),
	}}
	st := geoValidationStats(ds)
	if st.UnicastAP != 1 {
		t.Errorf("UnicastAP = %d, want 1 (one verdict per unicast address)", st.UnicastAP)
	}
	if st.AnycastAP != 2 {
		t.Errorf("AnycastAP = %d, want 2 (one verdict per vantage per anycast address)", st.AnycastAP)
	}
}

// TestGeoValidationStatsOnStudy runs a small crawl whose countries
// share hosting (duplicate-host URL sets resolve to shared provider
// addresses) and checks the invariant on the real dataset: the unicast
// rows of Table 4 never exceed the number of distinct unicast
// addresses, even when several countries observed the same address.
func TestGeoValidationStatsOnStudy(t *testing.T) {
	study, err := Run(context.Background(), Config{
		Scale: 0.05, Countries: []string{"DE", "NL", "PL", "GB", "BE", "SE"},
		SkipTopsites: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	distinctUni := map[netip.Addr]bool{}
	crossCountryDup := false
	countries := map[netip.Addr]string{}
	for i := range study.ds.Records {
		r := &study.ds.Records[i]
		if r.Anycast {
			continue
		}
		distinctUni[r.IP] = true
		if c, ok := countries[r.IP]; ok && c != r.Country {
			crossCountryDup = true
		}
		countries[r.IP] = r.Country
	}
	if !crossCountryDup {
		t.Fatal("fixture lost its cross-country duplicate: pick countries that share unicast hosting")
	}
	st := geoValidationStats(study.ds)
	got := st.UnicastAP + st.UnicastMG + st.UnicastUR + st.UnicastEX
	if got != len(distinctUni) {
		t.Errorf("unicast verdicts = %d, want %d (one per distinct address)", got, len(distinctUni))
	}
}
