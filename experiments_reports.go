package govhost

// This file implements the per-experiment report renderers. Every
// renderer prints the paper's published value next to the measured one
// so drift is visible at a glance; absolute counts are additionally
// rescaled by 1/Scale where the paper reports raw sizes.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/fetch"
	"repro/internal/probing"
	"repro/internal/report"
	"repro/internal/webgen"
	"repro/internal/world"
)

var regionOrder = []world.Region{world.SSA, world.ECA, world.NA, world.LAC, world.MENA, world.EAP, world.SA}

func (s *Study) reportFig1() string {
	entries := s.index().MajorityMap()
	var brown, purple []string
	for _, e := range entries {
		if e.ThirdPty {
			brown = append(brown, e.Country)
		} else {
			purple = append(purple, e.Country)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Majority third-party (brown, %d countries):\n  %s\n",
		len(brown), strings.Join(brown, " "))
	fmt.Fprintf(&b, "Majority Govt&SOE (purple, %d countries):\n  %s\n",
		len(purple), strings.Join(purple, " "))
	b.WriteString(report.PaperVsMeasured("countries with 3P byte majority",
		"~42 of 61", fmt.Sprintf("%d of %d", len(brown), len(entries))))
	return b.String()
}

func (s *Study) reportTable1() string {
	tld, domain, san := s.MethodYields()
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("internal URLs via government TLDs", "27.6%", report.Pct(tld)) + "\n")
	b.WriteString(report.PaperVsMeasured("internal URLs via domain matching", "72.1%", report.Pct(domain)) + "\n")
	b.WriteString(report.PaperVsMeasured("internal URLs via SANs", "0.3%", report.Pct(san)) + "\n")
	fmt.Fprintf(&b, "  discarded non-government URLs: %d\n", s.ds.Discarded)
	return b.String()
}

func (s *Study) reportTable2() string {
	// The paper's example is www.gub.uy on ANTEL (AS6057). Print the
	// record of a Uruguayan government URL hosted on a Govt&SOE
	// network, preferring the flavour ASN.
	for i := range s.ds.Records {
		r := &s.ds.Records[i]
		if r.Country != "UY" || r.Category != GovtSOE {
			continue
		}
		t := &report.Table{Header: []string{"Field", "Value"}}
		t.AddRow("URL", r.URL)
		t.AddRow("IP address", r.IP.String())
		t.AddRow("ASN", fmt.Sprint(r.ASN))
		t.AddRow("Organization", r.Org)
		t.AddRow("Registration", r.RegCountry)
		t.AddRow("Geolocation", r.ServeCountry)
		return t.String()
	}
	return "no Uruguayan Govt&SOE record in this run (increase Scale)\n"
}

func (s *Study) reportTable3() string {
	st := s.Stats()
	scale := s.ds.Scale
	up := func(v int) string {
		return fmt.Sprintf("%d (×1/scale ≈ %.0f)", v, float64(v)/scale)
	}
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("landing URLs", "15,878", up(st.LandingURLs)) + "\n")
	b.WriteString(report.PaperVsMeasured("internal URLs", "1,017,865", up(st.InternalURLs)) + "\n")
	b.WriteString(report.PaperVsMeasured("unique hostnames", "13,483", up(st.UniqueHostnames)) + "\n")
	b.WriteString(report.PaperVsMeasured("serving ASes", "950", fmt.Sprint(st.ASes)) + "\n")
	b.WriteString(report.PaperVsMeasured("government ASes", "347 (36.5%)",
		fmt.Sprintf("%d (%.1f%%)", st.GovASes, 100*float64(st.GovASes)/float64(max(st.ASes, 1)))) + "\n")
	b.WriteString(report.PaperVsMeasured("unique IP addresses", "4,286", up(st.UniqueIPs)) + "\n")
	b.WriteString(report.PaperVsMeasured("anycast addresses", "433 (10.1%)",
		fmt.Sprintf("%d (%.1f%%)", st.AnycastIPs, 100*float64(st.AnycastIPs)/float64(max(st.UniqueIPs, 1)))) + "\n")
	b.WriteString(report.PaperVsMeasured("countries with servers located", "68", fmt.Sprint(st.ServerCountries)) + "\n")
	return b.String()
}

// geoValidationStats folds the dataset's verdicts into Table 4's
// unique-address accounting; the fold itself lives in analysis so the
// serving daemon shares it.
func geoValidationStats(ds *dataset.Dataset) probing.Stats {
	return analysis.GeoValidation(ds)
}

func (s *Study) reportTable4() string {
	st := geoValidationStats(s.ds)
	uniAP, uniMG, uniUR, anyAP, anyUR := st.Fractions()
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("unicast validated by active probing", "0.41", report.Frac(uniAP)) + "\n")
	b.WriteString(report.PaperVsMeasured("unicast validated by multistage geolocation", "0.57", report.Frac(uniMG)) + "\n")
	b.WriteString(report.PaperVsMeasured("unicast unresolved", "0.02", report.Frac(uniUR)) + "\n")
	b.WriteString(report.PaperVsMeasured("anycast validated by active probing", "0.83", report.Frac(anyAP)) + "\n")
	b.WriteString(report.PaperVsMeasured("anycast unresolved", "0.17", report.Frac(anyUR)) + "\n")
	return b.String()
}

func categoryRow(m [4]float64) string {
	return fmt.Sprintf("Govt&SOE %.2f | 3P Local %.2f | 3P Global %.2f | 3P Regional %.2f",
		m[GovtSOE], m[Local3P], m[Global3P], m[Region3P])
}

func (s *Study) reportFig2() string {
	sh := s.GlobalShares()
	var b strings.Builder
	b.WriteString("URLs:  " + categoryRow(sh.URLs) + "\n")
	b.WriteString("Bytes: " + categoryRow(sh.Bytes) + "\n")
	b.WriteString(report.PaperVsMeasured("URLs  (Govt/Local/Global/Regional)", "0.39/0.34/0.25/0.03",
		fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", sh.URLs[0], sh.URLs[1], sh.URLs[2], sh.URLs[3])) + "\n")
	b.WriteString(report.PaperVsMeasured("Bytes (Govt/Local/Global/Regional)", "0.47/0.28/0.23/0.02",
		fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", sh.Bytes[0], sh.Bytes[1], sh.Bytes[2], sh.Bytes[3])) + "\n")
	b.WriteString(report.PaperVsMeasured("third-party share of URLs", "62%", report.Pct(1-sh.URLs[GovtSOE])) + "\n")
	b.WriteString(report.PaperVsMeasured("third-party share of bytes", "53%", report.Pct(1-sh.Bytes[GovtSOE])) + "\n")
	return b.String()
}

func (s *Study) reportFig3() string {
	c := s.CompareTopsites()
	var b strings.Builder
	b.WriteString("Government URLs:  " + categoryRow(c.Gov.URLs) + "\n")
	b.WriteString("Government bytes: " + categoryRow(c.Gov.Bytes) + "\n")
	b.WriteString("Top-site URLs  (Self/Local/Global/Regional): " + categoryRow(c.Topsites.URLs) + "\n")
	b.WriteString("Top-site bytes (Self/Local/Global/Regional): " + categoryRow(c.Topsites.Bytes) + "\n")
	b.WriteString(report.PaperVsMeasured("top sites on 3P Global (URLs)", "0.78", report.Frac(c.Topsites.URLs[Global3P])) + "\n")
	b.WriteString(report.PaperVsMeasured("top sites self-hosting (URLs)", "0.18", report.Frac(c.Topsites.URLs[GovtSOE])) + "\n")
	b.WriteString(report.PaperVsMeasured("governments on-premise (URLs, subset)", "0.46", report.Frac(c.Gov.URLs[GovtSOE])) + "\n")
	b.WriteString(report.PaperVsMeasured("governments on-premise (bytes, subset)", "0.69", report.Frac(c.Gov.Bytes[GovtSOE])) + "\n")
	return b.String()
}

func (s *Study) reportFig4() string {
	regional := s.index().RegionalShares()
	paperURLs := map[world.Region]string{
		world.SSA: "0.01/0.46/0.39/0.14", world.ECA: "0.24/0.46/0.28/0.02",
		world.NA: "0.25/0.17/0.58/0.00", world.LAC: "0.41/0.25/0.30/0.03",
		world.MENA: "0.43/0.10/0.47/0.00", world.EAP: "0.48/0.35/0.14/0.02",
		world.SA: "0.80/0.09/0.11/0.01",
	}
	paperBytes := map[world.Region]string{
		world.SSA: "0.00/0.48/0.34/0.17", world.ECA: "0.18/0.61/0.19/0.02",
		world.NA: "0.22/0.10/0.68/0.00", world.LAC: "0.27/0.30/0.41/0.01",
		world.EAP: "0.50/0.26/0.22/0.02", world.MENA: "0.71/0.03/0.26/0.00",
		world.SA: "0.95/0.02/0.03/0.00",
	}
	t := &report.Table{Header: []string{"Region", "URLs paper", "URLs measured", "Bytes paper", "Bytes measured"}}
	for _, reg := range regionOrder {
		sh, ok := regional[reg]
		if !ok {
			continue
		}
		t.AddRow(string(reg), paperURLs[reg],
			fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", sh.URLs[0], sh.URLs[1], sh.URLs[2], sh.URLs[3]),
			paperBytes[reg],
			fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", sh.Bytes[0], sh.Bytes[1], sh.Bytes[2], sh.Bytes[3]))
	}
	return "categories: Govt&SOE/3P Local/3P Global/3P Regional\n" + t.String()
}

func (s *Study) reportFig5() string {
	var b strings.Builder
	for _, byBytes := range []bool{false, true} {
		kind := analysis.SignatureURLs
		label := "URLs"
		if byBytes {
			kind = analysis.SignatureBytes
			label = "Bytes"
		}
		branches, err := analysis.BranchAssignment(s.index(), kind)
		if err != nil {
			fmt.Fprintf(&b, "%s: clustering failed: %v\n", label, err)
			continue
		}
		byCat := map[world.Category][]string{}
		for code, cat := range branches {
			byCat[cat] = append(byCat[cat], code)
		}
		fmt.Fprintf(&b, "%s signature dendrogram, three-branch cut:\n", label)
		for _, cat := range world.Categories {
			if len(byCat[cat]) == 0 {
				continue
			}
			sort.Strings(byCat[cat])
			fmt.Fprintf(&b, "  %-12s (%2d): %s\n", cat, len(byCat[cat]), strings.Join(byCat[cat], " "))
		}
	}
	if branches, err := analysis.BranchAssignment(s.index(), analysis.SignatureURLs); err == nil {
		agree, total := 0, 0
		for code, got := range branches {
			want, ok := world.PaperDominant(code)
			if !ok {
				continue
			}
			total++
			if got == want {
				agree++
			}
		}
		if total > 0 {
			b.WriteString(report.PaperVsMeasured("branch membership agreement with Fig. 5",
				"100% (by definition)", fmt.Sprintf("%d/%d (%.0f%%)", agree, total, 100*float64(agree)/float64(total))) + "\n")
		}
	}
	b.WriteString("paper: three principal branches (Govt&SOE / 3P Local / 3P Global);\n")
	b.WriteString("e.g. BR, VN, RU share the Govt&SOE branch; AR global, BR govt, CL local.\n")
	if root, err := analysis.ClusterCountries(s.index(), analysis.SignatureURLs); err == nil {
		b.WriteString("\nURL-signature dendrogram (Ward heights):\n")
		b.WriteString(cluster.Render(root))
	}
	return b.String()
}

func (s *Study) reportFig6() string {
	sp := s.DomesticSplit()
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("URLs from domestically registered orgs", "0.77", report.Frac(sp.RegDomestic)) + "\n")
	b.WriteString(report.PaperVsMeasured("URLs served from domestic servers", "0.87", report.Frac(sp.GeoDomestic)) + "\n")
	return b.String()
}

func (s *Study) reportFig7() string {
	c := s.CompareTopsites()
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("gov URLs domestically registered (subset)", "0.78", report.Frac(c.GovSplit.RegDomestic)) + "\n")
	b.WriteString(report.PaperVsMeasured("gov URLs served domestically (subset)", "0.89", report.Frac(c.GovSplit.GeoDomestic)) + "\n")
	b.WriteString(report.PaperVsMeasured("top-site URLs domestically registered", "0.11", report.Frac(c.TopsitesSplit.RegDomestic)) + "\n")
	b.WriteString(report.PaperVsMeasured("top-site URLs served domestically", "0.49", report.Frac(c.TopsitesSplit.GeoDomestic)) + "\n")
	return b.String()
}

func (s *Study) reportFig8() string {
	regional := s.index().RegionalDomesticIntl()
	paperReg := map[world.Region]string{
		world.SSA: "0.45", world.MENA: "0.52", world.LAC: "0.66", world.ECA: "0.71",
		world.EAP: "0.87", world.SA: "0.88", world.NA: "0.91",
	}
	paperGeo := map[world.Region]string{
		world.SSA: "0.52", world.MENA: "0.74", world.LAC: "0.80", world.ECA: "0.85",
		world.SA: "0.94", world.EAP: "0.96", world.NA: "0.98",
	}
	t := &report.Table{Header: []string{"Region", "Reg paper", "Reg measured", "Geo paper", "Geo measured"}}
	for _, reg := range regionOrder {
		sp, ok := regional[reg]
		if !ok {
			continue
		}
		t.AddRow(string(reg), paperReg[reg], report.Frac(sp.RegDomestic),
			paperGeo[reg], report.Frac(sp.GeoDomestic))
	}
	return "fraction of government URLs that are domestic\n" + t.String()
}

func (s *Study) reportFig9() string {
	var b strings.Builder
	loc := s.CrossBorderFlows(ByLocation)
	bilateral := []struct {
		src, dst, paper string
	}{
		{"MX", "US", "79.2%"},
		{"CN", "JP", "26.4%"},
		{"NZ", "AU", "40%"},
		{"MA", "FR", "29.8%"},
		{"FR", "NC", "18.0%"},
		{"CR", "US", "49.7%"},
		{"BR", "US", "1.8%"},
	}
	for _, bi := range bilateral {
		var share float64
		for _, f := range loc {
			if f.Src == bi.src && f.Dst == bi.dst {
				share = f.Share
			}
		}
		b.WriteString(report.PaperVsMeasured(
			fmt.Sprintf("%s URLs served from %s", bi.src, bi.dst), bi.paper, report.Pct(share)) + "\n")
	}
	b.WriteString(report.PaperVsMeasured("foreign-served URLs on NA/W-Europe servers", "57%",
		report.Pct(s.index().AbroadInNAWE())) + "\n")
	frac, total := s.GDPRCompliance()
	b.WriteString(report.PaperVsMeasured("EU URLs served inside the EU (GDPR)", "98.3%",
		fmt.Sprintf("%s (n=%d)", report.Pct(frac), total)) + "\n")

	// Top location flows for context.
	b.WriteString("largest location flows (src→dst, share of src URLs):\n")
	sort.Slice(loc, func(i, j int) bool { return loc[i].URLs > loc[j].URLs })
	for i, f := range loc {
		if i >= 12 {
			break
		}
		fmt.Fprintf(&b, "  %s→%s %s (%d URLs)\n", f.Src, f.Dst, report.Pct(f.Share), f.URLs)
	}

	// The circular Sankey of Fig. 9b as a region-to-region matrix:
	// each row shows where a region's cross-border URLs land.
	matrix := s.index().RegionFlowMatrix(s.env.World, analysis.FlowLocation)
	t := &report.Table{Header: append([]string{"src\\dst"}, regionNames()...)}
	for _, src := range regionOrder {
		row := []string{string(src)}
		var total int
		for _, dst := range regionOrder {
			total += matrix[src][dst]
		}
		for _, dst := range regionOrder {
			if total == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.0f%%", 100*float64(matrix[src][dst])/float64(total)))
			}
		}
		t.AddRow(row...)
	}
	b.WriteString("region-to-region server-location flows (row-normalized):\n")
	b.WriteString(t.String())
	return b.String()
}

func regionNames() []string {
	out := make([]string, len(regionOrder))
	for i, r := range regionOrder {
		out[i] = string(r)
	}
	return out
}

func (s *Study) reportTable5() string {
	inRegion := s.InRegionDependency()
	paper := map[string]string{
		"ECA": "94.87", "EAP": "80.79", "NA": "59.89", "LAC": "3.41",
		"SSA": "2.95", "MENA": "0.00", "SA": "0.00",
	}
	t := &report.Table{Header: []string{"Region", "% in-region paper", "% in-region measured"}}
	for _, reg := range []string{"ECA", "EAP", "NA", "LAC", "SSA", "MENA", "SA"} {
		t.AddRow(reg, paper[reg], fmt.Sprintf("%.2f", 100*inRegion[reg]))
	}
	return t.String()
}

func (s *Study) reportFig10() string {
	provs := s.GlobalProviders()
	var b strings.Builder
	t := &report.Table{Header: []string{"Rank", "Organization", "ASN", "Countries", ""}}
	maxC := 1
	if len(provs) > 0 {
		maxC = provs[0].Countries
	}
	for i, p := range provs {
		if i >= 15 {
			break
		}
		t.AddRow(fmt.Sprint(i+1), p.Org, fmt.Sprint(p.ASN), fmt.Sprint(p.Countries),
			report.Bar(float64(p.Countries)/float64(maxC), 24))
	}
	b.WriteString(t.String())
	lead := ProviderFootprint{}
	var second int
	if len(provs) > 0 {
		lead = provs[0]
	}
	if len(provs) > 1 {
		second = provs[1].Countries
	}
	b.WriteString(report.PaperVsMeasured("leading provider", "Cloudflare, 49 countries",
		fmt.Sprintf("%s, %d countries", lead.Org, lead.Countries)) + "\n")
	b.WriteString(report.PaperVsMeasured("lead ≈ 2× runner-up", "49 vs 31",
		fmt.Sprintf("%d vs %d", lead.Countries, second)) + "\n")
	return b.String()
}

func (s *Study) reportFig11() string {
	divs := s.index().Diversify()
	urlGroups, byteGroups := analysis.HHIByGroup(divs)
	var b strings.Builder
	t := &report.Table{Header: []string{"Dominant", "n", "HHI URLs (med)", "HHI Bytes (med)"}}
	for _, cat := range []world.Category{world.CatGovtSOE, world.Cat3PLocal, world.Cat3PGlobal} {
		us, bs := urlGroups[cat], byteGroups[cat]
		if len(us) == 0 {
			continue
		}
		t.AddRow(cat.String(), fmt.Sprint(len(us)),
			fmt.Sprintf("%.2f", median(us)), fmt.Sprintf("%.2f", median(bs)))
	}
	b.WriteString(t.String())
	singles := analysis.SingleNetworkShare(divs)
	b.WriteString(report.PaperVsMeasured("Govt&SOE countries >50% bytes on one network", "63% (12/19)",
		report.Pct(singles[world.CatGovtSOE])) + "\n")
	b.WriteString(report.PaperVsMeasured("3P-Global countries >50% bytes on one network", "32% (8/25)",
		report.Pct(singles[world.Cat3PGlobal])) + "\n")
	return b.String()
}

func (s *Study) reportFig12() string {
	coefs, _, err := s.ExplanatoryModel()
	if err != nil {
		return "model unavailable: " + err.Error() + "\n"
	}
	t := &report.Table{Header: []string{"Coefficient", "Estimate", "95% CI", "p", "sig"}}
	for _, c := range coefs {
		sig := ""
		if c.Significant05 {
			sig = "*"
		}
		t.AddRow(c.Name, fmt.Sprintf("%+.3f", c.Estimate),
			fmt.Sprintf("[%+.3f, %+.3f]", c.CILow, c.CIHigh),
			fmt.Sprintf("%.3f", c.PValue), sig)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("paper: internet_users +0.845*, NRI -0.660*, GDP -0.239*; HDI/IDI/EFI n.s.\n")
	b.WriteString("expected shape: larger Internet populations host more abroad; higher\n")
	b.WriteString("network readiness and GDP host less abroad.\n")
	return b.String()
}

func (s *Study) reportTable7() string {
	_, vifs, err := s.ExplanatoryModel()
	if err != nil {
		return "model unavailable: " + err.Error() + "\n"
	}
	paper := map[string]string{
		"internet_users": "2.06", "HDI": "8.61", "IDI": "4.11",
		"NRI": "9.09", "GDP": "5.00", "econ_freedom": "3.71",
	}
	t := &report.Table{Header: []string{"Feature", "VIF paper", "VIF measured", "< 10?"}}
	for _, name := range []string{"internet_users", "HDI", "IDI", "NRI", "GDP", "econ_freedom"} {
		ok := "yes"
		if vifs[name] >= 10 {
			ok = "NO"
		}
		t.AddRow(name, paper[name], fmt.Sprintf("%.2f", vifs[name]), ok)
	}
	return t.String()
}

func (s *Study) reportTable8() string {
	rows := s.PerCountryStats()
	scale := s.ds.Scale
	t := &report.Table{Header: []string{"Country", "Region",
		"Landing (paper·scale)", "Internal (paper·scale)", "Hostnames (paper·scale)"}}
	for _, row := range rows {
		c := s.env.World.Country(row.Country)
		if c == nil {
			continue
		}
		t.AddRow(row.Country, row.Region,
			fmt.Sprintf("%d (%.0f)", row.LandingURLs, float64(c.Landing)*scale),
			fmt.Sprintf("%d (%.0f)", row.InternalURLs, float64(c.InternalURLs)*scale),
			fmt.Sprintf("%d (%.0f)", row.Hostnames, float64(c.Hostnames)*scale))
	}
	return fmt.Sprintf("scale %.2f of the paper's estate; parentheses show the paper's\nTable 8 value multiplied by the scale\n%s", scale, t.String())
}

func (s *Study) reportTable9() string {
	t := &report.Table{Header: []string{"Country", "Region", "EGDI", "HDI", "IUI", "% world pop", "VPN"}}
	for _, c := range s.env.World.Panel() {
		t.AddRow(c.Code, string(c.Region), fmt.Sprintf("%.3f", c.EGDI),
			fmt.Sprintf("%.3f", c.HDI), fmt.Sprintf("%.0f", c.IUI),
			fmt.Sprintf("%.3f", c.PctWorldPop), c.VPN)
	}
	var pop float64
	for _, c := range s.env.World.Panel() {
		pop += c.PctWorldPop
	}
	return t.String() + fmt.Sprintf("combined share of world Internet population: %.2f%% (paper: 82.70%%)\n", pop)
}

func (s *Study) reportFindings() string {
	sh := s.GlobalShares()
	sp := s.DomesticSplit()
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("3P delivers URLs", "62%", report.Pct(1-sh.URLs[GovtSOE])) + "\n")
	b.WriteString(report.PaperVsMeasured("3P delivers bytes", "53%", report.Pct(1-sh.Bytes[GovtSOE])) + "\n")
	b.WriteString(report.PaperVsMeasured("URLs served domestically", "87%", report.Pct(sp.GeoDomestic)) + "\n")
	b.WriteString(report.PaperVsMeasured("URLs registered domestically", "77%", report.Pct(sp.RegDomestic)) + "\n")
	b.WriteString(report.PaperVsMeasured("intl URLs registered abroad", "23%", report.Pct(1-sp.RegDomestic)) + "\n")
	provs := s.GlobalProviders()
	if len(provs) > 0 {
		b.WriteString(report.PaperVsMeasured("top provider country footprint", "49 (Cloudflare)",
			fmt.Sprintf("%d (%s)", provs[0].Countries, provs[0].Org)) + "\n")
	}
	return b.String()
}

func (s *Study) reportTable6() string {
	var b strings.Builder
	b.WriteString("two countries per region, contrasting digital development (Table 6):\n")
	t := &report.Table{Header: []string{"Region", "Country", "EGDI", "gov URLs", "topsite URLs"}}
	govN := map[string]int{}
	topN := map[string]int{}
	for i := range s.ds.Records {
		govN[s.ds.Records[i].Country]++
	}
	for i := range s.ds.Topsites {
		topN[s.ds.Topsites[i].Country]++
	}
	for _, code := range webgen.ComparisonCountries {
		c := s.env.World.Country(code)
		if c == nil {
			continue
		}
		t.AddRow(string(c.Region), code, fmt.Sprintf("%.3f", c.EGDI),
			fmt.Sprint(govN[code]), fmt.Sprint(topN[code]))
	}
	b.WriteString(t.String())
	return b.String()
}

func (s *Study) reportExtHTTPS() string {
	a := s.HTTPSAdoption()
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("government hostnames lacking valid HTTPS",
		">70% (Singanamalla et al.)", report.Pct(1-a.GlobalValid)) + "\n")
	t := &report.Table{Header: []string{"Region", "valid HTTPS", ""}}
	for _, reg := range regionOrder {
		v, ok := a.ByRegion[string(reg)]
		if !ok {
			continue
		}
		t.AddRow(string(reg), report.Pct(v), report.Bar(v, 20))
	}
	b.WriteString(t.String())
	b.WriteString("highest-validity countries: " + strings.Join(analysis.HTTPSValidity(s.ds).TopValidityCountries(8), " ") + "\n")
	b.WriteString("validity tracks e-government development by construction; the paper's\n")
	b.WriteString("related work (Singanamalla et al.) reports the >70% headline globally.\n")
	return b.String()
}

func (s *Study) reportExtWeight() string {
	res := analysis.Affordability(s.ds, s.env.World)
	var b strings.Builder
	b.WriteString(report.PaperVsMeasured("corr(HDI, median landing-page size)",
		"negative (Habib et al.)", fmt.Sprintf("Pearson %+.2f, Spearman %+.2f", res.PearsonHDI, res.SpearmanHDI)) + "\n")
	heavy := append([]analysis.PageWeight(nil), res.PerCountry...)
	sort.Slice(heavy, func(i, j int) bool { return heavy[i].MedianBytes > heavy[j].MedianBytes })
	t := &report.Table{Header: []string{"Country", "HDI", "median landing KB"}}
	for i, p := range heavy {
		if i >= 8 {
			break
		}
		t.AddRow(p.Country, fmt.Sprintf("%.3f", p.HDI), fmt.Sprintf("%.0f", p.MedianBytes/1024))
	}
	b.WriteString("heaviest landing pages:\n" + t.String())
	return b.String()
}

// CountryReport renders one country's measured hosting picture: its
// category signature, domestic splits, the foreign countries it leans
// on, the networks that dominate its bytes, and HTTPS validity.
func (s *Study) CountryReport(code string) string {
	c := s.env.World.Country(code)
	if c == nil {
		return fmt.Sprintf("unknown country %q\n", code)
	}
	shares, ok := s.index().CountryShares()[code]
	if !ok {
		return fmt.Sprintf("no records for %s in this run\n", code)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, %s) — EGDI %.3f, HDI %.3f, VPN via %s\n\n",
		c.Name, code, c.Region.Name(), c.EGDI, c.HDI, c.VPN)
	b.WriteString("hosting signature (URLs):  " + categoryRow(shares.URLs) + "\n")
	b.WriteString("hosting signature (bytes): " + categoryRow(shares.Bytes) + "\n")

	var regDom, geoDom, geoN, regN, httpsValid, hosts float64
	seenHost := map[string]bool{}
	for i := range s.ds.Records {
		r := &s.ds.Records[i]
		if r.Country != code {
			continue
		}
		if r.RegCountry != "" {
			regN++
			if r.RegDomestic() {
				regDom++
			}
		}
		if r.ServeCountry != "" {
			geoN++
			if r.Domestic() {
				geoDom++
			}
		}
		if !seenHost[r.Host] {
			seenHost[r.Host] = true
			hosts++
			if r.HTTPSValid {
				httpsValid++
			}
		}
	}
	if regN > 0 && geoN > 0 {
		fmt.Fprintf(&b, "domestic: %s of URLs registered, %s served at home\n",
			report.Pct(regDom/regN), report.Pct(geoDom/geoN))
	}
	if hosts > 0 {
		fmt.Fprintf(&b, "valid HTTPS on %s of hostnames\n", report.Pct(httpsValid/hosts))
	}

	flows := s.index().CrossBorderFlows(analysis.FlowLocation)
	var mine []analysis.Flow
	for _, f := range flows {
		if f.Src == code {
			mine = append(mine, f)
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].URLs > mine[j].URLs })
	if len(mine) > 0 {
		b.WriteString("foreign serving destinations:\n")
		for i, f := range mine {
			if i >= 5 {
				break
			}
			fmt.Fprintf(&b, "  -> %s %s (%d URLs)\n", f.Dst, report.Pct(f.Share), f.URLs)
		}
	} else {
		b.WriteString("no foreign-served URLs observed\n")
	}

	for _, d := range s.index().Diversify() {
		if d.Country != code {
			continue
		}
		fmt.Fprintf(&b, "network concentration: HHI %.2f (URLs) / %.2f (bytes); top network holds %s of bytes; dominant source %s\n",
			d.HHIURLs, d.HHIBytes, report.Pct(d.TopNetShare), d.DominantCat)
	}
	return b.String()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// failKindOrder fixes the column order of the coverage report so equal
// datasets render equal bytes. It derives from fetch.AllKinds — not a
// hand-written list — so a taxonomy addition grows the table columns
// automatically; FailNone is success, not a failure column.
var failKindOrder = func() []fetch.FailKind {
	all := fetch.AllKinds()
	kinds := make([]fetch.FailKind, 0, len(all))
	for _, k := range all {
		if k != fetch.FailNone {
			kinds = append(kinds, k)
		}
	}
	return kinds
}()

// reportCoverage renders the collection-coverage and failure-taxonomy
// accounting: how many landing/internal fetches each country attempted,
// how many failed and why, retry effort, and which countries degraded
// to partial or empty data. Under `-fault-profile off` every failure
// column is zero; under a chaos profile this is the graceful-degradation
// ledger that replaces an aborted run.
func (s *Study) reportCoverage() string {
	codes := make([]string, 0, len(s.ds.PerCountry))
	for code := range s.ds.PerCountry {
		codes = append(codes, code)
	}
	sort.Strings(codes)

	header := []string{"Country", "Attempted", "OK", "Failed"}
	for _, k := range failKindOrder {
		header = append(header, string(k))
	}
	header = append(header, "Retries", "VPN tries")
	t := &report.Table{Header: header}
	for _, code := range codes {
		st := s.ds.PerCountry[code]
		row := []string{code,
			fmt.Sprint(st.Attempted),
			fmt.Sprint(st.Attempted - st.FailedURLs),
			fmt.Sprint(st.FailedURLs)}
		for _, k := range failKindOrder {
			row = append(row, fmt.Sprint(st.Failures[string(k)]))
		}
		row = append(row, fmt.Sprint(st.Retries), fmt.Sprint(st.VantageAttempts))
		t.AddRow(row...)
	}

	var b strings.Builder
	b.WriteString(t.String())
	ok := s.ds.TotalAttempted - s.ds.TotalFailedURLs
	frac := 1.0
	if s.ds.TotalAttempted > 0 {
		frac = float64(ok) / float64(s.ds.TotalAttempted)
	}
	fmt.Fprintf(&b, "fetch coverage: %d/%d attempts succeeded (%s); %d retries spent\n",
		ok, s.ds.TotalAttempted, report.Pct(frac), s.ds.TotalRetries)
	if len(s.ds.FailuresByKind) > 0 {
		kinds := make([]string, 0, len(s.ds.FailuresByKind))
		for k := range s.ds.FailuresByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString("failure taxonomy:")
		for _, k := range kinds {
			fmt.Fprintf(&b, " %s=%d", k, s.ds.FailuresByKind[k])
		}
		b.WriteString("\n")
	}
	for _, code := range s.ds.FailedCountries {
		st := s.ds.PerCountry[code]
		fmt.Fprintf(&b, "FAILED country %s: %s (partial dataset)\n", code, st.FailureReason)
	}
	if len(s.ds.FailedCountries) == 0 {
		b.WriteString("no wholly failed countries\n")
	}
	return b.String()
}

func (s *Study) reportMetrics() string {
	snap, ok := s.Metrics()
	if !ok {
		return "no metrics registry: the study was loaded from a saved dataset or run with DisableMetrics\n"
	}
	// The preamble travels with the ledger so regenerated documents
	// (govreport) keep the reading instructions next to the numbers.
	return "The registry snapshot is a two-part ledger. The first part is\n" +
		"seed-deterministic and golden-comparable (byte-identical at any\n" +
		"concurrency shape for equal seeds, enforced by the chaos suite); the\n" +
		"second is wall-clock/scheduling-shape observation, excluded from\n" +
		"golden comparisons. `-metrics json` emits the same snapshot as JSON.\n\n" +
		snap.Text()
}
