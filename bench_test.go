package govhost

// The benchmark harness regenerates every table and figure of the
// paper's evaluation. Each Benchmark{FigN,TableN}… target runs the
// corresponding analysis over a shared study (built once outside the
// timer) and reports paper-vs-measured rows through -v logs on the
// first iteration. Ablation benches rerun the pipeline with a design
// choice disabled. Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig9 -v       # see the comparison rows

import (
	"context"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// benchStudy shares one moderately sized study across benchmarks.
var (
	benchOnce sync.Once
	benchVal  *Study
	benchErr  error
)

func benchStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchVal, benchErr = Run(context.Background(), Config{Scale: 0.1})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchVal
}

// logOnce emits the paper-vs-measured report on the first iteration.
func logOnce(b *testing.B, s *Study, id string) {
	b.Helper()
	if b.N > 0 {
		b.Logf("\n%s", s.Report(id))
	}
}

func BenchmarkStudyPipeline(b *testing.B) {
	// The full pipeline end to end: environment build, 61 crawls,
	// classification, resolution, geolocation. Scale 0.05 is large
	// enough that assembly behaviour (streaming vs whole-study
	// buffering) is visible in the allocation numbers.
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Scale: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyPipelineMetrics(b *testing.B) {
	// The metrics registry is on by default; the "off" sub-bench
	// measures the pipeline with recording disabled. The delta is the
	// cost of the atomic counters on the hot path — it should stay
	// within the run-to-run noise of the pipeline itself (<3%).
	for _, bench := range []struct {
		name    string
		disable bool
	}{
		{"on", false},
		{"off", true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Config{Scale: 0.02, DisableMetrics: bench.disable}
				s, err := Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := s.Metrics(); ok == bench.disable {
					b.Fatalf("metrics snapshot present=%v with DisableMetrics=%v", ok, bench.disable)
				}
			}
		})
	}
}

func BenchmarkStudyPipelineSplitBudget(b *testing.B) {
	// The same run with the scheduler knobs split explicitly: few
	// countries in flight, a wider shared fetch/annotate pool. Total
	// goroutine count is 4 + 16 either way — the budget, not its
	// square.
	for i := 0; i < b.N; i++ {
		cfg := Config{Scale: 0.02, CountryConcurrency: 4, FetchConcurrency: 16}
		if _, err := Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyPipelineCapped(b *testing.B) {
	// A capped crawl exercises the deterministic frontier admission
	// path on every level.
	for i := 0; i < b.N; i++ {
		cfg := Config{Scale: 0.02, MaxURLsPerCrawl: 50, SkipTopsites: true}
		if _, err := Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalysisIndex(b *testing.B) {
	// One full index build: the single dataset scan that replaces the
	// per-figure scans. Every Fig/Table query above amortises this cost
	// through Study's sync.Once; the per-query price is then the O(1)
	// or O(countries) read measured by the figure benches.
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := analysis.BuildIndex(s.ds)
		if len(idx.CountryShares()) == 0 {
			b.Fatal("empty index")
		}
	}
}

func BenchmarkFig1MajorityMap(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.MajorityThirdParty()) == 0 {
			b.Fatal("empty map")
		}
	}
	logOnce(b, s, "fig1")
}

func BenchmarkFig2GlobalShares(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := s.GlobalShares()
		if sh.URLs[GovtSOE] <= 0 {
			b.Fatal("degenerate shares")
		}
	}
	logOnce(b, s, "fig2")
}

func BenchmarkFig3GovVsTopsites(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.CompareTopsites()
		if c.Topsites.URLs[Global3P] <= 0 {
			b.Fatal("degenerate comparison")
		}
	}
	logOnce(b, s, "fig3")
}

func BenchmarkFig4RegionalShares(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.RegionalShares()) != 7 {
			b.Fatal("missing regions")
		}
	}
	logOnce(b, s, "fig4")
}

func BenchmarkFig5Clustering(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ClusterBranches(false); err != nil {
			b.Fatal(err)
		}
		if _, err := s.ClusterBranches(true); err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, s, "fig5")
}

func BenchmarkFig6DomesticIntl(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sp := s.DomesticSplit(); sp.GeoDomestic <= 0 {
			b.Fatal("degenerate split")
		}
	}
	logOnce(b, s, "fig6")
}

func BenchmarkFig7GovVsTopsitesDomestic(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.CompareTopsites()
		if c.TopsitesSplit.GeoDomestic <= 0 {
			b.Fatal("degenerate split")
		}
	}
	logOnce(b, s, "fig7")
}

func BenchmarkFig8RegionalDomesticIntl(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.RegionalDomesticSplit()) != 7 {
			b.Fatal("missing regions")
		}
	}
	logOnce(b, s, "fig8")
}

func BenchmarkFig9CrossBorderFlows(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.CrossBorderFlows(ByLocation)) == 0 {
			b.Fatal("no flows")
		}
		if len(s.CrossBorderFlows(ByRegistration)) == 0 {
			b.Fatal("no flows")
		}
	}
	logOnce(b, s, "fig9")
}

func BenchmarkFig10GlobalProviders(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.GlobalProviders()) == 0 {
			b.Fatal("no providers")
		}
	}
	logOnce(b, s, "fig10")
}

func BenchmarkFig11HHIDiversification(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Diversification()) == 0 {
			b.Fatal("no diversification data")
		}
	}
	logOnce(b, s, "fig11")
}

func BenchmarkFig12OLSExplanatoryFactors(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ExplanatoryModel(); err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, s, "fig12")
}

func BenchmarkTable1ClassificationYields(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tld, domain, san := s.MethodYields()
		if tld+domain+san == 0 {
			b.Fatal("no yields")
		}
	}
	logOnce(b, s, "table1")
}

func BenchmarkTable2InfraRecord(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Report("table2") == "" {
			b.Fatal("no record")
		}
	}
	logOnce(b, s, "table2")
}

func BenchmarkTable3DatasetStats(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Stats().UniqueURLs == 0 {
			b.Fatal("no stats")
		}
	}
	logOnce(b, s, "table3")
}

func BenchmarkTable4GeoValidation(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Report("table4") == "" {
			b.Fatal("no validation stats")
		}
	}
	logOnce(b, s, "table4")
}

func BenchmarkTable5InRegionDependency(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.InRegionDependency()) == 0 {
			b.Fatal("no dependency data")
		}
	}
	logOnce(b, s, "table5")
}

func BenchmarkTable7VIF(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, vifs, err := s.ExplanatoryModel(); err != nil || len(vifs) != 6 {
			b.Fatal("VIF computation failed")
		}
	}
	logOnce(b, s, "table7")
}

func BenchmarkTable8PerCountryStats(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.PerCountryStats()) == 0 {
			b.Fatal("no per-country stats")
		}
	}
	logOnce(b, s, "table8")
}

func BenchmarkTable9CountryPanel(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Report("table9") == "" {
			b.Fatal("no panel")
		}
	}
}

// --- Ablation benches: rerun the pipeline with one design choice
// disabled, reporting how the headline metrics move (DESIGN.md §6).

func ablationRun(b *testing.B, cfg Config) *Study {
	b.Helper()
	cfg.Scale = 0.03
	s, err := Run(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkAblationIPInfoOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := ablationRun(b, Config{TrustIPInfo: true})
		if i == 0 {
			sp := s.DomesticSplit()
			b.Logf("trust-IPInfo: geo domestic %.3f (verified pipeline ≈0.87 with exclusions)", sp.GeoDomestic)
		}
	}
}

func BenchmarkAblationNoSAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := ablationRun(b, Config{DisableSAN: true})
		if i == 0 {
			_, _, san := s.MethodYields()
			b.Logf("no-SAN: SAN yield %.4f (full pipeline ≈0.003)", san)
		}
	}
}

func BenchmarkAblationGlobalThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// A single 30 ms threshold instead of per-country road-derived
		// ones: small countries over-accept neighbours, large countries
		// reject their own periphery.
		s := ablationRun(b, Config{GlobalThresholdMS: 30})
		if i == 0 {
			sp := s.DomesticSplit()
			b.Logf("global 30ms threshold: geo domestic %.3f", sp.GeoDomestic)
		}
	}
}

func BenchmarkAblationCrawlDepth1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := ablationRun(b, Config{CrawlDepth: 1})
		if i == 0 {
			b.Logf("depth-1: %d URLs (the paper finds 95%% of URLs within one level)", s.Stats().UniqueURLs)
		}
	}
}

func BenchmarkAblationDepth7Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := ablationRun(b, Config{})
		if i == 0 {
			b.Logf("depth-7 baseline: %d URLs", s.Stats().UniqueURLs)
		}
	}
}
