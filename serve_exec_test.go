package govhost

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// serveDaemonEnv carries the JSONL path a re-executed test binary
// serves as a real govserve daemon (see TestMain).
const serveDaemonEnv = "GOVHOST_TEST_SERVE_DAEMON"

// newLocalListener binds a kernel-assigned loopback port.
func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// serveDaemonMain is the child side of the exec test: a real daemon
// process on a kernel-assigned port, announcing its address on stdout
// and draining on SIGTERM — the same lifecycle cmd/govserve runs.
func serveDaemonMain(jsonlPath string) {
	snap, err := ServeSnapshotFromJSONL(jsonlPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve daemon:", err)
		os.Exit(1)
	}
	srv := serve.New(serve.Config{Snapshot: snap, Workers: 4, Reloader: ServeReloader(Config{})})
	ln, err := newLocalListener()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve daemon:", err)
		os.Exit(1)
	}
	fmt.Printf("listening %s %s\n", ln.Addr(), snap.Version())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintln(os.Stderr, "serve daemon: serve returned early:", err)
		os.Exit(1)
	case <-sigc:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "serve daemon:", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("drained")
	os.Exit(0)
}

// execServeStudy is the small study the daemon serves; topsites stay
// on so the comparison endpoints have data.
func execServeStudy() Config {
	return Config{Seed: 11, Scale: 0.02, Countries: []string{"US", "DE", "BR"}}
}

// TestServeDaemonExec runs a real govserve process against a seeded
// study export, diffs every endpoint's body against an in-process
// render of the same file, exercises a live reload, then SIGTERMs the
// daemon and asserts a clean drain.
func TestServeDaemonExec(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test: spawns a daemon process")
	}
	dir := t.TempDir()

	// Two study exports: the daemon starts on A and reloads to B.
	writeExport := func(name string, cfg Config) (string, *serve.Snapshot) {
		st, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := st.ExportJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := ServeSnapshotFromJSONL(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, snap
	}
	cfgB := execServeStudy()
	cfgB.Seed = 12
	pathA, snapA := writeExport("a.jsonl", execServeStudy())
	pathB, snapB := writeExport("b.jsonl", cfgB)
	if snapA.Version() == snapB.Version() {
		t.Fatal("study variants hash to the same version")
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), serveDaemonEnv+"="+pathA)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	lines := bufio.NewScanner(stdout)
	if !lines.Scan() {
		t.Fatal("daemon exited before announcing its address")
	}
	fields := strings.Fields(lines.Text())
	if len(fields) != 3 || fields[0] != "listening" {
		t.Fatalf("unexpected announce line: %q", lines.Text())
	}
	base := "http://" + fields[1]
	if fields[2] != snapA.Version() {
		t.Fatalf("daemon serves version %s, local load computes %s", fields[2], snapA.Version())
	}

	get := func(u string) (int, string, []byte) {
		res, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, res.Header.Get("X-Dataset-Version"), body
	}

	// Every endpoint must produce exactly the bytes the in-process
	// snapshot renders from the same file.
	checkAll := func(snap *serve.Snapshot) {
		t.Helper()
		for _, name := range serve.EndpointNames() {
			queries := []string{""}
			switch name {
			case "fig9", "matrix":
				queries = []string{"kind=registration", "kind=location"}
			case "country":
				queries = nil
				for _, c := range snap.Countries() {
					queries = append(queries, "code="+c)
				}
			}
			for _, query := range queries {
				u := base + "/api/" + name
				if query != "" {
					u += "?" + query
				}
				status, version, body := get(u)
				q, _ := url.ParseQuery(query)
				wantBody, wantStatus := snap.Render(name, q)
				if status != wantStatus || version != snap.Version() || !bytes.Equal(body, wantBody) {
					t.Fatalf("%s?%s: daemon answered status=%d version=%s; local render status=%d version=%s",
						name, query, status, version, wantStatus, snap.Version())
				}
			}
		}
	}
	checkAll(snapA)

	// Live reload to B: the swap must land and every endpoint must now
	// render B's bytes.
	req, err := http.NewRequest(http.MethodPost, base+"/admin/reload?jsonl="+pathB, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("reload answered %d", res.StatusCode)
	}
	checkAll(snapB)

	// SIGTERM: the daemon must drain and exit 0 after printing the
	// drain marker.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if !lines.Scan() || lines.Text() != "drained" {
		t.Fatalf("expected drain marker, got %q", lines.Text())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}
