// Command govprobe walks one hostname through the §3.4/§3.5
// methodology entirely over real sockets: DNS resolution through the
// caching stub resolver against a live UDP/TCP DNS server, a WHOIS
// lookup over the RFC 3912 TCP protocol, latency measurements through
// the UDP measurement agent, and finally the geolocation verdict.
//
// Usage:
//
//	govprobe -country UY            # probe that country's first landing host
//	govprobe -host finance.gob.mx -country MX
//
//lint:deterministic
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/har"
	"repro/internal/probing"
	"repro/internal/whois"
)

func main() {
	var (
		country = flag.String("country", "UY", "vantage country (ISO code)")
		host    = flag.String("host", "", "hostname to probe (default: the country's first landing host)")
		scale   = flag.Float64("scale", 0.05, "estate scale")
		seed    = flag.Int64("seed", 42, "study seed")
	)
	flag.Parse()

	env := core.NewEnv(core.Config{Seed: *seed, Scale: *scale})
	c := env.World.Country(*country)
	if c == nil {
		fatal(fmt.Errorf("unknown country %q", *country))
	}
	target := *host
	if target == "" {
		landings := env.Estate.LandingURLs[c.Code]
		if len(landings) == 0 {
			fatal(fmt.Errorf("no landing URLs for %s", c.Code))
		}
		target = har.HostOf(landings[0])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Live substrate servers.
	dnsSrv := &dnswire.Server{Handler: env.Zones.Handler()}
	dnsAddr, err := dnsSrv.Start("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer dnsSrv.Close()
	whoisSrv := &whois.Server{DB: env.WhoisDB}
	whoisAddr, err := whoisSrv.Start("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer whoisSrv.Close()
	agent := &probing.Agent{Net: env.Net}
	agentAddr, err := agent.Start("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer agent.Close()
	fmt.Printf("substrate: DNS %s | WHOIS %s | probe agent %s\n\n", dnsAddr, whoisAddr, agentAddr)

	// Step 1: resolve over the wire (§3.4).
	resolver := dnswire.NewResolver(dnsAddr)
	res, err := resolver.LookupA(ctx, target)
	if err != nil {
		fatal(fmt.Errorf("resolve %s: %w", target, err))
	}
	fmt.Printf("DNS: %s -> %s", target, res.Addr)
	if len(res.Chain) > 0 {
		fmt.Printf(" (via %v)", res.Chain)
	}
	fmt.Println()

	// Step 2: WHOIS over TCP (§3.4).
	rec, err := whois.Query(ctx, whoisAddr, res.Addr)
	if err != nil {
		fatal(fmt.Errorf("whois %s: %w", res.Addr, err))
	}
	fmt.Printf("WHOIS: AS%d %q, registered in %s\n", rec.ASN, rec.Org, rec.Country)

	// Step 3: latency from the vantage over UDP (§3.5).
	rtt, err := probing.MinProbe(ctx, agentAddr, c.Code, res.Addr, 3)
	switch err {
	case nil:
		thr := probing.Threshold(c)
		verdictStr := "consistent with in-country serving"
		if rtt > thr {
			verdictStr = "too far for in-country serving"
		}
		fmt.Printf("probe: min RTT %.1f ms from %s (threshold %.1f ms) — %s\n",
			rtt, c.Code, thr, verdictStr)
	case probing.ErrNoReply:
		fmt.Printf("probe: %s does not answer ICMP; multistage geolocation takes over\n", res.Addr)
	default:
		fatal(err)
	}

	// Step 4: the full §3.5 pipeline verdict.
	var verdict probing.Verdict
	if env.Manycast.IsAnycast(res.Addr) {
		verdict = env.Prober.GeolocateAnycast(c, res.Addr)
	} else {
		verdict = env.Prober.GeolocateUnicast(res.Addr)
	}
	fmt.Printf("geolocation verdict: country=%q method=%s anycast=%v\n",
		verdict.Country, verdict.Method, verdict.Anycast)

	// Cache behaviour, for flavour.
	if _, err := resolver.LookupA(ctx, target); err == nil {
		st := resolver.Stats()
		fmt.Printf("resolver cache: %d hits, %d misses\n", st.Hits, st.Misses)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govprobe:", err)
	os.Exit(1)
}
