// Command govlint mechanically enforces the repository's determinism
// and concurrency invariants with the stdlib-only static analyzer in
// internal/lint: per-package rules plus the whole-program
// determinism-taint analysis and the suppression audit.
//
//	go run ./cmd/govlint ./...                  # whole module (the tier-1 leg)
//	go run ./cmd/govlint ./internal/export ./internal/report
//	go run ./cmd/govlint -format json ./...     # machine-readable diagnostics
//	go run ./cmd/govlint -format sarif ./...    # SARIF 2.1.0 for CI upload
//	go run ./cmd/govlint -j 1 ./...             # serial package analysis
//	go run ./cmd/govlint -baseline lint.json ./...        # fail only on new findings
//	go run ./cmd/govlint -write-baseline lint.json ./...  # accept the current findings
//	go run ./cmd/govlint -rules                 # list every check
//
// Exit status: 0 clean (or fully baselined), 1 findings, 2 load/usage
// error. Intentional violations are suppressed in-source with
//
//	//lint:ignore rule-name -- reason
//
// on the offending line or the line directly above it; the same
// directive on a function declaration is a taint barrier for the
// determinism-taint rule. Stale directives are themselves findings.
//
//lint:deterministic
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/lint"
)

func main() {
	format := flag.String("format", "text", "output format: text, json or sarif")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (alias for -format json)")
	listRules := flag.Bool("rules", false, "list the checks and exit")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "package-analysis parallelism (1 = serial); findings are identical either way")
	baseline := flag.String("baseline", "", "baseline file (JSON diagnostics); findings already accepted there do not fail the run")
	writeBaseline := flag.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: govlint [-format text|json|sarif] [-j n] [-baseline file] [-write-baseline file] [-rules] ./... | <package dirs>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json or sarif)", *format))
	}

	if *listRules {
		for _, d := range lint.Descriptors() {
			fmt.Printf("%-24s %s\n", d.Name, d.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	runner, err := lint.NewRunner(".")
	if err != nil {
		fatal(err)
	}
	dirs, err := targetDirs(runner, args)
	if err != nil {
		fatal(err)
	}
	if err := runner.CheckDirs(dirs, *workers); err != nil {
		fatal(err)
	}

	diags := runner.Diagnostics()

	if *writeBaseline != "" {
		data, err := lint.JSON(diags)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*writeBaseline, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "govlint: wrote %d finding(s) to baseline %s\n", len(diags), *writeBaseline)
		return
	}
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		diags = lint.FilterBaseline(diags, base)
	}

	switch *format {
	case "json":
		data, err := lint.JSON(diags)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
	case "sarif":
		data, err := lint.SARIF(diags)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
	default:
		fmt.Print(lint.Text(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// targetDirs expands the command-line arguments to the list of package
// directories to analyze, deduplicated in sorted order so one
// CheckDirs call covers everything.
func targetDirs(runner *lint.Runner, args []string) ([]string, error) {
	moduleDirs, err := runner.Loader.ModuleDirs()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			for _, dir := range moduleDirs {
				add(dir)
			}
		case strings.HasSuffix(arg, "/..."):
			root, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, dir := range moduleDirs {
				if dir == root || strings.HasPrefix(dir, root+string(filepath.Separator)) {
					add(dir)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("govlint: no packages under %s", root)
			}
		default:
			abs, err := filepath.Abs(arg)
			if err != nil {
				return nil, err
			}
			add(abs)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govlint:", err)
	os.Exit(2)
}
