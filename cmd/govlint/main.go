// Command govlint mechanically enforces the repository's determinism
// and concurrency invariants with the stdlib-only static analyzer in
// internal/lint:
//
//	go run ./cmd/govlint ./...         # whole module (the tier-1 leg)
//	go run ./cmd/govlint ./internal/export ./internal/report
//	go run ./cmd/govlint -json ./...   # machine-readable diagnostics
//	go run ./cmd/govlint -rules        # list the rule set
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. Intentional
// violations are suppressed in-source with
//
//	//lint:ignore rule-name -- reason
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: govlint [-json] [-rules] ./... | <package dirs>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range lint.DefaultRules() {
			fmt.Printf("%-18s %s\n", r.Name(), r.Doc())
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	runner, err := lint.NewRunner(".")
	if err != nil {
		fatal(err)
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			err = runner.CheckModule()
		case strings.HasSuffix(arg, "/..."):
			err = checkTree(runner, strings.TrimSuffix(arg, "/..."))
		default:
			err = runner.CheckDir(arg)
		}
		if err != nil {
			fatal(err)
		}
	}

	diags := runner.Diagnostics()
	if *jsonOut {
		data, err := lint.JSON(diags)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
	} else {
		fmt.Print(lint.Text(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// checkTree lints every package directory under root (a "dir/..."
// argument scoped below the module root).
func checkTree(runner *lint.Runner, root string) error {
	dirs, err := runner.Loader.ModuleDirs()
	if err != nil {
		return err
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	matched := false
	for _, dir := range dirs {
		if dir == abs || strings.HasPrefix(dir, abs+string(filepath.Separator)) {
			if err := runner.CheckDir(dir); err != nil {
				return err
			}
			matched = true
		}
	}
	if !matched {
		return fmt.Errorf("govlint: no packages under %s", root)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govlint:", err)
	os.Exit(2)
}
