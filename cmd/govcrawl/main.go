// Command govcrawl demonstrates the collection substrate end to end
// over real sockets: it generates the synthetic estate, serves it over
// HTTP, resolves hostnames through a live DNS server speaking RFC 1035
// over UDP, crawls one country's government landing pages through an
// in-country vantage point, and writes the resulting HAR archive as
// JSON.
//
// Usage:
//
//	govcrawl -country UY -scale 0.05 -o crawl.har.json
//
//lint:deterministic
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/dnswire"
	"repro/internal/faults"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/vantage"
	"repro/internal/webserve"
)

func main() {
	var (
		country     = flag.String("country", "UY", "ISO code of the country to crawl")
		scale       = flag.Float64("scale", 0.05, "estate scale")
		seed        = flag.Int64("seed", 42, "study seed")
		depth       = flag.Int("depth", 7, "crawl depth")
		concurrency = flag.Int("concurrency", 16, "bounded fetch worker pool size")
		maxURLs     = flag.Int("max-urls", 0, "cap on distinct URLs admitted, deterministically (default: unlimited)")
		faultProf   = flag.String("fault-profile", "off", "chaos fault profile: off, mild, aggressive, or key=value spec (timeout=0.1,reset=0.05,...)")
		faultSeed   = flag.Int64("fault-seed", 0, "seed for the fault plan (default: -seed); same seed, same faults")
		retries     = flag.Int("retries", 0, "max fetch attempts per URL (default: 3; negative disables retries)")
		metricsOut  = flag.String("metrics", "", "dump the crawl's metrics snapshot to stderr: 'text' or 'json'")
		out         = flag.String("o", "", "output HAR JSON path (default stdout)")
		dumpZone    = flag.String("dump-zone", "", "write the authoritative zones in RFC 1035 master format to this path")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile covering the run to this path (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this path (go tool pprof)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	env := core.NewEnv(core.Config{Seed: *seed, Scale: *scale})
	c := env.World.Country(*country)
	if c == nil || c.Landing == 0 {
		fmt.Fprintf(os.Stderr, "govcrawl: no estate for country %q\n", *country)
		os.Exit(1)
	}

	if *dumpZone != "" {
		f, err := os.Create(*dumpZone)
		if err != nil {
			fatal(err)
		}
		if err := env.Zones.WriteZoneFile(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "zone file written to %s\n", *dumpZone)
	}

	// Real HTTP server over the estate.
	srv := &webserve.Server{Estate: env.Estate}
	httpAddr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	// Real DNS server over the zones.
	dns := &dnswire.Server{Handler: env.Zones.Handler()}
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer dns.Close()
	fmt.Fprintf(os.Stderr, "synthetic web on http://%s, DNS on %s\n", httpAddr, dnsAddr)

	// Resolve one landing hostname over the wire as a sanity check.
	landings := env.Estate.LandingURLs[c.Code]
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if len(landings) > 0 {
		q := dnswire.NewQuery(1, hostOf(landings[0]), dnswire.TypeA)
		resp, err := dnswire.Exchange(ctx, dnsAddr, q)
		if err != nil {
			fatal(err)
		}
		for _, rr := range resp.Answers {
			if rr.Type == dnswire.TypeA {
				fmt.Fprintf(os.Stderr, "DNS: %s -> %s\n", hostOf(landings[0]), rr.A)
			}
		}
	}

	// The real-socket fetcher rides the same fault/retry stack the
	// pipeline uses, so chaos behaviour is demonstrable over the wire.
	prof, err := faults.ParseProfile(*faultProf)
	if err != nil {
		fatal(err)
	}
	// The whole stack records into one registry, the same wiring the
	// study pipeline uses.
	reg := metrics.New()
	var fetcher fetch.Fetcher = vantage.NewHTTPFetcher(httpAddr, c.Code)
	if prof.Enabled() {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		fetcher = &faults.Fetcher{Inner: fetcher, Plan: faults.NewPlan(fs, prof), Metrics: &reg.Faults}
	}
	fetcher = &fetch.Retrier{
		Inner:   fetcher,
		Policy:  fetch.RetryPolicy{MaxAttempts: *retries, Seed: *seed},
		Metrics: &reg.Fetch,
	}
	pool := sched.NewPool(*concurrency)
	defer pool.Close()
	pool.SetMetrics(&reg.Sched)
	cr := &crawler.Crawler{
		Fetcher: fetcher,
		Config: crawler.Config{
			MaxDepth: *depth, MaxURLs: *maxURLs,
			Country: c.Code, VPN: c.VPN,
		},
		Pool:    pool,
		Metrics: &reg.Crawl,
	}
	//lint:ignore nondeterminism -- stderr elapsed-time progress line; no archive bytes derive from it
	start := time.Now()
	archive, err := cr.Crawl(ctx, landings)
	if err != nil {
		fatal(err)
	}
	if *metricsOut != "" {
		snap := reg.Snapshot()
		switch *metricsOut {
		case "text":
			fmt.Fprint(os.Stderr, snap.Text())
		case "json":
			buf, err := snap.JSON()
			if err != nil {
				fatal(err)
			}
			os.Stderr.Write(buf)
			fmt.Fprintln(os.Stderr)
		default:
			fatal(fmt.Errorf("-metrics must be 'text' or 'json', got %q", *metricsOut))
		}
	}
	fmt.Fprintf(os.Stderr, "crawled %d entries (%d hosts, %d bytes) in %v\n",
		len(archive.Entries), len(archive.Hosts()), archive.TotalBytes(),
		//lint:ignore nondeterminism -- stderr elapsed-time progress line; no archive bytes derive from it
		time.Since(start).Round(time.Millisecond))
	if counts := archive.FailureCounts(); len(counts) > 0 {
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(os.Stderr, "failures:")
		for _, k := range kinds {
			fmt.Fprintf(os.Stderr, " %s=%d", k, counts[k])
		}
		fmt.Fprintln(os.Stderr)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := archive.WriteJSON(w); err != nil {
		fatal(err)
	}
}

func hostOf(url string) string {
	const prefix = "https://"
	s := url
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		s = s[len(prefix):]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i]
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govcrawl:", err)
	os.Exit(1)
}
