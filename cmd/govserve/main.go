// Command govserve is the always-on analysis daemon: it loads a study
// — from an exported JSONL file, from a checkpoint directory, or by
// running the pipeline at startup — and serves every index-backed
// figure and table as an HTTP/JSON API. The loaded study is an
// immutable snapshot behind an atomic pointer; POST /admin/reload (or
// SIGHUP) swaps in a fresh snapshot without dropping in-flight
// requests, and SIGTERM drains cleanly.
//
// Usage:
//
//	govserve -from-jsonl study.jsonl -addr 127.0.0.1:8080
//	govserve -from-checkpoint ckpt/ -seed 42 -scale 0.05
//	govserve -run -seed 42 -scale 0.02 -countries US,MX,BR
//	curl localhost:8080/api/fig2
//	curl -X POST 'localhost:8080/admin/reload?jsonl=other.jsonl'
//
// The same binary doubles as the load harness:
//
//	govserve -loadgen -base http://127.0.0.1:8080 -requests 20000 \
//	  -verify study.jsonl,other.jsonl -reload-at 10000 \
//	  -reload-to 'jsonl=other.jsonl' -out BENCH.json
//
//lint:deterministic
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	govhost "repro"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address; port 0 picks a free port")
		fromJSONL = flag.String("from-jsonl", "", "serve a saved dataset export")
		fromCkpt  = flag.String("from-checkpoint", "", "resume (and complete) the study in this checkpoint directory, then serve it")
		runStudy  = flag.Bool("run", false, "run the pipeline at startup and serve the result")
		seed      = flag.Int64("seed", 42, "study seed for -run / -from-checkpoint manifest matching")
		scale     = flag.Float64("scale", 0.1, "study scale for -run / -from-checkpoint manifest matching")
		countries = flag.String("countries", "", "comma-separated ISO codes for -run / -from-checkpoint")
		workers   = flag.Int("workers", 0, "concurrent request renders; excess requests queue (default 8)")
		ixWorkers = flag.Int("index-workers", 0, "goroutines for the analysis index build on startup and reload; any value serves byte-identical bodies (default 8)")

		lgMode   = flag.Bool("loadgen", false, "run as the load harness against -base instead of serving")
		base     = flag.String("base", "", "loadgen: daemon base URL")
		requests = flag.Int("requests", 10000, "loadgen: total requests")
		lgConc   = flag.Int("concurrency", 8, "loadgen: client workers")
		verify   = flag.String("verify", "", "loadgen: comma-separated JSONL files covering every version the daemon may serve")
		reloadAt = flag.Int("reload-at", 0, "loadgen: fire POST /admin/reload before this request index (0 = never)")
		reloadTo = flag.String("reload-to", "", "loadgen: reload selector, e.g. 'jsonl=/path/b.jsonl'")
		outPath  = flag.String("out", "", "loadgen: write the result JSON here (default stdout)")
	)
	flag.Parse()

	if *lgMode {
		if err := runLoadgen(*base, *requests, *lgConc, *seed, *verify, *reloadAt, *reloadTo, *outPath, *ixWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "govserve:", err)
			os.Exit(1)
		}
		return
	}
	if err := runDaemon(*addr, *fromJSONL, *fromCkpt, *runStudy, *seed, *scale, *countries, *workers, *ixWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "govserve:", err)
		os.Exit(1)
	}
}

func studyConfig(seed int64, scale float64, countries string) govhost.Config {
	cfg := govhost.Config{Seed: seed, Scale: scale}
	if countries != "" {
		cfg.Countries = strings.Split(countries, ",")
	}
	return cfg
}

func runDaemon(addr, fromJSONL, fromCkpt string, runStudy bool, seed int64, scale float64, countries string, workers, ixWorkers int) error {
	ctx := context.Background()
	cfg := studyConfig(seed, scale, countries)
	cfg.AnalysisWorkers = ixWorkers

	var (
		snap *serve.Snapshot
		src  serve.Source // what SIGHUP re-loads
		err  error
	)
	switch {
	case fromJSONL != "":
		snap, err = govhost.ServeSnapshotFromJSONLWorkers(fromJSONL, ixWorkers)
		src = serve.Source{Kind: "jsonl", Path: fromJSONL}
	case fromCkpt != "":
		c := cfg
		c.CheckpointDir = fromCkpt
		snap, err = govhost.ServeSnapshotFromCheckpoint(ctx, c)
		src = serve.Source{Kind: "checkpoint", Path: fromCkpt}
	case runStudy:
		var st *govhost.Study
		st, err = govhost.Run(ctx, cfg)
		if err == nil {
			snap, err = govhost.NewServeSnapshot(st, fmt.Sprintf("run:seed=%d,scale=%g", seed, scale))
		}
	default:
		return fmt.Errorf("pass one of -from-jsonl, -from-checkpoint, or -run")
	}
	if err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		Snapshot: snap,
		Workers:  workers,
		Reloader: govhost.ServeReloader(cfg),
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("govserve: listening on http://%s version=%s source=%s\n",
		ln.Addr(), snap.Version(), snap.Desc())

	errc := make(chan error, 1)
	wait := sched.Workers(1, func(int) { errc <- srv.Serve(ln) })

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			wait()
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if src.Kind == "" {
					fmt.Fprintln(os.Stderr, "govserve: SIGHUP ignored: started from -run, nothing to reload from")
					continue
				}
				next, rerr := srv.Reload(ctx, src)
				if rerr != nil {
					fmt.Fprintln(os.Stderr, "govserve: reload failed, keeping current snapshot:", rerr)
					continue
				}
				fmt.Printf("govserve: reloaded version=%s\n", next.Version())
				continue
			}
			shutdownCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
			defer cancel()
			serr := srv.Shutdown(shutdownCtx)
			wait()
			<-errc // Serve's return, unblocked by Shutdown
			if serr != nil {
				return serr
			}
			fmt.Println("govserve: drained")
			return nil
		}
	}
}

func runLoadgen(base string, requests, concurrency int, seed int64, verify string, reloadAt int, reloadTo, outPath string, ixWorkers int) error {
	if base == "" {
		return fmt.Errorf("-loadgen requires -base")
	}
	if verify == "" {
		return fmt.Errorf("-loadgen requires -verify")
	}
	var snaps []*serve.Snapshot
	for _, path := range strings.Split(verify, ",") {
		snap, err := govhost.ServeSnapshotFromJSONLWorkers(path, ixWorkers)
		if err != nil {
			return err
		}
		snaps = append(snaps, snap)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     base,
		Requests:    requests,
		Concurrency: concurrency,
		Seed:        seed,
		Verify:      snaps,
		ReloadAt:    reloadAt,
		ReloadQuery: reloadTo,
	})
	if err != nil {
		return err
	}
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, body, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(body)
	}
	if res.Failed > 0 || res.Mismatches > 0 {
		return fmt.Errorf("load run saw %d failures, %d mismatches", res.Failed, res.Mismatches)
	}
	return nil
}
