// Command govhost runs the full government-hosting study and prints
// paper-vs-measured reports for any of the paper's tables and figures.
//
// Usage:
//
//	govhost -scale 0.1 -exp fig2,fig9
//	govhost -exp all
//	govhost -countries US,MX,BR -exp fig2
//
//lint:deterministic
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"time"

	govhost "repro"
	"repro/internal/prof"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.1, "fraction of the paper's estate size to generate (1.0 ≈ 1M URLs)")
		seed        = flag.Int64("seed", 42, "study seed; equal seeds give identical studies")
		countries   = flag.String("countries", "", "comma-separated ISO codes to restrict the panel (default: all 61)")
		exps        = flag.String("exp", "findings", "comma-separated experiment IDs, or 'all' / 'list'")
		depth       = flag.Int("depth", 0, "crawl depth override (default: the paper's 7)")
		concurrency = flag.Int("concurrency", 0, "combined parallelism budget; seeds -country-concurrency and -fetch-concurrency when those are unset (default: 8)")
		countryConc = flag.Int("country-concurrency", 0, "countries crawled in parallel (default: -concurrency)")
		fetchConc   = flag.Int("fetch-concurrency", 0, "study-wide fetch/annotate worker pool size shared by all crawls (default: -concurrency)")
		maxURLs     = flag.Int("max-urls", 0, "cap on distinct URLs per country crawl, deterministically admitted (default: unlimited)")
		faultProf   = flag.String("fault-profile", "off", "chaos fault profile: off, mild, aggressive, or key=value spec (timeout=0.1,reset=0.05,...)")
		faultSeed   = flag.Int64("fault-seed", 0, "seed for the fault plan (default: -seed); same seed, same faults")
		retries     = flag.Int("retries", 0, "max fetch attempts per URL (default: 3; negative disables retries)")
		retryBudget = flag.Int64("retry-budget", 0, "study-wide cap on total retries (default: unlimited)")
		trustIPInfo = flag.Bool("trust-ipinfo", false, "ablation: skip geolocation verification")
		noSAN       = flag.Bool("no-san", false, "ablation: disable SAN-based URL classification")
		noTopsites  = flag.Bool("no-topsites", false, "skip the Appendix D top-site baseline")
		metricsOut  = flag.String("metrics", "", "dump the per-stage metrics snapshot after the run: 'text' (aligned ledger) or 'json'")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		dumpJSONL   = flag.String("dump-jsonl", "", "write the annotated dataset as JSON lines to this path")
		dumpCSV     = flag.String("dump-csv", "", "write the annotated dataset as CSV to this path")
		fromJSONL   = flag.String("from-jsonl", "", "re-analyse a saved dataset instead of running the pipeline")
		checkpoint  = flag.String("checkpoint", "", "persist each finished country into this directory so a killed run can be resumed")
		resume      = flag.Bool("resume", false, "resume the run found in -checkpoint: finished countries load from disk, the rest re-run")
		shardSpec   = flag.String("shard", "", "run as one shard worker 'i/n': collect the countries whose sorted-panel index ≡ i (mod n) into -checkpoint, then exit")
		shards      = flag.Int("shards", 0, "supervise this many shard worker processes over -checkpoint (restarting crashes), then assemble the full study")
		shardRetry  = flag.Int("shard-restarts", 0, "restart budget per crashed shard worker (default: 3; negative disables restarts)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile covering the run to this path (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this path (go tool pprof)")
	)
	flag.Parse()

	stopProf, perr := prof.Start(*cpuProfile, *memProfile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "govhost:", perr)
		os.Exit(1)
	}
	defer stopProf()

	if *exps == "list" {
		for _, e := range govhost.Experiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "govhost: -resume requires -checkpoint")
		os.Exit(1)
	}
	if *fromJSONL != "" && *checkpoint != "" {
		fmt.Fprintln(os.Stderr, "govhost: -checkpoint applies to pipeline runs; it cannot be combined with -from-jsonl")
		os.Exit(1)
	}
	if *shardSpec != "" && *shards > 0 {
		fmt.Fprintln(os.Stderr, "govhost: -shard runs a single worker and -shards runs the supervisor; pick one")
		os.Exit(1)
	}
	if (*shardSpec != "" || *shards > 0) && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "govhost: sharded execution requires -checkpoint (the shared directory the shards assemble through)")
		os.Exit(1)
	}
	if *shards > 0 && *fromJSONL != "" {
		fmt.Fprintln(os.Stderr, "govhost: -shards runs the pipeline; it cannot be combined with -from-jsonl")
		os.Exit(1)
	}

	cfg := govhost.Config{
		Seed:               *seed,
		Scale:              *scale,
		CrawlDepth:         *depth,
		Concurrency:        *concurrency,
		CountryConcurrency: *countryConc,
		FetchConcurrency:   *fetchConc,
		MaxURLsPerCrawl:    *maxURLs,
		FaultProfile:       *faultProf,
		FaultSeed:          *faultSeed,
		RetryAttempts:      *retries,
		RetryBudget:        *retryBudget,
		TrustIPInfo:        *trustIPInfo,
		DisableSAN:         *noSAN,
		SkipTopsites:       *noTopsites,
		CheckpointDir:      *checkpoint,
		Resume:             *resume,
	}
	if *countries != "" {
		cfg.Countries = strings.Split(strings.ToUpper(*countries), ",")
	}

	//lint:ignore nondeterminism -- stderr elapsed-time progress line; no study or report bytes derive from it
	start := time.Now()

	if *shardSpec != "" {
		idxStr, nStr, ok := strings.Cut(*shardSpec, "/")
		idx, ierr := strconv.Atoi(idxStr)
		n, nerr := strconv.Atoi(nStr)
		if !ok || ierr != nil || nerr != nil || n <= 0 || idx < 0 || idx >= n {
			fmt.Fprintf(os.Stderr, "govhost: -shard wants 'i/n' with 0 <= i < n, got %q\n", *shardSpec)
			os.Exit(1)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		done, err := govhost.RunShardWorker(ctx, cfg, idx, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "govhost:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "shard %d/%d complete in %v: %d countries checkpointed in %s\n",
				//lint:ignore nondeterminism -- stderr elapsed-time progress line; no study or report bytes derive from it
				idx, n, time.Since(start).Round(time.Millisecond), done, *checkpoint)
		}
		return
	}

	var study *govhost.Study
	var err error
	if *fromJSONL != "" {
		f, ferr := os.Open(*fromJSONL)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "govhost:", ferr)
			os.Exit(1)
		}
		study, err = govhost.Load(f)
		f.Close()
	} else {
		// ^C cancels the run context instead of killing the process, so
		// a checkpointed run drains every completed country to disk
		// before exiting (a second ^C kills outright).
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if *shards > 0 {
			study, err = runSharded(ctx, cfg, *shards, *shardRetry, *quiet)
		} else {
			study, err = govhost.Run(ctx, cfg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "govhost:", err)
		os.Exit(1)
	}
	if !*quiet {
		st := study.Stats()
		fmt.Fprintf(os.Stderr, "study complete in %v: %d URLs, %d hostnames, %d IPs, %d ASes\n",
			//lint:ignore nondeterminism -- stderr elapsed-time progress line; no study or report bytes derive from it
			time.Since(start).Round(time.Millisecond),
			st.UniqueURLs, st.UniqueHostnames, st.UniqueIPs, st.ASes)
	}

	for _, dump := range []struct {
		path  string
		write func(io.Writer) error
	}{
		{*dumpJSONL, study.ExportJSONL},
		{*dumpCSV, study.ExportCSV},
	} {
		if dump.path == "" {
			continue
		}
		f, err := os.Create(dump.path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "govhost:", err)
			os.Exit(1)
		}
		if err := dump.write(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "govhost:", err)
			os.Exit(1)
		}
		f.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "dataset written to %s\n", dump.path)
		}
	}

	if *exps == "all" {
		fmt.Print(study.ReportAll())
	} else {
		for _, id := range strings.Split(*exps, ",") {
			fmt.Print(study.Report(strings.TrimSpace(id)))
			fmt.Println()
		}
	}

	if *metricsOut != "" {
		snap, ok := study.Metrics()
		if !ok {
			if *fromJSONL != "" {
				// A re-analysis never ran the pipeline, so the per-stage
				// ledger (fetches, cache hits, scheduler shape) would be
				// all zeros — printing it as if measured would be
				// misleading, and the old behaviour (exit 1) made the
				// flag combination look like an error. Say what is and
				// is not available instead.
				st := study.Stats()
				fmt.Fprintf(os.Stderr, "govhost: -metrics: no pipeline metrics in a re-analysis (-from-jsonl): the per-stage ledger describes a live run and was not serialised.\n")
				fmt.Fprintf(os.Stderr, "govhost: dataset-level statistics are available: %d URLs, %d hostnames, %d IPs, %d ASes (%d gov), %d server countries; run -exp coverage for the per-country coverage table.\n",
					st.UniqueURLs, st.UniqueHostnames, st.UniqueIPs, st.ASes, st.GovASes, st.ServerCountries)
				return
			}
			fmt.Fprintln(os.Stderr, "govhost: no metrics snapshot (metrics disabled)")
			os.Exit(1)
		}
		switch *metricsOut {
		case "text":
			fmt.Print(snap.Text())
		case "json":
			buf, err := snap.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "govhost:", err)
				os.Exit(1)
			}
			os.Stdout.Write(buf)
			fmt.Println()
		default:
			fmt.Fprintf(os.Stderr, "govhost: -metrics must be 'text' or 'json', got %q\n", *metricsOut)
			os.Exit(1)
		}
	}
}

// runSharded re-executes this binary as n shard worker processes under
// the crash supervisor, then assembles their checkpoints into the
// study. Worker crash/restart/exhaustion events stream to stderr.
func runSharded(ctx context.Context, cfg govhost.Config, n, restarts int, quiet bool) (*govhost.Study, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	base := workerArgs()
	study, outcomes, err := govhost.RunSharded(ctx, cfg, govhost.Sharding{
		Shards:      n,
		MaxRestarts: restarts,
		Worker: func(ctx context.Context, shard, shards int) *exec.Cmd {
			args := append(append([]string(nil), base...), "-shard", fmt.Sprintf("%d/%d", shard, shards))
			cmd := exec.CommandContext(ctx, exe, args...)
			cmd.Stderr = os.Stderr
			return cmd
		},
		Log: os.Stderr,
	})
	if err != nil {
		return nil, err
	}
	if !quiet {
		for _, o := range outcomes {
			switch {
			case o.Err != nil:
				fmt.Fprintf(os.Stderr, "shard %d/%d: gave up after %d restarts; its uncollected countries are marked failed in the partial dataset\n", o.Shard, n, o.Restarts)
			case o.Restarts > 0:
				fmt.Fprintf(os.Stderr, "shard %d/%d: recovered after %d restart(s)\n", o.Shard, n, o.Restarts)
			}
		}
	}
	return study, nil
}

// workerArgs rebuilds the command line for a shard worker: every study
// flag the user set passes through verbatim; supervisor-only and
// report/export flags do not (workers collect and checkpoint, the
// assembly pass reports).
func workerArgs() []string {
	drop := map[string]bool{
		"shard": true, "shards": true, "shard-restarts": true,
		"exp": true, "dump-jsonl": true, "dump-csv": true, "from-jsonl": true,
		"metrics": true, "cpuprofile": true, "memprofile": true,
	}
	var args []string
	flag.Visit(func(f *flag.Flag) {
		if !drop[f.Name] {
			args = append(args, "-"+f.Name+"="+f.Value.String())
		}
	})
	return args
}
