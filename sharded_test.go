package govhost

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The multi-process sharding tests re-execute this test binary as the
// shard worker. TestMain intercepts the re-execution before any test
// runs: when the worker env var is set, the process is a shard worker,
// not a test run.
const (
	shardWorkerEnv = "GOVHOST_TEST_SHARD_WORKER" // "i/n:<checkpoint dir>"
	shardCrashEnv  = "GOVHOST_TEST_SHARD_CRASH"  // "once:<marker file>" or "always"
)

func TestMain(m *testing.M) {
	if spec := os.Getenv(shardWorkerEnv); spec != "" {
		shardWorkerMain(spec)
		return
	}
	if path := os.Getenv(serveDaemonEnv); path != "" {
		serveDaemonMain(path)
		return
	}
	os.Exit(m.Run())
}

// execShardConfig is the study both the supervisor-side tests and the
// re-executed workers run; the two must agree or the checkpoint
// manifest refuses the workers.
func execShardConfig() Config {
	return Config{
		Seed:         7,
		Scale:        0.02,
		Countries:    []string{"US", "UY", "NG"},
		FaultProfile: "mild",
		SkipTopsites: true,
	}
}

func shardWorkerMain(spec string) {
	switch crash, marker, _ := strings.Cut(os.Getenv(shardCrashEnv), ":"); crash {
	case "always":
		os.Exit(3)
	case "once":
		if _, err := os.Stat(marker); err != nil {
			if err := os.WriteFile(marker, []byte("crashed\n"), 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "shard worker:", err)
				os.Exit(1)
			}
			os.Exit(3)
		}
	}
	shape, dir, ok := strings.Cut(spec, ":")
	idxStr, nStr, ok2 := strings.Cut(shape, "/")
	idx, ierr := strconv.Atoi(idxStr)
	n, nerr := strconv.Atoi(nStr)
	if !ok || !ok2 || ierr != nil || nerr != nil {
		fmt.Fprintf(os.Stderr, "shard worker: bad spec %q\n", spec)
		os.Exit(1)
	}
	cfg := execShardConfig()
	cfg.CheckpointDir = dir
	if _, err := RunShardWorker(context.Background(), cfg, idx, n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// execWorker builds a Worker factory that re-executes the test binary
// as a shard worker over dir. crashEnv, when non-empty, is the
// shardCrashEnv value injected into the given shard only.
func execWorker(t *testing.T, dir, crashEnv string, crashShard int) func(context.Context, int, int) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context, shard, shards int) *exec.Cmd {
		cmd := exec.CommandContext(ctx, exe)
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d/%d:%s", shardWorkerEnv, shard, shards, dir))
		if crashEnv != "" && shard == crashShard {
			cmd.Env = append(cmd.Env, shardCrashEnv+"="+crashEnv)
		}
		cmd.Stderr = os.Stderr
		return cmd
	}
}

func studyArtifacts(t *testing.T, s *Study) (jsonl, det []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := s.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	snap, ok := s.Metrics()
	if !ok {
		t.Fatal("study has no metrics snapshot")
	}
	det, err := snap.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), det
}

// TestRunShardedMultiProcess drives the real thing: two worker
// processes over a shared checkpoint directory, one crashing on its
// first spawn, the supervisor restarting it — and the assembled study
// must export the bytes an uninterrupted in-process run exports.
func TestRunShardedMultiProcess(t *testing.T) {
	cfg := execShardConfig()
	base, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSONL, wantDet := studyArtifacts(t, base)

	dir := t.TempDir()
	marker := filepath.Join(t.TempDir(), "crashed-once")
	scfg := cfg
	scfg.CheckpointDir = dir
	study, outcomes, err := RunSharded(context.Background(), scfg, Sharding{
		Shards:      2,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Worker:      execWorker(t, dir, "once:"+marker, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("shard %d ended in error: %v", o.Shard, o.Err)
		}
	}
	if outcomes[1].Restarts != 1 {
		t.Fatalf("crash-once shard restarted %d times, want 1", outcomes[1].Restarts)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("crash marker missing — the worker never crashed: %v", err)
	}

	jsonl, det := studyArtifacts(t, study)
	if !bytes.Equal(jsonl, wantJSONL) {
		t.Error("sharded JSONL diverged from the single-process run")
	}
	if !bytes.Equal(det, wantDet) {
		t.Error("sharded deterministic metrics diverged from the single-process run")
	}
	snap, _ := study.Metrics()
	if snap.Runtime.Shard.Restarts != 1 {
		t.Errorf("runtime shard.restarts = %d, want 1", snap.Runtime.Shard.Restarts)
	}
	if snap.Runtime.Shard.Exhausted != 0 {
		t.Errorf("runtime shard.exhausted = %d, want 0", snap.Runtime.Shard.Exhausted)
	}
}

// TestRunShardedExhaustedShardDegrades: a worker that crashes on every
// spawn runs its restart budget dry; the run still assembles, with the
// dead shard's countries as typed failure rows.
func TestRunShardedExhaustedShardDegrades(t *testing.T) {
	cfg := execShardConfig()
	dir := t.TempDir()
	scfg := cfg
	scfg.CheckpointDir = dir
	study, outcomes, err := RunSharded(context.Background(), scfg, Sharding{
		Shards:      2,
		MaxRestarts: 1,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Worker:      execWorker(t, dir, "always", 1),
	})
	if err != nil {
		t.Fatalf("an exhausted shard must degrade the run, not fail it: %v", err)
	}
	if outcomes[0].Err != nil {
		t.Fatalf("healthy shard failed: %v", outcomes[0].Err)
	}
	if outcomes[1].Err == nil || outcomes[1].Restarts != 1 {
		t.Fatalf("always-crashing shard outcome = %+v, want 1 restart and an error", outcomes[1])
	}
	snap, _ := study.Metrics()
	if snap.Runtime.Shard.Exhausted != 1 {
		t.Errorf("runtime shard.exhausted = %d, want 1", snap.Runtime.Shard.Exhausted)
	}

	// Shard 1 of 2 owns the middle of the sorted panel [NG US UY].
	if got := study.FailedCountries(); len(got) != 1 || got[0] != "US" {
		t.Fatalf("failed countries = %v, want exactly [US]", got)
	}
	for _, r := range study.ds.Records {
		if r.Country == "US" {
			t.Fatal("failed country US contributed records to the partial dataset")
		}
	}
}
