package govhost

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/export"
)

// fullStudy is shared across API tests: one full-panel run at a small
// scale (building it once keeps the suite fast).
var (
	fullStudyOnce sync.Once
	fullStudyVal  *Study
	fullStudyErr  error
)

func fullStudy(t testing.TB) *Study {
	t.Helper()
	fullStudyOnce.Do(func() {
		fullStudyVal, fullStudyErr = Run(context.Background(), Config{Scale: 0.1})
	})
	if fullStudyErr != nil {
		t.Fatal(fullStudyErr)
	}
	return fullStudyVal
}

func sum4(m [4]float64) float64 { return m[0] + m[1] + m[2] + m[3] }

func TestGlobalSharesMatchPaperShape(t *testing.T) {
	s := fullStudy(t)
	sh := s.GlobalShares()
	if math.Abs(sum4(sh.URLs)-1) > 1e-9 || math.Abs(sum4(sh.Bytes)-1) > 1e-9 {
		t.Fatalf("shares not normalized: %+v", sh)
	}
	thirdParty := 1 - sh.URLs[GovtSOE]
	// Paper: 62 % of URLs from third parties.
	if thirdParty < 0.50 || thirdParty > 0.75 {
		t.Errorf("third-party URL share = %.3f, want ≈0.62", thirdParty)
	}
	// Regional category stays marginal.
	if sh.URLs[Region3P] > 0.10 {
		t.Errorf("3P Regional share = %.3f, implausibly large", sh.URLs[Region3P])
	}
}

func TestDomesticSplitMatchesPaperShape(t *testing.T) {
	s := fullStudy(t)
	sp := s.DomesticSplit()
	// Paper: 87 % served domestically, 77 % domestically registered,
	// and registration is always the weaker notion of "domestic".
	if sp.GeoDomestic < 0.78 || sp.GeoDomestic > 0.95 {
		t.Errorf("geo domestic = %.3f, want ≈0.87", sp.GeoDomestic)
	}
	if sp.RegDomestic < 0.62 || sp.RegDomestic > 0.88 {
		t.Errorf("reg domestic = %.3f, want ≈0.77", sp.RegDomestic)
	}
	if sp.RegDomestic >= sp.GeoDomestic {
		t.Errorf("registration (%.3f) must be less domestic than serving (%.3f): foreign-registered CDNs serve domestically",
			sp.RegDomestic, sp.GeoDomestic)
	}
}

func TestRegionalSharesOrdering(t *testing.T) {
	s := fullStudy(t)
	regional := s.RegionalShares()
	if len(regional) != 7 {
		t.Fatalf("regions = %d, want 7", len(regional))
	}
	// South Asia is by far the most government-hosted region; North
	// America leans hardest on global providers (Fig. 4).
	if regional["SA"].URLs[GovtSOE] < regional["NA"].URLs[GovtSOE] {
		t.Error("SA must host more on government infrastructure than NA")
	}
	if regional["NA"].URLs[Global3P] < regional["SA"].URLs[Global3P] {
		t.Error("NA must lean on global providers more than SA")
	}
	if regional["SSA"].URLs[GovtSOE] > 0.15 {
		t.Errorf("SSA Govt&SOE share = %.2f, paper reports ≈0.01", regional["SSA"].URLs[GovtSOE])
	}
}

func TestMajorityMapCoversCountries(t *testing.T) {
	s := fullStudy(t)
	m := s.MajorityThirdParty()
	if len(m) < 55 {
		t.Fatalf("majority map covers %d countries", len(m))
	}
	if m["UY"] {
		t.Error("Uruguay serves 98% of bytes from Govt&SOE; must not be third-party-majority")
	}
	if !m["AR"] {
		t.Error("Argentina relies ~90% on third parties; must be third-party-majority")
	}
}

func TestCrossBorderBilateralFindings(t *testing.T) {
	s := fullStudy(t)
	cases := []struct {
		src, dst string
		lo, hi   float64
	}{
		{"MX", "US", 0.55, 0.95}, // paper: 79.2 %
		{"CN", "JP", 0.12, 0.45}, // paper: 26.4 %
		{"NZ", "AU", 0.20, 0.60}, // paper: 40 %
		{"FR", "NC", 0.08, 0.35}, // paper: 18.0 %
	}
	for _, tc := range cases {
		got := s.FlowShare(ByLocation, tc.src, tc.dst)
		if got < tc.lo || got > tc.hi {
			t.Errorf("%s→%s = %.3f, want in [%.2f, %.2f]", tc.src, tc.dst, got, tc.lo, tc.hi)
		}
	}
	// Brazil's LGPD keeps almost everything home.
	if got := s.FlowShare(ByLocation, "BR", "US"); got > 0.12 {
		t.Errorf("BR→US = %.3f, paper reports 1.8%%", got)
	}
}

func TestGDPRCompliance(t *testing.T) {
	s := fullStudy(t)
	frac, total := s.GDPRCompliance()
	if total == 0 {
		t.Fatal("no EU URLs observed")
	}
	if frac < 0.93 {
		t.Errorf("GDPR compliance = %.3f, paper reports 98.3%%", frac)
	}
}

func TestInRegionDependencyShape(t *testing.T) {
	s := fullStudy(t)
	in := s.InRegionDependency()
	// Table 5: ECA keeps almost everything in-region; MENA and SA keep
	// almost nothing.
	if in["ECA"] < 0.6 {
		t.Errorf("ECA in-region = %.3f, want high (paper 94.9%%)", in["ECA"])
	}
	if in["MENA"] > 0.3 || in["SA"] > 0.3 {
		t.Errorf("MENA/SA in-region = %.3f/%.3f, want low", in["MENA"], in["SA"])
	}
	if in["ECA"] <= in["LAC"] {
		t.Error("ECA must stay in-region far more than LAC")
	}
}

func TestGlobalProvidersRanking(t *testing.T) {
	s := fullStudy(t)
	provs := s.GlobalProviders()
	if len(provs) < 8 {
		t.Fatalf("only %d global providers observed", len(provs))
	}
	if !strings.Contains(provs[0].Org, "Cloudflare") {
		t.Errorf("leader = %s, paper: Cloudflare", provs[0].Org)
	}
	if provs[0].Countries < 30 {
		t.Errorf("leader footprint = %d countries, want ≈49", provs[0].Countries)
	}
	for i := 1; i < len(provs); i++ {
		if provs[i].Countries > provs[i-1].Countries {
			t.Fatal("footprints not ranked")
		}
	}
}

func TestDiversificationDirection(t *testing.T) {
	s := fullStudy(t)
	divs := s.Diversification()
	single := map[Category][2]int{}
	for _, d := range divs {
		c := single[d.Dominant]
		c[1]++
		if d.TopNetShare > 0.5 {
			c[0]++
		}
		single[d.Dominant] = c
	}
	gov := single[GovtSOE]
	glo := single[Global3P]
	if gov[1] == 0 || glo[1] == 0 {
		t.Fatal("degenerate dominant groups")
	}
	govShare := float64(gov[0]) / float64(gov[1])
	gloShare := float64(glo[0]) / float64(glo[1])
	// §7.2: 63 % of Govt&SOE countries vs 32 % of 3P-Global countries
	// depend on a single network — the ordering is the finding.
	if govShare <= gloShare {
		t.Errorf("single-network dependence: Govt %.2f vs Global %.2f; ordering inverted", govShare, gloShare)
	}
}

func TestClusterBranches(t *testing.T) {
	s := fullStudy(t)
	branches, err := s.ClusterBranches(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 3 {
		t.Fatalf("branch count = %d, want 3", len(branches))
	}
	find := func(code string) int {
		for i, br := range branches {
			for _, c := range br {
				if c == code {
					return i
				}
			}
		}
		return -1
	}
	// §5.3: Brazil, Vietnam and Russia share the Govt&SOE sub-tree.
	if find("BR") != find("VN") || find("BR") != find("RU") {
		t.Error("BR, VN and RU must share a branch")
	}
	// The Southern Cone splits across all three branches.
	ar, br, cl := find("AR"), find("BR"), find("CL")
	if ar == br || ar == cl || br == cl {
		t.Errorf("AR/BR/CL must sit in three different branches (got %d/%d/%d)", ar, br, cl)
	}
}

func TestCompareTopsites(t *testing.T) {
	s := fullStudy(t)
	c := s.CompareTopsites()
	// Appendix D: top sites lean on global providers far more than
	// governments do, and host domestically far less.
	if c.Topsites.URLs[Global3P] <= c.Gov.URLs[Global3P] {
		t.Error("top sites must use global providers more than governments")
	}
	if c.TopsitesSplit.GeoDomestic >= c.GovSplit.GeoDomestic {
		t.Error("top sites must serve domestically less than governments")
	}
	if c.Topsites.URLs[GovtSOE] < 0.05 || c.Topsites.URLs[GovtSOE] > 0.40 {
		t.Errorf("self-hosting share = %.3f, want ≈0.18", c.Topsites.URLs[GovtSOE])
	}
	if c.TopsitesSplit.RegDomestic > c.GovSplit.RegDomestic {
		t.Error("top sites must be foreign-registered more often than governments")
	}
}

func TestExplanatoryModel(t *testing.T) {
	s := fullStudy(t)
	coefs, vifs, err := s.ExplanatoryModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(coefs) != 7 { // intercept + six covariates
		t.Fatalf("coefficients = %d", len(coefs))
	}
	for name, v := range vifs {
		// Table 7 keeps every VIF under 10; with our 61-country panel
		// the log-GDP regressor can drift slightly above, so the test
		// guards against outright degeneracy rather than the paper's
		// exact bound.
		if v >= 16 {
			t.Errorf("VIF[%s] = %.2f; implausibly collinear", name, v)
		}
	}
	byName := map[string]Coefficient{}
	for _, c := range coefs {
		byName[c.Name] = c
	}
	// The paper's strongest directional finding: higher network
	// readiness → fewer services hosted abroad.
	if byName["NRI"].Estimate >= 0.2 {
		t.Errorf("NRI coefficient = %+.3f, want negative-leaning (paper -0.660)", byName["NRI"].Estimate)
	}
}

func TestMethodYields(t *testing.T) {
	s := fullStudy(t)
	tld, domain, san := s.MethodYields()
	if math.Abs(tld+domain+san-1) > 1e-9 {
		t.Fatalf("yields don't sum to 1: %v %v %v", tld, domain, san)
	}
	if domain < tld {
		t.Error("domain matching must dominate (paper: 72.1% vs 27.6%)")
	}
	if san > 0.02 {
		t.Errorf("SAN yield = %.4f, paper reports 0.3%%", san)
	}
}

func TestStatsScaleConsistency(t *testing.T) {
	s := fullStudy(t)
	st := s.Stats()
	if st.ServerCountries < 40 || st.ServerCountries > 68 {
		t.Errorf("server countries = %d, want ≤68 and substantial", st.ServerCountries)
	}
	anycastShare := float64(st.AnycastIPs) / float64(st.UniqueIPs)
	if anycastShare < 0.03 || anycastShare > 0.25 {
		t.Errorf("anycast share = %.3f, paper reports 10.1%%", anycastShare)
	}
	govShare := float64(st.GovASes) / float64(st.ASes)
	if govShare < 0.2 || govShare > 0.75 {
		t.Errorf("government-AS share = %.3f, paper reports 36.5%%", govShare)
	}
}

func TestReportsRenderForEveryExperiment(t *testing.T) {
	s := fullStudy(t)
	for _, e := range Experiments() {
		out := s.Report(e.ID)
		if len(out) < 40 {
			t.Errorf("experiment %s renders %d bytes", e.ID, len(out))
		}
		if !strings.Contains(out, e.Title) {
			t.Errorf("experiment %s report missing its title", e.ID)
		}
	}
	if s.Report("nonsense") == "" || !strings.Contains(s.Report("nonsense"), "unknown") {
		t.Error("unknown experiment must say so")
	}
	all := s.ReportAll()
	if len(all) < 2000 {
		t.Errorf("ReportAll renders only %d bytes", len(all))
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12",
		"table1", "table2", "table3", "table4", "table5", "table7", "table8", "table9",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from the registry", id)
		}
	}
}

func TestCountrySubsetRun(t *testing.T) {
	s, err := Run(context.Background(), Config{Scale: 0.03, Countries: []string{"UY", "AR"}})
	if err != nil {
		t.Fatal(err)
	}
	shares := s.CountryShares()
	if len(shares) != 2 {
		t.Fatalf("countries = %d, want 2", len(shares))
	}
	if _, ok := shares["UY"]; !ok {
		t.Fatal("UY missing")
	}
}

func TestCountryDrilldownReport(t *testing.T) {
	s := fullStudy(t)
	out := s.Report("country:UY")
	for _, want := range []string{"Uruguay", "hosting signature", "Govt&SOE"} {
		if !strings.Contains(out, want) {
			t.Errorf("drill-down missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(s.Report("country:zz"), "unknown country") {
		t.Error("unknown country drill-down must say so")
	}
}

func TestHTTPSAdoptionExtension(t *testing.T) {
	s := fullStudy(t)
	a := s.HTTPSAdoption()
	if a.Hostnames == 0 {
		t.Fatal("no hostnames measured")
	}
	// Singanamalla et al.: over 70 % of government sites lack valid
	// HTTPS; our generator targets that headline.
	lacking := 1 - a.GlobalValid
	if lacking < 0.55 || lacking > 0.85 {
		t.Errorf("hostnames lacking valid HTTPS = %.3f, want ≈0.70", lacking)
	}
	if len(a.ByRegion) != 7 {
		t.Errorf("regions covered = %d", len(a.ByRegion))
	}
}

func TestTrendYearsShiftTowardGlobal(t *testing.T) {
	base := Config{Scale: 0.03, SkipTopsites: true,
		Countries: []string{"US", "DE", "BR", "IN", "JP", "UY", "PL", "ZA"}}
	now, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	later := base
	later.TrendYears = 6
	future, err := Run(context.Background(), later)
	if err != nil {
		t.Fatal(err)
	}
	a, b := now.GlobalShares(), future.GlobalShares()
	if b.URLs[Global3P] <= a.URLs[Global3P] {
		t.Fatalf("consolidation trend did not raise the global share: %.3f -> %.3f",
			a.URLs[Global3P], b.URLs[Global3P])
	}
	if b.URLs[GovtSOE] >= a.URLs[GovtSOE] {
		t.Fatalf("trend did not erode Govt&SOE: %.3f -> %.3f",
			a.URLs[GovtSOE], b.URLs[GovtSOE])
	}
}

func TestExportRoundTripAtStudyLevel(t *testing.T) {
	s := fullStudy(t)
	var buf bytes.Buffer
	if err := s.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := export.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.TotalBytes() != s.ds.TotalBytes() {
		t.Fatal("byte totals changed across export/import")
	}
	// A key analysis must give identical results on the reloaded data.
	orig := analysis.GlobalShares(s.ds)
	again := analysis.GlobalShares(reloaded)
	if orig.URLs != again.URLs || orig.Bytes != again.Bytes {
		t.Fatal("global shares changed across export/import")
	}
	var csv bytes.Buffer
	if err := s.ExportCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if csv.Len() == 0 {
		t.Fatal("empty CSV export")
	}
}

func TestPageWeightExtensionDirection(t *testing.T) {
	s := fullStudy(t)
	res := analysis.Affordability(s.ds, s.env.World)
	if len(res.PerCountry) < 40 {
		t.Fatalf("only %d countries with landing sizes", len(res.PerCountry))
	}
	// Habib et al.: development correlates negatively with page weight.
	if res.PearsonHDI >= 0.1 {
		t.Errorf("corr(HDI, landing size) = %.2f, want negative-leaning", res.PearsonHDI)
	}
}

func TestLoadReconstructsStudy(t *testing.T) {
	s := fullStudy(t)
	var buf bytes.Buffer
	if err := s.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Analyses must agree exactly with the original study.
	if loaded.GlobalShares() != s.GlobalShares() {
		t.Fatal("global shares differ after reload")
	}
	if loaded.DomesticSplit() != s.DomesticSplit() {
		t.Fatal("domestic split differs after reload")
	}
	a, b := s.GlobalProviders(), loaded.GlobalProviders()
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatal("provider footprints differ after reload")
	}
	// Reports render too (they only need the static world).
	for _, id := range []string{"fig2", "fig9", "table5", "ext-https", "country:UY"} {
		if out := loaded.Report(id); len(out) < 40 {
			t.Errorf("report %s too short on a loaded study", id)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSameSeedByteIdenticalExport(t *testing.T) {
	// The full pipeline run twice with the same seed — including a
	// MaxURLs cap and Concurrency > 1, the configuration that used to
	// race frontier admission — must export byte-identical datasets.
	cfg := Config{Scale: 0.03, Seed: 7,
		Countries:        []string{"US", "MX", "UY", "FR", "JP"},
		Concurrency:      4,
		FetchConcurrency: 8,
		MaxURLsPerCrawl:  30,
	}
	export := func() []byte {
		s, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var jsonl, csv bytes.Buffer
		if err := s.ExportJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		if err := s.ExportCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return append(jsonl.Bytes(), csv.Bytes()...)
	}
	first := export()
	second := export()
	if !bytes.Equal(first, second) {
		i := 0
		for i < len(first) && i < len(second) && first[i] == second[i] {
			i++
		}
		lo, hi := i-60, i+60
		if lo < 0 {
			lo = 0
		}
		if hi > len(first) {
			hi = len(first)
		}
		t.Fatalf("exports diverge at byte %d:\n%q", i, first[lo:hi])
	}
}

func TestLoadPreservesMeasuredStats(t *testing.T) {
	// Version-2+ files carry the crawl's per-country statistics
	// verbatim; Load must keep them (not re-derive lossy approximations
	// from the records) and recompute only the dataset totals. The
	// sharpest check is a full round trip: export → Load → export must
	// be byte-identical, coverage counters included.
	s := fullStudy(t)
	var first bytes.Buffer
	if err := s.ExportJSONL(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.ExportJSONL(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("export → Load → export is not byte-identical: measured stats were clobbered")
	}
	// The live crawl's coverage accounting survived: attempts and
	// retries only exist in the measured stats, never in the records.
	if loaded.ds.TotalAttempted == 0 || loaded.ds.TotalAttempted != s.ds.TotalAttempted {
		t.Fatalf("attempted: loaded %d, want %d", loaded.ds.TotalAttempted, s.ds.TotalAttempted)
	}
	if loaded.ds.TotalRetries != s.ds.TotalRetries {
		t.Fatalf("retries: loaded %d, want %d", loaded.ds.TotalRetries, s.ds.TotalRetries)
	}
}
