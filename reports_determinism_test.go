package govhost

import (
	"context"
	"testing"
)

// TestReportsByteIdenticalAcrossConcurrencyShapes locks every rendered
// experiment — not just the exports the chaos suite goldens — to the
// seed: the same study at three different concurrency shapes must
// produce byte-identical report text for every experiment ID. This is
// the dynamic counterpart of govlint's map-order rule, and it covers
// the report-only aggregation paths (e.g. the Fig. 11 HHI
// distributions) that dataset exports never serialize. The "metrics"
// report is excluded: its timing half measures the wall clock by
// design.
func TestReportsByteIdenticalAcrossConcurrencyShapes(t *testing.T) {
	base := Config{Scale: 0.03, Seed: 11,
		Countries:       []string{"US", "MX", "UY", "FR", "JP"},
		MaxURLsPerCrawl: 30,
	}
	shapes := []struct {
		name           string
		country, fetch int
	}{
		{"serial", 1, 1},
		{"narrow", 2, 3},
		{"wide", 4, 8},
	}
	type rendered map[string]string
	render := func(country, fetch int) rendered {
		cfg := base
		cfg.Concurrency = country
		cfg.FetchConcurrency = fetch
		s, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := rendered{}
		for _, e := range Experiments() {
			if e.ID == "metrics" {
				continue
			}
			out[e.ID] = s.Report(e.ID)
		}
		out["country:UY"] = s.Report("country:UY")
		return out
	}
	ref := render(shapes[0].country, shapes[0].fetch)
	for _, shape := range shapes[1:] {
		got := render(shape.country, shape.fetch)
		for id, want := range ref {
			if got[id] != want {
				t.Errorf("report %q differs between the %s and %s concurrency shapes:\n--- %s ---\n%s\n--- %s ---\n%s",
					id, shapes[0].name, shape.name, shapes[0].name, clip(want), shape.name, clip(got[id]))
			}
		}
	}
}

// TestReportsByteIdenticalAcrossAnalysisWorkers sweeps the parallel
// index build over a chaos-degraded partial dataset: the same
// aggressive-fault study rendered with the analysis scan split across
// 1, 2 and 8 workers must produce byte-identical report text for
// every index-derived experiment. Faults leave rows with missing
// registration/location fields and whole failed countries, so this is
// the degraded-shape counterpart of the in-package worker-sweep test.
func TestReportsByteIdenticalAcrossAnalysisWorkers(t *testing.T) {
	base := Config{Scale: 0.03, Seed: 11,
		Countries:       []string{"US", "MX", "UY", "FR", "JP", "NG", "DE"},
		MaxURLsPerCrawl: 30,
		FaultProfile:    "aggressive",
	}
	type rendered map[string]string
	render := func(workers int) rendered {
		cfg := base
		cfg.AnalysisWorkers = workers
		s, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := rendered{}
		for _, e := range Experiments() {
			if e.ID == "metrics" {
				continue
			}
			out[e.ID] = s.Report(e.ID)
		}
		return out
	}
	ref := render(1)
	for _, workers := range []int{2, 8} {
		got := render(workers)
		for id, want := range ref {
			if got[id] != want {
				t.Errorf("report %q differs between 1 and %d analysis workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
					id, workers, clip(want), workers, clip(got[id]))
			}
		}
	}
}

// clip bounds a report body for failure output.
func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}
