// Package govhost reproduces "Of Choices and Control — A Comparative
// Analysis of Government Hosting" (IMC 2024) end to end: it
// materialises a synthetic Internet calibrated against the paper's
// published findings, runs the paper's measurement pipeline over it
// (in-country vantage points, recursive crawling, government-URL
// classification, serving-infrastructure identification, multistage
// geolocation), and exposes every analysis of §5–§7 and the appendices
// through a typed public API.
//
// Quick start:
//
//	study, err := govhost.Run(ctx, govhost.Config{Scale: 0.05})
//	shares := study.GlobalShares()          // Fig. 2
//	flows := study.CrossBorderFlows(...)    // Fig. 9
//	fmt.Println(study.Report("fig2"))       // paper-vs-measured text
package govhost

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/metrics"
	"repro/internal/world"
)

// Config parameterises a study run. The zero value runs the full
// 61-country panel at 10 % of the paper's estate size with seed 42.
type Config struct {
	// Seed drives every random choice; equal seeds give bit-identical
	// studies. Defaults to 42.
	Seed int64
	// Scale is the fraction of the paper's estate size to generate
	// (1.0 ≈ one million URLs). Defaults to 0.1.
	Scale float64
	// Countries restricts the panel to the given ISO codes.
	Countries []string
	// CrawlDepth overrides the paper's seven-level crawl when positive.
	CrawlDepth int
	// Concurrency is the back-compat combined parallelism knob: when
	// CountryConcurrency or FetchConcurrency is unset, each inherits
	// this value (0 picks a default of 8). Historically this knob was
	// applied at two levels — countries in flight × workers per crawl —
	// so a study could spawn Concurrency² goroutines; the unified
	// scheduler spends it once.
	Concurrency int
	// CountryConcurrency bounds how many countries are crawled in
	// parallel; 0 inherits Concurrency.
	CountryConcurrency int
	// FetchConcurrency sizes the single study-wide worker pool that
	// executes every fetch and annotation across all countries; 0
	// inherits Concurrency. Total goroutine count during a run is
	// CountryConcurrency + FetchConcurrency.
	FetchConcurrency int
	// MaxURLsPerCrawl caps the distinct URLs each country crawl admits
	// (0 = unlimited). The cap cuts a sorted per-depth frontier, so
	// capped runs stay seed-deterministic at any concurrency.
	MaxURLsPerCrawl int
	// SkipTopsites disables the Appendix D popular-site baseline.
	SkipTopsites bool

	// FaultProfile selects a fault-injection profile for chaos runs:
	// "off" (default), "mild", "aggressive", or a key=value spec such
	// as "timeout=0.1,reset=0.05" (see internal/faults.ParseProfile).
	FaultProfile string
	// FaultSeed seeds the fault plan independently of Seed, so the
	// same study can be replayed under different fault draws. 0
	// inherits Seed.
	FaultSeed int64
	// RetryAttempts bounds fetch attempts per URL (0 picks a default
	// of 3, negative disables retries).
	RetryAttempts int
	// RetryBudget caps total retries across the whole study as a cost
	// safety valve (0 = unlimited). A binding budget trades
	// byte-reproducibility for bounded work.
	RetryBudget int64

	// TrendYears evolves the synthetic world forward by N years of the
	// consolidation trend (extension; related work measures hosting
	// shifting steadily onto global providers).
	TrendYears int

	// Ablations.
	TrustIPInfo       bool    // skip §3.5 verification, trust the geo database
	GlobalThresholdMS float64 // replace per-country road thresholds
	DisableSAN        bool    // drop the Table 1 SAN-matching step

	// DisableMetrics turns off the per-stage metrics registry (on by
	// default; the instrumentation costs well under 3 % of a run).
	DisableMetrics bool

	// AnalysisWorkers partitions the one-pass analysis index build
	// across this many goroutines (0 picks a default of 8, 1 scans
	// inline). Any value produces a byte-identical index — the partial
	// aggregates merge exactly — so the knob trades only wall-clock
	// time, never output.
	AnalysisWorkers int

	// CheckpointDir, when set, persists each finished country into the
	// directory as it completes, so a killed run can be resumed instead
	// of restarted. See Resume.
	CheckpointDir string
	// Resume loads the finished countries found in CheckpointDir and
	// runs only the remainder. The directory's manifest must match this
	// configuration. A resumed run's exports and deterministic metrics
	// are byte-identical to an uninterrupted same-seed run.
	Resume bool
}

func (c Config) toCore() core.Config {
	return core.Config{
		Seed:               c.Seed,
		Scale:              c.Scale,
		Countries:          c.Countries,
		CrawlDepth:         c.CrawlDepth,
		Concurrency:        c.Concurrency,
		CountryConcurrency: c.CountryConcurrency,
		FetchConcurrency:   c.FetchConcurrency,
		MaxURLsPerCrawl:    c.MaxURLsPerCrawl,
		SkipTopsites:       c.SkipTopsites,
		FaultProfile:       c.FaultProfile,
		FaultSeed:          c.FaultSeed,
		RetryAttempts:      c.RetryAttempts,
		RetryBudget:        c.RetryBudget,
		TrendYears:         c.TrendYears,
		TrustIPInfo:        c.TrustIPInfo,
		GlobalThresholdMS:  c.GlobalThresholdMS,
		DisableSAN:         c.DisableSAN,
		DisableMetrics:     c.DisableMetrics,
		CheckpointDir:      c.CheckpointDir,
		Resume:             c.Resume,
	}
}

// MetricsSnapshot is a frozen view of the study's per-stage metrics:
// the Deterministic half is byte-identical for equal seeds at any
// concurrency shape, the Runtime half carries wall-clock timings and
// scheduling-shape observations. Render it with JSON,
// DeterministicJSON or Text.
type MetricsSnapshot = metrics.Snapshot

// Study is a completed measurement study.
type Study struct {
	cfg Config
	env *core.Env
	ds  *dataset.Dataset

	// idx is the one-pass analysis index, built lazily on the first
	// figure/table query and shared by all of them: a report renders a
	// dozen figures over one study, and without the index each one
	// rescanned every record.
	idxOnce sync.Once
	idx     *analysis.Index
}

// index returns the memoized analysis index.
func (s *Study) index() *analysis.Index {
	s.idxOnce.Do(func() { s.idx = analysis.BuildIndexWorkers(s.ds, analysisWorkers(s.cfg.AnalysisWorkers)) })
	return s.idx
}

// analysisWorkers resolves the AnalysisWorkers knob: 0 defaults to 8.
func analysisWorkers(n int) int {
	if n == 0 {
		return 8
	}
	return n
}

// Run executes the full pipeline: environment materialisation,
// per-country crawls, classification, infrastructure resolution,
// geolocation, and category assignment.
func Run(ctx context.Context, cfg Config) (*Study, error) {
	env := core.NewEnv(cfg.toCore())
	ds, err := env.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("govhost: %w", err)
	}
	return &Study{cfg: cfg, env: env, ds: ds}, nil
}

// Category identifies a hosting-provider class (§5.1). For top-site
// results, GovtSOE reads as "Self-Hosting" (Appendix D).
type Category = world.Category

// The four categories.
const (
	GovtSOE  = world.CatGovtSOE
	Local3P  = world.Cat3PLocal
	Global3P = world.Cat3PGlobal
	Region3P = world.Cat3PRegional
)

// Shares is a URL/byte share pair over the four categories, indexed by
// Category.
type Shares struct {
	URLs  [4]float64
	Bytes [4]float64
}

func sharesOf(s analysis.Shares) Shares {
	return Shares{URLs: s.URLs, Bytes: s.Bytes}
}

// Split is a domestic/international pair for registration (WHOIS) and
// server location.
type Split struct {
	RegDomestic float64
	GeoDomestic float64
}

func splitOf(s analysis.SplitShares) Split {
	return Split{RegDomestic: s.RegDomestic, GeoDomestic: s.GeoDomestic}
}

// GlobalShares returns Fig. 2.
func (s *Study) GlobalShares() Shares {
	return sharesOf(s.index().GlobalShares())
}

// RegionalShares returns Fig. 4, keyed by World Bank region code.
func (s *Study) RegionalShares() map[string]Shares {
	out := map[string]Shares{}
	for reg, sh := range s.index().RegionalShares() {
		out[string(reg)] = sharesOf(sh)
	}
	return out
}

// CountryShares returns each country's hosting signature (Fig. 5
// input).
func (s *Study) CountryShares() map[string]Shares {
	out := map[string]Shares{}
	for code, sh := range s.index().CountryShares() {
		out[code] = sharesOf(sh)
	}
	return out
}

// MajorityThirdParty returns Fig. 1: country code → true when the
// majority of its government bytes come from third parties.
func (s *Study) MajorityThirdParty() map[string]bool {
	out := map[string]bool{}
	for _, e := range s.index().MajorityMap() {
		out[e.Country] = e.ThirdPty
	}
	return out
}

// DomesticSplit returns Fig. 6.
func (s *Study) DomesticSplit() Split {
	return splitOf(s.index().DomesticIntl())
}

// RegionalDomesticSplit returns Fig. 8, keyed by region code.
func (s *Study) RegionalDomesticSplit() map[string]Split {
	out := map[string]Split{}
	for reg, sp := range s.index().RegionalDomesticIntl() {
		out[string(reg)] = splitOf(sp)
	}
	return out
}

// Flow is one cross-border dependency (Fig. 9): Share of Src's URLs
// that depend on Dst.
type Flow struct {
	Src, Dst string
	URLs     int
	Share    float64
}

// FlowKind selects a Fig. 9 panel.
type FlowKind int

// Flow kinds.
const (
	ByRegistration FlowKind = iota // Fig. 9a
	ByLocation                     // Fig. 9b
)

// CrossBorderFlows returns Fig. 9's dependency edges.
func (s *Study) CrossBorderFlows(kind FlowKind) []Flow {
	k := analysis.FlowRegistration
	if kind == ByLocation {
		k = analysis.FlowLocation
	}
	var out []Flow
	for _, f := range s.index().CrossBorderFlows(k) {
		out = append(out, Flow{Src: f.Src, Dst: f.Dst, URLs: f.URLs, Share: f.Share})
	}
	return out
}

// InRegionDependency returns Table 5: per region, the share of
// cross-border dependencies that stay inside the region.
func (s *Study) InRegionDependency() map[string]float64 {
	out := map[string]float64{}
	for reg, v := range s.index().InRegionShare(s.env.World) {
		out[string(reg)] = v
	}
	return out
}

// GDPRCompliance returns the fraction of EU government URLs served
// from inside the EU, and the number of EU URLs observed.
func (s *Study) GDPRCompliance() (fraction float64, totalURLs int) {
	ok, total := s.index().GDPRCompliance(s.env.World)
	if total == 0 {
		return 0, 0
	}
	return float64(ok) / float64(total), total
}

// ProviderFootprint is one Fig. 10 bar.
type ProviderFootprint struct {
	ASN       int
	Org       string
	Countries int
}

// GlobalProviders returns Fig. 10 ranked descending.
func (s *Study) GlobalProviders() []ProviderFootprint {
	var out []ProviderFootprint
	for _, p := range s.index().GlobalProviderFootprints() {
		out = append(out, ProviderFootprint{ASN: p.ASN, Org: p.Org, Countries: p.Countries})
	}
	return out
}

// Diversification is one country's Fig. 11 data point.
type Diversification struct {
	Country     string
	HHIURLs     float64
	HHIBytes    float64
	Dominant    Category
	TopNetShare float64
}

// Diversification returns per-country provider-concentration indexes.
func (s *Study) Diversification() []Diversification {
	var out []Diversification
	for _, d := range s.index().Diversify() {
		out = append(out, Diversification{
			Country: d.Country, HHIURLs: d.HHIURLs, HHIBytes: d.HHIBytes,
			Dominant: d.DominantCat, TopNetShare: d.TopNetShare,
		})
	}
	return out
}

// ClusterBranches returns the three-branch Fig. 5 cut: dendrogram
// branches of country codes, by URL or byte signatures.
func (s *Study) ClusterBranches(byBytes bool) ([][]string, error) {
	kind := analysis.SignatureURLs
	if byBytes {
		kind = analysis.SignatureBytes
	}
	root, err := analysis.ClusterCountries(s.index(), kind)
	if err != nil {
		return nil, err
	}
	return clusterCut(root, 3), nil
}

// Comparison is the Figs. 3/7 government-vs-topsites result. In
// Topsites, index GovtSOE means "Self-Hosting".
type Comparison struct {
	Gov, Topsites           Shares
	GovSplit, TopsitesSplit Split
}

// CompareTopsites returns the Appendix D comparison.
func (s *Study) CompareTopsites() Comparison {
	c := s.index().CompareTopsites()
	return Comparison{
		Gov:           sharesOf(c.Gov),
		Topsites:      sharesOf(c.Topsites),
		GovSplit:      splitOf(c.GovSplit),
		TopsitesSplit: splitOf(c.TopSplit),
	}
}

// Coefficient is one Fig. 12 estimate.
type Coefficient struct {
	Name          string
	Estimate      float64
	StdErr        float64
	CILow, CIHigh float64
	PValue        float64
	Significant05 bool
}

// ExplanatoryModel returns the Appendix E OLS fit and the Table 7 VIF
// values.
func (s *Study) ExplanatoryModel() ([]Coefficient, map[string]float64, error) {
	res, err := analysis.ExplainForeignHosting(s.index(), s.env.World)
	if err != nil {
		return nil, nil, err
	}
	var coefs []Coefficient
	for i, name := range res.OLS.Names {
		coefs = append(coefs, Coefficient{
			Name:          name,
			Estimate:      res.OLS.Coef[i],
			StdErr:        res.OLS.StdErr[i],
			CILow:         res.OLS.CILow[i],
			CIHigh:        res.OLS.CIHigh[i],
			PValue:        res.OLS.PValue[i],
			Significant05: res.OLS.PValue[i] < 0.05,
		})
	}
	return coefs, res.VIF, nil
}

// DatasetStats mirrors Table 3.
type DatasetStats struct {
	LandingURLs     int
	InternalURLs    int
	UniqueURLs      int
	UniqueHostnames int
	ASes            int
	GovASes         int
	UniqueIPs       int
	AnycastIPs      int
	ServerCountries int
}

// Stats returns Table 3 for this run (scaled by Config.Scale).
func (s *Study) Stats() DatasetStats {
	return DatasetStats{
		LandingURLs:     s.ds.TotalLanding,
		InternalURLs:    s.ds.TotalInternal,
		UniqueURLs:      s.ds.TotalUniqueURLs,
		UniqueHostnames: s.ds.TotalHostnames,
		ASes:            s.ds.ASes,
		GovASes:         s.ds.GovASes,
		UniqueIPs:       s.ds.UniqueIPs,
		AnycastIPs:      s.ds.AnycastIPs,
		ServerCountries: s.ds.ServerCountries,
	}
}

// CountryStats mirrors one Table 8 row.
type CountryStats struct {
	Country      string
	Region       string
	LandingURLs  int
	InternalURLs int
	Hostnames    int
}

// PerCountryStats returns Table 8 rows sorted by country code.
func (s *Study) PerCountryStats() []CountryStats {
	var out []CountryStats
	for code, st := range s.ds.PerCountry {
		out = append(out, CountryStats{
			Country: code, Region: string(st.Region),
			LandingURLs: st.LandingURLs, InternalURLs: st.InternalURLs,
			Hostnames: st.Hostnames,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// Metrics returns the frozen per-stage metrics ledger for this study.
// ok is false when no registry was attached — the study was loaded
// from a saved dataset, or run with Config.DisableMetrics.
func (s *Study) Metrics() (snap MetricsSnapshot, ok bool) {
	if s.env == nil {
		return MetricsSnapshot{}, false
	}
	reg := s.env.Metrics()
	if reg == nil {
		return MetricsSnapshot{}, false
	}
	return reg.Snapshot(), true
}

// MethodYields returns the Table 1 classification yields over internal
// URLs (TLD, domain-matching, SAN fractions).
func (s *Study) MethodYields() (tld, domain, san float64) {
	total := float64(s.ds.MethodTLD + s.ds.MethodDomain + s.ds.MethodSAN)
	if total == 0 {
		return 0, 0, 0
	}
	return float64(s.ds.MethodTLD) / total,
		float64(s.ds.MethodDomain) / total,
		float64(s.ds.MethodSAN) / total
}

// FlowShare is a convenience over CrossBorderFlows: the share of src's
// URLs served from dst.
func (s *Study) FlowShare(kind FlowKind, src, dst string) float64 {
	for _, f := range s.CrossBorderFlows(kind) {
		if f.Src == src && f.Dst == dst {
			return f.Share
		}
	}
	return 0
}

// HTTPSValidity is the Singanamalla-style extension result: the share
// of government hostnames serving valid HTTPS, globally and per
// region/country.
type HTTPSValidity struct {
	GlobalValid float64
	ByRegion    map[string]float64
	ByCountry   map[string]float64
	Hostnames   int
}

// HTTPSAdoption reports certificate validity across the dataset
// (extension: Singanamalla et al. find over 70 % of government sites
// lack valid HTTPS).
func (s *Study) HTTPSAdoption() HTTPSValidity {
	a := analysis.HTTPSValidity(s.ds)
	out := HTTPSValidity{
		GlobalValid: a.GlobalValid,
		ByRegion:    map[string]float64{},
		ByCountry:   a.ByCountry,
		Hostnames:   a.Hostnames,
	}
	for reg, v := range a.ByRegion {
		out.ByRegion[string(reg)] = v
	}
	return out
}

// Load reconstructs a Study from a dataset previously written with
// ExportJSONL, so saved datasets can be re-analysed — every analysis
// and report works without re-running the pipeline. Format version 2
// onward carries the measured per-country statistics verbatim; they
// are kept, not re-derived (re-deriving from the records clobbered the
// crawl's coverage accounting — attempts, failures, retries — with
// lossy approximations). Version 1 files carry records only, so the
// countable subset is approximated from them.
func Load(r io.Reader) (*Study, error) {
	ds, err := export.ReadJSONL(r)
	if err != nil {
		return nil, fmt.Errorf("govhost: %w", err)
	}
	if len(ds.PerCountry) == 0 {
		ds.PerCountry = derivedCountryStats(ds)
	}
	ds.FillTotals()
	return &Study{
		cfg: Config{Seed: ds.Seed, Scale: ds.Scale},
		env: core.LoadedEnv(world.New()),
		ds:  ds,
	}, nil
}

// derivedCountryStats approximates per-country statistics from bare
// records, for version-1 files that did not store them. Coverage
// fields that only the live crawl knows (attempts, failures, retries)
// stay zero.
func derivedCountryStats(ds *dataset.Dataset) map[string]*dataset.CountryStats {
	perCountry := map[string]*dataset.CountryStats{}
	hostsByCountry := map[string]map[string]bool{}
	for i := range ds.Records {
		rec := &ds.Records[i]
		st := perCountry[rec.Country]
		if st == nil {
			st = &dataset.CountryStats{Country: rec.Country, Region: rec.Region}
			perCountry[rec.Country] = st
			hostsByCountry[rec.Country] = map[string]bool{}
		}
		if rec.Depth == 0 {
			st.LandingURLs++
		} else {
			st.InternalURLs++
		}
		hostsByCountry[rec.Country][rec.Host] = true
	}
	for code, st := range perCountry {
		st.Hostnames = len(hostsByCountry[code])
	}
	return perCountry
}

// ExportJSONL writes the annotated dataset as JSON lines — the
// interchange format standing in for the paper's dataset-on-request.
func (s *Study) ExportJSONL(w io.Writer) error {
	return export.WriteJSONL(w, s.ds)
}

// ExportCSV writes the annotated dataset as CSV.
func (s *Study) ExportCSV(w io.Writer) error {
	return export.WriteCSV(w, s.ds)
}
