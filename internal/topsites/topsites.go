// Package topsites implements the Appendix D methodology for the
// government-vs-popular-sites comparison: the CrUX-style per-country
// site lists live in the estate generator; this package contributes
// the self-hosting heuristic from Kashaf et al. and Kumar et al. that
// separates sites serving themselves from sites behind third-party
// providers.
package topsites

import (
	"strings"
)

// TwoLD returns the effective second-level domain (the paper's
// "2LD+TLD") of a hostname: its last two labels.
func TwoLD(host string) string {
	host = strings.TrimSuffix(strings.ToLower(host), ".")
	parts := strings.Split(host, ".")
	if len(parts) < 2 {
		return host
	}
	return strings.Join(parts[len(parts)-2:], ".")
}

// SelfHosted applies the Appendix D heuristic:
//
//  1. If the site publishes a CNAME whose 2LD matches the site's own
//     2LD, it is self-hosted.
//  2. If the 2LDs differ but the CNAME's 2LD appears in the site
//     certificate's SAN list, the CNAME target belongs to the same
//     entity (img.youtube.com style) — still self-hosted.
//  3. Otherwise (or without a CNAME) the site is not identifiably
//     self-hosted and falls through to provider classification.
func SelfHosted(host, cname string, sans []string) bool {
	if cname == "" {
		return false
	}
	site2LD := TwoLD(host)
	cname2LD := TwoLD(cname)
	if cname2LD == site2LD {
		return true
	}
	for _, san := range sans {
		if TwoLD(san) == cname2LD {
			return true
		}
	}
	return false
}
