package topsites

import "testing"

func TestTwoLD(t *testing.T) {
	cases := map[string]string{
		"www.shop1.cl":      "shop1.cl",
		"shop1.cl":          "shop1.cl",
		"a.b.c.example.com": "example.com",
		"localhost":         "localhost",
		"WWW.Example.COM.":  "example.com",
	}
	for in, want := range cases {
		if got := TwoLD(in); got != want {
			t.Errorf("TwoLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSelfHostedByMatching2LD(t *testing.T) {
	if !SelfHosted("www.shop1.cl", "edge.shop1.cl", nil) {
		t.Error("matching 2LDs must mean self-hosted")
	}
	if SelfHosted("www.shop1.cl", "shop1-cl.cdn.cloudflare.net", nil) {
		t.Error("provider CNAME must not be self-hosted")
	}
}

func TestSelfHostedViaSANList(t *testing.T) {
	// The img.youtube.com case: different 2LD, but the CNAME's 2LD
	// appears in the site certificate's SAN list.
	sans := []string{"www.videotube.cl", "videotube-static.com"}
	if !SelfHosted("www.videotube.cl", "cdn.videotube-static.com", sans) {
		t.Error("SAN-listed CNAME 2LD must mean self-hosted")
	}
	if SelfHosted("www.videotube.cl", "cdn.unrelated.net", sans) {
		t.Error("CNAME 2LD outside the SAN list must not be self-hosted")
	}
}

func TestSelfHostedWithoutCNAME(t *testing.T) {
	if SelfHosted("www.shop1.cl", "", []string{"www.shop1.cl"}) {
		t.Error("no CNAME means the heuristic cannot claim self-hosting")
	}
}
