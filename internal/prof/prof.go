// Package prof wires the standard pprof profilers into the CLIs: a
// CPU profile covering the run and a heap profile captured at exit,
// each gated on a flag-provided path. Perf PRs read these with
// `go tool pprof` to find the next hot path.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function is safe to call exactly
// once, typically via defer; profile-write failures surface on stderr
// rather than aborting the run, since the measurement already
// completed.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: close cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof: create mem profile:", err)
				return
			}
			// Materialise recently freed objects so the heap profile
			// reflects live allocations, as `go test -memprofile` does.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: close mem profile:", err)
			}
		}
	}, nil
}
