package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m · b. The i-k-j loop order walks b and out along
// their rows; hoisting both row slices out of the inner loop keeps
// the accesses sequential and bounds-check-free.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("stats: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		for k, v := range mrow {
			if v == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += v * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m · v for a column vector v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("stats: dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// ErrSingular reports a non-invertible matrix.
var ErrSingular = errors.New("stats: singular matrix")

// Inverse computes the inverse via Gauss-Jordan elimination with
// partial pivoting.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("stats: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	// Augmented [A | I].
	a := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, m.At(i, j))
		}
		a.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < 2*n; j++ {
				tmp := a.At(col, j)
				a.Set(col, j, a.At(pivot, j))
				a.Set(pivot, j, tmp)
			}
		}
		pv := a.At(col, col)
		for j := 0; j < 2*n; j++ {
			a.Set(col, j, a.At(col, j)/pv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
		}
	}
	inv := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inv.Set(i, j, a.At(i, n+j))
		}
	}
	return inv, nil
}
