package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHHIKnownValues(t *testing.T) {
	if got := HHI([]float64{1}); got != 1 {
		t.Errorf("monopoly HHI = %v, want 1", got)
	}
	if got := HHI([]float64{1, 1, 1, 1}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("uniform-4 HHI = %v, want 0.25", got)
	}
	if got := HHI(nil); got != 0 {
		t.Errorf("empty HHI = %v, want 0", got)
	}
	if got := HHI([]float64{0, 0}); got != 0 {
		t.Errorf("zero HHI = %v, want 0", got)
	}
	// Shares need not be normalized.
	if got := HHI([]float64{50, 50}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("unnormalized HHI = %v, want 0.5", got)
	}
}

func TestHHIBoundsQuick(t *testing.T) {
	f := func(xs [6]uint8) bool {
		shares := make([]float64, 0, 6)
		var sum float64
		for _, x := range xs {
			shares = append(shares, float64(x))
			sum += float64(x)
		}
		h := HHI(shares)
		if sum == 0 {
			return h == 0
		}
		return h >= 1.0/6-1e-9 && h <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, 32.0/7)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs mishandled")
	}
}

func TestQuantileAndBox(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q1 = %v", got)
	}
	box := Box(xs)
	if box.Min != 1 || box.Median != 3 || box.Max != 5 || box.N != 5 {
		t.Errorf("box = %+v", box)
	}
	if Box(nil).N != 0 {
		t.Error("empty box must be zero")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted its input in place")
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := Standardize(xs)
	if math.Abs(Mean(z)) > 1e-12 {
		t.Errorf("standardized mean = %v", Mean(z))
	}
	if math.Abs(StdDev(z)-1) > 1e-12 {
		t.Errorf("standardized sd = %v", StdDev(z))
	}
	constant := Standardize([]float64{7, 7, 7})
	for _, v := range constant {
		if v != 0 {
			t.Fatal("constant column must standardize to zeros")
		}
	}
}

func TestMatrixInverseIdentityQuick(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(4)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.NormFloat64())
			}
			m.Set(i, i, m.At(i, i)+float64(n)) // diagonally dominant → invertible
		}
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					t.Fatalf("trial %d: (A·A⁻¹)[%d][%d] = %v", trial, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestMatrixInverseSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Inverse(); err == nil {
		t.Fatal("singular matrix inverted")
	}
}

func TestMatrixMulDimensionCheck(t *testing.T) {
	a, b := NewMatrix(2, 3), NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("vector dimension mismatch accepted")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 2, 7)
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 7 {
		t.Fatalf("transpose wrong: %+v", tr)
	}
}

// TestOLSRecoversCoefficients fits a known linear model and demands
// the estimates land on the truth within tight confidence bounds.
func TestOLSRecoversCoefficients(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 400
	X := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := r.NormFloat64(), r.NormFloat64()
		X.Set(i, 0, x1)
		X.Set(i, 1, x2)
		y[i] = 1.5 + 2*x1 - 0.7*x2 + 0.1*r.NormFloat64()
	}
	res, err := OLS(y, X, []string{"x1", "x2"})
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{1.5, 2, -0.7}
	for i, want := range wants {
		if math.Abs(res.Coef[i]-want) > 0.05 {
			t.Errorf("coef[%s] = %v, want %v", res.Names[i], res.Coef[i], want)
		}
		if res.CILow[i] > want || res.CIHigh[i] < want {
			t.Errorf("95%% CI [%v, %v] misses truth %v", res.CILow[i], res.CIHigh[i], want)
		}
	}
	if res.R2 < 0.99 {
		t.Errorf("R² = %v for a nearly noiseless fit", res.R2)
	}
	// Strong effects must be significant.
	if res.PValue[1] > 0.001 || res.PValue[2] > 0.001 {
		t.Errorf("p-values too large: %v", res.PValue)
	}
}

func TestOLSNullCoefficientNotSignificant(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 200
	X := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := r.NormFloat64(), r.NormFloat64()
		X.Set(i, 0, x1)
		X.Set(i, 1, x2)
		y[i] = 3*x1 + r.NormFloat64() // x2 is pure noise
	}
	res, err := OLS(y, X, []string{"real", "noise"})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue[2] < 0.01 {
		t.Errorf("noise coefficient spuriously significant: p = %v", res.PValue[2])
	}
}

func TestOLSUnderdetermined(t *testing.T) {
	X := NewMatrix(3, 4)
	if _, err := OLS([]float64{1, 2, 3}, X, make([]string, 4)); err == nil {
		t.Fatal("more parameters than observations accepted")
	}
}

func TestVIFOrthogonalNearOne(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 500
	X := NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			X.Set(i, j, r.NormFloat64())
		}
	}
	vifs, err := VIF(X)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range vifs {
		if v < 0.9 || v > 1.2 {
			t.Errorf("VIF[%d] = %v for independent columns, want ≈1", j, v)
		}
	}
}

func TestVIFDetectsCollinearity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 300
	X := NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		X.Set(i, 0, x)
		X.Set(i, 1, x+0.05*r.NormFloat64()) // nearly collinear with column 0
		X.Set(i, 2, r.NormFloat64())
	}
	vifs, err := VIF(X)
	if err != nil {
		t.Fatal(err)
	}
	if vifs[0] < 10 || vifs[1] < 10 {
		t.Errorf("collinear VIFs = %v, want ≫ 10", vifs)
	}
	if vifs[2] > 2 {
		t.Errorf("independent column VIF = %v, want ≈1", vifs[2])
	}
}

func TestIncBetaBoundaries(t *testing.T) {
	if incBeta(2, 3, 0) != 0 || incBeta(2, 3, 1) != 1 {
		t.Fatal("incBeta boundaries wrong")
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := incBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Errorf("incBeta(1,1,%v) = %v", x, got)
		}
	}
}

func TestTwoSidedPKnownValues(t *testing.T) {
	// t = 0 means p = 1; |t| → ∞ means p → 0.
	if p := twoSidedP(0, 10); math.Abs(p-1) > 1e-9 {
		t.Errorf("p(t=0) = %v", p)
	}
	if p := twoSidedP(50, 10); p > 1e-6 {
		t.Errorf("p(t=50) = %v", p)
	}
	// With df=10, t=2.228 is the 95% two-sided critical value.
	if p := twoSidedP(2.228, 10); math.Abs(p-0.05) > 0.005 {
		t.Errorf("p(t=2.228, df=10) = %v, want ≈0.05", p)
	}
}

func TestTCritical95Monotone(t *testing.T) {
	prev := tCritical95(1)
	for _, df := range []int{2, 5, 10, 30, 100, 1000} {
		cur := tCritical95(df)
		if cur > prev {
			t.Fatalf("critical value must shrink with df: t(%d)=%v > %v", df, cur, prev)
		}
		prev = cur
	}
	if math.Abs(tCritical95(10000)-1.96) > 0.01 {
		t.Fatal("asymptote must be 1.96")
	}
}
