package stats

import (
	"math"
	"math/rand"
	"testing"
)

// olsFixture builds a well-conditioned 61×6 regression problem shaped
// like the Fig. 12 panel (61 countries, 6 standardized predictors).
func olsFixture() ([]float64, *Matrix, []string) {
	r := rand.New(rand.NewSource(7))
	n, p := 61, 6
	X := NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			X.Set(i, j, r.NormFloat64())
		}
		y[i] = 1.5 + 2*X.At(i, 0) - 0.5*X.At(i, 3) + 0.1*r.NormFloat64()
	}
	return y, X, []string{"a", "b", "c", "d", "e", "f"}
}

// TestOLSMatchesInverseBasedSolve pins the Cholesky solve to the
// retired Gauss–Jordan path: β = (DᵀD)⁻¹Dᵀy computed with the
// still-exported Matrix primitives must agree with OLS to round-off,
// and so must the standard errors via the inverse diagonal.
func TestOLSMatchesInverseBasedSolve(t *testing.T) {
	y, X, names := olsFixture()
	res, err := OLS(y, X, names)
	if err != nil {
		t.Fatal(err)
	}

	n, k := X.Rows, X.Cols+1
	d := NewMatrix(n, k)
	for i := 0; i < n; i++ {
		d.Set(i, 0, 1)
		for j := 0; j < X.Cols; j++ {
			d.Set(i, j+1, X.At(i, j))
		}
	}
	dt := d.T()
	xtx, err := dt.Mul(d)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := xtx.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	xty, err := dt.MulVec(y)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := inv.MulVec(xty)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		if diff := math.Abs(res.Coef[j] - beta[j]); diff > 1e-9 {
			t.Errorf("coef[%d]: cholesky %g vs inverse %g", j, res.Coef[j], beta[j])
		}
	}
	// Standard errors against sigma² · diag((DᵀD)⁻¹).
	var rss float64
	fitted, _ := d.MulVec(beta)
	for i := range y {
		e := y[i] - fitted[i]
		rss += e * e
	}
	sigma2 := rss / float64(n-k)
	for j := 0; j < k; j++ {
		want := math.Sqrt(sigma2 * inv.At(j, j))
		if diff := math.Abs(res.StdErr[j] - want); diff > 1e-9*math.Max(want, 1) {
			t.Errorf("stderr[%d]: cholesky %g vs inverse %g", j, res.StdErr[j], want)
		}
	}
}

// TestVIFSharedMatchesPerColumn pins the shared-decomposition VIF to
// the per-column fallback on the same panel.
func TestVIFSharedMatchesPerColumn(t *testing.T) {
	_, X, _ := olsFixture()
	fast, err := VIF(X)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := vifPerColumn(X)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("length mismatch: %d vs %d", len(fast), len(slow))
	}
	for j := range fast {
		if diff := math.Abs(fast[j] - slow[j]); diff > 1e-8*math.Max(slow[j], 1) {
			t.Errorf("vif[%d]: shared %g vs per-column %g", j, fast[j], slow[j])
		}
	}
}

// TestVIFConstantColumnFallsBack keeps the historical edge semantics:
// a constant column makes the augmented Gram singular, so VIF must
// take the per-column path — which reports ErrSingular, because the
// constant column plus the intercept makes every sub-design
// rank-deficient, exactly as the inverse-based loop always did.
func TestVIFConstantColumnFallsBack(t *testing.T) {
	_, X, _ := olsFixture()
	for i := 0; i < X.Rows; i++ {
		X.Set(i, 2, 3.25)
	}
	if _, err := VIF(X); err != ErrSingular {
		t.Fatalf("constant column: got err %v, want ErrSingular", err)
	}
}

// TestVIFSingleConstantColumn: with no other regressors the constant
// column regresses on the intercept alone — a degenerate but
// well-posed fit whose R² is 0, so VIF is 1 (historical behaviour).
func TestVIFSingleConstantColumn(t *testing.T) {
	X := NewMatrix(5, 1)
	for i := 0; i < 5; i++ {
		X.Set(i, 0, 2.5)
	}
	vifs, err := VIF(X)
	if err != nil {
		t.Fatal(err)
	}
	if vifs[0] != 1 {
		t.Fatalf("single constant column VIF = %g, want 1", vifs[0])
	}
}

// TestOLSAllocationBudget is the allocation-count regression test for
// the OLS hot path: one scratch block plus the result slices. The
// budget has headroom over the measured count but sits far below the
// retired inverse-based path (which allocated a design matrix, its
// transpose, and Gauss–Jordan augmentation per call).
func TestOLSAllocationBudget(t *testing.T) {
	y, X, names := olsFixture()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := OLS(y, X, names); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Fatalf("OLS allocates %.0f objects per call, budget 12", allocs)
	}
}

// TestVIFAllocationBudget pins the shared-decomposition VIF path the
// same way: one factorization, one scratch block, one result slice.
func TestVIFAllocationBudget(t *testing.T) {
	_, X, _ := olsFixture()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := VIF(X); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("VIF allocates %.0f objects per call, budget 4", allocs)
	}
}
