// Package stats provides the statistical machinery of the paper's
// analysis sections: the Herfindahl–Hirschman Index for provider
// diversification (§7.2), summary and box-plot statistics (Fig. 11),
// ordinary least squares with standard errors, confidence intervals
// and p-values (Appendix E, Fig. 12), variance inflation factors
// (Table 7), and variable standardization.
package stats

import (
	"errors"
	"math"
	"sort"
)

// HHI computes the Herfindahl–Hirschman Index of a share vector. The
// input need not be normalized; zero input yields zero.
func HHI(shares []float64) float64 {
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum <= 0 {
		return 0
	}
	var h float64
	for _, s := range shares {
		f := s / sum
		h += f * f
	}
	return h
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// BoxStats are the five-number summary behind one box in Fig. 11.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Box computes a five-number summary.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	return BoxStats{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		N:      len(xs),
	}
}

// Standardize transforms xs to zero mean and unit standard deviation
// in place-free fashion (returns a new slice). Constant columns come
// back as all zeros.
func Standardize(xs []float64) []float64 {
	m, sd := Mean(xs), StdDev(xs)
	out := make([]float64, len(xs))
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// Pearson computes the Pearson correlation coefficient of two
// equal-length samples (0 for degenerate inputs).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman computes the Spearman rank correlation (average ranks for
// ties).
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	s := make([]iv, len(xs))
	for i, v := range xs {
		s[i] = iv{i, v}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[s[k].i] = avg
		}
		i = j
	}
	return out
}

// ErrTooFewObservations reports an under-determined regression.
var ErrTooFewObservations = errors.New("stats: more parameters than observations")

// OLSResult carries the fitted model of Appendix E.
type OLSResult struct {
	Names  []string  // coefficient names, intercept first
	Coef   []float64 // point estimates
	StdErr []float64
	CILow  []float64 // 95 % confidence interval bounds
	CIHigh []float64
	TStat  []float64
	PValue []float64 // two-sided, normal approximation with t refinement
	R2     float64
	AdjR2  float64
	N      int
	DF     int
}

// OLS fits y = α + Xβ by ordinary least squares. X is observations ×
// predictors; names labels the predictors.
//
// The solve runs on the normal equations: G = [1 X]ᵀ[1 X] is SPD for
// a full-rank design, so a single in-place Cholesky factorization
// yields β by triangular substitution and the standard errors from
// the diagonal of G⁻¹ — no design matrix, no transpose, no
// Gauss–Jordan inverse. A rank-deficient design reports ErrSingular,
// as the inverse-based path did.
func OLS(y []float64, X *Matrix, names []string) (*OLSResult, error) {
	n := len(y)
	if X.Rows != n {
		return nil, errors.New("stats: X/y length mismatch")
	}
	k := X.Cols + 1 // intercept
	if n <= k {
		return nil, ErrTooFewObservations
	}
	// One scratch block: Gram (k×k), β (solved in place over [1 X]ᵀy),
	// G⁻¹ diagonal, and a substitution column.
	buf := make([]float64, k*k+3*k)
	g := buf[:k*k]
	beta := buf[k*k : k*k+k]
	gdiag := buf[k*k+k : k*k+2*k]
	col := buf[k*k+2*k:]
	normalEquations(y, X, g, beta)
	if err := cholesky(g, k); err != nil {
		return nil, err
	}
	choleskySolve(g, k, beta)
	choleskyInvDiag(g, k, gdiag, col)

	// Residuals and fit quality, fitted values straight from X's rows.
	var rss, tss float64
	ybar := Mean(y)
	for i := 0; i < n; i++ {
		f := beta[0]
		for j, xj := range X.Data[i*X.Cols : (i+1)*X.Cols] {
			f += beta[j+1] * xj
		}
		e := y[i] - f
		rss += e * e
		t := y[i] - ybar
		tss += t * t
	}
	df := n - k
	sigma2 := rss / float64(df)

	res := &OLSResult{
		Names:  append(append(make([]string, 0, k), "(intercept)"), names...),
		Coef:   beta,
		StdErr: make([]float64, 0, k),
		CILow:  make([]float64, 0, k),
		CIHigh: make([]float64, 0, k),
		TStat:  make([]float64, 0, k),
		PValue: make([]float64, 0, k),
		N:      n,
		DF:     df,
	}
	if tss > 0 {
		res.R2 = 1 - rss/tss
		res.AdjR2 = 1 - (1-res.R2)*float64(n-1)/float64(df)
	}
	tcrit := tCritical95(df)
	for j := 0; j < k; j++ {
		se := math.Sqrt(sigma2 * gdiag[j])
		res.StdErr = append(res.StdErr, se)
		var t float64
		if se > 0 {
			t = beta[j] / se
		}
		res.TStat = append(res.TStat, t)
		res.CILow = append(res.CILow, beta[j]-tcrit*se)
		res.CIHigh = append(res.CIHigh, beta[j]+tcrit*se)
		res.PValue = append(res.PValue, twoSidedP(t, df))
	}
	return res, nil
}

// VIF computes the variance inflation factor of each column of X by
// regressing it on the remaining columns (Table 7).
//
// One Cholesky factorization of the full augmented Gram serves every
// per-column regression: by the partitioned-inverse identity,
// (G⁻¹)_{j+1,j+1} = 1/RSS_j for the regression of column j on the
// intercept and the remaining columns, so VIF_j = 1/(1-R²_j) =
// TSS_j · (G⁻¹)_{j+1,j+1} with TSS_j the centered sum of squares of
// column j. A singular Gram — exactly collinear or constant columns —
// falls back to the explicit per-column loop, preserving the
// historical edge-case semantics (errors, +Inf, VIF 1 for constant
// columns).
func VIF(X *Matrix) ([]float64, error) {
	if X.Cols >= 1 && X.Rows > X.Cols+1 {
		if out, ok := vifShared(X); ok {
			return out, nil
		}
	}
	return vifPerColumn(X)
}

// vifShared is the fast path: all VIFs from one factorization of the
// augmented Gram. It declines (ok=false) when the Gram is singular.
func vifShared(X *Matrix) ([]float64, bool) {
	n, k := X.Rows, X.Cols+1
	buf := make([]float64, k*k+2*k)
	g := buf[:k*k]
	diag := buf[k*k : k*k+k]
	col := buf[k*k+k:]
	normalEquations(nil, X, g, nil)
	if err := cholesky(g, k); err != nil {
		return nil, false
	}
	choleskyInvDiag(g, k, diag, col)
	out := make([]float64, X.Cols)
	for j := 0; j < X.Cols; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += X.At(i, j)
		}
		mean := sum / float64(n)
		var tss float64
		for i := 0; i < n; i++ {
			d := X.At(i, j) - mean
			tss += d * d
		}
		out[j] = tss * diag[j+1]
	}
	return out, true
}

// vifPerColumn is the pre-shared-decomposition loop: regress each
// column on the others with a fresh OLS. Kept as the fallback for
// degenerate designs.
func vifPerColumn(X *Matrix) ([]float64, error) {
	out := make([]float64, X.Cols)
	for j := 0; j < X.Cols; j++ {
		y := make([]float64, X.Rows)
		sub := NewMatrix(X.Rows, X.Cols-1)
		for i := 0; i < X.Rows; i++ {
			y[i] = X.At(i, j)
			cc := 0
			for c := 0; c < X.Cols; c++ {
				if c == j {
					continue
				}
				sub.Set(i, cc, X.At(i, c))
				cc++
			}
		}
		names := make([]string, sub.Cols)
		res, err := OLS(y, sub, names)
		if err != nil {
			return nil, err
		}
		r2 := res.R2
		if r2 >= 1 {
			out[j] = math.Inf(1)
		} else {
			out[j] = 1 / (1 - r2)
		}
	}
	return out, nil
}

// tCritical95 approximates the two-sided 97.5 % Student-t quantile.
func tCritical95(df int) float64 {
	// Exact-enough table for small df, asymptote 1.96 beyond.
	table := map[int]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		12: 2.179, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
		40: 2.021, 50: 2.009, 60: 2.000, 80: 1.990, 100: 1.984,
	}
	if v, ok := table[df]; ok {
		return v
	}
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 20, 25, 30, 40, 50, 60, 80, 100}
	prev := keys[0]
	for _, k := range keys {
		if df < k {
			return table[prev]
		}
		prev = k
	}
	return 1.96
}

// twoSidedP computes the two-sided p-value of a t statistic using the
// regularized incomplete beta function.
func twoSidedP(t float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	x := float64(df) / (float64(df) + t*t)
	p := incBeta(float64(df)/2, 0.5, x)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// incBeta computes the regularized incomplete beta function I_x(a, b)
// by continued fraction (Numerical Recipes style).
func incBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 200
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
