package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Pearson(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("inverted correlation = %v", got)
	}
	if Pearson(x, []float64{7, 7, 7, 7, 7}) != 0 {
		t.Error("constant series must correlate zero")
	}
	if Pearson(x, []float64{1, 2}) != 0 {
		t.Error("length mismatch must return 0")
	}
}

func TestPearsonNearZeroForIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i], y[i] = r.NormFloat64(), r.NormFloat64()
	}
	if got := Pearson(x, y); math.Abs(got) > 0.05 {
		t.Errorf("independent correlation = %v", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// A monotone nonlinear relationship: Spearman 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{1, 8, 27, 64, 125, 216}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone Spearman = %v", got)
	}
	if got := Pearson(x, y); got >= 1 {
		t.Errorf("cubic Pearson = %v, want < 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}
