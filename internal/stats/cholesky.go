package stats

import "math"

// This file is the Cholesky path behind OLS and VIF (Fig. 12,
// Table 7). The normal-equations Gram matrix G = [1 X]ᵀ[1 X] is
// symmetric positive definite whenever the design has full column
// rank, so one in-place Cholesky factorization replaces the
// Gauss–Jordan Matrix.Inverse on the hot path: β comes from two
// triangular substitutions and the standard errors from the diagonal
// of G⁻¹ recovered column-by-column from L⁻¹. Everything works on one
// flat scratch block; nothing here materializes the design matrix or
// its transpose.

// normalEquations accumulates the lower triangle of the augmented
// Gram matrix G = [1 X]ᵀ[1 X] into g (k×k row-major, k = X.Cols+1)
// and, when y is non-nil, [1 X]ᵀy into xty (length k). Both outputs
// must arrive zeroed.
func normalEquations(y []float64, X *Matrix, g, xty []float64) {
	n, k := X.Rows, X.Cols+1
	g[0] = float64(n)
	for i := 0; i < n; i++ {
		row := X.Data[i*X.Cols : (i+1)*X.Cols]
		if y != nil {
			yi := y[i]
			xty[0] += yi
			for j, xj := range row {
				xty[j+1] += xj * yi
			}
		}
		for j, xj := range row {
			grow := g[(j+1)*k : (j+2)*k]
			grow[0] += xj // intercept column
			for l := 0; l <= j; l++ {
				grow[l+1] += xj * row[l]
			}
		}
	}
}

// cholesky factors the SPD matrix in g (k×k row-major, lower triangle
// populated) in place into its lower-triangular Cholesky factor L.
// A pivot at or below the Gauss–Jordan tolerance reports ErrSingular.
func cholesky(g []float64, k int) error {
	for j := 0; j < k; j++ {
		d := g[j*k+j]
		for p := 0; p < j; p++ {
			l := g[j*k+p]
			d -= l * l
		}
		if d <= 1e-12 {
			return ErrSingular
		}
		d = math.Sqrt(d)
		g[j*k+j] = d
		for i := j + 1; i < k; i++ {
			s := g[i*k+j]
			irow := g[i*k : i*k+j]
			jrow := g[j*k : j*k+j]
			for p := range jrow {
				s -= irow[p] * jrow[p]
			}
			g[i*k+j] = s / d
		}
	}
	return nil
}

// choleskySolve solves L Lᵀ x = b in place given the factor produced
// by cholesky, by forward then backward substitution.
func choleskySolve(l []float64, k int, b []float64) {
	for i := 0; i < k; i++ {
		s := b[i]
		for p := 0; p < i; p++ {
			s -= l[i*k+p] * b[p]
		}
		b[i] = s / l[i*k+i]
	}
	for i := k - 1; i >= 0; i-- {
		s := b[i]
		for p := i + 1; p < k; p++ {
			s -= l[p*k+i] * b[p]
		}
		b[i] = s / l[i*k+i]
	}
}

// choleskyInvDiag writes the diagonal of (L Lᵀ)⁻¹ into diag, using
// col (length k) as substitution scratch: column j of L⁻¹ comes from
// forward substitution against e_j, and (G⁻¹)_jj is that column's
// squared norm since G⁻¹ = L⁻ᵀ L⁻¹.
func choleskyInvDiag(l []float64, k int, diag, col []float64) {
	for j := 0; j < k; j++ {
		for i := j; i < k; i++ {
			var s float64
			if i == j {
				s = 1
			}
			for p := j; p < i; p++ {
				s -= l[i*k+p] * col[p]
			}
			col[i] = s / l[i*k+i]
		}
		var v float64
		for i := j; i < k; i++ {
			v += col[i] * col[i]
		}
		diag[j] = v
	}
}
