// Package cluster implements hierarchical agglomerative clustering
// with Ward's minimum-variance linkage, as used in §5.3 to group
// countries by their hosting-strategy signatures (Fig. 5). Merges are
// found with the nearest-neighbor-chain algorithm — O(n²) over flat
// arrays instead of the O(n³) global-minimum scan over a distance map
// — and reported in the same order the global-minimum algorithm would
// report them, so the dendrogram (structure, leaf order, cuts) is
// unchanged. The result can be cut into k branches, and leaves are
// returned in dendrogram order for display.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Node is a dendrogram node: either a leaf (Left == Right == nil) or a
// merge of two sub-clusters at a given height.
type Node struct {
	Label       string // leaf label
	Left, Right *Node
	Height      float64 // merge distance (Ward criterion)
	Size        int     // number of leaves underneath
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.Left == nil && n.Right == nil }

// Leaves returns the labels under the node in dendrogram order.
func (n *Node) Leaves() []string {
	if n == nil {
		return nil
	}
	if n.Leaf() {
		return []string{n.Label}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// merge is one recorded agglomeration: the chain-cluster ids of its
// children (leaves are 0..n-1, the m-th merge is n+m) and the Ward
// distance at which they joined.
type merge struct {
	left, right int
	height      float64
}

// Ward clusters the rows of points (observations × features) labelled
// by labels and returns the dendrogram root.
//
// The merges are discovered by the nearest-neighbor-chain algorithm:
// follow nearest-neighbor links (ties broken toward the chain
// predecessor, then the smallest index) until a reciprocal pair
// appears, merge it, and continue from the remaining chain. Ward
// linkage is reducible, so a merge never invalidates the links below
// it on the chain and the discovered merge set equals the
// global-minimum algorithm's. Distances live in one flat n×n array
// updated in place via the Lance–Williams recurrence.
func Ward(labels []string, points [][]float64) (*Node, error) {
	if len(labels) != len(points) {
		return nil, errors.New("cluster: labels/points length mismatch")
	}
	if len(labels) == 0 {
		return nil, errors.New("cluster: empty input")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: row %d has %d features, want %d", i, len(p), dim)
		}
	}
	n := len(labels)
	if n == 1 {
		return &Node{Label: labels[0], Size: 1}, nil
	}

	// Squared-Euclidean distance matrix; Ward initial distances are
	// d²/2-ish but proportionality is all the dendrogram shape needs —
	// we use the standard "d² between singletons" convention.
	d := make([]float64, n*n)
	for i := range points {
		for j := i + 1; j < n; j++ {
			var v float64
			for f := 0; f < dim; f++ {
				diff := points[i][f] - points[j][f]
				v += diff * diff
			}
			d[i*n+j], d[j*n+i] = v, v
		}
	}

	alive := make([]bool, n)
	size := make([]float64, n)
	clusterOf := make([]int, n) // representative index → chain-cluster id
	for i := 0; i < n; i++ {
		alive[i], size[i], clusterOf[i] = true, 1, i
	}

	merges := make([]merge, 0, n-1)
	chain := make([]int, 0, n)
	lowest := 0 // lowest index that may still be alive, for chain restarts
	for len(merges) < n-1 {
		if len(chain) == 0 {
			for !alive[lowest] {
				lowest++
			}
			chain = append(chain, lowest)
		}
		for {
			top := chain[len(chain)-1]
			prev := -1
			if len(chain) >= 2 {
				prev = chain[len(chain)-2]
			}
			// Nearest alive neighbor of top: minimum distance, ties to
			// the smallest index, then to the chain predecessor (the
			// predecessor preference is what guarantees termination
			// under exact ties).
			row := d[top*n : top*n+n]
			nn, best := -1, math.Inf(1)
			for k := 0; k < n; k++ {
				if !alive[k] || k == top {
					continue
				}
				if row[k] < best {
					nn, best = k, row[k]
				}
			}
			if prev >= 0 && row[prev] == best {
				nn = prev
			}
			if nn != prev {
				chain = append(chain, nn)
				continue
			}
			// top and prev are reciprocal nearest neighbors: merge them.
			a, b := prev, top
			if b < a {
				a, b = b, a
			}
			sa, sb := size[a], size[b]
			h := d[a*n+b]
			// Lance–Williams update for Ward linkage, folded into the
			// surviving representative's row/column.
			for k := 0; k < n; k++ {
				if !alive[k] || k == a || k == b {
					continue
				}
				sk := size[k]
				tot := sa + sb + sk
				ai := (sa + sk) / tot
				aj := (sb + sk) / tot
				g := -sk / tot
				nd := ai*d[a*n+k] + aj*d[b*n+k] + g*h
				d[a*n+k], d[k*n+a] = nd, nd
			}
			alive[b] = false
			size[a] = sa + sb
			merges = append(merges, merge{left: clusterOf[a], right: clusterOf[b], height: h})
			clusterOf[a] = n + len(merges) - 1
			chain = chain[:len(chain)-2]
			break
		}
	}
	return buildDendrogram(labels, merges), nil
}

// buildDendrogram replays the recorded merges in the order the
// global-minimum algorithm reports them — ascending height (Ward
// heights are monotone), ties by the lexicographically smallest pair
// of replay-order cluster ids, a merge eligible only once both
// children exist — and orients each node with the lower-id child on
// the left. The chain discovers merges in its own order; this replay
// restores the historical dendrogram order so leaf order, cuts and
// rendered reports are unchanged.
func buildDendrogram(labels []string, merges []merge) *Node {
	n := len(labels)
	nodes := make([]*Node, n+len(merges)) // chain-cluster id → node
	gid := make([]int, n+len(merges))     // chain-cluster id → replay id
	for i := 0; i < n; i++ {
		nodes[i] = &Node{Label: labels[i], Size: 1}
		gid[i] = i
	}
	done := make([]bool, len(merges))
	next := n
	for step := 0; step < len(merges); step++ {
		bi, bl, br := -1, 0, 0
		var bh float64
		for m := range merges {
			if done[m] || nodes[merges[m].left] == nil || nodes[merges[m].right] == nil {
				continue
			}
			gl, gr := gid[merges[m].left], gid[merges[m].right]
			if gr < gl {
				gl, gr = gr, gl
			}
			h := merges[m].height
			if bi < 0 || h < bh || (h == bh && (gl < bl || (gl == bl && gr < br))) {
				bi, bh, bl, br = m, h, gl, gr
			}
		}
		mg := merges[bi]
		left, right := nodes[mg.left], nodes[mg.right]
		if gid[mg.right] < gid[mg.left] {
			left, right = right, left
		}
		id := n + bi
		nodes[id] = &Node{Left: left, Right: right, Height: mg.height, Size: left.Size + right.Size}
		gid[id] = next
		next++
		done[bi] = true
	}
	return nodes[n+len(merges)-1]
}

// Cut slices the dendrogram into k clusters by repeatedly splitting
// the highest merge. Each returned cluster is its leaf-label set in
// dendrogram order.
func Cut(root *Node, k int) [][]string {
	if root == nil || k < 1 {
		return nil
	}
	nodes := []*Node{root}
	for len(nodes) < k {
		// Split the node with the greatest merge height.
		idx := -1
		best := -1.0
		for i, n := range nodes {
			if !n.Leaf() && n.Height > best {
				best, idx = n.Height, i
			}
		}
		if idx < 0 {
			break // all leaves
		}
		n := nodes[idx]
		nodes = append(nodes[:idx], nodes[idx+1:]...)
		nodes = append(nodes, n.Left, n.Right)
	}
	// Order clusters by their first leaf's dendrogram position.
	pos := map[string]int{}
	for i, l := range root.Leaves() {
		pos[l] = i
	}
	sort.Slice(nodes, func(i, j int) bool {
		return pos[nodes[i].Leaves()[0]] < pos[nodes[j].Leaves()[0]]
	})
	out := make([][]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Leaves())
	}
	return out
}

// Render draws the dendrogram as indented ASCII, for reports.
func Render(root *Node) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.Leaf() {
			fmt.Fprintf(&b, "%s- %s\n", indent, n.Label)
			return
		}
		fmt.Fprintf(&b, "%s+ h=%.4f (%d leaves)\n", indent, n.Height, n.Size)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(root, 0)
	return b.String()
}
