// Package cluster implements hierarchical agglomerative clustering
// with Ward's minimum-variance linkage, as used in §5.3 to group
// countries by their hosting-strategy signatures (Fig. 5). The
// Lance–Williams recurrence updates inter-cluster distances, the
// result is a dendrogram that can be cut into k branches, and leaves
// are returned in dendrogram order for display.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Node is a dendrogram node: either a leaf (Left == Right == nil) or a
// merge of two sub-clusters at a given height.
type Node struct {
	Label       string // leaf label
	Left, Right *Node
	Height      float64 // merge distance (Ward criterion)
	Size        int     // number of leaves underneath
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.Left == nil && n.Right == nil }

// Leaves returns the labels under the node in dendrogram order.
func (n *Node) Leaves() []string {
	if n == nil {
		return nil
	}
	if n.Leaf() {
		return []string{n.Label}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// Ward clusters the rows of points (observations × features) labelled
// by labels and returns the dendrogram root.
func Ward(labels []string, points [][]float64) (*Node, error) {
	if len(labels) != len(points) {
		return nil, errors.New("cluster: labels/points length mismatch")
	}
	if len(labels) == 0 {
		return nil, errors.New("cluster: empty input")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: row %d has %d features, want %d", i, len(p), dim)
		}
	}

	type cl struct {
		node *Node
		size float64
	}
	active := make(map[int]*cl, len(labels))
	for i, l := range labels {
		active[i] = &cl{node: &Node{Label: l, Size: 1}, size: 1}
	}

	// Squared-Euclidean distance matrix; Ward initial distances are
	// d²/2-ish but proportionality is all the dendrogram shape needs —
	// we use the standard "d² between singletons" convention.
	dist := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			var d float64
			for f := 0; f < dim; f++ {
				diff := points[i][f] - points[j][f]
				d += diff * diff
			}
			dist[key(i, j)] = d
		}
	}

	next := len(labels)
	for len(active) > 1 {
		// Find the closest active pair, with deterministic tie-breaks.
		ids := make([]int, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		bi, bj := -1, -1
		best := math.Inf(1)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				d := dist[key(ids[x], ids[y])]
				if d < best {
					best, bi, bj = d, ids[x], ids[y]
				}
			}
		}
		a, b := active[bi], active[bj]
		merged := &cl{
			node: &Node{
				Left: a.node, Right: b.node,
				Height: best,
				Size:   a.node.Size + b.node.Size,
			},
			size: a.size + b.size,
		}
		delete(active, bi)
		delete(active, bj)
		// Lance–Williams update for Ward linkage.
		for _, id := range ids {
			if id == bi || id == bj {
				continue
			}
			k := active[id]
			dik := dist[key(bi, id)]
			djk := dist[key(bj, id)]
			dij := best
			ai := (a.size + k.size) / (a.size + b.size + k.size)
			aj := (b.size + k.size) / (a.size + b.size + k.size)
			g := -k.size / (a.size + b.size + k.size)
			dist[key(next, id)] = ai*dik + aj*djk + g*dij
		}
		active[next] = merged
		next++
	}
	for _, c := range active {
		return c.node, nil
	}
	return nil, errors.New("cluster: unreachable")
}

// Cut slices the dendrogram into k clusters by repeatedly splitting
// the highest merge. Each returned cluster is its leaf-label set in
// dendrogram order.
func Cut(root *Node, k int) [][]string {
	if root == nil || k < 1 {
		return nil
	}
	nodes := []*Node{root}
	for len(nodes) < k {
		// Split the node with the greatest merge height.
		idx := -1
		best := -1.0
		for i, n := range nodes {
			if !n.Leaf() && n.Height > best {
				best, idx = n.Height, i
			}
		}
		if idx < 0 {
			break // all leaves
		}
		n := nodes[idx]
		nodes = append(nodes[:idx], nodes[idx+1:]...)
		nodes = append(nodes, n.Left, n.Right)
	}
	// Order clusters by their first leaf's dendrogram position.
	pos := map[string]int{}
	for i, l := range root.Leaves() {
		pos[l] = i
	}
	sort.Slice(nodes, func(i, j int) bool {
		return pos[nodes[i].Leaves()[0]] < pos[nodes[j].Leaves()[0]]
	})
	out := make([][]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Leaves())
	}
	return out
}

// Render draws the dendrogram as indented ASCII, for reports.
func Render(root *Node) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.Leaf() {
			fmt.Fprintf(&b, "%s- %s\n", indent, n.Label)
			return
		}
		fmt.Fprintf(&b, "%s+ h=%.4f (%d leaves)\n", indent, n.Height, n.Size)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(root, 0)
	return b.String()
}
