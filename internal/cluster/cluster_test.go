package cluster

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func twoBlobs() ([]string, [][]float64) {
	labels := []string{"a1", "a2", "a3", "b1", "b2", "b3"}
	points := [][]float64{
		{0.9, 0.1}, {0.85, 0.12}, {0.95, 0.08},
		{0.1, 0.9}, {0.12, 0.88}, {0.08, 0.95},
	}
	return labels, points
}

func TestWardSeparatesObviousClusters(t *testing.T) {
	labels, points := twoBlobs()
	root, err := Ward(labels, points)
	if err != nil {
		t.Fatal(err)
	}
	cut := Cut(root, 2)
	if len(cut) != 2 {
		t.Fatalf("cut into %d clusters, want 2", len(cut))
	}
	for _, cl := range cut {
		prefix := cl[0][:1]
		for _, l := range cl {
			if l[:1] != prefix {
				t.Fatalf("mixed cluster: %v", cl)
			}
		}
	}
}

func TestWardLeavesPreserved(t *testing.T) {
	labels, points := twoBlobs()
	root, err := Ward(labels, points)
	if err != nil {
		t.Fatal(err)
	}
	got := root.Leaves()
	sort.Strings(got)
	want := append([]string(nil), labels...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("leaves = %v, want %v", got, want)
	}
	if root.Size != len(labels) {
		t.Fatalf("root size = %d", root.Size)
	}
}

func TestWardDeterministic(t *testing.T) {
	labels, points := twoBlobs()
	a, _ := Ward(labels, points)
	b, _ := Ward(labels, points)
	if !reflect.DeepEqual(a.Leaves(), b.Leaves()) {
		t.Fatal("dendrogram order not deterministic")
	}
}

func TestWardSingleLeaf(t *testing.T) {
	root, err := Ward([]string{"only"}, [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !root.Leaf() || root.Label != "only" {
		t.Fatalf("single-point dendrogram wrong: %+v", root)
	}
}

func TestWardInputValidation(t *testing.T) {
	if _, err := Ward([]string{"a"}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Ward(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Ward([]string{"a", "b"}, [][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged features accepted")
	}
}

func TestCutBeyondLeaves(t *testing.T) {
	labels, points := twoBlobs()
	root, _ := Ward(labels, points)
	cut := Cut(root, 100)
	if len(cut) != len(labels) {
		t.Fatalf("cut with k>n gave %d clusters, want %d singletons", len(cut), len(labels))
	}
	if Cut(root, 0) != nil || Cut(nil, 3) != nil {
		t.Fatal("degenerate cuts must return nil")
	}
	one := Cut(root, 1)
	if len(one) != 1 || len(one[0]) != len(labels) {
		t.Fatal("k=1 must return everything in one cluster")
	}
}

func TestCutOrderFollowsDendrogram(t *testing.T) {
	labels, points := twoBlobs()
	root, _ := Ward(labels, points)
	order := root.Leaves()
	cut := Cut(root, 2)
	// The first cluster's first leaf must be the dendrogram's first leaf.
	if cut[0][0] != order[0] {
		t.Fatalf("cut order %v does not follow dendrogram order %v", cut[0], order)
	}
}

func TestThreeStrategiesThreeBranches(t *testing.T) {
	// Mimics Fig. 5: three hosting archetypes plus noise.
	labels := []string{"gov1", "gov2", "gov3", "loc1", "loc2", "glo1", "glo2", "glo3"}
	points := [][]float64{
		{0.8, 0.1, 0.1, 0}, {0.75, 0.15, 0.1, 0}, {0.9, 0.05, 0.05, 0},
		{0.2, 0.7, 0.1, 0}, {0.15, 0.75, 0.1, 0},
		{0.1, 0.1, 0.8, 0}, {0.05, 0.15, 0.8, 0}, {0.1, 0.2, 0.7, 0},
	}
	root, err := Ward(labels, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, cl := range Cut(root, 3) {
		kinds := map[string]bool{}
		for _, l := range cl {
			kinds[strings.TrimRight(l, "123")] = true
		}
		if len(kinds) != 1 {
			t.Fatalf("branch %d mixes strategies: %v", i, cl)
		}
	}
}

func TestMergeHeightsGrowTowardsRoot(t *testing.T) {
	labels, points := twoBlobs()
	root, _ := Ward(labels, points)
	var walk func(n *Node) float64
	walk = func(n *Node) float64 {
		if n.Leaf() {
			return 0
		}
		l, r := walk(n.Left), walk(n.Right)
		if n.Height < l || n.Height < r {
			t.Fatalf("Ward heights not monotone: %v < child", n.Height)
		}
		return n.Height
	}
	walk(root)
}

func TestRenderContainsAllLeaves(t *testing.T) {
	labels, points := twoBlobs()
	root, _ := Ward(labels, points)
	out := Render(root)
	for _, l := range labels {
		if !strings.Contains(out, l) {
			t.Fatalf("render missing %s:\n%s", l, out)
		}
	}
}

// TestWardPropertiesQuick: for random point sets, the dendrogram
// always preserves the leaf set and every cut is a partition.
func TestWardPropertiesQuick(t *testing.T) {
	f := func(seeds [6]uint16, kRaw uint8) bool {
		labels := make([]string, len(seeds))
		points := make([][]float64, len(seeds))
		for i, s := range seeds {
			labels[i] = string(rune('a' + i))
			points[i] = []float64{float64(s % 97), float64(s % 31), float64(s % 7)}
		}
		root, err := Ward(labels, points)
		if err != nil {
			return false
		}
		if len(root.Leaves()) != len(labels) {
			return false
		}
		k := int(kRaw%8) + 1
		cut := Cut(root, k)
		seen := map[string]int{}
		for _, cl := range cut {
			for _, l := range cl {
				seen[l]++
			}
		}
		if len(seen) != len(labels) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
