package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// wardReference is the pre-NN-chain implementation, kept verbatim as
// the oracle: a global-minimum scan over a distance map with
// Lance–Williams updates. The production Ward must reproduce its
// dendrogram — structure, leaf order, cuts — exactly, and its merge
// heights up to float round-off (the chain discovers the same merges
// through a different arithmetic order).
func wardReference(labels []string, points [][]float64) (*Node, error) {
	if len(labels) != len(points) {
		return nil, errors.New("cluster: labels/points length mismatch")
	}
	if len(labels) == 0 {
		return nil, errors.New("cluster: empty input")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: row %d has %d features, want %d", i, len(p), dim)
		}
	}

	type cl struct {
		node *Node
		size float64
	}
	active := make(map[int]*cl, len(labels))
	for i, l := range labels {
		active[i] = &cl{node: &Node{Label: l, Size: 1}, size: 1}
	}

	dist := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			var d float64
			for f := 0; f < dim; f++ {
				diff := points[i][f] - points[j][f]
				d += diff * diff
			}
			dist[key(i, j)] = d
		}
	}

	next := len(labels)
	for len(active) > 1 {
		// Find the closest active pair, with deterministic tie-breaks.
		ids := make([]int, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		bi, bj := -1, -1
		best := math.Inf(1)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				d := dist[key(ids[x], ids[y])]
				if d < best {
					best, bi, bj = d, ids[x], ids[y]
				}
			}
		}
		a, b := active[bi], active[bj]
		merged := &cl{
			node: &Node{
				Left: a.node, Right: b.node,
				Height: best,
				Size:   a.node.Size + b.node.Size,
			},
			size: a.size + b.size,
		}
		delete(active, bi)
		delete(active, bj)
		for _, id := range ids {
			if id == bi || id == bj {
				continue
			}
			k := active[id]
			dik := dist[key(bi, id)]
			djk := dist[key(bj, id)]
			dij := best
			ai := (a.size + k.size) / (a.size + b.size + k.size)
			aj := (b.size + k.size) / (a.size + b.size + k.size)
			g := -k.size / (a.size + b.size + k.size)
			dist[key(next, id)] = ai*dik + aj*djk + g*dij
		}
		active[next] = merged
		next++
	}
	for _, c := range active {
		return c.node, nil
	}
	return nil, errors.New("cluster: unreachable")
}

// sameDendrogram compares two dendrograms node by node: identical
// shape, labels, sizes and left/right orientation, with merge heights
// equal to within a 1e-9 relative tolerance (the NN-chain and the
// global-minimum scan evaluate the same Lance–Williams recurrence in
// different orders, so the low bits may differ).
func sameDendrogram(a, b *Node) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("nil mismatch: %v vs %v", a, b)
	}
	if a == nil {
		return nil
	}
	if a.Leaf() != b.Leaf() {
		return fmt.Errorf("leaf/merge mismatch at %q vs %q", a.Label, b.Label)
	}
	if a.Label != b.Label || a.Size != b.Size {
		return fmt.Errorf("label/size mismatch: %q/%d vs %q/%d", a.Label, a.Size, b.Label, b.Size)
	}
	scale := math.Max(math.Abs(a.Height), math.Abs(b.Height))
	if diff := math.Abs(a.Height - b.Height); diff > 1e-9*math.Max(scale, 1) {
		return fmt.Errorf("height mismatch: %g vs %g", a.Height, b.Height)
	}
	if a.Leaf() {
		return nil
	}
	if err := sameDendrogram(a.Left, b.Left); err != nil {
		return err
	}
	return sameDendrogram(a.Right, b.Right)
}

// TestWardMatchesReferenceQuick is the NN-chain equivalence property:
// on seeded random inputs the production Ward and the retained
// global-minimum reference produce the same dendrogram — heights (to
// round-off), leaf order, and every k-cut.
func TestWardMatchesReferenceQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(39)
		dim := 1 + r.Intn(5)
		labels := make([]string, n)
		points := make([][]float64, n)
		for i := 0; i < n; i++ {
			labels[i] = fmt.Sprintf("L%02d", i)
			row := make([]float64, dim)
			for f := range row {
				row[f] = r.NormFloat64() * 10
			}
			points[i] = row
		}

		got, err := Ward(labels, points)
		if err != nil {
			t.Logf("seed %d: Ward error: %v", seed, err)
			return false
		}
		want, err := wardReference(labels, points)
		if err != nil {
			t.Logf("seed %d: reference error: %v", seed, err)
			return false
		}
		if err := sameDendrogram(got, want); err != nil {
			t.Logf("seed %d (n=%d dim=%d): %v\ngot:\n%swant:\n%s",
				seed, n, dim, err, Render(got), Render(want))
			return false
		}
		if !reflect.DeepEqual(got.Leaves(), want.Leaves()) {
			t.Logf("seed %d: leaf order diverged", seed)
			return false
		}
		for k := 1; k <= n; k++ {
			if !reflect.DeepEqual(Cut(got, k), Cut(want, k)) {
				t.Logf("seed %d: cut k=%d diverged", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestWardMatchesReferenceTiedInputs pins the tie-prone integer grids
// the semantic quick test generates: duplicate and collinear points
// force exact distance ties, where the chain may legitimately discover
// merges in a different order. The replay must still deliver a
// dendrogram whose cuts partition the leaves identically to the
// reference's cuts at every k that separates cleanly.
func TestWardMatchesReferenceTiedInputs(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	points := make([][]float64, len(labels))
	for i := range points {
		s := i * 13
		points[i] = []float64{float64(s % 97), float64(s % 31), float64(s % 7)}
	}
	got, err := Ward(labels, points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wardReference(labels, points)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameDendrogram(got, want); err != nil {
		t.Fatalf("tied-input dendrogram diverged: %v\ngot:\n%swant:\n%s",
			err, Render(got), Render(want))
	}
}
