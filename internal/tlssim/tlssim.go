// Package tlssim models the TLS certificates of landing pages. The
// classification methodology (§3.3, Table 1) inspects Subject
// Alternative Names to find government-affiliated hostnames that are
// not evident from their domain names (e.g. orniss.ro,
// energia-argentina.com.ar), so the synthetic estate carries a
// certificate record per landing site. Helpers can materialise real
// self-signed x509 certificates for integration tests that terminate
// actual TLS connections.
package tlssim

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"
)

// Certificate is the lightweight record the pipeline inspects.
type Certificate struct {
	Subject string   // common name, normally the landing hostname
	SANs    []string // subject alternative names
	Issuer  string

	// Valid reports whether a browser would accept the certificate.
	// Singanamalla et al. find over 70 % of government sites lack
	// valid HTTPS; Invalid explains why (expired, self-signed,
	// hostname mismatch).
	Valid   bool
	Invalid string
}

// Store holds certificates keyed by hostname.
type Store struct {
	mu    sync.RWMutex
	certs map[string]*Certificate
}

// NewStore returns an empty certificate store.
func NewStore() *Store {
	return &Store{certs: make(map[string]*Certificate)}
}

// Put registers a certificate for its subject hostname.
func (s *Store) Put(c *Certificate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.certs[c.Subject] = c
}

// Get returns the certificate served for hostname: an exact subject
// match, or any certificate listing the hostname as a SAN.
func (s *Store) Get(hostname string) *Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.certs[hostname]; ok {
		return c
	}
	for _, c := range s.certs {
		for _, san := range c.SANs {
			if san == hostname {
				return c
			}
		}
	}
	return nil
}

// Len returns the number of stored certificates.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.certs)
}

// Subjects returns all certificate subjects in sorted order.
func (s *Store) Subjects() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.certs))
	for k := range s.certs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SANUniverse returns the set of every hostname that appears in any
// SAN list; the §3.3 SAN-matching step checks internal hostnames
// against this set.
func (s *Store) SANUniverse() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string)
	for subj, c := range s.certs {
		for _, san := range c.SANs {
			out[san] = subj
		}
	}
	return out
}

// SelfSign materialises a real ECDSA P-256 self-signed x509
// certificate for the record, suitable for a TLS server in tests.
func SelfSign(c *Certificate, notBefore time.Time) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlssim: key generation: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: c.Subject, Organization: []string{c.Issuer}},
		NotBefore:    notBefore,
		NotAfter:     notBefore.Add(90 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     append([]string{c.Subject}, c.SANs...),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tlssim: certificate creation: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// ParseSANs extracts the DNS SANs from a real x509 certificate,
// mirroring what the measurement pipeline reads off a TLS handshake.
func ParseSANs(der []byte) ([]string, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return cert.DNSNames, nil
}
