package tlssim

import (
	"crypto/tls"
	"crypto/x509"
	"io"
	"net"
	"testing"
	"time"
)

func TestStoreLookupBySubjectAndSAN(t *testing.T) {
	s := NewStore()
	s.Put(&Certificate{Subject: "finance.gov.br", SANs: []string{"finance.gov.br", "www.finance.gov.br", "energia-br.com"}})
	if c := s.Get("finance.gov.br"); c == nil {
		t.Fatal("subject lookup failed")
	}
	if c := s.Get("energia-br.com"); c == nil || c.Subject != "finance.gov.br" {
		t.Fatal("SAN lookup failed")
	}
	if s.Get("unknown.example") != nil {
		t.Fatal("unknown hostname must return nil")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSANUniverse(t *testing.T) {
	s := NewStore()
	s.Put(&Certificate{Subject: "a.gov", SANs: []string{"a.gov", "affiliate.com"}})
	s.Put(&Certificate{Subject: "b.gov", SANs: []string{"b.gov"}})
	u := s.SANUniverse()
	if u["affiliate.com"] != "a.gov" {
		t.Fatalf("SAN universe missing affiliate.com: %v", u)
	}
	if len(u) != 3 {
		t.Fatalf("SAN universe size = %d, want 3", len(u))
	}
}

func TestSubjectsSorted(t *testing.T) {
	s := NewStore()
	s.Put(&Certificate{Subject: "z.gov"})
	s.Put(&Certificate{Subject: "a.gov"})
	subj := s.Subjects()
	if len(subj) != 2 || subj[0] != "a.gov" || subj[1] != "z.gov" {
		t.Fatalf("Subjects = %v", subj)
	}
}

func TestSelfSignRoundTrip(t *testing.T) {
	rec := &Certificate{
		Subject: "www.gub.uy",
		SANs:    []string{"sso.gub.uy", "tramites.gub.uy"},
		Issuer:  "GovTrust CA",
	}
	cert, err := SelfSign(rec, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	sans, err := ParseSANs(cert.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"www.gub.uy": true, "sso.gub.uy": true, "tramites.gub.uy": true}
	for _, s := range sans {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Fatalf("missing SANs after round trip: %v", want)
	}
}

// TestSelfSignServesTLS terminates a real TLS connection with the
// generated certificate and reads the SANs off the wire, exactly like
// the §3.3 methodology inspects landing-page certificates.
func TestSelfSignServesTLS(t *testing.T) {
	rec := &Certificate{Subject: "landing.gov.test", SANs: []string{"affiliate.example"}, Issuer: "GovTrust CA"}
	cert, err := SelfSign(rec, time.Now().Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("hello"))
		conn.Close()
	}()

	var leaf *x509.Certificate
	conn, err := tls.Dial("tcp", ln.Addr().String(), &tls.Config{
		InsecureSkipVerify: true,
		VerifyPeerCertificate: func(raw [][]byte, _ [][]*x509.Certificate) error {
			c, err := x509.ParseCertificate(raw[0])
			leaf = c
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(conn)
	conn.Close()
	if leaf == nil {
		t.Fatal("no peer certificate observed")
	}
	found := false
	for _, s := range leaf.DNSNames {
		if s == "affiliate.example" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SAN missing from served certificate: %v", leaf.DNSNames)
	}
	var _ net.Conn // keep net import honest
}
