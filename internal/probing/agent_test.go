package probing

import (
	"context"
	"errors"
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/rng"
)

func startAgent(t *testing.T) (*testWorld, string) {
	t.Helper()
	tw := setup(t)
	agent := &Agent{Net: tw.net}
	addr, err := agent.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return tw, addr
}

func TestAgentEchoesSimulatedRTT(t *testing.T) {
	tw, addr := startAgent(t)
	r := rng.New(20, "agent")
	var target netip.Addr
	for i := 0; i < 50; i++ {
		h := tw.net.LocalHostFor("DE", r)
		if h.ICMP {
			target = h.Addr
			break
		}
	}
	if !target.IsValid() {
		t.Skip("no responsive target")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	overWire, err := ProbeOnce(ctx, addr, "DE", target, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	direct, ok := tw.net.Ping("DE", target, 0)
	if !ok {
		t.Fatal("direct ping failed")
	}
	if math.Abs(overWire-direct) > 0.01 {
		t.Fatalf("wire RTT %.3f != simulated %.3f", overWire, direct)
	}
}

func TestAgentMinProbeMatchesMinPing(t *testing.T) {
	tw, addr := startAgent(t)
	r := rng.New(21, "agent-min")
	var target netip.Addr
	for i := 0; i < 50; i++ {
		h := tw.net.LocalHostFor("FR", r)
		if h.ICMP {
			target = h.Addr
			break
		}
	}
	if !target.IsValid() {
		t.Skip("no responsive target")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	overWire, err := MinProbe(ctx, addr, "FR", target, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := tw.net.MinPing("FR", target, 3)
	if math.Abs(overWire-direct) > 0.01 {
		t.Fatalf("wire min %.3f != simulated min %.3f", overWire, direct)
	}
}

func TestAgentSilentForUnresponsiveTargets(t *testing.T) {
	tw, addr := startAgent(t)
	r := rng.New(22, "agent-silent")
	var target netip.Addr
	for i := 0; i < 200; i++ {
		h := tw.net.GovHostFor("IN", false, "IN", r)
		if !h.ICMP {
			target = h.Addr
			break
		}
	}
	if !target.IsValid() {
		t.Skip("no silent target sampled")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := ProbeOnce(ctx, addr, "IN", target, 0, 9); !errors.Is(err, ErrNoReply) {
		t.Fatalf("silent target answered: %v", err)
	}
}

func TestAgentRejectsBadInput(t *testing.T) {
	_, addr := startAgent(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := ProbeOnce(ctx, addr, "DEU", netip.MustParseAddr("16.0.0.1"), 0, 1); err == nil {
		t.Fatal("three-letter country accepted")
	}
	if _, err := ProbeOnce(ctx, addr, "DE", netip.MustParseAddr("2001:db8::1"), 0, 1); err == nil {
		t.Fatal("IPv6 target accepted")
	}
}
