package probing

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/netsim"
)

// The measurement-agent protocol lets active probing run over real
// sockets: a probe sends an 18-byte echo request naming a vantage
// country, a target address and an attempt number, and the agent
// answers after the simulated round-trip time has elapsed (or not at
// all for ICMP-silent targets). Integration tests and the dnsprobe
// example use this to drive §3.5 measurements through the network
// stack instead of through function calls.
//
// Wire format (big endian):
//
//	request:  magic[2] "GP" | attempt uint16 | addr [4]byte | cc [2]byte | nonce uint64
//	response: magic[2] "GR" | rttMicros uint32 | nonce uint64
const (
	agentReqLen  = 18
	agentRespLen = 14
)

// AgentTimeScale compresses the simulated RTTs so tests do not sleep
// for real intercontinental latencies: a simulated millisecond costs
// one microsecond of wall time by default.
const AgentTimeScale = 1000

// Agent serves echo requests against the simulated network.
type Agent struct {
	Net *netsim.Net
	// TimeScale divides the simulated delay; 0 means AgentTimeScale.
	TimeScale int

	mu       sync.Mutex
	conn     *net.UDPConn
	wg       sync.WaitGroup
	shutdown bool
}

// Start begins serving on addr ("127.0.0.1:0") and returns the bound
// address.
func (a *Agent) Start(addr string) (string, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return "", err
	}
	a.mu.Lock()
	a.conn = conn
	a.mu.Unlock()
	a.wg.Add(1)
	//lint:ignore scheduler-bypass -- the agent's UDP accept loop must outlive Start and is joined by Close via a.wg
	go a.serve(conn)
	return conn.LocalAddr().String(), nil
}

// Close stops the agent.
func (a *Agent) Close() error {
	a.mu.Lock()
	a.shutdown = true
	if a.conn != nil {
		a.conn.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
	return nil
}

func (a *Agent) scale() int {
	if a.TimeScale > 0 {
		return a.TimeScale
	}
	return AgentTimeScale
}

func (a *Agent) serve(conn *net.UDPConn) {
	defer a.wg.Done()
	buf := make([]byte, 64)
	for {
		n, remote, err := conn.ReadFromUDP(buf)
		if err != nil {
			a.mu.Lock()
			done := a.shutdown
			a.mu.Unlock()
			if done {
				return
			}
			continue
		}
		if n != agentReqLen || buf[0] != 'G' || buf[1] != 'P' {
			continue // malformed probe; real agents drop these silently
		}
		attempt := binary.BigEndian.Uint16(buf[2:4])
		target := netip.AddrFrom4([4]byte(buf[4:8]))
		cc := string(buf[8:10])
		nonce := binary.BigEndian.Uint64(buf[10:18])

		rtt, ok := a.Net.Ping(cc, target, int(attempt))
		if !ok {
			continue // ICMP-silent targets answer nothing
		}
		a.wg.Add(1)
		//lint:ignore scheduler-bypass -- delayed echo replies model the wire, not pipeline work; joined by Close via a.wg
		go func(remote *net.UDPAddr, rtt float64, nonce uint64) {
			defer a.wg.Done()
			// Delay by the scaled simulated RTT so the probe measures
			// it off the wire.
			//lint:ignore nondeterminism -- wire pacing for the live-socket demo agent; RTT values come from netsim and no dataset bytes derive from this sleep
			time.Sleep(time.Duration(rtt*1000/float64(a.scale())) * time.Microsecond)
			resp := make([]byte, agentRespLen)
			resp[0], resp[1] = 'G', 'R'
			binary.BigEndian.PutUint32(resp[2:6], uint32(rtt*1000))
			binary.BigEndian.PutUint64(resp[6:14], nonce)
			conn.WriteToUDP(resp, remote)
		}(remote, rtt, nonce)
	}
}

// ErrNoReply reports an unanswered probe.
var ErrNoReply = errors.New("probing: no reply from agent")

// ProbeOnce sends one echo request through the agent and returns the
// simulated RTT in milliseconds, or ErrNoReply when the target is
// ICMP-silent.
func ProbeOnce(ctx context.Context, agentAddr, vantageCC string, target netip.Addr, attempt int, nonce uint64) (float64, error) {
	if len(vantageCC) != 2 {
		return 0, fmt.Errorf("probing: bad vantage country %q", vantageCC)
	}
	if !target.Is4() {
		return 0, fmt.Errorf("probing: target must be IPv4")
	}
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "udp", agentAddr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		//lint:ignore nondeterminism -- socket deadline fallback for the live-socket probe path; timeouts surface as ErrNoReply, never as dataset bytes
		conn.SetDeadline(time.Now().Add(3 * time.Second))
	}
	req := make([]byte, agentReqLen)
	req[0], req[1] = 'G', 'P'
	binary.BigEndian.PutUint16(req[2:4], uint16(attempt))
	b4 := target.As4()
	copy(req[4:8], b4[:])
	copy(req[8:10], vantageCC)
	binary.BigEndian.PutUint64(req[10:18], nonce)
	if _, err := conn.Write(req); err != nil {
		return 0, err
	}
	resp := make([]byte, 64)
	n, err := conn.Read(resp)
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return 0, ErrNoReply
		}
		return 0, err
	}
	if n != agentRespLen || resp[0] != 'G' || resp[1] != 'R' {
		return 0, fmt.Errorf("probing: malformed agent response (%d bytes)", n)
	}
	if got := binary.BigEndian.Uint64(resp[6:14]); got != nonce {
		return 0, fmt.Errorf("probing: nonce mismatch")
	}
	return float64(binary.BigEndian.Uint32(resp[2:6])) / 1000, nil
}

// MinProbe sends k probes through the agent and returns the minimum
// RTT, mirroring §3.5's min-of-three measurement over the wire.
func MinProbe(ctx context.Context, agentAddr, vantageCC string, target netip.Addr, k int) (float64, error) {
	best := -1.0
	for i := 0; i < k; i++ {
		rtt, err := ProbeOnce(ctx, agentAddr, vantageCC, target, i, uint64(i)+1)
		if errors.Is(err, ErrNoReply) {
			return 0, ErrNoReply
		}
		if err != nil {
			return 0, err
		}
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	if best < 0 {
		return 0, ErrNoReply
	}
	return best, nil
}
