package probing

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// TestGeolocationCachesUnderRace hammers both verdict caches from many
// goroutines sharing a small address set — the worst case for the
// single-flight maps — and checks three things under -race: no data
// race, every goroutine observes the same verdict per key, and the
// deterministic metric half (lookups/hits/misses/negatives) lands on
// the same totals regardless of interleaving.
func TestGeolocationCachesUnderRace(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 8
	)
	type detCounts = [5]int64 // lookups, hits, misses, negative entries, negative hits
	det := func(m *metrics.CacheMetrics) detCounts {
		return detCounts{m.Lookups.Load(), m.Hits.Load(), m.Misses.Load(),
			m.NegativeEntries.Load(), m.NegativeHits.Load()}
	}
	run := func() (map[string]Verdict, detCounts, detCounts) {
		tw := setup(t)
		var gm metrics.GeoMetrics
		tw.prober.UnicastMetrics = &gm.Unicast
		tw.prober.AnycastMetrics = &gm.Anycast

		uniAddrs := benchAddrs(tw, false, 8)
		anyAddrs := benchAddrs(tw, true, 4)
		vantages := []string{"US", "DE", "BR", "JP"}

		verdicts := make([]map[string]Verdict, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				got := map[string]Verdict{}
				for r := 0; r < rounds; r++ {
					for _, a := range uniAddrs {
						got["uni/"+a.String()] = tw.prober.GeolocateUnicast(a)
					}
					for _, vc := range vantages {
						c := tw.w.MustCountry(vc)
						for _, a := range anyAddrs {
							got["any/"+vc+"/"+a.String()] = tw.prober.GeolocateAnycast(c, a)
						}
					}
				}
				verdicts[g] = got
			}()
		}
		wg.Wait()
		for g := 1; g < goroutines; g++ {
			if !reflect.DeepEqual(verdicts[g], verdicts[0]) {
				t.Fatalf("goroutine %d saw different verdicts than goroutine 0", g)
			}
		}
		return verdicts[0], det(&gm.Unicast), det(&gm.Anycast)
	}

	v1, u, a := run()
	v2, u2, a2 := run()
	if !reflect.DeepEqual(v1, v2) {
		t.Error("two identically seeded runs disagree on verdicts")
	}
	if u != u2 {
		t.Errorf("unicast deterministic counters differ: %v vs %v", u, u2)
	}
	if a != a2 {
		t.Errorf("anycast deterministic counters differ: %v vs %v", a, a2)
	}

	// The ledger identities: every lookup is a hit or a miss, and
	// misses equal the number of distinct keys probed.
	if u[1]+u[2] != u[0] {
		t.Errorf("unicast hits+misses = %d+%d != lookups %d", u[1], u[2], u[0])
	}
	if want := int64(8); u[2] != want {
		t.Errorf("unicast misses = %d, want %d (one probe sequence per address)", u[2], want)
	}
	if a[1]+a[2] != a[0] {
		t.Errorf("anycast hits+misses = %d+%d != lookups %d", a[1], a[2], a[0])
	}
	if want := int64(4 * 4); a[2] != want {
		t.Errorf("anycast misses = %d, want %d (one per (vantage, addr))", a[2], want)
	}
}
