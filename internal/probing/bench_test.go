package probing

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/rng"
)

// benchAddrs picks a stable working set of addresses: hosts the
// annotate path would geolocate, drawn from several countries so the
// cache sees a realistic key mix.
func benchAddrs(tw *testWorld, anycast bool, n int) []netip.Addr {
	r := rng.New(7, "bench-addrs")
	countries := []string{"US", "DE", "BR", "JP", "NG", "FR", "IN", "UY"}
	var anycastProviders []*netsim.Provider
	for _, p := range tw.net.Providers {
		if p.Anycast {
			anycastProviders = append(anycastProviders, p)
		}
	}
	var out []netip.Addr
	for len(out) < n {
		c := countries[len(out)%len(countries)]
		if anycast {
			p := anycastProviders[len(out)%len(anycastProviders)]
			out = append(out, tw.net.ProviderHostFor(p, c, r).Addr)
		} else {
			out = append(out, tw.net.LocalHostFor(c, r).Addr)
		}
	}
	return out
}

// BenchmarkGeolocateUnicast measures the steady-state unicast path: a
// working set of addresses geolocated repeatedly, as the annotate stage
// does when many URLs share hosting. First calls probe; the rest must
// be cache reads.
func BenchmarkGeolocateUnicast(b *testing.B) {
	tw := setup(b)
	addrs := benchAddrs(tw, false, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := tw.prober.GeolocateUnicast(addrs[i%len(addrs)])
		if v.Method == "" {
			b.Fatal("empty verdict")
		}
	}
}

// BenchmarkGeolocateAnycast measures repeated anycast verification from
// a fixed vantage — the path every record behind a CDN address pays.
func BenchmarkGeolocateAnycast(b *testing.B) {
	tw := setup(b)
	addrs := benchAddrs(tw, true, 32)
	vantage := tw.w.MustCountry("US")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := tw.prober.GeolocateAnycast(vantage, addrs[i%len(addrs)])
		if v.Method == "" {
			b.Fatal("empty verdict")
		}
	}
}
