package probing

import (
	"testing"

	"repro/internal/dnssim"
	"repro/internal/geo/ipinfo"
	"repro/internal/geo/manycast"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/webgen"
	"repro/internal/world"
)

type testWorld struct {
	w      *world.Model
	net    *netsim.Net
	estate *webgen.Estate
	prober *Prober
	db     *ipinfo.DB
	mc     *manycast.Snapshot
}

func setup(t testing.TB) *testWorld {
	t.Helper()
	w := world.New()
	n := netsim.Build(w, 42)
	profiles := world.BuildProfiles(w, 42)
	e := webgen.Build(w, n, profiles, 42, 0.02)
	z := dnssim.Build(e, n)
	db := ipinfo.New()
	mc := manycast.New()
	for _, h := range n.HostList {
		if h.Anycast {
			db.Put(h.Addr, ipinfo.Entry{Country: h.Provider.Home})
			mc.Mark(h.Addr)
		} else {
			db.Put(h.Addr, ipinfo.Entry{Country: h.Country})
		}
	}
	return &testWorld{w: w, net: n, estate: e, db: db, mc: mc,
		prober: New(n, w, z, db, mc)}
}

func TestThresholdFloorAndScaling(t *testing.T) {
	w := world.New()
	sg, us := w.MustCountry("SG"), w.MustCountry("US")
	if Threshold(sg) < 3 {
		t.Fatalf("city-state threshold %.2f below the floor", Threshold(sg))
	}
	if Threshold(us) <= Threshold(sg) {
		t.Fatal("continental threshold must exceed the city-state one")
	}
}

func TestGeolocateUnicastConfirmsTruth(t *testing.T) {
	tw := setup(t)
	r := rng.New(1, "probe-test")
	confirmed, tried := 0, 0
	for i := 0; i < 60; i++ {
		h := tw.net.LocalHostFor("DE", r)
		v := tw.prober.GeolocateUnicast(h.Addr)
		tried++
		switch v.Method {
		case MethodAP, MethodMG:
			confirmed++
			if v.Country != "DE" {
				t.Fatalf("host in DE geolocated to %s via %s", v.Country, v.Method)
			}
		}
	}
	if confirmed < tried/2 {
		t.Fatalf("only %d/%d German hosts confirmed", confirmed, tried)
	}
}

func TestGeolocateUnicastCached(t *testing.T) {
	tw := setup(t)
	r := rng.New(2, "cache")
	h := tw.net.LocalHostFor("FR", r)
	a := tw.prober.GeolocateUnicast(h.Addr)
	b := tw.prober.GeolocateUnicast(h.Addr)
	if a != b {
		t.Fatal("unicast verdicts must be cached and stable")
	}
}

func TestWrongIPInfoClaimDetected(t *testing.T) {
	tw := setup(t)
	r := rng.New(3, "wrong")
	// Poison the database: a German host claimed to be in Japan.
	var poisoned bool
	for i := 0; i < 100; i++ {
		h := tw.net.LocalHostFor("DE", r)
		tw.db.Put(h.Addr, ipinfo.Entry{Country: "JP"})
		v := tw.prober.GeolocateUnicast(h.Addr)
		// The verdict must never blindly adopt the wrong claim: either
		// the conflict is excluded, the multistage pipeline fixes it,
		// or the target is simply unresolvable.
		if v.Method == MethodAP && v.Country == "JP" {
			t.Fatalf("active probing confirmed a wrong country: %+v", v)
		}
		if v.Method == MethodMG && v.Country == "JP" {
			t.Fatalf("multistage confirmed a wrong country: %+v", v)
		}
		poisoned = true
	}
	if !poisoned {
		t.Skip("no hosts sampled")
	}
}

func TestAnycastInCountryConfirmed(t *testing.T) {
	tw := setup(t)
	r := rng.New(4, "anycast")
	cf := tw.net.Provider("cloudflare")
	// Find a country with in-country presence and one without.
	var with, without string
	for _, c := range tw.w.Panel() {
		if tw.net.HasAnycastPresence("cloudflare", c.Code) {
			if with == "" {
				with = c.Code
			}
		} else if without == "" {
			without = c.Code
		}
	}
	if with == "" || without == "" {
		t.Skip("presence map degenerate")
	}
	h := tw.net.ProviderHostFor(cf, with, r)
	v := tw.prober.GeolocateAnycast(tw.w.MustCountry(with), h.Addr)
	if v.Method != MethodAP || v.Country != with {
		t.Fatalf("in-country anycast not confirmed: %+v", v)
	}
	// Probed from countries without presence the address must usually
	// fail the latency threshold and be excluded; confirmations are
	// only legitimate when a neighbouring site answers inside the
	// (road-distance-derived) threshold, a known limitation of
	// latency-based geolocation the paper inherits too.
	excluded := 0
	for _, c := range tw.w.Panel() {
		if tw.net.HasAnycastPresence("cloudflare", c.Code) {
			continue
		}
		v2 := tw.prober.GeolocateAnycast(c, h.Addr)
		switch v2.Method {
		case MethodAP:
			if v2.MinRTT > Threshold(c) {
				t.Fatalf("confirmed %s beyond its threshold: %+v", c.Code, v2)
			}
		default:
			excluded++
		}
	}
	if excluded == 0 {
		t.Fatal("no out-of-presence probes were excluded; the anycast verification does nothing")
	}
	_ = without
}

func TestHOIHOPatterns(t *testing.T) {
	w := world.New()
	cases := map[string]string{
		"r01.dec1.de.de-host-1.net":           "DE",
		"edge-1.lhr.gb.somenet.net":           "GB",
		"ae-1.r20.parsfr01.fr.bb.gin.ntt.net": "FR",
		"unassigned-12-34.x-host.net":         "",
		"":                                    "",
		"r01.zzc1.zz.nowhere.net":             "", // unknown country code
		"plain-hostname":                      "",
	}
	for ptr, want := range cases {
		if got := HOIHO(w, ptr); got != want {
			t.Errorf("HOIHO(%q) = %q, want %q", ptr, got, want)
		}
	}
}

func TestHOIHOCityCodeFallback(t *testing.T) {
	w := world.New()
	if got := HOIHO(w, "srv.plc1.internal.example.net"); got != "PL" {
		t.Errorf("city-code hint = %q, want PL", got)
	}
}

func TestStatsFractions(t *testing.T) {
	var s Stats
	s.Observe(Verdict{Method: MethodAP})
	s.Observe(Verdict{Method: MethodAP})
	s.Observe(Verdict{Method: MethodMG})
	s.Observe(Verdict{Method: MethodUnresolved})
	s.Observe(Verdict{Method: MethodExcluded})
	s.Observe(Verdict{Anycast: true, Method: MethodAP})
	s.Observe(Verdict{Anycast: true, Method: MethodUnresolved})
	uniAP, uniMG, uniUR, anyAP, anyUR := s.Fractions()
	if uniAP != 0.4 || uniMG != 0.2 || uniUR != 0.4 {
		t.Fatalf("unicast fractions = %.2f %.2f %.2f", uniAP, uniMG, uniUR)
	}
	if anyAP != 0.5 || anyUR != 0.5 {
		t.Fatalf("anycast fractions = %.2f %.2f", anyAP, anyUR)
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	a, b, c, d, e := s.Fractions()
	if a != 0 || b != 0 || c != 0 || d != 0 || e != 0 {
		t.Fatal("empty stats must be all zeros")
	}
}
