// Package probing implements the server-geolocation methodology of
// §3.5: per-country latency thresholds derived from road distances,
// RIPE-Atlas-style probe measurements (five probes, minimum of three
// pings), anycast verification, and the multistage fallback pipeline
// (HOIHO PTR hints, the RIPE IPmap cache, single-radius probing) for
// unicast addresses that active probing cannot confirm.
package probing

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/dnssim"
	"repro/internal/geo/ipinfo"
	"repro/internal/geo/manycast"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/world"
)

// Method records how an address's location was validated.
type Method string

// Validation outcomes (Table 4's columns).
const (
	MethodAP         Method = "AP" // active probing confirmed
	MethodMG         Method = "MG" // multistage geolocation confirmed
	MethodUnresolved Method = "UR" // could not be validated
	MethodExcluded   Method = "EX" // conflicting evidence; dropped from analysis
)

// Verdict is the final geolocation decision for one address.
type Verdict struct {
	Addr          netip.Addr
	Anycast       bool
	Country       string // validated country; empty for UR/EX
	Method        Method
	IPInfoCountry string
	MinRTT        float64 // milliseconds, when a probe answered
}

// Prober runs the geolocation pipeline against the simulated network.
type Prober struct {
	Net     *netsim.Net
	World   *world.Model
	Zones   *dnssim.Zones
	IPInfo  *ipinfo.DB
	Anycast *manycast.Snapshot

	// GlobalThresholdMS, when positive, replaces the per-country
	// road-distance thresholds with a single global value — the
	// ablation the paper argues against ("rather than settling for a
	// single global threshold", §3.5).
	GlobalThresholdMS float64

	// UnicastMetrics and AnycastMetrics, when set, receive each
	// cache's accounting. Lookup/hit/miss/negative counts are
	// deterministic (the address multiset is a pure function of the
	// seed); only coalesce counts depend on worker interleaving.
	UnicastMetrics *metrics.CacheMetrics
	AnycastMetrics *metrics.CacheMetrics

	// Both caches are single-flight: the first goroutine to miss runs
	// the probe sequence inside the entry's once while concurrent
	// callers for the same key block on it instead of duplicating the
	// measurement. Unicast verdicts are vantage-independent; anycast
	// verification depends on the vantage, so that cache keys on both.
	mu      sync.Mutex
	unicast map[netip.Addr]*verdictEntry
	anycast map[anycastKey]*verdictEntry
}

// verdictEntry is one cache key's outcome; once guarantees a single
// probe sequence per key across all workers. done flips after the
// verdict lands, so a later lookup can tell a settled entry from one
// still in flight (a coalesce).
type verdictEntry struct {
	once sync.Once
	done atomic.Bool
	v    Verdict
}

type anycastKey struct {
	vantage string
	addr    netip.Addr
}

// New returns a Prober.
func New(n *netsim.Net, w *world.Model, z *dnssim.Zones, db *ipinfo.DB, mc *manycast.Snapshot) *Prober {
	return &Prober{Net: n, World: w, Zones: z, IPInfo: db, Anycast: mc,
		unicast: make(map[netip.Addr]*verdictEntry),
		anycast: make(map[anycastKey]*verdictEntry)}
}

// Threshold returns the per-country latency threshold: the intercity
// road distance between the two furthest cities converted to RTT, with
// a floor so that city-state last-mile jitter does not reject genuine
// domestic servers.
func Threshold(c *world.Country) float64 {
	t := c.RoadThresholdMS() + 1.5
	if t < 3 {
		t = 3
	}
	return t
}

// probeCount and pingsPerProbe mirror §3.5: five RIPE Atlas probes in
// the country, three pings each, keep the minimum.
const (
	probeCount    = 5
	pingsPerProbe = 3
)

// thresholdFor applies the ablation override when configured.
func (p *Prober) thresholdFor(c *world.Country) float64 {
	if p.GlobalThresholdMS > 0 {
		return p.GlobalThresholdMS
	}
	return Threshold(c)
}

// minFromProbes returns the minimum RTT over all probes in the
// country, and whether anything answered. The attempt fan 0..14 is
// exactly what the former nested probe×ping loop produced, so the
// netsim fast path (one geometry read, fifteen jitter folds) returns
// bit-identical minima. Responsiveness is all-or-nothing per
// (vantage, addr) in the simulation, matching the old early return.
func (p *Prober) minFromProbes(country string, addr netip.Addr) (float64, bool) {
	return p.Net.MinPingFrom(country, addr, probeCount*pingsPerProbe, 0)
}

// negative reports whether a verdict failed to validate the address —
// the cache's analogue of a failed resolution (UR and EX verdicts are
// themselves deterministic, so so is this count).
func negative(v Verdict) bool {
	return v.Method == MethodUnresolved || v.Method == MethodExcluded
}

// GeolocateAnycast verifies whether an anycast address has a site
// inside the vantage country (§3.5 Step #3 for anycast): latency from
// in-country probes below the country threshold means yes; anything
// else excludes the address from the analysis. Verdicts are pure
// functions of the seeded world, so they are cached per
// (vantage, addr) with single-flight semantics.
func (p *Prober) GeolocateAnycast(vantage *world.Country, addr netip.Addr) Verdict {
	key := anycastKey{vantage: vantage.Code, addr: addr}
	p.mu.Lock()
	e := p.anycast[key]
	created := e == nil
	if created {
		e = &verdictEntry{}
		p.anycast[key] = e
	}
	p.mu.Unlock()
	p.record(p.AnycastMetrics, e, created)
	e.once.Do(func() {
		e.v = p.geolocateAnycastUncached(vantage, addr)
		if negative(e.v) {
			if m := p.AnycastMetrics; m != nil {
				m.NegativeEntries.Inc()
			}
		}
		e.done.Store(true)
	})
	if !created && negative(e.v) {
		if m := p.AnycastMetrics; m != nil {
			m.NegativeHits.Inc()
		}
	}
	return e.v
}

func (p *Prober) geolocateAnycastUncached(vantage *world.Country, addr netip.Addr) Verdict {
	v := Verdict{Addr: addr, Anycast: true}
	rtt, ok := p.minFromProbes(vantage.Code, addr)
	if !ok {
		v.Method = MethodUnresolved
		return v
	}
	v.MinRTT = rtt
	if rtt <= p.thresholdFor(vantage) {
		v.Method = MethodAP
		v.Country = vantage.Code
		return v
	}
	v.Method = MethodUnresolved
	return v
}

// SeedUnicast installs a settled unicast verdict without probing and
// without touching the cache metrics — how a resumed run replays the
// verdicts its checkpointed countries already paid for (their cache
// accounting arrives separately, via the stored deterministic deltas).
// An existing entry is left untouched, so seeding is idempotent.
func (p *Prober) SeedUnicast(addr netip.Addr, v Verdict) {
	p.mu.Lock()
	e := p.unicast[addr]
	if e == nil {
		e = &verdictEntry{}
		p.unicast[addr] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		e.v = v
		e.done.Store(true)
	})
}

// SeedAnycast installs a settled anycast verdict for one
// (vantage, addr) key; same contract as SeedUnicast.
func (p *Prober) SeedAnycast(vantage string, addr netip.Addr, v Verdict) {
	key := anycastKey{vantage: vantage, addr: addr}
	p.mu.Lock()
	e := p.anycast[key]
	if e == nil {
		e = &verdictEntry{}
		p.anycast[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		e.v = v
		e.done.Store(true)
	})
}

// record folds one cache lookup into cm's ledger. Coalesced counts the
// non-creating lookups that arrived while the probe sequence was still
// in flight — an interleaving artifact, reported on the runtime side.
func (p *Prober) record(cm *metrics.CacheMetrics, e *verdictEntry, created bool) {
	if cm == nil {
		return
	}
	cm.Lookups.Inc()
	if created {
		cm.Misses.Inc()
		return
	}
	cm.Hits.Inc()
	if !e.done.Load() {
		cm.Coalesced.Inc()
	}
}

// GeolocateUnicast validates a unicast address: IPInfo's claim is
// checked by active probing from the claimed country, then the
// multistage pipeline takes over, and conflicts with IPInfo are
// excluded (§3.5 Steps #1, #3, #4). Unicast verdicts are
// vantage-independent, so the cache keys on the address alone; the
// single-flight entry guarantees one probe sequence — including the
// panel-wide singleRadius sweep — per address across all workers.
func (p *Prober) GeolocateUnicast(addr netip.Addr) Verdict {
	p.mu.Lock()
	e := p.unicast[addr]
	created := e == nil
	if created {
		e = &verdictEntry{}
		p.unicast[addr] = e
	}
	p.mu.Unlock()
	p.record(p.UnicastMetrics, e, created)
	e.once.Do(func() {
		e.v = p.geolocateUnicastUncached(addr)
		if negative(e.v) {
			if m := p.UnicastMetrics; m != nil {
				m.NegativeEntries.Inc()
			}
		}
		e.done.Store(true)
	})
	if !created && negative(e.v) {
		if m := p.UnicastMetrics; m != nil {
			m.NegativeHits.Inc()
		}
	}
	return e.v
}

func (p *Prober) geolocateUnicastUncached(addr netip.Addr) Verdict {
	v := Verdict{Addr: addr}
	claimed := ""
	if e, ok := p.IPInfo.Lookup(addr); ok {
		claimed = e.Country
	}
	v.IPInfoCountry = claimed

	// Step #3: active probing from the claimed country.
	if c := p.World.Country(claimed); c != nil {
		if rtt, ok := p.minFromProbes(claimed, addr); ok {
			v.MinRTT = rtt
			if rtt <= p.thresholdFor(c) {
				v.Method = MethodAP
				v.Country = claimed
				return v
			}
		}
	}

	// Step #4: multistage geolocation.
	if mg := p.multistage(addr); mg != "" {
		if claimed != "" && mg != claimed {
			// Conflicting evidence: adopt the conservative choice and
			// drop the address (the paper excludes 84 such instances).
			v.Method = MethodExcluded
			return v
		}
		v.Method = MethodMG
		v.Country = mg
		return v
	}
	v.Method = MethodUnresolved
	return v
}

// multistage tries HOIHO PTR hints, then the RIPE IPmap cache, then
// single-radius probing.
func (p *Prober) multistage(addr netip.Addr) string {
	if ptr := p.Zones.PTR(addr); ptr != "" {
		if cc := HOIHO(p.World, ptr); cc != "" {
			return cc
		}
	}
	if h := p.Net.Host(addr); h != nil && h.InIPmap && !h.Anycast {
		// IPmap's cached crowd-sourced/latency results are accurate
		// when present.
		return h.Country
	}
	return p.singleRadius(addr)
}

// singleRadius pings the target from every panel country and accepts
// the location whose probes see the lowest RTT, provided that RTT is
// small enough to pin the address inside one country.
func (p *Prober) singleRadius(addr netip.Addr) string {
	bestCountry := ""
	best := -1.0
	for _, c := range p.World.Panel() {
		rtt, ok := p.minFromProbes(c.Code, addr)
		if !ok {
			return "" // unresponsive: no single-radius either
		}
		if best < 0 || rtt < best {
			best, bestCountry = rtt, c.Code
		}
	}
	if bestCountry == "" {
		return ""
	}
	if c := p.World.Country(bestCountry); c != nil && best <= p.thresholdFor(c) {
		return bestCountry
	}
	return ""
}

// Stats aggregates validation outcomes in the shape of Table 4.
type Stats struct {
	UnicastAP, UnicastMG, UnicastUR, UnicastEX int
	AnycastAP, AnycastUR                       int
}

// Observe folds a verdict into the stats.
func (s *Stats) Observe(v Verdict) {
	if v.Anycast {
		switch v.Method {
		case MethodAP:
			s.AnycastAP++
		default:
			s.AnycastUR++
		}
		return
	}
	switch v.Method {
	case MethodAP:
		s.UnicastAP++
	case MethodMG:
		s.UnicastMG++
	case MethodExcluded:
		s.UnicastEX++
	default:
		s.UnicastUR++
	}
}

// Fractions returns the Table 4 rows: unicast (AP, MG, UR) and anycast
// (AP, UR) shares. Excluded unicast addresses count toward UR, as the
// paper folds its 84 exclusions into the unresolved column.
func (s *Stats) Fractions() (uniAP, uniMG, uniUR, anyAP, anyUR float64) {
	uni := float64(s.UnicastAP + s.UnicastMG + s.UnicastUR + s.UnicastEX)
	if uni > 0 {
		uniAP = float64(s.UnicastAP) / uni
		uniMG = float64(s.UnicastMG) / uni
		uniUR = float64(s.UnicastUR+s.UnicastEX) / uni
	}
	anyc := float64(s.AnycastAP + s.AnycastUR)
	if anyc > 0 {
		anyAP = float64(s.AnycastAP) / anyc
		anyUR = float64(s.AnycastUR) / anyc
	}
	return
}
