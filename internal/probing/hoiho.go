package probing

import (
	"regexp"
	"strings"

	"repro/internal/world"
)

// hoihoPatterns extract geographic hints from PTR hostnames in the
// spirit of CAIDA's HOIHO (§3.5 Step #4): learned regexes that pull
// ISO country codes or city codes out of router and server reverse
// names, plus the paper's extra operator-specific rules (e.g. NTT).
var hoihoPatterns = []*regexp.Regexp{
	// r01.parc1.fr.asname.net — country code as a dedicated label.
	regexp.MustCompile(`^[a-z0-9-]+\.[a-z0-9-]+\.([a-z]{2})\.[a-z0-9.-]+\.net$`),
	// edge-12.lhr.uk.example.com — cc label anywhere before the 2LD.
	regexp.MustCompile(`\.([a-z]{2})\.[a-z0-9-]+\.(?:net|com)$`),
	// NTT-style: ae-1.r20.parsfr01.fr.bb.gin.ntt.net
	regexp.MustCompile(`\.([a-z]{2})\.bb\.gin\.ntt\.net$`),
}

// cityCodePattern matches the synthetic "<cc>c" capital city codes the
// world model embeds (standing in for IATA hints).
var cityCodePattern = regexp.MustCompile(`\.([a-z]{2})c\d*\.`)

// HOIHO maps a PTR name to a country code, or "" when the name carries
// no recognizable hint. Only hints that name a real country in the
// world model are accepted — random two-letter labels must not
// geolocate anything.
func HOIHO(w *world.Model, ptr string) string {
	ptr = strings.ToLower(strings.TrimSuffix(ptr, "."))
	if ptr == "" {
		return ""
	}
	for _, re := range hoihoPatterns {
		if m := re.FindStringSubmatch(ptr); m != nil {
			if cc := strings.ToUpper(m[1]); w.Country(cc) != nil {
				return cc
			}
		}
	}
	if m := cityCodePattern.FindStringSubmatch(ptr); m != nil {
		if cc := strings.ToUpper(m[1]); w.Country(cc) != nil {
			return cc
		}
	}
	return ""
}
