package dataset

import (
	"testing"

	"repro/internal/world"
)

func TestRecordPredicates(t *testing.T) {
	r := URLRecord{Country: "UY", RegCountry: "UY", ServeCountry: "UY"}
	if !r.Domestic() || !r.RegDomestic() {
		t.Fatal("domestic record misclassified")
	}
	r.ServeCountry = "US"
	if r.Domestic() {
		t.Fatal("foreign-served record called domestic")
	}
	r.ServeCountry = ""
	if r.Domestic() {
		t.Fatal("unresolved geolocation must not count as domestic")
	}
	r.RegCountry = ""
	if r.RegDomestic() {
		t.Fatal("missing registration must not count as domestic")
	}
}

func TestDatasetHelpers(t *testing.T) {
	ds := &Dataset{}
	ds.Records = append(ds.Records,
		URLRecord{URL: "https://a.uy/1", Country: "UY", Bytes: 10, Region: world.LAC},
		URLRecord{URL: "https://a.uy/2", Country: "UY", Bytes: 20, Region: world.LAC},
		URLRecord{URL: "https://b.de/1", Country: "DE", Bytes: 5, Region: world.ECA},
	)
	if got := ds.TotalBytes(); got != 35 {
		t.Fatalf("TotalBytes = %d", got)
	}
	codes := ds.CountriesWithRecords()
	if len(codes) != 2 || codes[0] != "DE" || codes[1] != "UY" {
		t.Fatalf("CountriesWithRecords = %v", codes)
	}
	by := ds.ByCountry()
	if len(by["UY"]) != 2 || len(by["DE"]) != 1 {
		t.Fatalf("ByCountry = %v", by)
	}
	// ByCountry returns pointers into Records, not copies.
	by["UY"][0].Bytes = 99
	if ds.Records[0].Bytes != 99 {
		t.Fatal("ByCountry must alias the records")
	}
}
