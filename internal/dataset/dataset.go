// Package dataset defines the record types the measurement pipeline
// produces and the analysis consumes: one annotated record per
// government URL (Table 2's fields), plus dataset-level statistics
// (Table 3, Table 8).
package dataset

import (
	"net/netip"
	"sort"

	"repro/internal/world"
)

// URLRecord is one fully annotated government URL.
type URLRecord struct {
	URL     string
	Host    string
	Country string // the government the URL belongs to
	Region  world.Region
	Bytes   int64
	Depth   int

	Method string // Table 1 classification method: tld / domain / san

	// Serving infrastructure (§3.4).
	IP         netip.Addr
	ASN        int
	Org        string
	RegCountry string // WHOIS country of registration
	GovAS      bool   // classified as government/SOE network

	// Geolocation (§3.5).
	Anycast      bool
	ServeCountry string // validated server country; "" when excluded
	GeoMethod    string // AP / MG / UR / EX

	// Category is the provider category assigned by the analysis. For
	// top-site records, CatGovtSOE stands for "Self-Hosting"
	// (Appendix D redefines the first category for popular sites).
	Category world.Category

	// TopsiteSelf marks top-site records the Appendix D CNAME/SAN
	// heuristic identified as self-hosted.
	TopsiteSelf bool

	// HTTPSValid reports whether the site's certificate would pass
	// browser validation (extension: Singanamalla et al., §9).
	HTTPSValid bool
}

// Domestic reports whether the URL is served from inside its own
// country (false when geolocation failed).
func (r *URLRecord) Domestic() bool {
	return r.ServeCountry != "" && r.ServeCountry == r.Country
}

// RegDomestic reports whether the serving organization is registered
// in the URL's country.
func (r *URLRecord) RegDomestic() bool {
	return r.RegCountry != "" && r.RegCountry == r.Country
}

// CountryStats is the per-country slice of Table 8, extended with the
// paper-style coverage accounting (Tables 3–4 report the harness's own
// failure statistics; a pipeline that silently drops failures cannot).
type CountryStats struct {
	Country      string
	Region       world.Region
	LandingURLs  int
	InternalURLs int
	Hostnames    int

	// Coverage accounting.
	Attempted  int            // URLs fetched during the crawl
	FailedURLs int            // fetches that classified as failures
	Failures   map[string]int // failure counts by taxonomy bucket (fetch.FailKind)
	Retries    int            // retry attempts the fetch stack spent
	// VantageAttempts counts VPN connections used to obtain a
	// validated egress (1 = the first egress validated).
	VantageAttempts int

	// Failed marks a country whose collection failed wholesale (no
	// validated vantage within the re-connection bound); its records
	// are absent and FailureReason says why. The study still completes
	// with a partial dataset.
	Failed        bool
	FailureReason string
}

// AddFailure counts one failure of the given kind.
func (s *CountryStats) AddFailure(kind string) {
	if s.Failures == nil {
		s.Failures = map[string]int{}
	}
	s.Failures[kind]++
	s.FailedURLs++
}

// Dataset is the complete study output.
type Dataset struct {
	Records  []URLRecord // government URLs (post-filter)
	Topsites []URLRecord // Appendix D baseline records (14 countries)

	PerCountry map[string]*CountryStats

	// Totals (Table 3).
	TotalLanding    int
	TotalInternal   int
	TotalUniqueURLs int
	TotalHostnames  int
	ASes            int
	GovASes         int
	UniqueIPs       int
	AnycastIPs      int
	ServerCountries int

	// Method yields (Table 1 discussion in §4.2).
	MethodTLD, MethodDomain, MethodSAN int
	Discarded                          int

	// Coverage totals, aggregated from PerCountry: how much of the
	// attempted collection actually landed, and why the rest did not.
	TotalAttempted  int
	TotalFailedURLs int
	FailuresByKind  map[string]int
	TotalRetries    int
	FailedCountries []string // sorted codes of countries that failed wholesale

	Scale float64
	Seed  int64
}

// SortRecords orders records deterministically (by country, then URL).
// sort.Slice, not slices.SortFunc: the generic sort copies whole
// records around while the reflect-based one swaps in place, and at
// ~230 bytes per record the copies dominate.
func SortRecords(recs []URLRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Country != recs[j].Country {
			return recs[i].Country < recs[j].Country
		}
		return recs[i].URL < recs[j].URL
	})
}

// FillTotals computes the Table 3 aggregate statistics from the
// records and per-country stats, and sorts both record slices into
// their canonical order. Call it once, after assembly: the totals add
// onto whatever is already present.
func (d *Dataset) FillTotals() {
	hosts := map[string]bool{}
	ips := map[netip.Addr]bool{}
	anycastIPs := map[netip.Addr]bool{}
	asns := map[int]bool{}
	govASNs := map[int]bool{}
	serveCountries := map[string]bool{}
	urls := map[string]bool{}

	for i := range d.Records {
		r := &d.Records[i]
		urls[r.URL] = true
		hosts[r.Host] = true
		ips[r.IP] = true
		asns[r.ASN] = true
		if r.GovAS {
			govASNs[r.ASN] = true
		}
		if r.Anycast {
			anycastIPs[r.IP] = true
		}
		if r.ServeCountry != "" {
			serveCountries[r.ServeCountry] = true
		}
	}
	// Reset the summed fields so FillTotals is idempotent — it runs
	// once after a live pipeline and once after a load, and a caller
	// doing both (load, then fill again) must not double-count.
	d.TotalLanding, d.TotalInternal = 0, 0
	d.TotalAttempted, d.TotalFailedURLs, d.TotalRetries = 0, 0, 0
	d.FailuresByKind = nil
	d.FailedCountries = nil

	//lint:ignore map-order -- the per-country sums commute and FailedCountries is sorted below
	for _, st := range d.PerCountry {
		d.TotalLanding += st.LandingURLs
		d.TotalInternal += st.InternalURLs
		d.TotalAttempted += st.Attempted
		d.TotalFailedURLs += st.FailedURLs
		d.TotalRetries += st.Retries
		//lint:ignore map-order -- per-kind sums commute
		for kind, n := range st.Failures {
			if d.FailuresByKind == nil {
				d.FailuresByKind = map[string]int{}
			}
			d.FailuresByKind[kind] += n
		}
		if st.Failed {
			d.FailedCountries = append(d.FailedCountries, st.Country)
		}
	}
	sort.Strings(d.FailedCountries)
	d.TotalUniqueURLs = len(urls)
	d.TotalHostnames = len(hosts)
	d.UniqueIPs = len(ips)
	d.AnycastIPs = len(anycastIPs)
	d.ASes = len(asns)
	d.GovASes = len(govASNs)
	d.ServerCountries = len(serveCountries)

	SortRecords(d.Records)
	SortRecords(d.Topsites)
}

// CountriesWithRecords returns the sorted country codes present in the
// government records.
func (d *Dataset) CountriesWithRecords() []string {
	set := map[string]bool{}
	for i := range d.Records {
		set[d.Records[i].Country] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ByCountry groups record indexes per country.
func (d *Dataset) ByCountry() map[string][]*URLRecord {
	out := make(map[string][]*URLRecord)
	for i := range d.Records {
		r := &d.Records[i]
		out[r.Country] = append(out[r.Country], r)
	}
	return out
}

// TotalBytes sums the byte volume of the government records.
func (d *Dataset) TotalBytes() int64 {
	var total int64
	for i := range d.Records {
		total += d.Records[i].Bytes
	}
	return total
}
