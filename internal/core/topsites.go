package core

import (
	"context"
	"fmt"

	"repro/internal/crawler"
	"repro/internal/dataset"
	"repro/internal/sched"
	"repro/internal/topsites"
	"repro/internal/vantage"
	"repro/internal/webgen"
)

// runTopsites collects the Appendix D baseline: for the 14 comparison
// countries (Table 6) it crawls each popular site one level beyond the
// landing page, identifies self-hosting via the CNAME/SAN heuristic,
// and annotates serving infrastructure exactly like the government
// pipeline — through the same shared scheduler and resolution cache.
func (env *Env) runTopsites(ctx context.Context, ds *dataset.Dataset, pool *sched.Pool) error {
	subset := env.topsiteCountrySet()
	for _, code := range webgen.ComparisonCountries {
		if !subset[code] {
			continue
		}
		c := env.World.MustCountry(code)
		sites := env.Estate.Topsites[code]
		if len(sites) == 0 {
			continue
		}
		vp := vantage.Connect(c, env.Estate, env.Net, env.Config.Seed)

		var landings []string
		for _, s := range sites {
			landings = append(landings, s.Landing...)
		}
		cr := &crawler.Crawler{
			// The baseline rides the same fault/retry stack as the
			// government crawls, so chaos runs degrade it identically.
			// Topsites are never checkpointed, so their accounting goes
			// straight to the study registry, not a fork.
			Fetcher: env.fetchStack(vp.Fetcher, pool, env.fetchMetrics(), env.faultMetrics()),
			Config: crawler.Config{
				MaxDepth: 1, // §5.1: top-site scraping stops one level down
				Country:  code,
				VPN:      vp.VPN,
			},
			Pool:    pool,
			Metrics: env.crawlMetrics(),
		}
		archive, err := cr.Crawl(ctx, landings)
		if err != nil {
			return fmt.Errorf("core: topsites %s: %w", code, err)
		}

		for _, entry := range archive.Entries {
			if entry.Status != 200 || entry.Failure != "" {
				continue
			}
			site := env.Estate.Site(entry.Host)
			if site == nil || site.Kind != webgen.KindTopsite {
				continue
			}
			rec, err := env.annotate(c, entry, env.pipelineMetrics())
			if err != nil {
				continue
			}
			cname, _ := env.Zones.CNAMEOf(entry.Host)
			var sans []string
			if cert := env.Estate.Certs.Get(entry.Host); cert != nil {
				sans = cert.SANs
			}
			rec.TopsiteSelf = topsites.SelfHosted(entry.Host, cname, sans)
			ds.Topsites = append(ds.Topsites, rec)
		}
	}
	return nil
}

// topsiteCountrySet intersects the comparison subset with the
// configured country restriction.
func (env *Env) topsiteCountrySet() map[string]bool {
	set := map[string]bool{}
	if len(env.Config.Countries) == 0 {
		for _, code := range webgen.ComparisonCountries {
			set[code] = true
		}
		return set
	}
	configured := map[string]bool{}
	for _, code := range env.Config.Countries {
		configured[code] = true
	}
	for _, code := range webgen.ComparisonCountries {
		if configured[code] {
			set[code] = true
		}
	}
	return set
}
