package core

import (
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/whois"
)

func TestRescacheSingleFlight(t *testing.T) {
	cm := &metrics.CacheMetrics{}
	c := newRescache(cm)
	var calls atomic.Int64
	release := make(chan struct{})
	fn := func(host string) (netip.Addr, whois.Record, error) {
		calls.Add(1)
		<-release
		return netip.MustParseAddr("192.0.2.1"), whois.Record{ASN: 64500}, nil
	}

	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ip, rec, err := c.resolve("gov.example", fn)
			if err != nil || ip != netip.MustParseAddr("192.0.2.1") || rec.ASN != 64500 {
				t.Errorf("resolve = %v, %+v, %v", ip, rec, err)
			}
		}()
	}
	// Hold the single in-flight resolution until every other worker has
	// arrived and registered as a coalesced hit, then let it finish.
	deadline := time.Now().Add(5 * time.Second)
	for cm.Coalesced.Load() < workers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers coalesced", cm.Coalesced.Load(), workers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("resolver ran %d times, want 1 (single flight)", got)
	}
	if cm.Lookups.Load() != workers || cm.Misses.Load() != 1 || cm.Hits.Load() != workers-1 {
		t.Errorf("lookups/misses/hits = %d/%d/%d, want %d/1/%d",
			cm.Lookups.Load(), cm.Misses.Load(), cm.Hits.Load(), workers, workers-1)
	}
	if got := c.size(); got != 1 {
		t.Errorf("cache size = %d, want 1", got)
	}

	// A lookup after the entry settles is a plain hit, not a coalesce.
	c.resolve("gov.example", fn)
	if got := cm.Coalesced.Load(); got != workers-1 {
		t.Errorf("Coalesced = %d after settled hit, want %d", got, workers-1)
	}
	if got := cm.Hits.Load(); got != workers {
		t.Errorf("Hits = %d after settled hit, want %d", got, workers)
	}
}

func TestRescacheNegativeCaching(t *testing.T) {
	cm := &metrics.CacheMetrics{}
	c := newRescache(cm)
	calls := 0
	boom := errors.New("NXDOMAIN")
	fn := func(host string) (netip.Addr, whois.Record, error) {
		calls++
		return netip.Addr{}, whois.Record{}, boom
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.resolve("bad.example", fn); !errors.Is(err, boom) {
			t.Fatalf("lookup %d: err = %v, want cached failure", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("resolver ran %d times, want 1 (negative entry cached)", calls)
	}
	if cm.NegativeEntries.Load() != 1 {
		t.Errorf("NegativeEntries = %d, want 1", cm.NegativeEntries.Load())
	}
	if cm.NegativeHits.Load() != 2 {
		t.Errorf("NegativeHits = %d, want 2", cm.NegativeHits.Load())
	}
	if cm.Lookups.Load() != 3 || cm.Misses.Load() != 1 || cm.Hits.Load() != 2 {
		t.Errorf("lookups/misses/hits = %d/%d/%d, want 3/1/2",
			cm.Lookups.Load(), cm.Misses.Load(), cm.Hits.Load())
	}
}

// TestRescacheNilMetrics: the cache must work identically with no
// registry attached — the disabled-metrics configuration.
func TestRescacheNilMetrics(t *testing.T) {
	c := newRescache(nil)
	fn := func(host string) (netip.Addr, whois.Record, error) {
		return netip.MustParseAddr("192.0.2.9"), whois.Record{}, nil
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.resolve("ok.example", fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.resolve("bad.example", func(string) (netip.Addr, whois.Record, error) {
		return netip.Addr{}, whois.Record{}, errors.New("nope")
	}); err == nil {
		t.Fatal("negative entry lost without metrics")
	}
	if got := c.size(); got != 2 {
		t.Errorf("size = %d, want 2", got)
	}
}

// TestFaultyResolveInjectionLedger: each injected SERVFAIL lands in the
// fault ledger once per attempt it blocked.
func TestFaultyResolveInjectionLedger(t *testing.T) {
	plan := faults.NewPlan(7, faults.Profile{DNSServfail: 1.0})
	fm := &metrics.FaultMetrics{}
	inner := func(host string) (netip.Addr, whois.Record, error) {
		return netip.MustParseAddr("192.0.2.2"), whois.Record{}, nil
	}
	wrapped := faultyResolve(plan, fm, inner)
	if _, _, err := wrapped("always.example"); err == nil {
		t.Fatal("servfail=1.0 resolved anyway")
	}
	if got := fm.Injections.Load(string(faults.KindServfail)); got != resolveAttempts {
		t.Errorf("servfail injections = %d, want %d (one per attempt)", got, resolveAttempts)
	}
}
