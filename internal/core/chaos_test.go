package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/metrics"
)

// chaosConfig is the shared base for the chaos suite: a small country
// subset under the aggressive profile — double-digit fault rates on
// every axis, the worst the paper's harness met on the live web.
func chaosConfig() Config {
	return Config{
		Seed:         42,
		Scale:        0.02,
		Countries:    []string{"US", "UY", "NG"},
		FaultProfile: "aggressive",
		SkipTopsites: true,
	}
}

func exportBytes(t *testing.T, ds *dataset.Dataset) ([]byte, []byte) {
	t.Helper()
	var jsonl, csv bytes.Buffer
	if err := export.WriteJSONL(&jsonl, ds); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteCSV(&csv, ds); err != nil {
		t.Fatal(err)
	}
	return jsonl.Bytes(), csv.Bytes()
}

// TestChaosDeterministicAcrossConcurrency is the headline guarantee:
// the same (seed, fault seed, profile) must export byte-identical
// JSONL and CSV — fault plan, retries, failure taxonomy and all — no
// matter how the scheduler interleaves the run.
func TestChaosDeterministicAcrossConcurrency(t *testing.T) {
	shapes := []struct{ country, fetch int }{
		{1, 1},
		{2, 4},
		{3, 16},
	}
	var refJSONL, refCSV []byte
	for _, sh := range shapes {
		cfg := chaosConfig()
		cfg.CountryConcurrency = sh.country
		cfg.FetchConcurrency = sh.fetch
		ds, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("concurrency %+v: %v", sh, err)
		}
		jsonl, csv := exportBytes(t, ds)
		if refJSONL == nil {
			refJSONL, refCSV = jsonl, csv
			continue
		}
		if !bytes.Equal(refJSONL, jsonl) {
			t.Errorf("JSONL diverged at concurrency %+v", sh)
		}
		if !bytes.Equal(refCSV, csv) {
			t.Errorf("CSV diverged at concurrency %+v", sh)
		}
	}
}

// TestChaosFaultSeedIndependent: changing only the fault seed replays
// the same study under different faults — output must change (the
// faults moved) while the clean-run baseline is unaffected by fault
// seed at profile off.
func TestChaosFaultSeedIndependent(t *testing.T) {
	a := chaosConfig()
	b := chaosConfig()
	b.FaultSeed = 99
	dsA, err := Run(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	dsB, err := Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := exportBytes(t, dsA)
	jb, _ := exportBytes(t, dsB)
	if bytes.Equal(ja, jb) {
		t.Error("fault seeds 42 and 99 produced identical chaos runs")
	}

	clean := chaosConfig()
	clean.FaultProfile = "off"
	clean.FaultSeed = 7
	clean2 := chaosConfig()
	clean2.FaultProfile = "off"
	clean2.FaultSeed = 1234
	c1, err := Run(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Run(context.Background(), clean2)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := exportBytes(t, c1)
	j2, _ := exportBytes(t, c2)
	if !bytes.Equal(j1, j2) {
		t.Error("fault seed leaked into a fault-free run")
	}
}

// TestChaosRunCompletesWithTaxonomy: under aggressive faults the
// pipeline must finish and account for every loss in the per-country
// failure taxonomy instead of aborting.
func TestChaosRunCompletesWithTaxonomy(t *testing.T) {
	ds, err := Run(context.Background(), chaosConfig())
	if err != nil {
		t.Fatalf("aggressive-profile run aborted: %v", err)
	}
	if ds.TotalFailedURLs == 0 {
		t.Fatal("aggressive profile produced zero failures")
	}
	if ds.TotalRetries == 0 {
		t.Error("no retries recorded under a 10%% timeout rate")
	}
	known := map[string]bool{
		"dns": true, "timeout": true, "reset": true,
		"geo-blocked": true, "5xx": true, "truncated": true, "other": true,
	}
	for kind := range ds.FailuresByKind {
		if !known[kind] {
			t.Errorf("unknown failure kind %q in taxonomy", kind)
		}
	}
	// Collection still produced data for the countries whose vantage
	// validated.
	if len(ds.Records) == 0 {
		t.Fatal("no records survived the chaos run")
	}
	for code, st := range ds.PerCountry {
		if st.Failed {
			continue
		}
		if st.Attempted < st.LandingURLs {
			t.Errorf("%s: attempted %d < %d landings — entries lost", code, st.Attempted, st.LandingURLs)
		}
		if st.FailedURLs > st.Attempted {
			t.Errorf("%s: %d failures out of %d attempts", code, st.FailedURLs, st.Attempted)
		}
		sum := 0
		for _, n := range st.Failures {
			sum += n
		}
		if sum != st.FailedURLs {
			t.Errorf("%s: taxonomy sums to %d, FailedURLs is %d", code, sum, st.FailedURLs)
		}
	}
}

// TestChaosStormTaxonomyBreadth: retries heal most aggressive-profile
// faults (that is the point of the Retrier), so a storm profile —
// rates high enough that three attempts routinely all fault — is what
// populates several taxonomy buckets at once.
func TestChaosStormTaxonomyBreadth(t *testing.T) {
	cfg := chaosConfig()
	cfg.FaultProfile = "timeout=0.5,reset=0.4,5xx=0.45,truncate=0.4,dead=0.05,servfail=0.5"
	ds, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("fault storm aborted the run: %v", err)
	}
	if len(ds.FailuresByKind) < 3 {
		t.Errorf("storm taxonomy too thin: %v", ds.FailuresByKind)
	}
	if ds.TotalFailedURLs == 0 || ds.TotalFailedURLs > ds.TotalAttempted {
		t.Errorf("failed %d of %d attempted", ds.TotalFailedURLs, ds.TotalAttempted)
	}
}

// TestChaosNoLostOrDuplicatedRecords: graceful degradation must not
// mint duplicate records or leak a record for a URL that also counted
// as a failure.
func TestChaosNoLostOrDuplicatedRecords(t *testing.T) {
	ds, err := Run(context.Background(), chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	perCountry := map[string]int{}
	for i := range ds.Records {
		r := &ds.Records[i]
		key := r.Country + "|" + r.URL
		if seen[key] {
			t.Fatalf("duplicate record %s", key)
		}
		seen[key] = true
		perCountry[r.Country]++
	}
	for code, st := range ds.PerCountry {
		if st.Failed && perCountry[code] > 0 {
			t.Errorf("%s declared failed but has %d records", code, perCountry[code])
		}
		if n := perCountry[code]; n > st.Attempted-st.FailedURLs {
			t.Errorf("%s: %d records exceed %d usable fetches — a failure also became a record",
				code, n, st.Attempted-st.FailedURLs)
		}
	}
}

// TestChaosWhollyFailedCountry: flap=1.0 makes every egress fail
// validation; the run must complete with the countries marked failed
// (partial dataset + failure summary), not abort.
func TestChaosWhollyFailedCountry(t *testing.T) {
	cfg := chaosConfig()
	cfg.FaultProfile = "flap=1.0"
	ds, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run aborted instead of degrading: %v", err)
	}
	if len(ds.Records) != 0 {
		t.Errorf("%d records from countries with no valid vantage", len(ds.Records))
	}
	if len(ds.FailedCountries) != 3 {
		t.Fatalf("FailedCountries = %v, want all 3", ds.FailedCountries)
	}
	for _, code := range cfg.Countries {
		st := ds.PerCountry[code]
		if st == nil || !st.Failed {
			t.Fatalf("%s missing Failed stats entry: %+v", code, st)
		}
		if st.FailureReason == "" {
			t.Errorf("%s has no failure reason", code)
		}
		if st.VantageAttempts != maxVantageAttempts {
			t.Errorf("%s used %d vantage attempts, want the full %d", code, st.VantageAttempts, maxVantageAttempts)
		}
	}
}

// TestChaosEgressFlapRecovery: at a mid flap rate at least one country
// needs more than one vantage attempt, and every non-failed country
// recovered within the bounded re-connection loop.
func TestChaosEgressFlapRecovery(t *testing.T) {
	cfg := chaosConfig()
	cfg.FaultProfile = "flap=0.5"
	ds, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	retried := false
	for code, st := range ds.PerCountry {
		if st.VantageAttempts < 1 || st.VantageAttempts > maxVantageAttempts {
			t.Errorf("%s: vantage attempts %d out of range", code, st.VantageAttempts)
		}
		if st.VantageAttempts > 1 {
			retried = true
		}
		if !st.Failed && len(ds.PerCountry) > 0 && st.LandingURLs > 0 && st.Attempted == 0 {
			t.Errorf("%s recovered its vantage but crawled nothing", code)
		}
	}
	if !retried {
		t.Error("flap=0.5 never forced a vantage re-connection across 3 countries")
	}
}

// TestChaosPromptCancellation: cancellation must cut through retry
// backoffs and injected slow responses quickly.
func TestChaosPromptCancellation(t *testing.T) {
	cfg := chaosConfig()
	cfg.FaultProfile = "slow=1.0,slowdelay=50ms,timeout=0.3"
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := Run(ctx, cfg)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not stop the chaos run within 5s")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run dragged %v after cancellation", elapsed)
	}
}

// TestChaosRetryBudgetBounds: a binding study-wide budget caps total
// retry spend (the documented cost valve; determinism is traded away,
// which is why the deterministic tests leave it unlimited).
func TestChaosRetryBudgetBounds(t *testing.T) {
	cfg := chaosConfig()
	cfg.RetryBudget = 10
	ds, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalRetries > 10 {
		t.Fatalf("spent %d retries against a budget of 10", ds.TotalRetries)
	}
}

// TestCleanRunHasEmptyTaxonomy: with faults off, coverage accounting
// must report full success — the accounting layer itself cannot invent
// failures.
func TestCleanRunHasEmptyTaxonomy(t *testing.T) {
	cfg := chaosConfig()
	cfg.FaultProfile = "off"
	ds, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalFailedURLs != 0 || len(ds.FailuresByKind) != 0 || len(ds.FailedCountries) != 0 {
		t.Fatalf("clean run reports failures: %d failed, %v, failed countries %v",
			ds.TotalFailedURLs, ds.FailuresByKind, ds.FailedCountries)
	}
	for code, st := range ds.PerCountry {
		if st.Attempted == 0 {
			t.Errorf("%s attempted nothing", code)
		}
		if st.VantageAttempts != 1 {
			t.Errorf("%s: %d vantage attempts on a healthy network", code, st.VantageAttempts)
		}
	}
}

// TestChaosBadProfileRejected: an unparseable profile is a config
// error, reported before any work starts.
func TestChaosBadProfileRejected(t *testing.T) {
	cfg := chaosConfig()
	cfg.FaultProfile = "timeout=2.0"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("bad fault profile accepted")
	}
}

// runWithMetrics executes cfg on a fresh Env and returns the dataset,
// the Env (for cache introspection) and the frozen metrics snapshot.
func runWithMetrics(t *testing.T, cfg Config) (*dataset.Dataset, *Env, metrics.Snapshot) {
	t.Helper()
	env := NewEnv(cfg)
	ds, err := env.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if env.Metrics() == nil {
		t.Fatal("no metrics registry on a default-config run")
	}
	return ds, env, env.Metrics().Snapshot()
}

// TestMetricsDeterministicAcrossConcurrency is the metrics counterpart
// of the headline chaos guarantee: the deterministic half of the
// snapshot must be byte-identical for equal seeds at any concurrency
// shape — under the healthy world and under aggressive fault
// injection. Timings and queue pressure land in the runtime half and
// are free to differ.
func TestMetricsDeterministicAcrossConcurrency(t *testing.T) {
	shapes := []struct{ country, fetch int }{
		{1, 1},
		{2, 4},
		{3, 16},
	}
	for _, profile := range []string{"off", "aggressive"} {
		var ref []byte
		var refShape struct{ country, fetch int }
		for _, sh := range shapes {
			cfg := chaosConfig()
			cfg.FaultProfile = profile
			cfg.CountryConcurrency = sh.country
			cfg.FetchConcurrency = sh.fetch
			_, _, snap := runWithMetrics(t, cfg)
			got, err := snap.DeterministicJSON()
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref, refShape = got, sh
				continue
			}
			if !bytes.Equal(ref, got) {
				t.Errorf("profile %q: deterministic snapshot diverged between shapes %+v and %+v",
					profile, refShape, sh)
			}
		}
	}
}

// TestMetricsSnapshotInvariants derives the pipeline's accounting
// identities from one snapshot: every crawled URL lands in exactly one
// bucket, every cache lookup is a hit or a miss, every fetch attempt
// is a first try or a counted retry. The identities must hold in the
// healthy world and under faults alike.
func TestMetricsSnapshotInvariants(t *testing.T) {
	for _, profile := range []string{"off", "aggressive"} {
		cfg := chaosConfig()
		cfg.FaultProfile = profile
		ds, env, snap := runWithMetrics(t, cfg)
		d := snap.Deterministic

		// A completed run executes every scheduled item.
		if d.Sched.ItemsScheduled != d.Sched.ItemsRun {
			t.Errorf("%s: scheduled %d items, ran %d", profile, d.Sched.ItemsScheduled, d.Sched.ItemsRun)
		}

		// Cache: lookups partition into hits and misses; annotate
		// resolves exactly once per call; misses are distinct hostnames.
		if d.Cache.Hits+d.Cache.Misses != d.Cache.Lookups {
			t.Errorf("%s: hits %d + misses %d != lookups %d", profile, d.Cache.Hits, d.Cache.Misses, d.Cache.Lookups)
		}
		if d.Cache.Lookups != d.Pipeline.Annotations {
			t.Errorf("%s: %d cache lookups, %d annotations", profile, d.Cache.Lookups, d.Pipeline.Annotations)
		}
		if got := int64(env.resolutions.size()); d.Cache.Misses != got {
			t.Errorf("%s: %d misses but %d cached hostnames", profile, d.Cache.Misses, got)
		}
		if d.Cache.NegativeEntries > d.Cache.Misses || d.Cache.NegativeHits > d.Cache.Hits {
			t.Errorf("%s: negative entries/hits %d/%d exceed misses/hits %d/%d",
				profile, d.Cache.NegativeEntries, d.Cache.NegativeHits, d.Cache.Misses, d.Cache.Hits)
		}

		// Geolocation caches: same partition identity per cache, and a
		// run that produced records must have geolocated something —
		// the cached path is exercised, not bypassed.
		for _, gc := range []struct {
			name string
			c    metrics.CacheCounters
		}{{"geo.unicast", d.Geo.Unicast}, {"geo.anycast", d.Geo.Anycast}} {
			if gc.c.Hits+gc.c.Misses != gc.c.Lookups {
				t.Errorf("%s: %s hits %d + misses %d != lookups %d",
					profile, gc.name, gc.c.Hits, gc.c.Misses, gc.c.Lookups)
			}
			if gc.c.NegativeEntries > gc.c.Misses || gc.c.NegativeHits > gc.c.Hits {
				t.Errorf("%s: %s negative entries/hits %d/%d exceed misses/hits %d/%d",
					profile, gc.name, gc.c.NegativeEntries, gc.c.NegativeHits, gc.c.Misses, gc.c.Hits)
			}
		}
		if len(ds.Records) > 0 && d.Geo.Unicast.Lookups+d.Geo.Anycast.Lookups == 0 {
			t.Errorf("%s: %d records produced but the geolocation caches saw no lookups",
				profile, len(ds.Records))
		}

		// Fetch: each admitted frontier URL is fetched once, plus one
		// attempt per counted retry; the retry ledger sums by kind.
		if d.Fetch.Attempts != d.Crawl.FrontierAdmitted+d.Fetch.Retries {
			t.Errorf("%s: attempts %d != admitted %d + retries %d",
				profile, d.Fetch.Attempts, d.Crawl.FrontierAdmitted, d.Fetch.Retries)
		}
		var retryKinds int64
		for _, n := range d.Fetch.RetriesByKind {
			retryKinds += n
		}
		if retryKinds != d.Fetch.Retries {
			t.Errorf("%s: retry kinds sum to %d, Retries is %d", profile, retryKinds, d.Fetch.Retries)
		}

		// Crawl: the per-depth distribution sums to the admitted total.
		var byDepth int64
		for _, n := range d.Crawl.URLsByDepth {
			byDepth += n
		}
		if byDepth != d.Crawl.FrontierAdmitted {
			t.Errorf("%s: per-depth URLs sum to %d, admitted %d", profile, byDepth, d.Crawl.FrontierAdmitted)
		}

		// Pipeline: the per-country rows close the accounting identity
		// and roll up to the study totals and the dataset's own ledger.
		var recSum, failSum int64
		for code, c := range d.Pipeline.Countries {
			if c.Attempted != c.Records+c.Failures+c.Discarded+c.Unusable {
				t.Errorf("%s/%s: attempted %d != records %d + failures %d + discarded %d + unusable %d",
					profile, code, c.Attempted, c.Records, c.Failures, c.Discarded, c.Unusable)
			}
			recSum += c.Records
			failSum += c.Failures
		}
		if recSum != d.Pipeline.Records || failSum != d.Pipeline.Failures {
			t.Errorf("%s: country rows sum to %d records / %d failures, totals say %d / %d",
				profile, recSum, failSum, d.Pipeline.Records, d.Pipeline.Failures)
		}
		var failKinds int64
		for _, n := range d.Pipeline.FailuresByKind {
			failKinds += n
		}
		if failKinds != d.Pipeline.Failures {
			t.Errorf("%s: failure kinds sum to %d, Failures is %d", profile, failKinds, d.Pipeline.Failures)
		}
		if got := int64(len(cfg.Countries)); d.Pipeline.CountriesRun != got {
			t.Errorf("%s: CountriesRun = %d, want %d", profile, d.Pipeline.CountriesRun, got)
		}

		// The snapshot agrees with the dataset the same run produced
		// (SkipTopsites, so pipeline records are exactly ds.Records).
		if int(d.Pipeline.Records) != len(ds.Records) {
			t.Errorf("%s: snapshot records %d, dataset has %d", profile, d.Pipeline.Records, len(ds.Records))
		}
		if int(d.Pipeline.Failures) != ds.TotalFailedURLs {
			t.Errorf("%s: snapshot failures %d, dataset says %d", profile, d.Pipeline.Failures, ds.TotalFailedURLs)
		}
		if int(d.Fetch.Retries) != ds.TotalRetries {
			t.Errorf("%s: snapshot retries %d, dataset says %d", profile, d.Fetch.Retries, ds.TotalRetries)
		}

		if profile == "off" {
			if d.Fetch.Retries != 0 || d.Pipeline.Failures != 0 || len(d.Faults.Injections) != 0 {
				t.Errorf("healthy run shows retries %d, failures %d, injections %v",
					d.Fetch.Retries, d.Pipeline.Failures, d.Faults.Injections)
			}
		} else {
			if len(d.Faults.Injections) == 0 {
				t.Errorf("aggressive run recorded no injected faults")
			}
			if d.Fetch.Retries == 0 {
				t.Errorf("aggressive run recorded no retries")
			}
		}
	}
}

// TestMetricsRetryBudgetBound: the deterministic retry counter must
// respect a binding study-wide budget even though which retries got
// the tokens is interleaving-dependent.
func TestMetricsRetryBudgetBound(t *testing.T) {
	cfg := chaosConfig()
	cfg.RetryBudget = 10
	_, _, snap := runWithMetrics(t, cfg)
	if got := snap.Deterministic.Fetch.Retries; got > 10 {
		t.Errorf("snapshot counts %d retries against a budget of 10", got)
	}
}

// TestMetricsDisabled: DisableMetrics must leave the Env without a
// registry and the pipeline indifferent to its absence.
func TestMetricsDisabled(t *testing.T) {
	cfg := chaosConfig()
	cfg.DisableMetrics = true
	env := NewEnv(cfg)
	ds, err := env.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if env.Metrics() != nil {
		t.Error("DisableMetrics still attached a registry")
	}
	if len(ds.Records) == 0 {
		t.Error("disabled-metrics run produced no records")
	}
}
