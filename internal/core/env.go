// Package core orchestrates the full measurement study: it
// materialises the synthetic environment (world, network, estate, DNS
// zones, WHOIS, PeeringDB, IPInfo, MAnycast2), then runs the paper's
// pipeline — vantage connection and validation, recursive crawling,
// government-URL filtering, serving-infrastructure identification,
// multistage geolocation — and produces the annotated dataset every
// table and figure is computed from.
package core

import (
	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/geo/ipinfo"
	"repro/internal/geo/manycast"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/peeringdb"
	"repro/internal/probing"
	"repro/internal/rng"
	"repro/internal/webgen"
	"repro/internal/whois"
	"repro/internal/world"
)

// Config parameterises a study run.
type Config struct {
	Seed  int64
	Scale float64 // fraction of the paper's estate size (1.0 = full)

	// Countries restricts the study to a subset of panel countries
	// (ISO codes); nil means all 61.
	Countries []string

	// CrawlDepth overrides the §3.2 depth of 7 when positive.
	CrawlDepth int
	// Concurrency is the legacy combined parallelism knob: it seeds
	// both CountryConcurrency and FetchConcurrency when they are unset;
	// 0 picks a sensible default. Before the unified scheduler this
	// knob was applied twice (countries × per-crawl workers), spawning
	// Concurrency² goroutines; it now names one budget.
	Concurrency int
	// CountryConcurrency bounds how many countries are in flight at
	// once; 0 inherits Concurrency.
	CountryConcurrency int
	// FetchConcurrency bounds the study-wide fetch/annotate worker
	// pool shared by every crawl; 0 inherits Concurrency.
	FetchConcurrency int
	// MaxURLsPerCrawl caps the distinct URLs admitted per country
	// crawl (0 = unlimited). Admission is deterministic: the cap cuts
	// a sorted per-depth frontier, so equal seeds crawl equal URL sets.
	MaxURLsPerCrawl int

	// SkipTopsites disables the Appendix D baseline collection.
	SkipTopsites bool

	// IPInfoErrorRate is the fraction of unicast addresses the
	// commercial geolocation database mislocates; defaults to 0.03.
	IPInfoErrorRate float64
	// ManycastRecall is the detection rate of the MAnycast2 snapshot;
	// defaults to 0.97.
	ManycastRecall float64

	// TrustIPInfo skips the §3.5 verification stages and takes the
	// commercial database at face value (ablation).
	TrustIPInfo bool
	// GlobalThresholdMS replaces per-country road-distance thresholds
	// with one global value when positive (ablation).
	GlobalThresholdMS float64
	// DisableSAN drops the Table 1 SAN-matching step (ablation).
	DisableSAN bool

	// TrendYears evolves the world forward: each simulated year shifts
	// hosting toward global third parties at the consolidation rate
	// the related work measures (extension).
	TrendYears int

	// FaultProfile enables deterministic fault injection (chaos runs):
	// a named profile ("mild", "aggressive") or a key=value spec per
	// faults.ParseProfile. Empty or "off" runs the healthy world.
	FaultProfile string
	// FaultSeed seeds the fault plan; 0 inherits Seed. Equal fault
	// seeds inject identical faults at any concurrency.
	FaultSeed int64
	// RetryAttempts is the per-URL fetch attempt cap including the
	// first try; 0 means 3, negative disables retries.
	RetryAttempts int
	// RetryBudget caps the retries the whole study may spend (a
	// safety valve against fault storms; retries past it become
	// terminal failures). 0 means unlimited. A binding budget trades
	// byte-reproducibility for bounded cost — leave it unlimited when
	// comparing chaos runs.
	RetryBudget int64

	// DisableMetrics turns off the per-stage metrics registry. The
	// instrumentation costs well under the 3% bench budget, so it is on
	// by default; the off switch exists for overhead comparisons.
	DisableMetrics bool

	// CheckpointDir, when set, persists each finished country into the
	// directory as it flushes through the merge sink, so a killed run
	// can restart where it stopped. The directory must be empty (or
	// hold a matching interrupted run, with Resume set).
	CheckpointDir string
	// Resume loads finished countries from CheckpointDir instead of
	// re-running them. The stored manifest must match this
	// configuration; a missing manifest degrades to a fresh start. A
	// resumed run's exports and deterministic metrics are byte-identical
	// to an uninterrupted same-seed run at any concurrency shape.
	Resume bool

	// ShardCount, when positive, puts the run in shard-worker mode: it
	// executes only the countries whose index in the sorted study set ≡
	// ShardIndex (mod ShardCount), checkpointing them into CheckpointDir
	// (required) under lease slot ShardIndex. Workers force SkipTopsites
	// and Resume — the assembly pass runs topsites and a restarted
	// worker must pick up its own earlier progress. The checkpoint
	// manifest pins the full study set, so every worker and the
	// assembly pass share one directory.
	ShardCount int
	// ShardIndex is this worker's shard position in [0, ShardCount).
	ShardIndex int

	// FailCountries names countries the caller knows cannot be
	// collected — the shards that exhausted their supervisor restart
	// budget. A listed country that is not already checkpointed gets a
	// typed Failed stats row (PR-2-style failure accounting) instead of
	// running, so a degraded sharded run yields a partial dataset
	// rather than an abort. Listed countries that did checkpoint load
	// normally.
	FailCountries []string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.IPInfoErrorRate == 0 {
		c.IPInfoErrorRate = 0.03
	}
	if c.ManycastRecall == 0 {
		c.ManycastRecall = 0.97
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.CountryConcurrency <= 0 {
		c.CountryConcurrency = c.Concurrency
	}
	if c.FetchConcurrency <= 0 {
		c.FetchConcurrency = c.Concurrency
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Seed
	}
	return c
}

// Env is the fully materialised synthetic environment.
type Env struct {
	Config   Config
	World    *world.Model
	Profiles map[string]*world.Profile
	Net      *netsim.Net
	Estate   *webgen.Estate
	Zones    *dnssim.Zones
	WhoisDB  *whois.DB
	PDB      *peeringdb.Store
	IPInfo   *ipinfo.DB
	Manycast *manycast.Snapshot
	Prober   *probing.Prober

	// Faults is the seeded fault plan for chaos runs; nil (the usual
	// case) runs the healthy world. Run materialises it from
	// Config.FaultProfile when unset, and tests may inject one
	// directly.
	Faults *faults.Plan
	// faultsWired guards the one-time wrap of resolveHost with DNS
	// fault injection, so a re-entrant Run cannot stack injectors.
	faultsWired bool

	// resolutions is the study-wide hostname→(IP, WHOIS) cache shared
	// by every country's annotation pass. Failed lookups are cached too
	// (negative entries), so a bad hostname costs one resolution, not
	// one per URL referencing it.
	resolutions *rescache
	// resolveHost performs one uncached resolution; tests may replace
	// it to observe or fault-inject lookups.
	resolveHost resolveFunc

	// metrics is the study-wide per-stage instrumentation registry,
	// shared by the scheduler, cache, fetch stack, fault injector and
	// crawler; nil when Config.DisableMetrics is set (or for loaded
	// studies, which never ran a pipeline).
	metrics *metrics.Registry

	// afterFlush, when set, is called by the merge sink after each
	// country flushes (and, when checkpointing, persists). Tests use it
	// to kill a run at a precise completion boundary.
	afterFlush func(code string)
}

// Metrics exposes the per-stage metrics registry; nil when metrics are
// disabled or the Env was reconstructed from a saved dataset.
func (env *Env) Metrics() *metrics.Registry { return env.metrics }

// The nil-safe slice accessors keep pipeline call sites one-liners
// whether or not a registry is attached.

func (env *Env) cacheMetrics() *metrics.CacheMetrics {
	if env.metrics == nil {
		return nil
	}
	return &env.metrics.Cache
}

func (env *Env) geoMetrics() *metrics.GeoMetrics {
	if env.metrics == nil {
		return nil
	}
	return &env.metrics.Geo
}

// wireProberMetrics points the prober's cache ledgers at the registry's
// geo slice; a nil registry leaves them detached (nil-safe recording).
func (env *Env) wireProberMetrics() {
	if env.Prober == nil {
		return
	}
	if gm := env.geoMetrics(); gm != nil {
		env.Prober.UnicastMetrics = &gm.Unicast
		env.Prober.AnycastMetrics = &gm.Anycast
	}
}

func (env *Env) fetchMetrics() *metrics.FetchMetrics {
	if env.metrics == nil {
		return nil
	}
	return &env.metrics.Fetch
}

func (env *Env) faultMetrics() *metrics.FaultMetrics {
	if env.metrics == nil {
		return nil
	}
	return &env.metrics.Faults
}

func (env *Env) crawlMetrics() *metrics.CrawlMetrics {
	if env.metrics == nil {
		return nil
	}
	return &env.metrics.Crawl
}

func (env *Env) pipelineMetrics() *metrics.PipelineMetrics {
	if env.metrics == nil {
		return nil
	}
	return &env.metrics.Pipeline
}

// NewEnv builds the environment for a configuration.
func NewEnv(cfg Config) *Env {
	cfg = cfg.withDefaults()
	w := world.New()
	profiles := world.BuildProfiles(w, cfg.Seed)
	world.ApplyTrend(profiles, cfg.TrendYears)
	net := netsim.Build(w, cfg.Seed)
	estate := webgen.Build(w, net, profiles, cfg.Seed, cfg.Scale)
	zones := dnssim.Build(estate, net)

	env := &Env{
		Config:   cfg,
		World:    w,
		Profiles: profiles,
		Net:      net,
		Estate:   estate,
		Zones:    zones,
		WhoisDB:  buildWhois(net),
		PDB:      buildPeeringDB(net),
		IPInfo:   buildIPInfo(w, net, cfg),
		Manycast: buildManycast(net, cfg),
	}
	env.Prober = probing.New(net, w, zones, env.IPInfo, env.Manycast)
	env.Prober.GlobalThresholdMS = cfg.GlobalThresholdMS
	if !cfg.DisableMetrics {
		env.metrics = metrics.New()
	}
	env.wireProberMetrics()
	env.resolutions = newRescache(env.cacheMetrics())
	env.resolveHost = env.zoneResolve
	return env
}

// LoadedEnv wraps a bare world model for studies reconstructed from a
// saved dataset: analyses and reports only consult the world, not the
// synthetic network or estate.
func LoadedEnv(w *world.Model) *Env {
	return &Env{World: w}
}

// buildWhois derives the public registry from the allocation table.
func buildWhois(n *netsim.Net) *whois.DB {
	db := whois.NewDB()
	for _, ap := range n.AllocatedPrefixes() {
		db.Add(whois.Record{
			Prefix:     ap.Prefix,
			NetName:    ap.AS.Name,
			ASN:        ap.AS.ASN,
			Org:        ap.AS.Org,
			Country:    ap.AS.RegCountry,
			Email:      ap.AS.ContactEmail,
			PeeringURL: ap.AS.Website,
		})
	}
	db.Sort()
	return db
}

// buildPeeringDB snapshots the networks that maintain PeeringDB
// records.
func buildPeeringDB(n *netsim.Net) *peeringdb.Store {
	s := peeringdb.NewStore()
	for _, as := range n.ASList {
		if !as.PeeringDB {
			continue
		}
		s.Add(peeringdb.Record{
			ASN: as.ASN, Name: as.Name, Org: as.Org,
			Website: as.Website, Note: as.PeeringNote,
		})
	}
	return s
}

// buildIPInfo derives the commercial geolocation database: unicast
// addresses are correct except for a configurable error rate; anycast
// addresses are pinned to the operator's home country, the classic
// commercial-database failure mode.
func buildIPInfo(w *world.Model, n *netsim.Net, cfg Config) *ipinfo.DB {
	db := ipinfo.New()
	r := rng.New(cfg.Seed, "ipinfo-errors")
	codes := w.SortedCodes()
	for _, h := range n.HostList {
		var e ipinfo.Entry
		e.Org = h.AS.Org
		if h.Anycast {
			e.Country = h.Provider.Home
		} else {
			e.Country = h.Country
			if r.Float64() < cfg.IPInfoErrorRate {
				e.Country = codes[r.Intn(len(codes))]
			}
		}
		db.Put(h.Addr, e)
	}
	return db
}

// buildManycast snapshots anycast detection with the configured
// recall.
func buildManycast(n *netsim.Net, cfg Config) *manycast.Snapshot {
	s := manycast.New()
	r := rng.New(cfg.Seed, "manycast")
	for _, h := range n.HostList {
		if h.Anycast && r.Float64() < cfg.ManycastRecall {
			s.Mark(h.Addr)
		}
	}
	return s
}
