package core

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/crawler"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/fetch"
	"repro/internal/govclass"
	"repro/internal/har"
	"repro/internal/metrics"
	"repro/internal/probing"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/vantage"
	"repro/internal/webgen"
	"repro/internal/world"
)

// Run executes the full study and returns the annotated dataset.
func Run(ctx context.Context, cfg Config) (*dataset.Dataset, error) {
	env := NewEnv(cfg)
	return env.Run(ctx)
}

// Run executes the pipeline against an already-built environment.
//
// One study-wide scheduler owns every fetch/annotate task: a bounded
// pool of FetchConcurrency workers is shared by all crawls, and at
// most CountryConcurrency countries are in flight at once. Total
// goroutine count is therefore CountryConcurrency + FetchConcurrency —
// the configured budget — where the old per-country pools spawned
// Concurrency² workers. Cancellation abandons queued countries and
// queued fetches promptly, not just in-flight crawls.
func (env *Env) Run(ctx context.Context) (*dataset.Dataset, error) {
	// Normalise here, not only in NewEnv: an Env assembled by hand
	// (e.g. a caller mirroring LoadedEnv) would otherwise run with a
	// zero concurrency budget, and a zero-capacity semaphore deadlocks
	// every worker.
	cfg := env.Config.withDefaults()
	if cfg.ShardCount > 0 {
		// Shard-worker mode: the worker owns a deterministic slice of
		// the study and shares the checkpoint directory with its
		// siblings. Topsites belong to the assembly pass (they are never
		// checkpointed), and a restarted worker must resume its own
		// earlier progress, so both flags are forced rather than trusted
		// to the spawner.
		if cfg.CheckpointDir == "" {
			return nil, fmt.Errorf("core: shard worker %d/%d needs a checkpoint directory", cfg.ShardIndex, cfg.ShardCount)
		}
		if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount {
			return nil, fmt.Errorf("core: shard index %d out of range for %d shards", cfg.ShardIndex, cfg.ShardCount)
		}
		cfg.SkipTopsites = true
		cfg.Resume = true
	}
	env.Config = cfg
	if env.metrics == nil && !cfg.DisableMetrics {
		env.metrics = metrics.New()
		env.wireProberMetrics()
	}
	if env.resolutions == nil {
		env.resolutions = newRescache(env.cacheMetrics())
	}
	if env.resolveHost == nil {
		env.resolveHost = env.zoneResolve
	}
	studyStart := runtimeNow()
	if env.Faults == nil && cfg.FaultProfile != "" {
		prof, err := faults.ParseProfile(cfg.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if prof.Enabled() {
			env.Faults = faults.NewPlan(cfg.FaultSeed, prof)
		}
	}
	// DNS faults wrap the study-wide resolver once: each hostname gets
	// a bounded, deterministic attempt sequence, so an injected
	// SERVFAIL on attempt 0 can still resolve on attempt 1.
	if env.Faults != nil && env.Faults.Profile.DNSServfail > 0 && !env.faultsWired {
		env.faultsWired = true
		env.resolveHost = faultyResolve(env.Faults, env.faultMetrics(), env.resolveHost)
	}
	countries := env.studyCountries()

	ds := &dataset.Dataset{
		PerCountry: make(map[string]*dataset.CountryStats),
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
	}

	// Open the checkpoint store before any work starts: a manifest
	// mismatch, a live conflicting lease or an unwilling directory
	// should fail the run while it is still free to fail. Countries
	// that fail checkpoint verification are quarantined by Open and
	// simply re-run below — self-healing resume.
	var store *checkpoint.Store
	var loaded []checkpoint.Country
	if cfg.CheckpointDir != "" {
		slots := cfg.ShardCount
		if slots <= 0 {
			slots = 1
		}
		s, res, err := checkpoint.Open(cfg.CheckpointDir, env.manifest(countries), checkpoint.Options{
			Resume: cfg.Resume, Slot: cfg.ShardIndex, Slots: slots,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer s.Close()
		store, loaded = s, res.Countries
		if env.metrics != nil {
			env.metrics.Shard.RecordQuarantined(int64(len(res.Quarantined)))
		}
	}

	pool := sched.NewPool(cfg.FetchConcurrency)
	defer pool.Close()
	if env.metrics != nil {
		pool.SetMetrics(&env.metrics.Sched)
	}
	if cfg.RetryBudget > 0 {
		// Loaded countries already spent their share of the study-wide
		// budget; the resuming run inherits only the remainder, so a
		// resumed run can never spend more retries than the budget.
		rem := cfg.RetryBudget
		for i := range loaded {
			if loaded[i].Stats != nil {
				rem -= int64(loaded[i].Stats.Retries)
			}
		}
		if rem < 0 {
			rem = 0
		}
		pool.SetRetryBudget(sched.NewBudget(rem))
	}

	// The merge sink consumes completed countries in sorted-code order
	// while later countries are still crawling: each completion flushes
	// straight into the dataset (and the checkpoint store) the moment
	// every earlier country is in, so peak buffered state is the parked
	// out-of-order completions, not the whole study.
	// The full study set pins the manifest; in shard-worker mode the
	// sink (and the coordinator feed) cover only this worker's owned
	// slice, so a sibling's unfinished rank can never block a flush.
	studySet := make(map[string]bool, len(countries))
	codes := make([]string, len(countries))
	for i, c := range countries {
		codes[i] = c.Code
		studySet[c.Code] = true
	}
	run := countries
	sinkCodes := codes
	if cfg.ShardCount > 1 {
		sinkCodes = shard.Owned(codes, cfg.ShardIndex, cfg.ShardCount)
		ownedSet := make(map[string]bool, len(sinkCodes))
		for _, code := range sinkCodes {
			ownedSet[code] = true
		}
		run = make([]*world.Country, 0, len(sinkCodes))
		for _, c := range countries {
			if ownedSet[c.Code] {
				run = append(run, c)
			}
		}
	}
	sink := newMergeSink(env, ds, store, sinkCodes)
	var sinkMu sync.Mutex

	// Resume: replay the stored countries' shared-cache outcomes
	// (metric-free — their ledger share arrives through the recomputed
	// deltas), then hand the owned ones to the sink at their ranks so
	// fresh countries slot in around them. A sibling shard's country is
	// seeded but not assembled — its own worker (or the assembly pass)
	// owns its rank.
	loadedSet := make(map[string]bool, len(loaded))
	for i := range loaded {
		lc := &loaded[i]
		if !studySet[lc.Code] {
			return nil, fmt.Errorf("core: checkpoint holds country %s outside the study set", lc.Code)
		}
		loadedSet[lc.Code] = true
		env.seedFromCheckpoint(lc)
	}
	for i := range loaded {
		lc := &loaded[i]
		if _, ok := sink.rank[lc.Code]; !ok {
			continue
		}
		methods := make(map[govclass.URLMethod]int, len(lc.Methods))
		for m, n := range lc.Methods {
			methods[govclass.URLMethod(m)] = n
		}
		if err := sink.complete(&countryDone{
			code: lc.Code, stats: lc.Stats, records: lc.Records,
			methods: methods, loaded: lc,
		}); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	// Countries owned by a shard that exhausted its restart budget
	// degrade to typed failure rows — the run continues and the dataset
	// is partial with full accounting, not aborted. A listed country
	// that did checkpoint before its shard died loads normally above.
	// The rows are transient: the sink never persists them, so a later
	// resume of the directory re-runs the countries instead of
	// inheriting this run's crashes.
	if len(cfg.FailCountries) > 0 {
		failCodes := append([]string(nil), cfg.FailCountries...)
		sort.Strings(failCodes)
		prev := ""
		for _, code := range failCodes {
			if code == prev || !studySet[code] || loadedSet[code] {
				continue
			}
			prev = code
			if _, ok := sink.rank[code]; !ok {
				continue
			}
			loadedSet[code] = true
			c := env.World.MustCountry(code)
			stats := &dataset.CountryStats{
				Country: code, Region: c.Region,
				LandingURLs:   len(env.Estate.LandingURLs[code]),
				Failed:        true,
				FailureReason: "shard worker exhausted its restart budget; country not collected",
			}
			env.pipelineMetrics().RecordCountry(code, metrics.CountryCounters{}, true, nil)
			if err := sink.complete(&countryDone{code: code, stats: stats, transient: true}); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}

	// A fixed team of coordinators pulls country indexes from a
	// channel; all their fetch/annotate work funnels through the shared
	// pool. Each fresh country records its attributable deterministic
	// counters into a fork registry, absorbed study-wide at flush — the
	// separation checkpointing needs.
	errs := make([]error, len(run))
	idx := make(chan int)
	wait := sched.Workers(cfg.CountryConcurrency, func(int) {
		for i := range idx {
			if ctx.Err() != nil {
				continue // drain the remaining indexes without working
			}
			var fork *metrics.Registry
			if env.metrics != nil {
				fork = metrics.New()
			}
			d, err := env.runCountry(ctx, run[i], pool, fork)
			if err != nil {
				errs[i] = err
				continue
			}
			sinkMu.Lock()
			err = sink.complete(d)
			sinkMu.Unlock()
			if err != nil {
				errs[i] = err
			}
		}
	})
feed:
	for i := range run {
		if loadedSet[run[i].Code] {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wait()

	if err := ctx.Err(); err != nil {
		// Cancellation used to discard every completed country. With a
		// checkpoint store attached, completions parked behind a
		// still-crawling earlier country are flushed — and persisted —
		// before the error returns, so finished work survives the kill.
		if store != nil {
			sinkMu.Lock()
			derr := sink.drain()
			sinkMu.Unlock()
			if derr != nil {
				return nil, fmt.Errorf("core: %w", derr)
			}
		}
		return nil, err
	}
	for i, e := range errs {
		if e != nil {
			// Only cancellation and checkpoint-write failures propagate
			// here; per-country collection failures degrade to a Failed
			// stats entry inside runCountry, so one hostile country
			// cannot abort the study.
			return nil, fmt.Errorf("core: country %s: %w", run[i].Code, e)
		}
	}

	if !cfg.SkipTopsites {
		topStart := runtimeNow()
		if err := env.runTopsites(ctx, ds, pool); err != nil {
			return nil, err
		}
		env.pipelineMetrics().ObserveStage("topsites", runtimeSince(topStart))
	}

	assignCategories(env, ds)
	ds.FillTotals()
	env.pipelineMetrics().ObserveStage("study", runtimeSince(studyStart))
	return ds, nil
}

// manifest pins the parameters a checkpoint directory must share with
// this run. SkipTopsites is excluded: topsites are never checkpointed
// and re-run on resume under the current flag.
func (env *Env) manifest(countries []*world.Country) checkpoint.Manifest {
	cfg := env.Config
	codes := make([]string, len(countries))
	for i, c := range countries {
		codes[i] = c.Code
	}
	sort.Strings(codes)
	return checkpoint.Manifest{
		Seed: cfg.Seed, Scale: cfg.Scale, Countries: codes,
		CrawlDepth: cfg.CrawlDepth, MaxURLsPerCrawl: cfg.MaxURLsPerCrawl,
		FaultProfile: cfg.FaultProfile, FaultSeed: cfg.FaultSeed,
		RetryAttempts: cfg.RetryAttempts, RetryBudget: cfg.RetryBudget,
		TrustIPInfo: cfg.TrustIPInfo, GlobalThresholdMS: cfg.GlobalThresholdMS,
		DisableSAN: cfg.DisableSAN, TrendYears: cfg.TrendYears,
		IPInfoErrorRate: cfg.IPInfoErrorRate, ManycastRecall: cfg.ManycastRecall,
		DisableMetrics: cfg.DisableMetrics,
	}
}

// StudyManifest resolves the checkpoint manifest a configuration pins
// without materialising the synthetic environment — the supervisor's
// pre-flight, used to validate (or create) the shared directory and to
// learn the resolved study set before any worker process exists.
func StudyManifest(cfg Config) checkpoint.Manifest {
	env := &Env{Config: cfg.withDefaults(), World: world.New()}
	return env.manifest(env.studyCountries())
}

// studyCountries resolves the configured country subset.
func (env *Env) studyCountries() []*world.Country {
	var out []*world.Country
	if len(env.Config.Countries) == 0 {
		for _, c := range env.World.Panel() {
			if c.Landing > 0 {
				out = append(out, c)
			}
		}
		return out
	}
	// Deduplicate: the merge sink ranks countries by code, and a code
	// listed twice must not run (or flush) twice.
	seen := map[string]bool{}
	for _, code := range env.Config.Countries {
		c := env.World.MustCountry(code)
		if c.Landing > 0 && !seen[c.Code] {
			seen[c.Code] = true
			out = append(out, c)
		}
	}
	return out
}

// maxVantageAttempts bounds the §3.2 egress re-connection loop: a
// vantage that fails location validation is reconnected with a fresh
// deterministic egress this many times before the country is declared
// failed.
const maxVantageAttempts = 3

// connectVantage obtains a location-validated vantage for c, retrying
// with fresh egresses on validation failure (or on an injected egress
// flap). It reports the attempts used so coverage stats record how
// hard the vantage was to pin down. Injected flaps land in fam —
// the country's fork when one is attached, so the injection is
// attributable and checkpointable.
func (env *Env) connectVantage(c *world.Country, fam *metrics.FaultMetrics) (*vantage.Point, int, error) {
	var err error
	for attempt := 0; attempt < maxVantageAttempts; attempt++ {
		vp := vantage.ConnectAttempt(c, env.Estate, env.Net, env.Config.Seed, attempt)
		err = vp.ValidateLocation(env.Net)
		if err == nil && env.Faults != nil && env.Faults.EgressFlap(c.Code, attempt) {
			fam.Inject(string(faults.KindFlap))
			err = fmt.Errorf("faults: egress %v flapped during validation (injected)", vp.Egress)
		}
		if err == nil {
			return vp, attempt + 1, nil
		}
	}
	return nil, maxVantageAttempts, err
}

// fetchStack assembles the per-country fetch pipeline: the vantage's
// raw fetcher, the fault injector when a plan is active, and the
// retrying fetcher on top — classification-driven retries with capped,
// seed-jittered backoff, drawing on the pool's study-wide retry
// budget. The metric targets are parameters so a country's fork (or
// the study registry, for topsites) receives the accounting.
func (env *Env) fetchStack(inner fetch.Fetcher, pool *sched.Pool, fm *metrics.FetchMetrics, fam *metrics.FaultMetrics) *fetch.Retrier {
	if env.Faults != nil {
		inner = &faults.Fetcher{Inner: inner, Plan: env.Faults, Metrics: fam}
	}
	r := &fetch.Retrier{
		Inner: inner,
		Policy: fetch.RetryPolicy{
			MaxAttempts: env.Config.RetryAttempts,
			Seed:        env.Config.Seed,
		},
		Metrics: fm,
	}
	if b := pool.RetryBudget(); b != nil {
		r.Budget = b
	}
	return r
}

// candidate indexes an archive entry admitted to annotation, with the
// §3.3 method that admitted it. Candidates index into the archive
// rather than copying entries: the annotation fan-out only needs to
// read them, and the archive is immutable once the crawl returns.
type candidate struct {
	idx    int
	method govclass.URLMethod
}

// classifyEntries runs the §3.3 classifier over a crawl archive,
// splitting usable entries into annotation candidates and tallying
// classification outcomes so the per-country accounting identity
// (Attempted == Records + Failures + Discarded + Unusable) closes.
//
// Method tallies skip the landing seeds — they are study inputs, not
// crawl discoveries — with one deliberate exception: discarded entries
// count unconditionally. The coverage identity counts every discarded
// entry, landing or not, so gating the discarded tally behind the
// landing check (as the other methods are gated) made the dataset's
// Discarded total disagree with the metrics ledger whenever a landing
// URL itself classified as discarded.
func classifyEntries(classifier *govclass.URLClassifier, entries []har.Entry, landingSet map[string]bool) (candidates []candidate, methods map[govclass.URLMethod]int, unusable int64) {
	methods = make(map[govclass.URLMethod]int)
	for i := range entries {
		entry := &entries[i]
		// Failure covers the degraded-but-200 cases (truncation): an
		// entry is either a coverage loss or a record, never both.
		if entry.Status != 200 || entry.Failure != "" {
			if entry.Failure == "" {
				unusable++ // e.g. a 404: healthy fetch, no usable body
			}
			continue
		}
		method := classifier.Classify(entry.Host)
		if method == govclass.MethodDiscarded {
			methods[method]++
			continue
		}
		if !landingSet[entry.URL] {
			methods[method]++
		}
		candidates = append(candidates, candidate{idx: i, method: method})
	}
	return candidates, methods, unusable
}

// runCountry performs the §3 pipeline for one country; every fetch and
// annotation runs on the shared pool. Collection failures degrade
// gracefully: an unvalidatable vantage yields a Failed stats entry
// (the study continues without the country), and per-URL failures
// classify into the stats' coverage taxonomy instead of vanishing.
//
// Deterministic, attributable counters land in the country's fork
// registry (carried inside the returned countryDone) so the merge sink
// can absorb — and checkpoint — them at flush; wall-clock timings stay
// on the study registry, which never feeds golden comparisons.
func (env *Env) runCountry(ctx context.Context, c *world.Country, pool *sched.Pool, fork *metrics.Registry) (*countryDone, error) {
	cfg := env.Config
	landings := env.Estate.LandingURLs[c.Code]
	stats := &dataset.CountryStats{
		Country:     c.Code,
		Region:      c.Region,
		LandingURLs: len(landings),
	}

	pm := env.pipelineMetrics() // study-level: wall-clock timings only
	var dpm *metrics.PipelineMetrics
	var cm *metrics.CrawlMetrics
	var fm *metrics.FetchMetrics
	var fam *metrics.FaultMetrics
	var sm *metrics.SchedMetrics
	if fork != nil {
		dpm, cm, fm = &fork.Pipeline, &fork.Crawl, &fork.Fetch
		fam, sm = &fork.Faults, &fork.Sched
	}
	var timings metrics.CountryTimings

	// §3.2: connect through an in-country VPN vantage and validate its
	// claimed location before trusting it; reconnect on failure.
	stageStart := runtimeNow()
	vp, attempts, vErr := env.connectVantage(c, fam)
	timings.Vantage = runtimeSince(stageStart)
	stats.VantageAttempts = attempts
	if vErr != nil {
		stats.Failed = true
		stats.FailureReason = fmt.Sprintf("vantage validation: %v", vErr)
		dpm.RecordCountry(c.Code, metrics.CountryCounters{VantageAttempts: int64(attempts)}, true, nil)
		pm.RecordCountryTimings(c.Code, timings)
		pm.ObserveStage("vantage", timings.Vantage)
		return &countryDone{code: c.Code, stats: stats, fork: fork}, nil
	}

	retrier := env.fetchStack(vp.Fetcher, pool, fm, fam)
	cr := &crawler.Crawler{
		Fetcher: retrier,
		Config: crawler.Config{
			MaxDepth: cfg.CrawlDepth,
			MaxURLs:  cfg.MaxURLsPerCrawl,
			Country:  c.Code,
			VPN:      vp.VPN,
		},
		Pool:    pool,
		Metrics: cm,
		Sched:   sm,
	}
	stageStart = runtimeNow()
	archive, err := cr.Crawl(ctx, landings)
	timings.Crawl = runtimeSince(stageStart)
	if err != nil {
		return nil, err
	}

	// Coverage accounting: every crawled URL either produced a usable
	// entry or a classified failure.
	stats.Attempted = len(archive.Entries)
	for i := range archive.Entries {
		if f := archive.Entries[i].Failure; f != "" {
			stats.AddFailure(f)
		}
	}

	// §3.3: identify internal government URLs.
	stageStart = runtimeNow()
	classifier := env.urlClassifier(c)
	landingSet := make(map[string]bool, len(landings))
	for _, l := range landings {
		landingSet[l] = true
	}
	candidates, methods, unusable := classifyEntries(classifier, archive.Entries, landingSet)
	timings.Classify = runtimeSince(stageStart)

	// Annotation fans out through the same bounded pool as the fetches;
	// workers write into their own index so assembly order stays the
	// archive's deterministic order, not completion order. Records are
	// then compacted in place — the fan-out buffer is the result slice.
	recs := make([]dataset.URLRecord, len(candidates))
	errs := make([]error, len(candidates))
	stageStart = runtimeNow()
	pool.EachWith(ctx, len(candidates), sm, func(i int) {
		recs[i], errs[i] = env.annotate(c, archive.Entries[candidates[i].idx], dpm)
	})
	timings.Annotate = runtimeSince(stageStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Compaction also tallies each hostname's resolution outcomes: the
	// kind is kept raw (pre-rewrite) so a checkpoint replays exactly
	// what fetch.ClassifyError saw, and the FailOther→FailDNS stats
	// rewrite below happens identically on fresh and resumed paths.
	records := recs[:0]
	hosts := make(map[string]*hostTally)
	for i := range recs {
		host := archive.Entries[candidates[i].idx].Host
		t := hosts[host]
		if t == nil {
			t = &hostTally{}
			hosts[host] = t
		}
		t.lookups++
		if errs[i] != nil {
			// Unresolvable hostnames drop out of the records, as in any
			// crawl — but no longer silently: resolution failures are
			// coverage losses too.
			kind := fetch.ClassifyError(errs[i])
			t.failKind = string(kind)
			if kind == fetch.FailOther {
				kind = fetch.FailDNS // annotation errors are resolution failures
			}
			stats.AddFailure(string(kind))
			continue
		}
		recs[i].Method = string(candidates[i].method)
		records = append(records, recs[i])
	}
	hostnames := 0
	for _, t := range hosts {
		if t.failKind == "" {
			hostnames++
		}
	}

	stats.InternalURLs = methods[govclass.MethodTLD] + methods[govclass.MethodDomain] + methods[govclass.MethodSAN]
	stats.Hostnames = hostnames
	stats.Retries = int(retrier.Stats().Retries)
	discarded := int64(methods[govclass.MethodDiscarded])

	// Records leave runCountry in their canonical per-country order, so
	// the merge sink's append keeps the dataset globally sorted.
	dataset.SortRecords(records)

	dpm.RecordCountry(c.Code, metrics.CountryCounters{
		Attempted:       int64(stats.Attempted),
		Records:         int64(len(records)),
		Failures:        int64(stats.FailedURLs),
		Discarded:       discarded,
		Unusable:        unusable,
		Retries:         int64(stats.Retries),
		VantageAttempts: int64(stats.VantageAttempts),
	}, false, stats.Failures)
	pm.RecordCountryTimings(c.Code, timings)
	pm.ObserveStage("vantage", timings.Vantage)
	pm.ObserveStage("crawl", timings.Crawl)
	pm.ObserveStage("classify", timings.Classify)
	pm.ObserveStage("annotate", timings.Annotate)
	return &countryDone{
		code: c.Code, stats: stats, records: records,
		methods: methods, hosts: hosts, fork: fork,
	}, nil
}

// annotate resolves one crawled URL to its serving infrastructure
// (Table 2) and validated location. Resolution goes through the
// study-wide cache, so each distinct hostname — resolvable or not — is
// looked up once across all countries. The annotation counter lands in
// pm — the country's fork (or the study registry, for topsites).
func (env *Env) annotate(c *world.Country, entry har.Entry, pm *metrics.PipelineMetrics) (dataset.URLRecord, error) {
	pm.RecordAnnotation()
	rec := dataset.URLRecord{
		URL:     entry.URL,
		Host:    entry.Host,
		Country: c.Code,
		Region:  c.Region,
		Bytes:   entry.BodySize,
		Depth:   entry.Depth,
	}

	ip, wrec, err := env.resolutions.resolve(entry.Host, env.resolveHost)
	if err != nil {
		return rec, err
	}
	rec.IP = ip
	rec.ASN = wrec.ASN
	rec.Org = wrec.Org
	rec.RegCountry = wrec.Country
	if site := env.Estate.Site(entry.Host); site != nil {
		rec.HTTPSValid = site.HTTPSValid
	}

	// §3.5: geolocate and validate.
	if env.Manycast.IsAnycast(rec.IP) {
		rec.Anycast = true
		v := env.geolocateAnycast(c, rec.IP)
		rec.ServeCountry, rec.GeoMethod = v.Country, string(v.Method)
	} else {
		v := env.geolocateUnicast(rec.IP)
		rec.ServeCountry, rec.GeoMethod = v.Country, string(v.Method)
	}
	return rec, nil
}

func (env *Env) geolocateAnycast(c *world.Country, ip netip.Addr) probing.Verdict {
	if env.Config.TrustIPInfo {
		return env.trustIPInfoVerdict(ip, true)
	}
	return env.Prober.GeolocateAnycast(c, ip)
}

func (env *Env) geolocateUnicast(ip netip.Addr) probing.Verdict {
	if env.Config.TrustIPInfo {
		return env.trustIPInfoVerdict(ip, false)
	}
	return env.Prober.GeolocateUnicast(ip)
}

func (env *Env) trustIPInfoVerdict(ip netip.Addr, anycast bool) probing.Verdict {
	v := probing.Verdict{Addr: ip, Anycast: anycast, Method: "IPINFO"}
	if e, ok := env.IPInfo.Lookup(ip); ok {
		v.Country = e.Country
	}
	return v
}

// urlClassifier builds the §3.3 classifier for one country.
func (env *Env) urlClassifier(c *world.Country) *govclass.URLClassifier {
	landingHosts := make(map[string]bool)
	for _, l := range env.Estate.LandingURLs[c.Code] {
		landingHosts[har.HostOf(l)] = true
	}
	sanHosts := map[string]string{}
	if !env.Config.DisableSAN {
		for _, s := range env.Estate.GovSites(c.Code) {
			if s.Cert == nil {
				continue
			}
			for _, san := range s.Cert.SANs {
				sanHosts[san] = s.Cert.Subject
			}
		}
	}
	return &govclass.URLClassifier{
		LandingHosts: landingHosts,
		SANHosts:     sanHosts,
		VerifySAN: func(host string) bool {
			// The manual-verification oracle: a SAN hostname survives
			// only when it genuinely belongs to the government estate.
			site := env.Estate.Site(host)
			return site != nil && site.Kind != webgen.KindContractor && site.Kind != webgen.KindTopsite
		},
	}
}
