package core

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/crawler"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/fetch"
	"repro/internal/govclass"
	"repro/internal/har"
	"repro/internal/metrics"
	"repro/internal/probing"
	"repro/internal/sched"
	"repro/internal/vantage"
	"repro/internal/webgen"
	"repro/internal/world"
)

// Run executes the full study and returns the annotated dataset.
func Run(ctx context.Context, cfg Config) (*dataset.Dataset, error) {
	env := NewEnv(cfg)
	return env.Run(ctx)
}

// Run executes the pipeline against an already-built environment.
//
// One study-wide scheduler owns every fetch/annotate task: a bounded
// pool of FetchConcurrency workers is shared by all crawls, and at
// most CountryConcurrency countries are in flight at once. Total
// goroutine count is therefore CountryConcurrency + FetchConcurrency —
// the configured budget — where the old per-country pools spawned
// Concurrency² workers. Cancellation abandons queued countries and
// queued fetches promptly, not just in-flight crawls.
func (env *Env) Run(ctx context.Context) (*dataset.Dataset, error) {
	// Normalise here, not only in NewEnv: an Env assembled by hand
	// (e.g. a caller mirroring LoadedEnv) would otherwise run with a
	// zero concurrency budget, and a zero-capacity semaphore deadlocks
	// every worker.
	cfg := env.Config.withDefaults()
	env.Config = cfg
	if env.metrics == nil && !cfg.DisableMetrics {
		env.metrics = metrics.New()
		env.wireProberMetrics()
	}
	if env.resolutions == nil {
		env.resolutions = newRescache(env.cacheMetrics())
	}
	if env.resolveHost == nil {
		env.resolveHost = env.zoneResolve
	}
	studyStart := time.Now()
	if env.Faults == nil && cfg.FaultProfile != "" {
		prof, err := faults.ParseProfile(cfg.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if prof.Enabled() {
			env.Faults = faults.NewPlan(cfg.FaultSeed, prof)
		}
	}
	// DNS faults wrap the study-wide resolver once: each hostname gets
	// a bounded, deterministic attempt sequence, so an injected
	// SERVFAIL on attempt 0 can still resolve on attempt 1.
	if env.Faults != nil && env.Faults.Profile.DNSServfail > 0 && !env.faultsWired {
		env.faultsWired = true
		env.resolveHost = faultyResolve(env.Faults, env.faultMetrics(), env.resolveHost)
	}
	countries := env.studyCountries()

	ds := &dataset.Dataset{
		PerCountry: make(map[string]*dataset.CountryStats),
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
	}

	type countryResult struct {
		stats   *dataset.CountryStats
		records []dataset.URLRecord
		methods map[govclass.URLMethod]int
		err     error
	}

	pool := sched.NewPool(cfg.FetchConcurrency)
	defer pool.Close()
	if env.metrics != nil {
		pool.SetMetrics(&env.metrics.Sched)
	}
	if cfg.RetryBudget > 0 {
		pool.SetRetryBudget(sched.NewBudget(cfg.RetryBudget))
	}

	// A fixed team of coordinators pulls country indexes from a
	// channel; all their fetch/annotate work funnels through the shared
	// pool.
	results := make([]countryResult, len(countries))
	idx := make(chan int)
	wait := sched.Workers(cfg.CountryConcurrency, func(int) {
		for i := range idx {
			if ctx.Err() != nil {
				continue // drain the remaining indexes without working
			}
			recs, stats, methods, err := env.runCountry(ctx, countries[i], pool)
			results[i] = countryResult{stats: stats, records: recs, methods: methods, err: err}
		}
	})
feed:
	for i := range countries {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, res := range results {
		if res.err != nil {
			// Only cancellation propagates here; per-country collection
			// failures degrade to a Failed stats entry inside
			// runCountry, so one hostile country cannot abort the study.
			return nil, fmt.Errorf("core: country %s: %w", countries[i].Code, res.err)
		}
		ds.Records = append(ds.Records, res.records...)
		ds.PerCountry[countries[i].Code] = res.stats
		ds.MethodTLD += res.methods[govclass.MethodTLD]
		ds.MethodDomain += res.methods[govclass.MethodDomain]
		ds.MethodSAN += res.methods[govclass.MethodSAN]
		ds.Discarded += res.methods[govclass.MethodDiscarded]
	}

	if !cfg.SkipTopsites {
		topStart := time.Now()
		if err := env.runTopsites(ctx, ds, pool); err != nil {
			return nil, err
		}
		env.pipelineMetrics().ObserveStage("topsites", time.Since(topStart))
	}

	assignCategories(env, ds)
	fillTotals(env, ds)
	env.pipelineMetrics().ObserveStage("study", time.Since(studyStart))
	return ds, nil
}

// studyCountries resolves the configured country subset.
func (env *Env) studyCountries() []*world.Country {
	var out []*world.Country
	if len(env.Config.Countries) == 0 {
		for _, c := range env.World.Panel() {
			if c.Landing > 0 {
				out = append(out, c)
			}
		}
		return out
	}
	for _, code := range env.Config.Countries {
		c := env.World.MustCountry(code)
		if c.Landing > 0 {
			out = append(out, c)
		}
	}
	return out
}

// maxVantageAttempts bounds the §3.2 egress re-connection loop: a
// vantage that fails location validation is reconnected with a fresh
// deterministic egress this many times before the country is declared
// failed.
const maxVantageAttempts = 3

// connectVantage obtains a location-validated vantage for c, retrying
// with fresh egresses on validation failure (or on an injected egress
// flap). It reports the attempts used so coverage stats record how
// hard the vantage was to pin down.
func (env *Env) connectVantage(c *world.Country) (*vantage.Point, int, error) {
	var err error
	for attempt := 0; attempt < maxVantageAttempts; attempt++ {
		vp := vantage.ConnectAttempt(c, env.Estate, env.Net, env.Config.Seed, attempt)
		err = vp.ValidateLocation(env.Net)
		if err == nil && env.Faults != nil && env.Faults.EgressFlap(c.Code, attempt) {
			env.faultMetrics().Inject(string(faults.KindFlap))
			err = fmt.Errorf("faults: egress %v flapped during validation (injected)", vp.Egress)
		}
		if err == nil {
			return vp, attempt + 1, nil
		}
	}
	return nil, maxVantageAttempts, err
}

// fetchStack assembles the per-country fetch pipeline: the vantage's
// raw fetcher, the fault injector when a plan is active, and the
// retrying fetcher on top — classification-driven retries with capped,
// seed-jittered backoff, drawing on the pool's study-wide retry
// budget.
func (env *Env) fetchStack(inner fetch.Fetcher, pool *sched.Pool) *fetch.Retrier {
	if env.Faults != nil {
		inner = &faults.Fetcher{Inner: inner, Plan: env.Faults, Metrics: env.faultMetrics()}
	}
	r := &fetch.Retrier{
		Inner: inner,
		Policy: fetch.RetryPolicy{
			MaxAttempts: env.Config.RetryAttempts,
			Seed:        env.Config.Seed,
		},
		Metrics: env.fetchMetrics(),
	}
	if b := pool.RetryBudget(); b != nil {
		r.Budget = b
	}
	return r
}

// runCountry performs the §3 pipeline for one country; every fetch and
// annotation runs on the shared pool. Collection failures degrade
// gracefully: an unvalidatable vantage yields a Failed stats entry
// (the study continues without the country), and per-URL failures
// classify into the stats' coverage taxonomy instead of vanishing.
func (env *Env) runCountry(ctx context.Context, c *world.Country, pool *sched.Pool) ([]dataset.URLRecord, *dataset.CountryStats, map[govclass.URLMethod]int, error) {
	cfg := env.Config
	landings := env.Estate.LandingURLs[c.Code]
	stats := &dataset.CountryStats{
		Country:     c.Code,
		Region:      c.Region,
		LandingURLs: len(landings),
	}

	pm := env.pipelineMetrics()
	var timings metrics.CountryTimings

	// §3.2: connect through an in-country VPN vantage and validate its
	// claimed location before trusting it; reconnect on failure.
	stageStart := time.Now()
	vp, attempts, vErr := env.connectVantage(c)
	timings.Vantage = time.Since(stageStart)
	stats.VantageAttempts = attempts
	if vErr != nil {
		stats.Failed = true
		stats.FailureReason = fmt.Sprintf("vantage validation: %v", vErr)
		pm.RecordCountry(c.Code, metrics.CountryCounters{VantageAttempts: int64(attempts)}, true, nil)
		pm.RecordCountryTimings(c.Code, timings)
		pm.ObserveStage("vantage", timings.Vantage)
		return nil, stats, nil, nil
	}

	retrier := env.fetchStack(vp.Fetcher, pool)
	cr := &crawler.Crawler{
		Fetcher: retrier,
		Config: crawler.Config{
			MaxDepth: cfg.CrawlDepth,
			MaxURLs:  cfg.MaxURLsPerCrawl,
			Country:  c.Code,
			VPN:      vp.VPN,
		},
		Pool:    pool,
		Metrics: env.crawlMetrics(),
	}
	stageStart = time.Now()
	archive, err := cr.Crawl(ctx, landings)
	timings.Crawl = time.Since(stageStart)
	if err != nil {
		return nil, nil, nil, err
	}

	// Coverage accounting: every crawled URL either produced a usable
	// entry or a classified failure.
	stats.Attempted = len(archive.Entries)
	for i := range archive.Entries {
		if f := archive.Entries[i].Failure; f != "" {
			stats.AddFailure(f)
		}
	}

	// §3.3: identify internal government URLs.
	stageStart = time.Now()
	classifier := env.urlClassifier(c)
	methods := make(map[govclass.URLMethod]int)
	landingSet := make(map[string]bool, len(landings))
	for _, l := range landings {
		landingSet[l] = true
	}

	// Candidates index into the archive rather than copying entries: the
	// annotation fan-out only needs to read them, and the archive is
	// immutable once the crawl returns. Discarded and unusable entries
	// are tallied so the per-country accounting identity
	// (Attempted == Records + Failures + Discarded + Unusable) closes.
	type candidate struct {
		idx    int
		method govclass.URLMethod
	}
	var candidates []candidate
	var discarded, unusable int64
	for i := range archive.Entries {
		entry := &archive.Entries[i]
		// Failure covers the degraded-but-200 cases (truncation): an
		// entry is either a coverage loss or a record, never both.
		if entry.Status != 200 || entry.Failure != "" {
			if entry.Failure == "" {
				unusable++ // e.g. a 404: healthy fetch, no usable body
			}
			continue
		}
		method := classifier.Classify(entry.Host)
		if !landingSet[entry.URL] {
			methods[method]++
		}
		if method == govclass.MethodDiscarded {
			discarded++
			continue
		}
		candidates = append(candidates, candidate{idx: i, method: method})
	}
	timings.Classify = time.Since(stageStart)

	// Annotation fans out through the same bounded pool as the fetches;
	// workers write into their own index so assembly order stays the
	// archive's deterministic order, not completion order. Records are
	// then compacted in place — the fan-out buffer is the result slice.
	recs := make([]dataset.URLRecord, len(candidates))
	errs := make([]error, len(candidates))
	stageStart = time.Now()
	pool.Each(ctx, len(candidates), func(i int) {
		recs[i], errs[i] = env.annotate(c, archive.Entries[candidates[i].idx])
	})
	timings.Annotate = time.Since(stageStart)
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	records := recs[:0]
	hostSeen := map[string]bool{}
	for i := range recs {
		if errs[i] != nil {
			// Unresolvable hostnames drop out of the records, as in any
			// crawl — but no longer silently: resolution failures are
			// coverage losses too.
			kind := fetch.ClassifyError(errs[i])
			if kind == fetch.FailOther {
				kind = fetch.FailDNS // annotation errors are resolution failures
			}
			stats.AddFailure(string(kind))
			continue
		}
		recs[i].Method = string(candidates[i].method)
		records = append(records, recs[i])
		hostSeen[archive.Entries[candidates[i].idx].Host] = true
	}

	stats.InternalURLs = methods[govclass.MethodTLD] + methods[govclass.MethodDomain] + methods[govclass.MethodSAN]
	stats.Hostnames = len(hostSeen)
	stats.Retries = int(retrier.Stats().Retries)

	pm.RecordCountry(c.Code, metrics.CountryCounters{
		Attempted:       int64(stats.Attempted),
		Records:         int64(len(records)),
		Failures:        int64(stats.FailedURLs),
		Discarded:       discarded,
		Unusable:        unusable,
		Retries:         int64(stats.Retries),
		VantageAttempts: int64(stats.VantageAttempts),
	}, false, stats.Failures)
	pm.RecordCountryTimings(c.Code, timings)
	pm.ObserveStage("vantage", timings.Vantage)
	pm.ObserveStage("crawl", timings.Crawl)
	pm.ObserveStage("classify", timings.Classify)
	pm.ObserveStage("annotate", timings.Annotate)
	return records, stats, methods, nil
}

// annotate resolves one crawled URL to its serving infrastructure
// (Table 2) and validated location. Resolution goes through the
// study-wide cache, so each distinct hostname — resolvable or not — is
// looked up once across all countries.
func (env *Env) annotate(c *world.Country, entry har.Entry) (dataset.URLRecord, error) {
	env.pipelineMetrics().RecordAnnotation()
	rec := dataset.URLRecord{
		URL:     entry.URL,
		Host:    entry.Host,
		Country: c.Code,
		Region:  c.Region,
		Bytes:   entry.BodySize,
		Depth:   entry.Depth,
	}

	ip, wrec, err := env.resolutions.resolve(entry.Host, env.resolveHost)
	if err != nil {
		return rec, err
	}
	rec.IP = ip
	rec.ASN = wrec.ASN
	rec.Org = wrec.Org
	rec.RegCountry = wrec.Country
	if site := env.Estate.Site(entry.Host); site != nil {
		rec.HTTPSValid = site.HTTPSValid
	}

	// §3.5: geolocate and validate.
	if env.Manycast.IsAnycast(rec.IP) {
		rec.Anycast = true
		v := env.geolocateAnycast(c, rec.IP)
		rec.ServeCountry, rec.GeoMethod = v.Country, string(v.Method)
	} else {
		v := env.geolocateUnicast(rec.IP)
		rec.ServeCountry, rec.GeoMethod = v.Country, string(v.Method)
	}
	return rec, nil
}

func (env *Env) geolocateAnycast(c *world.Country, ip netip.Addr) probing.Verdict {
	if env.Config.TrustIPInfo {
		return env.trustIPInfoVerdict(ip, true)
	}
	return env.Prober.GeolocateAnycast(c, ip)
}

func (env *Env) geolocateUnicast(ip netip.Addr) probing.Verdict {
	if env.Config.TrustIPInfo {
		return env.trustIPInfoVerdict(ip, false)
	}
	return env.Prober.GeolocateUnicast(ip)
}

func (env *Env) trustIPInfoVerdict(ip netip.Addr, anycast bool) probing.Verdict {
	v := probing.Verdict{Addr: ip, Anycast: anycast, Method: "IPINFO"}
	if e, ok := env.IPInfo.Lookup(ip); ok {
		v.Country = e.Country
	}
	return v
}

// urlClassifier builds the §3.3 classifier for one country.
func (env *Env) urlClassifier(c *world.Country) *govclass.URLClassifier {
	landingHosts := make(map[string]bool)
	for _, l := range env.Estate.LandingURLs[c.Code] {
		landingHosts[har.HostOf(l)] = true
	}
	sanHosts := map[string]string{}
	if !env.Config.DisableSAN {
		for _, s := range env.Estate.GovSites(c.Code) {
			if s.Cert == nil {
				continue
			}
			for _, san := range s.Cert.SANs {
				sanHosts[san] = s.Cert.Subject
			}
		}
	}
	return &govclass.URLClassifier{
		LandingHosts: landingHosts,
		SANHosts:     sanHosts,
		VerifySAN: func(host string) bool {
			// The manual-verification oracle: a SAN hostname survives
			// only when it genuinely belongs to the government estate.
			site := env.Estate.Site(host)
			return site != nil && site.Kind != webgen.KindContractor && site.Kind != webgen.KindTopsite
		},
	}
}

// sortRecords orders records deterministically (by country, then URL).
// sort.Slice, not slices.SortFunc: the generic sort copies whole
// records around while the reflect-based one swaps in place, and at
// ~230 bytes per record the copies dominate.
func sortRecords(recs []dataset.URLRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Country != recs[j].Country {
			return recs[i].Country < recs[j].Country
		}
		return recs[i].URL < recs[j].URL
	})
}
