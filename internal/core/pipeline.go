package core

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/crawler"
	"repro/internal/dataset"
	"repro/internal/govclass"
	"repro/internal/har"
	"repro/internal/probing"
	"repro/internal/vantage"
	"repro/internal/webgen"
	"repro/internal/whois"
	"repro/internal/world"
)

// Run executes the full study and returns the annotated dataset.
func Run(ctx context.Context, cfg Config) (*dataset.Dataset, error) {
	env := NewEnv(cfg)
	return env.Run(ctx)
}

// Run executes the pipeline against an already-built environment.
func (env *Env) Run(ctx context.Context) (*dataset.Dataset, error) {
	cfg := env.Config
	countries := env.studyCountries()

	ds := &dataset.Dataset{
		PerCountry: make(map[string]*dataset.CountryStats),
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
	}

	type countryResult struct {
		stats   *dataset.CountryStats
		records []dataset.URLRecord
		methods map[govclass.URLMethod]int
		err     error
	}

	results := make([]countryResult, len(countries))
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for i, c := range countries {
		wg.Add(1)
		go func(i int, c *world.Country) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			recs, stats, methods, err := env.runCountry(ctx, c)
			results[i] = countryResult{stats: stats, records: recs, methods: methods, err: err}
		}(i, c)
	}
	wg.Wait()

	for i, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("core: country %s: %w", countries[i].Code, res.err)
		}
		ds.Records = append(ds.Records, res.records...)
		ds.PerCountry[countries[i].Code] = res.stats
		ds.MethodTLD += res.methods[govclass.MethodTLD]
		ds.MethodDomain += res.methods[govclass.MethodDomain]
		ds.MethodSAN += res.methods[govclass.MethodSAN]
		ds.Discarded += res.methods[govclass.MethodDiscarded]
	}

	if !cfg.SkipTopsites {
		if err := env.runTopsites(ctx, ds); err != nil {
			return nil, err
		}
	}

	assignCategories(env, ds)
	fillTotals(env, ds)
	return ds, nil
}

// studyCountries resolves the configured country subset.
func (env *Env) studyCountries() []*world.Country {
	var out []*world.Country
	if len(env.Config.Countries) == 0 {
		for _, c := range env.World.Panel() {
			if c.Landing > 0 {
				out = append(out, c)
			}
		}
		return out
	}
	for _, code := range env.Config.Countries {
		c := env.World.MustCountry(code)
		if c.Landing > 0 {
			out = append(out, c)
		}
	}
	return out
}

// runCountry performs the §3 pipeline for one country.
func (env *Env) runCountry(ctx context.Context, c *world.Country) ([]dataset.URLRecord, *dataset.CountryStats, map[govclass.URLMethod]int, error) {
	cfg := env.Config

	// §3.2: connect through an in-country VPN vantage and validate its
	// claimed location before trusting it.
	vp := vantage.Connect(c, env.Estate, env.Net, cfg.Seed)
	if err := vp.ValidateLocation(env.Net); err != nil {
		return nil, nil, nil, fmt.Errorf("vantage validation: %w", err)
	}

	landings := env.Estate.LandingURLs[c.Code]
	cr := &crawler.Crawler{
		Fetcher: vp.Fetcher,
		Config: crawler.Config{
			MaxDepth:    cfg.CrawlDepth,
			Concurrency: cfg.Concurrency,
			Country:     c.Code,
			VPN:         vp.VPN,
		},
	}
	archive, err := cr.Crawl(ctx, landings)
	if err != nil {
		return nil, nil, nil, err
	}

	// §3.3: identify internal government URLs.
	classifier := env.urlClassifier(c)
	methods := make(map[govclass.URLMethod]int)
	landingSet := make(map[string]bool, len(landings))
	for _, l := range landings {
		landingSet[l] = true
	}

	var records []dataset.URLRecord
	hostSeen := map[string]bool{}
	resCache := map[string]resolved{}
	for _, entry := range archive.Entries {
		if entry.Status != 200 {
			continue
		}
		method := classifier.Classify(entry.Host)
		internal := !landingSet[entry.URL]
		if internal {
			methods[method]++
		}
		if method == govclass.MethodDiscarded {
			continue
		}
		rec, err := env.annotate(c, entry, resCache)
		if err != nil {
			continue // unresolvable hostnames drop out, as in any crawl
		}
		rec.Method = string(method)
		records = append(records, rec)
		hostSeen[entry.Host] = true
	}

	stats := &dataset.CountryStats{
		Country:      c.Code,
		Region:       c.Region,
		LandingURLs:  len(landings),
		InternalURLs: methods[govclass.MethodTLD] + methods[govclass.MethodDomain] + methods[govclass.MethodSAN],
		Hostnames:    len(hostSeen),
	}
	return records, stats, methods, nil
}

// resolved caches per-hostname annotation lookups within one country.
type resolved struct {
	ip  netip.Addr
	rec whois.Record
}

// annotate resolves one crawled URL to its serving infrastructure
// (Table 2) and validated location.
func (env *Env) annotate(c *world.Country, entry har.Entry, cache map[string]resolved) (dataset.URLRecord, error) {
	rec := dataset.URLRecord{
		URL:     entry.URL,
		Host:    entry.Host,
		Country: c.Code,
		Region:  c.Region,
		Bytes:   entry.BodySize,
		Depth:   entry.Depth,
	}

	rv, ok := cache[entry.Host]
	if !ok {
		res, err := env.Zones.Resolve(entry.Host)
		if err != nil {
			return rec, err
		}
		wrec, found := env.WhoisDB.Lookup(res.Addr)
		if !found {
			return rec, fmt.Errorf("no WHOIS record for %v", res.Addr)
		}
		rv = resolved{ip: res.Addr, rec: wrec}
		cache[entry.Host] = rv
	}
	rec.IP = rv.ip
	rec.ASN = rv.rec.ASN
	rec.Org = rv.rec.Org
	rec.RegCountry = rv.rec.Country
	if site := env.Estate.Site(entry.Host); site != nil {
		rec.HTTPSValid = site.HTTPSValid
	}

	// §3.5: geolocate and validate.
	if env.Manycast.IsAnycast(rec.IP) {
		rec.Anycast = true
		v := env.geolocateAnycast(c, rec.IP)
		rec.ServeCountry, rec.GeoMethod = v.Country, string(v.Method)
	} else {
		v := env.geolocateUnicast(rec.IP)
		rec.ServeCountry, rec.GeoMethod = v.Country, string(v.Method)
	}
	return rec, nil
}

func (env *Env) geolocateAnycast(c *world.Country, ip netip.Addr) probing.Verdict {
	if env.Config.TrustIPInfo {
		return env.trustIPInfoVerdict(ip, true)
	}
	return env.Prober.GeolocateAnycast(c, ip)
}

func (env *Env) geolocateUnicast(ip netip.Addr) probing.Verdict {
	if env.Config.TrustIPInfo {
		return env.trustIPInfoVerdict(ip, false)
	}
	return env.Prober.GeolocateUnicast(ip)
}

func (env *Env) trustIPInfoVerdict(ip netip.Addr, anycast bool) probing.Verdict {
	v := probing.Verdict{Addr: ip, Anycast: anycast, Method: "IPINFO"}
	if e, ok := env.IPInfo.Lookup(ip); ok {
		v.Country = e.Country
	}
	return v
}

// urlClassifier builds the §3.3 classifier for one country.
func (env *Env) urlClassifier(c *world.Country) *govclass.URLClassifier {
	landingHosts := make(map[string]bool)
	for _, l := range env.Estate.LandingURLs[c.Code] {
		landingHosts[har.HostOf(l)] = true
	}
	sanHosts := map[string]string{}
	if !env.Config.DisableSAN {
		for _, s := range env.Estate.GovSites(c.Code) {
			if s.Cert == nil {
				continue
			}
			for _, san := range s.Cert.SANs {
				sanHosts[san] = s.Cert.Subject
			}
		}
	}
	return &govclass.URLClassifier{
		LandingHosts: landingHosts,
		SANHosts:     sanHosts,
		VerifySAN: func(host string) bool {
			// The manual-verification oracle: a SAN hostname survives
			// only when it genuinely belongs to the government estate.
			site := env.Estate.Site(host)
			return site != nil && site.Kind != webgen.KindContractor && site.Kind != webgen.KindTopsite
		},
	}
}

// sortRecords orders records deterministically (by country, then URL).
func sortRecords(recs []dataset.URLRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Country != recs[j].Country {
			return recs[i].Country < recs[j].Country
		}
		return recs[i].URL < recs[j].URL
	})
}
