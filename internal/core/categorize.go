package core

import (
	"net/netip"

	"repro/internal/dataset"
	"repro/internal/govclass"
	"repro/internal/whois"
	"repro/internal/world"
)

// assignCategories derives each record's provider category from the
// measured evidence (§5.1):
//
//   - networks classified as government/SOE → Govt&SOE,
//   - networks observed serving governments across multiple
//     continents → 3P Global,
//   - networks registered in the country they serve → 3P Local,
//   - everything else → 3P Regional.
//
// Top-site records use the Appendix D variant: the CNAME/SAN
// self-hosting heuristic takes the place of the Govt&SOE class.
func assignCategories(env *Env, ds *dataset.Dataset) {
	classifier := &govclass.ASClassifier{
		PDB: env.PDB,
		Search: func(org string) (govclass.SearchResult, bool) {
			res, ok := env.Net.Search[org]
			if !ok {
				return govclass.SearchResult{}, false
			}
			return govclass.SearchResult{Website: res.Website, Snippet: res.Snippet}, true
		},
	}

	// One representative WHOIS record per ASN is enough to classify
	// the operating entity.
	repIP := map[int]netip.Addr{}
	for i := range ds.Records {
		if _, ok := repIP[ds.Records[i].ASN]; !ok {
			repIP[ds.Records[i].ASN] = ds.Records[i].IP
		}
	}
	for i := range ds.Topsites {
		if _, ok := repIP[ds.Topsites[i].ASN]; !ok {
			repIP[ds.Topsites[i].ASN] = ds.Topsites[i].IP
		}
	}
	govAS := map[int]bool{}
	for asn, ip := range repIP {
		rec, ok := env.WhoisDB.Lookup(ip)
		if !ok {
			rec = whois.Record{ASN: asn}
		}
		isGov, _ := classifier.Classify(rec)
		govAS[asn] = isGov
	}

	// Continental span per ASN, measured over the governments it
	// serves.
	span := map[int]map[string]bool{}
	for i := range ds.Records {
		r := &ds.Records[i]
		c := env.World.Country(r.Country)
		if c == nil {
			continue
		}
		if span[r.ASN] == nil {
			span[r.ASN] = map[string]bool{}
		}
		span[r.ASN][c.Region.Continent()] = true
	}

	for i := range ds.Records {
		r := &ds.Records[i]
		r.GovAS = govAS[r.ASN]
		switch {
		case r.GovAS:
			r.Category = world.CatGovtSOE
		// The paper identifies 28 global providers through manual
		// inspection; the catalogue check mirrors that curation so
		// that restricted country subsets (where the observed span
		// cannot cross continents) classify them correctly too.
		case len(span[r.ASN]) > 1 || isGlobalProviderASN(env, r.ASN):
			r.Category = world.Cat3PGlobal
		case r.RegCountry == r.Country:
			r.Category = world.Cat3PLocal
		default:
			r.Category = world.Cat3PRegional
		}
	}

	for i := range ds.Topsites {
		r := &ds.Topsites[i]
		switch {
		case r.TopsiteSelf:
			r.Category = world.CatGovtSOE // "Self-Hosting" in Appendix D terms
		case len(span[r.ASN]) > 1 || isGlobalProviderASN(env, r.ASN):
			r.Category = world.Cat3PGlobal
		case r.RegCountry == r.Country:
			r.Category = world.Cat3PLocal
		default:
			r.Category = world.Cat3PRegional
		}
	}
}

// isGlobalProviderASN checks the provider catalogue directly; top-site
// hosting can land on providers that no government in the subset uses.
func isGlobalProviderASN(env *Env, asn int) bool {
	for _, p := range env.Net.Providers {
		if p.ASN == asn {
			return true
		}
	}
	return false
}
