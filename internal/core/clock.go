package core

import "time"

// The pipeline's wall-clock reads live here, behind audited
// determinism-taint barriers. Stage and country timings feed the
// Runtime metrics half (stage histograms, CountryTimings) and never
// reach dataset, export or deterministic-snapshot bytes — the chaos
// suite and the sharded byte-identity matrix prove that dynamically.
// Keeping the reads in two one-line helpers keeps the barriers narrow:
// a new time.Now anywhere else in core taints every deterministic
// caller of the pipeline again and must either take an injected value
// or earn its own reasoned barrier.

// runtimeNow stamps the start of a pipeline stage.
//
//lint:ignore determinism-taint -- stage timing for the Runtime metrics half only; dataset bytes stay seed-pure (chaos-proved)
func runtimeNow() time.Time { return time.Now() }

// runtimeSince measures a stage duration for the Runtime metrics half.
//
//lint:ignore determinism-taint -- stage timing for the Runtime metrics half only; dataset bytes stay seed-pure (chaos-proved)
func runtimeSince(start time.Time) time.Duration { return time.Since(start) }
