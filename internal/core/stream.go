package core

import (
	"net/netip"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/fetch"
	"repro/internal/govclass"
	"repro/internal/metrics"
	"repro/internal/probing"
	"repro/internal/whois"
)

// hostTally is one hostname's share of a country's annotation pass:
// how many resolutions the country issued for it and, when the
// resolution failed, the failure classification. The counts are
// deterministic (the candidate multiset is a pure function of the
// seed); they feed the canonical cache attribution the checkpoint
// stores.
type hostTally struct {
	lookups  int64
	failKind string // "" = resolved
}

// countryDone is one finished country on its way into the merge sink:
// fresh from runCountry (fork carries its deterministic metric
// contribution), reloaded from a checkpoint (loadedDelta carries it),
// or a transient failure row synthesized for a country a dead shard
// owned (never persisted — the failure is a fact about this run's
// crashes, not about the seed).
type countryDone struct {
	code    string
	stats   *dataset.CountryStats
	records []dataset.URLRecord
	methods map[govclass.URLMethod]int
	hosts   map[string]*hostTally

	fork   *metrics.Registry   // fresh country's attributable counters; nil when metrics are off
	loaded *checkpoint.Country // set for resume-loaded countries

	// loadedDelta is a reloaded country's full deterministic
	// contribution — its stored fork-only delta plus its recomputed
	// share of the shared caches — fixed at complete() time, while the
	// sink's union sets still advance in sorted-code load order.
	loadedDelta metrics.Deterministic

	transient bool // synthesized failure row: flush must not persist it
	parked    bool // sat in pending behind an earlier country
}

// anycastSeenKey keys the sink's anycast union set; anycast verdicts
// are vantage-dependent, so the key mirrors the prober's.
type anycastSeenKey struct {
	vantage string
	addr    netip.Addr
}

// mergeSink consumes completed countries and applies them to the
// dataset in one fixed order — sorted country code — regardless of
// completion order. A country completing out of turn parks in pending
// (raising the records-in-flight gauge) until every earlier country
// has flushed; the rank-0 country can never park, so the gauge's
// high-water mark is strictly below the study's total record count.
// Flushing appends records (already URL-sorted per country) in sorted
// country order, so the dataset's record slice leaves the sink in its
// canonical order without a final global sort.
//
// When a checkpoint store is attached, each fresh flush also persists
// the country together with its directly-attributable deterministic
// delta (the fork's counters) and its per-hostname resolution
// outcomes. Shares of the shared caches are deliberately not stored:
// they depend on which other countries are stored, which a shard
// worker cannot know — another shard process may be claiming the same
// hosts concurrently. Instead, the loading run recomputes each
// reloaded country's share against its own union sets, in sorted-code
// load order. Every shared quantity is set-level (misses = distinct
// hosts, hits = lookups − distinct, negative entries = distinct failed
// hosts, geolocation analogously per address), so the recomputed
// totals are independent of attribution order — the property that
// makes one-process resume, multi-generation resume and multi-shard
// assembly all land on the same bytes.
type mergeSink struct {
	env     *Env
	ds      *dataset.Dataset
	store   *checkpoint.Store
	rank    map[string]int
	pending []*countryDone
	next    int

	seenHosts map[string]bool
	seenUni   map[netip.Addr]bool
	seenAny   map[anycastSeenKey]bool
}

// newMergeSink builds a sink for the study's country set. The flush
// order is the sorted code order, not the configured order, so the
// dataset assembles identically however -countries was spelled.
func newMergeSink(env *Env, ds *dataset.Dataset, store *checkpoint.Store, codes []string) *mergeSink {
	sorted := append([]string(nil), codes...)
	sort.Strings(sorted)
	rank := make(map[string]int, len(sorted))
	for i, code := range sorted {
		rank[code] = i
	}
	return &mergeSink{
		env: env, ds: ds, store: store,
		rank:      rank,
		pending:   make([]*countryDone, len(sorted)),
		seenHosts: map[string]bool{},
		seenUni:   map[netip.Addr]bool{},
		seenAny:   map[anycastSeenKey]bool{},
	}
}

// complete hands one finished country to the sink, flushing it and any
// unblocked successors. Callers must serialise complete/drain calls
// (Env.Run guards them with one mutex across the coordinator team).
func (s *mergeSink) complete(d *countryDone) error {
	r := s.rank[d.code]
	s.pending[r] = d
	if d.loaded != nil {
		// Recompute the reloaded country's shared-cache share now, not
		// at flush: all loaded completes run in sorted-code order before
		// any worker starts, so the union-set claims are deterministic
		// however fresh countries later interleave.
		d.loadedDelta = s.loadedDelta(d.loaded)
	}
	if r != s.next && d.loaded == nil {
		// Fresh completed work waiting on an earlier country is the
		// memory the streaming bound is about; loaded countries are
		// replays of already-persisted work, not new buffering.
		d.parked = true
		s.env.pipelineMetrics().RecordsInFlight(int64(len(d.records)))
	}
	for s.next < len(s.pending) && s.pending[s.next] != nil {
		if err := s.flush(s.pending[s.next]); err != nil {
			return err
		}
		s.pending[s.next] = nil
		s.next++
	}
	return nil
}

// drain flushes every parked country in rank order, skipping gaps —
// the cancellation path: countries that finished while later (in rank
// order, earlier) ones were still crawling get persisted instead of
// thrown away. Attribution stays canonical because the union sets
// advance in the same store order a resuming run will see.
func (s *mergeSink) drain() error {
	for r := s.next; r < len(s.pending); r++ {
		if s.pending[r] == nil {
			continue
		}
		if err := s.flush(s.pending[r]); err != nil {
			return err
		}
		s.pending[r] = nil
	}
	return nil
}

// flush applies one country to the dataset, absorbs its deterministic
// metric contribution into the study registry, and — for fresh
// countries with a store attached — persists it.
//
// The three paths feed the registry differently on purpose. A fresh
// country adds only its fork: its shared-cache share was already
// recorded live (the caches' ledgers stay attached to the study
// registry in every run, and a seeded entry reads as a plain hit, so
// live recording telescopes with loaded deltas by itself). A reloaded
// country ran nothing live, so its recomputed delta — stored fork plus
// this run's union-set share — re-enters wholesale. A transient
// failure row carries no metrics and is never persisted: which shard
// died is a fact about this run's crashes, not about the seed, so it
// must not poison future resumes of the directory.
func (s *mergeSink) flush(d *countryDone) error {
	if d.parked {
		s.env.pipelineMetrics().RecordsInFlight(-int64(len(d.records)))
	}
	s.ds.Records = append(s.ds.Records, d.records...)
	s.ds.PerCountry[d.code] = d.stats
	s.ds.MethodTLD += d.methods[govclass.MethodTLD]
	s.ds.MethodDomain += d.methods[govclass.MethodDomain]
	s.ds.MethodSAN += d.methods[govclass.MethodSAN]
	s.ds.Discarded += d.methods[govclass.MethodDiscarded]

	switch {
	case d.loaded != nil:
		s.env.metrics.AddDeterministic(d.loadedDelta)
	case d.transient:
		// Nothing: the synthesized row's pipeline accounting was
		// recorded directly by the caller.
	default:
		var forkDelta metrics.Deterministic
		if d.fork != nil {
			forkDelta = d.fork.Snapshot().Deterministic
			s.env.metrics.AddDeterministic(forkDelta)
		}
		if s.store != nil {
			cp := checkpoint.Country{
				Code:    d.code,
				Stats:   d.stats,
				Records: d.records,
				Delta:   forkDelta,
			}
			if len(d.methods) > 0 {
				cp.Methods = make(map[string]int, len(d.methods))
				for m, n := range d.methods {
					cp.Methods[string(m)] = n
				}
			}
			for _, h := range sortedHostKeys(d.hosts) {
				if t := d.hosts[h]; t.failKind != "" {
					cp.FailedHosts = append(cp.FailedHosts, checkpoint.HostOutcome{Host: h, FailKind: t.failKind, Lookups: t.lookups})
				}
			}
			if err := s.store.Put(cp); err != nil {
				return err
			}
		}
	}
	if s.env.afterFlush != nil {
		s.env.afterFlush(d.code)
	}
	return nil
}

// loadedDelta is a reloaded country's full deterministic contribution:
// the stored fork-only delta (scheduler items, fetches, retries,
// fetch-kind and egress-flap injections, frontier, pipeline rows) plus
// its share of the shared resolution and geolocation caches,
// recomputed against this run's union sets. The per-host tallies
// reconstruct exactly from the stored state — a resolved host's
// lookups equal its record count (resolution is cached per host, so
// its annotation outcomes are all-or-nothing) and failed hosts carry
// their counts explicitly.
func (s *mergeSink) loadedDelta(lc *checkpoint.Country) metrics.Deterministic {
	delta := lc.Delta
	hosts := make(map[string]*hostTally, len(lc.Records)+len(lc.FailedHosts))
	for i := range lc.Records {
		t := hosts[lc.Records[i].Host]
		if t == nil {
			t = &hostTally{}
			hosts[lc.Records[i].Host] = t
		}
		t.lookups++
	}
	for _, h := range lc.FailedHosts {
		hosts[h.Host] = &hostTally{lookups: h.Lookups, failKind: h.FailKind}
	}

	replayDNS := s.env.Faults != nil && s.env.Faults.Profile.DNSServfail > 0
	for _, h := range sortedHostKeys(hosts) {
		t := hosts[h]
		delta.Cache.Lookups += t.lookups
		if !s.seenHosts[h] {
			s.seenHosts[h] = true
			delta.Cache.Misses++
			delta.Cache.Hits += t.lookups - 1
			if t.failKind != "" {
				delta.Cache.NegativeEntries++
				delta.Cache.NegativeHits += t.lookups - 1
			}
			if replayDNS {
				// The study-wide resolver records SERVFAIL injections
				// live for the host's first resolver; the rolls are
				// stateless hashes of (host, attempt), so the claiming
				// country's delta replays them exactly.
				if n := s.dnsInjectionsFor(h); n > 0 {
					if delta.Faults.Injections == nil {
						delta.Faults.Injections = map[string]int64{}
					}
					delta.Faults.Injections[string(faults.KindServfail)] += n
				}
			}
		} else {
			delta.Cache.Hits += t.lookups
			if t.failKind != "" {
				delta.Cache.NegativeHits += t.lookups
			}
		}
	}

	if !s.env.Config.TrustIPInfo {
		s.addGeoDelta(lc.Code, lc.Records, &delta)
	}
	return delta
}

// addGeoDelta attributes the country's share of the geolocation
// verdict caches, reconstructed from its records: every record issued
// exactly one verdict lookup, keyed by address (unicast) or by
// (vantage, address) (anycast), negative when the verdict is UR/EX.
func (s *mergeSink) addGeoDelta(code string, records []dataset.URLRecord, delta *metrics.Deterministic) {
	type tally struct {
		lookups  int64
		negative bool
	}
	uni := map[netip.Addr]*tally{}
	anyc := map[netip.Addr]*tally{}
	for i := range records {
		r := &records[i]
		m := uni
		if r.Anycast {
			m = anyc
		}
		t := m[r.IP]
		if t == nil {
			t = &tally{}
			m[r.IP] = t
		}
		t.lookups++
		t.negative = r.GeoMethod == string(probing.MethodUnresolved) || r.GeoMethod == string(probing.MethodExcluded)
	}
	fold := func(c *metrics.CacheCounters, m map[netip.Addr]*tally, seen func(netip.Addr) bool) {
		addrs := make([]netip.Addr, 0, len(m))
		for a := range m {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		for _, a := range addrs {
			t := m[a]
			c.Lookups += t.lookups
			if !seen(a) {
				c.Misses++
				c.Hits += t.lookups - 1
				if t.negative {
					c.NegativeEntries++
					c.NegativeHits += t.lookups - 1
				}
			} else {
				c.Hits += t.lookups
				if t.negative {
					c.NegativeHits += t.lookups
				}
			}
		}
	}
	fold(&delta.Geo.Unicast, uni, func(a netip.Addr) bool {
		if s.seenUni[a] {
			return true
		}
		s.seenUni[a] = true
		return false
	})
	fold(&delta.Geo.Anycast, anyc, func(a netip.Addr) bool {
		k := anycastSeenKey{vantage: code, addr: a}
		if s.seenAny[k] {
			return true
		}
		s.seenAny[k] = true
		return false
	})
}

// dnsInjectionsFor replays the resolver's per-attempt fault rolls for
// one hostname — the same loop faultyResolve runs, counting the
// injected SERVFAILs before the first clean attempt.
func (s *mergeSink) dnsInjectionsFor(host string) int64 {
	var n int64
	for attempt := 0; attempt < resolveAttempts; attempt++ {
		if s.env.Faults.DNSFault(host, attempt) != nil {
			n++
			continue
		}
		break
	}
	return n
}

// seedFromCheckpoint replays one stored country's shared-cache
// outcomes without recording any metric events: resolutions (positive
// from the records, negative from the failed-host list) and
// geolocation verdicts. The metric side arrives separately, through
// the stored delta, so a resumed run's ledger matches an uninterrupted
// one's.
func (env *Env) seedFromCheckpoint(c *checkpoint.Country) {
	for i := range c.Records {
		r := &c.Records[i]
		env.resolutions.seed(r.Host, r.IP, whois.Record{ASN: r.ASN, Org: r.Org, Country: r.RegCountry}, nil)
		if env.Config.TrustIPInfo {
			continue
		}
		// IPInfoCountry and MinRTT are not in the record, so the seeded
		// verdict drops them — nothing downstream of the cache reads
		// either field.
		v := probing.Verdict{
			Addr: r.IP, Anycast: r.Anycast,
			Country: r.ServeCountry, Method: probing.Method(r.GeoMethod),
		}
		if r.Anycast {
			env.Prober.SeedAnycast(r.Country, r.IP, v)
		} else {
			env.Prober.SeedUnicast(r.IP, v)
		}
	}
	for _, h := range c.FailedHosts {
		env.resolutions.seed(h.Host, netip.Addr{}, whois.Record{}, seededErr{kind: fetch.FailKind(h.FailKind)})
	}
}

// seededErr replays a checkpointed resolution failure. It implements
// fetch.Failure, so fetch.ClassifyError round-trips the stored kind
// exactly and a resuming country's coverage stats classify the failure
// the same way the original run did.
type seededErr struct{ kind fetch.FailKind }

func (e seededErr) Error() string {
	return "core: resolution failed in checkpointed run (" + string(e.kind) + ")"
}

// FailKind implements fetch.Failure.
func (e seededErr) FailKind() fetch.FailKind { return e.kind }

// sortedHostKeys returns the tally map's hostnames sorted, so the
// union-set walk — and therefore the stored attribution — is
// deterministic.
func sortedHostKeys(m map[string]*hostTally) []string {
	out := make([]string, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
