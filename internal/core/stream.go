package core

import (
	"net/netip"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/fetch"
	"repro/internal/govclass"
	"repro/internal/metrics"
	"repro/internal/probing"
	"repro/internal/whois"
)

// hostTally is one hostname's share of a country's annotation pass:
// how many resolutions the country issued for it and, when the
// resolution failed, the failure classification. The counts are
// deterministic (the candidate multiset is a pure function of the
// seed); they feed the canonical cache attribution the checkpoint
// stores.
type hostTally struct {
	lookups  int64
	failKind string // "" = resolved
}

// countryDone is one finished country on its way into the merge sink:
// either fresh from runCountry (fork carries its deterministic metric
// contribution) or reloaded from a checkpoint (delta carries it).
type countryDone struct {
	code    string
	stats   *dataset.CountryStats
	records []dataset.URLRecord
	methods map[govclass.URLMethod]int
	hosts   map[string]*hostTally

	fork   *metrics.Registry   // fresh country's attributable counters; nil when metrics are off
	loaded *checkpoint.Country // set for resume-loaded countries

	parked bool // sat in pending behind an earlier country
}

// anycastSeenKey keys the sink's anycast union set; anycast verdicts
// are vantage-dependent, so the key mirrors the prober's.
type anycastSeenKey struct {
	vantage string
	addr    netip.Addr
}

// mergeSink consumes completed countries and applies them to the
// dataset in one fixed order — sorted country code — regardless of
// completion order. A country completing out of turn parks in pending
// (raising the records-in-flight gauge) until every earlier country
// has flushed; the rank-0 country can never park, so the gauge's
// high-water mark is strictly below the study's total record count.
// Flushing appends records (already URL-sorted per country) in sorted
// country order, so the dataset's record slice leaves the sink in its
// canonical order without a final global sort.
//
// When a checkpoint store is attached, each fresh flush also persists
// the country together with its deterministic metric delta: the fork's
// directly-attributable counters plus a canonical share of the shared
// caches, computed against the sink's union sets in store order (the
// first stored country to touch a host/address owns its miss). The
// deltas telescope — summed over any stored subset and combined with
// the live counters of the re-run remainder, totals equal an
// uninterrupted run's.
type mergeSink struct {
	env     *Env
	ds      *dataset.Dataset
	store   *checkpoint.Store
	rank    map[string]int
	pending []*countryDone
	next    int

	seenHosts map[string]bool
	seenUni   map[netip.Addr]bool
	seenAny   map[anycastSeenKey]bool
}

// newMergeSink builds a sink for the study's country set. The flush
// order is the sorted code order, not the configured order, so the
// dataset assembles identically however -countries was spelled.
func newMergeSink(env *Env, ds *dataset.Dataset, store *checkpoint.Store, codes []string) *mergeSink {
	sorted := append([]string(nil), codes...)
	sort.Strings(sorted)
	rank := make(map[string]int, len(sorted))
	for i, code := range sorted {
		rank[code] = i
	}
	return &mergeSink{
		env: env, ds: ds, store: store,
		rank:      rank,
		pending:   make([]*countryDone, len(sorted)),
		seenHosts: map[string]bool{},
		seenUni:   map[netip.Addr]bool{},
		seenAny:   map[anycastSeenKey]bool{},
	}
}

// complete hands one finished country to the sink, flushing it and any
// unblocked successors. Callers must serialise complete/drain calls
// (Env.Run guards them with one mutex across the coordinator team).
func (s *mergeSink) complete(d *countryDone) error {
	r := s.rank[d.code]
	s.pending[r] = d
	if d.loaded != nil {
		// The stored delta already claimed this country's share of the
		// shared caches; mark its hosts and addresses in the union sets
		// now — before any fresh country flushes — so a later
		// generation's stored deltas cannot claim the same misses twice.
		s.markLoaded(d.loaded)
	}
	if r != s.next && d.loaded == nil {
		// Fresh completed work waiting on an earlier country is the
		// memory the streaming bound is about; loaded countries are
		// replays of already-persisted work, not new buffering.
		d.parked = true
		s.env.pipelineMetrics().RecordsInFlight(int64(len(d.records)))
	}
	for s.next < len(s.pending) && s.pending[s.next] != nil {
		if err := s.flush(s.pending[s.next]); err != nil {
			return err
		}
		s.pending[s.next] = nil
		s.next++
	}
	return nil
}

// drain flushes every parked country in rank order, skipping gaps —
// the cancellation path: countries that finished while later (in rank
// order, earlier) ones were still crawling get persisted instead of
// thrown away. Attribution stays canonical because the union sets
// advance in the same store order a resuming run will see.
func (s *mergeSink) drain() error {
	for r := s.next; r < len(s.pending); r++ {
		if s.pending[r] == nil {
			continue
		}
		if err := s.flush(s.pending[r]); err != nil {
			return err
		}
		s.pending[r] = nil
	}
	return nil
}

// markLoaded enters a reloaded country's hostnames and addresses into
// the sink's union sets. Its stored delta owns their misses, so fresh
// countries (and therefore their newly stored deltas) must see them as
// already claimed.
func (s *mergeSink) markLoaded(lc *checkpoint.Country) {
	for i := range lc.Records {
		r := &lc.Records[i]
		s.seenHosts[r.Host] = true
		if r.Anycast {
			s.seenAny[anycastSeenKey{vantage: lc.Code, addr: r.IP}] = true
		} else {
			s.seenUni[r.IP] = true
		}
	}
	for _, h := range lc.FailedHosts {
		s.seenHosts[h.Host] = true
	}
}

// flush applies one country to the dataset, absorbs its deterministic
// metric contribution into the study registry, and — for fresh
// countries with a store attached — persists it.
//
// The two paths feed the registry differently on purpose. A fresh
// country adds only its fork: its shared-cache share was already
// recorded live (the caches' ledgers stay attached to the study
// registry in every run, and a seeded entry reads as a plain hit, so
// live recording telescopes with loaded deltas by itself). A reloaded
// country ran nothing live, so its stored delta — fork plus canonical
// cache share — re-enters wholesale.
func (s *mergeSink) flush(d *countryDone) error {
	if d.parked {
		s.env.pipelineMetrics().RecordsInFlight(-int64(len(d.records)))
	}
	s.ds.Records = append(s.ds.Records, d.records...)
	s.ds.PerCountry[d.code] = d.stats
	s.ds.MethodTLD += d.methods[govclass.MethodTLD]
	s.ds.MethodDomain += d.methods[govclass.MethodDomain]
	s.ds.MethodSAN += d.methods[govclass.MethodSAN]
	s.ds.Discarded += d.methods[govclass.MethodDiscarded]

	if d.loaded != nil {
		// A reloaded country's shared-cache work was already canonical
		// when stored; its delta re-enters wholesale. (Seeding happened
		// before the workers started, metric-free.)
		s.env.metrics.AddDeterministic(d.loaded.Delta)
	} else {
		if d.fork != nil {
			s.env.metrics.AddDeterministic(d.fork.Snapshot().Deterministic)
		}
		if s.store != nil {
			cp := checkpoint.Country{
				Code:    d.code,
				Stats:   d.stats,
				Records: d.records,
				Delta:   s.canonicalDelta(d),
			}
			if len(d.methods) > 0 {
				cp.Methods = make(map[string]int, len(d.methods))
				for m, n := range d.methods {
					cp.Methods[string(m)] = n
				}
			}
			for _, h := range sortedHostKeys(d.hosts) {
				if t := d.hosts[h]; t.failKind != "" {
					cp.FailedHosts = append(cp.FailedHosts, checkpoint.HostOutcome{Host: h, FailKind: t.failKind})
				}
			}
			if err := s.store.Put(cp); err != nil {
				return err
			}
		}
	}
	if s.env.afterFlush != nil {
		s.env.afterFlush(d.code)
	}
	return nil
}

// canonicalDelta is the country's full deterministic contribution: the
// fork's directly-attributable counters (scheduler items, fetches,
// retries, fetch-kind and egress-flap injections, frontier, pipeline
// rows) plus its canonical share of the shared resolution and
// geolocation caches. The shared share is what the live study registry
// recorded during the crawl only in aggregate — here it is re-derived
// per country against the sink's union sets, so stored deltas sum to
// the aggregate no matter which subset is stored.
func (s *mergeSink) canonicalDelta(d *countryDone) metrics.Deterministic {
	var delta metrics.Deterministic
	if d.fork != nil {
		delta = d.fork.Snapshot().Deterministic
	}

	replayDNS := s.env.Faults != nil && s.env.Faults.Profile.DNSServfail > 0
	for _, h := range sortedHostKeys(d.hosts) {
		t := d.hosts[h]
		delta.Cache.Lookups += t.lookups
		if !s.seenHosts[h] {
			s.seenHosts[h] = true
			delta.Cache.Misses++
			delta.Cache.Hits += t.lookups - 1
			if t.failKind != "" {
				delta.Cache.NegativeEntries++
				delta.Cache.NegativeHits += t.lookups - 1
			}
			if replayDNS {
				// The study-wide resolver recorded this host's SERVFAIL
				// injections live; the rolls are stateless hashes of
				// (host, attempt), so the owning country's delta replays
				// them exactly.
				if n := s.dnsInjectionsFor(h); n > 0 {
					if delta.Faults.Injections == nil {
						delta.Faults.Injections = map[string]int64{}
					}
					delta.Faults.Injections[string(faults.KindServfail)] += n
				}
			}
		} else {
			delta.Cache.Hits += t.lookups
			if t.failKind != "" {
				delta.Cache.NegativeHits += t.lookups
			}
		}
	}

	if !s.env.Config.TrustIPInfo {
		s.addGeoDelta(d, &delta)
	}
	return delta
}

// addGeoDelta attributes the country's share of the geolocation
// verdict caches, reconstructed from its records: every record issued
// exactly one verdict lookup, keyed by address (unicast) or by
// (vantage, address) (anycast), negative when the verdict is UR/EX.
func (s *mergeSink) addGeoDelta(d *countryDone, delta *metrics.Deterministic) {
	type tally struct {
		lookups  int64
		negative bool
	}
	uni := map[netip.Addr]*tally{}
	anyc := map[netip.Addr]*tally{}
	for i := range d.records {
		r := &d.records[i]
		m := uni
		if r.Anycast {
			m = anyc
		}
		t := m[r.IP]
		if t == nil {
			t = &tally{}
			m[r.IP] = t
		}
		t.lookups++
		t.negative = r.GeoMethod == string(probing.MethodUnresolved) || r.GeoMethod == string(probing.MethodExcluded)
	}
	fold := func(c *metrics.CacheCounters, m map[netip.Addr]*tally, seen func(netip.Addr) bool) {
		addrs := make([]netip.Addr, 0, len(m))
		for a := range m {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		for _, a := range addrs {
			t := m[a]
			c.Lookups += t.lookups
			if !seen(a) {
				c.Misses++
				c.Hits += t.lookups - 1
				if t.negative {
					c.NegativeEntries++
					c.NegativeHits += t.lookups - 1
				}
			} else {
				c.Hits += t.lookups
				if t.negative {
					c.NegativeHits += t.lookups
				}
			}
		}
	}
	fold(&delta.Geo.Unicast, uni, func(a netip.Addr) bool {
		if s.seenUni[a] {
			return true
		}
		s.seenUni[a] = true
		return false
	})
	fold(&delta.Geo.Anycast, anyc, func(a netip.Addr) bool {
		k := anycastSeenKey{vantage: d.code, addr: a}
		if s.seenAny[k] {
			return true
		}
		s.seenAny[k] = true
		return false
	})
}

// dnsInjectionsFor replays the resolver's per-attempt fault rolls for
// one hostname — the same loop faultyResolve runs, counting the
// injected SERVFAILs before the first clean attempt.
func (s *mergeSink) dnsInjectionsFor(host string) int64 {
	var n int64
	for attempt := 0; attempt < resolveAttempts; attempt++ {
		if s.env.Faults.DNSFault(host, attempt) != nil {
			n++
			continue
		}
		break
	}
	return n
}

// seedFromCheckpoint replays one stored country's shared-cache
// outcomes without recording any metric events: resolutions (positive
// from the records, negative from the failed-host list) and
// geolocation verdicts. The metric side arrives separately, through
// the stored delta, so a resumed run's ledger matches an uninterrupted
// one's.
func (env *Env) seedFromCheckpoint(c *checkpoint.Country) {
	for i := range c.Records {
		r := &c.Records[i]
		env.resolutions.seed(r.Host, r.IP, whois.Record{ASN: r.ASN, Org: r.Org, Country: r.RegCountry}, nil)
		if env.Config.TrustIPInfo {
			continue
		}
		// IPInfoCountry and MinRTT are not in the record, so the seeded
		// verdict drops them — nothing downstream of the cache reads
		// either field.
		v := probing.Verdict{
			Addr: r.IP, Anycast: r.Anycast,
			Country: r.ServeCountry, Method: probing.Method(r.GeoMethod),
		}
		if r.Anycast {
			env.Prober.SeedAnycast(r.Country, r.IP, v)
		} else {
			env.Prober.SeedUnicast(r.IP, v)
		}
	}
	for _, h := range c.FailedHosts {
		env.resolutions.seed(h.Host, netip.Addr{}, whois.Record{}, seededErr{kind: fetch.FailKind(h.FailKind)})
	}
}

// seededErr replays a checkpointed resolution failure. It implements
// fetch.Failure, so fetch.ClassifyError round-trips the stored kind
// exactly and a resuming country's coverage stats classify the failure
// the same way the original run did.
type seededErr struct{ kind fetch.FailKind }

func (e seededErr) Error() string {
	return "core: resolution failed in checkpointed run (" + string(e.kind) + ")"
}

// FailKind implements fetch.Failure.
func (e seededErr) FailKind() fetch.FailKind { return e.kind }

// sortedHostKeys returns the tally map's hostnames sorted, so the
// union-set walk — and therefore the stored attribution — is
// deterministic.
func sortedHostKeys(m map[string]*hostTally) []string {
	out := make([]string, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
