package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/shard"
)

// runShardWorker executes one shard worker in-process against a shared
// checkpoint directory. killAfter > 0 cancels the worker the moment
// its killAfter-th country flushes — the in-process stand-in for a
// crashed worker process.
func runShardWorker(t *testing.T, cfg Config, dir string, index, shards, killAfter int) {
	t.Helper()
	cfg.CheckpointDir = dir
	cfg.ShardIndex = index
	cfg.ShardCount = shards
	cfg.Resume = true
	env := NewEnv(cfg)
	ctx := context.Background()
	if killAfter > 0 {
		kctx, cancel := context.WithCancel(ctx)
		defer cancel()
		flushes := 0
		env.afterFlush = func(string) {
			flushes++
			if flushes == killAfter {
				cancel()
			}
		}
		if _, err := env.Run(kctx); err == nil {
			t.Fatalf("shard %d/%d killed after %d flushes reported success", index, shards, killAfter)
		}
		return
	}
	if _, err := env.Run(ctx); err != nil {
		t.Fatalf("shard %d/%d: %v", index, shards, err)
	}
}

// assemble runs the final assembly pass over a shard checkpoint
// directory and returns its artifacts plus the Env for metric
// introspection.
func assemble(t *testing.T, cfg Config, dir string, failCountries []string) (jsonl, csv, det []byte, env *Env) {
	t.Helper()
	cfg.CheckpointDir = dir
	cfg.Resume = true
	cfg.FailCountries = failCountries
	env = NewEnv(cfg)
	ds, err := env.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	jsonl, csv = exportBytes(t, ds)
	det, err = env.Metrics().Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csv, det, env
}

// storedCountryFiles lists the country checkpoint files in dir, in
// sorted-code order.
func storedCountryFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if name := e.Name(); name != "manifest.json" && strings.HasSuffix(name, ".json") {
			out = append(out, name)
		}
	}
	return out
}

// corruptStored damages one stored country file (the middle one, so
// the victim is deterministic but not always rank 0) and returns its
// name.
func corruptStored(t *testing.T, dir, mode string) string {
	t.Helper()
	stored := storedCountryFiles(t, dir)
	if len(stored) == 0 {
		t.Fatal("no stored countries to corrupt")
	}
	victim := stored[len(stored)/2]
	path := filepath.Join(dir, victim)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	switch mode {
	case "truncate":
		raw = raw[:len(raw)/3]
	case "flip":
		raw[len(raw)/2] ^= 0x40
	default:
		t.Fatalf("unknown corruption mode %q", mode)
	}
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestShardedAssemblyByteIdentical is the tentpole guarantee: a
// sharded run — workers killed at every completion boundary and
// restarted, checkpoint files truncated or bit-flipped between the
// workers and the assembly — must assemble the very bytes an
// uninterrupted single-process same-seed run exports, at 1-, 2- and
// 4-shard shapes.
func TestShardedAssemblyByteIdentical(t *testing.T) {
	cfg := chaosConfig() // three countries, aggressive faults
	wantJSONL, wantCSV, wantDet := baselineArtifacts(t, cfg)
	codes := append([]string(nil), cfg.Countries...)

	for _, shards := range []int{1, 2, 4} {
		// Shard 0 owns the most countries, so it has the most
		// completion boundaries to kill at.
		boundaries := len(shard.Owned(codes, 0, shards))
		for _, mode := range []string{"none", "truncate", "flip"} {
			for kill := 1; kill <= boundaries; kill++ {
				dir := t.TempDir()
				// Crash shard 0 at its kill-th completion boundary,
				// then restart it — the supervisor's job, inlined.
				runShardWorker(t, cfg, dir, 0, shards, kill)
				for s := 0; s < shards; s++ {
					runShardWorker(t, cfg, dir, s, shards, 0)
				}
				if mode != "none" {
					victim := corruptStored(t, dir, mode)
					t.Logf("shards=%d mode=%s kill@%d: corrupted %s", shards, mode, kill, victim)
				}
				jsonl, csv, det, env := assemble(t, cfg, dir, nil)
				tag := "shards=%d mode=%s kill@%d"
				if !bytes.Equal(jsonl, wantJSONL) {
					t.Errorf("JSONL diverged: "+tag, shards, mode, kill)
				}
				if !bytes.Equal(csv, wantCSV) {
					t.Errorf("CSV diverged: "+tag, shards, mode, kill)
				}
				if !bytes.Equal(det, wantDet) {
					t.Errorf("deterministic metrics diverged: "+tag, shards, mode, kill)
				}
				if mode != "none" {
					if got := env.Metrics().Snapshot().Runtime.Shard.CheckpointsQuarantined; got != 1 {
						t.Errorf("quarantine counter = %d, want 1: "+tag, got, shards, mode, kill)
					}
				}
			}
		}
	}
}

// TestShardedAssemblyRunsTopsites: the assembly pass of a sharded run
// must reproduce a full single-process run including the Appendix D
// topsites baseline — workers always skip topsites, assembly runs
// them.
func TestShardedAssemblyRunsTopsites(t *testing.T) {
	cfg := chaosConfig()
	cfg.SkipTopsites = false
	wantJSONL, wantCSV, wantDet := baselineArtifacts(t, cfg)

	dir := t.TempDir()
	for s := 0; s < 2; s++ {
		runShardWorker(t, cfg, dir, s, 2, 0)
	}
	jsonl, csv, det, _ := assemble(t, cfg, dir, nil)
	if !bytes.Equal(jsonl, wantJSONL) {
		t.Error("JSONL diverged with topsites enabled")
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Error("CSV diverged with topsites enabled")
	}
	if !bytes.Equal(det, wantDet) {
		t.Error("deterministic metrics diverged with topsites enabled")
	}
}

// TestShardedDegradedPartialDataset: when a shard exhausts its restart
// budget, the assembly emits a partial dataset with typed failure rows
// for its uncollected countries — and countries the dead shard did
// checkpoint before dying still load normally.
func TestShardedDegradedPartialDataset(t *testing.T) {
	cfg := chaosConfig()
	codes := append([]string(nil), cfg.Countries...)
	dir := t.TempDir()
	// Shard 0 of 2 finishes; shard 1 never produces anything.
	runShardWorker(t, cfg, dir, 0, 2, 0)

	deadOwned := shard.Owned(codes, 1, 2)
	acfg := cfg
	acfg.CheckpointDir = dir
	acfg.Resume = true
	acfg.FailCountries = deadOwned
	env := NewEnv(acfg)
	out, err := env.Run(context.Background())
	if err != nil {
		t.Fatalf("degraded assembly must succeed with a partial dataset, got: %v", err)
	}
	for _, code := range deadOwned {
		st := out.PerCountry[code]
		if st == nil || !st.Failed {
			t.Fatalf("dead shard's country %s lacks a typed failure row: %+v", code, st)
		}
		if !strings.Contains(st.FailureReason, "restart budget") {
			t.Fatalf("country %s failure reason %q does not name the restart budget", code, st.FailureReason)
		}
		if len(out.Records) > 0 {
			for _, r := range out.Records {
				if r.Country == code {
					t.Fatalf("failed country %s has records in the partial dataset", code)
				}
			}
		}
	}
	// The surviving shard's countries are intact.
	for _, code := range shard.Owned(codes, 0, 2) {
		st := out.PerCountry[code]
		if st == nil || st.Failed {
			t.Fatalf("surviving country %s missing or failed: %+v", code, st)
		}
	}
	// Failure accounting reaches the deterministic ledger.
	snap := env.Metrics().Snapshot()
	if got := snap.Deterministic.Pipeline.CountriesFailed; got < int64(len(deadOwned)) {
		t.Fatalf("countries_failed = %d, want >= %d", got, len(deadOwned))
	}
	// The failure rows are transient: nothing new was persisted, so a
	// later full assembly (no FailCountries) re-runs the countries and
	// reproduces the uninterrupted baseline exactly.
	wantJSONL, _, wantDet := baselineArtifacts(t, cfg)
	jsonl, _, det, _ := assemble(t, cfg, dir, nil)
	if !bytes.Equal(jsonl, wantJSONL) {
		t.Error("JSONL diverged after recovering from a degraded run")
	}
	if !bytes.Equal(det, wantDet) {
		t.Error("deterministic metrics diverged after recovering from a degraded run")
	}
}

// TestShardedFailCountriesAlreadyStoredLoadNormally: listing a country
// that did checkpoint before its shard died must not fail it — stored
// work always wins.
func TestShardedFailCountriesAlreadyStoredLoadNormally(t *testing.T) {
	cfg := chaosConfig()
	codes := append([]string(nil), cfg.Countries...)
	wantJSONL, _, wantDet := baselineArtifacts(t, cfg)

	dir := t.TempDir()
	for s := 0; s < 2; s++ {
		runShardWorker(t, cfg, dir, s, 2, 0)
	}
	// Every country is stored; flag shard 1's as failed anyway.
	jsonl, _, det, env := assemble(t, cfg, dir, shard.Owned(codes, 1, 2))
	if !bytes.Equal(jsonl, wantJSONL) {
		t.Error("JSONL diverged when FailCountries named stored countries")
	}
	if !bytes.Equal(det, wantDet) {
		t.Error("deterministic metrics diverged when FailCountries named stored countries")
	}
	if got := env.Metrics().Snapshot().Runtime.Shard.CheckpointsQuarantined; got != 0 {
		t.Errorf("quarantine counter = %d, want 0", got)
	}
}
