package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/govclass"
	"repro/internal/world"
)

// runSubset executes the pipeline for a handful of countries at a
// small scale; the subset covers every region.
func runSubset(t testing.TB, cfg Config) *dataset.Dataset {
	t.Helper()
	if cfg.Scale == 0 {
		cfg.Scale = 0.03
	}
	if len(cfg.Countries) == 0 {
		cfg.Countries = []string{"US", "MX", "DE", "UY", "IN", "JP", "NG", "EG", "FR"}
	}
	ds, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPipelineProducesAnnotatedRecords(t *testing.T) {
	ds := runSubset(t, Config{})
	if len(ds.Records) == 0 {
		t.Fatal("no records")
	}
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.URL == "" || r.Host == "" || r.Country == "" {
			t.Fatalf("incomplete identity: %+v", r)
		}
		if !r.IP.IsValid() || r.ASN == 0 || r.Org == "" || r.RegCountry == "" {
			t.Fatalf("incomplete infrastructure annotation (Table 2 fields): %+v", r)
		}
		if r.Method == "" || r.Method == string(govclass.MethodDiscarded) {
			t.Fatalf("record with bad classification method: %+v", r)
		}
		if r.Bytes <= 0 {
			t.Fatalf("record without bytes: %+v", r)
		}
	}
}

func TestPipelineDiscardsContractors(t *testing.T) {
	ds := runSubset(t, Config{})
	if ds.Discarded == 0 {
		t.Fatal("no URLs discarded; the §3.3 filter never fired")
	}
	for i := range ds.Records {
		if strings.Contains(ds.Records[i].Host, "websolutions") ||
			strings.Contains(ds.Records[i].Host, "trackmetrics") {
			t.Fatalf("contractor leaked into the dataset: %s", ds.Records[i].Host)
		}
	}
}

func TestPipelineMethodYields(t *testing.T) {
	ds := runSubset(t, Config{})
	if ds.MethodTLD == 0 || ds.MethodDomain == 0 {
		t.Fatalf("method yields degenerate: tld=%d domain=%d", ds.MethodTLD, ds.MethodDomain)
	}
	total := ds.MethodTLD + ds.MethodDomain + ds.MethodSAN
	domainShare := float64(ds.MethodDomain) / float64(total)
	if domainShare < 0.3 || domainShare > 0.95 {
		t.Fatalf("domain-matching share %.2f outside plausible band", domainShare)
	}
}

func TestPipelineSANDiscovery(t *testing.T) {
	ds := runSubset(t, Config{Scale: 0.05})
	if ds.MethodSAN == 0 {
		t.Fatal("no SAN-discovered URLs; the Table 1 third step never fired")
	}
	off, err := Run(context.Background(), Config{Scale: 0.05, DisableSAN: true,
		Countries: []string{"US", "MX", "DE", "UY", "IN", "JP", "NG", "EG", "FR"}})
	if err != nil {
		t.Fatal(err)
	}
	if off.MethodSAN != 0 {
		t.Fatalf("DisableSAN still classified %d URLs via SANs", off.MethodSAN)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	a := runSubset(t, Config{})
	b := runSubset(t, Config{})
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		x, y := &a.Records[i], &b.Records[i]
		if x.URL != y.URL || x.IP != y.IP || x.Category != y.Category ||
			x.ServeCountry != y.ServeCountry || x.GeoMethod != y.GeoMethod {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestPipelineSeedChangesOutput(t *testing.T) {
	a := runSubset(t, Config{Seed: 42})
	b := runSubset(t, Config{Seed: 43})
	if len(a.Records) == len(b.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i].IP != b.Records[i].IP {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical studies")
		}
	}
}

func TestCategoriesConsistentWithEvidence(t *testing.T) {
	ds := runSubset(t, Config{})
	for i := range ds.Records {
		r := &ds.Records[i]
		switch r.Category {
		case world.CatGovtSOE:
			if !r.GovAS {
				t.Fatalf("Govt&SOE record on a non-government AS: %+v", r)
			}
		case world.Cat3PLocal:
			if r.RegCountry != r.Country {
				t.Fatalf("3P Local record with foreign registration: %+v", r)
			}
			if r.GovAS {
				t.Fatalf("3P Local record on a government AS: %+v", r)
			}
		case world.Cat3PRegional:
			if r.RegCountry == r.Country || r.GovAS {
				t.Fatalf("3P Regional record inconsistent: %+v", r)
			}
		}
	}
}

func TestUruguayMatchesPaperExample(t *testing.T) {
	ds := runSubset(t, Config{})
	// Table 2's example: a Uruguayan government URL on ANTEL with
	// domestic registration and geolocation.
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.Country == "UY" && r.ASN == 6057 {
			if r.RegCountry != "UY" {
				t.Fatalf("ANTEL registered in %s", r.RegCountry)
			}
			if r.ServeCountry != "" && r.ServeCountry != "UY" {
				t.Fatalf("ANTEL-hosted URL served from %s", r.ServeCountry)
			}
			return
		}
	}
	t.Skip("no ANTEL-hosted URL at this scale")
}

func TestFranceNewCaledoniaDependency(t *testing.T) {
	ds := runSubset(t, Config{Scale: 0.05})
	var fr, nc int
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.Country != "FR" || r.ServeCountry == "" {
			continue
		}
		fr++
		if r.ServeCountry == "NC" {
			nc++
			if r.Host != "gouv.nc" {
				t.Fatalf("NC-served French URL on unexpected host %s", r.Host)
			}
		}
	}
	if fr == 0 {
		t.Fatal("no French records")
	}
	share := float64(nc) / float64(fr)
	if share < 0.08 || share > 0.35 {
		t.Fatalf("FR→NC share = %.3f, want ≈0.18 (§6.3)", share)
	}
}

func TestTopsitesCollectedOnlyForComparisonSubset(t *testing.T) {
	ds := runSubset(t, Config{})
	if len(ds.Topsites) == 0 {
		t.Fatal("no top-site records")
	}
	allowed := map[string]bool{"US": true, "MX": true, "FR": true, "IN": true, "JP": true, "EG": true}
	for i := range ds.Topsites {
		r := &ds.Topsites[i]
		if !allowed[r.Country] {
			t.Fatalf("top-site record for %s, outside configured∩Table-6", r.Country)
		}
		if r.Depth > 1 {
			t.Fatalf("top-site crawl went below one level: %+v", r)
		}
	}
}

func TestSkipTopsites(t *testing.T) {
	ds := runSubset(t, Config{SkipTopsites: true})
	if len(ds.Topsites) != 0 {
		t.Fatalf("SkipTopsites left %d records", len(ds.Topsites))
	}
}

func TestTrustIPInfoAblation(t *testing.T) {
	verified := runSubset(t, Config{})
	blind := runSubset(t, Config{TrustIPInfo: true})
	known := func(ds *dataset.Dataset) float64 {
		n := 0
		for i := range ds.Records {
			if ds.Records[i].ServeCountry != "" {
				n++
			}
		}
		return float64(n) / float64(len(ds.Records))
	}
	// Trusting the database blindly geolocates everything (it has an
	// answer for every address), while the verified pipeline excludes
	// what it cannot confirm.
	if known(blind) < known(verified) {
		t.Fatalf("blind trust located fewer URLs (%.3f) than verification (%.3f)",
			known(blind), known(verified))
	}
	for i := range blind.Records {
		if blind.Records[i].GeoMethod == "AP" || blind.Records[i].GeoMethod == "MG" {
			t.Fatal("ablation still ran active verification")
		}
	}
}

func TestPerCountryStatsPresent(t *testing.T) {
	ds := runSubset(t, Config{})
	for _, code := range []string{"US", "MX", "DE", "UY"} {
		st := ds.PerCountry[code]
		if st == nil || st.LandingURLs == 0 || st.Hostnames == 0 {
			t.Fatalf("per-country stats for %s missing or empty: %+v", code, st)
		}
	}
}

func TestTotalsConsistent(t *testing.T) {
	ds := runSubset(t, Config{})
	if ds.TotalUniqueURLs == 0 || ds.TotalHostnames == 0 || ds.UniqueIPs == 0 {
		t.Fatalf("zero totals: %+v", ds)
	}
	if ds.GovASes > ds.ASes {
		t.Fatalf("more government ASes (%d) than ASes (%d)", ds.GovASes, ds.ASes)
	}
	if ds.AnycastIPs > ds.UniqueIPs {
		t.Fatal("more anycast IPs than IPs")
	}
	if ds.TotalHostnames > ds.TotalUniqueURLs {
		t.Fatal("more hostnames than URLs")
	}
}

func TestRecordsSorted(t *testing.T) {
	ds := runSubset(t, Config{})
	for i := 1; i < len(ds.Records); i++ {
		a, b := &ds.Records[i-1], &ds.Records[i]
		if a.Country > b.Country || (a.Country == b.Country && a.URL > b.URL) {
			t.Fatalf("records not sorted at %d: %s/%s then %s/%s", i, a.Country, a.URL, b.Country, b.URL)
		}
	}
}

func TestCrawlDepthOverride(t *testing.T) {
	deep := runSubset(t, Config{})
	shallow := runSubset(t, Config{CrawlDepth: 1})
	if len(shallow.Records) >= len(deep.Records) {
		t.Fatalf("depth-1 crawl (%d records) not smaller than depth-7 (%d)",
			len(shallow.Records), len(deep.Records))
	}
	for i := range shallow.Records {
		if shallow.Records[i].Depth > 1 {
			t.Fatal("depth override ignored")
		}
	}
}

func TestGlobalThresholdAblation(t *testing.T) {
	baseline := runSubset(t, Config{})
	ablated := runSubset(t, Config{GlobalThresholdMS: 30})
	geoKnown := func(ds *dataset.Dataset) int {
		n := 0
		for i := range ds.Records {
			if ds.Records[i].ServeCountry != "" {
				n++
			}
		}
		return n
	}
	// The ablation must actually change validation behaviour; with a
	// generous 30 ms global threshold more distant servers pass the
	// check than with road-derived per-country thresholds.
	if geoKnown(ablated) == geoKnown(baseline) {
		t.Log("warning: identical validation counts; acceptable but unusual")
	}
	for i := range ablated.Records {
		if ablated.Records[i].GeoMethod == "" {
			t.Fatal("ablated run skipped geolocation entirely")
		}
	}
}

func TestTrendYearsAtCoreLevel(t *testing.T) {
	now := runSubset(t, Config{SkipTopsites: true})
	future := runSubset(t, Config{SkipTopsites: true, TrendYears: 8})
	share := func(ds *dataset.Dataset) float64 {
		var global, total float64
		for i := range ds.Records {
			if ds.Records[i].Category == world.Cat3PGlobal {
				global++
			}
			total++
		}
		return global / total
	}
	if share(future) <= share(now) {
		t.Fatalf("trend did not raise the global share: %.3f -> %.3f", share(now), share(future))
	}
}
