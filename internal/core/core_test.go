package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/govclass"
	"repro/internal/har"
	"repro/internal/whois"
	"repro/internal/world"
)

// runSubset executes the pipeline for a handful of countries at a
// small scale; the subset covers every region.
func runSubset(t testing.TB, cfg Config) *dataset.Dataset {
	t.Helper()
	if cfg.Scale == 0 {
		cfg.Scale = 0.03
	}
	if len(cfg.Countries) == 0 {
		cfg.Countries = []string{"US", "MX", "DE", "UY", "IN", "JP", "NG", "EG", "FR"}
	}
	ds, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPipelineProducesAnnotatedRecords(t *testing.T) {
	ds := runSubset(t, Config{})
	if len(ds.Records) == 0 {
		t.Fatal("no records")
	}
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.URL == "" || r.Host == "" || r.Country == "" {
			t.Fatalf("incomplete identity: %+v", r)
		}
		if !r.IP.IsValid() || r.ASN == 0 || r.Org == "" || r.RegCountry == "" {
			t.Fatalf("incomplete infrastructure annotation (Table 2 fields): %+v", r)
		}
		if r.Method == "" || r.Method == string(govclass.MethodDiscarded) {
			t.Fatalf("record with bad classification method: %+v", r)
		}
		if r.Bytes <= 0 {
			t.Fatalf("record without bytes: %+v", r)
		}
	}
}

func TestPipelineDiscardsContractors(t *testing.T) {
	ds := runSubset(t, Config{})
	if ds.Discarded == 0 {
		t.Fatal("no URLs discarded; the §3.3 filter never fired")
	}
	for i := range ds.Records {
		if strings.Contains(ds.Records[i].Host, "websolutions") ||
			strings.Contains(ds.Records[i].Host, "trackmetrics") {
			t.Fatalf("contractor leaked into the dataset: %s", ds.Records[i].Host)
		}
	}
}

func TestPipelineMethodYields(t *testing.T) {
	ds := runSubset(t, Config{})
	if ds.MethodTLD == 0 || ds.MethodDomain == 0 {
		t.Fatalf("method yields degenerate: tld=%d domain=%d", ds.MethodTLD, ds.MethodDomain)
	}
	total := ds.MethodTLD + ds.MethodDomain + ds.MethodSAN
	domainShare := float64(ds.MethodDomain) / float64(total)
	if domainShare < 0.3 || domainShare > 0.95 {
		t.Fatalf("domain-matching share %.2f outside plausible band", domainShare)
	}
}

func TestPipelineSANDiscovery(t *testing.T) {
	ds := runSubset(t, Config{Scale: 0.05})
	if ds.MethodSAN == 0 {
		t.Fatal("no SAN-discovered URLs; the Table 1 third step never fired")
	}
	off, err := Run(context.Background(), Config{Scale: 0.05, DisableSAN: true,
		Countries: []string{"US", "MX", "DE", "UY", "IN", "JP", "NG", "EG", "FR"}})
	if err != nil {
		t.Fatal(err)
	}
	if off.MethodSAN != 0 {
		t.Fatalf("DisableSAN still classified %d URLs via SANs", off.MethodSAN)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	a := runSubset(t, Config{})
	b := runSubset(t, Config{})
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		x, y := &a.Records[i], &b.Records[i]
		if x.URL != y.URL || x.IP != y.IP || x.Category != y.Category ||
			x.ServeCountry != y.ServeCountry || x.GeoMethod != y.GeoMethod {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestPipelineSeedChangesOutput(t *testing.T) {
	a := runSubset(t, Config{Seed: 42})
	b := runSubset(t, Config{Seed: 43})
	if len(a.Records) == len(b.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i].IP != b.Records[i].IP {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical studies")
		}
	}
}

func TestCategoriesConsistentWithEvidence(t *testing.T) {
	ds := runSubset(t, Config{})
	for i := range ds.Records {
		r := &ds.Records[i]
		switch r.Category {
		case world.CatGovtSOE:
			if !r.GovAS {
				t.Fatalf("Govt&SOE record on a non-government AS: %+v", r)
			}
		case world.Cat3PLocal:
			if r.RegCountry != r.Country {
				t.Fatalf("3P Local record with foreign registration: %+v", r)
			}
			if r.GovAS {
				t.Fatalf("3P Local record on a government AS: %+v", r)
			}
		case world.Cat3PRegional:
			if r.RegCountry == r.Country || r.GovAS {
				t.Fatalf("3P Regional record inconsistent: %+v", r)
			}
		}
	}
}

func TestUruguayMatchesPaperExample(t *testing.T) {
	ds := runSubset(t, Config{})
	// Table 2's example: a Uruguayan government URL on ANTEL with
	// domestic registration and geolocation.
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.Country == "UY" && r.ASN == 6057 {
			if r.RegCountry != "UY" {
				t.Fatalf("ANTEL registered in %s", r.RegCountry)
			}
			if r.ServeCountry != "" && r.ServeCountry != "UY" {
				t.Fatalf("ANTEL-hosted URL served from %s", r.ServeCountry)
			}
			return
		}
	}
	t.Skip("no ANTEL-hosted URL at this scale")
}

func TestFranceNewCaledoniaDependency(t *testing.T) {
	ds := runSubset(t, Config{Scale: 0.05})
	var fr, nc int
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.Country != "FR" || r.ServeCountry == "" {
			continue
		}
		fr++
		if r.ServeCountry == "NC" {
			nc++
			if r.Host != "gouv.nc" {
				t.Fatalf("NC-served French URL on unexpected host %s", r.Host)
			}
		}
	}
	if fr == 0 {
		t.Fatal("no French records")
	}
	share := float64(nc) / float64(fr)
	if share < 0.08 || share > 0.35 {
		t.Fatalf("FR→NC share = %.3f, want ≈0.18 (§6.3)", share)
	}
}

func TestTopsitesCollectedOnlyForComparisonSubset(t *testing.T) {
	ds := runSubset(t, Config{})
	if len(ds.Topsites) == 0 {
		t.Fatal("no top-site records")
	}
	allowed := map[string]bool{"US": true, "MX": true, "FR": true, "IN": true, "JP": true, "EG": true}
	for i := range ds.Topsites {
		r := &ds.Topsites[i]
		if !allowed[r.Country] {
			t.Fatalf("top-site record for %s, outside configured∩Table-6", r.Country)
		}
		if r.Depth > 1 {
			t.Fatalf("top-site crawl went below one level: %+v", r)
		}
	}
}

func TestSkipTopsites(t *testing.T) {
	ds := runSubset(t, Config{SkipTopsites: true})
	if len(ds.Topsites) != 0 {
		t.Fatalf("SkipTopsites left %d records", len(ds.Topsites))
	}
}

func TestTrustIPInfoAblation(t *testing.T) {
	verified := runSubset(t, Config{})
	blind := runSubset(t, Config{TrustIPInfo: true})
	known := func(ds *dataset.Dataset) float64 {
		n := 0
		for i := range ds.Records {
			if ds.Records[i].ServeCountry != "" {
				n++
			}
		}
		return float64(n) / float64(len(ds.Records))
	}
	// Trusting the database blindly geolocates everything (it has an
	// answer for every address), while the verified pipeline excludes
	// what it cannot confirm.
	if known(blind) < known(verified) {
		t.Fatalf("blind trust located fewer URLs (%.3f) than verification (%.3f)",
			known(blind), known(verified))
	}
	for i := range blind.Records {
		if blind.Records[i].GeoMethod == "AP" || blind.Records[i].GeoMethod == "MG" {
			t.Fatal("ablation still ran active verification")
		}
	}
}

func TestPerCountryStatsPresent(t *testing.T) {
	ds := runSubset(t, Config{})
	for _, code := range []string{"US", "MX", "DE", "UY"} {
		st := ds.PerCountry[code]
		if st == nil || st.LandingURLs == 0 || st.Hostnames == 0 {
			t.Fatalf("per-country stats for %s missing or empty: %+v", code, st)
		}
	}
}

func TestTotalsConsistent(t *testing.T) {
	ds := runSubset(t, Config{})
	if ds.TotalUniqueURLs == 0 || ds.TotalHostnames == 0 || ds.UniqueIPs == 0 {
		t.Fatalf("zero totals: %+v", ds)
	}
	if ds.GovASes > ds.ASes {
		t.Fatalf("more government ASes (%d) than ASes (%d)", ds.GovASes, ds.ASes)
	}
	if ds.AnycastIPs > ds.UniqueIPs {
		t.Fatal("more anycast IPs than IPs")
	}
	if ds.TotalHostnames > ds.TotalUniqueURLs {
		t.Fatal("more hostnames than URLs")
	}
}

func TestRecordsSorted(t *testing.T) {
	ds := runSubset(t, Config{})
	for i := 1; i < len(ds.Records); i++ {
		a, b := &ds.Records[i-1], &ds.Records[i]
		if a.Country > b.Country || (a.Country == b.Country && a.URL > b.URL) {
			t.Fatalf("records not sorted at %d: %s/%s then %s/%s", i, a.Country, a.URL, b.Country, b.URL)
		}
	}
}

func TestCrawlDepthOverride(t *testing.T) {
	deep := runSubset(t, Config{})
	shallow := runSubset(t, Config{CrawlDepth: 1})
	if len(shallow.Records) >= len(deep.Records) {
		t.Fatalf("depth-1 crawl (%d records) not smaller than depth-7 (%d)",
			len(shallow.Records), len(deep.Records))
	}
	for i := range shallow.Records {
		if shallow.Records[i].Depth > 1 {
			t.Fatal("depth override ignored")
		}
	}
}

func TestGlobalThresholdAblation(t *testing.T) {
	baseline := runSubset(t, Config{})
	ablated := runSubset(t, Config{GlobalThresholdMS: 30})
	geoKnown := func(ds *dataset.Dataset) int {
		n := 0
		for i := range ds.Records {
			if ds.Records[i].ServeCountry != "" {
				n++
			}
		}
		return n
	}
	// The ablation must actually change validation behaviour; with a
	// generous 30 ms global threshold more distant servers pass the
	// check than with road-derived per-country thresholds.
	if geoKnown(ablated) == geoKnown(baseline) {
		t.Log("warning: identical validation counts; acceptable but unusual")
	}
	for i := range ablated.Records {
		if ablated.Records[i].GeoMethod == "" {
			t.Fatal("ablated run skipped geolocation entirely")
		}
	}
}

func TestRunAppliesDefaultsWithoutNewEnv(t *testing.T) {
	// Regression: an Env whose Config skipped withDefaults (a caller
	// mirroring LoadedEnv, or a zero-valued Concurrency) used to build
	// a zero-capacity semaphore and deadlock every worker. Run must
	// normalise its own configuration.
	env := NewEnv(Config{Scale: 0.02, Countries: []string{"UY"}})
	env.Config.Concurrency = 0
	env.Config.CountryConcurrency = 0
	env.Config.FetchConcurrency = 0
	env.resolutions = nil
	env.resolveHost = nil

	done := make(chan error, 1)
	go func() {
		ds, err := env.Run(context.Background())
		if err == nil && len(ds.Records) == 0 {
			err = errors.New("no records")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("Run deadlocked with an unnormalised zero-concurrency config")
	}
	if env.Config.FetchConcurrency <= 0 || env.Config.CountryConcurrency <= 0 {
		t.Fatalf("Run left the budget unnormalised: %+v", env.Config)
	}
}

func TestRunGoroutineCountBoundedByBudget(t *testing.T) {
	// The scheduler must spawn CountryConcurrency + FetchConcurrency
	// workers, not their product: with the old two-level fan-out this
	// configuration would put 9 + 9×4-ish goroutines in flight.
	before := runtime.NumGoroutine()
	const countryBudget, fetchBudget = 2, 4

	var peak atomic.Int64
	stop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	runSubset(t, Config{Scale: 0.02, SkipTopsites: true,
		CountryConcurrency: countryBudget, FetchConcurrency: fetchBudget})
	close(stop)
	probeWG.Wait()

	// Budget + main + probe + modest slack for runtime helpers. The
	// pre-scheduler pipeline peaked at ≥ Concurrency² and fails this
	// bound by an order of magnitude.
	limit := int64(before + countryBudget + fetchBudget + 6)
	if peak.Load() > limit {
		t.Fatalf("goroutine peak %d exceeds budget-derived limit %d", peak.Load(), limit)
	}
}

func TestRunCancellationAbandonsQueuedCountries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{Scale: 0.02, Countries: []string{"US", "MX", "DE", "UY"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnnotateSharedNegativeCache(t *testing.T) {
	env := NewEnv(Config{Scale: 0.02, Countries: []string{"UY"}})
	c := env.World.MustCountry("UY")

	var mu sync.Mutex
	calls := map[string]int{}
	orig := env.resolveHost
	env.resolveHost = func(host string) (netip.Addr, whois.Record, error) {
		mu.Lock()
		calls[host]++
		mu.Unlock()
		if host == "broken.gub.uy" {
			return netip.Addr{}, whois.Record{}, errors.New("NXDOMAIN")
		}
		return orig(host)
	}

	goodHost := har.HostOf(env.Estate.LandingURLs["UY"][0])
	good := har.Entry{URL: "https://" + goodHost + "/", Host: goodHost, Status: 200, BodySize: 1}
	bad := har.Entry{URL: "https://broken.gub.uy/", Host: "broken.gub.uy", Status: 200, BodySize: 1}

	for i := 0; i < 3; i++ {
		if _, err := env.annotate(c, good, env.pipelineMetrics()); err != nil {
			t.Fatalf("annotate(good) attempt %d: %v", i, err)
		}
		if _, err := env.annotate(c, bad, env.pipelineMetrics()); err == nil {
			t.Fatalf("annotate(bad) attempt %d succeeded", i)
		}
	}
	if calls[goodHost] != 1 {
		t.Fatalf("good host resolved %d times, want 1 (cache miss only once)", calls[goodHost])
	}
	if calls["broken.gub.uy"] != 1 {
		t.Fatalf("failed host resolved %d times, want 1 (negative caching)", calls["broken.gub.uy"])
	}
	if env.resolutions.size() != 2 {
		t.Fatalf("cache holds %d hostnames, want 2", env.resolutions.size())
	}
}

func TestResolutionCacheSharedAcrossCountries(t *testing.T) {
	// The cache lives at the Env, not per country: a full run resolves
	// each distinct hostname exactly once even with countries in
	// flight concurrently.
	env := NewEnv(Config{Scale: 0.03, SkipTopsites: true,
		Countries: []string{"US", "MX", "UY"}, CountryConcurrency: 3, FetchConcurrency: 8})
	var mu sync.Mutex
	calls := map[string]int{}
	orig := env.resolveHost
	env.resolveHost = func(host string) (netip.Addr, whois.Record, error) {
		mu.Lock()
		calls[host]++
		mu.Unlock()
		return orig(host)
	}
	if _, err := env.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for host, n := range calls {
		if n != 1 {
			t.Fatalf("host %s resolved %d times, want 1", host, n)
		}
	}
	if len(calls) == 0 {
		t.Fatal("resolver never consulted")
	}
}

func TestPipelineDeterministicWithCapAndConcurrency(t *testing.T) {
	// The issue's headline determinism case: a MaxURLs cap plus real
	// concurrency used to make frontier admission a worker race; now
	// equal seeds must yield identical datasets, record for record.
	cfg := Config{Scale: 0.03, MaxURLsPerCrawl: 40,
		Concurrency: 4, CountryConcurrency: 4, FetchConcurrency: 8}
	a := runSubset(t, cfg)
	b := runSubset(t, cfg)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ under cap: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if fmt.Sprintf("%+v", a.Records[i]) != fmt.Sprintf("%+v", b.Records[i]) {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
	for i := range a.Topsites {
		if a.Topsites[i].URL != b.Topsites[i].URL || a.Topsites[i].IP != b.Topsites[i].IP {
			t.Fatalf("topsite record %d differs", i)
		}
	}
	// The cap must actually bite, or this test proves nothing.
	capped := false
	for _, st := range a.PerCountry {
		if st.LandingURLs+st.InternalURLs >= 38 {
			capped = true
		}
	}
	if !capped {
		t.Log("warning: MaxURLsPerCrawl=40 never reached at this scale")
	}
}

func TestMaxURLsPerCrawlLimitsDataset(t *testing.T) {
	uncapped := runSubset(t, Config{Scale: 0.03, SkipTopsites: true, Countries: []string{"US"}})
	capped := runSubset(t, Config{Scale: 0.03, SkipTopsites: true, Countries: []string{"US"},
		MaxURLsPerCrawl: 10})
	if len(capped.Records) > 10 {
		t.Fatalf("cap of 10 produced %d records", len(capped.Records))
	}
	if len(capped.Records) >= len(uncapped.Records) {
		t.Fatalf("cap did not reduce the crawl: %d vs %d", len(capped.Records), len(uncapped.Records))
	}
}

func TestTrendYearsAtCoreLevel(t *testing.T) {
	now := runSubset(t, Config{SkipTopsites: true})
	future := runSubset(t, Config{SkipTopsites: true, TrendYears: 8})
	share := func(ds *dataset.Dataset) float64 {
		var global, total float64
		for i := range ds.Records {
			if ds.Records[i].Category == world.Cat3PGlobal {
				global++
			}
			total++
		}
		return global / total
	}
	if share(future) <= share(now) {
		t.Fatalf("trend did not raise the global share: %.3f -> %.3f", share(now), share(future))
	}
}
