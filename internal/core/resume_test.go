package core

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/govclass"
	"repro/internal/har"
)

// baselineArtifacts runs cfg uninterrupted (no checkpointing) and
// returns the three byte streams the resume suite compares against:
// JSONL export, CSV export, and the deterministic metrics snapshot.
func baselineArtifacts(t *testing.T, cfg Config) (jsonl, csv, det []byte) {
	t.Helper()
	ds, _, snap := runWithMetrics(t, cfg)
	jsonl, csv = exportBytes(t, ds)
	det, err := snap.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csv, det
}

// killAt runs cfg with a checkpoint directory, cancelling the run the
// moment the nth country flushes through the merge sink. It returns
// how many country checkpoints survived the kill.
func killAt(t *testing.T, cfg Config, dir string, n int) int {
	t.Helper()
	cfg.CheckpointDir = dir
	env := NewEnv(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	flushes := 0
	env.afterFlush = func(string) {
		flushes++
		if flushes == n {
			cancel()
		}
	}
	if _, err := env.Run(ctx); err == nil {
		t.Fatalf("run killed after %d flushes reported success", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	persisted := 0
	for _, e := range entries {
		name := e.Name()
		if name != "manifest.json" && strings.HasSuffix(name, ".json") {
			persisted++
		}
	}
	// Satellite guarantee: cancellation flushes — and persists — every
	// completed country instead of discarding it, so at least the n
	// countries that flushed before the kill are on disk.
	if persisted < n {
		t.Fatalf("killed after %d flushes but only %d checkpoints persisted", n, persisted)
	}
	return persisted
}

// resumeRun completes a previously killed checkpointed run and returns
// its artifacts.
func resumeRun(t *testing.T, cfg Config, dir string) (jsonl, csv, det []byte) {
	t.Helper()
	cfg.CheckpointDir = dir
	cfg.Resume = true
	env := NewEnv(cfg)
	ds, err := env.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	jsonl, csv = exportBytes(t, ds)
	det, err = env.Metrics().Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csv, det
}

// TestKillResumeByteIdentical is the tentpole guarantee: killing a
// checkpointed chaos run at any completion boundary and resuming it —
// at the same or a different concurrency shape — must export the very
// bytes an uninterrupted same-seed run exports, and the deterministic
// metrics snapshot must match too.
func TestKillResumeByteIdentical(t *testing.T) {
	cfg := chaosConfig() // three countries, aggressive faults
	wantJSONL, wantCSV, wantDet := baselineArtifacts(t, cfg)

	shapes := []struct{ country, fetch int }{
		{1, 1},
		{3, 16},
	}
	for _, killShape := range shapes {
		for kills := 1; kills <= len(cfg.Countries); kills++ {
			for _, resumeShape := range shapes {
				dir := t.TempDir()
				kcfg := cfg
				kcfg.CountryConcurrency = killShape.country
				kcfg.FetchConcurrency = killShape.fetch
				killAt(t, kcfg, dir, kills)

				rcfg := cfg
				rcfg.CountryConcurrency = resumeShape.country
				rcfg.FetchConcurrency = resumeShape.fetch
				jsonl, csv, det := resumeRun(t, rcfg, dir)
				tag := "kill@%+v after %d, resume@%+v"
				if !bytes.Equal(jsonl, wantJSONL) {
					t.Errorf("JSONL diverged: "+tag, killShape, kills, resumeShape)
				}
				if !bytes.Equal(csv, wantCSV) {
					t.Errorf("CSV diverged: "+tag, killShape, kills, resumeShape)
				}
				if !bytes.Equal(det, wantDet) {
					t.Errorf("deterministic metrics diverged: "+tag, killShape, kills, resumeShape)
				}
			}
		}
	}
}

// TestResumeCompletedRun: resuming a directory whose run already
// finished re-runs nothing and still reproduces the baseline bytes.
func TestResumeCompletedRun(t *testing.T) {
	cfg := chaosConfig()
	wantJSONL, _, wantDet := baselineArtifacts(t, cfg)

	dir := t.TempDir()
	full := cfg
	full.CheckpointDir = dir
	if _, err := Run(context.Background(), full); err != nil {
		t.Fatal(err)
	}
	jsonl, _, det := resumeRun(t, cfg, dir)
	if !bytes.Equal(jsonl, wantJSONL) {
		t.Error("JSONL diverged on resume of a completed run")
	}
	if !bytes.Equal(det, wantDet) {
		t.Error("deterministic metrics diverged on resume of a completed run")
	}
}

// TestCheckpointDirRefusedWithoutResume: pointing a second run at a
// directory that already holds one is an error, not a silent clobber.
func TestCheckpointDirRefusedWithoutResume(t *testing.T) {
	dir := t.TempDir()
	cfg := chaosConfig()
	cfg.CheckpointDir = dir
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "already holds a run") {
		t.Fatalf("reuse without resume: err = %v", err)
	}
}

// TestResumeManifestMismatch: a resume under different study
// parameters must refuse to splice incompatible work together.
func TestResumeManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	killAt(t, chaosConfig(), dir, 1)

	cfg := chaosConfig()
	cfg.Seed = 99
	cfg.CheckpointDir = dir
	cfg.Resume = true
	_, err := Run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatched resume: err = %v", err)
	}
}

// TestRecordsInFlightHighWater proves the streaming memory bound. At
// one country in flight the feed order (US, UY, NG) runs against the
// sorted flush order (NG, US, UY), so US and UY must park while NG
// crawls — the high-water mark is exactly their records, strictly
// below the study total. At any shape the rank-0 country never parks,
// so the bound holds there too.
func TestRecordsInFlightHighWater(t *testing.T) {
	cfg := chaosConfig()
	cfg.FaultProfile = "off"
	cfg.CountryConcurrency = 1
	cfg.FetchConcurrency = 1
	ds, _, snap := runWithMetrics(t, cfg)
	hw := snap.Runtime.Pipeline.RecordsInFlightHighWater
	total := int64(len(ds.Records))
	if hw <= 0 {
		t.Fatalf("high water = %d; US and UY should have parked behind NG", hw)
	}
	if hw >= total {
		t.Fatalf("high water %d not below total %d: streaming bound violated", hw, total)
	}

	cfg.CountryConcurrency = 3
	cfg.FetchConcurrency = 16
	ds, _, snap = runWithMetrics(t, cfg)
	if hw, total := snap.Runtime.Pipeline.RecordsInFlightHighWater, int64(len(ds.Records)); hw >= total {
		t.Fatalf("high water %d not below total %d at {3,16}", hw, total)
	}
}

// TestClassifyEntriesCountsDiscardedLandings is the accounting-bug
// regression: a landing URL that classifies as discarded must appear
// in the method tally exactly like any other discarded entry, or the
// dataset's Discarded total and the metrics ledger disagree.
func TestClassifyEntriesCountsDiscardedLandings(t *testing.T) {
	classifier := &govclass.URLClassifier{} // no landing hosts: every host discards
	entries := []har.Entry{
		{URL: "https://landing.example/", Host: "landing.example", Status: 200},
		{URL: "https://inner.example/x", Host: "inner.example", Status: 200},
		{URL: "https://broken.example/", Host: "broken.example", Status: 500, Failure: "http_5xx"},
		{URL: "https://empty.example/", Host: "empty.example", Status: 404},
	}
	landingSet := map[string]bool{"https://landing.example/": true}

	candidates, methods, unusable := classifyEntries(classifier, entries, landingSet)
	if len(candidates) != 0 {
		t.Fatalf("discarded entries produced %d candidates", len(candidates))
	}
	if got := methods[govclass.MethodDiscarded]; got != 2 {
		t.Fatalf("discarded tally = %d, want 2 (the landing URL must count)", got)
	}
	if unusable != 1 {
		t.Fatalf("unusable = %d, want 1 (the 404)", unusable)
	}
}
