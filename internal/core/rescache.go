package core

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/whois"
)

// resolveFunc performs one uncached hostname→(IP, WHOIS) resolution.
type resolveFunc func(host string) (netip.Addr, whois.Record, error)

// rescache is the concurrency-safe, study-wide resolution cache: every
// country's annotation pass shares it, so annotation cost scales with
// distinct hostnames rather than crawled records. Failures are cached
// as negative entries — before this cache existed a bad hostname was
// re-resolved on every URL that referenced it.
type rescache struct {
	mu sync.Mutex
	m  map[string]*resEntry
	// metrics, when set, receives the cache's hit/miss/negative
	// accounting. The lookup and miss counts are deterministic (the
	// hostname multiset is a pure function of the seed); only the
	// coalesce count depends on worker interleaving.
	metrics *metrics.CacheMetrics
}

// resEntry is one hostname's outcome; once guarantees a single
// resolution per hostname across all workers, positive or negative.
// done flips after the resolution lands, so a later lookup can tell a
// settled entry from one still in flight (a coalesce).
type resEntry struct {
	once sync.Once
	done atomic.Bool
	ip   netip.Addr
	rec  whois.Record
	err  error
}

func newRescache(cm *metrics.CacheMetrics) *rescache {
	return &rescache{m: make(map[string]*resEntry), metrics: cm}
}

// resolve returns the cached outcome for host, performing the lookup
// through fn exactly once per hostname. Concurrent callers for the
// same hostname share one in-flight resolution.
func (c *rescache) resolve(host string, fn resolveFunc) (netip.Addr, whois.Record, error) {
	c.mu.Lock()
	e := c.m[host]
	created := e == nil
	if created {
		e = &resEntry{}
		c.m[host] = e
	}
	c.mu.Unlock()
	if m := c.metrics; m != nil {
		m.Lookups.Inc()
		if created {
			m.Misses.Inc()
		} else {
			m.Hits.Inc()
			if !e.done.Load() {
				m.Coalesced.Inc()
			}
		}
	}
	e.once.Do(func() {
		e.ip, e.rec, e.err = fn(host)
		if e.err != nil {
			if m := c.metrics; m != nil {
				m.NegativeEntries.Inc()
			}
		}
		e.done.Store(true)
	})
	if !created && e.err != nil {
		if m := c.metrics; m != nil {
			m.NegativeHits.Inc()
		}
	}
	return e.ip, e.rec, e.err
}

// seed installs a settled outcome for host without running a
// resolution and without touching the cache metrics — how a resumed
// run replays the resolutions its checkpointed countries already paid
// for (their cache accounting arrives separately, via the stored
// deterministic deltas). An existing entry is left untouched, so
// seeding is idempotent across overlapping checkpoints.
func (c *rescache) seed(host string, ip netip.Addr, rec whois.Record, err error) {
	c.mu.Lock()
	e := c.m[host]
	if e == nil {
		e = &resEntry{}
		c.m[host] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.ip, e.rec, e.err = ip, rec, err
		e.done.Store(true)
	})
}

// size reports how many hostnames (positive or negative) are cached.
func (c *rescache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// resolveAttempts bounds the per-hostname resolution attempt sequence
// under DNS fault injection — the same shape dnswire.Resolver uses for
// transient upstream failures.
const resolveAttempts = 3

// faultyResolve wraps a resolveFunc with the plan's DNS faults: each
// attempt first consults the plan (deterministically per hostname and
// attempt), so an injected SERVFAIL can clear on a later attempt and
// the same seed always resolves — or fails — the same set of names.
// Injected SERVFAILs land in fm's ledger; the count is deterministic
// because the single-flight cache resolves each hostname exactly once.
func faultyResolve(plan *faults.Plan, fm *metrics.FaultMetrics, inner resolveFunc) resolveFunc {
	return func(host string) (netip.Addr, whois.Record, error) {
		var lastErr error
		for attempt := 0; attempt < resolveAttempts; attempt++ {
			if err := plan.DNSFault(host, attempt); err != nil {
				fm.Inject(string(faults.KindServfail))
				lastErr = err
				continue
			}
			return inner(host)
		}
		return netip.Addr{}, whois.Record{}, lastErr
	}
}

// zoneResolve is the production resolveFunc: DNS through the synthetic
// zones, then the WHOIS registry for the serving prefix.
func (env *Env) zoneResolve(host string) (netip.Addr, whois.Record, error) {
	res, err := env.Zones.Resolve(host)
	if err != nil {
		return netip.Addr{}, whois.Record{}, err
	}
	wrec, found := env.WhoisDB.Lookup(res.Addr)
	if !found {
		return netip.Addr{}, whois.Record{}, fmt.Errorf("no WHOIS record for %v", res.Addr)
	}
	return res.Addr, wrec, nil
}
