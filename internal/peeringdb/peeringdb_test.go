package peeringdb

import "testing"

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Add(Record{ASN: 26810, Name: "HHS-NET", Org: "U.S. Dept. of Health and Human Services"})
	s.Add(Record{ASN: 13335, Name: "CLOUDFLARENET", Org: "Cloudflare, Inc."})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	rec, ok := s.Get(26810)
	if !ok || rec.Org != "U.S. Dept. of Health and Human Services" {
		t.Fatalf("Get = %+v %v", rec, ok)
	}
	if _, ok := s.Get(99999); ok {
		t.Fatal("missing ASN found")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Add(Record{ASN: 1, Org: "Original"})
	rec, _ := s.Get(1)
	rec.Org = "Mutated"
	again, _ := s.Get(1)
	if again.Org != "Original" {
		t.Fatal("Get leaked internal state")
	}
}

func TestSearchText(t *testing.T) {
	s := NewStore()
	s.Add(Record{ASN: 2, Org: "Ministry of Health of Chile", Note: ""})
	s.Add(Record{ASN: 3, Org: "NetHost Chile 1", Note: "Commercial"})
	s.Add(Record{ASN: 1, Org: "Telecom", Note: "State-owned operator"})
	got := s.SearchText("state-owned")
	if len(got) != 1 || got[0].ASN != 1 {
		t.Fatalf("search = %+v", got)
	}
	got = s.SearchText("chile")
	if len(got) != 2 || got[0].ASN != 2 || got[1].ASN != 3 {
		t.Fatalf("search must be ASN-sorted: %+v", got)
	}
	if len(s.SearchText("nomatch-xyz")) != 0 {
		t.Fatal("bogus query matched")
	}
}
