// Package peeringdb models the PeeringDB evidence source of §3.4: a
// record store keyed by ASN carrying the network name, organization,
// website and free-text note that the government-network classifier
// searches for ownership indicators (e.g. AS26810's organization
// "U.S. Dept. of Health and Human Services").
package peeringdb

import (
	"sort"
	"strings"
	"sync"
)

// Record is one PeeringDB network entry.
type Record struct {
	ASN     int
	Name    string
	Org     string
	Website string
	Note    string
}

// Store is an in-memory PeeringDB snapshot.
type Store struct {
	mu   sync.RWMutex
	byAS map[int]*Record
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{byAS: make(map[int]*Record)} }

// Add registers a record.
func (s *Store) Add(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := r
	s.byAS[r.ASN] = &rec
}

// Get returns the record for an ASN, if present. PeeringDB coverage is
// partial by design — the classifier must fall back to WHOIS and web
// search for the rest.
func (s *Store) Get(asn int) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byAS[asn]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byAS)
}

// SearchText returns records whose name, org or note contains the
// query (case-insensitive), sorted by ASN — a convenience mirroring
// PeeringDB's search box.
func (s *Store) SearchText(query string) []Record {
	q := strings.ToLower(query)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.byAS {
		if strings.Contains(strings.ToLower(r.Name), q) ||
			strings.Contains(strings.ToLower(r.Org), q) ||
			strings.Contains(strings.ToLower(r.Note), q) {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}
