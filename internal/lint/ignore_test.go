package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixturePkg type-checks one fixture package for directive-level
// unit tests.
func loadFixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// findDirective locates the fixture directive whose reason starts with
// prefix.
func findDirective(t *testing.T, pkg *Package, prefix string) (file string, d *ignoreDirective) {
	t.Helper()
	for file, ds := range pkg.ignores {
		for _, d := range ds {
			if strings.HasPrefix(d.reason, prefix) {
				return file, d
			}
		}
	}
	t.Fatalf("no directive with reason prefix %q in %s", prefix, pkg.Path)
	return "", nil
}

// TestSuppressedScope pins the directive's reach: its own line and the
// line directly below, for the named rules only, and a hit marks it
// used.
func TestSuppressedScope(t *testing.T) {
	pkg := loadFixturePkg(t, "staleignore")
	file, d := findDirective(t, pkg, "fixture: progress stamp only")

	at := func(line int) token.Position { return token.Position{Filename: file, Line: line} }
	if pkg.suppressed(at(d.line+2), "nondeterminism") {
		t.Errorf("directive at line %d must not cover line %d", d.line, d.line+2)
	}
	if pkg.suppressed(at(d.line+1), "map-order") {
		t.Error("directive must not cover a rule it does not name")
	}
	if d.used {
		t.Fatal("missed lookups must not mark the directive used")
	}
	if !pkg.suppressed(at(d.line+1), "nondeterminism") {
		t.Errorf("directive at line %d must cover the line below it", d.line)
	}
	if !d.used {
		t.Error("a suppressing hit must mark the directive used")
	}
	if !pkg.suppressed(at(d.line), "nondeterminism") {
		t.Error("directive must cover its own line")
	}
}

// TestSuppressorDoesNotMarkUsed separates the barrier lookup from the
// suppression path: consulting a directive as a potential taint
// barrier must not count as using it.
func TestSuppressorDoesNotMarkUsed(t *testing.T) {
	pkg := loadFixturePkg(t, "staleignore")
	file, d := findDirective(t, pkg, "fixture: progress stamp only")
	got := pkg.suppressor(token.Position{Filename: file, Line: d.line + 1}, "nondeterminism")
	if got != d {
		t.Fatalf("suppressor returned %v, want the covering directive", got)
	}
	if d.used {
		t.Error("suppressor must not mark the directive used")
	}
}

// TestMalformedDirectivesNeverSuppress pins that a bad directive is
// inert: it reports as bad-ignore and covers nothing.
func TestMalformedDirectivesNeverSuppress(t *testing.T) {
	pkg := loadFixturePkg(t, "badignore")
	var file string
	var bad *ignoreDirective
	for f, ds := range pkg.ignores {
		for _, d := range ds {
			if d.bad != "" {
				file, bad = f, d
			}
		}
	}
	if bad == nil {
		t.Fatal("badignore fixture lost its malformed directive")
	}
	if pkg.suppressed(token.Position{Filename: file, Line: bad.line + 1}, "nondeterminism") {
		t.Error("a malformed directive must not suppress anything")
	}
}

// TestCollectDetTags pins tag discovery order for the audit.
func TestCollectDetTags(t *testing.T) {
	pkg := loadFixturePkg(t, "staletag")
	if len(pkg.detTags) != 2 {
		t.Fatalf("staletag fixture has %d tags, want 2", len(pkg.detTags))
	}
	if pkg.detTags[0].Line >= pkg.detTags[1].Line {
		t.Errorf("tags out of (file, line) order: %v then %v", pkg.detTags[0], pkg.detTags[1])
	}
}

// TestCentralListStaleTag covers the audit arm the fixtures cannot: a
// //lint:deterministic tag in a package that is also on the central
// deterministicPkgs list is redundant and must say so.
func TestCentralListStaleTag(t *testing.T) {
	const path = "repro/internal/lint/testdata/src/nondet"
	deterministicPkgs[path] = true
	defer delete(deterministicPkgs, path)

	runner, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.CheckDir(filepath.Join("testdata", "src", "nondet")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range runner.Diagnostics() {
		if d.Rule == "stale-deterministic-tag" && strings.Contains(d.Message, "already on the central deterministicPkgs list") {
			found = true
		}
	}
	if !found {
		t.Error("no stale-deterministic-tag finding for a tag in a centrally-listed package")
	}
}
