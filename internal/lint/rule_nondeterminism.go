package lint

import (
	"go/ast"
	"go/types"
)

// nondeterminismRule forbids entropy and wall-clock sources in the
// deterministic-output packages. Everything those packages emit must
// be a pure function of the study seed: time must come from injected
// values, randomness from a seeded *rand.Rand derived via internal/rng
// (rand.New / rand.NewSource are therefore allowed; the global
// math/rand stream is not — two goroutines draw from it in scheduling
// order, which varies with the concurrency shape).
type nondeterminismRule struct{}

func (nondeterminismRule) Name() string { return "nondeterminism" }
func (nondeterminismRule) Doc() string {
	return "forbid time.Now, the global math/rand stream and ambient timers in deterministic-output packages"
}

// forbiddenTime are the wall-clock and ambient-timer entry points.
// time.Duration arithmetic and parsing stay legal; reading the clock
// or racing a timer does not.
var forbiddenTime = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"After":     "starts an ambient timer",
	"Tick":      "starts an ambient ticker",
	"NewTimer":  "starts an ambient timer",
	"NewTicker": "starts an ambient ticker",
	"AfterFunc": "starts an ambient timer",
	"Sleep":     "stalls on the wall clock",
}

// forbiddenRand are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared global source.
var forbiddenRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
	"N": true, "Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func (nondeterminismRule) Check(pkg *Package, r *Reporter) {
	if !isDeterministic(pkg) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pkg.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods are fine: r.Float64() on a seeded *rand.Rand and
				// t.Format() on an injected time.Time are the approved
				// idioms — only the package-level entry points reach the
				// wall clock or the shared global stream.
				return true
			}
			switch f.Pkg().Path() {
			case "time":
				if why, bad := forbiddenTime[f.Name()]; bad {
					r.Reportf(call.Pos(), "time.%s %s; deterministic packages must derive all timing from injected values", f.Name(), why)
				}
			case "math/rand", "math/rand/v2":
				if forbiddenRand[f.Name()] {
					r.Reportf(call.Pos(), "rand.%s draws from the global math/rand stream, whose order depends on goroutine interleaving; use a seeded generator from internal/rng", f.Name())
				}
			}
			return true
		})
	}
}
