package lint

import (
	"go/ast"
	"go/types"
)

// nondeterminismRule forbids entropy and wall-clock sources in the
// deterministic-output packages. Everything those packages emit must
// be a pure function of the study seed: time must come from injected
// values, randomness from a seeded *rand.Rand derived via internal/rng
// (rand.New / rand.NewSource are therefore allowed; the global
// math/rand stream is not — two goroutines draw from it in scheduling
// order, which varies with the concurrency shape).
type nondeterminismRule struct{}

func (nondeterminismRule) Name() string { return "nondeterminism" }
func (nondeterminismRule) Doc() string {
	return "forbid time.Now, the global math/rand stream and ambient timers in deterministic-output packages"
}

// forbiddenTime are the wall-clock and ambient-timer entry points.
// time.Duration arithmetic and parsing stay legal; reading the clock
// or racing a timer does not.
var forbiddenTime = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"After":     "starts an ambient timer",
	"Tick":      "starts an ambient ticker",
	"NewTimer":  "starts an ambient timer",
	"NewTicker": "starts an ambient ticker",
	"AfterFunc": "starts an ambient timer",
	"Sleep":     "stalls on the wall clock",
}

// forbiddenRand are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared global source.
var forbiddenRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
	"N": true, "Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func (nondeterminismRule) Check(pkg *Package, r *Reporter) {
	if !isDeterministic(pkg) {
		return
	}
	// Direct calls anywhere in the file, package-level initializers
	// included.
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				reportForbidden(pkg, r, call, calleeFunc(pkg.Info, call))
			}
			return true
		})
	}
	// Calls through local function variables and method values:
	// `f := time.Now; f()` reads the clock exactly as the direct call
	// does, so the resolver follows the binding.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bindings := funcBindings(pkg.Info, fd.Body)
			if len(bindings) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || calleeFunc(pkg.Info, call) != nil {
					return true
				}
				for _, f := range resolveCallees(pkg.Info, call, bindings) {
					reportForbidden(pkg, r, call, f)
				}
				return true
			})
		}
	}
}

// reportForbidden flags call when f is one of the forbidden time or
// math/rand entry points. Methods are fine: r.Float64() on a seeded
// *rand.Rand and t.Format() on an injected time.Time are the approved
// idioms — only the package-level entry points reach the wall clock or
// the shared global stream.
func reportForbidden(pkg *Package, r *Reporter, call *ast.CallExpr, f *types.Func) {
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if why, bad := forbiddenTime[f.Name()]; bad {
			r.Reportf(call.Pos(), "time.%s %s; deterministic packages must derive all timing from injected values", f.Name(), why)
		}
	case "math/rand", "math/rand/v2":
		if forbiddenRand[f.Name()] {
			r.Reportf(call.Pos(), "rand.%s draws from the global math/rand stream, whose order depends on goroutine interleaving; use a seeded generator from internal/rng", f.Name())
		}
	}
}
