package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. It suppresses
// the named rules on its own line and on the line directly below it —
// i.e. it is written either at the end of the offending line or on the
// line immediately above the offending statement.
type ignoreDirective struct {
	line   int
	rules  map[string]bool
	reason string
	bad    string // non-empty when the directive is malformed
}

const (
	ignorePrefix = "//lint:ignore"
	// deterministicTag opts a package into the deterministic-output
	// rule scope (nondeterminism + map-order) without editing the
	// central list in rules.go; used by new deterministic-path packages
	// and by the lint fixtures.
	deterministicTag = "//lint:deterministic"
)

// parseIgnore parses the text of one //lint:ignore comment:
//
//	//lint:ignore rule1,rule2 -- reason
//
// The reason is mandatory: a suppression that does not say why the
// violation is intentional is itself a diagnostic.
func parseIgnore(text string) ignoreDirective {
	rest := strings.TrimPrefix(text, ignorePrefix)
	if rest == text {
		return ignoreDirective{bad: "not an ignore directive"}
	}
	rest = strings.TrimSpace(rest)
	ruleList, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return ignoreDirective{bad: "missing '-- reason'"}
	}
	d := ignoreDirective{rules: map[string]bool{}, reason: strings.TrimSpace(reason)}
	for _, r := range strings.FieldsFunc(strings.TrimSpace(ruleList), func(c rune) bool { return c == ',' || c == ' ' }) {
		d.rules[r] = true
	}
	if len(d.rules) == 0 {
		return ignoreDirective{bad: "no rule names before '--'"}
	}
	return d
}

// collectIgnores gathers every //lint:ignore directive per file.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreDirective {
	out := map[string][]ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d := parseIgnore(c.Text)
				d.line = pos.Line
				out[pos.Filename] = append(out[pos.Filename], d)
			}
		}
	}
	return out
}

// hasDeterministicTag reports whether any file of the package carries
// the //lint:deterministic opt-in tag.
func hasDeterministicTag(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if text, _, _ := strings.Cut(c.Text, " "); text == deterministicTag {
					return true
				}
			}
		}
	}
	return false
}

// suppressed reports whether a diagnostic of rule at pos is covered by
// an ignore directive (same line or the line above).
func (p *Package) suppressed(pos token.Position, rule string) bool {
	for _, d := range p.ignores[pos.Filename] {
		if d.bad != "" {
			continue
		}
		if (d.line == pos.Line || d.line == pos.Line-1) && d.rules[rule] {
			return true
		}
	}
	return false
}
