package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. It suppresses
// the named rules on its own line and on the line directly below it —
// i.e. it is written either at the end of the offending line or on the
// line immediately above the offending statement. Placed on (or above)
// a function declaration with the determinism-taint rule named, it is
// a taint barrier: the function declares that its wall-clock, rand or
// map-order effects never reach deterministic output, and callers in
// deterministic packages are not flagged for reaching it.
//
// Every directive is audited: one that suppresses no live finding (and
// bars no live taint) is itself reported stale, so suppressions cannot
// rot as the code around them changes.
type ignoreDirective struct {
	line   int
	rules  map[string]bool
	reason string
	bad    string // non-empty when the directive is malformed
	used   bool   // set when the directive suppressed a finding or barred live taint
}

// ruleList renders the directive's rule names sorted, for stable
// diagnostics.
func (d *ignoreDirective) ruleList() string {
	names := make([]string, 0, len(d.rules))
	for r := range d.rules {
		names = append(names, r)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

const (
	ignorePrefix = "//lint:ignore"
	// deterministicTag opts a package into the deterministic-output
	// rule scope (nondeterminism + map-order + determinism-taint)
	// without editing the central list in rules.go; used by new
	// deterministic-path packages, the cmd/examples mains and the lint
	// fixtures.
	deterministicTag = "//lint:deterministic"
)

// parseIgnore parses the text of one //lint:ignore comment:
//
//	//lint:ignore rule1,rule2 -- reason
//
// The reason is mandatory: a suppression that does not say why the
// violation is intentional is itself a diagnostic.
func parseIgnore(text string) ignoreDirective {
	rest := strings.TrimPrefix(text, ignorePrefix)
	if rest == text {
		return ignoreDirective{bad: "not an ignore directive"}
	}
	rest = strings.TrimSpace(rest)
	ruleList, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return ignoreDirective{bad: "missing '-- reason'"}
	}
	d := ignoreDirective{rules: map[string]bool{}, reason: strings.TrimSpace(reason)}
	for _, r := range strings.FieldsFunc(strings.TrimSpace(ruleList), func(c rune) bool { return c == ',' || c == ' ' }) {
		d.rules[r] = true
	}
	if len(d.rules) == 0 {
		return ignoreDirective{bad: "no rule names before '--'"}
	}
	return d
}

// collectIgnores gathers every //lint:ignore directive per file.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string][]*ignoreDirective {
	out := map[string][]*ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d := parseIgnore(c.Text)
				d.line = pos.Line
				out[pos.Filename] = append(out[pos.Filename], &d)
			}
		}
	}
	return out
}

// collectDetTags returns the position of every //lint:deterministic
// tag of the package, in (file, line) order. One tag opts the package
// in; the suppression audit reports any further tags as redundant.
func collectDetTags(fset *token.FileSet, files []*ast.File) []token.Position {
	var tags []token.Position
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if text, _, _ := strings.Cut(c.Text, " "); text == deterministicTag {
					tags = append(tags, fset.Position(c.Pos()))
				}
			}
		}
	}
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].Filename != tags[j].Filename {
			return tags[i].Filename < tags[j].Filename
		}
		return tags[i].Line < tags[j].Line
	})
	return tags
}

// suppressed reports whether a diagnostic of rule at pos is covered by
// an ignore directive (same line or the line above) and marks the
// covering directive used.
func (p *Package) suppressed(pos token.Position, rule string) bool {
	if d := p.suppressor(pos, rule); d != nil {
		d.used = true
		return true
	}
	return false
}

// suppressor returns the directive covering a diagnostic of rule at
// pos, or nil, without marking it used.
func (p *Package) suppressor(pos token.Position, rule string) *ignoreDirective {
	for _, d := range p.ignores[pos.Filename] {
		if d.bad != "" {
			continue
		}
		if (d.line == pos.Line || d.line == pos.Line-1) && d.rules[rule] {
			return d
		}
	}
	return nil
}
