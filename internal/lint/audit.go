package lint

import (
	"fmt"
	"sort"
)

// The suppression audit closes the loop on in-source sanctions: every
// //lint:ignore either suppressed a live finding during this run (or
// barred live taint, for declaration-site barriers) or it is reported
// stale, and every //lint:deterministic tag either opts its package in
// or duplicates an opt-in that already exists. Without this, the code
// around a directive drifts — the violation gets fixed, the helper
// gets rewritten, the package joins the central list — and the
// directive silently outlives its justification, ready to mask the
// next real violation on the same line. Stale directives are
// unsuppressable by design: the only fixes are deleting the directive
// or restoring the violation it claims to explain.
//
// The audit runs in Finish, after every per-package rule and the
// whole-program taint pass have had their chance to mark directives
// used, and only over the packages that were actually checked: a
// subset run does not accuse directives of packages it never analyzed.

// auditSuppressions reports stale //lint:ignore directives and
// redundant //lint:deterministic tags of every checked package.
func (r *Runner) auditSuppressions() {
	for _, pkg := range r.checkedPackages() {
		r.auditIgnores(pkg)
		r.auditDetTags(pkg)
	}
}

func (r *Runner) auditIgnores(pkg *Package) {
	files := make([]string, 0, len(pkg.ignores))
	for file := range pkg.ignores {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		for _, d := range pkg.ignores[file] {
			if d.bad != "" || d.used {
				continue
			}
			r.record(Diagnostic{
				File: r.relPath(file), Line: d.line, Col: 1,
				Rule:    "stale-ignore",
				Message: fmt.Sprintf("//lint:ignore %s suppresses no finding on this line or the line below; delete the stale directive or restore the violation it explains", d.ruleList()),
			})
		}
	}
}

// auditDetTags flags //lint:deterministic tags that change nothing: a
// second tag in a package that is already opted in, or any tag in a
// package already on the central deterministicPkgs list. A single tag
// in an otherwise unlisted package is the opt-in itself and is never
// stale, even when the package is currently clean — the tag is the
// contract, not a finding.
func (r *Runner) auditDetTags(pkg *Package) {
	for i, pos := range pkg.detTags {
		switch {
		case deterministicPkgs[pkg.Path]:
			r.record(Diagnostic{
				File: r.relPath(pos.Filename), Line: pos.Line, Col: 1,
				Rule:    "stale-deterministic-tag",
				Message: fmt.Sprintf("redundant //lint:deterministic tag: package %s is already on the central deterministicPkgs list in rules.go", pkg.Path),
			})
		case i > 0:
			first := pkg.detTags[0]
			r.record(Diagnostic{
				File: r.relPath(pos.Filename), Line: pos.Line, Col: 1,
				Rule:    "stale-deterministic-tag",
				Message: fmt.Sprintf("duplicate //lint:deterministic tag: the package is already opted in at %s:%d", r.relPath(first.Filename), first.Line),
			})
		}
	}
}
