package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fixtureDiagnostics runs the whole rule set over every fixture
// package with the given worker count and returns the sorted findings.
func fixtureDiagnostics(t *testing.T, workers int) []Diagnostic {
	t.Helper()
	runner, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.CheckDirs(fixtureDirs(t), workers); err != nil {
		t.Fatal(err)
	}
	return runner.Diagnostics()
}

// TestFormatGoldens locks the JSON and SARIF renderings of the fixture
// diagnostics byte for byte, and proves both survive a decode/encode
// round trip unchanged — the property a CI consumer depends on.
// Regenerate with `go test ./internal/lint -run FormatGoldens -update`.
func TestFormatGoldens(t *testing.T) {
	diags := fixtureDiagnostics(t, 1)

	jsonData, err := JSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	sarifData, err := SARIF(diags)
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range []struct {
		file string
		got  []byte
	}{
		{filepath.Join("testdata", "golden.json"), jsonData},
		{filepath.Join("testdata", "golden.sarif"), sarifData},
	} {
		if *update {
			if err := os.WriteFile(g.file, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.file)
		if err != nil {
			t.Fatalf("%v (run with -update to create it)", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted from golden.\n--- got ---\n%s", g.file, g.got)
		}
	}
	if *update {
		return
	}

	var decoded []Diagnostic
	if err := json.Unmarshal(jsonData, &decoded); err != nil {
		t.Fatal(err)
	}
	again, err := JSON(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonData, again) {
		t.Error("JSON round trip is not byte-identical")
	}

	var log sarifLog
	if err := json.Unmarshal(sarifData, &log); err != nil {
		t.Fatal(err)
	}
	sarifAgain, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sarifData, sarifAgain) {
		t.Error("SARIF round trip is not byte-identical")
	}
}

// TestSARIFRuleTable checks a clean run still documents every rule the
// engine enforces.
func TestSARIFRuleTable(t *testing.T) {
	data, err := SARIF(nil)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF has %d runs, want 1", len(log.Runs))
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != len(Descriptors()) {
		t.Fatalf("SARIF rule table has %d rules, Descriptors has %d", len(rules), len(Descriptors()))
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean SARIF run carries %d results", len(log.Runs[0].Results))
	}
}

// TestParallelMatchesSerial is the determinism contract of CheckDirs:
// whatever the worker count, the rendered findings are byte-identical.
func TestParallelMatchesSerial(t *testing.T) {
	serial := Text(fixtureDiagnostics(t, 1))
	for _, workers := range []int{2, 8} {
		if parallel := Text(fixtureDiagnostics(t, workers)); parallel != serial {
			t.Errorf("findings with %d workers diverge from serial:\n--- parallel ---\n%s--- serial ---\n%s",
				workers, parallel, serial)
		}
	}
}

// TestFilterBaseline pins the multiset matching: line drift is
// tolerated, counts are respected, unmatched findings survive.
func TestFilterBaseline(t *testing.T) {
	d1 := Diagnostic{File: "a.go", Line: 10, Col: 2, Rule: "nondeterminism", Message: "m1"}
	d1moved := d1
	d1moved.Line = 99
	d2 := Diagnostic{File: "a.go", Line: 20, Col: 2, Rule: "map-order", Message: "m2"}

	got := FilterBaseline([]Diagnostic{d1, d2}, []Diagnostic{d1moved})
	if !reflect.DeepEqual(got, []Diagnostic{d2}) {
		t.Errorf("line drift not tolerated: got %v", got)
	}

	got = FilterBaseline([]Diagnostic{d1, d1}, []Diagnostic{d1})
	if len(got) != 1 {
		t.Errorf("multiset matching broken: one baseline entry absorbed %d findings", 2-len(got))
	}

	got = FilterBaseline(nil, []Diagnostic{d1, d2})
	if len(got) != 0 {
		t.Errorf("empty run with a stale baseline must stay clean, got %v", got)
	}
}

// TestLoadBaselineRoundTrip writes a baseline the way the CLI does and
// reads it back through LoadBaseline.
func TestLoadBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{File: "x.go", Line: 1, Col: 1, Rule: "map-order", Message: "m"},
	}
	data, err := JSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, diags) {
		t.Errorf("LoadBaseline = %v, want %v", loaded, diags)
	}
	if left := FilterBaseline(diags, loaded); len(left) != 0 {
		t.Errorf("round-tripped baseline does not absorb its own findings: %v", left)
	}
}
