// Package failkind exercises the failkind-switch rule: a switch over
// fetch.FailKind must cover the whole taxonomy or carry a default.
// When a PR adds a kind to internal/fetch, the "missing" list in the
// expectation below grows and this fixture — like every enumerating
// switch in the repo — fails the lint run until the new kind gets an
// explicit decision.
package failkind

import "repro/internal/fetch"

func partial(k fetch.FailKind) bool {
	switch k { // want `failkind-switch: switch over fetch\.FailKind is not exhaustive: missing Fail5xx, FailDNS, FailGeoBlocked, FailNone, FailOther, FailTruncated`
	case fetch.FailTimeout, fetch.FailReset:
		return true
	}
	return false
}

// withDefault is exhaustive by construction.
func withDefault(k fetch.FailKind) string {
	switch k {
	case fetch.FailGeoBlocked:
		return "blocked"
	default:
		return "other"
	}
}

// exhaustive names every kind; adding one to the taxonomy makes this a
// finding.
func exhaustive(k fetch.FailKind) bool {
	switch k {
	case fetch.FailNone, fetch.FailDNS, fetch.FailTimeout, fetch.FailReset,
		fetch.FailGeoBlocked, fetch.Fail5xx, fetch.FailTruncated, fetch.FailOther:
		return true
	}
	return false
}

func suppressedPartial(k fetch.FailKind) bool {
	//lint:ignore failkind-switch -- fixture: deliberately partial view with an explained reason
	switch k {
	case fetch.FailDNS:
		return true
	}
	return false
}
