// Package badignore exercises the bad-ignore check: a suppression
// without a reason is itself a diagnostic, and it does not suppress.
//
//lint:deterministic
package badignore

import "time"

func reasonless() time.Time {
	//lint:ignore nondeterminism
	return time.Now() // want `nondeterminism: time\.Now reads the wall clock`
}
