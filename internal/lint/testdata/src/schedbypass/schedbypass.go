// Package schedbypass exercises the scheduler-bypass rule: it is not
// on the allowlist, so naked go statements are flagged.
package schedbypass

func spawn(fn func()) {
	go fn() // want `scheduler-bypass: naked go statement bypasses the bounded scheduler`
}

func spawnLit(done chan struct{}) {
	go func() { // want `scheduler-bypass: naked go statement`
		close(done)
	}()
}

func spawnSuppressed(done chan struct{}) {
	//lint:ignore scheduler-bypass -- fixture: lifecycle goroutine joined by the caller, not pipeline work
	go func() { close(done) }()
}
