// Package maporder exercises the map-order rule: iteration over a map
// may not leak Go's randomized order into escaping state.
//
//lint:deterministic
package maporder

import "sort"

// leakEmit emits keys in iteration order: the classic leak.
func leakEmit(m map[string]int, sink func(string)) {
	for k := range m { // want `map-order: iteration over map\[string\]int leaks map order: call to sink emits`
		sink(k)
	}
}

// leakUnsorted accumulates keys but never sorts them.
func leakUnsorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `map-order: .* keys accumulated into keys are never sorted`
		keys = append(keys, k)
	}
	return keys
}

// leakOverwrite races iteration order into a last-writer-wins slot.
func leakOverwrite(m map[string]int, out *int) {
	for _, v := range m { // want `map-order: .* assignment to \*out overwrites outer state`
		*out = v
	}
}

// sortedKeys is the canonical safe idiom: collect, then sort in the
// same function.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// invert builds another map: order-independent.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// total accumulates commutatively.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

type entry struct{ hits int }

// resetEntries writes through the per-entry value pointer: each write
// lands in the current entry, so order cannot matter.
func resetEntries(m map[string]*entry) {
	for _, e := range m {
		e.hits = 0
	}
}

// prune deletes entries: delete commutes.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// suppressedEmit shows an explained, intentional order leak.
func suppressedEmit(m map[string]int, sink func(string)) {
	//lint:ignore map-order -- fixture: consumer is order-insensitive by contract
	for k := range m {
		sink(k)
	}
}
