// Package staletag exercises the deterministic-tag audit: the first
// tag is the opt-in, the second changes nothing and is reported.
//
//lint:deterministic
//lint:deterministic // want `stale-deterministic-tag: duplicate //lint:deterministic tag: the package is already opted in at .*staletag\.go:4`
package staletag

import "time"

// stamp keeps the fixture red independently of the audit.
func stamp() time.Time {
	return time.Now() // want `nondeterminism: time\.Now reads the wall clock`
}
