// Package staleignore exercises the suppression audit: a directive
// that suppresses nothing during the run is itself a finding, whether
// it never matched, lists several rules, or sits too far from the
// violation it used to cover.
//
//lint:deterministic
package staleignore

import "time"

// used carries a live suppression: the directive matches the call on
// the next line, so the audit stays quiet about it.
func used() time.Time {
	//lint:ignore nondeterminism -- fixture: progress stamp only, never exported
	return time.Now()
}

// clean has nothing to suppress, so its directive is stale.
//
//lint:ignore map-order -- fixture: nothing here ranges over a map // want `stale-ignore: //lint:ignore map-order suppresses no finding on this line or the line below`
func clean() int { return 1 }

// multiRule shows the sorted rule list in the stale message.
//
//lint:ignore map-order,nondeterminism -- fixture: neither rule fires here // want `stale-ignore: //lint:ignore map-order,nondeterminism suppresses no finding`
func multiRule() int { return 2 }

// wrongLine's directive is two lines above the violation: out of
// range, so the violation fires and the directive is stale.
func wrongLine() time.Time {
	//lint:ignore nondeterminism -- fixture: drifted away from the call it explains // want `stale-ignore: //lint:ignore nondeterminism suppresses no finding`
	_ = 0
	return time.Now() // want `nondeterminism: time\.Now reads the wall clock`
}
