// Package ctxcancel exercises the context-cancel rule: every
// cancel-returning context constructor needs a defer cancel() in the
// same function.
package ctxcancel

import (
	"context"
	"time"
)

func leaks(ctx context.Context) context.Context {
	c, cancel := context.WithTimeout(ctx, time.Second) // want `context-cancel: context\.WithTimeout must be followed by .defer cancel\(\)`
	_ = cancel
	return c
}

func discards(ctx context.Context) context.Context {
	c, _ := context.WithCancel(ctx) // want `context-cancel: context\.WithCancel cancel discarded`
	return c
}

func ok(ctx context.Context) error {
	c, cancel := context.WithDeadline(ctx, time.Time{})
	defer cancel()
	<-c.Done()
	return c.Err()
}

// okDeferredLit releases through a deferred closure; that counts.
func okDeferredLit(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer func() { cancel() }()
	_ = c
}

// okInLit checks that function literals are analyzed as their own
// functions.
func okInLit(ctx context.Context) func() {
	return func() {
		c, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		_ = c
	}
}

// suppressedLoop is the retry-loop shape: the per-iteration context is
// released unconditionally at the end of the iteration, and a defer
// would pile timers up until the loop exits.
func suppressedLoop(ctx context.Context, work func(context.Context)) {
	for i := 0; i < 3; i++ {
		//lint:ignore context-cancel -- fixture: released unconditionally at the end of the iteration
		c, cancel := context.WithTimeout(ctx, time.Second)
		work(c)
		cancel()
	}
}
