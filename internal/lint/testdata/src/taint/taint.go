// Package taint exercises the interprocedural determinism-taint rule:
// every finding here names a helper whose forbidden effect is at least
// one call away, with the full chain in the message. The helper
// package is deliberately not deterministic-tagged — taint findings
// fire only on det → non-det edges.
//
//lint:deterministic
package taint

import "repro/internal/lint/testdata/src/taint/helper"

// Run reaches time.Now two hops away: Run → helper.Stamp → helper.now.
func Run() int64 {
	return helper.Stamp() // want `determinism-taint: call to helper\.Stamp transitively reads the wall clock or races an ambient timer \(Run → helper\.Stamp → helper\.now → time\.Now\); deterministic packages must derive all timing from injected values`
}

// Draw reaches the global math/rand stream through two hops.
func Draw() int {
	return helper.Draw() // want `determinism-taint: call to helper\.Draw transitively draws from the global math/rand stream \(Draw → helper\.Draw → helper\.draw → rand\.Intn\); use a seeded generator from internal/rng`
}

// Emit leaks map order through the helper's unsorted range.
func Emit(m map[string]string) string {
	return helper.Join(m) // want `determinism-taint: call to helper\.Join transitively leaks map iteration order into escaping state \(Emit → helper\.Join → range over map\[string\]string\); sort the keys before emitting, or sanitize the helper`
}

// FuncVar calls the tainted helper through a local function variable —
// the blind spot a plain callee lookup misses.
func FuncVar() int64 {
	f := helper.Stamp
	return f() // want `determinism-taint: call to helper\.Stamp transitively reads the wall clock`
}

// MethodValue calls the tainted method through a bound method value.
func MethodValue(c helper.Clock) int64 {
	f := c.Stamp
	return f() // want `determinism-taint: call to helper\.Clock\.Stamp transitively reads the wall clock or races an ambient timer \(MethodValue → helper\.Clock\.Stamp → helper\.now → time\.Now\)`
}

// Sanctioned shows the call-site escape hatch: one reasoned ignore
// suppresses one edge, and the audit sees it used.
func Sanctioned() int64 {
	//lint:ignore determinism-taint -- fixture: the stamp feeds a log line only, never exported bytes
	return helper.Stamp()
}

// UsesPaced is clean: the callee's declaration-site barrier sanctions
// its clock use for every caller.
func UsesPaced() {
	helper.Paced()
}
