// Package helper is the non-deterministic dependency of the taint
// fixture: its exported functions reach the wall clock, the global
// math/rand stream and an order-leaking map range only through
// unexported helpers, so any finding against a caller must come from
// the interprocedural summaries, never from the direct rules.
package helper

import (
	"math/rand"
	"strings"
	"time"
)

// now is the package's only wall-clock read: two hops away from the
// callers the fixture flags.
func now() int64 { return time.Now().UnixNano() }

// Stamp reaches the wall clock through now.
func Stamp() int64 { return now() }

// Clock carries the same reach as a method, for the method-value case.
type Clock struct{}

// Stamp reaches the wall clock through now.
func (Clock) Stamp() int64 { return now() }

func draw() int { return rand.Intn(10) }

// Draw reaches the global math/rand stream through draw.
func Draw() int { return draw() }

// Join leaks map iteration order into its return value.
func Join(m map[string]string) string {
	var sb strings.Builder
	for k, v := range m {
		sb.WriteString(k)
		sb.WriteString(v)
	}
	return sb.String()
}

// Paced stalls on the wall clock, but its declaration-site barrier
// sanctions the taint for every caller.
//
//lint:ignore determinism-taint -- fixture: pacing only; nothing the caller sees derives from the clock
func Paced() { time.Sleep(time.Millisecond) }
