// Package nondet exercises the nondeterminism rule. The package is not
// on the central deterministic list, so it opts in with the tag below —
// the same mechanism a new deterministic-path package would use.
//
//lint:deterministic
package nondet

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want `nondeterminism: time\.Now reads the wall clock`
}

func stall() {
	time.Sleep(time.Millisecond) // want `nondeterminism: time\.Sleep stalls on the wall clock`
}

func ambient() <-chan time.Time {
	return time.After(time.Second) // want `nondeterminism: time\.After starts an ambient timer`
}

func globalStream() int {
	return rand.Intn(10) // want `nondeterminism: rand\.Intn draws from the global math/rand stream`
}

// seeded is the approved idiom: rand.New/NewSource are allowed, and
// methods on the seeded generator draw from a private stream.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// arithmetic on durations and formatting of injected times never read
// the clock.
func arithmetic(d time.Duration, t time.Time) string {
	return t.Add(d * 2).Format(time.RFC3339)
}

func suppressedClock() time.Time {
	//lint:ignore nondeterminism -- fixture: demonstrates an explained, intentional wall-clock read
	return time.Now()
}
