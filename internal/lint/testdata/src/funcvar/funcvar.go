// Package funcvar pins the direct-rule fix for calls through function
// variables: time.Now assigned to a local and called later used to
// slip past the callee lookup. Both assignment forms are covered.
//
//lint:deterministic
package funcvar

import (
	"math/rand"
	"time"
)

// viaShortDecl binds the forbidden function with := and calls it.
func viaShortDecl() time.Time {
	f := time.Now
	return f() // want `nondeterminism: time\.Now reads the wall clock`
}

// viaVarDecl binds it with a var declaration.
func viaVarDecl() time.Time {
	var f = time.Now
	return f() // want `nondeterminism: time\.Now reads the wall clock`
}

// viaRand covers the global-rand list through the same blind spot.
func viaRand() int {
	g := rand.Intn
	return g(6) // want `nondeterminism: rand\.Intn draws from the global math/rand stream`
}
