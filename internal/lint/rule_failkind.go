package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// fetchPkgPath is the package that owns the failure taxonomy.
const fetchPkgPath = "repro/internal/fetch"

// failKindRule requires every switch over fetch.FailKind to cover all
// declared kinds or carry a default clause. The taxonomy drives the
// coverage accounting of Tables 3–4: when a fault PR adds a kind, an
// enumerating switch without it silently drops the new bucket from
// retries, stats lines and reports — this rule turns that silence into
// a build break. The declared kinds are discovered from the fetch
// package's constants, so the rule needs no updating when the taxonomy
// grows.
type failKindRule struct{}

func (failKindRule) Name() string { return "failkind-switch" }
func (failKindRule) Doc() string {
	return "every switch over fetch.FailKind must cover all declared kinds or have a default case"
}

// isFailKind reports whether t (or its core) is the fetch.FailKind
// named type.
func isFailKind(t types.Type) (*types.Named, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil, false
	}
	if obj.Pkg().Path() == fetchPkgPath && obj.Name() == "FailKind" {
		return named, true
	}
	return nil, false
}

// declaredKinds enumerates the constants of type fetch.FailKind in the
// taxonomy's owning package: value → constant name.
func declaredKinds(named *types.Named) map[string]string {
	scope := named.Obj().Pkg().Scope()
	out := map[string]string{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		out[c.Val().ExactString()] = name
	}
	return out
}

func (failKindRule) Check(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := isFailKind(tv.Type)
			if !ok {
				return true
			}
			want := declaredKinds(named)
			covered := map[string]bool{}
			for _, c := range sw.Body.List {
				clause := c.(*ast.CaseClause)
				if clause.List == nil {
					return true // default clause: exhaustive by construction
				}
				for _, e := range clause.List {
					if v := pkg.Info.Types[e].Value; v != nil && v.Kind() == constant.String {
						covered[v.ExactString()] = true
					}
				}
			}
			var missing []string
			for val, name := range want {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				r.Reportf(sw.Pos(), "switch over fetch.FailKind is not exhaustive: missing %s (cover every kind or add a default so new taxonomy entries cannot silently drop out of the accounting)",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}
