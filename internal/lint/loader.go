package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one fully type-checked module package, ready for rules.
type Package struct {
	Path  string // import path, e.g. "repro/internal/fetch"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores map[string][]*ignoreDirective // filename -> directives
	detTags []token.Position              // //lint:deterministic opt-in tags, (file, line) order
}

// Loader loads and type-checks packages of one module using only the
// standard library: module packages are parsed from source under the
// module root, standard-library imports are type-checked from GOROOT
// source by go/importer's "source" compiler (no export data, no
// network, no golang.org/x/tools).
//
// The loader is safe for concurrent use: each package is loaded
// exactly once behind a future, so parallel workers loading disjoint
// packages share their transitive dependencies instead of re-checking
// them. The stdlib source importer is not itself concurrency-safe and
// is serialized behind its own mutex; module packages type-check in
// parallel around it.
type Loader struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	ModRoot string // absolute module root

	std   types.Importer
	stdMu sync.Mutex

	mu   sync.Mutex
	pkgs map[string]*pkgFuture // by import path
}

// pkgFuture is the once-only slot for one package: the goroutine that
// creates it completes it; everyone else waits on done.
type pkgFuture struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// buildNoCgo forces CgoEnabled off exactly once for the process: the
// source importer re-type-checks stdlib packages from $GOROOT/src, and
// cgo-tainted variants (net, os/user) would shell out to the cgo tool;
// the pure-Go fallbacks type-check identically for our purposes.
var buildNoCgo sync.Once

// NewLoader locates the enclosing module from dir (walking up to the
// nearest go.mod) and prepares a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	buildNoCgo.Do(func() {
		ctxt := build.Default
		ctxt.CgoEnabled = false
		build.Default = ctxt
	})
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*pkgFuture{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer, dispatching module-internal paths
// to the source loader and everything else to the stdlib importer.
// Module imports are pre-loaded before type-checking starts (see
// load), so this is a cache hit on the happy path.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		pkg, err := l.load(path, nil)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// isModulePath reports whether path names a package of this module.
func (l *Loader) isModulePath(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// pathFor maps a directory under the module root to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads (and memoizes) the package in one directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, nil)
}

// Loaded returns every module package the loader has successfully
// loaded so far — the checked packages plus their transitive module
// dependencies — sorted by import path. The whole-program passes
// (taint summaries) run over this set.
func (l *Loader) Loaded() []*Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var out []*Package
	for _, path := range paths {
		fut := l.pkgs[path]
		select {
		case <-fut.done:
			if fut.err == nil {
				out = append(out, fut.pkg)
			}
		default:
			// still loading (caller's responsibility to sequence; the
			// Runner only calls Loaded after all checks completed)
		}
	}
	return out
}

// load returns the memoized package for path, loading it on first
// request. stack is the current goroutine's in-progress import chain
// for cycle detection; concurrent loads of the same package wait on
// the first loader's future. (A true import cycle split across two
// goroutines could deadlock instead of erroring, but Go rejects import
// cycles at build time, so only the single-goroutine detection below
// is reachable in practice.)
func (l *Loader) load(path string, stack []string) (*Package, error) {
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	l.mu.Lock()
	if fut, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		<-fut.done
		return fut.pkg, fut.err
	}
	fut := &pkgFuture{done: make(chan struct{})}
	l.pkgs[path] = fut
	l.mu.Unlock()
	fut.pkg, fut.err = l.loadUncached(path, append(stack, path))
	close(fut.done)
	return fut.pkg, fut.err
}

// loadUncached parses and type-checks one module package. Test files
// are excluded: the invariants guard production pipeline code, and
// test packages are exempt by design (see the scheduler-bypass
// allowlist). Module-internal imports are loaded (through the shared
// futures) before type-checking begins, so the type-checker's Import
// calls never block behind this goroutine's own work.
func (l *Loader) loadUncached(path string, stack []string) (*Package, error) {
	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	for _, imp := range moduleImports(l, files) {
		if _, err := l.load(imp, stack); err != nil {
			return nil, err
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && len(typeErrs) == 0 {
		typeErrs = append(typeErrs, err)
	}
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}

	return &Package{
		Path:    path,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		ignores: collectIgnores(l.Fset, files),
		detTags: collectDetTags(l.Fset, files),
	}, nil
}

// moduleImports collects the module-internal import paths of files, in
// sorted order, for dependency pre-loading.
func moduleImports(l *Loader, files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] || !l.isModulePath(p) {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ModuleDirs returns every package directory of the module in sorted
// order, skipping testdata, hidden directories and dependency-free
// zones that hold no Go files.
func (l *Loader) ModuleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.ModRoot && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		hasGo := false
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if hasGo {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
