package lint

import (
	"go/ast"
	"go/types"
)

// DefaultRules returns the repo rule set in stable order.
func DefaultRules() []Rule {
	return []Rule{
		nondeterminismRule{},
		mapOrderRule{},
		schedulerBypassRule{},
		contextCancelRule{},
		failKindRule{},
	}
}

// deterministicPkgs are the deterministic-output packages: everything
// they emit (worlds, estates, datasets, exports, reports, the
// deterministic half of metric snapshots) must be a pure function of
// the study seed, so wall-clock reads, the global math/rand stream and
// unsorted map iteration are forbidden there. New deterministic-path
// packages join the invariant by being added here — or by carrying a
// //lint:deterministic tag in any of their files.
var deterministicPkgs = map[string]bool{
	"repro":                     true, // experiment reports and the Study facade
	"repro/internal/world":      true,
	"repro/internal/webgen":     true,
	"repro/internal/dataset":    true,
	"repro/internal/export":     true,
	"repro/internal/report":     true,
	"repro/internal/metrics":    true, // the deterministic snapshot half is golden-compared
	"repro/internal/checkpoint": true, // stored bytes must be seed-deterministic for resume identity
	"repro/internal/shard":      true, // the country partition and backoff schedule feed assembly identity; supervisor wall-clock waits carry reasoned ignores
	"repro/internal/rng":        true,
	"repro/internal/analysis":   true,
	"repro/internal/stats":      true,
	"repro/internal/serve":      true, // response bodies are pure functions of (version, endpoint, params); latency timestamps carry reasoned ignores
	"repro/internal/cluster":    true,
	"repro/internal/govclass":   true,
	"repro/internal/har":        true,
	"repro/internal/geo":        true,
	"repro/internal/probing":    true, // verdicts and the verdict caches feed golden Table 4
	"repro/internal/netsim":     true, // ping geometry memo must preserve bit-identical RTTs
}

// goAllowedPkgs may start goroutines directly: the scheduler itself,
// and the socket servers whose accept loops necessarily spawn per
// connection. Everything else must flow through sched.Pool (or
// sched.Workers) so pipeline concurrency stays within the configured
// goroutine budget. Test files are excluded from analysis entirely,
// so tests are implicitly allowed.
var goAllowedPkgs = map[string]bool{
	"repro/internal/sched":    true,
	"repro/internal/webserve": true,
	"repro/internal/dnswire":  true,
}

// isDeterministic reports whether pkg is under the deterministic-output
// invariant.
func isDeterministic(pkg *Package) bool {
	return deterministicPkgs[pkg.Path] || len(pkg.detTags) > 0
}

// isGoAllowed reports whether pkg may use naked go statements.
func isGoAllowed(pkg *Package) bool {
	return goAllowedPkgs[pkg.Path]
}

// calleeFunc resolves the called function object of a call expression,
// or nil. It sees through parentheses; conversions and method values
// yield nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcBodies yields every function body in the package — declarations
// and literals — with the enclosing FuncDecl name for messages.
func funcBodies(pkg *Package, fn func(name string, body *ast.BlockStmt)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			fn(name, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(name+" (func literal)", lit.Body)
				}
				return true
			})
		}
	}
}

// shortType renders a type with bare package names for diagnostics.
func shortType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
