package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// mapOrderRule flags range statements over maps, in the
// deterministic-output packages, whose bodies leak Go's randomized
// iteration order into state that outlives the loop: writes to
// builders/writers/tables, plain assignments to outer variables, or
// key/value accumulation into slices that are never sorted. The
// canonical safe patterns pass untouched:
//
//   - collect the keys into a slice and sort it in the same function
//     before use (sort.* or slices.Sort* with the slice as argument);
//   - write through a map index (building another map is
//     order-independent);
//   - accumulate with += / ++ style commutative updates;
//   - read-only predicates (membership tests, equality checks).
//
// Everything else is assumed to leak: a diagnostic names the first
// offending statement so the fix (sort the keys first) is mechanical.
type mapOrderRule struct{}

func (mapOrderRule) Name() string { return "map-order" }
func (mapOrderRule) Doc() string {
	return "flag map iteration whose body leaks the randomized order into escaping state; sort the keys first"
}

func (mapOrderRule) Check(pkg *Package, r *Reporter) {
	if !isDeterministic(pkg) {
		return
	}
	funcBodies(pkg, func(name string, body *ast.BlockStmt) {
		scanMapLoops(pkg, body, func(rs *ast.RangeStmt, t types.Type, why string) {
			r.Reportf(rs.Pos(), "iteration over %s leaks map order: %s", shortType(t), why)
		})
	})
}

// scanMapLoops reports every order-leaking map range of body (nested
// function literals skipped — each literal is scanned as its own body)
// through report. Shared between the per-package map-order rule and
// the interprocedural taint summaries.
func scanMapLoops(pkg *Package, body *ast.BlockStmt, report func(rs *ast.RangeStmt, t types.Type, why string)) {
	inspectSkippingFuncLits(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		scan := &mapLoopScan{pkg: pkg, loop: rs, funcBody: body}
		scan.classifyBlock(rs.Body)
		if scan.leak == nil {
			scan.checkPendingSorted()
		}
		if scan.leak != nil {
			report(rs, tv.Type, scan.leak.why)
		}
	})
}

type mapLeak struct {
	pos token.Pos
	why string
}

type mapLoopScan struct {
	pkg      *Package
	loop     *ast.RangeStmt
	funcBody *ast.BlockStmt
	// pending are outer-scope slices appended to inside the loop; they
	// are fine iff the function later sorts them.
	pending []types.Object
	leak    *mapLeak
}

func (s *mapLoopScan) fail(pos token.Pos, format string, args ...any) {
	if s.leak == nil {
		s.leak = &mapLeak{pos: pos, why: fmt.Sprintf(format, args...)}
	}
}

// localToLoop reports whether obj is declared inside the range
// statement — the key/value variables included — so writes to it (or
// through it, when it is the per-entry value pointer) are keyed to the
// current entry and cannot order escaping state.
func (s *mapLoopScan) localToLoop(obj types.Object) bool {
	return obj != nil && obj.Pos() >= s.loop.Pos() && obj.Pos() <= s.loop.End()
}

func (s *mapLoopScan) identObj(e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := s.pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return s.pkg.Info.Uses[id]
	}
	return nil
}

// rootObj peels selectors, dereferences and index expressions off e and
// resolves the base identifier: st.Hostnames, *mix and st.X[i] all root
// at the loop variable when st/mix is one.
func (s *mapLoopScan) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return s.identObj(e)
		}
	}
}

func (s *mapLoopScan) classifyBlock(b *ast.BlockStmt) {
	for _, st := range b.List {
		s.classifyStmt(st)
		if s.leak != nil {
			return
		}
	}
}

func (s *mapLoopScan) classifyStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.classifyAssign(st)
	case *ast.IncDecStmt:
		// Counters commute; n++ is order-independent.
	case *ast.DeclStmt, *ast.EmptyStmt, *ast.BranchStmt, *ast.ReturnStmt:
		// Declarations are loop-local; break/continue and predicate
		// returns do not order any escaping output.
	case *ast.ExprStmt:
		s.classifyCall(st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			s.classifyStmt(st.Init)
		}
		s.classifyBlock(st.Body)
		if st.Else != nil {
			s.classifyStmt(st.Else)
		}
	case *ast.BlockStmt:
		s.classifyBlock(st)
	case *ast.ForStmt:
		s.classifyBlock(st.Body)
	case *ast.RangeStmt:
		s.classifyBlock(st.Body)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				s.classifyStmt(cs)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				s.classifyStmt(cs)
			}
		}
	default:
		// go, defer, send, select, labeled…: conservatively a leak.
		s.fail(st.Pos(), "statement of type %T inside the loop body has iteration-order-dependent effects", st)
	}
}

// classifyAssign admits loop-local definitions, map-index writes,
// commutative compound updates and sorted-later appends; anything else
// writing to outer state leaks the order.
func (s *mapLoopScan) classifyAssign(a *ast.AssignStmt) {
	for i, lhs := range a.Lhs {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if a.Tok == token.DEFINE {
			continue // := introduces loop-locals
		}
		if obj := s.rootObj(lhs); obj != nil && s.localToLoop(obj) {
			continue // write lands in the current entry's value or a loop-local
		}
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if tv, ok := s.pkg.Info.Types[ix.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					continue // building a map is itself order-independent
				}
			}
		}
		if a.Tok != token.ASSIGN {
			// Compound updates (+=, -=, *=, |=, &=, ^=) commute over
			// the iteration for numeric and string-concat-free types;
			// string += builds order-dependent output.
			if tv, ok := s.pkg.Info.Types[lhs]; ok {
				if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsNumeric != 0 {
					continue
				}
			}
			s.fail(a.Pos(), "compound update of non-numeric %s depends on iteration order", exprString(lhs))
			return
		}
		// Plain = to an outer variable: the append-and-sort idiom is
		// deferred to checkPendingSorted; everything else leaks.
		if len(a.Rhs) == len(a.Lhs) {
			if call, ok := ast.Unparen(a.Rhs[i]).(*ast.CallExpr); ok && isAppendTo(s.pkg.Info, call, s.identObj(lhs)) {
				if obj := s.identObj(lhs); obj != nil {
					s.pending = append(s.pending, obj)
					continue
				}
			}
		}
		s.fail(a.Pos(), "assignment to %s overwrites outer state in iteration order", exprString(lhs))
		return
	}
}

// classifyCall judges a statement-level call: effects on loop-local
// receivers are contained; delete(map, k) commutes; anything else
// (Fprintf to a builder, Table.AddRow, encoder writes…) emits in
// iteration order.
func (s *mapLoopScan) classifyCall(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		s.fail(e.Pos(), "expression statement inside the loop body")
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := s.pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "delete" {
			return // removing entries commutes
		}
	case *ast.SelectorExpr:
		if obj := s.rootObj(fun.X); obj != nil && s.localToLoop(obj) {
			return // method call on the current entry's value or a loop-local
		}
	}
	s.fail(call.Pos(), "call to %s emits in iteration order", exprString(call.Fun))
}

// checkPendingSorted verifies every slice appended to inside the loop
// is handed to sort.* or slices.Sort* somewhere in the enclosing
// function; otherwise the accumulated order is the map's.
func (s *mapLoopScan) checkPendingSorted() {
	for _, obj := range s.pending {
		if !s.sortedInFunc(obj) {
			s.fail(s.loop.Pos(), "keys accumulated into %s are never sorted in this function; sort before use", obj.Name())
			return
		}
	}
}

func (s *mapLoopScan) sortedInFunc(obj types.Object) bool {
	sorted := false
	ast.Inspect(s.funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(s.pkg.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if s.identObj(arg) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isAppendTo reports whether call is append(dst, …) growing dst.
func isAppendTo(info *types.Info, call *ast.CallExpr, dst types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || dst == nil {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && (info.Uses[first] == dst || info.Defs[first] == dst)
}

// inspectSkippingFuncLits walks n without descending into nested
// function literals (each literal body is analyzed as its own
// function).
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// exprString renders a short source-ish form of simple expressions for
// diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	}
	return fmt.Sprintf("%T", e)
}
