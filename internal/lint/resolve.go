package lint

import (
	"go/ast"
	"go/types"
)

// This file closes the calleeFunc blind spots: a call through a local
// function variable (`f := fetch.Stamp; f()`) or a method value
// (`f := clock.Stamp; f()`) resolves to nil under calleeFunc, which
// would silently drop the call edge from the taint summaries and hide
// the source from the direct nondeterminism rule. funcBindings scans a
// declaration body for every function value bound to a local variable;
// resolveCallees then returns every function a call expression may
// reach — the direct callee, or all bindings of the called variable.
//
// Known limits, by design: bindings are tracked per declaration (a
// package-level `var f = time.Now` or a function value smuggled
// through a struct field or map is not resolved), and calls through
// interface methods resolve to the interface method object, which has
// no body and therefore no summary. Those flows stay covered by the
// dynamic chaos suite.

// funcBindings maps every local variable of the declaration body to
// the named functions (package functions, methods via method values,
// method expressions) assigned to it anywhere in the body, including
// inside nested function literals.
func funcBindings(info *types.Info, body *ast.BlockStmt) map[types.Object][]*types.Func {
	out := map[types.Object][]*types.Func{}
	bind := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if f := funcValue(info, rhs); f != nil {
			out[obj] = append(out[obj], f)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// funcValue resolves an expression used as a value to the named
// function it denotes: a package function, a method value (x.M) or a
// method expression (T.M). Non-function values yield nil.
func funcValue(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// resolveCallees returns every named function a call may invoke: the
// statically resolved callee when there is one, otherwise every
// function bound (per funcBindings) to the called local variable.
func resolveCallees(info *types.Info, call *ast.CallExpr, bindings map[types.Object][]*types.Func) []*types.Func {
	if f := calleeFunc(info, call); f != nil {
		return []*types.Func{f}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			return bindings[v]
		}
	}
	return nil
}
