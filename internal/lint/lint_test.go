package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fetch"
)

// fixtureDirs lists the fixture packages under testdata/src in stable
// order.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	sort.Strings(dirs)
	return dirs
}

// want is one expected diagnostic, parsed from a fixture comment of the
// form
//
//	… // want `regexp`
//
// on the offending line. Reasonless //lint:ignore directives implicitly
// expect a bad-ignore diagnostic on their own line.
type want struct {
	re      *regexp.Regexp
	matched bool
}

var badIgnoreWant = regexp.MustCompile(`^bad-ignore: malformed`)

// parseWants scans a fixture directory: file base name → line → wants.
func parseWants(t *testing.T, dir string) map[string]map[int][]*want {
	t.Helper()
	out := map[string]map[int][]*want{}
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	const marker = "// want `"
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		lines := map[int][]*want{}
		for i, line := range strings.Split(string(data), "\n") {
			lineno := i + 1
			if idx := strings.Index(line, marker); idx >= 0 {
				rest := line[idx+len(marker):]
				end := strings.Index(rest, "`")
				if end < 0 {
					t.Fatalf("%s:%d: unterminated want expectation", file, lineno)
				}
				lines[lineno] = append(lines[lineno], &want{re: regexp.MustCompile(rest[:end])})
			}
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, ignorePrefix) && parseIgnore(trimmed).bad != "" {
				lines[lineno] = append(lines[lineno], &want{re: badIgnoreWant})
			}
		}
		if len(lines) > 0 {
			out[filepath.Base(file)] = lines
		}
	}
	return out
}

// TestFixtures checks every fixture package against its in-source
// expectations: each diagnostic must be wanted, each want must fire,
// and every fixture must keep govlint red (the suppressed instances
// alone must not make it green).
func TestFixtures(t *testing.T) {
	for _, dir := range fixtureDirs(t) {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			runner, err := NewRunner(".")
			if err != nil {
				t.Fatal(err)
			}
			if err := runner.CheckDir(dir); err != nil {
				t.Fatal(err)
			}
			diags := runner.Diagnostics()
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; fixtures must keep govlint non-zero", dir)
			}
			wants := parseWants(t, dir)
			for _, d := range diags {
				got := d.Rule + ": " + d.Message
				ok := false
				for _, w := range wants[filepath.Base(d.File)][d.Line] {
					if !w.matched && w.re.MatchString(got) {
						w.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for file, lines := range wants {
				for line, ws := range lines {
					for _, w := range ws {
						if !w.matched {
							t.Errorf("%s:%d: expected a diagnostic matching %q, got none", file, line, w.re)
						}
					}
				}
			}
		})
	}
}

// TestDeclaredKindsMatchAllKinds ties the failkind-switch rule's
// statically discovered taxonomy to fetch.AllKinds: if a PR adds a
// FailKind constant without extending AllKinds (or vice versa), this
// fails with the drift spelled out.
func TestDeclaredKindsMatchAllKinds(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(l.ModRoot, "internal", "fetch"))
	if err != nil {
		t.Fatal(err)
	}
	obj := pkg.Types.Scope().Lookup("FailKind")
	if obj == nil {
		t.Fatal("internal/fetch no longer declares FailKind")
	}
	named, ok := isFailKind(obj.Type())
	if !ok {
		t.Fatalf("FailKind resolved to %v, not the expected named type", obj.Type())
	}
	static := declaredKinds(named)
	runtime := map[string]bool{}
	for _, k := range fetch.AllKinds() {
		runtime[strconv.Quote(string(k))] = true
	}
	for val, name := range static {
		if !runtime[val] {
			t.Errorf("constant %s (%s) is declared but missing from fetch.AllKinds()", name, val)
		}
	}
	for val := range runtime {
		if _, ok := static[val]; !ok {
			t.Errorf("fetch.AllKinds() returns %s, which no declared constant carries", val)
		}
	}
	if len(static) != len(fetch.AllKinds()) {
		t.Errorf("declared %d kinds, AllKinds returns %d", len(static), len(fetch.AllKinds()))
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text   string
		bad    bool
		rules  []string
		reason string
	}{
		{"//lint:ignore map-order -- consumer sorts", false, []string{"map-order"}, "consumer sorts"},
		{"//lint:ignore map-order,nondeterminism -- both intentional", false, []string{"map-order", "nondeterminism"}, "both intentional"},
		{"//lint:ignore map-order", true, nil, ""},
		{"//lint:ignore -- reason but no rules", true, nil, ""},
		{"//lint:ignore map-order --   ", true, nil, ""},
	}
	for _, c := range cases {
		d := parseIgnore(c.text)
		if (d.bad != "") != c.bad {
			t.Errorf("parseIgnore(%q): bad=%q, want bad=%v", c.text, d.bad, c.bad)
			continue
		}
		if c.bad {
			continue
		}
		if d.reason != c.reason {
			t.Errorf("parseIgnore(%q): reason %q, want %q", c.text, d.reason, c.reason)
		}
		for _, r := range c.rules {
			if !d.rules[r] {
				t.Errorf("parseIgnore(%q): rule %q not recorded", c.text, r)
			}
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	data, err := JSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Errorf("JSON(nil) = %q, want []", data)
	}
}
