package lint

import (
	"testing"
)

// TestRepoIsClean runs the whole rule set over the whole module — the
// same check as `go run ./cmd/govlint ./...` — and requires zero
// findings. Every intentional violation must carry a reasoned
// //lint:ignore, so a red result here means either a real regression
// or an unexplained suppression.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	runner, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.CheckModule(); err != nil {
		t.Fatal(err)
	}
	if diags := runner.Diagnostics(); len(diags) > 0 {
		t.Errorf("govlint is not clean on the repository:\n%s", Text(diags))
	}
}

// TestRepoIsCleanParallel is the same whole-module check on a worker
// team — the shape the tier-1 leg actually runs — and doubles as the
// repo-scale race test for the concurrent loader and runner.
func TestRepoIsCleanParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	runner, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := runner.Loader.ModuleDirs()
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.CheckDirs(dirs, 8); err != nil {
		t.Fatal(err)
	}
	if diags := runner.Diagnostics(); len(diags) > 0 {
		t.Errorf("govlint (parallel) is not clean on the repository:\n%s", Text(diags))
	}
}
