// Package lint is a self-contained static-analysis engine that
// mechanically enforces this repository's determinism and concurrency
// invariants: the headline guarantee that equal seeds produce
// byte-identical datasets, exports and deterministic metric snapshots
// at any concurrency shape. The chaos suite checks those properties
// dynamically for the packages it happens to exercise; the analyzer
// checks the source of every package on every run, so a future PR
// cannot quietly reintroduce a wall-clock read, an unsorted map
// iteration or an unbudgeted goroutine.
//
// The engine is built exclusively on the standard library's go/ast,
// go/parser and go/types (the module has zero dependencies and the
// build environment is offline); stdlib imports are type-checked from
// GOROOT source. Rules are pluggable (see Rule), diagnostics carry
// file:line positions, and intentional violations are suppressed
// in-source with
//
//	//lint:ignore rule-name -- reason
//
// on the offending line or the line directly above it. The reason is
// mandatory. Run it as `go run ./cmd/govlint ./...`.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributable to a rule.
type Diagnostic struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one invariant check. Check inspects a type-checked package
// and reports findings through report; suppression, sorting and
// rendering are the engine's job.
type Rule interface {
	Name() string
	Doc() string
	Check(pkg *Package, r *Reporter)
}

// Reporter collects diagnostics for one (package, rule) pass.
type Reporter struct {
	runner *Runner
	pkg    *Package
	rule   string
}

// Reportf records a diagnostic at pos unless an ignore directive
// covers it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	position := r.runner.Loader.Fset.Position(pos)
	if r.pkg.suppressed(position, r.rule) {
		return
	}
	rel, err := filepath.Rel(r.runner.Loader.ModRoot, position.Filename)
	if err != nil {
		rel = position.Filename
	}
	r.runner.diags = append(r.runner.diags, Diagnostic{
		File:    filepath.ToSlash(rel),
		Line:    position.Line,
		Col:     position.Column,
		Rule:    r.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Runner drives a rule set over packages and accumulates diagnostics.
type Runner struct {
	Loader *Loader
	Rules  []Rule

	diags []Diagnostic
}

// NewRunner builds a runner with the default rule set for the module
// containing dir.
func NewRunner(dir string) (*Runner, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	return &Runner{Loader: l, Rules: DefaultRules()}, nil
}

// CheckDir loads the package in dir and runs every rule over it.
func (r *Runner) CheckDir(dir string) error {
	pkg, err := r.Loader.LoadDir(dir)
	if err != nil {
		return err
	}
	r.checkPackage(pkg)
	return nil
}

// CheckModule runs every rule over every package of the module.
func (r *Runner) CheckModule() error {
	dirs, err := r.Loader.ModuleDirs()
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		if err := r.CheckDir(dir); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) checkPackage(pkg *Package) {
	for _, rule := range r.Rules {
		rule.Check(pkg, &Reporter{runner: r, pkg: pkg, rule: rule.Name()})
	}
	r.checkDirectives(pkg)
}

// checkDirectives flags malformed //lint:ignore comments: a
// suppression without a reason must not silently suppress.
func (r *Runner) checkDirectives(pkg *Package) {
	rep := &Reporter{runner: r, pkg: pkg, rule: "bad-ignore"}
	for file, ds := range pkg.ignores {
		for _, d := range ds {
			if d.bad == "" {
				continue
			}
			rel, err := filepath.Rel(r.Loader.ModRoot, file)
			if err != nil {
				rel = file
			}
			rep.runner.diags = append(rep.runner.diags, Diagnostic{
				File: filepath.ToSlash(rel), Line: d.line, Col: 1,
				Rule:    "bad-ignore",
				Message: fmt.Sprintf("malformed //lint:ignore directive: %s (want //lint:ignore rule -- reason)", d.bad),
			})
		}
	}
}

// Diagnostics returns the accumulated findings, deterministically
// ordered (file, line, column, rule) and deduplicated.
func (r *Runner) Diagnostics() []Diagnostic {
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	out := r.diags[:0]
	for i, d := range r.diags {
		if i == 0 || d != r.diags[i-1] {
			out = append(out, d)
		}
	}
	r.diags = out
	return out
}

// Text renders diagnostics one per line, golden-diffable.
func Text(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// JSON renders diagnostics as an indented JSON array for machine
// consumption ([] rather than null when clean).
func JSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}
