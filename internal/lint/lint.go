// Package lint is a self-contained static-analysis engine that
// mechanically enforces this repository's determinism and concurrency
// invariants: the headline guarantee that equal seeds produce
// byte-identical datasets, exports and deterministic metric snapshots
// at any concurrency shape. The chaos suite checks those properties
// dynamically for the packages it happens to exercise; the analyzer
// checks the source of every package on every run, so a future PR
// cannot quietly reintroduce a wall-clock read, an unsorted map
// iteration or an unbudgeted goroutine.
//
// The engine runs in two phases. Per-package rules (see Rule) inspect
// one type-checked package at a time — optionally in parallel on a
// sched.Workers team, with the report order deterministic either way.
// After every requested package has been checked, the whole-program
// phase builds per-function taint summaries over a call graph spanning
// all loaded packages, propagates them to a fixed point, reports
// deterministic packages that call transitively tainted helpers with
// the full call chain in the diagnostic (see summary.go), and finally
// audits every suppression directive for staleness (see audit.go).
//
// The engine is built exclusively on the standard library's go/ast,
// go/parser and go/types (the module has zero dependencies and the
// build environment is offline); stdlib imports are type-checked from
// GOROOT source. Diagnostics carry file:line positions, and
// intentional violations are suppressed in-source with
//
//	//lint:ignore rule-name -- reason
//
// on the offending line or the line directly above it. The reason is
// mandatory, and a directive that suppresses nothing is itself an
// error. Run it as `go run ./cmd/govlint ./...`.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// Diagnostic is one finding, positioned and attributable to a rule.
type Diagnostic struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one invariant check. Check inspects a type-checked package
// and reports findings through report; suppression, sorting and
// rendering are the engine's job.
type Rule interface {
	Name() string
	Doc() string
	Check(pkg *Package, r *Reporter)
}

// Descriptor names and documents one check of the engine — the
// pluggable per-package rules plus the engine-level passes (taint,
// directive audit) that are not Rule values. SARIF output and the
// -rules listing are driven by this.
type Descriptor struct {
	Name string
	Doc  string
}

// Descriptors returns every check the engine can report, in stable
// order: the default rules first, then the engine passes.
func Descriptors() []Descriptor {
	var out []Descriptor
	for _, r := range DefaultRules() {
		out = append(out, Descriptor{Name: r.Name(), Doc: r.Doc()})
	}
	out = append(out,
		Descriptor{Name: taintRuleName, Doc: taintRuleDoc},
		Descriptor{Name: "bad-ignore", Doc: "a //lint:ignore directive must name rules and carry a '-- reason'"},
		Descriptor{Name: "stale-ignore", Doc: "every //lint:ignore must suppress a live finding or bar live taint; stale directives must be deleted"},
		Descriptor{Name: "stale-deterministic-tag", Doc: "a //lint:deterministic tag must not duplicate another tag or the central deterministicPkgs list"},
	)
	return out
}

// Reporter collects diagnostics for one (package, rule) pass.
type Reporter struct {
	runner *Runner
	pkg    *Package
	rule   string
}

// Reportf records a diagnostic at pos unless an ignore directive
// covers it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	position := r.runner.Loader.Fset.Position(pos)
	if r.pkg.suppressed(position, r.rule) {
		return
	}
	r.runner.record(Diagnostic{
		File:    r.runner.relPath(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Rule:    r.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Runner drives a rule set over packages and accumulates diagnostics.
// Per-package checks may run concurrently (CheckDirs with workers > 1);
// the whole-program taint phase and the suppression audit run once,
// serially, when Finish (or Diagnostics) is called.
type Runner struct {
	Loader *Loader
	Rules  []Rule

	mu       sync.Mutex
	diags    []Diagnostic
	checked  map[string]*Package
	finished bool
}

// NewRunner builds a runner with the default rule set for the module
// containing dir.
func NewRunner(dir string) (*Runner, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	return &Runner{Loader: l, Rules: DefaultRules(), checked: map[string]*Package{}}, nil
}

// record appends one diagnostic under the runner lock.
func (r *Runner) record(d Diagnostic) {
	r.mu.Lock()
	r.diags = append(r.diags, d)
	r.mu.Unlock()
}

// relPath renders filename relative to the module root.
func (r *Runner) relPath(filename string) string {
	rel, err := filepath.Rel(r.Loader.ModRoot, filename)
	if err != nil {
		rel = filename
	}
	return filepath.ToSlash(rel)
}

// CheckDir loads the package in dir and runs every per-package rule
// over it.
func (r *Runner) CheckDir(dir string) error {
	pkg, err := r.Loader.LoadDir(dir)
	if err != nil {
		return err
	}
	r.checkPackage(pkg)
	return nil
}

// CheckModule runs every rule over every package of the module,
// serially.
func (r *Runner) CheckModule() error {
	dirs, err := r.Loader.ModuleDirs()
	if err != nil {
		return err
	}
	return r.CheckDirs(dirs, 1)
}

// CheckDirs runs the per-package rules over every listed directory on
// a team of workers goroutines (1 = serial). Findings are identical to
// a serial run: the loader shares packages behind futures, every
// package is checked by exactly one worker, and Diagnostics sorts the
// merged findings into (file, line, col, rule) order regardless of
// which worker produced them.
func (r *Runner) CheckDirs(dirs []string, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers <= 1 {
		for _, dir := range dirs {
			if err := r.CheckDir(dir); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(dirs))
	var next atomic.Int64
	wait := sched.Workers(workers, func(int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(dirs) {
				return
			}
			errs[i] = r.CheckDir(dirs[i])
		}
	})
	wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) checkPackage(pkg *Package) {
	r.mu.Lock()
	if _, dup := r.checked[pkg.Path]; dup {
		r.mu.Unlock()
		return
	}
	r.checked[pkg.Path] = pkg
	r.mu.Unlock()
	for _, rule := range r.Rules {
		rule.Check(pkg, &Reporter{runner: r, pkg: pkg, rule: rule.Name()})
	}
	r.checkDirectives(pkg)
}

// checkDirectives flags malformed //lint:ignore comments: a
// suppression without a reason must not silently suppress.
func (r *Runner) checkDirectives(pkg *Package) {
	files := make([]string, 0, len(pkg.ignores))
	for file := range pkg.ignores {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		for _, d := range pkg.ignores[file] {
			if d.bad == "" {
				continue
			}
			r.record(Diagnostic{
				File: r.relPath(file), Line: d.line, Col: 1,
				Rule:    "bad-ignore",
				Message: fmt.Sprintf("malformed //lint:ignore directive: %s (want //lint:ignore rule -- reason)", d.bad),
			})
		}
	}
}

// checkedPackages returns the packages the per-package phase ran over,
// sorted by import path.
func (r *Runner) checkedPackages() []*Package {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Package, 0, len(r.checked))
	for _, pkg := range r.checked {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Finish runs the whole-program phases over everything checked so far:
// the interprocedural determinism-taint analysis (summaries over all
// loaded packages, reported into the checked deterministic packages)
// and then the suppression audit. It is idempotent; Diagnostics calls
// it automatically. No further Check calls may follow.
func (r *Runner) Finish() {
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		return
	}
	r.finished = true
	r.mu.Unlock()
	sums := buildSummaries(r.Loader)
	propagate(sums)
	r.reportTaint(sums)
	r.auditSuppressions()
}

// Diagnostics completes the analysis (Finish) and returns the
// accumulated findings, deterministically ordered (file, line, column,
// rule) and deduplicated.
func (r *Runner) Diagnostics() []Diagnostic {
	r.Finish()
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	out := r.diags[:0]
	for i, d := range r.diags {
		if i == 0 || d != r.diags[i-1] {
			out = append(out, d)
		}
	}
	r.diags = out
	return out
}

// Text renders diagnostics one per line, golden-diffable.
func Text(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// JSON renders diagnostics as an indented JSON array for machine
// consumption ([] rather than null when clean).
func JSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}
