package lint

import (
	"encoding/json"
	"fmt"
	"os"
)

// CI-grade output: diagnostics render as SARIF 2.1.0 for code-scanning
// upload, and a baseline file (the -format json output of a previous
// run) lets an adopting pipeline go red only on findings it has not
// already accepted. Both renderings consume the sorted, deduplicated
// slice from Runner.Diagnostics, so the bytes are identical across
// runs and concurrency shapes.

// sarifLog is the minimal SARIF 2.1.0 document shape this engine
// emits. Field order is fixed by the struct, so marshaling is
// byte-deterministic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders diagnostics as an indented SARIF 2.1.0 log. The rule
// table carries every check the engine knows (Descriptors), findings
// or not, so a clean run still documents what was enforced.
func SARIF(diags []Diagnostic) ([]byte, error) {
	var rules []sarifRule
	for _, d := range Descriptors() {
		rules = append(rules, sarifRule{ID: d.Name, ShortDescription: sarifMessage{Text: d.Doc}})
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "govlint",
				InformationURI: "https://example.invalid/govlint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// LoadBaseline reads a baseline file: a JSON array of diagnostics in
// the exact shape `govlint -format json` emits.
func LoadBaseline(path string) ([]Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return diags, nil
}

// FilterBaseline drops every finding already accepted by the baseline
// and returns the rest. A finding matches a baseline entry when file,
// rule and message agree — line and column drift is tolerated, so
// unrelated edits above an accepted finding do not resurface it.
// Matching is multiset-wise: two identical findings need two baseline
// entries.
func FilterBaseline(diags, baseline []Diagnostic) []Diagnostic {
	type key struct{ file, rule, message string }
	accepted := map[key]int{}
	for _, d := range baseline {
		accepted[key{d.File, d.Rule, d.Message}]++
	}
	kept := []Diagnostic{}
	for _, d := range diags {
		k := key{d.File, d.Rule, d.Message}
		if accepted[k] > 0 {
			accepted[k]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
