package lint

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostics file")

// TestGolden locks the rendered diagnostics of every fixture package
// against testdata/golden.txt, byte for byte: positions, rule names and
// message wording are all part of the contract (the tier-1 verify leg
// diffs this output shape). Regenerate with `go test ./internal/lint
// -run Golden -update` after an intentional change.
func TestGolden(t *testing.T) {
	runner, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range fixtureDirs(t) {
		if err := runner.CheckDir(dir); err != nil {
			t.Fatal(err)
		}
	}
	got := Text(runner.Diagnostics())
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("fixture diagnostics drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
