package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural half of the determinism contract.
// The per-package nondeterminism and map-order rules catch a
// deterministic package that reads the wall clock directly; they are
// blind to a helper in internal/fetch or internal/sched that reads the
// clock and hands the value back. Here every function of every loaded
// package gets a summary — does it, transitively through every named
// call, reach a wall-clock/timer entry point, the global math/rand
// stream, or an order-leaking map iteration? — the summaries are
// propagated over the call graph to a fixed point, and a deterministic
// package calling a tainted helper in a non-deterministic package is
// reported with the full call chain (Run → fetch.stamp → time.Now) so
// the reader never has to reconstruct the path by hand.
//
// Sanctioning is explicit and audited, at either end of the edge:
//
//   - at the call site, a plain `//lint:ignore determinism-taint --
//     reason` suppresses one call, like any other rule;
//   - on the callee's declaration (its own line or the doc-comment
//     line above), the same directive is a taint barrier: the function
//     declares that its clock/rand/map-order effects never reach
//     deterministic output (queue-wait histograms, retry pacing), and
//     no caller anywhere is flagged for reaching it. A barrier on a
//     function with no live taint is reported stale by the audit, so
//     barriers rot no more quietly than ignores.

const (
	taintRuleName = "determinism-taint"
	taintRuleDoc  = "forbid deterministic packages from calling helpers that transitively read the wall clock, draw from the global math/rand stream, or leak map iteration order"
)

// taintKind enumerates the taint facts a summary tracks.
type taintKind int

const (
	taintClock    taintKind = iota // wall-clock reads and ambient timers
	taintRand                      // the global math/rand stream
	taintMapOrder                  // map iteration order leaking into escaping state
	numTaintKinds
)

// directRule is the per-package rule that owns kind's direct findings;
// a source suppressed under it does not enter the summaries.
func (k taintKind) directRule() string {
	if k == taintMapOrder {
		return "map-order"
	}
	return "nondeterminism"
}

// phrase describes what a tainted callee transitively does, for the
// diagnostic.
func (k taintKind) phrase() string {
	switch k {
	case taintClock:
		return "transitively reads the wall clock or races an ambient timer"
	case taintRand:
		return "transitively draws from the global math/rand stream"
	default:
		return "transitively leaks map iteration order into escaping state"
	}
}

// remedy is the fix guidance appended to kind's diagnostics.
func (k taintKind) remedy() string {
	switch k {
	case taintClock:
		return "deterministic packages must derive all timing from injected values"
	case taintRand:
		return "use a seeded generator from internal/rng"
	default:
		return "sort the keys before emitting, or sanitize the helper"
	}
}

// taintSource is the root of one taint fact: the forbidden entry point
// (time.Now, rand.Intn) or leaking construct (range over map[...]).
type taintSource struct {
	desc string // rendered at the end of the call chain
}

// taintTrace records how a function became tainted: directly (via ==
// nil) or through a call to via, whose own trace continues the chain.
type taintTrace struct {
	via    *types.Func
	source taintSource
}

// callEdge is one outgoing call of a function to a named module
// function, positioned for reporting.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// funcSummary is the per-function unit of the interprocedural
// analysis.
type funcSummary struct {
	fn      *types.Func
	pkg     *Package
	local   string         // receiver-qualified name, no package (caller end of chains)
	display string         // package-qualified name (interior of chains)
	pos     token.Position // declaration position, for deterministic ordering
	barrier *ignoreDirective

	direct [numTaintKinds]*taintSource
	calls  []callEdge

	// eff is the propagated taint with barriers honoured (what callers
	// see); real ignores barriers and exists so the audit can tell a
	// live barrier from a stale one.
	eff  [numTaintKinds]*taintTrace
	real [numTaintKinds]bool
}

// exported returns the taint trace callers inherit from this function:
// nil when clean or when a declaration-site barrier sanctions the
// taint.
func (s *funcSummary) exported(k taintKind) *taintTrace {
	if s.barrier != nil {
		return nil
	}
	return s.eff[k]
}

// summarySet is the whole-program summary index.
type summarySet struct {
	byFunc map[*types.Func]*funcSummary
	order  []*funcSummary // sorted by (package path, decl file, line)
}

// buildSummaries extracts a summary for every declared function of
// every loaded module package: direct taint sources (with call-site
// and declaration-site sanctions honoured and marked used) and the
// outgoing call edges, resolved through method values and local
// function variables by resolveCallees.
func buildSummaries(l *Loader) *summarySet {
	set := &summarySet{byFunc: map[*types.Func]*funcSummary{}}
	for _, pkg := range l.Loaded() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fobj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fobj == nil {
					continue
				}
				s := newSummary(l, pkg, fd, fobj)
				set.byFunc[fobj] = s
				set.order = append(set.order, s)
			}
		}
	}
	// Loaded() is path-sorted and files/decls walk in source order, so
	// order is already deterministic; no re-sort needed.
	return set
}

// newSummary scans one declaration: call edges, direct sources and the
// optional declaration-site barrier.
func newSummary(l *Loader, pkg *Package, fd *ast.FuncDecl, fobj *types.Func) *funcSummary {
	declPos := l.Fset.Position(fd.Pos())
	s := &funcSummary{
		fn:      fobj,
		pkg:     pkg,
		local:   localName(fobj),
		display: displayName(fobj),
		pos:     declPos,
		barrier: pkg.suppressor(declPos, taintRuleName),
	}
	bindings := funcBindings(pkg.Info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, f := range resolveCallees(pkg.Info, call, bindings) {
			if f.Pkg() == nil {
				continue
			}
			if l.isModulePath(f.Pkg().Path()) {
				s.calls = append(s.calls, callEdge{callee: f, pos: call.Pos()})
				continue
			}
			k, ok := directTaint(f)
			if !ok || s.direct[k] != nil {
				continue
			}
			pos := l.Fset.Position(call.Pos())
			if pkg.suppressed(pos, taintRuleName) || pkg.suppressed(pos, k.directRule()) {
				continue
			}
			s.direct[k] = &taintSource{desc: f.Pkg().Name() + "." + f.Name()}
		}
		return true
	})
	// Map-order leaks are scanned per body, mirroring the map-order
	// rule: the declaration body first (literals skipped), then each
	// literal body on its own, all attributed to the declaration.
	if s.direct[taintMapOrder] == nil {
		s.scanMapOrder(l, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && s.direct[taintMapOrder] == nil {
				s.scanMapOrder(l, lit.Body)
			}
			return true
		})
	}
	return s
}

// scanMapOrder records the first unsanctioned order-leaking map loop
// of body as a direct map-order source.
func (s *funcSummary) scanMapOrder(l *Loader, body *ast.BlockStmt) {
	scanMapLoops(s.pkg, body, func(rs *ast.RangeStmt, t types.Type, why string) {
		if s.direct[taintMapOrder] != nil {
			return
		}
		pos := l.Fset.Position(rs.Pos())
		if s.pkg.suppressed(pos, taintRuleName) || s.pkg.suppressed(pos, taintMapOrder.directRule()) {
			return
		}
		s.direct[taintMapOrder] = &taintSource{desc: "range over " + shortType(t)}
	})
}

// directTaint classifies a resolved callee as a direct taint source:
// the wall-clock/timer entry points of package time, or the global
// math/rand stream. Methods never match — r.Float64() on a seeded
// *rand.Rand and t.Format() on an injected time.Time are the approved
// idioms; only the package-level entry points reach the wall clock or
// the shared global stream.
func directTaint(f *types.Func) (taintKind, bool) {
	if f.Pkg() == nil {
		return 0, false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return 0, false
	}
	switch f.Pkg().Path() {
	case "time":
		if _, bad := forbiddenTime[f.Name()]; bad {
			return taintClock, true
		}
	case "math/rand", "math/rand/v2":
		if forbiddenRand[f.Name()] {
			return taintRand, true
		}
	}
	return 0, false
}

// propagate runs the summaries to a fixed point: a caller inherits
// every taint kind its callees export. eff is set at most once per
// (function, kind), in deterministic summary order, so the recorded
// via-chains are stable across runs and concurrency shapes and always
// terminate (a trace only ever points at a function whose own trace
// was completed strictly earlier). real propagates the same facts with
// barriers ignored; the audit uses it to spot stale barriers.
func propagate(set *summarySet) {
	for _, s := range set.order {
		for k := taintKind(0); k < numTaintKinds; k++ {
			if s.direct[k] != nil {
				s.eff[k] = &taintTrace{source: *s.direct[k]}
				s.real[k] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range set.order {
			for _, e := range s.calls {
				c := set.byFunc[e.callee]
				if c == nil || c == s {
					continue
				}
				for k := taintKind(0); k < numTaintKinds; k++ {
					if c.real[k] && !s.real[k] {
						s.real[k] = true
						changed = true
					}
					if tr := c.exported(k); tr != nil && s.eff[k] == nil {
						s.eff[k] = &taintTrace{via: c.fn, source: tr.source}
						changed = true
					}
				}
			}
		}
	}
	// A barrier that bars live taint is a used suppression; one on a
	// clean function is stale and the audit will say so.
	for _, s := range set.order {
		if s.barrier == nil {
			continue
		}
		for k := taintKind(0); k < numTaintKinds; k++ {
			if s.real[k] {
				s.barrier.used = true
				break
			}
		}
	}
}

// reportTaint flags every call from a checked deterministic package
// into a tainted function of a non-deterministic package. Calls whose
// callee lives in a deterministic package are skipped: the direct
// rules (or this rule, at the callee's own call sites) already own the
// source there, and one finding per reachable source is enough.
func (r *Runner) reportTaint(set *summarySet) {
	for _, pkg := range r.checkedPackages() {
		if !isDeterministic(pkg) {
			continue
		}
		rep := &Reporter{runner: r, pkg: pkg, rule: taintRuleName}
		for _, s := range set.order {
			if s.pkg != pkg {
				continue
			}
			for _, e := range s.calls {
				c := set.byFunc[e.callee]
				if c == nil || isDeterministic(c.pkg) {
					continue
				}
				for k := taintKind(0); k < numTaintKinds; k++ {
					tr := c.exported(k)
					if tr == nil {
						continue
					}
					rep.Reportf(e.pos, "call to %s %s (%s); %s",
						c.display, k.phrase(), set.chain(s, c, k), k.remedy())
				}
			}
		}
	}
}

// chain renders the full call chain of one finding, caller first and
// the forbidden source last: Run → fetch.stamp → fetch.now → time.Now.
func (set *summarySet) chain(caller, callee *funcSummary, k taintKind) string {
	parts := []string{caller.local}
	cur := callee
	for depth := 0; depth < 64; depth++ {
		parts = append(parts, cur.display)
		tr := cur.eff[k]
		if tr == nil {
			break
		}
		if tr.via == nil {
			parts = append(parts, tr.source.desc)
			break
		}
		next := set.byFunc[tr.via]
		if next == nil {
			break
		}
		cur = next
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += " → " + p
	}
	return out
}

// localName renders a function the way its own package sees it:
// receiver-qualified for methods, bare otherwise.
func localName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		return types.TypeString(t, func(*types.Package) string { return "" }) + "." + f.Name()
	}
	return f.Name()
}

// displayName is localName with the owning package's name prefixed,
// for the interior of cross-package call chains.
func displayName(f *types.Func) string {
	name := localName(f)
	if f.Pkg() != nil {
		name = f.Pkg().Name() + "." + name
	}
	return name
}
