package lint

import (
	"go/ast"
	"go/types"
)

// contextCancelRule requires that every context.WithCancel /
// WithTimeout / WithDeadline (and their Cause variants) is paired with
// a defer cancel() in the same function. An unreleased cancel leaks
// the context's timer and child goroutine; a cancel called only on
// some paths leaks them on the others. Loops that must release
// per-iteration contexts immediately (the retry paths) suppress the
// rule with a reason.
type contextCancelRule struct{}

func (contextCancelRule) Name() string { return "context-cancel" }
func (contextCancelRule) Doc() string {
	return "context.WithCancel/WithTimeout/WithDeadline must be followed by defer cancel() in the same function"
}

var cancelReturning = map[string]bool{
	"WithCancel":        true,
	"WithCancelCause":   true,
	"WithTimeout":       true,
	"WithTimeoutCause":  true,
	"WithDeadline":      true,
	"WithDeadlineCause": true,
}

func (contextCancelRule) Check(pkg *Package, r *Reporter) {
	funcBodies(pkg, func(name string, body *ast.BlockStmt) {
		deferred := deferredObjects(pkg, body)
		inspectSkippingFuncLits(body, func(n ast.Node) {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Rhs) != 1 || len(a.Lhs) != 2 {
				return
			}
			call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return
			}
			f := calleeFunc(pkg.Info, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" || !cancelReturning[f.Name()] {
				return
			}
			cancelIdent, ok := ast.Unparen(a.Lhs[1]).(*ast.Ident)
			if !ok {
				r.Reportf(a.Pos(), "context.%s cancel assigned to a non-identifier; it cannot be deferred", f.Name())
				return
			}
			if cancelIdent.Name == "_" {
				r.Reportf(a.Pos(), "context.%s cancel discarded; the context's resources are never released", f.Name())
				return
			}
			obj := pkg.Info.Defs[cancelIdent]
			if obj == nil {
				obj = pkg.Info.Uses[cancelIdent]
			}
			if obj == nil || !deferred[obj] {
				r.Reportf(a.Pos(), "context.%s must be followed by `defer %s()` in %s", f.Name(), cancelIdent.Name, name)
			}
		})
	})
}

// deferredObjects collects every object called (directly, or inside a
// deferred function literal) by a defer statement of body.
func deferredObjects(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		switch fun := ast.Unparen(d.Call.Fun).(type) {
		case *ast.Ident:
			record(fun)
		case *ast.FuncLit:
			// defer func() { …; cancel(); … }()
			ast.Inspect(fun.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					record(c.Fun)
				}
				return true
			})
		}
	})
	return out
}
