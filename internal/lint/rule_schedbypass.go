package lint

import (
	"go/ast"
)

// schedulerBypassRule forbids naked go statements outside the
// scheduler itself and the socket-server packages. All pipeline
// concurrency must flow through sched.Pool (or sched.Workers), which
// is what keeps a study's goroutine count at the configured
// CountryConcurrency + FetchConcurrency budget and keeps completion
// order out of the data path. Server accept loops (webserve, dnswire)
// legitimately spawn per connection; other intentional spawns — e.g.
// the probing agent's delayed echo replies — carry a //lint:ignore
// with a reason. Test files are not analyzed, so tests may spawn
// freely.
type schedulerBypassRule struct{}

func (schedulerBypassRule) Name() string { return "scheduler-bypass" }
func (schedulerBypassRule) Doc() string {
	return "forbid naked go statements outside internal/sched and the socket servers; use sched.Pool"
}

func (schedulerBypassRule) Check(pkg *Package, r *Reporter) {
	if isGoAllowed(pkg) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				r.Reportf(g.Pos(), "naked go statement bypasses the bounded scheduler; route the work through sched.Pool or sched.Workers so it stays within the goroutine budget")
			}
			return true
		})
	}
}
