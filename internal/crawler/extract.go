package crawler

import (
	"net/url"
	"strings"
)

// ExtractLinks scans an HTML document for href/src attribute values
// and resolves them against the base URL. It is a small, permissive
// scanner rather than a full HTML parser: it understands quoted
// attributes, skips fragments, javascript: and mailto: pseudo-links,
// and deduplicates while preserving first-seen order — all the crawler
// needs from Selenium-captured pages.
func ExtractLinks(base string, body []byte) []string {
	baseURL, err := url.Parse(base)
	if err != nil {
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	s := string(body)
	for i := 0; i < len(s); {
		// Find the next href= or src= attribute.
		hi := strings.Index(s[i:], "href=")
		si := strings.Index(s[i:], "src=")
		var at, skip int
		switch {
		case hi < 0 && si < 0:
			return out
		case si < 0 || (hi >= 0 && hi < si):
			at, skip = i+hi, 5
		default:
			at, skip = i+si, 4
		}
		i = at + skip
		if i >= len(s) {
			return out
		}
		quote := s[i]
		if quote != '"' && quote != '\'' {
			continue
		}
		end := strings.IndexByte(s[i+1:], quote)
		if end < 0 {
			return out
		}
		raw := s[i+1 : i+1+end]
		i += end + 2
		link := cleanLink(baseURL, raw)
		if link != "" && !seen[link] {
			seen[link] = true
			out = append(out, link)
		}
	}
	return out
}

func cleanLink(base *url.URL, raw string) string {
	raw = strings.TrimSpace(raw)
	if raw == "" || strings.HasPrefix(raw, "#") {
		return ""
	}
	lower := strings.ToLower(raw)
	for _, scheme := range []string{"javascript:", "mailto:", "tel:", "data:"} {
		if strings.HasPrefix(lower, scheme) {
			return ""
		}
	}
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	resolved := base.ResolveReference(u)
	if resolved.Scheme != "http" && resolved.Scheme != "https" {
		return ""
	}
	resolved.Fragment = ""
	return resolved.String()
}
