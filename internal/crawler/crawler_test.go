package crawler

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fetch"
	"repro/internal/sched"
)

// fakeSite is a Fetcher serving a synthetic page graph: page /p{d}-{i}
// links to two pages at depth d+1.
type fakeSite struct {
	maxDepth int
	fanout   int
	fetches  atomic.Int64
	fail     map[string]bool
	slow     time.Duration
}

func (f *fakeSite) Fetch(ctx context.Context, url string) (*fetch.Response, error) {
	f.fetches.Add(1)
	if f.slow > 0 {
		select {
		case <-time.After(f.slow):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.fail[url] {
		return nil, errors.New("connection refused")
	}
	var d, i int
	if _, err := fmt.Sscanf(url, "https://site.test/p%d-%d", &d, &i); err != nil {
		return nil, fmt.Errorf("no such page %q", url)
	}
	var body strings.Builder
	if d < f.maxDepth {
		for k := 0; k < f.fanout; k++ {
			fmt.Fprintf(&body, `<a href="/p%d-%d">x</a>`, d+1, i*f.fanout+k)
		}
	}
	return &fetch.Response{Status: 200, ContentType: "text/html", Body: []byte(body.String())}, nil
}

func TestCrawlVisitsWholeTree(t *testing.T) {
	site := &fakeSite{maxDepth: 3, fanout: 2}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 7, Concurrency: 4, Country: "XX"}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	// Depths 0..3 with fanout 2: 1 + 2 + 4 + 8 = 15 URLs.
	if got := len(archive.Entries); got != 15 {
		t.Fatalf("entries = %d, want 15", got)
	}
	for _, e := range archive.Entries {
		if e.Country != "XX" {
			t.Fatalf("country not propagated: %+v", e)
		}
	}
}

func TestCrawlHonoursDepthLimit(t *testing.T) {
	site := &fakeSite{maxDepth: 10, fanout: 1}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 3, Concurrency: 2}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 0,1,2,3 → 4 entries; nothing deeper.
	if got := len(archive.Entries); got != 4 {
		t.Fatalf("entries = %d, want 4 (depth limit 3)", got)
	}
	for _, e := range archive.Entries {
		if e.Depth > 3 {
			t.Fatalf("entry beyond depth limit: %+v", e)
		}
	}
}

func TestCrawlDefaultDepthIsSeven(t *testing.T) {
	site := &fakeSite{maxDepth: 12, fanout: 1}
	c := &Crawler{Fetcher: site, Config: Config{Concurrency: 2}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(archive.Entries); got != 8 {
		t.Fatalf("entries = %d, want 8 (the paper's seven levels below the landing page)", got)
	}
}

func TestCrawlDeduplicatesURLs(t *testing.T) {
	// All pages link to the same child.
	site := &fakeSite{maxDepth: 2, fanout: 3}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 7, Concurrency: 4}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0", "https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, e := range archive.Entries {
		seen[e.URL]++
	}
	for url, n := range seen {
		if n > 1 {
			t.Fatalf("URL %s fetched %d times", url, n)
		}
	}
}

func TestCrawlRecordsFailuresAndContinues(t *testing.T) {
	site := &fakeSite{maxDepth: 2, fanout: 2,
		fail: map[string]bool{"https://site.test/p1-0": true}}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 7, Concurrency: 2}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	var failed int
	for _, e := range archive.Entries {
		if e.Status == 0 {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failed entries = %d, want 1", failed)
	}
	// The healthy subtree must still be crawled: p1-1 and children.
	if len(archive.Entries) < 4 {
		t.Fatalf("crawl gave up after a failure: %d entries", len(archive.Entries))
	}
}

func TestCrawlMaxURLsCapDeterministic(t *testing.T) {
	// The cap must cut a deterministic frontier, not a worker race: two
	// runs over the same page graph with the same cap and plenty of
	// workers must visit exactly the same URL set, in the same order.
	crawlOnce := func() []string {
		site := &fakeSite{maxDepth: 8, fanout: 3}
		c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 8, Concurrency: 16, MaxURLs: 25}}
		archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
		if err != nil {
			t.Fatal(err)
		}
		var urls []string
		for _, e := range archive.Entries {
			urls = append(urls, e.URL)
		}
		return urls
	}
	first := crawlOnce()
	if len(first) != 25 {
		t.Fatalf("cap admitted %d URLs, want exactly 25", len(first))
	}
	for run := 0; run < 5; run++ {
		again := crawlOnce()
		if len(again) != len(first) {
			t.Fatalf("run %d visited %d URLs, first visited %d", run, len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d diverged at %d: %s vs %s", run, i, first[i], again[i])
			}
		}
	}
}

func TestCrawlSharedPool(t *testing.T) {
	// Two crawls sharing one study-wide pool must behave exactly like
	// crawls with private pools.
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, landing := range []string{"https://site.test/p0-0", "https://site.test/p0-1"} {
		site := &fakeSite{maxDepth: 3, fanout: 2}
		c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 7, Country: "XX"}, Pool: pool}
		archive, err := c.Crawl(context.Background(), []string{landing})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(archive.Entries); got != 15 {
			t.Fatalf("entries = %d, want 15", got)
		}
	}
}

func TestIsHTMLCaseInsensitive(t *testing.T) {
	for _, ct := range []string{
		"text/html", "Text/HTML", "TEXT/HTML; charset=utf-8",
		"text/HTML;charset=ISO-8859-1", "application/xhtml+xml", "Application/XHTML+XML",
	} {
		if !isHTML(ct) {
			t.Errorf("isHTML(%q) = false, want true", ct)
		}
	}
	for _, ct := range []string{"text/css", "application/json", "image/png", ""} {
		if isHTML(ct) {
			t.Errorf("isHTML(%q) = true, want false", ct)
		}
	}
}

func TestCrawlFollowsUppercaseContentType(t *testing.T) {
	// A server announcing Text/HTML must not silently prune its subtree.
	f := fetchFunc(func(ctx context.Context, url string) (*fetch.Response, error) {
		if url == "https://site.test/" {
			return &fetch.Response{Status: 200, ContentType: "Text/HTML; charset=utf-8",
				Body: []byte(`<a href="/child">x</a>`)}, nil
		}
		return &fetch.Response{Status: 200, ContentType: "text/html", Body: nil}, nil
	})
	c := &Crawler{Fetcher: f, Config: Config{MaxDepth: 7, Concurrency: 2}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(archive.Entries); got != 2 {
		t.Fatalf("entries = %d, want 2 (landing + child discovered through Text/HTML)", got)
	}
}

func TestCrawlMaxURLsCap(t *testing.T) {
	site := &fakeSite{maxDepth: 8, fanout: 3}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 8, Concurrency: 4, MaxURLs: 20}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(archive.Entries) > 20 {
		t.Fatalf("cap ignored: %d entries", len(archive.Entries))
	}
}

func TestCrawlCancellation(t *testing.T) {
	site := &fakeSite{maxDepth: 10, fanout: 3, slow: 5 * time.Millisecond}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 10, Concurrency: 2}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Crawl(ctx, []string{"https://site.test/p0-0"})
	if err == nil {
		t.Fatal("cancelled crawl must report its context error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not stop the crawl promptly")
	}
}

func TestCrawlEmptyLandingList(t *testing.T) {
	c := &Crawler{Fetcher: &fakeSite{}, Config: Config{}}
	archive, err := c.Crawl(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(archive.Entries) != 0 {
		t.Fatal("no landings must yield an empty archive")
	}
}

func TestCrawlNonHTMLNotParsed(t *testing.T) {
	// A fetcher that serves a CSS body containing something link-like;
	// the crawler must not follow into non-HTML content.
	f := fetchFunc(func(ctx context.Context, url string) (*fetch.Response, error) {
		if strings.HasSuffix(url, ".css") {
			return &fetch.Response{Status: 200, ContentType: "text/css",
				Body: []byte(`a { background: url("/should-not-follow.png") } href="/nor-this"`)}, nil
		}
		return &fetch.Response{Status: 200, ContentType: "text/html",
			Body: []byte(`<link rel="stylesheet" href="/style.css">`)}, nil
	})
	c := &Crawler{Fetcher: f, Config: Config{MaxDepth: 7, Concurrency: 2}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(archive.Entries); got != 2 {
		t.Fatalf("entries = %d, want 2 (landing + css, nothing from inside the css)", got)
	}
}

type fetchFunc func(ctx context.Context, url string) (*fetch.Response, error)

func (f fetchFunc) Fetch(ctx context.Context, url string) (*fetch.Response, error) {
	return f(ctx, url)
}

func TestCrawlConcurrencyStress(t *testing.T) {
	site := &fakeSite{maxDepth: 6, fanout: 3}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 6, Concurrency: 32}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for d, n := 0, 1; d <= 6; d, n = d+1, n*3 {
		want += n
	}
	if len(archive.Entries) != want {
		t.Fatalf("entries = %d, want %d", len(archive.Entries), want)
	}
}

// TestCrawlPartialArchiveOnCancellation pins the graceful-degradation
// contract: a cancelled crawl returns ctx.Err() alongside the partial
// archive, and that archive is well-formed — completed levels only, no
// duplicate URLs, every entry a finished fetch (entries never record a
// cancelled in-flight slot as content).
func TestCrawlPartialArchiveOnCancellation(t *testing.T) {
	site := &fakeSite{maxDepth: 10, fanout: 3, slow: 2 * time.Millisecond}
	c := &Crawler{Fetcher: site, Config: Config{MaxDepth: 10, Concurrency: 4}}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	archive, err := c.Crawl(ctx, []string{"https://site.test/p0-0"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the context error", err)
	}
	if archive == nil {
		t.Fatal("cancelled crawl returned a nil archive — the partial data is lost")
	}
	seen := map[string]bool{}
	for _, e := range archive.Entries {
		if seen[e.URL] {
			t.Fatalf("duplicate entry %q in partial archive", e.URL)
		}
		seen[e.URL] = true
		if e.Status == 0 && e.Failure == "" {
			t.Fatalf("entry %q recorded with neither status nor failure", e.URL)
		}
	}
	// The crawl was cut mid-tree, so the partial archive must be a
	// strict prefix of the full 10-level fan-out.
	if len(archive.Entries) == 0 {
		t.Fatal("nothing crawled before the deadline; slow fetches too slow for the test window")
	}
}

// TestCrawlTagsEntriesWithFailureKind: fetch errors and degraded
// responses are classified into the har entry's Failure field, and a
// truncated page's links are not trusted.
func TestCrawlTagsEntriesWithFailureKind(t *testing.T) {
	site := &fakeSite{maxDepth: 3, fanout: 2}
	trunc := &truncatingFetcher{inner: site, url: "https://site.test/p1-0"}
	c := &Crawler{Fetcher: trunc, Config: Config{MaxDepth: 7, Concurrency: 2}}
	archive, err := c.Crawl(context.Background(), []string{"https://site.test/p0-0"})
	if err != nil {
		t.Fatal(err)
	}
	byURL := map[string]string{}
	for _, e := range archive.Entries {
		byURL[e.URL] = e.Failure
	}
	if byURL["https://site.test/p1-0"] != string(fetch.FailTruncated) {
		t.Fatalf("truncated entry tagged %q", byURL["https://site.test/p1-0"])
	}
	if byURL["https://site.test/p0-0"] != "" {
		t.Fatalf("healthy entry tagged %q", byURL["https://site.test/p0-0"])
	}
	// p1-0's subtree (p2-0, p2-1) must be absent: links on a cut-short
	// page cannot be trusted.
	for _, u := range []string{"https://site.test/p2-0", "https://site.test/p2-1"} {
		if _, ok := byURL[u]; ok {
			t.Fatalf("link %s extracted from a truncated page", u)
		}
	}
	// p1-1's subtree is intact.
	if _, ok := byURL["https://site.test/p2-2"]; !ok {
		t.Fatal("healthy sibling subtree missing")
	}
}

// truncatingFetcher marks one URL's response as truncated.
type truncatingFetcher struct {
	inner fetch.Fetcher
	url   string
}

func (f *truncatingFetcher) Fetch(ctx context.Context, url string) (*fetch.Response, error) {
	resp, err := f.inner.Fetch(ctx, url)
	if err == nil && url == f.url {
		resp.Truncated = true
	}
	return resp, err
}
