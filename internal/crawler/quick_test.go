package crawler

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestExtractLinksNeverPanicsQuick feeds arbitrary bytes through the
// extractor: whatever the input, it must return cleanly and only emit
// http(s) URLs.
func TestExtractLinksNeverPanicsQuick(t *testing.T) {
	f := func(raw []byte) bool {
		links := ExtractLinks("https://base.example/dir/", raw)
		for _, l := range links {
			if !strings.HasPrefix(l, "http://") && !strings.HasPrefix(l, "https://") {
				return false
			}
			if strings.Contains(l, "#") {
				return false // fragments must be stripped
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractLinksIdempotentQuick: extracting from a document built
// out of the extracted links yields the same set.
func TestExtractLinksIdempotentQuick(t *testing.T) {
	f := func(paths [4]uint16) bool {
		var b strings.Builder
		for _, p := range paths {
			b.WriteString(`<a href="/p` + strings.Repeat("x", int(p%7)+1) + `">l</a>`)
		}
		first := ExtractLinks("https://h.example/", []byte(b.String()))
		var again strings.Builder
		for _, l := range first {
			again.WriteString(`<a href="` + l + `">l</a>`)
		}
		second := ExtractLinks("https://h.example/", []byte(again.String()))
		if len(first) != len(second) {
			return false
		}
		for i := range first {
			if first[i] != second[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
