package crawler

import (
	"reflect"
	"testing"
)

func TestExtractLinksBasics(t *testing.T) {
	body := []byte(`<!doctype html><html><head>
<link rel="stylesheet" href="/static/a.css">
</head><body>
<a href="https://other.gov/page">x</a>
<a href='/l1/page-0'>rel</a>
<script src="/static/app.js"></script>
<img src="img/logo.png">
</body></html>`)
	got := ExtractLinks("https://finance.gov.br/l0/index", body)
	want := []string{
		"https://finance.gov.br/static/a.css",
		"https://other.gov/page",
		"https://finance.gov.br/l1/page-0",
		"https://finance.gov.br/static/app.js",
		"https://finance.gov.br/l0/img/logo.png",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractLinks:\n got %v\nwant %v", got, want)
	}
}

func TestExtractLinksSkipsPseudoSchemes(t *testing.T) {
	body := []byte(`<a href="javascript:void(0)">j</a>
<a href="mailto:x@y.z">m</a>
<a href="tel:+1234">t</a>
<a href="#frag">f</a>
<a href="data:text/plain,hi">d</a>
<a href="ftp://files.example/x">ftp</a>
<a href="/ok">ok</a>`)
	got := ExtractLinks("https://gov.example/", body)
	if len(got) != 1 || got[0] != "https://gov.example/ok" {
		t.Fatalf("got %v, want only /ok", got)
	}
}

func TestExtractLinksDeduplicates(t *testing.T) {
	body := []byte(`<a href="/x">1</a><a href="/x">2</a><img src="/x">`)
	got := ExtractLinks("https://gov.example/", body)
	if len(got) != 1 {
		t.Fatalf("dedupe failed: %v", got)
	}
}

func TestExtractLinksStripsFragments(t *testing.T) {
	body := []byte(`<a href="/page#section">x</a>`)
	got := ExtractLinks("https://gov.example/", body)
	if len(got) != 1 || got[0] != "https://gov.example/page" {
		t.Fatalf("fragment kept: %v", got)
	}
}

func TestExtractLinksToleratesMalformedHTML(t *testing.T) {
	cases := [][]byte{
		[]byte(`<a href=`),
		[]byte(`<a href="unterminated`),
		[]byte(`href=x not quoted`),
		[]byte(``),
		[]byte(`<a href="">empty</a>`),
		[]byte(`<a href="http://[::1:bad">bad url</a>`),
	}
	for i, body := range cases {
		got := ExtractLinks("https://gov.example/", body)
		if len(got) != 0 {
			t.Errorf("case %d: got %v, want none", i, got)
		}
	}
}

func TestExtractLinksBadBase(t *testing.T) {
	if got := ExtractLinks("://broken", []byte(`<a href="/x">x</a>`)); got != nil {
		t.Fatalf("bad base must yield nil, got %v", got)
	}
}

func TestExtractLinksProtocolRelative(t *testing.T) {
	got := ExtractLinks("https://gov.example/", []byte(`<img src="//cdn.example.com/a.png">`))
	if len(got) != 1 || got[0] != "https://cdn.example.com/a.png" {
		t.Fatalf("protocol-relative resolution failed: %v", got)
	}
}
