// Package crawler implements the §3.2 collection step: starting from a
// country's landing URLs it recursively fetches pages up to seven
// levels deep (a threshold informed by Singanamalla et al.), captures
// every resource into a HAR archive, and follows links across
// hostnames — the §3.3 filter decides later which of those are
// government resources.
package crawler

import (
	"context"
	"sync"

	"repro/internal/fetch"
	"repro/internal/har"
)

// DefaultMaxDepth is the paper's crawl depth.
const DefaultMaxDepth = 7

// Config controls one crawl.
type Config struct {
	MaxDepth    int // 0 means DefaultMaxDepth
	Concurrency int // parallel fetches; 0 means 8
	MaxURLs     int // safety cap on distinct URLs; 0 means unlimited
	Country     string
	VPN         string
}

// Crawler drives recursive crawls through a Fetcher.
type Crawler struct {
	Fetcher fetch.Fetcher
	Config  Config
}

// task is one URL scheduled for fetching.
type task struct {
	url     string
	depth   int
	landing string
}

// workList is an unbounded breadth-ish work queue: workers block on a
// condition variable and exit when no task is queued, none is in
// flight, or the crawl is cancelled.
type workList struct {
	mu       sync.Mutex
	cond     *sync.Cond
	tasks    []task
	inflight int
	cancel   bool
}

func newWorkList() *workList {
	w := &workList{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *workList) push(t task) {
	w.mu.Lock()
	w.tasks = append(w.tasks, t)
	w.mu.Unlock()
	w.cond.Signal()
}

// pop blocks until a task is available or the crawl is finished; the
// second result is false when the worker should exit.
func (w *workList) pop() (task, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.cancel {
			return task{}, false
		}
		if len(w.tasks) > 0 {
			t := w.tasks[0]
			w.tasks = w.tasks[1:]
			w.inflight++
			return t, true
		}
		if w.inflight == 0 {
			w.cond.Broadcast()
			return task{}, false
		}
		w.cond.Wait()
	}
}

func (w *workList) done() {
	w.mu.Lock()
	w.inflight--
	if w.inflight == 0 && len(w.tasks) == 0 {
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

func (w *workList) stop() {
	w.mu.Lock()
	w.cancel = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Crawl fetches the landing URLs and everything reachable from them
// within the configured depth. Fetch errors (unknown hosts, network
// failures) are recorded as status-0 entries and do not abort the
// crawl, mirroring how a measurement harness tolerates partial
// failures.
func (c *Crawler) Crawl(ctx context.Context, landings []string) (*har.Archive, error) {
	maxDepth := c.Config.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	workers := c.Config.Concurrency
	if workers <= 0 {
		workers = 8
	}

	archive := har.New()
	var archiveMu sync.Mutex

	var seenMu sync.Mutex
	seen := make(map[string]bool)

	wl := newWorkList()
	enqueue := func(t task) {
		seenMu.Lock()
		if seen[t.url] || (c.Config.MaxURLs > 0 && len(seen) >= c.Config.MaxURLs) {
			seenMu.Unlock()
			return
		}
		seen[t.url] = true
		seenMu.Unlock()
		wl.push(t)
	}

	for _, l := range landings {
		enqueue(task{url: l, depth: 0, landing: l})
	}

	// Cancellation watcher.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			wl.stop()
		case <-stopWatch:
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := wl.pop()
				if !ok {
					return
				}
				c.process(ctx, t, maxDepth, archive, &archiveMu, enqueue)
				wl.done()
			}
		}()
	}
	wg.Wait()
	close(stopWatch)
	return archive, ctx.Err()
}

func (c *Crawler) process(ctx context.Context, t task, maxDepth int, archive *har.Archive, mu *sync.Mutex, enqueue func(task)) {
	resp, err := c.Fetcher.Fetch(ctx, t.url)
	entry := har.Entry{
		URL:     t.url,
		Host:    har.HostOf(t.url),
		Depth:   t.depth,
		Landing: t.landing,
		Country: c.Config.Country,
		FromVPN: c.Config.VPN,
	}
	if err != nil {
		mu.Lock()
		archive.Add(entry) // status 0: unreachable
		mu.Unlock()
		return
	}
	entry.Status = resp.Status
	entry.ContentType = resp.ContentType
	entry.BodySize = resp.BodySize
	if entry.BodySize == 0 {
		entry.BodySize = int64(len(resp.Body))
	}
	mu.Lock()
	archive.Add(entry)
	mu.Unlock()

	if resp.Status != 200 || t.depth >= maxDepth || !isHTML(resp.ContentType) {
		return
	}
	for _, link := range ExtractLinks(t.url, resp.Body) {
		enqueue(task{url: link, depth: t.depth + 1, landing: t.landing})
	}
}

func isHTML(ct string) bool {
	if ct == "application/xhtml+xml" {
		return true
	}
	return len(ct) >= 9 && ct[:9] == "text/html"
}
