// Package crawler implements the §3.2 collection step: starting from a
// country's landing URLs it recursively fetches pages up to seven
// levels deep (a threshold informed by Singanamalla et al.), captures
// every resource into a HAR archive, and follows links across
// hostnames — the §3.3 filter decides later which of those are
// government resources.
//
// The crawl is a level-synchronised BFS: each depth level's frontier
// is admitted deterministically (deduplicated, sorted, capped) before
// any of it is fetched, so two runs with equal seeds visit exactly the
// same URL set regardless of worker scheduling — including under a
// MaxURLs cap. Fetches within a level run in parallel on a bounded
// worker pool; several crawls can share one study-wide pool.
package crawler

import (
	"context"
	"slices"
	"strings"

	"repro/internal/fetch"
	"repro/internal/har"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// DefaultMaxDepth is the paper's crawl depth.
const DefaultMaxDepth = 7

// Config controls one crawl.
type Config struct {
	MaxDepth    int // 0 means DefaultMaxDepth
	Concurrency int // parallel fetches when no shared pool is set; 0 means 8
	MaxURLs     int // safety cap on distinct URLs; 0 means unlimited
	Country     string
	VPN         string
}

// Crawler drives recursive crawls through a Fetcher.
type Crawler struct {
	Fetcher fetch.Fetcher
	Config  Config
	// Pool, when set, runs this crawl's fetches on a shared scheduler
	// instead of a private worker pool, so one study-wide budget bounds
	// every crawl at once. Nil gives the crawl its own bounded pool of
	// Config.Concurrency workers.
	Pool *sched.Pool
	// Metrics, when non-nil, receives frontier-admission accounting.
	// Admission happens single-threaded between levels on sorted URL
	// lists, so every count here is deterministic.
	Metrics *metrics.CrawlMetrics
	// Sched, when non-nil, receives this crawl's deterministic item
	// counts instead of the shared pool's study-wide metrics — the seam
	// that lets one country's scheduler contribution be checkpointed
	// separately. Runtime queue accounting stays on the pool either way.
	Sched *metrics.SchedMetrics
}

// task is one URL scheduled for fetching.
type task struct {
	url     string
	depth   int
	landing string
}

// fetched is one level slot's outcome; ok distinguishes a completed
// fetch from a slot abandoned on cancellation. Links stay as the raw
// extracted URLs — they are deduplicated against seen before any task
// structs are built, so duplicate links (the common case past level
// one) cost no allocation.
type fetched struct {
	entry har.Entry
	links []string
	ok    bool
}

// Crawl fetches the landing URLs and everything reachable from them
// within the configured depth. Fetch errors (unknown hosts, network
// failures) are recorded as status-0 entries carrying their failure
// classification and do not abort the crawl, mirroring how a
// measurement harness tolerates partial failures; geo-blocks, 5xx and
// truncated bodies likewise classify into the entry's Failure bucket.
// Cancellation abandons queued work promptly and returns the context
// error alongside the partial archive.
func (c *Crawler) Crawl(ctx context.Context, landings []string) (*har.Archive, error) {
	maxDepth := c.Config.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	pool := c.Pool
	if pool == nil {
		workers := c.Config.Concurrency
		if workers <= 0 {
			workers = 8
		}
		pool = sched.NewPool(workers)
		defer pool.Close()
	}

	archive := har.New()
	seen := make(map[string]bool)

	// Landing admission preserves the caller's order; the per-level
	// admission below sorts, so the whole frontier sequence is a pure
	// function of the page graph.
	var frontier []task
	var capSkipped int64
	for _, l := range landings {
		if seen[l] {
			continue
		}
		if c.Config.MaxURLs > 0 && len(seen) >= c.Config.MaxURLs {
			capSkipped++
			continue
		}
		seen[l] = true
		frontier = append(frontier, task{url: l, depth: 0, landing: l})
	}
	c.Metrics.RecordLevel(0, int64(len(frontier)), capSkipped)

	// One result buffer serves every level: the crawl is GC-bound at
	// scale, and a fresh slice per level is the single largest
	// allocation the crawler would otherwise make.
	var results []fetched
	for len(frontier) > 0 && ctx.Err() == nil {
		if cap(results) < len(frontier) {
			results = make([]fetched, len(frontier))
		} else {
			results = results[:len(frontier)]
			clear(results)
		}
		pool.EachWith(ctx, len(frontier), c.Sched, func(i int) {
			results[i].entry, results[i].links = c.fetchOne(ctx, frontier[i], maxDepth)
			results[i].ok = true
		})

		// Entries land in frontier order, never completion order, so
		// the archive itself is deterministic. Links are deduplicated in
		// the same order — first discovery wins the (depth, landing)
		// attribution, exactly as a sequential crawl would assign it.
		// New links go straight into seen (one map touch per link);
		// admitLevel evicts the tail again if the cap cuts the level.
		var next []task
		for i := range results {
			if !results[i].ok {
				continue
			}
			archive.Add(results[i].entry)
			for _, link := range results[i].links {
				if seen[link] {
					continue
				}
				seen[link] = true
				next = append(next, task{url: link, depth: frontier[i].depth + 1, landing: frontier[i].landing})
			}
		}
		frontier = c.admitLevel(seen, next)
	}
	return archive, ctx.Err()
}

// admitLevel turns one level's candidate links — already deduplicated
// and provisionally marked in seen — into the next frontier: sort by
// URL so admission order is canonical, then apply the MaxURLs cap,
// evicting anything past the cut from seen again. Running this
// single-threaded between levels is what makes a capped crawl
// seed-deterministic: the cap cuts a sorted list, not a worker race.
func (c *Crawler) admitLevel(seen map[string]bool, next []task) []task {
	if len(next) == 0 {
		return next
	}
	// Level synchronisation means every candidate shares one depth.
	depth := next[0].depth
	candidates := int64(len(next))
	slices.SortFunc(next, func(a, b task) int { return strings.Compare(a.url, b.url) })
	if c.Config.MaxURLs > 0 {
		allowed := c.Config.MaxURLs - (len(seen) - len(next))
		if allowed < 0 {
			allowed = 0
		}
		if allowed < len(next) {
			for _, t := range next[allowed:] {
				delete(seen, t.url)
			}
			next = next[:allowed]
		}
	}
	c.Metrics.RecordLevel(depth, int64(len(next)), candidates-int64(len(next)))
	return next
}

// fetchOne retrieves a single URL and returns its archive entry plus
// the raw links to consider for the next level.
func (c *Crawler) fetchOne(ctx context.Context, t task, maxDepth int) (har.Entry, []string) {
	entry := har.Entry{
		URL:     t.url,
		Host:    har.HostOf(t.url),
		Depth:   t.depth,
		Landing: t.landing,
		Country: c.Config.Country,
		FromVPN: c.Config.VPN,
	}
	resp, err := c.Fetcher.Fetch(ctx, t.url)
	if err != nil {
		// Status 0: unreachable. The classification survives into the
		// archive so coverage stats can say *why*.
		entry.Failure = string(fetch.ClassifyError(err))
		return entry, nil
	}
	entry.Status = resp.Status
	entry.ContentType = resp.ContentType
	entry.BodySize = resp.BodySize
	if entry.BodySize == 0 {
		entry.BodySize = int64(len(resp.Body))
	}
	if kind := fetch.ClassifyResponse(resp); kind != fetch.FailNone {
		// Geo-blocks, 5xx and truncations are failures even with a
		// response in hand; a truncated page's links are not trusted.
		entry.Failure = string(kind)
		return entry, nil
	}
	if resp.Status != 200 || t.depth >= maxDepth || !isHTML(resp.ContentType) {
		return entry, nil
	}
	return entry, ExtractLinks(t.url, resp.Body)
}

// isHTML matches HTML content types case-insensitively: RFC 9110 media
// types are case-insensitive, and real servers do emit Text/HTML.
// EqualFold avoids the per-response allocation a ToLower would cost on
// this hot path.
func isHTML(ct string) bool {
	return (len(ct) >= 9 && strings.EqualFold(ct[:9], "text/html")) ||
		strings.EqualFold(ct, "application/xhtml+xml")
}
