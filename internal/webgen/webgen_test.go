package webgen

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/world"
)

func buildEstate(t testing.TB, scale float64) *Estate {
	t.Helper()
	w := world.New()
	net := netsim.Build(w, 42)
	profiles := world.BuildProfiles(w, 42)
	return Build(w, net, profiles, 42, scale)
}

func TestBuildDeterministic(t *testing.T) {
	a := buildEstate(t, 0.02)
	b := buildEstate(t, 0.02)
	if len(a.SiteList) != len(b.SiteList) {
		t.Fatalf("site counts differ: %d vs %d", len(a.SiteList), len(b.SiteList))
	}
	for i := range a.SiteList {
		x, y := a.SiteList[i], b.SiteList[i]
		if x.Host != y.Host || x.TruthCategory != y.TruthCategory ||
			x.Endpoint.Addr != y.Endpoint.Addr || len(x.Pages) != len(y.Pages) {
			t.Fatalf("site %d differs: %s vs %s", i, x.Host, y.Host)
		}
	}
}

func TestEveryPanelCountryHasAnEstate(t *testing.T) {
	e := buildEstate(t, 0.02)
	for _, c := range e.World.Panel() {
		if c.Landing == 0 {
			if len(e.GovSites(c.Code)) != 0 {
				t.Errorf("%s has sites despite an empty paper estate", c.Code)
			}
			continue
		}
		if len(e.GovSites(c.Code)) == 0 {
			t.Errorf("%s has no sites", c.Code)
		}
		if len(e.LandingURLs[c.Code]) == 0 {
			t.Errorf("%s has no landing URLs", c.Code)
		}
	}
}

func TestSitesHaveEndpointsAndCategories(t *testing.T) {
	e := buildEstate(t, 0.02)
	for _, s := range e.SiteList {
		if s.Endpoint == nil {
			t.Fatalf("site %s without endpoint", s.Host)
		}
		if s.Kind != KindContractor && s.TruthServeCountry == "" {
			t.Fatalf("site %s without serve country", s.Host)
		}
	}
}

func TestDepthDistribution(t *testing.T) {
	e := buildEstate(t, 0.1)
	var perDepth [9]int
	total := 0
	for _, s := range e.SiteList {
		if s.Kind == KindContractor || s.Kind == KindTopsite {
			continue
		}
		for _, p := range s.Pages {
			if p.Depth > 0 {
				perDepth[p.Depth]++
				total++
			}
		}
	}
	d1 := float64(perDepth[1]) / float64(total)
	if math.Abs(d1-0.84) > 0.06 {
		t.Errorf("depth-1 share = %.3f, want ≈0.84 (§4.2)", d1)
	}
	cum2 := float64(perDepth[1]+perDepth[2]) / float64(total)
	if cum2 < 0.90 {
		t.Errorf("cumulative depth ≤2 share = %.3f, want ≥0.90", cum2)
	}
	if perDepth[8] != 0 {
		t.Error("pages beyond depth 7 generated")
	}
}

func TestTreeIsConnected(t *testing.T) {
	e := buildEstate(t, 0.02)
	// Every page of a landing site must be reachable from a landing
	// page by following links (possibly across hosts for SAN-only
	// sites); spot-check one mid-size country.
	country := "PT"
	reach := map[string]bool{}
	var queue []string
	for _, l := range e.LandingURLs[country] {
		queue = append(queue, l)
		reach[l] = true
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		host := strings.TrimPrefix(u, "https://")
		path := "/"
		if i := strings.IndexByte(host, '/'); i >= 0 {
			host, path = host[:i], host[i:]
		}
		site := e.Site(host)
		if site == nil {
			continue
		}
		page := site.Pages[path]
		if page == nil {
			continue
		}
		for _, link := range page.Links {
			if !reach[link] {
				reach[link] = true
				queue = append(queue, link)
			}
		}
	}
	var orphaned int
	for _, s := range e.GovSites(country) {
		for _, path := range s.SortedPaths() {
			if !reach[s.URL(path)] && s.Pages[path].Depth > 0 {
				orphaned++
			}
		}
	}
	if orphaned > 0 {
		t.Fatalf("%d internal pages unreachable from landing pages", orphaned)
	}
}

func TestFranceServesGouvNCFromNewCaledonia(t *testing.T) {
	e := buildEstate(t, 0.02)
	site := e.Site("gouv.nc")
	if site == nil {
		t.Fatal("gouv.nc missing from the French estate")
	}
	if site.Country != "FR" || site.TruthServeCountry != "NC" {
		t.Fatalf("gouv.nc owner/location wrong: %s/%s", site.Country, site.TruthServeCountry)
	}
	if site.Endpoint.AS.ASN != 18200 {
		t.Fatalf("gouv.nc must sit on OPT (AS18200), got AS%d", site.Endpoint.AS.ASN)
	}
	// ~18 % of French URLs live on this host.
	frTotal := 0
	for _, s := range e.GovSites("FR") {
		frTotal += len(s.Pages)
	}
	share := float64(len(site.Pages)) / float64(frTotal)
	if share < 0.10 || share > 0.28 {
		t.Fatalf("gouv.nc URL share = %.3f, want ≈0.185", share)
	}
}

func TestSANOnlySitesAreDiscoverableViaCerts(t *testing.T) {
	e := buildEstate(t, 0.05)
	sanUniverse := e.Certs.SANUniverse()
	found := 0
	for _, s := range e.SiteList {
		if s.Kind != KindSANOnly {
			continue
		}
		found++
		if _, ok := sanUniverse[s.Host]; !ok {
			t.Errorf("SAN-only site %s not present in any landing certificate", s.Host)
		}
		if strings.Contains(s.Host, "gov") || strings.Contains(s.Host, "gob") {
			t.Errorf("SAN-only site %s must carry no gov label", s.Host)
		}
	}
	if found == 0 {
		t.Fatal("no SAN-only affiliates generated")
	}
}

func TestContractorsLinkedButSeparate(t *testing.T) {
	e := buildEstate(t, 0.02)
	nContractors := 0
	for _, s := range e.SiteList {
		if s.Kind == KindContractor {
			nContractors++
			if s.Country != "" {
				t.Errorf("contractor %s claims country %s", s.Host, s.Country)
			}
		}
	}
	if nContractors == 0 {
		t.Fatal("no contractor sites")
	}
	linked := false
	for _, s := range e.GovSites("US") {
		for _, p := range s.Pages {
			for _, l := range p.Links {
				if strings.Contains(l, ".com/asset-") {
					linked = true
				}
			}
		}
	}
	if !linked {
		t.Fatal("no government page links to a contractor (the §3.3 filter would never trigger)")
	}
}

func TestTopsitesOnlyForComparisonCountries(t *testing.T) {
	e := buildEstate(t, 0.02)
	if len(e.Topsites) != len(ComparisonCountries) {
		t.Fatalf("topsites for %d countries, want %d", len(e.Topsites), len(ComparisonCountries))
	}
	for _, code := range ComparisonCountries {
		if len(e.Topsites[code]) == 0 {
			t.Errorf("no topsites for %s", code)
		}
	}
}

func TestTopsiteCNAMEAndCerts(t *testing.T) {
	e := buildEstate(t, 0.05)
	var withCNAME, total int
	for _, sites := range e.Topsites {
		for _, s := range sites {
			total++
			if s.Cert == nil {
				t.Fatalf("topsite %s without certificate", s.Host)
			}
			if s.CNAME != "" {
				withCNAME++
			}
		}
	}
	if float64(withCNAME)/float64(total) < 0.5 {
		t.Fatalf("only %d/%d topsites use CNAME fronting", withCNAME, total)
	}
}

func TestRealizedCategoryMixTracksProfile(t *testing.T) {
	e := buildEstate(t, 0.1)
	w := e.World
	profiles := world.BuildProfiles(w, 42)
	// URL-weighted truth mix per large country must track the effective
	// profile within a loose tolerance.
	for _, code := range []string{"US", "BE", "NL", "PL"} {
		c := w.MustCountry(code)
		eff := world.EffectiveMixFor(c, profiles[code])
		var got world.Mix
		var total float64
		for _, s := range e.GovSites(code) {
			n := float64(len(s.Pages))
			got[s.TruthCategory] += n
			total += n
		}
		for i := range got {
			got[i] /= total
		}
		for i := range got {
			if math.Abs(got[i]-eff[i]) > 0.15 {
				t.Errorf("%s category %d: realized %.2f vs configured %.2f", code, i, got[i], eff[i])
			}
		}
	}
}

func TestGeoBlockedSitesExist(t *testing.T) {
	e := buildEstate(t, 0.05)
	n := 0
	for _, s := range e.SiteList {
		if s.GeoBlocked {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no geo-blocked sites (footnote 1 behaviour untested otherwise)")
	}
}

func TestRenderHTMLContainsLinks(t *testing.T) {
	e := buildEstate(t, 0.02)
	var site *Site
	var page *Page
	for _, s := range e.GovSites("GB") {
		if p := s.Pages["/"]; p != nil && len(p.Links) > 0 {
			site, page = s, p
			break
		}
	}
	if site == nil {
		t.Skip("no linked root page")
	}
	body := string(RenderHTML(site, page, false))
	for _, l := range page.Links {
		if !strings.Contains(body, l) {
			t.Fatalf("rendered HTML missing link %s", l)
		}
	}
	padded := RenderHTML(site, page, true)
	if int64(len(padded)) < page.Size {
		t.Fatalf("padded render %d bytes < nominal %d", len(padded), page.Size)
	}
}

func TestMemFetcher(t *testing.T) {
	e := buildEstate(t, 0.02)
	ctx := context.Background()
	site := e.GovSites("CA")[0]
	f := &MemFetcher{Estate: e, Vantage: "CA"}
	resp, err := f.Fetch(ctx, site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.BodySize != site.Pages["/"].Size {
		t.Fatalf("fetch = %d/%d", resp.Status, resp.BodySize)
	}
	if _, err := f.Fetch(ctx, "https://nonexistent.test/"); err == nil {
		t.Fatal("unknown host must error (DNS failure analogue)")
	}
	if resp, _ := f.Fetch(ctx, site.URL("/missing")); resp.Status != 404 {
		t.Fatalf("missing path status = %d, want 404", resp.Status)
	}
}

func TestMemFetcherGeoBlocking(t *testing.T) {
	e := buildEstate(t, 0.05)
	var blocked *Site
	for _, s := range e.SiteList {
		if s.GeoBlocked && s.Country != "" {
			blocked = s
			break
		}
	}
	if blocked == nil {
		t.Skip("no geo-blocked site in sample")
	}
	ctx := context.Background()
	home := &MemFetcher{Estate: e, Vantage: blocked.Country}
	foreign := &MemFetcher{Estate: e, Vantage: "ZZ"}
	if resp, err := home.Fetch(ctx, blocked.URL("/")); err != nil || resp.Status != 200 {
		t.Fatalf("domestic access blocked: %v %v", resp, err)
	}
	if resp, err := foreign.Fetch(ctx, blocked.URL("/")); err != nil || resp.Status != 403 {
		t.Fatalf("foreign access not blocked: %v %v", resp, err)
	}
}

func TestScaleControlsSize(t *testing.T) {
	small := buildEstate(t, 0.02)
	big := buildEstate(t, 0.05)
	if big.TotalPages() <= small.TotalPages() {
		t.Fatalf("scale has no effect: %d vs %d pages", small.TotalPages(), big.TotalPages())
	}
}

func TestHTTPSValidityTracksDevelopment(t *testing.T) {
	e := buildEstate(t, 0.1)
	validShare := func(code string) float64 {
		var valid, n float64
		for _, s := range e.GovSites(code) {
			if s.Kind == KindSANOnly {
				continue
			}
			n++
			if s.HTTPSValid {
				valid++
			}
		}
		return valid / n
	}
	// Denmark (EGDI 0.972) must beat Pakistan (EGDI 0.424) comfortably.
	if validShare("DK") <= validShare("PK") {
		t.Fatalf("HTTPS validity inverted: DK %.2f vs PK %.2f", validShare("DK"), validShare("PK"))
	}
}

func TestPageWeightFactorDirection(t *testing.T) {
	w := world.New()
	heavy := pageWeightFactor(w.MustCountry("PK")) // HDI 0.544
	light := pageWeightFactor(w.MustCountry("CH")) // HDI 0.962
	if heavy <= light {
		t.Fatalf("page-weight factor inverted: PK %.2f vs CH %.2f", heavy, light)
	}
	if light < 0.5 || heavy > 1.5 {
		t.Fatalf("factors out of band: %.2f / %.2f", light, heavy)
	}
}

func TestCertValidityMatchesSiteFlag(t *testing.T) {
	e := buildEstate(t, 0.05)
	for _, s := range e.SiteList {
		if s.Cert == nil {
			continue
		}
		if s.Cert.Valid != s.HTTPSValid {
			t.Fatalf("site %s: cert.Valid=%v but site.HTTPSValid=%v", s.Host, s.Cert.Valid, s.HTTPSValid)
		}
		if !s.Cert.Valid && s.Cert.Invalid == "" && s.Kind != KindTopsite {
			t.Fatalf("invalid cert without a reason: %s", s.Host)
		}
	}
}
