package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/tlssim"
	"repro/internal/world"
)

// depthShare is the ground-truth distribution of internal URLs over
// tree depth, matching §4.2: 84 % of URLs are found directly on the
// landing pages and 95 % within one additional level.
var depthShare = []float64{0, 0.84, 0.11, 0.02, 0.012, 0.008, 0.006, 0.004}

// resourceExts weights subresource types and nominal sizes.
var resourceExts = []struct {
	ext  string
	ct   string
	size float64 // mean bytes
}{
	{"css", "text/css", 18_000},
	{"js", "application/javascript", 55_000},
	{"png", "image/png", 120_000},
	{"jpg", "image/jpeg", 160_000},
	{"svg", "image/svg+xml", 9_000},
	{"pdf", "application/pdf", 450_000},
	{"woff2", "font/woff2", 30_000},
}

// Build generates the synthetic web for every panel country.
func Build(w *world.Model, net *netsim.Net, profiles map[string]*world.Profile, seed int64, scale float64) *Estate {
	if scale <= 0 {
		scale = 1
	}
	e := &Estate{
		World:       w,
		Net:         net,
		Certs:       tlssim.NewStore(),
		Sites:       make(map[string]*Site),
		ByCountry:   make(map[string][]*Site),
		LandingURLs: make(map[string][]string),
		Topsites:    make(map[string][]*Site),
		Scale:       scale,
	}
	g := &generator{e: e, w: w, net: net, profiles: profiles, seed: seed}
	g.buildContractors()
	for _, c := range w.Panel() {
		if c.Landing == 0 {
			continue
		}
		g.buildCountry(c)
	}
	g.buildTopsites()
	return e
}

type generator struct {
	e        *Estate
	w        *world.Model
	net      *netsim.Net
	profiles map[string]*world.Profile
	seed     int64

	contractors []*Site
	provUsed    map[string]map[string]bool    // country → provider keys already serving it
	provLoad    map[string]map[string]float64 // country → provider → assigned URL weight
	provTotal   map[string]float64            // country → total global URL weight
	provCap     map[string]int                // country → portfolio size limit
}

// pickProvider chooses a global provider for one hostname of the given
// URL weight. Three forces shape the draw, mirroring how provider
// portfolios look in the wild:
//
//   - popularity: BaseShare (plus the country's §7.1 boosts),
//   - coverage: a country that adopted a provider eventually puts at
//     least something on it — its first global site goes to the most
//     popular adopted provider, and unused adopted providers keep a
//     first-use bonus (Fig. 10 counts exactly this),
//   - balance: a provider already holding much of the country's global
//     byte weight is damped, which keeps 3P-Global-heavy governments
//     diversified (Fig. 11) unless a boost pins them.
//
// canServeDomestically reports whether the provider can deliver the
// country's content from inside the country (anycast presence or a
// local data centre).
func (g *generator) canServeDomestically(p *netsim.Provider, country string) bool {
	if p.Anycast {
		return g.net.HasAnycastPresence(p.Key, country)
	}
	return p.HasDC(country)
}

func (g *generator) pickProvider(c *world.Country, prof *world.Profile, provs []*netsim.Provider, weight float64, domestic bool, r *rand.Rand) *netsim.Provider {
	// Governments run small provider portfolios: a handful of
	// contracts, not the whole market. The portfolio cap set in
	// ensureProvState bounds how many distinct global providers a
	// country ends up using, keeping Fig. 10's tail thin.
	g.ensureProvState(c, r)
	used := g.provUsed[c.Code]
	load := g.provLoad[c.Code]
	total := g.provTotal[c.Code]

	eff := func(p *netsim.Provider) float64 {
		w := p.BaseShare
		if boost, ok := prof.ProviderBoost[p.Key]; ok {
			w *= boost
		}
		if total > 0 {
			w /= 1 + 5*load[p.Key]/total
		}
		// Domestic content strongly prefers providers that can answer
		// from inside the country; accidental foreign serving through
		// a DC-less contract happens, but rarely.
		if domestic && !g.canServeDomestically(p, c.Code) {
			w *= 0.15
		}
		return w
	}

	var unused []*netsim.Provider
	if len(used) < g.provCap[c.Code] {
		for _, p := range provs {
			if !used[p.Key] {
				unused = append(unused, p)
			}
		}
	} else {
		// Portfolio full: restrict to providers already under
		// contract when any of them is in the candidate set.
		var inUse []*netsim.Provider
		for _, p := range provs {
			if used[p.Key] {
				inUse = append(inUse, p)
			}
		}
		if len(inUse) > 0 {
			provs = inUse
		}
	}
	var chosen *netsim.Provider
	switch {
	case domestic && len(used) == 0 && len(unused) > 0:
		// First domestic global choice: the market leader among the
		// adopted providers.
		best := unused[0]
		for _, p := range unused {
			if eff(p) > eff(best) {
				best = p
			}
		}
		chosen = best
	default:
		pool := provs
		if domestic && len(unused) > 0 && r.Float64() < 0.4 {
			pool = unused
		}
		if !domestic {
			// Foreign hosting is contract-sticky: reuse an existing
			// provider relationship when one fits the destination.
			var inUse []*netsim.Provider
			for _, p := range provs {
				if used[p.Key] {
					inUse = append(inUse, p)
				}
			}
			if len(inUse) > 0 && r.Float64() < 0.8 {
				pool = inUse
			}
		}
		ws := make([]float64, len(pool))
		for i, p := range pool {
			ws[i] = eff(p)
		}
		chosen = pool[rng.Pick(r, ws)]
	}
	used[chosen.Key] = true
	load[chosen.Key] += weight
	g.provTotal[c.Code] = total + weight
	return chosen
}

// ensureProvState lazily initialises the per-country provider
// bookkeeping (pickProvider normally does this on first use).
func (g *generator) ensureProvState(c *world.Country, r *rand.Rand) {
	if g.provUsed == nil {
		g.provUsed = map[string]map[string]bool{}
		g.provLoad = map[string]map[string]float64{}
		g.provTotal = map[string]float64{}
		g.provCap = map[string]int{}
	}
	if g.provUsed[c.Code] == nil {
		g.provUsed[c.Code] = map[string]bool{}
		g.provLoad[c.Code] = map[string]float64{}
		g.provCap[c.Code] = 2 + r.Intn(3)
	}
}

// buildContractors creates a global pool of external contractor and
// tracker sites; government pages link to them, and the §3.3 filter
// must discard them.
func (g *generator) buildContractors() {
	r := rng.New(g.seed, "contractors")
	names := []string{
		"cdn.websolutions", "static.cloudassets", "analytics.trackmetrics",
		"fonts.typeserve", "player.videostream", "widgets.socialhub",
		"maps.geoportal", "forms.surveypro", "img.mediastore", "api.paygate",
	}
	for i, base := range names {
		for j := 0; j < 3; j++ {
			host := fmt.Sprintf("%s%d.com", base, j+1)
			p := g.net.Providers[rng.Pick(r, []float64{0.4, 0.3, 0.3})]
			site := &Site{
				Host:              host,
				Kind:              KindContractor,
				Endpoint:          g.net.ProviderHostAt(p, "US", r),
				TruthServeCountry: "US",
				TruthCategory:     world.Cat3PGlobal,
			}
			site.Pages = map[string]*Page{}
			for k := 0; k < 3; k++ {
				path := fmt.Sprintf("/asset-%d-%d.js", i, k)
				site.Pages[path] = &Page{
					Path: path, Depth: 1, Size: int64(20_000 + r.Intn(60_000)),
					ContentType: "application/javascript",
				}
			}
			g.e.addSite(site)
			g.contractors = append(g.contractors, site)
		}
	}
}

// hostPlan describes one planned government hostname before its pages
// are generated.
type hostPlan struct {
	site     *Site
	urls     int  // internal-URL budget
	landings int  // landing paths on this host (≥1 for directory-listed sites)
	soe      bool // state-owned-enterprise site
}

func (g *generator) buildCountry(c *world.Country) {
	r := rng.New(g.seed, "estate/"+c.Code)
	prof := g.profiles[c.Code]
	if prof == nil {
		panic("webgen: no profile for " + c.Code)
	}

	nHosts := scaleCount(c.Hostnames, g.e.Scale, 3)
	nLanding := scaleCount(c.Landing, g.e.Scale, 3)
	nInternal := scaleCount(c.InternalURLs, g.e.Scale, nHosts*4)

	// When a country exposes fewer directory-listed landing pages than
	// it has government hostnames (the US case: 1,340 landing URLs but
	// 2,343 hostnames), the surplus hosts are reachable only through
	// links. Those must sit under a government TLD, or the §3.3 filter
	// would discard them — exactly what keeps them in the paper's
	// dataset too.
	nonLanding := 0
	if nHosts > nLanding {
		nonLanding = nHosts - nLanding
	}
	plans := g.planHosts(c, prof, nHosts, nonLanding, r)

	// France's gouv.nc estate: 18 % of French government URLs are
	// served from New Caledonia's state-owned OPT, all under the single
	// hostname gouv.nc (§6.3). That share is carved out of the URL
	// budget before the regular hosts split the remainder.
	var ncPlan *hostPlan
	if c.Code == "FR" {
		site := &Site{
			Host: "gouv.nc", Country: "FR", Kind: KindGov, GovTLD: true,
			Endpoint:          g.net.SOEHostIn("NC", r),
			TruthServeCountry: "NC",
			TruthCategory:     world.CatGovtSOE,
			byteBoost:         byteBoost(c, prof, world.CatGovtSOE),
		}
		g.e.addSite(site)
		ncPlan = &hostPlan{site: site, landings: 1, urls: int(0.185 * float64(nInternal))}
		nInternal -= ncPlan.urls
	}

	g.splitURLBudget(plans, nInternal, nLanding, c, r)
	g.assignEndpoints(c, prof, plans, r)
	if ncPlan != nil {
		plans = append(plans, ncPlan)
	}

	// SAN-only affiliates: government resources whose hostnames carry
	// no government signal; they are reachable only through links and
	// SAN lists (orniss.ro, energia-argentina.com.ar style).
	sanBudget := int(math.Round(float64(nInternal) * 0.003))
	sanSites := g.buildSANOnly(c, prof, sanBudget, r)

	g.buildPages(c, plans, sanSites, r)
	g.buildCerts(c, plans, sanSites, r)

	for _, p := range plans {
		g.e.LandingURLs[c.Code] = append(g.e.LandingURLs[c.Code], p.site.Landing...)
	}
}

// planHosts allocates hostnames, kinds and serving endpoints. The last
// nonLanding hosts are not directory-listed; they are forced under a
// government TLD so the classifier retains them.
func (g *generator) planHosts(c *world.Country, prof *world.Profile, nHosts, nonLanding int, r *rand.Rand) []*hostPlan {
	var plans []*hostPlan
	used := map[string]bool{}
	bodies := append(append([]string{}, naming.Ministries...), naming.Agencies...)

	for i := 0; i < nHosts; i++ {
		linkOnly := i >= nHosts-nonLanding && len(c.GovSuffix) > 0
		isSOE := !linkOnly && r.Float64() < 0.12
		var host string
		var govTLD bool
		if isSOE {
			kind := naming.SOEs[i%len(naming.SOEs)]
			host = naming.SOEHost(c, kind)
			if used[host] {
				host = fmt.Sprintf("%s%d-%s.%s", kind, i, strings.ToLower(c.Code), c.CCTLD)
			}
		} else {
			underGov := linkOnly || (len(c.GovSuffix) > 0 && r.Float64() > c.NonGovTLDShare)
			var body string
			if i < len(bodies) {
				body = bodies[i]
			} else {
				body = fmt.Sprintf("%s%d", bodies[i%len(bodies)], i/len(bodies)+1)
			}
			host = naming.GovHost(c, body, underGov)
			govTLD = underGov
			if used[host] {
				host = naming.GovHost(c, fmt.Sprintf("%s-%d", body, i), underGov)
			}
		}
		if used[host] {
			continue
		}
		used[host] = true
		site := &Site{Host: host, Country: c.Code, GovTLD: govTLD}
		if isSOE {
			site.Kind = KindSOE
		} else {
			site.Kind = KindGov
		}
		site.GeoBlocked = r.Float64() < 0.04
		site.HTTPSValid = r.Float64() < httpsValidProb(c)
		g.e.addSite(site)
		landings := 1
		if linkOnly {
			landings = 0
		}
		plans = append(plans, &hostPlan{site: site, landings: landings, soe: isSOE})
	}
	return plans
}

// assignEndpoints pins every planned site to a serving endpoint. The
// international-serving share and the four category shares are treated
// as URL-weighted quotas and hosts are assigned largest-first, so the
// realized (URL-weighted) mix tracks the profile tightly even though
// URL budgets are heavy-tailed.
func (g *generator) assignEndpoints(c *world.Country, prof *world.Profile, plans []*hostPlan, r *rand.Rand) {
	var total float64
	for _, p := range plans {
		total += float64(p.urls + p.landings)
	}
	// Bucket 0..3: domestic categories; bucket 4: deliberately served
	// from abroad.
	var quotas [5]float64
	for _, cat := range world.Categories {
		quotas[cat] = (1 - prof.IntlServe) * prof.MixURLs[cat] * total
	}
	quotas[4] = prof.IntlServe * total

	order := make([]*hostPlan, len(plans))
	copy(order, plans)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].urls+order[i].landings > order[j].urls+order[j].landings
	})
	for _, p := range order {
		w := float64(p.urls + p.landings)
		best := 0
		for b := 1; b < len(quotas); b++ {
			if quotas[b] > quotas[best] {
				best = b
			}
		}
		quotas[best] -= w
		if best == 4 {
			g.foreignEndpoint(c, prof, p.site, w, r)
		} else {
			g.domesticEndpoint(c, prof, p.site, world.Category(best), p.soe, w, r)
		}
	}
	// Even governments that host almost everything themselves tend to
	// put at least one minor site behind the dominant CDN (free-tier
	// Cloudflare fronting is ubiquitous); without this floor the
	// Fig. 10 leader's footprint collapses to the big adopters.
	adopted := g.net.AdoptedProviders(c.Code)
	if len(adopted) > 0 && len(order) > 1 {
		top := adopted[0]
		for _, p := range adopted {
			if p.BaseShare > top.BaseShare {
				top = p
			}
		}
		if !g.provUsed[c.Code][top.Key] {
			g.ensureProvState(c, r)
			smallest := order[len(order)-1]
			site := smallest.site
			site.Endpoint = g.net.ProviderHostFor(top, c.Code, r)
			if site.Endpoint.Anycast {
				site.TruthServeCountry = g.net.AnycastSiteFor(top.Key, c.Code)
			} else {
				site.TruthServeCountry = site.Endpoint.Country
			}
			site.TruthCategory = truthCategory(c, site.Endpoint)
			site.byteBoost = byteBoost(c, prof, site.TruthCategory)
			g.provUsed[c.Code][top.Key] = true
			g.provLoad[c.Code][top.Key] += float64(smallest.urls + smallest.landings)
			g.provTotal[c.Code] += float64(smallest.urls + smallest.landings)
		}
	}
}

// sampleEndpoint assigns one site probabilistically (used for the
// small SAN-only estates where quotas are overkill).
func (g *generator) sampleEndpoint(c *world.Country, prof *world.Profile, site *Site, isSOE bool, r *rand.Rand) {
	if r.Float64() < prof.IntlServe {
		g.foreignEndpoint(c, prof, site, 1, r)
		return
	}
	cat := world.Categories[rng.Pick(r, prof.MixURLs[:])]
	g.domesticEndpoint(c, prof, site, cat, isSOE, 1, r)
}

// foreignEndpoint places a site on infrastructure in one of the
// profile's destination countries.
func (g *generator) foreignEndpoint(c *world.Country, prof *world.Profile, site *Site, weight float64, r *rand.Rand) {
	codes, ws := prof.DestWeights()
	dest := codes[rng.Pick(r, ws)]
	if dest == c.Code {
		g.domesticEndpoint(c, prof, site, prof.MixURLs.Dominant(), false, weight, r)
		return
	}
	var ep *netsim.Host
	withDC := g.net.ProvidersWithDC(dest)
	// Same-region foreign hosting often lands on destination-local
	// hosters (China's JP-hosted estates sit with Japanese providers);
	// farther away, it is almost always a global provider's DC.
	localProb := 0.08
	if dc := g.w.Country(dest); dc != nil && dc.Region == c.Region {
		localProb = 0.35
	}
	switch {
	case r.Float64() < localProb || len(withDC) == 0:
		ep = g.net.ForeignHostFor(c, dest, r)
	default:
		p := g.pickProvider(c, prof, withDC, weight, false, r)
		ep = g.net.ProviderHostAt(p, dest, r)
	}
	site.Endpoint = ep
	site.TruthServeCountry = ep.Country
	site.TruthCategory = truthCategory(c, ep)
	site.byteBoost = byteBoost(c, prof, site.TruthCategory)
}

// domesticEndpoint places a site on in-country infrastructure of the
// requested category.
func (g *generator) domesticEndpoint(c *world.Country, prof *world.Profile, site *Site, cat world.Category, isSOE bool, weight float64, r *rand.Rand) {
	switch cat {
	case world.CatGovtSOE:
		site.Endpoint = g.net.GovHostFor(c.Code, isSOE || r.Float64() < 0.18, c.Code, r)
	case world.Cat3PLocal:
		site.Endpoint = g.net.LocalHostFor(c.Code, r)
	case world.Cat3PRegional:
		site.Endpoint = g.net.RegionalHostFor(c, r)
	default: // 3P Global
		provs := g.net.AdoptedProviders(c.Code)
		if len(provs) == 0 {
			site.Endpoint = g.net.LocalHostFor(c.Code, r)
		} else {
			p := g.pickProvider(c, prof, provs, weight, true, r)
			site.Endpoint = g.net.ProviderHostFor(p, c.Code, r)
		}
	}
	ep := site.Endpoint
	if ep.Anycast {
		site.TruthServeCountry = g.net.AnycastSiteFor(ep.Provider.Key, c.Code)
	} else {
		site.TruthServeCountry = ep.Country
	}
	site.TruthCategory = truthCategory(c, ep)
	site.byteBoost = byteBoost(c, prof, site.TruthCategory)
}

// byteBoost converts the URL/byte mix pair into a per-category size
// multiplier (realized byte share ≈ MixURLs·boost = MixBytes), scaled
// by a country page-weight factor: Habib et al. (§9) find public
// service websites in developing countries ship markedly heavier
// pages, so lower-HDI countries get a uniform size surcharge that
// leaves category ratios untouched.
func byteBoost(c *world.Country, prof *world.Profile, cat world.Category) float64 {
	u, b := prof.MixURLs[cat], prof.MixBytes[cat]
	boost := 1.0
	if u >= 0.005 {
		boost = b / u
		if boost < 0.05 {
			boost = 0.05
		}
		if boost > 20 {
			boost = 20
		}
	}
	return boost * pageWeightFactor(c)
}

// pageWeightFactor is ~1.3 for the least developed countries in the
// panel and ~0.9 for the most developed ones.
func pageWeightFactor(c *world.Country) float64 {
	hdi := c.HDI
	if hdi == 0 {
		hdi = 0.9 // Taiwan: no UN index
	}
	return 1.35 - 0.5*hdi
}

// truthCategory derives the ground-truth provider category of an
// endpoint from the owning country's perspective.
func truthCategory(c *world.Country, ep *netsim.Host) world.Category {
	switch ep.AS.Kind {
	case netsim.KindGovernment, netsim.KindSOE:
		return world.CatGovtSOE
	case netsim.KindGlobal:
		return world.Cat3PGlobal
	default:
		if ep.AS.RegCountry == c.Code {
			return world.Cat3PLocal
		}
		return world.Cat3PRegional
	}
}

// splitURLBudget distributes the country's internal-URL and landing
// budgets over its hosts; a small set of portal hosts receive both
// extra landing paths and heavier trees, mirroring gov.br-style
// portals.
func (g *generator) splitURLBudget(plans []*hostPlan, nInternal, nLanding int, c *world.Country, r *rand.Rand) {
	if len(plans) == 0 {
		return
	}
	weights := make([]float64, len(plans))
	var sum float64
	for i := range plans {
		w := rng.LogNormal(r, 0, 0.85)
		if i < len(plans)/10+1 {
			w *= 4 // portals
		}
		weights[i] = w
		sum += w
	}
	assigned := 0
	for i, p := range plans {
		p.urls = int(float64(nInternal) * weights[i] / sum)
		assigned += p.urls
	}
	plans[0].urls += nInternal - assigned // remainder to the top portal

	nLandingHosts := 0
	for _, p := range plans {
		if p.landings > 0 {
			nLandingHosts++
		}
	}
	extra := nLanding - nLandingHosts
	for i := 0; extra > 0; i = (i + 1) % len(plans) {
		if i < len(plans)/10+1 && plans[i].landings > 0 {
			plans[i].landings++
			extra--
		}
	}
}

func (g *generator) buildSANOnly(c *world.Country, prof *world.Profile, budget int, r *rand.Rand) []*Site {
	if budget <= 0 {
		return nil
	}
	var sites []*Site
	n := 1
	if budget > 6 {
		n = 2
	}
	kinds := []string{"energia", "infraestructura", "registry", "logistics"}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("%s-%s.com", kinds[(i+len(c.Code))%len(kinds)], strings.ToLower(c.Name[:min(6, len(c.Name))]))
		host = strings.ReplaceAll(host, " ", "")
		if g.e.Sites[host] != nil {
			host = fmt.Sprintf("affiliate%d-%s.com", i, strings.ToLower(c.Code))
		}
		site := &Site{Host: host, Country: c.Code, Kind: KindSANOnly}
		g.sampleEndpoint(c, prof, site, true, r)
		g.e.addSite(site)
		per := budget / n
		if per < 1 {
			per = 1
		}
		for k := 0; k < per; k++ {
			path := fmt.Sprintf("/info-%d", k)
			site.Pages[path] = &Page{Path: path, Depth: 1, Size: sizeFor(site, "text/html", 60_000, r),
				ContentType: "text/html"}
		}
		sites = append(sites, site)
	}
	return sites
}

// buildPages generates each host's page tree and wires cross-links.
func (g *generator) buildPages(c *world.Country, plans []*hostPlan, sanSites []*Site, r *rand.Rand) {
	prof := g.profiles[c.Code]
	_ = prof
	for pi, plan := range plans {
		site := plan.site
		root := &Page{Path: "/", Depth: 0, ContentType: "text/html",
			Size: sizeFor(site, "text/html", 70_000, r)}
		site.Pages["/"] = root
		if plan.landings > 0 {
			site.Landing = append(site.Landing, site.URL("/"))
		}
		for l := 1; l < plan.landings; l++ {
			path := fmt.Sprintf("/portal-%d", l)
			site.Landing = append(site.Landing, site.URL(path))
			site.Pages[path] = &Page{Path: path, Depth: 0, ContentType: "text/html",
				Size: sizeFor(site, "text/html", 70_000, r)}
		}

		// Internal URLs with the §4.2 depth distribution.
		perDepth := make([]int, 8)
		for i := 0; i < plan.urls; i++ {
			d := 1 + rng.Pick(r, depthShare[1:])
			perDepth[d]++
		}
		// A deep tree needs at least one document per intermediate
		// level; promote budget upward when a level would be orphaned.
		for d := 2; d <= 7; d++ {
			if perDepth[d] > 0 && perDepth[d-1] == 0 {
				perDepth[d-1], perDepth[d] = 1, perDepth[d]-1
			}
		}
		docsAt := map[int][]*Page{0: {root}}
		for d := 1; d <= 7; d++ {
			parents := docsAt[d-1]
			if len(parents) == 0 {
				break
			}
			for i := 0; i < perDepth[d]; i++ {
				isDoc := r.Float64() < 0.55
				var page *Page
				if isDoc {
					path := fmt.Sprintf("/l%d/page-%d", d, i)
					page = &Page{Path: path, Depth: d, ContentType: "text/html",
						Size: sizeFor(site, "text/html", 60_000, r)}
					docsAt[d] = append(docsAt[d], page)
				} else {
					re := resourceExts[r.Intn(len(resourceExts))]
					path := fmt.Sprintf("/static/d%d-%d.%s", d, i, re.ext)
					page = &Page{Path: path, Depth: d, ContentType: re.ct,
						Size: sizeFor(site, re.ct, re.size, r)}
				}
				site.Pages[page.Path] = page
				parent := parents[r.Intn(len(parents))]
				parent.Links = append(parent.Links, site.URL(page.Path))
			}
		}

		// Cross-links from the landing page: other government hosts of
		// the country, SAN-only affiliates, and external contractors.
		if len(plans) > 1 {
			for k := 0; k < min(3, len(plans)-1); k++ {
				other := plans[(pi+k+1)%len(plans)].site
				root.Links = append(root.Links, other.URL("/"))
			}
		}
		if len(sanSites) > 0 && pi < 2*len(sanSites) {
			san := sanSites[pi%len(sanSites)]
			for _, path := range san.SortedPaths() {
				root.Links = append(root.Links, san.URL(path))
			}
		}
		for k := 0; k < 2; k++ {
			ct := g.contractors[r.Intn(len(g.contractors))]
			paths := ct.SortedPaths()
			root.Links = append(root.Links, ct.URL(paths[r.Intn(len(paths))]))
		}
	}
}

// buildCerts issues certificates for landing sites; a few embed the
// SAN-only hostnames, which is how the pipeline discovers them.
// Certificate validity follows the country's digital development:
// Singanamalla et al. find over 70 % of government sites worldwide
// lack valid HTTPS, with adoption tracking e-government maturity.
func (g *generator) buildCerts(c *world.Country, plans []*hostPlan, sanSites []*Site, r *rand.Rand) {
	invalidReasons := []string{"expired", "self-signed", "hostname-mismatch", "incomplete-chain"}
	for pi, plan := range plans {
		if plan.landings == 0 {
			continue // only landing pages contribute certificates (§3.3)
		}
		site := plan.site
		cert := &tlssim.Certificate{
			Subject: site.Host,
			SANs:    []string{site.Host, "www." + site.Host},
			Issuer:  "GovTrust CA",
			Valid:   site.HTTPSValid,
		}
		if !cert.Valid {
			cert.Invalid = invalidReasons[r.Intn(len(invalidReasons))]
		}
		if pi < 2*len(sanSites) && len(sanSites) > 0 {
			cert.SANs = append(cert.SANs, sanSites[pi%len(sanSites)].Host)
		}
		site.Cert = cert
		g.e.Certs.Put(cert)
	}
}

// sizeFor draws a body size scaled by the category byte-tilt of the
// owning country so that per-category byte shares reproduce the
// profile's MixBytes.
func sizeFor(site *Site, ct string, mean float64, r *rand.Rand) int64 {
	v := rng.LogNormal(r, math.Log(mean)-0.5, 1.0)
	boost := site.byteBoost
	if boost <= 0 {
		boost = 1
	}
	sz := int64(v * boost)
	if sz < 200 {
		sz = 200
	}
	return sz
}

// httpsValidProb follows the country's e-government maturity: the
// Singanamalla et al. extension expects over 70 % of government sites
// worldwide to lack valid HTTPS.
func httpsValidProb(c *world.Country) float64 {
	egdi := c.EGDI
	if egdi == 0 {
		egdi = 0.75 // Taiwan/Hong Kong: no UN index, high development
	}
	return 0.04 + 0.33*egdi
}

func scaleCount(v int, scale float64, floor int) int {
	n := int(math.Round(float64(v) * scale))
	if n < floor {
		n = floor
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
