// Package webgen materialises the synthetic government web: per
// country, a set of hostnames (ministries, agencies, SOEs, portals)
// with page trees up to seven levels deep, subresources, cross-links,
// contractor sites, SAN-only affiliates and TLS certificates. Each
// hostname is pinned to a serving endpoint drawn from the country's
// hosting-policy profile, which is the ground truth the measurement
// pipeline must rediscover.
package webgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/tlssim"
	"repro/internal/world"
)

// SiteKind distinguishes the kinds of hosts in the synthetic web.
type SiteKind int

// Site kinds.
const (
	KindGov        SiteKind = iota // government body site (ministry, agency, portal)
	KindSOE                        // state-owned enterprise site
	KindSANOnly                    // government affiliate discoverable only via SANs
	KindContractor                 // external contractor / tracker — must be filtered out
	KindTopsite                    // popular non-government site (Appendix D baseline)
)

func (k SiteKind) String() string {
	switch k {
	case KindGov:
		return "gov"
	case KindSOE:
		return "soe"
	case KindSANOnly:
		return "san-only"
	case KindContractor:
		return "contractor"
	case KindTopsite:
		return "topsite"
	}
	return "unknown"
}

// Page is one crawlable document or resource on a site.
type Page struct {
	Path        string
	Depth       int      // ground-truth tree depth (0 = landing)
	Links       []string // absolute URLs this page references
	Size        int64    // body size in bytes
	ContentType string
}

// Site is one hostname with its page tree and serving assignment.
type Site struct {
	Host    string
	Country string // owning country code ("" for contractors)
	Kind    SiteKind
	GovTLD  bool // hostname sits under a government TLD pattern

	Landing []string // absolute landing URLs on this host
	Pages   map[string]*Page

	Endpoint *netsim.Host // serving endpoint (ground truth)
	// TruthCategory is the ground-truth provider category of the
	// endpoint from the owning country's perspective.
	TruthCategory world.Category
	// TruthServeCountry is where the content is ground-truth served
	// from for clients inside the owning country.
	TruthServeCountry string

	// CNAME, when non-empty, is the canonical-name target the DNS zone
	// answers for this hostname (used by the Appendix D self-hosting
	// heuristic on top sites).
	CNAME string

	Cert *tlssim.Certificate // landing-page certificate (nil for plain sites)

	// GeoBlocked sites only answer requests from vantage points inside
	// their own country (footnote 1: www.prodecon.gob.mx).
	GeoBlocked bool

	// HTTPSValid reports whether the site serves a certificate a
	// browser would accept (Singanamalla et al. extension).
	HTTPSValid bool

	// byteBoost tilts this site's body sizes so that per-category byte
	// shares reproduce the owning country's MixBytes profile.
	byteBoost float64
}

// URL returns the absolute URL of a path on this site.
func (s *Site) URL(path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return "https://" + s.Host + path
}

// PageCount returns the number of pages (documents and resources).
func (s *Site) PageCount() int { return len(s.Pages) }

// SortedPaths returns the site's paths in deterministic order.
func (s *Site) SortedPaths() []string {
	out := make([]string, 0, len(s.Pages))
	for p := range s.Pages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Estate is the whole synthetic web.
type Estate struct {
	World *world.Model
	Net   *netsim.Net
	Certs *tlssim.Store

	Sites     map[string]*Site // by hostname
	SiteList  []*Site
	ByCountry map[string][]*Site // gov+SOE+SAN-only sites per country

	// LandingURLs per country, the §3.1 directory the pipeline starts
	// from. SAN-only and contractor sites are deliberately absent.
	LandingURLs map[string][]string

	// Topsites per country for the Appendix D comparison.
	Topsites map[string][]*Site

	Scale float64
}

// Site returns the site for a hostname, or nil.
func (e *Estate) Site(host string) *Site { return e.Sites[host] }

// GovSites returns the government-owned sites (gov, SOE, SAN-only) of
// a country.
func (e *Estate) GovSites(country string) []*Site { return e.ByCountry[country] }

// TotalPages counts pages across all sites.
func (e *Estate) TotalPages() int {
	n := 0
	for _, s := range e.SiteList {
		n += len(s.Pages)
	}
	return n
}

// addSite registers a site, panicking on hostname collisions: the
// generator must produce a consistent web.
func (e *Estate) addSite(s *Site) {
	if _, dup := e.Sites[s.Host]; dup {
		panic(fmt.Sprintf("webgen: duplicate hostname %q", s.Host))
	}
	if s.Pages == nil {
		s.Pages = make(map[string]*Page)
	}
	e.Sites[s.Host] = s
	e.SiteList = append(e.SiteList, s)
	switch s.Kind {
	case KindGov, KindSOE, KindSANOnly:
		e.ByCountry[s.Country] = append(e.ByCountry[s.Country], s)
	case KindTopsite:
		e.Topsites[s.Country] = append(e.Topsites[s.Country], s)
	}
}
