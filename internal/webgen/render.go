package webgen

import (
	"context"
	"fmt"
	"net/url"
	"strings"

	"repro/internal/fetch"
)

// RenderHTML produces the HTML body of a document page: a title,
// anchors and resource tags for every link, and enough filler to
// approximate the page's nominal size when padded is true.
func RenderHTML(s *Site, p *Page, padded bool) []byte {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html><head><title>")
	b.WriteString(s.Host + p.Path)
	b.WriteString("</title>\n")
	for _, link := range p.Links {
		switch {
		case strings.HasSuffix(link, ".css"):
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", link)
		case strings.HasSuffix(link, ".woff2"):
			fmt.Fprintf(&b, "<link rel=\"preload\" as=\"font\" href=\"%s\">\n", link)
		}
	}
	b.WriteString("</head>\n<body>\n")
	for _, link := range p.Links {
		switch {
		case strings.HasSuffix(link, ".js"):
			fmt.Fprintf(&b, "<script src=\"%s\"></script>\n", link)
		case strings.HasSuffix(link, ".png"), strings.HasSuffix(link, ".jpg"), strings.HasSuffix(link, ".svg"):
			fmt.Fprintf(&b, "<img src=\"%s\" alt=\"\">\n", link)
		case strings.HasSuffix(link, ".css"), strings.HasSuffix(link, ".woff2"):
			// already emitted in head
		default:
			fmt.Fprintf(&b, "<a href=\"%s\">%s</a>\n", link, link)
		}
	}
	b.WriteString("</body></html>\n")
	out := []byte(b.String())
	if padded && int64(len(out)) < p.Size {
		pad := make([]byte, p.Size-int64(len(out)))
		fill := []byte("<!-- synthetic government content padding -->\n")
		for i := range pad {
			pad[i] = fill[i%len(fill)]
		}
		out = append(out, pad...)
	}
	return out
}

// RenderResource produces the body of a non-HTML resource.
func RenderResource(p *Page, padded bool) []byte {
	header := []byte("/* synthetic resource " + p.Path + " */\n")
	if !padded || int64(len(header)) >= p.Size {
		return header
	}
	out := make([]byte, p.Size)
	copy(out, header)
	for i := len(header); i < len(out); i++ {
		out[i] = byte('a' + i%23)
	}
	return out
}

// MemFetcher serves the estate directly from memory for a fixed
// vantage country. It reproduces the observable behaviours of the real
// server — geo-blocking, 404s for unknown paths, DNS-style failures
// for unknown hosts — without paying for padding bytes.
type MemFetcher struct {
	Estate  *Estate
	Vantage string
}

// Fetch implements fetch.Fetcher.
func (m *MemFetcher) Fetch(ctx context.Context, raw string) (*fetch.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("webgen: bad url %q: %w", raw, err)
	}
	site := m.Estate.Site(u.Hostname())
	if site == nil {
		return nil, fmt.Errorf("webgen: no such host %q: %w", u.Hostname(), fetch.ErrHostNotFound)
	}
	if site.GeoBlocked && site.Country != m.Vantage {
		return &fetch.Response{Status: 403, ContentType: "text/html",
			Body: []byte("<html><body>Access restricted to domestic visitors</body></html>")}, nil
	}
	path := u.Path
	if path == "" {
		path = "/"
	}
	page := site.Pages[path]
	if page == nil {
		return &fetch.Response{Status: 404, ContentType: "text/html",
			Body: []byte("<html><body>Not found</body></html>")}, nil
	}
	var body []byte
	if page.ContentType == "text/html" {
		body = RenderHTML(site, page, false)
	} else {
		body = RenderResource(page, false)
	}
	return &fetch.Response{
		Status:      200,
		ContentType: page.ContentType,
		Body:        body,
		BodySize:    page.Size,
	}, nil
}
