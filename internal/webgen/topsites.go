package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/netsim"

	"repro/internal/rng"
	"repro/internal/tlssim"
	"repro/internal/world"
)

// ComparisonCountries is the 14-country subset of Table 6: two per
// region, chosen for contrasting digital development.
var ComparisonCountries = []string{
	"CA", "US", // NA
	"MX", "BR", // LAC
	"FR", "BA", // ECA
	"AE", "IL", // MENA
	"ZA", "EG", // SSA
	"IN", "PK", // SA
	"JP", "NZ", // EAP
}

// globalBrands are worldwide popular sites that appear in every
// country's CrUX-style list; they self-host on their own foreign
// infrastructure, which is why top-site "self-hosting" does not imply
// domestic hosting (Figs. 3 and 7).
var globalBrands = []string{
	"SearchCo", "VideoTube", "SocialBook", "ShopAll", "StreamFlix",
	"WikiKnow", "MicroBlog", "PicShare", "ChatApp", "MailBox",
}

// topsiteSectors name domestic popular sites.
var topsiteSectors = []string{
	"news", "bank", "shop", "sports", "weather", "jobs", "travel",
	"classifieds", "tv", "forum", "auto", "food", "realestate", "music",
}

// buildTopsites creates per-country popular-site estates for the
// Appendix D comparison. Hosting parameters are calibrated so the
// measured shares reproduce Fig. 3 (self 0.18, global 0.78, local
// 0.03, regional 0.01 by URLs) and Fig. 7 (11 % domestic registration,
// 49 % domestic serving).
func (g *generator) buildTopsites() {
	for _, code := range ComparisonCountries {
		c := g.w.MustCountry(code)
		r := rng.New(g.seed, "topsites/"+code)
		n := scaleCount(50, g.e.Scale, 10)
		for i := 0; i < n; i++ {
			if r.Float64() < 0.45 {
				g.buildGlobalBrandSite(c, i, r)
			} else {
				g.buildDomesticTopsite(c, i, r)
			}
		}
	}
}

func (g *generator) buildGlobalBrandSite(c *world.Country, i int, r *rand.Rand) {
	brand := globalBrands[i%len(globalBrands)]
	host := fmt.Sprintf("www.%s.%s", strings.ToLower(brand), c.CCTLD)
	if g.e.Sites[host] != nil {
		host = fmt.Sprintf("www.%s%d.%s", strings.ToLower(brand), i, c.CCTLD)
	}
	site := &Site{Host: host, Country: c.Code, Kind: KindTopsite, byteBoost: 1}
	twoLD := topsite2LD(host)
	if r.Float64() < 0.42 {
		// Self-hosted on the brand's own AS. 40 % of the time a local
		// edge answers in-country; otherwise a US origin does.
		as := g.net.CorpAS(brand, "US")
		loc := "US"
		if r.Float64() < 0.52 {
			loc = c.Code
		}
		site.Endpoint = g.net.CorpHostAt(as, loc, r)
		if r.Float64() < 0.10 {
			// SAN-private case: CNAME to a different 2LD that appears
			// in the certificate's SAN list (img.youtube.com style).
			// Country-scoped like every other CNAME target: the brand
			// runs one static domain per market, so each zone entry
			// maps to exactly one endpoint.
			site.CNAME = fmt.Sprintf("cdn.%s-%s-static.com",
				strings.ToLower(brand), strings.ToLower(c.Code))
		} else {
			site.CNAME = "edge." + twoLD
		}
	} else {
		p := g.pickTopsiteProvider(r)
		loc := "US"
		if r.Float64() < 0.50 && (p.HasDC(c.Code) || p.Anycast) {
			loc = c.Code
		}
		if p.Anycast && loc == c.Code {
			site.Endpoint = g.net.ProviderHostFor(p, c.Code, r)
			site.TruthServeCountry = g.net.AnycastSiteFor(p.Key, c.Code)
		} else {
			site.Endpoint = g.net.ProviderHostAt(p, loc, r)
		}
		// Per-country CNAME label (searchco-br.cdn.cloudflare.net), as
		// providers issue them: a brand-wide label shared by every
		// country would alias one zone A record over each country's
		// distinct endpoint, so all but the last-registered site would
		// resolve — and geolocate — to another country's edge.
		site.CNAME = fmt.Sprintf("%s-%s.%s",
			strings.ToLower(brand), strings.ToLower(c.Code), providerCNAMEDomain(p.Key))
	}
	if site.TruthServeCountry == "" {
		site.TruthServeCountry = site.Endpoint.Country
	}
	g.finishTopsite(site, twoLD, r)
}

func (g *generator) buildDomesticTopsite(c *world.Country, i int, r *rand.Rand) {
	sector := topsiteSectors[i%len(topsiteSectors)]
	host := fmt.Sprintf("www.%s%d.%s", sector, i/len(topsiteSectors)+1, c.CCTLD)
	if g.e.Sites[host] != nil {
		host = fmt.Sprintf("www.%s-%d.%s", sector, i, c.CCTLD)
	}
	site := &Site{Host: host, Country: c.Code, Kind: KindTopsite, byteBoost: 1}
	twoLD := topsite2LD(host)
	x := r.Float64()
	switch {
	case x < 0.07: // on-premises self-hosting
		as := g.net.CorpAS(titleCase(sector)+" "+c.Name, c.Code)
		site.Endpoint = g.net.CorpHostAt(as, c.Code, r)
		site.CNAME = "origin." + twoLD
	case x < 0.13: // domestic commercial hoster
		site.Endpoint = g.net.LocalHostFor(c.Code, r)
	case x < 0.15: // regional hoster
		site.Endpoint = g.net.RegionalHostFor(c, r)
	default: // global provider
		p := g.pickTopsiteProvider(r)
		loc := "US"
		if r.Float64() < 0.62 {
			if p.Anycast || p.HasDC(c.Code) {
				loc = c.Code
			}
		}
		if p.Anycast {
			site.Endpoint = g.net.ProviderHostFor(p, c.Code, r)
			site.TruthServeCountry = g.net.AnycastSiteFor(p.Key, c.Code)
		} else {
			site.Endpoint = g.net.ProviderHostAt(p, loc, r)
		}
		site.CNAME = sector + "-" + strings.ToLower(c.Code) + "." + providerCNAMEDomain(p.Key)
	}
	if site.TruthServeCountry == "" {
		site.TruthServeCountry = site.Endpoint.Country
	}
	g.finishTopsite(site, twoLD, r)
}

func (g *generator) pickTopsiteProvider(r *rand.Rand) *netsim.Provider {
	ws := make([]float64, len(g.net.Providers))
	for i, p := range g.net.Providers {
		ws[i] = p.BaseShare
	}
	return g.net.Providers[rng.Pick(r, ws)]
}

func (g *generator) finishTopsite(site *Site, twoLD string, r *rand.Rand) {
	c := g.w.MustCountry(site.Country)
	site.TruthCategory = truthCategory(c, site.Endpoint)
	root := &Page{Path: "/", Depth: 0, ContentType: "text/html",
		Size: sizeFor(site, "text/html", 90_000, r)}
	site.Pages = map[string]*Page{"/": root}
	site.Landing = []string{site.URL("/")}
	// Top-site crawls stop one level below the landing page (§5.1).
	n := 5 + r.Intn(8)
	for k := 0; k < n; k++ {
		re := resourceExts[r.Intn(len(resourceExts))]
		path := fmt.Sprintf("/asset-%d.%s", k, re.ext)
		site.Pages[path] = &Page{Path: path, Depth: 1, ContentType: re.ct,
			Size: sizeFor(site, re.ct, re.size, r)}
		root.Links = append(root.Links, site.URL(path))
	}
	site.HTTPSValid = r.Float64() < 0.97 // commercial sites rarely ship broken TLS
	cert := &tlssim.Certificate{Subject: site.Host,
		SANs: []string{site.Host, twoLD}, Issuer: "WebTrust CA",
		Valid: site.HTTPSValid}
	if site.CNAME != "" && !strings.HasSuffix(site.CNAME, twoLD) && strings.Contains(site.CNAME, "-static.com") {
		cert.SANs = append(cert.SANs, topsite2LD(site.CNAME))
	}
	site.Cert = cert
	g.e.Certs.Put(cert)
	g.e.addSite(site)
}

// topsite2LD returns the effective second-level domain (2LD+TLD in the
// paper's terminology) of a hostname.
func topsite2LD(host string) string {
	parts := strings.Split(host, ".")
	if len(parts) < 2 {
		return host
	}
	return strings.Join(parts[len(parts)-2:], ".")
}

// providerCNAMEDomain is the provider-owned domain CNAME targets live
// under, e.g. shop-cl.cdn.cloudflare.net.
func providerCNAMEDomain(key string) string {
	return "cdn." + strings.ReplaceAll(key, "-", "") + ".net"
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
