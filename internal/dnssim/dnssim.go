// Package dnssim builds the authoritative DNS view of the synthetic
// web: A records for every site (behind CNAME chains where the site
// fronts with a provider or a self-hosted edge), and PTR records for
// every allocated address. It resolves queries directly for the
// full-scale pipeline and exposes a dnswire.Handler so integration
// tests and examples can resolve over real UDP/TCP sockets.
package dnssim

import (
	"fmt"
	"net"
	"net/netip"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/webgen"
)

// Result is a completed resolution.
type Result struct {
	Host  string
	Chain []string // CNAME chain, excluding the queried name
	Addr  netip.Addr
}

// Zones is the authoritative database.
type Zones struct {
	net    *netsim.Net
	cname  map[string]string     // hostname → canonical name
	a      map[string]netip.Addr // hostname → address
	ptr    map[netip.Addr]string // address → PTR name
	estate *webgen.Estate

	// geodns maps hostnames of sites fronted by multi-DC unicast
	// providers to their provider, enabling vantage-dependent replica
	// selection (ResolveFrom).
	geodns map[string]*netsim.Provider
}

// Build derives zones from the estate and the network.
func Build(e *webgen.Estate, n *netsim.Net) *Zones {
	z := &Zones{
		net:    n,
		cname:  make(map[string]string),
		a:      make(map[string]netip.Addr),
		ptr:    make(map[netip.Addr]string),
		estate: e,
		geodns: make(map[string]*netsim.Provider),
	}
	for _, s := range e.SiteList {
		// GeoDNS applies to sites hosted at their provider's default
		// (nearest) data centre; deliberately pinned placements (a
		// Moroccan site parked in a French DC) resolve to their origin
		// from everywhere, as contractual hosting does.
		if p := s.Endpoint.Provider; p != nil && !p.Anycast && len(p.DCs) > 1 &&
			s.Country != "" && s.Endpoint.Country == n.NearestDC(p, s.Country) {
			z.geodns[s.Host] = p
		}
		if s.CNAME != "" {
			z.cname[s.Host] = s.CNAME
			z.a[s.CNAME] = s.Endpoint.Addr
		} else {
			z.a[s.Host] = s.Endpoint.Addr
		}
		// www. aliases for landing sites point at the apex.
		if s.Cert != nil {
			z.cname["www."+s.Host] = s.Host
		}
	}
	for _, h := range n.HostList {
		if h.PTR != "" {
			z.ptr[h.Addr] = h.PTR
		}
	}
	return z
}

// Resolve follows the CNAME chain for host and returns the final
// address. The chain depth is capped defensively.
func (z *Zones) Resolve(host string) (Result, error) {
	res := Result{Host: host}
	cur := strings.TrimSuffix(strings.ToLower(host), ".")
	for depth := 0; depth < 8; depth++ {
		if addr, ok := z.a[cur]; ok {
			res.Addr = addr
			return res, nil
		}
		next, ok := z.cname[cur]
		if !ok {
			return res, fmt.Errorf("dnssim: NXDOMAIN %q", host)
		}
		res.Chain = append(res.Chain, next)
		cur = next
	}
	return res, fmt.Errorf("dnssim: CNAME chain too deep for %q", host)
}

// ResolveFrom resolves host as seen from a vantage country: sites on
// multi-data-centre unicast providers answer with the replica nearest
// the querier (GeoDNS / EDNS-client-subnet behaviour), everything else
// resolves as Resolve does. This is why the paper insists on resolving
// from within the studied country (§3.2, §3.4).
func (z *Zones) ResolveFrom(vantage, host string) (Result, error) {
	res, err := z.Resolve(host)
	if err != nil {
		return res, err
	}
	cur := strings.TrimSuffix(strings.ToLower(host), ".")
	p, ok := z.geodns[cur]
	if !ok {
		// The queried name may be an alias of a GeoDNS-fronted site.
		for _, c := range res.Chain {
			if gp, ok2 := z.geodns[strings.TrimSuffix(strings.ToLower(c), ".")]; ok2 {
				p, ok = gp, true
				break
			}
		}
	}
	if !ok {
		return res, nil
	}
	dc := z.net.NearestDC(p, vantage)
	res.Addr = z.net.DCHost(p, dc).Addr
	return res, nil
}

// CNAMEOf returns the direct canonical name of host, if any.
func (z *Zones) CNAMEOf(host string) (string, bool) {
	t, ok := z.cname[strings.TrimSuffix(strings.ToLower(host), ".")]
	return t, ok
}

// PTR returns the reverse name for an address, or "".
func (z *Zones) PTR(addr netip.Addr) string { return z.ptr[addr] }

// reverseName builds the in-addr.arpa name for an IPv4 address.
func reverseName(addr netip.Addr) string {
	b := addr.As4()
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa.", b[3], b[2], b[1], b[0])
}

// parseReverse parses an in-addr.arpa name back to an address.
func parseReverse(name string) (netip.Addr, bool) {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	const suffix = ".in-addr.arpa"
	if !strings.HasSuffix(name, suffix) {
		return netip.Addr{}, false
	}
	parts := strings.Split(strings.TrimSuffix(name, suffix), ".")
	if len(parts) != 4 {
		return netip.Addr{}, false
	}
	var b [4]byte
	for i, p := range parts {
		var v int
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil || v < 0 || v > 255 {
			return netip.Addr{}, false
		}
		b[3-i] = byte(v)
	}
	return netip.AddrFrom4(b), true
}

// Handler returns a dnswire handler serving these zones
// authoritatively: A queries walk the CNAME chain (answering with the
// chain plus the terminal A record, as real authoritative-ish
// recursors do), PTR queries consult the reverse zone.
func (z *Zones) Handler() dnswire.Handler {
	return dnswire.HandlerFunc(func(q *dnswire.Message, remote net.Addr) *dnswire.Message {
		resp := q.Reply()
		if len(q.Questions) != 1 {
			resp.Header.RCode = dnswire.RCodeFormat
			return resp
		}
		question := q.Questions[0]
		name := strings.TrimSuffix(strings.ToLower(question.Name), ".")
		switch question.Type {
		case dnswire.TypeA:
			res, err := z.Resolve(name)
			if err != nil {
				resp.Header.RCode = dnswire.RCodeNXDomain
				return resp
			}
			prev := question.Name
			for _, c := range res.Chain {
				resp.Answers = append(resp.Answers, dnswire.RR{
					Name: prev, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN,
					TTL: 300, Target: dnswire.CanonicalName(c),
				})
				prev = dnswire.CanonicalName(c)
			}
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: prev, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: 60, A: res.Addr,
			})
		case dnswire.TypePTR:
			addr, ok := parseReverse(question.Name)
			if !ok {
				resp.Header.RCode = dnswire.RCodeFormat
				return resp
			}
			ptr := z.PTR(addr)
			if ptr == "" {
				resp.Header.RCode = dnswire.RCodeNXDomain
				return resp
			}
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: question.Name, Type: dnswire.TypePTR, Class: dnswire.ClassIN,
				TTL: 300, Target: dnswire.CanonicalName(ptr),
			})
		default:
			resp.Header.RCode = dnswire.RCodeNotImp
		}
		return resp
	})
}

// ReverseName exposes reverseName for clients issuing PTR queries.
func ReverseName(addr netip.Addr) string { return reverseName(addr) }
