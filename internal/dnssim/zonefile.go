package dnssim

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// WriteZoneFile serializes the authoritative data in RFC 1035 §5
// master-file format: one record per line, fully-qualified names,
// explicit TTLs. CNAMEs come first so the file reads like the
// resolution order; PTR records are emitted under in-addr.arpa.
func (z *Zones) WriteZoneFile(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; govhost synthetic authoritative zone (%d A, %d CNAME, %d PTR)\n",
		len(z.a), len(z.cname), len(z.ptr))

	cnames := make([]string, 0, len(z.cname))
	for name := range z.cname {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		fmt.Fprintf(bw, "%s. 300 IN CNAME %s.\n", name, z.cname[name])
	}

	arecords := make([]string, 0, len(z.a))
	for name := range z.a {
		arecords = append(arecords, name)
	}
	sort.Strings(arecords)
	for _, name := range arecords {
		fmt.Fprintf(bw, "%s. 60 IN A %s\n", name, z.a[name])
	}

	ptrs := make([]netip.Addr, 0, len(z.ptr))
	for addr := range z.ptr {
		ptrs = append(ptrs, addr)
	}
	sort.Slice(ptrs, func(i, j int) bool { return ptrs[i].Less(ptrs[j]) })
	for _, addr := range ptrs {
		fmt.Fprintf(bw, "%s 300 IN PTR %s.\n", reverseName(addr), z.ptr[addr])
	}
	return bw.Flush()
}

// ParseZoneFile reads a master file written by WriteZoneFile (or any
// subset of the "name TTL IN TYPE rdata" line format with A, CNAME and
// PTR records) into a fresh Zones database usable for resolution.
func ParseZoneFile(r io.Reader) (*Zones, error) {
	z := &Zones{
		cname: make(map[string]string),
		a:     make(map[string]netip.Addr),
		ptr:   make(map[netip.Addr]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("dnssim: zone line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		name := strings.TrimSuffix(strings.ToLower(fields[0]), ".")
		if _, err := strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("dnssim: zone line %d: bad TTL %q", lineNo, fields[1])
		}
		if fields[2] != "IN" {
			return nil, fmt.Errorf("dnssim: zone line %d: class %q unsupported", lineNo, fields[2])
		}
		rdata := fields[4]
		switch fields[3] {
		case "A":
			addr, err := netip.ParseAddr(rdata)
			if err != nil {
				return nil, fmt.Errorf("dnssim: zone line %d: %v", lineNo, err)
			}
			z.a[name] = addr
		case "CNAME":
			z.cname[name] = strings.TrimSuffix(strings.ToLower(rdata), ".")
		case "PTR":
			addr, ok := parseReverse(name)
			if !ok {
				return nil, fmt.Errorf("dnssim: zone line %d: PTR owner %q is not in-addr.arpa", lineNo, name)
			}
			z.ptr[addr] = strings.TrimSuffix(rdata, ".")
		default:
			return nil, fmt.Errorf("dnssim: zone line %d: type %q unsupported", lineNo, fields[3])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return z, nil
}
