package dnssim

import (
	"bytes"
	"context"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/webgen"
	"repro/internal/world"
)

func buildZones(t testing.TB) (*Zones, *webgen.Estate) {
	t.Helper()
	w := world.New()
	net := netsim.Build(w, 42)
	profiles := world.BuildProfiles(w, 42)
	estate := webgen.Build(w, net, profiles, 42, 0.02)
	return Build(estate, net), estate
}

func TestResolveGovernmentHostname(t *testing.T) {
	z, estate := buildZones(t)
	sites := estate.GovSites("UY")
	if len(sites) == 0 {
		t.Fatal("no Uruguayan sites generated")
	}
	res, err := z.Resolve(sites[0].Host)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr != sites[0].Endpoint.Addr {
		t.Fatalf("resolved %v, want %v", res.Addr, sites[0].Endpoint.Addr)
	}
}

func TestResolveWWWAlias(t *testing.T) {
	z, estate := buildZones(t)
	for _, s := range estate.GovSites("CL") {
		if s.Cert == nil {
			continue
		}
		res, err := z.Resolve("www." + s.Host)
		if err != nil {
			t.Fatalf("www alias of %s: %v", s.Host, err)
		}
		if len(res.Chain) == 0 {
			t.Fatal("www alias must resolve through a CNAME")
		}
		return
	}
	t.Skip("no landing site with certificate")
}

func TestResolveTopsiteCNAMEChain(t *testing.T) {
	z, estate := buildZones(t)
	// Every CNAME-fronted topsite, not a map-order-dependent sample:
	// shared CNAME targets once aliased one country's endpoint over
	// another's, and only some iteration orders surfaced it.
	checked := 0
	for _, sites := range estate.Topsites {
		for _, s := range sites {
			if s.CNAME == "" {
				continue
			}
			checked++
			res, err := z.Resolve(s.Host)
			if err != nil {
				t.Fatalf("resolve %s: %v", s.Host, err)
			}
			if len(res.Chain) == 0 || res.Chain[0] != s.CNAME {
				t.Fatalf("CNAME chain for %s = %v, want first hop %s", s.Host, res.Chain, s.CNAME)
			}
			if res.Addr != s.Endpoint.Addr {
				t.Fatalf("chain endpoint %v for %s, want the site endpoint %v", res.Addr, s.Host, s.Endpoint.Addr)
			}
		}
	}
	if checked == 0 {
		t.Skip("no CNAME-fronted topsite in sample")
	}
}

func TestResolveNXDomain(t *testing.T) {
	z, _ := buildZones(t)
	if _, err := z.Resolve("no-such-host.invalid"); err == nil {
		t.Fatal("unknown hostname must fail")
	}
}

func TestCNAMEChainLoopProtection(t *testing.T) {
	z := &Zones{cname: map[string]string{"a.test": "b.test", "b.test": "a.test"},
		a: map[string]netip.Addr{}, ptr: map[netip.Addr]string{}}
	if _, err := z.Resolve("a.test"); err == nil {
		t.Fatal("CNAME loop must be rejected")
	}
}

func TestReverseNameRoundTripQuick(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		got, ok := parseReverse(ReverseName(addr))
		return ok && got == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseReverseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "example.com.", "1.2.3.in-addr.arpa.", "x.2.3.4.in-addr.arpa.", "300.2.3.4.in-addr.arpa."} {
		if _, ok := parseReverse(s); ok {
			t.Errorf("parseReverse(%q) accepted", s)
		}
	}
}

func TestPTRLookup(t *testing.T) {
	z, estate := buildZones(t)
	found := false
	for _, s := range estate.GovSites("DE") {
		if ptr := z.PTR(s.Endpoint.Addr); ptr != "" {
			found = true
			break
		}
	}
	if !found {
		t.Skip("no PTR on sampled German endpoints")
	}
}

// TestHandlerOverUDP exercises the full wire path: the authoritative
// handler behind a real UDP server, queried with the dnswire client.
func TestHandlerOverUDP(t *testing.T) {
	z, estate := buildZones(t)
	srv := &dnswire.Server{Handler: z.Handler()}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	site := estate.GovSites("JP")[0]
	resp, err := dnswire.Exchange(ctx, addr, dnswire.NewQuery(7, site.Host, dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	var got netip.Addr
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeA {
			got = rr.A
		}
	}
	if got != site.Endpoint.Addr {
		t.Fatalf("A record %v, want %v", got, site.Endpoint.Addr)
	}

	// NXDOMAIN for unknown names.
	resp, err = dnswire.Exchange(ctx, addr, dnswire.NewQuery(8, "missing.example", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v, want NXDOMAIN", resp.Header.RCode)
	}

	// PTR over the wire.
	ptrName := ""
	var ptrAddr netip.Addr
	for _, s := range estate.GovSites("JP") {
		if p := z.PTR(s.Endpoint.Addr); p != "" {
			ptrName, ptrAddr = p, s.Endpoint.Addr
			break
		}
	}
	if ptrName != "" {
		resp, err = dnswire.Exchange(ctx, addr, dnswire.NewQuery(9, ReverseName(ptrAddr), dnswire.TypePTR))
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != 1 || resp.Answers[0].Target != dnswire.CanonicalName(ptrName) {
			t.Fatalf("PTR answer = %+v, want %s", resp.Answers, ptrName)
		}
	}

	// Unsupported query types are refused gracefully.
	resp, err = dnswire.Exchange(ctx, addr, dnswire.NewQuery(10, site.Host, dnswire.TypeTXT))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNotImp {
		t.Fatalf("TXT rcode = %v, want NOTIMP", resp.Header.RCode)
	}
}

func TestZoneFileRoundTrip(t *testing.T) {
	z, estate := buildZones(t)
	var buf bytes.Buffer
	if err := z.WriteZoneFile(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ParseZoneFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every site must resolve identically through the reloaded zones.
	checked := 0
	for _, s := range estate.SiteList {
		orig, err1 := z.Resolve(s.Host)
		again, err2 := reloaded.Resolve(s.Host)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("resolution divergence for %s: %v vs %v", s.Host, err1, err2)
		}
		if err1 == nil && orig.Addr != again.Addr {
			t.Fatalf("%s resolves to %v, reloaded %v", s.Host, orig.Addr, again.Addr)
		}
		checked++
		if checked > 400 {
			break
		}
	}
	// PTR data round trips too.
	for addr, ptr := range z.ptr {
		if reloaded.PTR(addr) != ptr {
			t.Fatalf("PTR for %v lost: %q vs %q", addr, ptr, reloaded.PTR(addr))
		}
		break
	}
}

func TestParseZoneFileRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"wrong fields":  "name 300 IN A\n",
		"bad ttl":       "name.example. x IN A 1.2.3.4\n",
		"bad class":     "name.example. 300 CH A 1.2.3.4\n",
		"bad type":      "name.example. 300 IN MX mail.example.\n",
		"bad address":   "name.example. 300 IN A not-an-ip\n",
		"bad ptr owner": "name.example. 300 IN PTR target.example.\n",
	}
	for name, in := range cases {
		if _, err := ParseZoneFile(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Comments and blank lines are fine.
	z, err := ParseZoneFile(strings.NewReader("; comment\n\nx.example. 60 IN A 192.0.2.1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := z.Resolve("x.example"); err != nil || res.Addr != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("parsed zone does not resolve: %v %v", res, err)
	}
}

func TestResolveFromGeoDNS(t *testing.T) {
	z, estate := buildZones(t)
	// Find a site on a multi-DC unicast provider hosted at its default
	// (nearest) data centre.
	var site *webgen.Site
	for _, s := range estate.SiteList {
		p := s.Endpoint.Provider
		if p == nil || p.Anycast || len(p.DCs) < 3 || s.Country == "" {
			continue
		}
		if s.Endpoint.Country == z.net.NearestDC(p, s.Country) {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no GeoDNS-eligible site in sample")
	}
	p := site.Endpoint.Provider
	home, err := z.ResolveFrom(site.Country, site.Host)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.net.Host(home.Addr).Country; got != site.Endpoint.Country {
		t.Fatalf("owner-vantage replica in %s, want %s", got, site.Endpoint.Country)
	}
	// A distant vantage must be steered to a different replica when the
	// provider has a closer DC there.
	for _, vantage := range []string{"JP", "AU", "SG", "US", "DE"} {
		want := z.net.NearestDC(p, vantage)
		if want == site.Endpoint.Country {
			continue
		}
		far, err := z.ResolveFrom(vantage, site.Host)
		if err != nil {
			t.Fatal(err)
		}
		if far.Addr == home.Addr {
			t.Fatalf("vantage %s got the same replica as the owner despite DC %s being closer", vantage, want)
		}
		if got := z.net.Host(far.Addr).Country; got != want {
			t.Fatalf("vantage %s steered to %s, want %s", vantage, got, want)
		}
		return
	}
	t.Skip("provider footprint too small to diverge")
}

func TestResolveFromPlainSitesUnaffected(t *testing.T) {
	z, estate := buildZones(t)
	for _, s := range estate.GovSites("UY") {
		if s.Endpoint.Provider != nil {
			continue
		}
		a, err1 := z.Resolve(s.Host)
		b, err2 := z.ResolveFrom("JP", s.Host)
		if err1 != nil || err2 != nil || a.Addr != b.Addr {
			t.Fatalf("non-provider site resolution changed across vantages: %v/%v %v/%v", a, err1, b, err2)
		}
		return
	}
	t.Skip("no non-provider Uruguayan site")
}
