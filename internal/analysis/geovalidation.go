package analysis

import (
	"repro/internal/dataset"
	"repro/internal/probing"
)

// GeoValidation folds the dataset's geolocation verdicts into Table
// 4's unique-address accounting. A unicast verdict is a property of
// the address alone — the prober answers every vantage from one cached
// probe sequence — so an address serving several governments counts
// once, not once per country. Anycast verification is per vantage, so
// those dedupe on (country, address). Shared by the report renderer
// and the serving daemon's /api/table4 endpoint.
func GeoValidation(ds *dataset.Dataset) probing.Stats {
	var st probing.Stats
	seen := map[string]bool{}
	for i := range ds.Records {
		r := &ds.Records[i]
		key := r.IP.String()
		if r.Anycast {
			key = r.Country + "/" + key
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		v := probing.Verdict{Addr: r.IP, Anycast: r.Anycast,
			Country: r.ServeCountry, Method: probing.Method(r.GeoMethod)}
		st.Observe(v)
	}
	return st
}
