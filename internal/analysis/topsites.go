package analysis

import (
	"repro/internal/dataset"
)

// Comparison is the Figs. 3 and 7 result: government vs top-site
// hosting for the Table 6 country subset. For the top-site half,
// CatGovtSOE reads as "Self-Hosting" (Appendix D).
type Comparison struct {
	Gov      Shares
	Topsites Shares

	GovSplit SplitShares
	TopSplit SplitShares
}

// CompareTopsites computes the comparison over the countries that have
// top-site records, restricting the government side to the same
// subset so both halves describe the same population.
func CompareTopsites(ds *dataset.Dataset) Comparison {
	subset := map[string]bool{}
	for i := range ds.Topsites {
		subset[ds.Topsites[i].Country] = true
	}

	var cmp Comparison
	var govRecs, topRecs []*dataset.URLRecord
	for i := range ds.Records {
		r := &ds.Records[i]
		if subset[r.Country] {
			cmp.Gov.add(r)
			govRecs = append(govRecs, r)
		}
	}
	for i := range ds.Topsites {
		r := &ds.Topsites[i]
		cmp.Topsites.add(r)
		topRecs = append(topRecs, r)
	}
	cmp.Gov.normalize()
	cmp.Topsites.normalize()
	cmp.GovSplit = splitOf(govRecs)
	cmp.TopSplit = splitOf(topRecs)
	return cmp
}
