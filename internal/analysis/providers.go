package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/world"
)

// ProviderFootprint is one bar of Fig. 10.
type ProviderFootprint struct {
	ASN       int
	Org       string
	Countries int // number of governments relying on the network
}

// GlobalProviderFootprints computes Fig. 10: for every network
// classified 3P Global, the number of countries whose governments it
// serves, ranked descending.
func GlobalProviderFootprints(ds *dataset.Dataset) []ProviderFootprint {
	countries := map[int]map[string]bool{}
	orgs := map[int]string{}
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.Category != world.Cat3PGlobal {
			continue
		}
		if countries[r.ASN] == nil {
			countries[r.ASN] = map[string]bool{}
		}
		countries[r.ASN][r.Country] = true
		orgs[r.ASN] = r.Org
	}
	out := make([]ProviderFootprint, 0, len(countries))
	for asn, set := range countries {
		out = append(out, ProviderFootprint{ASN: asn, Org: orgs[asn], Countries: len(set)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Countries != out[j].Countries {
			return out[i].Countries > out[j].Countries
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// ProviderReliance is a §7.1 anecdote: the byte share one provider
// holds inside one country.
type ProviderReliance struct {
	Country string
	ASN     int
	Org     string
	Share   float64 // of the country's bytes
}

// TopProviderReliance returns, per country, the global provider with
// the largest byte share, ranked by that share (the Amazon-97 %,
// Cloudflare-72 % anecdotes).
func TopProviderReliance(ds *dataset.Dataset) []ProviderReliance {
	type key struct {
		country string
		asn     int
	}
	bytes := map[key]int64{}
	totals := map[string]int64{}
	orgs := map[int]string{}
	for i := range ds.Records {
		r := &ds.Records[i]
		totals[r.Country] += r.Bytes
		if r.Category != world.Cat3PGlobal {
			continue
		}
		bytes[key{r.Country, r.ASN}] += r.Bytes
		orgs[r.ASN] = r.Org
	}
	best := map[string]ProviderReliance{}
	for k, b := range bytes {
		share := float64(b) / float64(totals[k.country])
		if cur, ok := best[k.country]; !ok || share > cur.Share {
			best[k.country] = ProviderReliance{
				Country: k.country, ASN: k.asn, Org: orgs[k.asn], Share: share,
			}
		}
	}
	out := make([]ProviderReliance, 0, len(best))
	for _, v := range best {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// Diversification is one country's Fig. 11 data point.
type Diversification struct {
	Country     string
	HHIURLs     float64 // concentration of URLs across serving networks
	HHIBytes    float64
	DominantCat world.Category // predominant byte source (grouping key)
	TopNetShare float64        // byte share of the single largest network
}

// Diversify computes per-country network-concentration indexes and
// groups countries by their dominant byte category (§7.2).
func Diversify(ds *dataset.Dataset) []Diversification {
	type acc struct {
		urlsByASN  map[int]float64
		bytesByASN map[int]float64
		shares     Shares
	}
	perCountry := map[string]*acc{}
	for i := range ds.Records {
		r := &ds.Records[i]
		a := perCountry[r.Country]
		if a == nil {
			a = &acc{urlsByASN: map[int]float64{}, bytesByASN: map[int]float64{}}
			perCountry[r.Country] = a
		}
		a.urlsByASN[r.ASN]++
		a.bytesByASN[r.ASN] += float64(r.Bytes)
		a.shares.add(r)
	}
	codes := make([]string, 0, len(perCountry))
	for c := range perCountry {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	out := make([]Diversification, 0, len(codes))
	for _, c := range codes {
		a := perCountry[c]
		a.shares.normalize()
		urls := mapValues(a.urlsByASN)
		bytes := mapValues(a.bytesByASN)
		var topShare float64
		var byteTotal float64
		for _, b := range bytes {
			byteTotal += b
		}
		for _, b := range bytes {
			if s := b / byteTotal; s > topShare {
				topShare = s
			}
		}
		out = append(out, Diversification{
			Country:     c,
			HHIURLs:     stats.HHI(urls),
			HHIBytes:    stats.HHI(bytes),
			DominantCat: a.shares.Bytes.Dominant(),
			TopNetShare: topShare,
		})
	}
	return out
}

// SingleNetworkShare returns, for each dominant category, the fraction
// of its countries that serve over half their bytes from one network
// (the §7.2 key finding: 63 % of Govt&SOE countries vs 32 % of 3P
// Global countries).
func SingleNetworkShare(divs []Diversification) map[world.Category]float64 {
	total := map[world.Category]int{}
	single := map[world.Category]int{}
	for _, d := range divs {
		total[d.DominantCat]++
		if d.TopNetShare > 0.5 {
			single[d.DominantCat]++
		}
	}
	out := map[world.Category]float64{}
	for cat, n := range total {
		out[cat] = float64(single[cat]) / float64(n)
	}
	return out
}

// HHIByGroup collects the Fig. 11 distributions: HHI values grouped by
// dominant category, separately for URL and byte concentration.
func HHIByGroup(divs []Diversification) (urls, bytes map[world.Category][]float64) {
	urls = map[world.Category][]float64{}
	bytes = map[world.Category][]float64{}
	for _, d := range divs {
		urls[d.DominantCat] = append(urls[d.DominantCat], d.HHIURLs)
		bytes[d.DominantCat] = append(bytes[d.DominantCat], d.HHIBytes)
	}
	return urls, bytes
}

// mapValues returns m's values in ascending order. Sorting matters:
// the slices feed float accumulations (HHI sums), and summing in Go's
// randomized map order would make the low bits of the result vary from
// run to run.
func mapValues(m map[int]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
