package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/world"
)

// Index is every per-record aggregate the figures and tables consume,
// built in one forward scan of the dataset. The package-level
// functions each rescan ds.Records; a report renders a dozen figures
// over one study, so the scans dominated figure time. The index folds
// all of them into a single pass and answers each query from the
// aggregates in O(countries) or O(edges).
//
// Equivalence is exact, not approximate: every float accumulation in
// the index (category byte shares, per-ASN byte totals) is a sum of
// integer-valued terms — URL counts increment by one, byte totals add
// int64 payload sizes — far below 2⁵³, so float addition is exact and
// order-independent. The scan can therefore run sequentially or
// partitioned across workers (BuildIndexWorkers) and every aggregate,
// and every figure rendered from it, stays byte-identical. The
// integer aggregates (split counts, flow edges, provider footprints)
// are order-independent sums outright. IndexEquivalence tests pin
// each query to its package-level counterpart, and the worker-sweep
// test pins the parallel build to the sequential one.
type Index struct {
	global   Shares
	byRegion map[world.Region]Shares
	byCountry map[string]Shares

	globalSplit splitCounts
	regionSplit map[world.Region]splitCounts

	// regPairs and locPairs count records per (source country,
	// destination country) for records with a known destination —
	// including domestic pairs, which the flow queries need for
	// per-source totals and GDPR accounting.
	regPairs map[[2]string]int
	locPairs map[[2]string]int

	// countryRegion is each source country's region as recorded on its
	// rows (records of one country all carry that country's region).
	countryRegion map[string]world.Region

	providerCountries map[int]map[string]bool
	providerOrgs      map[int]string

	diversify map[string]*divAcc

	// Figs. 3/7: government shares restricted to the topsite-country
	// subset, plus the topsite records themselves.
	subsetGov   Shares
	topsites    Shares
	subsetSplit splitCounts
	topSplit    splitCounts
}

// splitCounts is the integer half of a SplitShares: domestic and known
// counts for the registration and location rows.
type splitCounts struct {
	nReg, regDom int
	nGeo, geoDom int
}

func (c *splitCounts) add(r *dataset.URLRecord) {
	if r.RegCountry != "" {
		c.nReg++
		if r.RegDomestic() {
			c.regDom++
		}
	}
	if r.ServeCountry != "" {
		c.nGeo++
		if r.Domestic() {
			c.geoDom++
		}
	}
}

func (c *splitCounts) merge(o splitCounts) {
	c.nReg += o.nReg
	c.regDom += o.regDom
	c.nGeo += o.nGeo
	c.geoDom += o.geoDom
}

func (c splitCounts) shares() SplitShares {
	s := SplitShares{NReg: c.nReg, NGeo: c.nGeo}
	if c.nReg > 0 {
		s.RegDomestic = float64(c.regDom) / float64(c.nReg)
	}
	if c.nGeo > 0 {
		s.GeoDomestic = float64(c.geoDom) / float64(c.nGeo)
	}
	return s
}

// divAcc is one country's Fig. 11 accumulator.
type divAcc struct {
	urlsByASN  map[int]float64
	bytesByASN map[int]float64
	shares     Shares
}

// BuildIndex aggregates the dataset in a single scan of ds.Topsites
// (to learn the comparison subset) and one scan of ds.Records.
func BuildIndex(ds *dataset.Dataset) *Index {
	return BuildIndexWorkers(ds, 1)
}

// BuildIndexWorkers builds the same Index with the record scan
// partitioned across workers goroutines on sched.Workers. Each worker
// folds a contiguous chunk of ds.Records — cut only at country
// boundaries, so one country's rows stay together when the dataset is
// grouped (the deterministic merge sink emits it that way) — into a
// private partial Index, and the partials merge left-to-right in
// record order. The result is byte-identical to the sequential scan
// at any worker count: every float accumulator is a sum of
// integer-valued terms, so the merge's reassociation cannot change a
// bit (see the type comment), and the one last-wins aggregate
// (provider org names) merges in chunk order, which is scan order.
// workers <= 1 scans inline.
func BuildIndexWorkers(ds *dataset.Dataset, workers int) *Index {
	ix := newIndex()
	subset := map[string]bool{}
	for i := range ds.Topsites {
		r := &ds.Topsites[i]
		subset[r.Country] = true
		ix.topsites.add(r)
		ix.topSplit.add(r)
	}

	bounds := chunkBounds(ds.Records, workers)
	if len(bounds) <= 1 {
		ix.scan(ds.Records, subset)
		return ix
	}
	parts := make([]*Index, len(bounds))
	wait := sched.Workers(len(bounds), func(w int) {
		p := newIndex()
		p.scan(ds.Records[bounds[w][0]:bounds[w][1]], subset)
		parts[w] = p
	})
	wait()
	for _, p := range parts {
		ix.mergeFrom(p)
	}
	return ix
}

func newIndex() *Index {
	return &Index{
		byRegion:          map[world.Region]Shares{},
		byCountry:         map[string]Shares{},
		regionSplit:       map[world.Region]splitCounts{},
		regPairs:          map[[2]string]int{},
		locPairs:          map[[2]string]int{},
		countryRegion:     map[string]world.Region{},
		providerCountries: map[int]map[string]bool{},
		providerOrgs:      map[int]string{},
		diversify:         map[string]*divAcc{},
	}
}

// chunkBounds cuts recs into at most n contiguous [lo, hi) chunks,
// advancing each cut to the next country boundary so a grouped
// country's rows never straddle two workers. Fewer chunks come back
// when the groups are coarse relative to n.
func chunkBounds(recs []dataset.URLRecord, n int) [][2]int {
	if n < 1 {
		n = 1
	}
	var bounds [][2]int
	total := len(recs)
	lo := 0
	for w := 1; w <= n && lo < total; w++ {
		hi := w * total / n
		if w == n {
			hi = total
		}
		if hi <= lo {
			continue
		}
		for hi < total && recs[hi].Country == recs[hi-1].Country {
			hi++
		}
		bounds = append(bounds, [2]int{lo, hi})
		lo = hi
	}
	return bounds
}

// scan folds a contiguous run of records into the index. subset is
// the topsite-country set, shared read-only across workers.
func (ix *Index) scan(recs []dataset.URLRecord, subset map[string]bool) {
	for i := range recs {
		r := &recs[i]

		ix.global.add(r)
		ix.globalSplit.add(r)

		rs := ix.byRegion[r.Region]
		rs.add(r)
		ix.byRegion[r.Region] = rs
		rsp := ix.regionSplit[r.Region]
		rsp.add(r)
		ix.regionSplit[r.Region] = rsp

		cs := ix.byCountry[r.Country]
		cs.add(r)
		ix.byCountry[r.Country] = cs
		ix.countryRegion[r.Country] = r.Region

		if r.RegCountry != "" {
			ix.regPairs[[2]string{r.Country, r.RegCountry}]++
		}
		if r.ServeCountry != "" {
			ix.locPairs[[2]string{r.Country, r.ServeCountry}]++
		}

		if r.Category == world.Cat3PGlobal {
			if ix.providerCountries[r.ASN] == nil {
				ix.providerCountries[r.ASN] = map[string]bool{}
			}
			ix.providerCountries[r.ASN][r.Country] = true
			ix.providerOrgs[r.ASN] = r.Org
		}

		a := ix.diversify[r.Country]
		if a == nil {
			a = &divAcc{urlsByASN: map[int]float64{}, bytesByASN: map[int]float64{}}
			ix.diversify[r.Country] = a
		}
		a.urlsByASN[r.ASN]++
		a.bytesByASN[r.ASN] += float64(r.Bytes)
		a.shares.add(r)

		if subset[r.Country] {
			ix.subsetGov.add(r)
			ix.subsetSplit.add(r)
		}
	}
}

// mergeFrom folds a partial index built from a later chunk of the
// record scan into ix. Every aggregate is an order-independent sum
// (the float ones are integer-valued, so addition is exact), except
// providerOrgs, which is last-wins: callers must merge partials in
// record order. The topsite aggregates are never populated in
// partials — the topsites scan runs once up front.
func (ix *Index) mergeFrom(p *Index) {
	ix.global.merge(p.global)
	ix.globalSplit.merge(p.globalSplit)
	for reg, s := range p.byRegion {
		acc := ix.byRegion[reg]
		acc.merge(s)
		ix.byRegion[reg] = acc
	}
	for reg, c := range p.regionSplit {
		acc := ix.regionSplit[reg]
		acc.merge(c)
		ix.regionSplit[reg] = acc
	}
	for c, s := range p.byCountry {
		acc := ix.byCountry[c]
		acc.merge(s)
		ix.byCountry[c] = acc
	}
	for c, reg := range p.countryRegion {
		ix.countryRegion[c] = reg
	}
	for k, n := range p.regPairs {
		ix.regPairs[k] += n
	}
	for k, n := range p.locPairs {
		ix.locPairs[k] += n
	}
	for asn, set := range p.providerCountries {
		dst := ix.providerCountries[asn]
		if dst == nil {
			ix.providerCountries[asn] = set
			continue
		}
		for c := range set {
			dst[c] = true
		}
	}
	for asn, org := range p.providerOrgs {
		ix.providerOrgs[asn] = org
	}
	for c, pa := range p.diversify {
		a := ix.diversify[c]
		if a == nil {
			ix.diversify[c] = pa
			continue
		}
		for asn, v := range pa.urlsByASN {
			a.urlsByASN[asn] += v
		}
		for asn, v := range pa.bytesByASN {
			a.bytesByASN[asn] += v
		}
		a.shares.merge(pa.shares)
	}
	ix.subsetGov.merge(p.subsetGov)
	ix.subsetSplit.merge(p.subsetSplit)
}

// pairs selects the flow-edge map for a kind.
func (ix *Index) pairs(kind FlowKind) map[[2]string]int {
	if kind == FlowLocation {
		return ix.locPairs
	}
	return ix.regPairs
}

// GlobalShares answers Fig. 2.
func (ix *Index) GlobalShares() Shares {
	s := ix.global
	s.normalize()
	return s
}

// RegionalShares answers Fig. 4.
func (ix *Index) RegionalShares() map[world.Region]Shares {
	out := make(map[world.Region]Shares, len(ix.byRegion))
	for reg, s := range ix.byRegion {
		s.normalize()
		out[reg] = s
	}
	return out
}

// CountryShares answers the Fig. 5 input vectors.
func (ix *Index) CountryShares() map[string]Shares {
	out := make(map[string]Shares, len(ix.byCountry))
	for c, s := range ix.byCountry {
		s.normalize()
		out[c] = s
	}
	return out
}

// MajorityMap answers Fig. 1.
func (ix *Index) MajorityMap() []MajorityEntry {
	codes := make([]string, 0, len(ix.byCountry))
	for c := range ix.byCountry {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	out := make([]MajorityEntry, 0, len(codes))
	for _, c := range codes {
		s := ix.byCountry[c]
		s.normalize()
		gov := s.Bytes[world.CatGovtSOE]
		out = append(out, MajorityEntry{Country: c, ThirdPty: gov < 0.5, GovShare: gov})
	}
	return out
}

// DomesticIntl answers Fig. 6.
func (ix *Index) DomesticIntl() SplitShares {
	return ix.globalSplit.shares()
}

// RegionalDomesticIntl answers Fig. 8.
func (ix *Index) RegionalDomesticIntl() map[world.Region]SplitShares {
	out := make(map[world.Region]SplitShares, len(ix.regionSplit))
	for reg, c := range ix.regionSplit {
		out[reg] = c.shares()
	}
	return out
}

// CrossBorderFlows answers Fig. 9. Per-source totals count every
// record with a known destination (domestic included), exactly as the
// record-scanning version does.
func (ix *Index) CrossBorderFlows(kind FlowKind) []Flow {
	pairs := ix.pairs(kind)
	perSrc := map[string]int{}
	for k, n := range pairs {
		perSrc[k[0]] += n
	}
	var out []Flow
	for k, n := range pairs {
		if k[1] == k[0] {
			continue
		}
		out = append(out, Flow{
			Src: k[0], Dst: k[1], URLs: n,
			Share: float64(n) / float64(perSrc[k[0]]),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].URLs != out[j].URLs {
			return out[i].URLs > out[j].URLs
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// InRegionShare answers Table 5.
func (ix *Index) InRegionShare(w *world.Model) map[world.Region]float64 {
	total := map[world.Region]int{}
	inRegion := map[world.Region]int{}
	for k, n := range ix.locPairs {
		if k[1] == k[0] {
			continue
		}
		src := w.Country(k[0])
		dst := w.Country(k[1])
		if src == nil || dst == nil {
			continue
		}
		total[src.Region] += n
		if src.Region == dst.Region {
			inRegion[src.Region] += n
		}
	}
	out := map[world.Region]float64{}
	for reg, n := range total {
		out[reg] = float64(inRegion[reg]) / float64(n)
	}
	return out
}

// RegionalAffinity answers the §6.3 in-region host shares.
func (ix *Index) RegionalAffinity(w *world.Model) map[world.Region]map[string]float64 {
	counts := map[world.Region]map[string]int{}
	totals := map[world.Region]int{}
	for k, n := range ix.locPairs {
		if k[1] == k[0] {
			continue
		}
		src := w.Country(k[0])
		dst := w.Country(k[1])
		if src == nil || dst == nil || src.Region != dst.Region {
			continue
		}
		if counts[src.Region] == nil {
			counts[src.Region] = map[string]int{}
		}
		counts[src.Region][k[1]] += n
		totals[src.Region] += n
	}
	out := map[world.Region]map[string]float64{}
	for reg, m := range counts {
		out[reg] = map[string]float64{}
		for dst, n := range m {
			out[reg][dst] = float64(n) / float64(totals[reg])
		}
	}
	return out
}

// GDPRCompliance answers the §6.3 EU finding.
func (ix *Index) GDPRCompliance(w *world.Model) (compliant, total int) {
	for k, n := range ix.locPairs {
		src := w.Country(k[0])
		if src == nil || !src.EU {
			continue
		}
		total += n
		dst := w.Country(k[1])
		if dst != nil && dst.EU {
			compliant += n
		}
	}
	return compliant, total
}

// RegionFlowMatrix answers the Fig. 9 region-to-region aggregation.
func (ix *Index) RegionFlowMatrix(w *world.Model, kind FlowKind) map[world.Region]map[world.Region]int {
	out := map[world.Region]map[world.Region]int{}
	for k, n := range ix.pairs(kind) {
		if k[1] == k[0] {
			continue
		}
		dst := w.Country(k[1])
		if dst == nil {
			continue
		}
		srcReg := ix.countryRegion[k[0]]
		if out[srcReg] == nil {
			out[srcReg] = map[world.Region]int{}
		}
		out[srcReg][dst.Region] += n
	}
	return out
}

// AbroadInNAWE answers the §6.3 57 % finding.
func (ix *Index) AbroadInNAWE() float64 {
	total, nawe := 0, 0
	for k, n := range ix.locPairs {
		if k[1] == k[0] {
			continue
		}
		total += n
		if westernNAWE[k[1]] {
			nawe += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(nawe) / float64(total)
}

// GlobalProviderFootprints answers Fig. 10.
func (ix *Index) GlobalProviderFootprints() []ProviderFootprint {
	out := make([]ProviderFootprint, 0, len(ix.providerCountries))
	for asn, set := range ix.providerCountries {
		out = append(out, ProviderFootprint{ASN: asn, Org: ix.providerOrgs[asn], Countries: len(set)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Countries != out[j].Countries {
			return out[i].Countries > out[j].Countries
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// Diversify answers Fig. 11.
func (ix *Index) Diversify() []Diversification {
	codes := make([]string, 0, len(ix.diversify))
	for c := range ix.diversify {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	out := make([]Diversification, 0, len(codes))
	for _, c := range codes {
		a := ix.diversify[c]
		shares := a.shares
		shares.normalize()
		urls := mapValues(a.urlsByASN)
		bytes := mapValues(a.bytesByASN)
		var topShare float64
		var byteTotal float64
		for _, b := range bytes {
			byteTotal += b
		}
		for _, b := range bytes {
			if s := b / byteTotal; s > topShare {
				topShare = s
			}
		}
		out = append(out, Diversification{
			Country:     c,
			HHIURLs:     stats.HHI(urls),
			HHIBytes:    stats.HHI(bytes),
			DominantCat: shares.Bytes.Dominant(),
			TopNetShare: topShare,
		})
	}
	return out
}

// CompareTopsites answers Figs. 3 and 7.
func (ix *Index) CompareTopsites() Comparison {
	cmp := Comparison{Gov: ix.subsetGov, Topsites: ix.topsites}
	cmp.Gov.normalize()
	cmp.Topsites.normalize()
	cmp.GovSplit = ix.subsetSplit.shares()
	cmp.TopSplit = ix.topSplit.shares()
	return cmp
}

// westernNAWE is the AbroadInNAWE destination set (North America and
// Western Europe), shared with the record-scanning version.
var westernNAWE = map[string]bool{
	"US": true, "CA": true, "DE": true, "FR": true, "GB": true, "NL": true,
	"IE": true, "BE": true, "CH": true, "AT": true, "LU": true, "ES": true,
	"IT": true, "PT": true, "DK": true, "NO": true, "SE": true, "FI": true,
}
