package analysis

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/world"
)

// SignatureKind selects which Fig. 5 dendrogram to build.
type SignatureKind int

// The two Fig. 5 panels.
const (
	SignatureURLs SignatureKind = iota
	SignatureBytes
)

// ClusterCountries builds the §5.3 dendrogram: every country becomes a
// four-dimensional hosting signature (its category shares, straight
// from the index — no dataset rescan) and the countries are clustered
// with Ward-linkage HCA.
func ClusterCountries(ix *Index, kind SignatureKind) (*cluster.Node, error) {
	shares := ix.CountryShares()
	codes := make([]string, 0, len(shares))
	for c := range shares {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	points := make([][]float64, 0, len(codes))
	for _, c := range codes {
		var sig world.Mix
		if kind == SignatureURLs {
			sig = shares[c].URLs
		} else {
			sig = shares[c].Bytes
		}
		points = append(points, []float64{
			sig[world.CatGovtSOE], sig[world.Cat3PLocal],
			sig[world.Cat3PGlobal], sig[world.Cat3PRegional],
		})
	}
	return cluster.Ward(codes, points)
}

// BranchAssignment maps every country to the dominant category of the
// three-branch cut of its dendrogram, validating the Fig. 5 reading
// that each main branch corresponds to a principal hosting source.
func BranchAssignment(ix *Index, kind SignatureKind) (map[string]world.Category, error) {
	root, err := ClusterCountries(ix, kind)
	if err != nil {
		return nil, err
	}
	branches := cluster.Cut(root, 3)
	shares := ix.CountryShares()
	out := map[string]world.Category{}
	for _, branch := range branches {
		// The branch's identity is the category that dominates most of
		// its members.
		votes := map[world.Category]int{}
		for _, c := range branch {
			var sig world.Mix
			if kind == SignatureURLs {
				sig = shares[c].URLs
			} else {
				sig = shares[c].Bytes
			}
			votes[sig.Dominant()]++
		}
		var best world.Category
		bestN := -1
		for _, cat := range world.Categories {
			if votes[cat] > bestN {
				best, bestN = cat, votes[cat]
			}
		}
		for _, c := range branch {
			out[c] = best
		}
	}
	return out, nil
}
