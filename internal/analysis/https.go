package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/world"
)

// HTTPSAdoption summarises certificate validity across hostnames —
// the extension reproducing Singanamalla et al.'s headline (over 70 %
// of global government sites lack valid HTTPS) over this dataset.
type HTTPSAdoption struct {
	GlobalValid float64                  // share of government hostnames with valid HTTPS
	ByRegion    map[world.Region]float64 // per-region valid share
	ByCountry   map[string]float64
	Hostnames   int
}

// HTTPSValidity computes per-hostname certificate-validity shares
// (URL-level duplication would overweight big portals, so hostnames
// are the unit, as in Singanamalla et al.).
func HTTPSValidity(ds *dataset.Dataset) HTTPSAdoption {
	type key struct{ host, country string }
	valid := map[key]bool{}
	for i := range ds.Records {
		r := &ds.Records[i]
		valid[key{r.Host, r.Country}] = r.HTTPSValid
	}
	out := HTTPSAdoption{
		ByRegion:  map[world.Region]float64{},
		ByCountry: map[string]float64{},
	}
	regionTotal := map[world.Region]int{}
	regionValid := map[world.Region]int{}
	countryTotal := map[string]int{}
	countryValid := map[string]int{}
	regionOf := map[string]world.Region{}
	for i := range ds.Records {
		regionOf[ds.Records[i].Country] = ds.Records[i].Region
	}
	nValid := 0
	for k, v := range valid {
		out.Hostnames++
		countryTotal[k.country]++
		reg := regionOf[k.country]
		regionTotal[reg]++
		if v {
			nValid++
			countryValid[k.country]++
			regionValid[reg]++
		}
	}
	if out.Hostnames > 0 {
		out.GlobalValid = float64(nValid) / float64(out.Hostnames)
	}
	for reg, n := range regionTotal {
		out.ByRegion[reg] = float64(regionValid[reg]) / float64(n)
	}
	for c, n := range countryTotal {
		out.ByCountry[c] = float64(countryValid[c]) / float64(n)
	}
	return out
}

// TopValidityCountries returns country codes ranked by valid-HTTPS
// share, descending (ties broken alphabetically).
func (h HTTPSAdoption) TopValidityCountries(n int) []string {
	codes := make([]string, 0, len(h.ByCountry))
	for c := range h.ByCountry {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool {
		if h.ByCountry[codes[i]] != h.ByCountry[codes[j]] {
			return h.ByCountry[codes[i]] > h.ByCountry[codes[j]]
		}
		return codes[i] < codes[j]
	})
	if n < len(codes) {
		codes = codes[:n]
	}
	return codes
}
