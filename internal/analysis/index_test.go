package analysis

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/world"
)

// indexDataset is tinyDataset widened with topsites, an unresolved
// destination, and an in-region cross-border edge so every index query
// exercises a non-trivial path.
func indexDataset() *dataset.Dataset {
	ds := tinyDataset()
	top := rec("DE", world.ECA, world.CatGovtSOE, 100, 99, "US", "US")
	top.TopsiteSelf = true
	ds.Topsites = append(ds.Topsites, top)
	ds.Topsites = append(ds.Topsites, rec("DE", world.ECA, world.Cat3PGlobal, 300, 13335, "US", "US"))
	// UY → BR: an in-region (LAC) location dependency.
	ds.Records = append(ds.Records, rec("UY", world.LAC, world.Cat3PLocal, 150, 2, "BR", "BR"))
	// A record with no validated location and no registration country.
	ds.Records = append(ds.Records, rec("DE", world.ECA, world.CatGovtSOE, 50, 3, "", ""))
	return ds
}

// TestIndexEquivalence pins every Index query to the record-scanning
// function it replaces: the memoized report path must agree exactly —
// floats included — on the same dataset.
func TestIndexEquivalence(t *testing.T) {
	ds := indexDataset()
	w := world.New()
	ix := BuildIndex(ds)

	check := func(name string, got, want any) {
		t.Helper()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: index disagrees with scan\n got: %#v\nwant: %#v", name, got, want)
		}
	}

	check("GlobalShares", ix.GlobalShares(), GlobalShares(ds))
	check("RegionalShares", ix.RegionalShares(), RegionalShares(ds))
	check("CountryShares", ix.CountryShares(), CountryShares(ds))
	check("MajorityMap", ix.MajorityMap(), MajorityMap(ds))
	check("DomesticIntl", ix.DomesticIntl(), DomesticIntl(ds))
	check("RegionalDomesticIntl", ix.RegionalDomesticIntl(), RegionalDomesticIntl(ds))
	check("CrossBorderFlows/reg", ix.CrossBorderFlows(FlowRegistration), CrossBorderFlows(ds, FlowRegistration))
	check("CrossBorderFlows/loc", ix.CrossBorderFlows(FlowLocation), CrossBorderFlows(ds, FlowLocation))
	check("InRegionShare", ix.InRegionShare(w), InRegionShare(ds, w))
	check("RegionalAffinity", ix.RegionalAffinity(w), RegionalAffinity(ds, w))
	ic, it := ix.GDPRCompliance(w)
	sc, st := GDPRCompliance(ds, w)
	if ic != sc || it != st {
		t.Errorf("GDPRCompliance: index %d/%d, scan %d/%d", ic, it, sc, st)
	}
	check("RegionFlowMatrix/reg", ix.RegionFlowMatrix(w, FlowRegistration), RegionFlowMatrix(ds, w, FlowRegistration))
	check("RegionFlowMatrix/loc", ix.RegionFlowMatrix(w, FlowLocation), RegionFlowMatrix(ds, w, FlowLocation))
	check("AbroadInNAWE", ix.AbroadInNAWE(), AbroadInNAWE(ds, w))
	check("GlobalProviderFootprints", ix.GlobalProviderFootprints(), GlobalProviderFootprints(ds))
	check("Diversify", ix.Diversify(), Diversify(ds))
	check("CompareTopsites", ix.CompareTopsites(), CompareTopsites(ds))
}

// TestIndexQueriesAreRepeatable guards the memoization contract: query
// methods must not mutate index state, so a second call returns the
// same answer.
func TestIndexQueriesAreRepeatable(t *testing.T) {
	ds := indexDataset()
	ix := BuildIndex(ds)
	first := ix.Diversify()
	ix.GlobalShares()
	ix.MajorityMap()
	ix.CompareTopsites()
	if got := ix.Diversify(); !reflect.DeepEqual(got, first) {
		t.Fatal("Diversify changed between calls on the same index")
	}
}
