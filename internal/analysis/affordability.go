package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/world"
)

// PageWeight is one country's landing-page weight statistics — the
// Habib et al. affordability extension (§9: public service websites
// in developing countries ship heavy pages that are expensive on
// metered connections).
type PageWeight struct {
	Country     string
	HDI         float64
	MedianBytes float64 // median landing-page size
	N           int
}

// AffordabilityResult bundles the per-country weights with the
// correlation between development and page weight.
type AffordabilityResult struct {
	PerCountry []PageWeight
	// PearsonHDI is the correlation between HDI and median landing
	// size; Habib et al.'s finding predicts it is negative.
	PearsonHDI  float64
	SpearmanHDI float64
}

// Affordability computes landing-page weight per country (depth-0
// records only, one value per landing URL).
func Affordability(ds *dataset.Dataset, w *world.Model) AffordabilityResult {
	sizes := map[string][]float64{}
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.Depth != 0 {
			continue
		}
		sizes[r.Country] = append(sizes[r.Country], float64(r.Bytes))
	}
	var res AffordabilityResult
	var hdis, medians []float64
	codes := make([]string, 0, len(sizes))
	for c := range sizes {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, code := range codes {
		c := w.Country(code)
		if c == nil || c.HDI == 0 {
			continue
		}
		med := stats.Quantile(sizes[code], 0.5)
		res.PerCountry = append(res.PerCountry, PageWeight{
			Country: code, HDI: c.HDI, MedianBytes: med, N: len(sizes[code]),
		})
		hdis = append(hdis, c.HDI)
		medians = append(medians, med)
	}
	res.PearsonHDI = stats.Pearson(hdis, medians)
	res.SpearmanHDI = stats.Spearman(hdis, medians)
	return res
}
