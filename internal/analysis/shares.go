// Package analysis computes every result the paper reports from the
// annotated dataset: global/regional/per-country category shares
// (Figs. 1, 2, 4), the government-vs-topsites comparison (Figs. 3, 7),
// country-strategy clustering (Fig. 5), domestic/international splits
// (Figs. 6, 8), cross-border dependency flows and regional affinity
// (Fig. 9, Table 5), global-provider footprints (Fig. 10), HHI
// diversification (Fig. 11), and the explanatory OLS model
// (Fig. 12, Table 7).
package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/world"
)

// Shares holds URL- and byte-weighted category shares.
type Shares struct {
	URLs  world.Mix
	Bytes world.Mix
	NURL  int
	NByte int64
}

// add folds one record in.
func (s *Shares) add(r *dataset.URLRecord) {
	s.URLs[r.Category]++
	s.Bytes[r.Category] += float64(r.Bytes)
	s.NURL++
	s.NByte += r.Bytes
}

// merge folds another accumulator in. All four fields are sums of
// integer-valued terms, so merging partials is exact — the parallel
// index build relies on this.
func (s *Shares) merge(o Shares) {
	for i := range s.URLs {
		s.URLs[i] += o.URLs[i]
		s.Bytes[i] += o.Bytes[i]
	}
	s.NURL += o.NURL
	s.NByte += o.NByte
}

// normalize converts counts to fractions.
func (s *Shares) normalize() {
	s.URLs = s.URLs.Normalize()
	s.Bytes = s.Bytes.Normalize()
}

// GlobalShares computes Fig. 2: the global fraction of URLs and bytes
// served by each provider category.
func GlobalShares(ds *dataset.Dataset) Shares {
	var s Shares
	for i := range ds.Records {
		s.add(&ds.Records[i])
	}
	s.normalize()
	return s
}

// RegionalShares computes Fig. 4: per-region category shares.
func RegionalShares(ds *dataset.Dataset) map[world.Region]Shares {
	out := map[world.Region]Shares{}
	for i := range ds.Records {
		r := &ds.Records[i]
		s := out[r.Region]
		s.add(r)
		out[r.Region] = s
	}
	for k, s := range out {
		s.normalize()
		out[k] = s
	}
	return out
}

// CountryShares computes each country's hosting signature — the
// Fig. 5 input vectors.
func CountryShares(ds *dataset.Dataset) map[string]Shares {
	out := map[string]Shares{}
	for i := range ds.Records {
		r := &ds.Records[i]
		s := out[r.Country]
		s.add(r)
		out[r.Country] = s
	}
	for k, s := range out {
		s.normalize()
		out[k] = s
	}
	return out
}

// MajorityEntry is one country of the Fig. 1 map.
type MajorityEntry struct {
	Country  string
	ThirdPty bool // majority of bytes from third parties (brown); else Govt&SOE (purple)
	GovShare float64
}

// MajorityMap computes Fig. 1: whether each country's bytes are
// majority-served by third parties or by government/SOE networks.
func MajorityMap(ds *dataset.Dataset) []MajorityEntry {
	shares := CountryShares(ds)
	codes := make([]string, 0, len(shares))
	for c := range shares {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	out := make([]MajorityEntry, 0, len(codes))
	for _, c := range codes {
		gov := shares[c].Bytes[world.CatGovtSOE]
		out = append(out, MajorityEntry{
			Country:  c,
			ThirdPty: gov < 0.5,
			GovShare: gov,
		})
	}
	return out
}

// SplitShares holds a domestic/international pair for registration and
// server location (Figs. 6–8).
type SplitShares struct {
	RegDomestic float64 // WHOIS row
	GeoDomestic float64 // geolocation row, over URLs with a validated location
	NReg, NGeo  int
}

// DomesticIntl computes Fig. 6 over the whole dataset.
func DomesticIntl(ds *dataset.Dataset) SplitShares {
	return splitOf(recordsOf(ds))
}

// RegionalDomesticIntl computes Fig. 8 per region.
func RegionalDomesticIntl(ds *dataset.Dataset) map[world.Region]SplitShares {
	byRegion := map[world.Region][]*dataset.URLRecord{}
	for i := range ds.Records {
		r := &ds.Records[i]
		byRegion[r.Region] = append(byRegion[r.Region], r)
	}
	out := map[world.Region]SplitShares{}
	for reg, recs := range byRegion {
		out[reg] = splitOf(recs)
	}
	return out
}

func recordsOf(ds *dataset.Dataset) []*dataset.URLRecord {
	out := make([]*dataset.URLRecord, len(ds.Records))
	for i := range ds.Records {
		out[i] = &ds.Records[i]
	}
	return out
}

func splitOf(recs []*dataset.URLRecord) SplitShares {
	var s SplitShares
	var regDom, geoDom int
	for _, r := range recs {
		if r.RegCountry != "" {
			s.NReg++
			if r.RegDomestic() {
				regDom++
			}
		}
		if r.ServeCountry != "" {
			s.NGeo++
			if r.Domestic() {
				geoDom++
			}
		}
	}
	if s.NReg > 0 {
		s.RegDomestic = float64(regDom) / float64(s.NReg)
	}
	if s.NGeo > 0 {
		s.GeoDomestic = float64(geoDom) / float64(s.NGeo)
	}
	return s
}
