package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/world"
)

// ExplanatoryResult bundles the Appendix E artefacts: the OLS fit of
// Fig. 12 and the VIF table (Table 7).
type ExplanatoryResult struct {
	OLS       *stats.OLSResult
	VIF       map[string]float64
	Countries []string
	Outcome   []float64 // standardized share of URLs served abroad
}

// featureNames follows Table 7's row order.
var featureNames = []string{"internet_users", "HDI", "IDI", "NRI", "GDP", "econ_freedom"}

// ExplainForeignHosting fits the Appendix E regression: the share of a
// country's government URLs served from abroad against standardized
// development covariates. The per-country outcome counts come from
// the index's location-flow edges instead of a dataset rescan: a
// record contributes to locPairs exactly when it has a serving
// location, and it is abroad exactly when the destination differs
// from the source, so the integer counts — and the outcome shares
// computed from them — are bit-identical to the record scan's.
func ExplainForeignHosting(ix *Index, w *world.Model) (*ExplanatoryResult, error) {
	type row struct {
		code    string
		outcome float64
		feats   [6]float64
	}
	perCountry := map[string]*[2]int{} // [abroad, total-with-location]
	for k, n := range ix.locPairs {
		c := perCountry[k[0]]
		if c == nil {
			c = &[2]int{}
			perCountry[k[0]] = c
		}
		c[1] += n
		if k[1] != k[0] {
			c[0] += n
		}
	}
	var rows []row
	for code, c := range perCountry {
		country := w.Country(code)
		if country == nil || c[1] == 0 {
			continue
		}
		// Internet users and GDP are standardized on a log scale: the
		// synthetic panel reproduces only 61 countries, and on raw
		// scale two population outliers would absorb the entire users
		// axis (the paper's full-size panel is less degenerate).
		rows = append(rows, row{
			code:    code,
			outcome: float64(c[0]) / float64(c[1]) * 100,
			feats: [6]float64{
				math.Log1p(country.UsersMillion), country.HDI, country.IDI,
				country.NRI, math.Log(country.GDPpc), country.EFI,
			},
		})
	}
	if len(rows) < len(featureNames)+2 {
		return nil, fmt.Errorf("analysis: only %d countries with outcomes; need more observations", len(rows))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].code < rows[j].code })

	// Standardize every variable (Appendix E: mean 0, sd 1).
	n := len(rows)
	cols := make([][]float64, len(featureNames))
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	y := make([]float64, n)
	codes := make([]string, n)
	for i, r := range rows {
		codes[i] = r.code
		y[i] = r.outcome
		for j := range featureNames {
			cols[j][i] = r.feats[j]
		}
	}
	y = stats.Standardize(y)
	X := stats.NewMatrix(n, len(featureNames))
	for j := range cols {
		std := stats.Standardize(cols[j])
		for i := 0; i < n; i++ {
			X.Set(i, j, std[i])
		}
	}

	ols, err := stats.OLS(y, X, featureNames)
	if err != nil {
		return nil, err
	}
	vifs, err := stats.VIF(X)
	if err != nil {
		return nil, err
	}
	vifMap := map[string]float64{}
	for j, name := range featureNames {
		vifMap[name] = vifs[j]
	}
	return &ExplanatoryResult{OLS: ols, VIF: vifMap, Countries: codes, Outcome: y}, nil
}
