package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/world"
)

// Flow is one cross-border dependency edge: the fraction of the source
// government's URLs that depend on the destination country.
type Flow struct {
	Src, Dst string
	URLs     int
	Share    float64 // of the source country's URLs
}

// FlowKind selects which dependency the Fig. 9 diagram shows.
type FlowKind int

// The two Fig. 9 panels.
const (
	FlowRegistration FlowKind = iota // Fig. 9a: country of registration
	FlowLocation                     // Fig. 9b: server location
)

// CrossBorderFlows computes the Fig. 9 flow list: for every country,
// the foreign countries its government URLs depend on, either by
// organization registration or by server location.
func CrossBorderFlows(ds *dataset.Dataset, kind FlowKind) []Flow {
	perSrc := map[string]int{}
	edge := map[[2]string]int{}
	for i := range ds.Records {
		r := &ds.Records[i]
		dst := r.RegCountry
		if kind == FlowLocation {
			dst = r.ServeCountry
		}
		if dst == "" {
			continue
		}
		perSrc[r.Country]++
		if dst != r.Country {
			edge[[2]string{r.Country, dst}]++
		}
	}
	var out []Flow
	for k, n := range edge {
		out = append(out, Flow{
			Src: k[0], Dst: k[1], URLs: n,
			Share: float64(n) / float64(perSrc[k[0]]),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].URLs != out[j].URLs {
			return out[i].URLs > out[j].URLs
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// FlowShare returns the share of src's URLs depending on dst (0 when
// absent).
func FlowShare(flows []Flow, src, dst string) float64 {
	for _, f := range flows {
		if f.Src == src && f.Dst == dst {
			return f.Share
		}
	}
	return 0
}

// InRegionShare computes Table 5: per source region, the percentage of
// cross-border (location) dependencies whose destination stays in the
// same region.
func InRegionShare(ds *dataset.Dataset, w *world.Model) map[world.Region]float64 {
	total := map[world.Region]int{}
	inRegion := map[world.Region]int{}
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.ServeCountry == "" || r.ServeCountry == r.Country {
			continue
		}
		src := w.Country(r.Country)
		dst := w.Country(r.ServeCountry)
		if src == nil || dst == nil {
			continue
		}
		total[src.Region]++
		if src.Region == dst.Region {
			inRegion[src.Region]++
		}
	}
	out := map[world.Region]float64{}
	for reg, n := range total {
		out[reg] = float64(inRegion[reg]) / float64(n)
	}
	return out
}

// RegionalAffinity returns, per region, the share of in-region
// cross-border dependencies hosted by each destination country (§6.3:
// South Africa hosts 100 % of SSA's, Brazil 85 % of LAC's, Japan 60 %
// of EAP's…).
func RegionalAffinity(ds *dataset.Dataset, w *world.Model) map[world.Region]map[string]float64 {
	counts := map[world.Region]map[string]int{}
	totals := map[world.Region]int{}
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.ServeCountry == "" || r.ServeCountry == r.Country {
			continue
		}
		src := w.Country(r.Country)
		dst := w.Country(r.ServeCountry)
		if src == nil || dst == nil || src.Region != dst.Region {
			continue
		}
		if counts[src.Region] == nil {
			counts[src.Region] = map[string]int{}
		}
		counts[src.Region][r.ServeCountry]++
		totals[src.Region]++
	}
	out := map[world.Region]map[string]float64{}
	for reg, m := range counts {
		out[reg] = map[string]float64{}
		for dst, n := range m {
			out[reg][dst] = float64(n) / float64(totals[reg])
		}
	}
	return out
}

// GDPRCompliance reports the fraction of EU-member government URLs
// served from inside the EU (§6.3 finds 98.3 %).
func GDPRCompliance(ds *dataset.Dataset, w *world.Model) (compliant, total int) {
	for i := range ds.Records {
		r := &ds.Records[i]
		src := w.Country(r.Country)
		if src == nil || !src.EU || r.ServeCountry == "" {
			continue
		}
		total++
		dst := w.Country(r.ServeCountry)
		if dst != nil && dst.EU {
			compliant++
		}
	}
	return compliant, total
}

// RegionFlowMatrix aggregates the Fig. 9 circular Sankey into a
// region-to-region matrix: entry [src][dst] is the number of
// cross-border URLs flowing from governments in src to infrastructure
// in dst (registration or location, per kind).
func RegionFlowMatrix(ds *dataset.Dataset, w *world.Model, kind FlowKind) map[world.Region]map[world.Region]int {
	out := map[world.Region]map[world.Region]int{}
	for i := range ds.Records {
		r := &ds.Records[i]
		dstCode := r.RegCountry
		if kind == FlowLocation {
			dstCode = r.ServeCountry
		}
		if dstCode == "" || dstCode == r.Country {
			continue
		}
		dst := w.Country(dstCode)
		if dst == nil {
			continue
		}
		if out[r.Region] == nil {
			out[r.Region] = map[world.Region]int{}
		}
		out[r.Region][dst.Region]++
	}
	return out
}

// AbroadInNAWE returns the share of foreign-served government URLs
// whose servers sit in North America or Western Europe (§6.3: 57 %).
func AbroadInNAWE(ds *dataset.Dataset, w *world.Model) float64 {
	western := westernNAWE
	total, nawe := 0, 0
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.ServeCountry == "" || r.ServeCountry == r.Country {
			continue
		}
		total++
		if western[r.ServeCountry] {
			nawe++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(nawe) / float64(total)
}
