package analysis

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/world"
)

// degradedDataset synthesizes a larger panel shaped like a
// chaos-degraded run: countries interleaved (not grouped, the worst
// case for chunking), rows with missing registration or location
// fields, and byte sizes spread across categories and ASNs. Every
// value is a deterministic function of the row number.
func degradedDataset() *dataset.Dataset {
	ds := indexDataset()
	countries := []string{"UY", "DE", "BR", "JP", "NG"}
	regions := []world.Region{world.LAC, world.ECA, world.LAC, world.EAP, world.SSA}
	cats := []world.Category{world.CatGovtSOE, world.Cat3PLocal, world.Cat3PGlobal, world.Cat3PRegional}
	dests := []string{"", "US", "BR", "DE", "JP"}
	for i := 0; i < 240; i++ {
		c := i % len(countries)
		r := rec(countries[c], regions[c], cats[i%len(cats)],
			int64(50+i*13%700), 1000+i%17, dests[i%len(dests)], dests[(i/2)%len(dests)])
		if i%7 == 0 {
			// Degraded rows: no validated location, as after a
			// geolocation failure under faults.
			r.ServeCountry = ""
		}
		if i%11 == 0 {
			r.RegCountry = ""
		}
		ds.Records = append(ds.Records, r)
	}
	return ds
}

// TestBuildIndexWorkerSweepByteIdentical is the parallel-build
// contract: the index built at workers ∈ {1, 2, 8} over a degraded,
// interleaved dataset is identical in every aggregate — float
// accumulators compared bitwise via DeepEqual, not within tolerance.
func TestBuildIndexWorkerSweepByteIdentical(t *testing.T) {
	ds := degradedDataset()
	ref := BuildIndexWorkers(ds, 1)
	for _, workers := range []int{2, 8} {
		got := BuildIndexWorkers(ds, workers)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("index at %d workers differs from sequential build", workers)
		}
	}
	// And the zero/negative knob values behave like sequential.
	if !reflect.DeepEqual(BuildIndexWorkers(ds, 0), ref) {
		t.Error("workers=0 differs from sequential build")
	}
}

// TestBuildIndexWorkersMatchesScans re-runs the scan-equivalence pins
// against a parallel build, so the merge path is held to the same
// exact-floats contract as the sequential scan.
func TestBuildIndexWorkersMatchesScans(t *testing.T) {
	ds := degradedDataset()
	ix := BuildIndexWorkers(ds, 8)
	if got, want := ix.GlobalShares(), GlobalShares(ds); !reflect.DeepEqual(got, want) {
		t.Errorf("GlobalShares: parallel index %#v, scan %#v", got, want)
	}
	if got, want := ix.CountryShares(), CountryShares(ds); !reflect.DeepEqual(got, want) {
		t.Errorf("CountryShares: parallel index disagrees with scan")
	}
	if got, want := ix.CrossBorderFlows(FlowLocation), CrossBorderFlows(ds, FlowLocation); !reflect.DeepEqual(got, want) {
		t.Errorf("CrossBorderFlows: parallel index disagrees with scan")
	}
	if got, want := ix.Diversify(), Diversify(ds); !reflect.DeepEqual(got, want) {
		t.Errorf("Diversify: parallel index disagrees with scan")
	}
}

// TestChunkBoundsCoverAndAlign checks the partition invariants: the
// chunks tile [0, len) exactly, never split a run of equal countries,
// and degrade gracefully when workers exceed record groups.
func TestChunkBoundsCoverAndAlign(t *testing.T) {
	ds := degradedDataset()
	for _, n := range []int{1, 2, 3, 8, 64, 10000} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			bounds := chunkBounds(ds.Records, n)
			prev := 0
			for _, b := range bounds {
				if b[0] != prev {
					t.Fatalf("chunk starts at %d, want %d (gap or overlap)", b[0], prev)
				}
				if b[1] <= b[0] {
					t.Fatalf("empty chunk %v", b)
				}
				if b[0] > 0 && ds.Records[b[0]].Country == ds.Records[b[0]-1].Country {
					t.Fatalf("chunk boundary %d splits country %s", b[0], ds.Records[b[0]].Country)
				}
				prev = b[1]
			}
			if prev != len(ds.Records) {
				t.Fatalf("chunks cover [0,%d), want [0,%d)", prev, len(ds.Records))
			}
		})
	}
	if got := chunkBounds(nil, 4); got != nil {
		t.Fatalf("chunkBounds(nil) = %v, want nil", got)
	}
}
