package analysis

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/dataset"
	"repro/internal/world"
)

// rec builds a URLRecord with the fields the analyses read.
func rec(country string, region world.Region, cat world.Category, bytes int64, asn int, reg, serve string) dataset.URLRecord {
	return dataset.URLRecord{
		URL: "https://x." + country + "/" + serve, Host: "x." + country,
		Country: country, Region: region, Category: cat, Bytes: bytes,
		ASN: asn, Org: orgOf(asn), RegCountry: reg, ServeCountry: serve,
		IP: netip.AddrFrom4([4]byte{16, byte(asn % 250), 0, 1}),
	}
}

func orgOf(asn int) string {
	switch asn {
	case 13335:
		return "Cloudflare, Inc."
	case 8075:
		return "Microsoft, Inc."
	}
	return "Org"
}

// tinyDataset: two countries, controlled shares.
func tinyDataset() *dataset.Dataset {
	ds := &dataset.Dataset{PerCountry: map[string]*dataset.CountryStats{}}
	// UY: 3 Govt URLs of 100 bytes, 1 Global of 700 bytes. Domestic except the Global one.
	for i := 0; i < 3; i++ {
		r := rec("UY", world.LAC, world.CatGovtSOE, 100, 6057, "UY", "UY")
		r.URL = r.URL + string(rune('a'+i))
		r.GovAS = true
		ds.Records = append(ds.Records, r)
	}
	ds.Records = append(ds.Records, rec("UY", world.LAC, world.Cat3PGlobal, 700, 13335, "US", "US"))
	// DE: 2 Local (domestic), 2 Global (one domestic via anycast, one in US).
	for i := 0; i < 2; i++ {
		r := rec("DE", world.ECA, world.Cat3PLocal, 200, 64512, "DE", "DE")
		r.URL += string(rune('a' + i))
		ds.Records = append(ds.Records, r)
	}
	g1 := rec("DE", world.ECA, world.Cat3PGlobal, 400, 13335, "US", "DE")
	g1.Anycast = true
	ds.Records = append(ds.Records, g1)
	ds.Records = append(ds.Records, rec("DE", world.ECA, world.Cat3PGlobal, 400, 8075, "US", "US"))
	return ds
}

func TestGlobalShares(t *testing.T) {
	ds := tinyDataset()
	s := GlobalShares(ds)
	if math.Abs(s.URLs[world.CatGovtSOE]-3.0/8) > 1e-9 {
		t.Errorf("Govt URL share = %v, want 3/8", s.URLs[world.CatGovtSOE])
	}
	totalBytes := 3*100.0 + 700 + 2*200 + 400 + 400
	if math.Abs(s.Bytes[world.Cat3PGlobal]-1500/totalBytes) > 1e-9 {
		t.Errorf("Global byte share = %v", s.Bytes[world.Cat3PGlobal])
	}
}

func TestRegionalAndCountryShares(t *testing.T) {
	ds := tinyDataset()
	regional := RegionalShares(ds)
	if len(regional) != 2 {
		t.Fatalf("regions = %d", len(regional))
	}
	lac := regional[world.LAC]
	if math.Abs(lac.URLs[world.CatGovtSOE]-0.75) > 1e-9 {
		t.Errorf("LAC Govt share = %v, want 0.75", lac.URLs[world.CatGovtSOE])
	}
	country := CountryShares(ds)
	if math.Abs(country["DE"].URLs[world.Cat3PLocal]-0.5) > 1e-9 {
		t.Errorf("DE Local share = %v, want 0.5", country["DE"].URLs[world.Cat3PLocal])
	}
}

func TestMajorityMap(t *testing.T) {
	entries := MajorityMap(tinyDataset())
	got := map[string]bool{}
	for _, e := range entries {
		got[e.Country] = e.ThirdPty
	}
	// UY bytes: 300 Govt vs 700 Global → third-party majority.
	if !got["UY"] {
		t.Error("UY must be majority third-party by bytes")
	}
	// DE bytes: 0 Govt → third-party majority.
	if !got["DE"] {
		t.Error("DE must be majority third-party")
	}
}

func TestDomesticIntl(t *testing.T) {
	s := DomesticIntl(tinyDataset())
	// Registration: UY 3/4 domestic; DE 2/4 → 5/8 overall.
	if math.Abs(s.RegDomestic-5.0/8) > 1e-9 {
		t.Errorf("reg domestic = %v, want 5/8", s.RegDomestic)
	}
	// Location: UY 3/4; DE 3/4 → 6/8.
	if math.Abs(s.GeoDomestic-6.0/8) > 1e-9 {
		t.Errorf("geo domestic = %v, want 6/8", s.GeoDomestic)
	}
}

func TestDomesticIntlSkipsUnknownGeo(t *testing.T) {
	ds := tinyDataset()
	r := rec("UY", world.LAC, world.CatGovtSOE, 50, 6057, "UY", "")
	r.URL += "-excluded"
	ds.Records = append(ds.Records, r)
	s := DomesticIntl(ds)
	if s.NGeo != 8 {
		t.Fatalf("excluded record entered the geolocation denominator: NGeo=%d", s.NGeo)
	}
	if s.NReg != 9 {
		t.Fatalf("NReg = %d, want 9", s.NReg)
	}
}

func TestCrossBorderFlows(t *testing.T) {
	ds := tinyDataset()
	loc := CrossBorderFlows(ds, FlowLocation)
	if FlowShare(loc, "UY", "US") != 0.25 {
		t.Errorf("UY→US location share = %v, want 0.25", FlowShare(loc, "UY", "US"))
	}
	reg := CrossBorderFlows(ds, FlowRegistration)
	if FlowShare(reg, "DE", "US") != 0.5 {
		t.Errorf("DE→US registration share = %v, want 0.5", FlowShare(reg, "DE", "US"))
	}
	if FlowShare(loc, "DE", "DE") != 0 {
		t.Error("domestic serving is not a flow")
	}
}

func TestInRegionShareAndAffinity(t *testing.T) {
	w := world.New()
	ds := &dataset.Dataset{}
	// NZ→AU (both EAP, in-region), NZ→US (out), MX→US (out).
	ds.Records = append(ds.Records,
		rec("NZ", world.EAP, world.Cat3PGlobal, 1, 1, "AU", "AU"),
		rec("NZ", world.EAP, world.Cat3PGlobal, 1, 1, "US", "US"),
		rec("MX", world.LAC, world.Cat3PGlobal, 1, 1, "US", "US"),
	)
	inReg := InRegionShare(ds, w)
	if math.Abs(inReg[world.EAP]-0.5) > 1e-9 {
		t.Errorf("EAP in-region = %v, want 0.5", inReg[world.EAP])
	}
	if inReg[world.LAC] != 0 {
		t.Errorf("LAC in-region = %v, want 0", inReg[world.LAC])
	}
	aff := RegionalAffinity(ds, w)
	if aff[world.EAP]["AU"] != 1 {
		t.Errorf("EAP affinity = %v, want AU hosting 100%%", aff[world.EAP])
	}
}

func TestGDPRCompliance(t *testing.T) {
	w := world.New()
	ds := &dataset.Dataset{}
	ds.Records = append(ds.Records,
		rec("DE", world.ECA, world.Cat3PGlobal, 1, 1, "DE", "DE"), // compliant (domestic EU)
		rec("DE", world.ECA, world.Cat3PGlobal, 1, 1, "US", "FR"), // compliant (served in EU)
		rec("DE", world.ECA, world.Cat3PGlobal, 1, 1, "US", "US"), // violation
		rec("CH", world.ECA, world.Cat3PGlobal, 1, 1, "US", "US"), // not EU: ignored
	)
	ok, total := GDPRCompliance(ds, w)
	if ok != 2 || total != 3 {
		t.Fatalf("GDPR = %d/%d, want 2/3", ok, total)
	}
}

func TestAbroadInNAWE(t *testing.T) {
	w := world.New()
	ds := &dataset.Dataset{}
	ds.Records = append(ds.Records,
		rec("CN", world.EAP, world.Cat3PGlobal, 1, 1, "JP", "JP"), // abroad, not west
		rec("MX", world.LAC, world.Cat3PGlobal, 1, 1, "US", "US"), // abroad, west
		rec("MX", world.LAC, world.CatGovtSOE, 1, 2, "MX", "MX"),  // domestic: excluded
	)
	if got := AbroadInNAWE(ds, w); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("NA/WE share = %v, want 0.5", got)
	}
}

func TestGlobalProviderFootprints(t *testing.T) {
	ds := tinyDataset()
	fp := GlobalProviderFootprints(ds)
	if len(fp) != 2 {
		t.Fatalf("footprints = %+v", fp)
	}
	if fp[0].ASN != 13335 || fp[0].Countries != 2 {
		t.Fatalf("leader = %+v, want Cloudflare in 2 countries", fp[0])
	}
	if fp[1].ASN != 8075 || fp[1].Countries != 1 {
		t.Fatalf("runner-up = %+v", fp[1])
	}
}

func TestTopProviderReliance(t *testing.T) {
	ds := tinyDataset()
	rel := TopProviderReliance(ds)
	if len(rel) == 0 || rel[0].Country != "UY" || rel[0].ASN != 13335 {
		t.Fatalf("reliance = %+v", rel)
	}
	// UY: 700 of 1000 bytes on Cloudflare.
	if math.Abs(rel[0].Share-0.7) > 1e-9 {
		t.Fatalf("UY Cloudflare byte share = %v, want 0.7", rel[0].Share)
	}
}

func TestDiversifyAndSingleNetwork(t *testing.T) {
	ds := tinyDataset()
	divs := Diversify(ds)
	if len(divs) != 2 {
		t.Fatalf("diversifications = %+v", divs)
	}
	byC := map[string]Diversification{}
	for _, d := range divs {
		byC[d.Country] = d
	}
	// UY bytes: 300 on ANTEL, 700 on Cloudflare → top share 0.7, HHI 0.58.
	uy := byC["UY"]
	if math.Abs(uy.TopNetShare-0.7) > 1e-9 {
		t.Errorf("UY top net share = %v", uy.TopNetShare)
	}
	if math.Abs(uy.HHIBytes-(0.09+0.49)) > 1e-9 {
		t.Errorf("UY byte HHI = %v, want 0.58", uy.HHIBytes)
	}
	if uy.DominantCat != world.Cat3PGlobal {
		t.Errorf("UY dominant = %v", uy.DominantCat)
	}
	// UY concentrates >50 % of bytes on one network, DE does not; both
	// are Global-dominant, so the group share is 1/2.
	singles := SingleNetworkShare(divs)
	if singles[world.Cat3PGlobal] != 0.5 {
		t.Errorf("single-network share = %v, want 0.5", singles)
	}
}

func TestHHIByGroup(t *testing.T) {
	urls, bytes := HHIByGroup(Diversify(tinyDataset()))
	if len(urls[world.Cat3PGlobal]) != 2 || len(bytes[world.Cat3PGlobal]) != 2 {
		t.Fatalf("grouping wrong: %v %v", urls, bytes)
	}
}

func TestClusterCountriesAndBranches(t *testing.T) {
	// Three archetypes across six countries.
	ds := &dataset.Dataset{}
	mk := func(code string, cat world.Category) {
		for i := 0; i < 10; i++ {
			r := rec(code, world.ECA, cat, 100, 1, code, code)
			r.URL += string(rune('a' + i))
			ds.Records = append(ds.Records, r)
		}
	}
	mk("AA", world.CatGovtSOE)
	mk("AB", world.CatGovtSOE)
	mk("BA", world.Cat3PLocal)
	mk("BB", world.Cat3PLocal)
	mk("CA", world.Cat3PGlobal)
	mk("CB", world.Cat3PGlobal)
	branches, err := BranchAssignment(BuildIndex(ds), SignatureURLs)
	if err != nil {
		t.Fatal(err)
	}
	if branches["AA"] != world.CatGovtSOE || branches["AB"] != world.CatGovtSOE {
		t.Errorf("Govt branch wrong: %v", branches)
	}
	if branches["BA"] != world.Cat3PLocal || branches["CB"] != world.Cat3PGlobal {
		t.Errorf("branches wrong: %v", branches)
	}
}

func TestCompareTopsites(t *testing.T) {
	ds := tinyDataset()
	// Topsites only in DE; the gov side must restrict to DE too.
	top := rec("DE", world.ECA, world.CatGovtSOE, 100, 99, "US", "US")
	top.TopsiteSelf = true
	ds.Topsites = append(ds.Topsites, top)
	c := CompareTopsites(ds)
	if c.Topsites.URLs[world.CatGovtSOE] != 1 {
		t.Errorf("self-hosting share = %v", c.Topsites.URLs[world.CatGovtSOE])
	}
	// Gov side covers only DE (4 URLs), none Govt&SOE.
	if c.Gov.NURL != 4 {
		t.Errorf("gov records in subset = %d, want 4", c.Gov.NURL)
	}
}

func TestExplainForeignHostingNeedsObservations(t *testing.T) {
	w := world.New()
	ds := tinyDataset()
	if _, err := ExplainForeignHosting(BuildIndex(ds), w); err == nil {
		t.Fatal("two countries cannot support a six-regressor model")
	}
}

func TestExplainForeignHostingFullPanel(t *testing.T) {
	w := world.New()
	ds := &dataset.Dataset{}
	// One record per panel country with a synthetic foreign share
	// proportional to log-users (so the users coefficient must be
	// strongly positive).
	for _, c := range w.Panel() {
		if c.Landing == 0 {
			continue
		}
		n := 20
		foreign := int(float64(n) * math.Min(0.9, math.Log1p(c.UsersMillion)/8))
		for i := 0; i < n; i++ {
			serve := c.Code
			if i < foreign {
				serve = "US"
				if c.Code == "US" {
					serve = "DE"
				}
			}
			r := rec(c.Code, c.Region, world.CatGovtSOE, 1, 1, c.Code, serve)
			r.URL += string(rune('a'+i%26)) + string(rune('a'+i/26))
			ds.Records = append(ds.Records, r)
		}
	}
	res, err := ExplainForeignHosting(BuildIndex(ds), w)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficient 1 is internet_users.
	if res.OLS.Coef[1] <= 0 {
		t.Fatalf("users coefficient = %v, want strongly positive", res.OLS.Coef[1])
	}
	if res.OLS.PValue[1] > 0.05 {
		t.Fatalf("users p-value = %v, want significant", res.OLS.PValue[1])
	}
	for name, v := range res.VIF {
		if v > 25 {
			t.Errorf("VIF[%s] = %v, implausibly collinear", name, v)
		}
	}
}

func TestHTTPSValidity(t *testing.T) {
	ds := &dataset.Dataset{}
	mkhttps := func(country, host string, valid bool, n int) {
		for i := 0; i < n; i++ {
			r := rec(country, world.ECA, world.CatGovtSOE, 1, 1, country, country)
			r.Host, r.HTTPSValid = host, valid
			r.URL = "https://" + host + "/" + string(rune('a'+i))
			ds.Records = append(ds.Records, r)
		}
	}
	// Hostnames are the unit: a big invalid portal counts once.
	mkhttps("DE", "portal.de", false, 10)
	mkhttps("DE", "ok.de", true, 1)
	mkhttps("FR", "ok.gouv.fr", true, 1)
	a := HTTPSValidity(ds)
	if a.Hostnames != 3 {
		t.Fatalf("hostnames = %d", a.Hostnames)
	}
	if math.Abs(a.GlobalValid-2.0/3) > 1e-9 {
		t.Fatalf("global valid = %v, want 2/3", a.GlobalValid)
	}
	if math.Abs(a.ByCountry["DE"]-0.5) > 1e-9 || a.ByCountry["FR"] != 1 {
		t.Fatalf("per-country = %v", a.ByCountry)
	}
	top := a.TopValidityCountries(1)
	if len(top) != 1 || top[0] != "FR" {
		t.Fatalf("top = %v", top)
	}
}

func TestRegionFlowMatrix(t *testing.T) {
	w := world.New()
	ds := &dataset.Dataset{}
	ds.Records = append(ds.Records,
		rec("CN", world.EAP, world.Cat3PGlobal, 1, 1, "JP", "JP"),
		rec("CN", world.EAP, world.Cat3PGlobal, 1, 1, "US", "US"),
		rec("CN", world.EAP, world.CatGovtSOE, 1, 2, "CN", "CN"), // domestic: not a flow
	)
	m := RegionFlowMatrix(ds, w, FlowLocation)
	if m[world.EAP][world.EAP] != 1 || m[world.EAP][world.NA] != 1 {
		t.Fatalf("matrix = %v", m)
	}
	if len(m) != 1 {
		t.Fatalf("unexpected source regions: %v", m)
	}
}
