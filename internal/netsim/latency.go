package netsim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"net/netip"
	"sync"

	"repro/internal/world"
)

// Ping simulates one ICMP echo from a probe in vantage (a RIPE-Atlas
// style probe near the capital) to the address. It returns the RTT in
// milliseconds and false when the target does not answer ICMP.
//
// The RTT is the great-circle distance to the effective server site
// converted through the fibre model of the world package, plus a
// deterministic last-mile component and per-attempt jitter, so that
// min-of-three measurements are reproducible without shared state.
//
// Everything except the queue-jitter term is a pure function of
// (vantage, addr) — host geometry, anycast-site selection, the
// DistanceKM trig and the stable FNV hash — so it is computed once per
// pair and memoized; each attempt folds only its jitter draw on top.
func (n *Net) Ping(vantage string, addr netip.Addr, attempt int) (float64, bool) {
	pb, ok := n.pingBaseFor(vantage, addr)
	if !ok || !pb.icmp {
		return 0, false
	}
	return pb.base + queueJitter(pb.stable, attempt), true
}

// MinPing returns the minimum RTT over k attempts (§3.5 sends three
// pings and keeps the minimum), and false for unresponsive targets.
func (n *Net) MinPing(vantage string, addr netip.Addr, k int) (float64, bool) {
	return n.MinPingFrom(vantage, addr, k, 0)
}

// MinPingFrom is MinPing starting at attempt index base: distinct
// bases draw distinct per-attempt jitter, which is how a probe
// sequence (e.g. vantage validation's five probes) gets independent
// yet reproducible measurements instead of five copies of one.
//
// This is the probing hot path: the geometry base is fetched once and
// only the per-attempt jitter varies inside the loop, so a 15-ping
// probe fan costs one cache read plus 15 integer folds.
func (n *Net) MinPingFrom(vantage string, addr netip.Addr, k, base int) (float64, bool) {
	if k <= 0 {
		return 0, false
	}
	pb, ok := n.pingBaseFor(vantage, addr)
	if !ok || !pb.icmp {
		return 0, false
	}
	best := math.Inf(1)
	for i := base; i < base+k; i++ {
		if rtt := pb.base + queueJitter(pb.stable, i); rtt < best {
			best = rtt
		}
	}
	return best, true
}

// pingBase is the attempt-independent half of a Ping from one vantage
// to one address. Everything here is immutable once the target host
// exists: Host fields never change after insertion and anycast
// presence is fixed at Build time.
type pingBase struct {
	// base is max(RTTForKM(dist), 0.15) + 0.3 + lastMile, accumulated
	// in exactly that order — Go evaluates float addition left to
	// right, and preserving the order keeps cached RTTs bit-identical
	// to the formerly inline computation.
	base float64
	// stable is the FNV-1a state after hashing vantage+addr; the
	// per-attempt queue jitter continues the hash from this state.
	stable uint64
	icmp   bool
}

// pingShards spreads the memo across independently locked maps so the
// many concurrent probe workers of a study don't serialize on one
// mutex.
const pingShards = 32

// pingCache is the sharded (vantage, addr) → pingBase memo.
type pingCache struct {
	shards [pingShards]pingShard
}

type pingShard struct {
	mu sync.RWMutex
	m  map[pingKey]pingBase
}

type pingKey struct {
	vantage string
	addr    netip.Addr
}

func (pc *pingCache) shard(key pingKey) *pingShard {
	b := key.addr.As4()
	h := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	h ^= uint32(len(key.vantage))
	if len(key.vantage) >= 2 {
		h ^= uint32(key.vantage[0])<<8 | uint32(key.vantage[1])
	}
	return &pc.shards[h%pingShards]
}

func (pc *pingCache) load(key pingKey) (pingBase, bool) {
	s := pc.shard(key)
	s.mu.RLock()
	pb, ok := s.m[key]
	s.mu.RUnlock()
	return pb, ok
}

func (pc *pingCache) store(key pingKey, pb pingBase) {
	s := pc.shard(key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[pingKey]pingBase)
	}
	s.m[key] = pb
	s.mu.Unlock()
}

// pingBaseFor returns the memoized geometry for (vantage, addr),
// computing and caching it on first use. An unknown address or vantage
// is not cached negatively: hosts are created lazily (VPN egresses,
// pooled endpoints), so "no host yet" must stay re-checkable.
func (n *Net) pingBaseFor(vantage string, addr netip.Addr) (pingBase, bool) {
	key := pingKey{vantage: vantage, addr: addr}
	if pb, ok := n.pingBases.load(key); ok {
		return pb, true
	}
	h := n.Host(addr)
	if h == nil {
		return pingBase{}, false
	}
	v := n.World.Country(vantage)
	if v == nil {
		return pingBase{}, false
	}
	pb := pingBase{icmp: h.ICMP}
	if h.ICMP {
		var lat, lon float64
		if h.Anycast {
			site := n.World.Country(n.AnycastSiteFor(h.Provider.Key, vantage))
			lat, lon = site.Lat, site.Lon
		} else {
			lat, lon = h.Lat, h.Lon
		}
		dist := world.DistanceKM(v.Lat, v.Lon, lat, lon)
		base := world.RTTForKM(dist)
		j := jitter(vantage, addr, 0)
		// Last-mile and serialization delay: 0.3–1.3 ms; the up-to-2 ms
		// queueing term is folded per attempt by the callers.
		pb.base = math.Max(base, 0.15) + 0.3 + j.lastMile
		pb.stable = j.stable
	}
	n.pingBases.store(key, pb)
	return pb, true
}

type pingJitter struct {
	stable   uint64  // FNV-1a state over (vantage, addr)
	lastMile float64 // 0..1 ms, stable per (vantage, addr)
	queue    float64 // 0..2 ms, varies per attempt
}

func jitter(vantage string, addr netip.Addr, attempt int) pingJitter {
	h := fnv.New64a()
	h.Write([]byte(vantage))
	b := addr.As4()
	h.Write(b[:])
	stable := h.Sum64()
	return pingJitter{
		stable:   stable,
		lastMile: float64(stable%1000) / 1000.0,
		queue:    queueJitter(stable, attempt),
	}
}

// fnvPrime64 is the FNV-1a 64-bit prime, matching hash/fnv.
const fnvPrime64 = 1099511628211

// queueJitter folds the four little-endian attempt bytes onto the
// stable hash state, exactly as hash/fnv's Write would, and maps the
// result to 0..2 ms. Continuing the incremental hash keeps every
// per-attempt draw bit-identical to the pre-memoization code.
func queueJitter(stable uint64, attempt int) float64 {
	var ab [4]byte
	binary.LittleEndian.PutUint32(ab[:], uint32(attempt))
	per := stable
	for _, c := range ab {
		per = (per ^ uint64(c)) * fnvPrime64
	}
	return float64(per%2000) / 1000.0
}
