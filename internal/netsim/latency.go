package netsim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"net/netip"

	"repro/internal/world"
)

// Ping simulates one ICMP echo from a probe in vantage (a RIPE-Atlas
// style probe near the capital) to the address. It returns the RTT in
// milliseconds and false when the target does not answer ICMP.
//
// The RTT is the great-circle distance to the effective server site
// converted through the fibre model of the world package, plus a
// deterministic last-mile component and per-attempt jitter, so that
// min-of-three measurements are reproducible without shared state.
func (n *Net) Ping(vantage string, addr netip.Addr, attempt int) (float64, bool) {
	h := n.Host(addr)
	if h == nil || !h.ICMP {
		return 0, false
	}
	v := n.World.Country(vantage)
	if v == nil {
		return 0, false
	}
	var lat, lon float64
	if h.Anycast {
		site := n.World.Country(n.AnycastSiteFor(h.Provider.Key, vantage))
		lat, lon = site.Lat, site.Lon
	} else {
		lat, lon = h.Lat, h.Lon
	}
	dist := world.DistanceKM(v.Lat, v.Lon, lat, lon)
	base := world.RTTForKM(dist)
	j := jitter(vantage, addr, attempt)
	// Last-mile and serialization delay: 0.3–1.3 ms, plus up to 2 ms of
	// queueing jitter that min-of-three mostly filters out.
	rtt := math.Max(base, 0.15) + 0.3 + j.lastMile + j.queue
	return rtt, true
}

// MinPing returns the minimum RTT over k attempts (§3.5 sends three
// pings and keeps the minimum), and false for unresponsive targets.
func (n *Net) MinPing(vantage string, addr netip.Addr, k int) (float64, bool) {
	return n.MinPingFrom(vantage, addr, k, 0)
}

// MinPingFrom is MinPing starting at attempt index base: distinct
// bases draw distinct per-attempt jitter, which is how a probe
// sequence (e.g. vantage validation's five probes) gets independent
// yet reproducible measurements instead of five copies of one.
func (n *Net) MinPingFrom(vantage string, addr netip.Addr, k, base int) (float64, bool) {
	best := math.Inf(1)
	ok := false
	for i := base; i < base+k; i++ {
		if rtt, resp := n.Ping(vantage, addr, i); resp {
			ok = true
			if rtt < best {
				best = rtt
			}
		}
	}
	if !ok {
		return 0, false
	}
	return best, true
}

type pingJitter struct {
	lastMile float64 // 0..1 ms, stable per (vantage, addr)
	queue    float64 // 0..2 ms, varies per attempt
}

func jitter(vantage string, addr netip.Addr, attempt int) pingJitter {
	h := fnv.New64a()
	h.Write([]byte(vantage))
	b := addr.As4()
	h.Write(b[:])
	stable := h.Sum64()
	var ab [4]byte
	binary.LittleEndian.PutUint32(ab[:], uint32(attempt))
	h.Write(ab[:])
	per := h.Sum64()
	return pingJitter{
		lastMile: float64(stable%1000) / 1000.0,
		queue:    float64(per%2000) / 1000.0,
	}
}
