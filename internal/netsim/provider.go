package netsim

// Provider is a global hosting/CDN provider from the catalogue of 28
// networks the paper identifies as serving governments across multiple
// continents (Fig. 10).
type Provider struct {
	Key     string // stable identifier, e.g. "cloudflare"
	Name    string // display name as in Fig. 10
	ASN     int    // real-world ASN for flavour
	Home    string // country of registration
	Anycast bool   // serves via IP anycast (affects geolocation, §3.5)

	// BaseShare is the relative popularity among governments that use
	// global providers; Adoption is the probability that a given
	// country uses the provider at all. Both are calibrated against
	// Fig. 10 (Cloudflare 49 countries, Microsoft 31, Amazon 28, …).
	BaseShare float64
	Adoption  float64

	// DCs lists countries with unicast data centres; AnycastProb is
	// the per-country probability of in-country anycast presence.
	DCs         []string
	AnycastProb float64
}

// Catalogue returns the 28-provider global catalogue. The order is the
// Fig. 10 ranking.
func Catalogue() []*Provider {
	usBig := []string{"US", "CA", "GB", "IE", "DE", "FR", "NL", "SE", "IT", "ES", "PL", "SG", "JP", "AU", "HK", "AE", "CH"}
	return []*Provider{
		{Key: "cloudflare", Name: "Cloudflare", ASN: 13335, Home: "US", Anycast: true,
			BaseShare: 0.30, Adoption: 0.82, AnycastProb: 0.82, DCs: []string{"US"}},
		{Key: "microsoft", Name: "Microsoft", ASN: 8075, Home: "US",
			BaseShare: 0.14, Adoption: 0.52, DCs: usBig},
		{Key: "amazon", Name: "Amazon", ASN: 16509, Home: "US",
			BaseShare: 0.13, Adoption: 0.47, DCs: usBig},
		{Key: "hetzner", Name: "Hetzner", ASN: 24940, Home: "DE",
			BaseShare: 0.06, Adoption: 0.34, DCs: []string{"DE", "FI", "US"}},
		{Key: "google", Name: "Google", ASN: 15169, Home: "US", Anycast: true,
			BaseShare: 0.06, Adoption: 0.31, AnycastProb: 0.72, DCs: []string{"US", "IE", "NL", "SG", "JP", "BR", "IN"}},
		{Key: "ovh", Name: "Ovh", ASN: 16276, Home: "FR",
			BaseShare: 0.05, Adoption: 0.27, DCs: []string{"FR", "CA", "PL", "DE", "GB", "SG", "AU", "US"}},
		{Key: "incapsula", Name: "Incapsula", ASN: 19551, Home: "US", Anycast: true,
			BaseShare: 0.03, Adoption: 0.23, AnycastProb: 0.62, DCs: []string{"US"}},
		{Key: "digitalocean", Name: "Digitalocean", ASN: 14061, Home: "US",
			BaseShare: 0.03, Adoption: 0.20, DCs: []string{"US", "NL", "SG", "IN", "DE", "GB", "CA", "AU"}},
		{Key: "google-cloud", Name: "Google Cloud", ASN: 396982, Home: "US",
			BaseShare: 0.03, Adoption: 0.18, DCs: usBig},
		{Key: "akamai", Name: "Akamai", ASN: 20940, Home: "US", Anycast: true,
			BaseShare: 0.025, Adoption: 0.17, AnycastProb: 0.68, DCs: []string{"US", "DE", "JP"}},
		{Key: "fastly", Name: "Fastly", ASN: 54113, Home: "US", Anycast: true,
			BaseShare: 0.02, Adoption: 0.15, AnycastProb: 0.62, DCs: []string{"US"}},
		{Key: "cloudflare-ldn", Name: "Cloudflare London", ASN: 209242, Home: "GB", Anycast: true,
			BaseShare: 0.015, Adoption: 0.13, AnycastProb: 0.6, DCs: []string{"GB"}},
		{Key: "unifiedlayer", Name: "Unified Layer", ASN: 46606, Home: "US",
			BaseShare: 0.012, Adoption: 0.12, DCs: []string{"US"}},
		{Key: "sucuri", Name: "Sucuri", ASN: 30148, Home: "US", Anycast: true,
			BaseShare: 0.012, Adoption: 0.11, AnycastProb: 0.55, DCs: []string{"US"}},
		{Key: "automattic", Name: "Automattic", ASN: 2635, Home: "US",
			BaseShare: 0.011, Adoption: 0.10, DCs: []string{"US", "NL"}},
		{Key: "linode", Name: "Linode Akamai", ASN: 63949, Home: "US",
			BaseShare: 0.011, Adoption: 0.09, DCs: []string{"US", "DE", "SG", "JP", "GB", "IN", "AU"}},
		{Key: "softlayer", Name: "Softlayer", ASN: 36351, Home: "US",
			BaseShare: 0.010, Adoption: 0.085, DCs: []string{"US", "NL", "DE", "SG", "JP", "AU"}},
		{Key: "squarespace", Name: "Squarespace", ASN: 53831, Home: "US",
			BaseShare: 0.010, Adoption: 0.08, DCs: []string{"US"}},
		{Key: "amazon-legacy", Name: "Amazon Legacy", ASN: 14618, Home: "US",
			BaseShare: 0.009, Adoption: 0.075, DCs: []string{"US"}},
		{Key: "servercentral", Name: "Servercentral", ASN: 23352, Home: "US",
			BaseShare: 0.008, Adoption: 0.065, DCs: []string{"US"}},
		{Key: "singlehop", Name: "Singlehop", ASN: 32475, Home: "US",
			BaseShare: 0.008, Adoption: 0.06, DCs: []string{"US", "NL"}},
		{Key: "inmotion", Name: "Inmotion", ASN: 54641, Home: "US",
			BaseShare: 0.007, Adoption: 0.055, DCs: []string{"US"}},
		{Key: "networksolutions", Name: "Network Solutions", ASN: 19871, Home: "US",
			BaseShare: 0.007, Adoption: 0.05, DCs: []string{"US"}},
		{Key: "ionos", Name: "Ionos", ASN: 8560, Home: "DE",
			BaseShare: 0.006, Adoption: 0.045, DCs: []string{"DE", "US", "GB", "ES"}},
		{Key: "godaddy", Name: "Godaddy", ASN: 26496, Home: "US",
			BaseShare: 0.006, Adoption: 0.04, DCs: []string{"US", "SG", "NL"}},
		{Key: "godaddy-emea", Name: "Godaddy EMEA", ASN: 398101, Home: "US",
			BaseShare: 0.005, Adoption: 0.035, DCs: []string{"US", "NL"}},
		{Key: "leaseweb", Name: "Leaseweb", ASN: 60781, Home: "NL",
			BaseShare: 0.005, Adoption: 0.033, DCs: []string{"NL", "DE", "US", "SG", "AU"}},
		{Key: "voxility", Name: "Voxility", ASN: 3223, Home: "RO",
			BaseShare: 0.005, Adoption: 0.03, DCs: []string{"RO", "US", "GB", "DE"}},
	}
}

// HasDC reports whether the provider operates a unicast data centre in
// the given country.
func (p *Provider) HasDC(country string) bool {
	for _, dc := range p.DCs {
		if dc == country {
			return true
		}
	}
	return false
}
