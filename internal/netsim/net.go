// Package netsim materialises the synthetic Internet underneath the
// study: autonomous systems with WHOIS/PeeringDB metadata, IPv4
// address space, global-provider footprints (anycast sites and unicast
// data centres), a geographic latency model, and PTR naming. The
// measurement pipeline observes this world only through the same
// interfaces the paper used (DNS, WHOIS, pings, geolocation
// databases); ground truth stays inside this package.
package netsim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"repro/internal/naming"
	"repro/internal/rng"
	"repro/internal/world"
)

// baseIP is the first address of the simulated allocation space; each
// AS receives /16 blocks starting here.
var baseIP = netip.AddrFrom4([4]byte{16, 0, 0, 0})

// SearchResult is what the simulated web search (§3.4, last resort of
// the government-AS classifier) returns for an organization.
type SearchResult struct {
	Website string
	Snippet string
}

// Net is the synthetic Internet. Build populates it single-threaded;
// afterwards hosts are created lazily (pools, VPN egresses, corporate
// ASes) while measurement goroutines read concurrently, so the mutable
// tables are guarded by mu. Host structs themselves are immutable once
// inserted.
type Net struct {
	World *world.Model
	Seed  int64

	mu sync.RWMutex // guards hosts, HostList, pool, blockToAS, asBlocks, ipNext, corpAS

	ASes   map[int]*AS
	ASList []*AS

	Providers     []*Provider
	providerByKey map[string]*Provider
	providerAS    map[string]*AS

	adopted  map[string][]*Provider     // country → adopted global providers
	presence map[string]map[string]bool // provider key → country set with anycast sites
	govAS    map[string][]*AS
	soeAS    map[string][]*AS
	localAS  map[string][]*AS
	regional map[world.Region][]*AS

	hosts    map[netip.Addr]*Host
	HostList []*Host
	pool     map[string][]*Host

	blockToAS []*AS          // block index → owning AS
	asBlocks  map[int][]int  // ASN → block indexes
	ipNext    map[int]uint32 // ASN → next offset within current block

	Search map[string]SearchResult // organization name → search result

	corpAS  map[string]*AS
	nextASN int

	// pingBases memoizes the attempt-independent half of Ping per
	// (vantage, addr): host geometry, anycast-site selection, the
	// DistanceKM trig and the stable jitter hash (see latency.go). It
	// is internally sharded and safe for concurrent probe workers.
	pingBases pingCache
}

// Build constructs the synthetic Internet for the given world model
// and seed. The result is deterministic.
func Build(w *world.Model, seed int64) *Net {
	n := &Net{
		World:         w,
		Seed:          seed,
		ASes:          make(map[int]*AS),
		providerByKey: make(map[string]*Provider),
		providerAS:    make(map[string]*AS),
		adopted:       make(map[string][]*Provider),
		presence:      make(map[string]map[string]bool),
		govAS:         make(map[string][]*AS),
		soeAS:         make(map[string][]*AS),
		localAS:       make(map[string][]*AS),
		regional:      make(map[world.Region][]*AS),
		hosts:         make(map[netip.Addr]*Host),
		pool:          make(map[string][]*Host),
		asBlocks:      make(map[int][]int),
		ipNext:        make(map[int]uint32),
		Search:        make(map[string]SearchResult),
		corpAS:        make(map[string]*AS),
		nextASN:       210000,
	}
	n.buildProviders()
	n.buildCountryASes()
	n.buildRegionalProviders()
	n.computeAdoption()
	return n
}

func (n *Net) buildProviders() {
	n.Providers = Catalogue()
	for _, p := range n.Providers {
		n.providerByKey[p.Key] = p
		as := &AS{
			ASN:         p.ASN,
			Name:        strings.ToUpper(p.Key) + "NET",
			Org:         p.Name + ", Inc.",
			RegCountry:  p.Home,
			Kind:        KindGlobal,
			Website:     "https://www." + p.Key + ".com",
			PeeringDB:   true,
			ProviderKey: p.Key,
		}
		n.register(as)
		n.providerAS[p.Key] = as
		n.Search[as.Org] = SearchResult{Website: as.Website,
			Snippet: p.Name + " is a global cloud and content delivery provider."}
		if p.Anycast {
			r := rng.New(n.Seed, "presence/"+p.Key)
			set := make(map[string]bool)
			for _, c := range n.World.Panel() {
				if r.Float64() < p.AnycastProb {
					set[c.Code] = true
				}
			}
			// Every anycast provider keeps at least its home site.
			set[p.Home] = true
			n.presence[p.Key] = set
		}
	}
}

// flavourASNs pins a few real-world ASNs the paper mentions by name.
var flavourASNs = map[string]struct {
	asn  int
	kind ASKind
	org  string
	name string
}{
	"US": {26810, KindGovernment, "U.S. Dept. of Health and Human Services", "HHS-NET"},
	"UY": {6057, KindSOE, "Administracion Nacional de Telecomunicaciones", "ANTEL"},
	"AR": {27655, KindSOE, "Yacimientos Petroliferos Fiscales", "YPF"},
	"NC": {18200, KindSOE, "Office des Postes et des Telecomm de Nouvelle Caledonie", "OPT-NC"},
}

func (n *Net) buildCountryASes() {
	for _, c := range n.World.All() {
		r := rng.New(n.Seed, "ases/"+c.Code)
		if c.HostOnly {
			// Host-only countries contribute serving infrastructure
			// (local hosters; NC additionally its state-owned OPT).
			for i := 0; i < 2; i++ {
				n.addLocalAS(c, i, r)
			}
			if f, ok := flavourASNs[c.Code]; ok {
				n.addFlavourAS(c, f.asn, f.kind, f.org, f.name)
			}
			continue
		}
		nGov := clamp(2+c.Hostnames/100, 2, 20)
		nSOE := 1 + c.Hostnames/400
		if nSOE > 4 {
			nSOE = 4
		}
		nLocal := clamp(3+c.Hostnames/80, 3, 14)

		if f, ok := flavourASNs[c.Code]; ok {
			n.addFlavourAS(c, f.asn, f.kind, f.org, f.name)
		}
		bodies := append(append([]string{}, naming.Ministries...), naming.Agencies...)
		for i := 0; i < nGov; i++ {
			body := bodies[i%len(bodies)]
			opaque := r.Float64() < 0.2
			org := naming.GovOrg(c, body, opaque)
			site := "https://www." + naming.GovHost(c, body, len(c.GovSuffix) > 0)
			as := &AS{
				ASN:        n.allocASN(),
				Name:       strings.ToUpper(c.Code) + "-GOV-" + strings.ToUpper(shortSlug(body)),
				Org:        org,
				RegCountry: c.Code,
				Kind:       KindGovernment,
				Website:    site,
			}
			if len(c.GovSuffix) > 0 && r.Float64() < 0.8 {
				as.ContactEmail = "noc@" + c.GovSuffix[0]
			} else {
				as.ContactEmail = "noc@" + naming.GovHost(c, body, false)
			}
			if r.Float64() < 0.5 {
				as.PeeringDB = true
				as.PeeringNote = "Government network of " + c.Name
			}
			n.register(as)
			n.govAS[c.Code] = append(n.govAS[c.Code], as)
			n.Search[org] = SearchResult{Website: site,
				Snippet: "Official government agency of " + c.Name + "."}
		}
		for i := 0; i < nSOE; i++ {
			kind := naming.SOEs[i%len(naming.SOEs)]
			org := naming.SOEOrg(c, kind)
			site := "https://www." + naming.SOEHost(c, kind)
			as := &AS{
				ASN:        n.allocASN(),
				Name:       strings.ToUpper(c.Code) + "-" + strings.ToUpper(shortSlug(kind)),
				Org:        org,
				RegCountry: c.Code,
				Kind:       KindSOE,
				Website:    site,
				PeeringDB:  r.Float64() < 0.4,
			}
			if as.PeeringDB && r.Float64() < 0.6 {
				as.PeeringNote = "State-owned operator"
			}
			n.register(as)
			n.soeAS[c.Code] = append(n.soeAS[c.Code], as)
			n.Search[org] = SearchResult{Website: site,
				Snippet: "State-owned enterprise; the federal government of " + c.Name + " holds more than 50% of the shares."}
		}
		for i := 0; i < nLocal; i++ {
			n.addLocalAS(c, i, r)
		}
	}
}

func (n *Net) addLocalAS(c *world.Country, i int, r *rand.Rand) {
	org := naming.LocalProviderName(c, i)
	as := &AS{
		ASN:        n.allocASN(),
		Name:       strings.ToUpper(c.Code) + "-HOST-" + fmt.Sprint(i+1),
		Org:        org,
		RegCountry: c.Code,
		Kind:       KindLocal,
		Website:    "https://www." + naming.LocalProviderDomain(c, i),
		PeeringDB:  r.Float64() < 0.6,
	}
	n.register(as)
	n.localAS[c.Code] = append(n.localAS[c.Code], as)
	n.Search[org] = SearchResult{Website: as.Website,
		Snippet: "Commercial web hosting and data-centre services in " + c.Name + "."}
}

func (n *Net) addFlavourAS(c *world.Country, asn int, kind ASKind, org, name string) {
	as := &AS{
		ASN:        asn,
		Name:       name,
		Org:        org,
		RegCountry: c.Code,
		Kind:       kind,
		PeeringDB:  true,
	}
	if kind == KindGovernment {
		as.PeeringNote = org
	} else {
		as.PeeringNote = "State-owned operator"
	}
	n.register(as)
	switch kind {
	case KindGovernment:
		n.govAS[c.Code] = append(n.govAS[c.Code], as)
	case KindSOE:
		n.soeAS[c.Code] = append(n.soeAS[c.Code], as)
	}
	n.Search[org] = SearchResult{Website: as.Website,
		Snippet: "State-owned enterprise of " + c.Name + "."}
}

// buildRegionalProviders creates a handful of continent-scale hosters
// per region; they are registered in one country and serve neighbours.
func (n *Net) buildRegionalProviders() {
	homes := map[world.Region][]string{
		world.ECA: {"DE", "NL", "CZ"}, world.LAC: {"BR", "CL"},
		world.EAP: {"SG", "JP"}, world.MENA: {"AE"}, world.SSA: {"ZA"},
		world.SA: {"IN"}, world.NA: {"US"},
	}
	for _, region := range world.Regions {
		for i, code := range homes[region] {
			home := n.World.MustCountry(code)
			as := &AS{
				ASN:        n.allocASN(),
				Name:       strings.ToUpper(string(region)) + "-RCLOUD-" + fmt.Sprint(i+1),
				Org:        naming.RegionalProviderName(home, i),
				RegCountry: code,
				Kind:       KindRegional,
				Website:    fmt.Sprintf("https://www.rcloud%d-%s.com", i+1, strings.ToLower(string(region))),
				PeeringDB:  true,
			}
			n.register(as)
			n.regional[region] = append(n.regional[region], as)
			n.Search[as.Org] = SearchResult{Website: as.Website,
				Snippet: "Regional cloud provider operating across " + region.Name() + "."}
		}
	}
}

// computeAdoption decides which global providers each panel country
// uses (Fig. 10 calibration) and widens tail providers so every
// catalogue entry genuinely spans multiple continents.
func (n *Net) computeAdoption() {
	for _, p := range n.Providers {
		r := rng.New(n.Seed, "adopt/"+p.Key)
		var users []*world.Country
		for _, c := range n.World.Panel() {
			if c.Landing == 0 {
				continue
			}
			if r.Float64() < p.Adoption {
				users = append(users, c)
			}
		}
		// Guarantee a multi-continent footprint: without it, a
		// two-country tail provider would be measured as Regional.
		if len(users) < 2 {
			users = append(users, n.World.MustCountry("US"))
		}
		regions := map[world.Region]bool{}
		for _, c := range users {
			regions[c.Region] = true
		}
		if len(regions) < 2 {
			for _, code := range []string{"US", "DE", "SG"} {
				c := n.World.MustCountry(code)
				if !regions[c.Region] {
					users = append(users, c)
					break
				}
			}
		}
		for _, c := range users {
			n.adopted[c.Code] = append(n.adopted[c.Code], p)
		}
	}
}

// register adds the AS and allocates its first /16 block.
func (n *Net) register(a *AS) {
	if _, dup := n.ASes[a.ASN]; dup {
		panic(fmt.Sprintf("netsim: duplicate ASN %d", a.ASN))
	}
	n.ASes[a.ASN] = a
	n.ASList = append(n.ASList, a)
	n.allocBlock(a)
}

func (n *Net) allocBlock(a *AS) {
	idx := len(n.blockToAS)
	n.blockToAS = append(n.blockToAS, a)
	n.asBlocks[a.ASN] = append(n.asBlocks[a.ASN], idx)
	n.ipNext[a.ASN] = 1
}

func (n *Net) allocASN() int {
	n.nextASN++
	return n.nextASN
}

// allocIP hands out the next address of the AS's current block,
// growing into a fresh block when one fills up.
func (n *Net) allocIP(a *AS) netip.Addr {
	off := n.ipNext[a.ASN]
	if off >= 65534 {
		n.allocBlock(a)
		off = 1
	}
	blocks := n.asBlocks[a.ASN]
	block := blocks[len(blocks)-1]
	n.ipNext[a.ASN] = off + 1
	v := binary.BigEndian.Uint32(addrBytes(baseIP)) + uint32(block)*65536 + off
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

func addrBytes(a netip.Addr) []byte {
	b := a.As4()
	return b[:]
}

// ASForAddr returns the AS owning the address, or nil — this is the
// ground-truth routing table the WHOIS/geolocation databases are
// derived from.
func (n *Net) ASForAddr(addr netip.Addr) *AS {
	if !addr.Is4() {
		return nil
	}
	v := binary.BigEndian.Uint32(addrBytes(addr))
	base := binary.BigEndian.Uint32(addrBytes(baseIP))
	if v < base {
		return nil
	}
	idx := int((v - base) / 65536)
	n.mu.RLock()
	defer n.mu.RUnlock()
	if idx >= len(n.blockToAS) {
		return nil
	}
	return n.blockToAS[idx]
}

// PrefixFor returns the /16 the address belongs to.
func PrefixFor(addr netip.Addr) netip.Prefix {
	p, _ := addr.Prefix(16)
	return p
}

// AllocatedPrefix is one /16 block and its owning AS.
type AllocatedPrefix struct {
	Prefix netip.Prefix
	AS     *AS
}

// AllocatedPrefixes returns every allocated block in allocation order;
// the WHOIS and geolocation databases are derived from this.
func (n *Net) AllocatedPrefixes() []AllocatedPrefix {
	n.mu.RLock()
	defer n.mu.RUnlock()
	base := binary.BigEndian.Uint32(addrBytes(baseIP))
	out := make([]AllocatedPrefix, 0, len(n.blockToAS))
	for i, as := range n.blockToAS {
		v := base + uint32(i)*65536
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		p, _ := netip.AddrFrom4(b).Prefix(16)
		out = append(out, AllocatedPrefix{Prefix: p, AS: as})
	}
	return out
}

// Provider returns the catalogue entry for key, or nil.
func (n *Net) Provider(key string) *Provider { return n.providerByKey[key] }

// ProviderAS returns the AS of the provider.
func (n *Net) ProviderAS(key string) *AS { return n.providerAS[key] }

// AdoptedProviders returns the global providers a country's
// government uses, in catalogue order.
func (n *Net) AdoptedProviders(country string) []*Provider {
	return n.adopted[country]
}

// HasAnycastPresence reports whether the provider operates an anycast
// site inside the country.
func (n *Net) HasAnycastPresence(key, country string) bool {
	return n.presence[key][country]
}

// AnycastSites returns the sorted list of countries where the provider
// has anycast presence.
func (n *Net) AnycastSites(key string) []string {
	var out []string
	for c := range n.presence[key] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func shortSlug(s string) string {
	s = strings.ReplaceAll(s, "-", "")
	if len(s) > 8 {
		s = s[:8]
	}
	return s
}
