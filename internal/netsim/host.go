package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"strings"

	"repro/internal/rng"
	"repro/internal/world"
)

// Host is one serving endpoint: an IP address with ground-truth
// location and measurement-relevant behaviour flags.
type Host struct {
	Addr    netip.Addr
	AS      *AS
	Anycast bool

	// Unicast ground truth. For anycast hosts Country is empty and the
	// effective site depends on the vantage (see AnycastSiteFor).
	Country  string
	Lat, Lon float64

	PTR      string // reverse-DNS name, possibly empty
	ICMP     bool   // responds to ping
	InIPmap  bool   // present in the RIPE IPmap cache (multistage geolocation)
	Provider *Provider
}

// Location returns the host's ground-truth country as seen from the
// given vantage country: the unicast country, or the effective anycast
// site.
func (n *Net) Location(h *Host, vantage string) string {
	if !h.Anycast {
		return h.Country
	}
	return n.AnycastSiteFor(h.Provider.Key, vantage)
}

// AnycastSiteFor returns the country of the anycast site a client in
// the vantage country reaches: the in-country site when present,
// otherwise the geographically closest site.
func (n *Net) AnycastSiteFor(key, vantage string) string {
	set := n.presence[key]
	if set[vantage] {
		return vantage
	}
	v := n.World.Country(vantage)
	best, bestD := "", 0.0
	for _, code := range n.AnycastSites(key) {
		c := n.World.Country(code)
		if c == nil || v == nil {
			continue
		}
		d := world.Distance(v, c)
		if best == "" || d < bestD {
			best, bestD = code, d
		}
	}
	if best == "" {
		best = n.Provider(key).Home
	}
	return best
}

// newHost creates a host on the AS, placed in the given country with
// coordinates jittered around the capital (servers rarely sit exactly
// at the capital; the jitter is bounded by the country's road span so
// domestic latency stays under the §3.5 threshold). Callers must hold
// n.mu: it mutates the address tables.
func (n *Net) newHost(a *AS, country string, anycast bool, prov *Provider, r *rand.Rand) *Host {
	h := &Host{
		Addr:     n.allocIP(a),
		AS:       a,
		Anycast:  anycast,
		Provider: prov,
	}
	if !anycast {
		c := n.World.MustCountry(country)
		spread := c.MaxRoadKM / 4
		h.Country = country
		h.Lat = c.Lat + (r.Float64()-0.5)*spread/111.0
		h.Lon = c.Lon + (r.Float64()-0.5)*spread/85.0
	}
	h.ICMP = r.Float64() < icmpProb(a.Kind, anycast)
	ipmapProb := 0.85
	if a.Kind == KindGlobal && !anycast {
		ipmapProb = 0.95 // provider DCs are well covered by IPmap
	}
	h.InIPmap = r.Float64() < ipmapProb
	h.PTR = n.ptrName(h, r)
	n.hosts[h.Addr] = h
	n.HostList = append(n.HostList, h)
	return h
}

func icmpProb(kind ASKind, anycast bool) float64 {
	if anycast {
		return 0.98
	}
	switch kind {
	case KindGovernment:
		return 0.40
	case KindSOE:
		return 0.45
	case KindGlobal:
		return 0.42
	default:
		return 0.43
	}
}

// Host returns the host behind the address, or nil.
func (n *Net) Host(addr netip.Addr) *Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.hosts[addr]
}

// poolPick implements address reuse: the paper observes ~3 hostnames
// per server address (13,483 hostnames on 4,286 addresses). It holds
// the net lock across lookup and creation.
func (n *Net) poolPick(key string, r *rand.Rand, create func() *Host) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	pool := n.pool[key]
	const reuse = 0.68
	if len(pool) > 0 && r.Float64() < reuse {
		return pool[r.Intn(len(pool))]
	}
	h := create()
	n.pool[key] = append(n.pool[key], h)
	return h
}

// GovHostFor returns a serving endpoint on a government or SOE network
// of the country (soe selects a state-owned enterprise network).
// serveCountry allows cross-border government arrangements such as
// France's gouv.nc estate on New Caledonia's OPT.
func (n *Net) GovHostFor(country string, soe bool, serveCountry string, r *rand.Rand) *Host {
	list := n.govAS[country]
	if soe || len(list) == 0 {
		if s := n.soeAS[country]; len(s) > 0 {
			list = s
		}
	}
	if len(list) == 0 {
		panic("netsim: no government AS for " + country)
	}
	// Government hosting concentrates on a central network (a national
	// informatics centre) with a long tail of departmental ASes, which
	// is what makes Govt&SOE-dominant countries the least diversified
	// in Fig. 11.
	idx := 0
	if r.Float64() > 0.80 {
		idx = zipfPick(r, len(list), 1.2)
	}
	as := list[idx]
	key := fmt.Sprintf("gov|%d|%s", as.ASN, serveCountry)
	return n.poolPick(key, r, func() *Host { return n.newHost(as, serveCountry, false, nil, r) })
}

// SOEHostIn returns a host on a state-owned network *of* the given
// country, e.g. OPT for New Caledonia.
func (n *Net) SOEHostIn(country string, r *rand.Rand) *Host {
	list := n.soeAS[country]
	if len(list) == 0 {
		return n.GovHostFor(country, false, country, r)
	}
	as := list[r.Intn(len(list))]
	key := fmt.Sprintf("soe|%d|%s", as.ASN, country)
	return n.poolPick(key, r, func() *Host { return n.newHost(as, country, false, nil, r) })
}

// LocalHostFor returns a host on a domestic commercial provider.
func (n *Net) LocalHostFor(country string, r *rand.Rand) *Host {
	list := n.localAS[country]
	if len(list) == 0 {
		panic("netsim: no local provider AS for " + country)
	}
	// Domestic hosting markets are concentrated too, but less so than
	// government data centres.
	as := list[zipfPick(r, len(list), 0.8)]
	key := fmt.Sprintf("local|%d", as.ASN)
	return n.poolPick(key, r, func() *Host { return n.newHost(as, country, false, nil, r) })
}

// RegionalHostFor returns a host on a continent-scale provider that is
// registered outside the served country but inside its region. The
// server itself sits in the provider's home country.
func (n *Net) RegionalHostFor(c *world.Country, r *rand.Rand) *Host {
	var candidates []*AS
	for _, as := range n.regional[c.Region] {
		if as.RegCountry != c.Code {
			candidates = append(candidates, as)
		}
	}
	if len(candidates) == 0 {
		return n.LocalHostFor(c.Code, r)
	}
	as := candidates[r.Intn(len(candidates))]
	// Regional providers are registered abroad but operate data centres
	// across their continent; slightly more than half the time the
	// content is served from inside the customer's country. This is
	// what lets Sub-Saharan Africa lean on 3P Regional for 14 % of its
	// URLs while keeping in-region *cross-border* dependencies rare
	// (Table 5).
	loc := as.RegCountry
	if r.Float64() < 0.55 {
		loc = c.Code
	}
	key := fmt.Sprintf("reg|%d|%s", as.ASN, loc)
	return n.poolPick(key, r, func() *Host { return n.newHost(as, loc, false, nil, r) })
}

// ProviderHostFor returns a serving endpoint on the given global
// provider for content of the vantage country: an anycast address when
// the provider runs anycast, otherwise a unicast data-centre host —
// in-country when a DC exists, else at the nearest DC.
func (n *Net) ProviderHostFor(p *Provider, vantage string, r *rand.Rand) *Host {
	as := n.providerAS[p.Key]
	if p.Anycast {
		key := fmt.Sprintf("any|%s|%s", p.Key, vantage)
		return n.poolPick(key, r, func() *Host { return n.newHost(as, "", true, p, r) })
	}
	dc := p.Home
	if p.HasDC(vantage) {
		dc = vantage
	} else {
		dc = n.nearestDC(p, vantage)
	}
	key := fmt.Sprintf("dc|%s|%s", p.Key, dc)
	return n.poolPick(key, r, func() *Host { return n.newHost(as, dc, false, p, r) })
}

// ProviderHostAt returns a unicast endpoint of the provider pinned to
// a specific country (used for deliberate foreign hosting). When the
// provider has no DC there, the nearest DC is used instead.
func (n *Net) ProviderHostAt(p *Provider, country string, r *rand.Rand) *Host {
	as := n.providerAS[p.Key]
	dc := country
	if !p.HasDC(country) {
		dc = n.nearestDC(p, country)
	}
	key := fmt.Sprintf("dc|%s|%s", p.Key, dc)
	return n.poolPick(key, r, func() *Host { return n.newHost(as, dc, false, p, r) })
}

func (n *Net) nearestDC(p *Provider, vantage string) string {
	v := n.World.Country(vantage)
	best, bestD := p.Home, -1.0
	for _, dc := range p.DCs {
		c := n.World.Country(dc)
		if c == nil || v == nil {
			continue
		}
		d := world.Distance(v, c)
		if bestD < 0 || d < bestD {
			best, bestD = dc, d
		}
	}
	return best
}

// DCHost returns (creating deterministically on first use) the head of
// the provider's host pool at the given data-centre country. GeoDNS
// resolution uses it so that every vantage maps to a stable replica
// address.
func (n *Net) DCHost(p *Provider, dc string) *Host {
	key := fmt.Sprintf("dc|%s|%s", p.Key, dc)
	n.mu.Lock()
	defer n.mu.Unlock()
	if pool := n.pool[key]; len(pool) > 0 {
		return pool[0]
	}
	r := rng.New(n.Seed, "dchost/"+key)
	h := n.newHost(n.providerAS[p.Key], dc, false, p, r)
	n.pool[key] = append(n.pool[key], h)
	return h
}

// NearestDC exposes the provider's closest data centre to a country.
func (n *Net) NearestDC(p *Provider, country string) string {
	if p.HasDC(country) {
		return country
	}
	return n.nearestDC(p, country)
}

// ProvidersWithDC returns the non-anycast global providers operating a
// unicast data centre in the country, in catalogue order.
func (n *Net) ProvidersWithDC(country string) []*Provider {
	var out []*Provider
	for _, p := range n.Providers {
		if !p.Anycast && p.HasDC(country) {
			out = append(out, p)
		}
	}
	return out
}

// ForeignHostFor returns an endpoint located in destCountry serving
// content for the government of src: usually a global provider with a
// data centre there, occasionally a dest-country local hoster.
func (n *Net) ForeignHostFor(src *world.Country, destCountry string, r *rand.Rand) *Host {
	if r.Float64() < 0.08 && len(n.localAS[destCountry]) > 0 {
		return n.LocalHostFor(destCountry, r)
	}
	var withDC []*Provider
	var weights []float64
	for _, p := range n.Providers {
		if !p.Anycast && p.HasDC(destCountry) {
			withDC = append(withDC, p)
			weights = append(weights, p.BaseShare)
		}
	}
	if len(withDC) == 0 {
		if len(n.localAS[destCountry]) > 0 {
			return n.LocalHostFor(destCountry, r)
		}
		// Fall back to any global provider's nearest DC.
		return n.ProviderHostAt(n.Providers[0], destCountry, r)
	}
	p := withDC[rng.Pick(r, weights)]
	return n.ProviderHostAt(p, destCountry, r)
}

func providerSlug(p *Provider) string {
	return strings.ReplaceAll(p.Key, "-", "")
}

// zipfPick draws an index in [0, n) with probability ∝ 1/(i+1)^alpha.
func zipfPick(r *rand.Rand, n int, alpha float64) int {
	if n <= 1 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
	}
	x := r.Float64() * total
	for i := 0; i < n; i++ {
		x -= math.Pow(float64(i+1), -alpha)
		if x < 0 {
			return i
		}
	}
	return n - 1
}

// EgressHostFor creates a dedicated, always-ICMP-responsive client
// address inside the country on a local provider network — the VPN
// egress a vantage point binds to. It is never pooled with serving
// hosts.
func (n *Net) EgressHostFor(country string, r *rand.Rand) *Host {
	list := n.localAS[country]
	if len(list) == 0 {
		panic("netsim: no local provider AS for egress in " + country)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	h := n.newHost(list[r.Intn(len(list))], country, false, nil, r)
	h.ICMP = true
	return h
}

// CorpAS returns (creating on first use) the self-hosting corporate
// autonomous system for a brand — the "google.com serves itself" case
// the Appendix D self-hosting heuristic detects on top sites.
func (n *Net) CorpAS(name, home string) *AS {
	n.mu.Lock()
	defer n.mu.Unlock()
	if as, ok := n.corpAS[name]; ok {
		return as
	}
	as := &AS{
		ASN:        n.allocASN(),
		Name:       strings.ToUpper(strings.ReplaceAll(name, " ", "-")),
		Org:        name + " Inc.",
		RegCountry: home,
		Kind:       KindLocal,
		Website:    "https://www." + strings.ToLower(strings.ReplaceAll(name, " ", "")) + ".com",
		PeeringDB:  true,
	}
	n.register(as)
	n.corpAS[name] = as
	n.Search[as.Org] = SearchResult{Website: as.Website,
		Snippet: name + " operates its own serving infrastructure."}
	return as
}

// CorpHostAt returns a pooled host of a corporate AS located in the
// given country (an on-net edge or origin).
func (n *Net) CorpHostAt(as *AS, country string, r *rand.Rand) *Host {
	key := fmt.Sprintf("corp|%d|%s", as.ASN, country)
	return n.poolPick(key, r, func() *Host { return n.newHost(as, country, false, nil, r) })
}
