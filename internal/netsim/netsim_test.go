package netsim

import (
	"net/netip"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/world"
)

func buildNet(t testing.TB) *Net {
	t.Helper()
	return Build(world.New(), 42)
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(world.New(), 42)
	b := Build(world.New(), 42)
	if len(a.ASList) != len(b.ASList) {
		t.Fatalf("AS counts differ: %d vs %d", len(a.ASList), len(b.ASList))
	}
	for i := range a.ASList {
		x, y := a.ASList[i], b.ASList[i]
		if x.ASN != y.ASN || x.Org != y.Org || x.RegCountry != y.RegCountry {
			t.Fatalf("AS %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestASNsUnique(t *testing.T) {
	n := buildNet(t)
	seen := map[int]bool{}
	for _, as := range n.ASList {
		if seen[as.ASN] {
			t.Fatalf("duplicate ASN %d", as.ASN)
		}
		seen[as.ASN] = true
	}
}

func TestFlavourASNs(t *testing.T) {
	n := buildNet(t)
	cases := []struct {
		asn  int
		org  string
		kind ASKind
		reg  string
	}{
		{26810, "U.S. Dept. of Health and Human Services", KindGovernment, "US"},
		{6057, "Administracion Nacional de Telecomunicaciones", KindSOE, "UY"},
		{27655, "Yacimientos Petroliferos Fiscales", KindSOE, "AR"},
		{18200, "Office des Postes et des Telecomm de Nouvelle Caledonie", KindSOE, "NC"},
	}
	for _, tc := range cases {
		as := n.ASes[tc.asn]
		if as == nil {
			t.Errorf("AS%d missing", tc.asn)
			continue
		}
		if as.Org != tc.org || as.Kind != tc.kind || as.RegCountry != tc.reg {
			t.Errorf("AS%d = %+v", tc.asn, as)
		}
	}
}

func TestProviderCatalogue(t *testing.T) {
	cat := Catalogue()
	if len(cat) != 28 {
		t.Fatalf("catalogue has %d providers, want 28 (Fig. 10)", len(cat))
	}
	keys := map[string]bool{}
	asns := map[int]bool{}
	for _, p := range cat {
		if keys[p.Key] || asns[p.ASN] {
			t.Fatalf("duplicate provider %s/%d", p.Key, p.ASN)
		}
		keys[p.Key] = true
		asns[p.ASN] = true
		if p.BaseShare <= 0 || p.Adoption <= 0 {
			t.Errorf("%s: non-positive share/adoption", p.Key)
		}
	}
	if cat[0].Key != "cloudflare" || cat[0].ASN != 13335 {
		t.Fatal("Cloudflare must lead the catalogue")
	}
}

func TestAdoptionSpansContinents(t *testing.T) {
	n := buildNet(t)
	w := n.World
	// Every provider must be adopted by countries on at least two
	// continents, or the span classifier would call it Regional.
	usage := map[string]map[string]bool{}
	for _, c := range w.Panel() {
		for _, p := range n.AdoptedProviders(c.Code) {
			if usage[p.Key] == nil {
				usage[p.Key] = map[string]bool{}
			}
			usage[p.Key][c.Region.Continent()] = true
		}
	}
	for _, p := range n.Providers {
		if len(usage[p.Key]) < 2 {
			t.Errorf("%s adopted on %d continents, want ≥ 2", p.Key, len(usage[p.Key]))
		}
	}
}

func TestCloudflareAdoptionLeads(t *testing.T) {
	n := buildNet(t)
	counts := map[string]int{}
	for _, c := range n.World.Panel() {
		for _, p := range n.AdoptedProviders(c.Code) {
			counts[p.Key]++
		}
	}
	if counts["cloudflare"] < 40 {
		t.Errorf("cloudflare adopted by %d countries, want ≈49", counts["cloudflare"])
	}
	if counts["cloudflare"] <= counts["microsoft"] {
		t.Errorf("cloudflare (%d) must lead microsoft (%d)", counts["cloudflare"], counts["microsoft"])
	}
}

func TestASForAddrRoundTrip(t *testing.T) {
	n := buildNet(t)
	r := rng.New(1, "test-hosts")
	for _, country := range []string{"UY", "DE", "JP"} {
		h := n.LocalHostFor(country, r)
		as := n.ASForAddr(h.Addr)
		if as == nil || as != h.AS {
			t.Fatalf("ASForAddr(%v) = %v, want %v", h.Addr, as, h.AS)
		}
	}
	if n.ASForAddr(netip.MustParseAddr("8.8.8.8")) != nil {
		t.Fatal("address outside the allocation must map to no AS")
	}
	if n.ASForAddr(netip.MustParseAddr("2001:db8::1")) != nil {
		t.Fatal("IPv6 must map to no AS")
	}
}

func TestAllocatedPrefixesCoverHosts(t *testing.T) {
	n := buildNet(t)
	r := rng.New(2, "alloc")
	h := n.GovHostFor("CL", false, "CL", r)
	found := false
	for _, ap := range n.AllocatedPrefixes() {
		if ap.Prefix.Contains(h.Addr) {
			found = true
			if ap.AS != h.AS {
				t.Fatalf("prefix %v owned by %v, host on %v", ap.Prefix, ap.AS.ASN, h.AS.ASN)
			}
		}
	}
	if !found {
		t.Fatal("host address not covered by any allocated prefix")
	}
}

func TestHostKindsAndLocations(t *testing.T) {
	n := buildNet(t)
	r := rng.New(3, "kinds")
	gov := n.GovHostFor("BR", false, "BR", r)
	if !gov.AS.IsGovtSOE() || gov.Country != "BR" {
		t.Errorf("gov host wrong: %+v", gov.AS)
	}
	soe := n.GovHostFor("BR", true, "BR", r)
	if !soe.AS.IsGovtSOE() {
		t.Errorf("SOE host not government-owned: %+v", soe.AS)
	}
	local := n.LocalHostFor("BR", r)
	if local.AS.Kind != KindLocal || local.AS.RegCountry != "BR" {
		t.Errorf("local host wrong: %+v", local.AS)
	}
	reg := n.RegionalHostFor(n.World.MustCountry("PY"), r)
	if reg.AS.Kind == KindLocal && reg.AS.RegCountry == "PY" {
		t.Errorf("regional host must not be a domestic provider: %+v", reg.AS)
	}
}

func TestAnycastProviderHost(t *testing.T) {
	n := buildNet(t)
	r := rng.New(4, "anycast")
	cf := n.Provider("cloudflare")
	h := n.ProviderHostFor(cf, "DE", r)
	if !h.Anycast {
		t.Fatal("cloudflare host must be anycast")
	}
	if h.Country != "" {
		t.Fatal("anycast hosts carry no fixed country")
	}
	site := n.AnycastSiteFor("cloudflare", "DE")
	if site == "" {
		t.Fatal("anycast site resolution failed")
	}
	if n.HasAnycastPresence("cloudflare", "DE") && site != "DE" {
		t.Fatalf("in-country presence must win: site=%s", site)
	}
}

func TestUnicastProviderPlacement(t *testing.T) {
	n := buildNet(t)
	r := rng.New(5, "unicast")
	hz := n.Provider("hetzner")
	h := n.ProviderHostAt(hz, "DE", r)
	if h.Country != "DE" {
		t.Fatalf("hetzner has a German DC; host placed in %s", h.Country)
	}
	// No DC in Chile: nearest DC applies.
	h2 := n.ProviderHostAt(hz, "CL", r)
	if h2.Country == "CL" {
		t.Fatalf("hetzner has no Chilean DC; host placed in %s", h2.Country)
	}
}

func TestPoolReuse(t *testing.T) {
	n := buildNet(t)
	r := rng.New(6, "reuse")
	addrs := map[netip.Addr]bool{}
	const draws = 200
	for i := 0; i < draws; i++ {
		addrs[n.LocalHostFor("EE", r).Addr] = true
	}
	// With ~68 % reuse the distinct-address count must sit well below
	// the draw count (the paper observes ~3 hostnames per address).
	if len(addrs) > draws*2/3 {
		t.Fatalf("%d distinct addresses from %d draws; pooling broken", len(addrs), draws)
	}
	if len(addrs) < 5 {
		t.Fatalf("pooling too aggressive: %d distinct addresses", len(addrs))
	}
}

func TestEgressAlwaysResponsive(t *testing.T) {
	n := buildNet(t)
	r := rng.New(7, "egress")
	for i := 0; i < 20; i++ {
		h := n.EgressHostFor("PK", r)
		if !h.ICMP {
			t.Fatal("VPN egress must answer pings (vantage validation depends on it)")
		}
		if h.Country != "PK" {
			t.Fatalf("egress in %s, want PK", h.Country)
		}
	}
}

func TestPingBehaviour(t *testing.T) {
	n := buildNet(t)
	r := rng.New(8, "ping")
	// Find a responsive domestic host.
	var h *Host
	for i := 0; i < 50; i++ {
		cand := n.LocalHostFor("DE", r)
		if cand.ICMP {
			h = cand
			break
		}
	}
	if h == nil {
		t.Skip("no responsive host found")
	}
	rtt, ok := n.MinPing("DE", h.Addr, 3)
	if !ok {
		t.Fatal("responsive host did not answer")
	}
	far, ok2 := n.MinPing("AU", h.Addr, 3)
	if !ok2 {
		t.Fatal("ping from Australia failed")
	}
	if far <= rtt {
		t.Fatalf("German host must be farther from Australia: domestic %.1f ms, AU %.1f ms", rtt, far)
	}
	if far < 100 {
		t.Fatalf("Germany-Australia RTT %.1f ms implausibly low", far)
	}
}

func TestMinPingIsMinimum(t *testing.T) {
	n := buildNet(t)
	r := rng.New(9, "minping")
	var h *Host
	for i := 0; i < 50; i++ {
		cand := n.LocalHostFor("FR", r)
		if cand.ICMP {
			h = cand
			break
		}
	}
	if h == nil {
		t.Skip("no responsive host")
	}
	minRTT, _ := n.MinPing("FR", h.Addr, 5)
	for i := 0; i < 5; i++ {
		rtt, ok := n.Ping("FR", h.Addr, i)
		if !ok {
			t.Fatal("ping failed")
		}
		if rtt < minRTT {
			t.Fatalf("attempt %d RTT %.3f below reported minimum %.3f", i, rtt, minRTT)
		}
	}
}

func TestPingDeterministic(t *testing.T) {
	n := buildNet(t)
	r := rng.New(10, "det")
	h := n.EgressHostFor("IT", r)
	a, _ := n.Ping("IT", h.Addr, 1)
	b, _ := n.Ping("IT", h.Addr, 1)
	if a != b {
		t.Fatalf("same attempt must yield the same RTT: %.4f vs %.4f", a, b)
	}
}

func TestUnresponsiveHostDoesNotAnswer(t *testing.T) {
	n := buildNet(t)
	r := rng.New(11, "unresp")
	for i := 0; i < 200; i++ {
		h := n.GovHostFor("IN", false, "IN", r)
		if !h.ICMP {
			if _, ok := n.Ping("IN", h.Addr, 0); ok {
				t.Fatal("ICMP-silent host answered a ping")
			}
			return
		}
	}
	t.Skip("all sampled hosts responsive")
}

func TestZipfPickBoundsQuick(t *testing.T) {
	r := rng.New(12, "zipf")
	f := func(n uint8, alphaQ uint8) bool {
		size := int(n%20) + 1
		alpha := float64(alphaQ%30) / 10.0
		idx := zipfPick(r, size, alpha)
		return idx >= 0 && idx < size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfConcentration(t *testing.T) {
	r := rng.New(13, "zipf-conc")
	first := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		if zipfPick(r, 10, 2.0) == 0 {
			first++
		}
	}
	share := float64(first) / draws
	if share < 0.5 {
		t.Fatalf("alpha=2 over 10 items: first index share %.2f, want > 0.5", share)
	}
}

func TestPTRNamesCarryCountryHints(t *testing.T) {
	n := buildNet(t)
	informative := 0
	total := 0
	for _, h := range n.HostList {
		if h.Anycast || h.PTR == "" {
			continue
		}
		total++
		if len(h.PTR) > 8 {
			informative++
		}
	}
	if total == 0 {
		t.Skip("no PTR records generated yet (hosts are created lazily)")
	}
}

func TestCorpAS(t *testing.T) {
	n := buildNet(t)
	a := n.CorpAS("SearchCo", "US")
	b := n.CorpAS("SearchCo", "US")
	if a != b {
		t.Fatal("CorpAS must cache by brand")
	}
	if a.RegCountry != "US" {
		t.Fatalf("corp AS registered in %s, want US", a.RegCountry)
	}
	r := rng.New(14, "corp")
	h := n.CorpHostAt(a, "CL", r)
	if h.Country != "CL" || h.AS != a {
		t.Fatalf("corp host misplaced: %+v", h)
	}
}

func TestProvidersWithDC(t *testing.T) {
	n := buildNet(t)
	for _, p := range n.ProvidersWithDC("DE") {
		if p.Anycast {
			t.Errorf("%s is anycast; must not be in the unicast DC list", p.Key)
		}
		if !p.HasDC("DE") {
			t.Errorf("%s listed without a German DC", p.Key)
		}
	}
	if len(n.ProvidersWithDC("DE")) == 0 {
		t.Fatal("Germany must host unicast provider DCs")
	}
}

func TestNearestDC(t *testing.T) {
	n := buildNet(t)
	hz := n.Provider("hetzner") // DCs: DE, FI, US
	if got := n.NearestDC(hz, "DE"); got != "DE" {
		t.Errorf("NearestDC from DE = %s", got)
	}
	if got := n.NearestDC(hz, "PL"); got != "DE" {
		t.Errorf("NearestDC from PL = %s, want DE", got)
	}
	if got := n.NearestDC(hz, "MX"); got != "US" {
		t.Errorf("NearestDC from MX = %s, want US", got)
	}
}

func TestDCHostDeterministic(t *testing.T) {
	a := buildNet(t)
	b := buildNet(t)
	hz := a.Provider("hetzner")
	if a.DCHost(hz, "FI").Addr != b.DCHost(b.Provider("hetzner"), "FI").Addr {
		t.Fatal("DCHost differs across identical builds")
	}
	// Within one net, repeated calls return the same head.
	if a.DCHost(hz, "FI") != a.DCHost(hz, "FI") {
		t.Fatal("DCHost not stable")
	}
}

// TestConcurrentHostCreationAndPing hammers lazy host creation from
// many goroutines while others ping — the exact interleaving the
// pipeline produces (VPN egress creation during measurement). Run
// under -race this guards the Net locking.
func TestConcurrentHostCreationAndPing(t *testing.T) {
	n := buildNet(t)
	var wg sync.WaitGroup
	countries := []string{"DE", "FR", "JP", "US", "BR", "IN", "PL", "UY"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(int64(w), "stress")
			for i := 0; i < 50; i++ {
				c := countries[(w+i)%len(countries)]
				var h *Host
				switch i % 4 {
				case 0:
					h = n.LocalHostFor(c, r)
				case 1:
					h = n.GovHostFor(c, false, c, r)
				case 2:
					h = n.EgressHostFor(c, r)
				default:
					h = n.ProviderHostFor(n.Providers[i%len(n.Providers)], c, r)
				}
				n.Ping(c, h.Addr, i)
				n.ASForAddr(h.Addr)
				n.Host(h.Addr)
			}
		}(w)
	}
	wg.Wait()
}

func TestAllocatedPrefixesDisjoint(t *testing.T) {
	n := buildNet(t)
	seen := map[string]bool{}
	for _, ap := range n.AllocatedPrefixes() {
		key := ap.Prefix.String()
		if seen[key] {
			t.Fatalf("prefix %s allocated twice", key)
		}
		seen[key] = true
		if ap.Prefix.Bits() != 16 {
			t.Fatalf("prefix %s is not a /16", key)
		}
	}
}
