package netsim

import (
	"fmt"
	"math/rand"
	"strings"
)

// ptrName generates the reverse-DNS name for a host. Router and server
// operators commonly embed geographic hints — country codes and city
// abbreviations — which the HOIHO stage of the geolocation pipeline
// (§3.5 Step #4) extracts with regular expressions. A fraction of
// hosts publish uninformative or no PTR records, forcing the pipeline
// through its remaining fallbacks.
func (n *Net) ptrName(h *Host, r *rand.Rand) string {
	if h.Anycast {
		// Anycast PTRs never localise a specific site.
		if r.Float64() < 0.3 {
			return fmt.Sprintf("edge-%d.%s.net", r.Intn(900)+100, providerSlug(h.Provider))
		}
		return ""
	}
	slug := asSlug(h.AS)
	// Cloud and CDN operators name their reverse zones systematically
	// (ec2-…-us-east-1.compute.amazonaws.com style), so provider hosts
	// are almost always informative; other operators less so.
	informative := 0.70
	if h.AS.Kind == KindGlobal {
		informative = 0.92
	}
	switch {
	case r.Float64() < informative:
		// Informative: "r01.waw3.pl.example.net" style with the ISO
		// country code as a label.
		cc := strings.ToLower(h.Country)
		city := cityAbbrev(cc)
		return fmt.Sprintf("r%02d.%s%d.%s.%s.net", r.Intn(20)+1, city, r.Intn(4)+1, cc, slug)
	case r.Float64() < 0.5:
		return fmt.Sprintf("unassigned-%d-%d.%s.net", r.Intn(250), r.Intn(250), slug)
	default:
		return ""
	}
}

func asSlug(a *AS) string {
	s := strings.ToLower(a.Name)
	s = strings.ReplaceAll(s, "_", "-")
	return s
}

// cityAbbrev fabricates a stable three-letter city code for the
// country's capital, standing in for IATA-style hints.
func cityAbbrev(cc string) string {
	if len(cc) < 2 {
		return "xxx"
	}
	return cc + "c"
}
