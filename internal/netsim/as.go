package netsim

// ASKind classifies the operator behind an autonomous system.
type ASKind int

// Kinds of AS operators in the simulation.
const (
	KindGovernment ASKind = iota // network used exclusively by government institutions
	KindSOE                      // state-owned enterprise (IMF rule: >50 % federal ownership)
	KindLocal                    // commercial provider serving its home market
	KindRegional                 // commercial provider serving several countries on one continent
	KindGlobal                   // hypergiant / global provider
)

func (k ASKind) String() string {
	switch k {
	case KindGovernment:
		return "government"
	case KindSOE:
		return "soe"
	case KindLocal:
		return "local"
	case KindRegional:
		return "regional"
	case KindGlobal:
		return "global"
	}
	return "unknown"
}

// AS is an autonomous system with the registration metadata the
// measurement pipeline can observe through WHOIS and PeeringDB.
type AS struct {
	ASN        int
	Name       string // short network name, e.g. "CLOUDFLARENET"
	Org        string // registered organization
	RegCountry string // WHOIS country of registration
	Kind       ASKind // ground truth; the pipeline must infer it

	// Evidence surface for the government-network classifier (§3.4).
	Website      string // organization website (may be empty)
	ContactEmail string // WHOIS technical contact (may be empty)
	PeeringDB    bool   // whether a PeeringDB record exists
	PeeringNote  string // free-text note on the PeeringDB record

	// ProviderKey links global-provider ASes to the catalogue entry.
	ProviderKey string
}

// IsGovtSOE reports whether the AS is ground-truth government-operated
// or a state-owned enterprise.
func (a *AS) IsGovtSOE() bool {
	return a.Kind == KindGovernment || a.Kind == KindSOE
}
