package netsim

import (
	"net/netip"
	"testing"

	"repro/internal/rng"
	"repro/internal/world"
)

// BenchmarkPingGeometry measures the per-ping cost of the latency
// model over a probing-shaped workload: a working set of (vantage,
// addr) pairs, each pinged with the §3.5 attempt fan (15 attempts), as
// minFromProbes does.
func BenchmarkPingGeometry(b *testing.B) {
	w := world.New()
	n := Build(w, 42)
	r := rng.New(9, "bench-ping")
	vantages := []string{"US", "DE", "BR", "JP", "NG", "FR", "IN", "UY"}
	var addrs []netip.Addr
	for i := 0; i < 32; i++ {
		addrs = append(addrs, n.LocalHostFor(vantages[i%len(vantages)], r).Addr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vantage := vantages[i%len(vantages)]
		addr := addrs[i%len(addrs)]
		if _, ok := n.Ping(vantage, addr, i%15); !ok {
			// Some hosts legitimately drop ICMP; the miss path is part
			// of the workload.
			continue
		}
	}
}

// BenchmarkMinPingFrom measures the min-of-k fast path the probing
// package leans on: 15 attempts folded into one minimum per call.
func BenchmarkMinPingFrom(b *testing.B) {
	w := world.New()
	n := Build(w, 42)
	r := rng.New(9, "bench-ping")
	var addrs []netip.Addr
	for i := 0; i < 32; i++ {
		h := n.EgressHostFor("DE", r)
		addrs = append(addrs, h.Addr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := n.MinPingFrom("US", addrs[i%len(addrs)], 15, 0); !ok {
			b.Fatal("egress hosts always answer ICMP")
		}
	}
}
