package vantage

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/webgen"
	"repro/internal/world"
)

func testEnv(t *testing.T) (*world.Model, *netsim.Net, *webgen.Estate) {
	t.Helper()
	w := world.New()
	n := netsim.Build(w, 42)
	profiles := world.BuildProfiles(w, 42)
	e := webgen.Build(w, n, profiles, 42, 0.02)
	return w, n, e
}

func TestConnectBindsCountry(t *testing.T) {
	w, n, e := testEnv(t)
	c := w.MustCountry("PK")
	vp := Connect(c, e, n, 42)
	if vp.Country != c || vp.VPN != "Surfshark" {
		t.Fatalf("vantage = %+v", vp)
	}
	if !vp.Egress.IsValid() {
		t.Fatal("no egress address")
	}
	if vp.Fetcher == nil {
		t.Fatal("no fetcher")
	}
}

// TestValidateLocation verifies the §4.1 footnote-2 check: a vantage
// whose egress really sits in the claimed country passes; the same
// egress claimed for a distant country fails.
func TestValidateLocation(t *testing.T) {
	w, n, e := testEnv(t)
	c := w.MustCountry("DE")
	vp := Connect(c, e, n, 42)
	if err := vp.ValidateLocation(n); err != nil {
		t.Fatalf("genuine vantage rejected: %v", err)
	}
	// A lying VPN: the same German egress claimed to be in Japan.
	liar := &Point{Country: w.MustCountry("JP"), VPN: vp.VPN, Egress: vp.Egress, Fetcher: vp.Fetcher}
	if err := liar.ValidateLocation(n); err == nil {
		t.Fatal("mislocated vantage accepted")
	}
}

func TestConnectDeterministicAcrossBuilds(t *testing.T) {
	w1, n1, e1 := testEnv(t)
	w2, n2, e2 := testEnv(t)
	a := Connect(w1.MustCountry("SG"), e1, n1, 42)
	b := Connect(w2.MustCountry("SG"), e2, n2, 42)
	if a.Egress != b.Egress {
		t.Fatal("identical builds must yield the same egress")
	}
}
