package vantage

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/webgen"
	"repro/internal/world"
)

func testEnv(t *testing.T) (*world.Model, *netsim.Net, *webgen.Estate) {
	t.Helper()
	w := world.New()
	n := netsim.Build(w, 42)
	profiles := world.BuildProfiles(w, 42)
	e := webgen.Build(w, n, profiles, 42, 0.02)
	return w, n, e
}

func TestConnectBindsCountry(t *testing.T) {
	w, n, e := testEnv(t)
	c := w.MustCountry("PK")
	vp := Connect(c, e, n, 42)
	if vp.Country != c || vp.VPN != "Surfshark" {
		t.Fatalf("vantage = %+v", vp)
	}
	if !vp.Egress.IsValid() {
		t.Fatal("no egress address")
	}
	if vp.Fetcher == nil {
		t.Fatal("no fetcher")
	}
}

// TestValidateLocation verifies the §4.1 footnote-2 check: a vantage
// whose egress really sits in the claimed country passes; the same
// egress claimed for a distant country fails.
func TestValidateLocation(t *testing.T) {
	w, n, e := testEnv(t)
	c := w.MustCountry("DE")
	vp := Connect(c, e, n, 42)
	if err := vp.ValidateLocation(n); err != nil {
		t.Fatalf("genuine vantage rejected: %v", err)
	}
	// A lying VPN: the same German egress claimed to be in Japan.
	liar := &Point{Country: w.MustCountry("JP"), VPN: vp.VPN, Egress: vp.Egress, Fetcher: vp.Fetcher}
	if err := liar.ValidateLocation(n); err == nil {
		t.Fatal("mislocated vantage accepted")
	}
}

func TestConnectDeterministicAcrossBuilds(t *testing.T) {
	w1, n1, e1 := testEnv(t)
	w2, n2, e2 := testEnv(t)
	a := Connect(w1.MustCountry("SG"), e1, n1, 42)
	b := Connect(w2.MustCountry("SG"), e2, n2, 42)
	if a.Egress != b.Egress {
		t.Fatal("identical builds must yield the same egress")
	}
}

// TestConnectAttemptDeterministic: a re-connection sequence is part of
// the study's deterministic surface — two identical builds running the
// same attempt sequence must derive the same egresses, and each fresh
// attempt must yield a fresh egress host for the flap to heal onto.
func TestConnectAttemptDeterministic(t *testing.T) {
	w1, n1, e1 := testEnv(t)
	w2, n2, e2 := testEnv(t)
	c1, c2 := w1.MustCountry("US"), w2.MustCountry("US")
	seen := map[string]bool{}
	for attempt := 0; attempt < 4; attempt++ {
		a := ConnectAttempt(c1, e1, n1, 42, attempt)
		b := ConnectAttempt(c2, e2, n2, 42, attempt)
		if a.Egress != b.Egress {
			t.Fatalf("attempt %d diverged across identical builds: %v vs %v", attempt, a.Egress, b.Egress)
		}
		if seen[a.Egress.String()] {
			t.Fatalf("attempt %d reused egress %v — a flap would re-land on the same host", attempt, a.Egress)
		}
		seen[a.Egress.String()] = true
	}
}

// TestValidateLocationProbesIndependent: the five §4.1 probes must
// draw disjoint ping-attempt windows (i*pingsPerProbe offsets), not
// five copies of the same minimum.
func TestValidateLocationProbesIndependent(t *testing.T) {
	w, n, e := testEnv(t)
	vp := Connect(w.MustCountry("DE"), e, n, 42)
	const pingsPerProbe = 3
	seen := map[float64]bool{}
	for i := 0; i < 5; i++ {
		rtt, ok := n.MinPingFrom(vp.Country.Code, vp.Egress, pingsPerProbe, i*pingsPerProbe)
		if !ok {
			t.Fatalf("probe %d unresponsive", i)
		}
		seen[rtt] = true
	}
	if len(seen) < 2 {
		t.Error("all five probes measured the identical minimum — windows are not independent")
	}
	// And reproducible: the same windows give the same measurements.
	for i := 0; i < 5; i++ {
		a, _ := n.MinPingFrom(vp.Country.Code, vp.Egress, pingsPerProbe, i*pingsPerProbe)
		b, _ := n.MinPingFrom(vp.Country.Code, vp.Egress, pingsPerProbe, i*pingsPerProbe)
		if a != b {
			t.Fatalf("probe %d not reproducible: %v vs %v", i, a, b)
		}
	}
}
