// Package vantage models the in-country VPN vantage points of §3.2:
// each Point binds a country, the VPN service that provides it, an
// egress address inside the country, a vantage-scoped fetcher and the
// location self-validation the paper applies before trusting a VPN
// server's claimed country (§4.1, footnote 2).
package vantage

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"net/url"
	"time"

	"repro/internal/fetch"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/webgen"
	"repro/internal/webserve"
	"repro/internal/world"
)

// Point is one connected vantage.
type Point struct {
	Country *world.Country
	VPN     string
	Egress  netip.Addr // VPN egress inside the country
	Fetcher fetch.Fetcher
}

// Connect establishes a vantage point in the country using its
// assigned VPN service and an in-memory fetcher over the estate.
func Connect(c *world.Country, e *webgen.Estate, n *netsim.Net, seed int64) *Point {
	return ConnectAttempt(c, e, n, seed, 0)
}

// ConnectAttempt is Connect for a numbered re-connection: when a
// vantage fails location validation the pipeline reconnects with the
// next attempt number, which derives a fresh egress deterministically.
// Attempt 0 keeps the historical derivation so existing seeds keep
// their egresses.
func ConnectAttempt(c *world.Country, e *webgen.Estate, n *netsim.Net, seed int64, attempt int) *Point {
	label := "vpn/" + c.Code
	if attempt > 0 {
		label = fmt.Sprintf("vpn/%s/retry%d", c.Code, attempt)
	}
	r := rng.New(seed, label)
	egress := n.EgressHostFor(c.Code, r)
	return &Point{
		Country: c,
		VPN:     c.VPN,
		Egress:  egress.Addr,
		Fetcher: &webgen.MemFetcher{Estate: e, Vantage: c.Code},
	}
}

// ValidateLocation verifies that the VPN egress really sits in the
// claimed country using the same approach as server geolocation: five
// in-country probes ping the egress address and the minimum latency
// must fall below the country's road-distance threshold. Each probe
// draws its own attempt window (§4.1's five-probe protocol measures
// five independent samples), so the five are reproducible but not
// copies of one another.
func (p *Point) ValidateLocation(n *netsim.Net) error {
	const probes = 5
	const pingsPerProbe = 3
	best := -1.0
	for i := 0; i < probes; i++ {
		rtt, ok := n.MinPingFrom(p.Country.Code, p.Egress, pingsPerProbe, i*pingsPerProbe)
		if !ok {
			continue
		}
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	if best < 0 {
		return fmt.Errorf("vantage: egress %v unresponsive", p.Egress)
	}
	if thr := thresholdMS(p.Country); best > thr {
		return fmt.Errorf("vantage: egress %v latency %.1fms exceeds %s threshold %.1fms",
			p.Egress, best, p.Country.Code, thr)
	}
	return nil
}

// thresholdMS mirrors probing.Threshold without importing it (the
// probing package depends on vantage-free layers only).
func thresholdMS(c *world.Country) float64 {
	t := c.RoadThresholdMS() + 1.5
	if t < 3 {
		t = 3
	}
	return t
}

// DefaultMaxBodyBytes caps how much of a response body HTTPFetcher
// materialises when MaxBodyBytes is unset. The live web serves
// multi-gigabyte mistakes; a crawler that io.ReadAlls them unbounded
// is one hostile page away from OOM.
const DefaultMaxBodyBytes = 4 << 20

// HTTPFetcher fetches through real HTTP against a webserve.Server,
// directing every hostname to the server's address while preserving
// the original Host header — the moral equivalent of pointing a
// browser at a VPN tunnel.
type HTTPFetcher struct {
	ServerAddr string // host:port of the webserve server
	Vantage    string
	Client     *http.Client
	// MaxBodyBytes bounds how many body bytes Fetch reads; bodies past
	// the cap are cut there and the Response marked Truncated. 0 means
	// DefaultMaxBodyBytes; negative means unlimited.
	MaxBodyBytes int64
}

// NewHTTPFetcher builds an HTTPFetcher with a transport that dials the
// fixed server regardless of target host.
func NewHTTPFetcher(serverAddr, vantageCountry string) *HTTPFetcher {
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, serverAddr)
		},
		MaxIdleConnsPerHost: 16,
	}
	return &HTTPFetcher{
		ServerAddr: serverAddr,
		Vantage:    vantageCountry,
		Client:     &http.Client{Transport: transport, Timeout: 30 * time.Second},
	}
}

// Fetch implements fetch.Fetcher.
func (f *HTTPFetcher) Fetch(ctx context.Context, raw string) (*fetch.Response, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, err
	}
	// The synthetic web publishes https URLs; the local server speaks
	// plain HTTP, so the scheme is rewritten while the Host header
	// keeps routing to the right site.
	u.Scheme = "http"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(webserve.VantageHeader, f.Vantage)
	resp, err := f.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// Bounded read with an explicit truncation signal: one byte past
	// the cap distinguishes "exactly cap-sized" from "cut short".
	cap := f.MaxBodyBytes
	if cap == 0 {
		cap = DefaultMaxBodyBytes
	}
	var body []byte
	truncated := false
	if cap > 0 {
		body, err = io.ReadAll(io.LimitReader(resp.Body, cap+1))
		if err == nil && int64(len(body)) > cap {
			body = body[:cap]
			truncated = true
		}
	} else {
		body, err = io.ReadAll(resp.Body)
	}
	if err != nil {
		return nil, err
	}
	return &fetch.Response{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
		BodySize:    int64(len(body)),
		Truncated:   truncated,
	}, nil
}
