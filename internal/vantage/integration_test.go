package vantage_test

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/crawler"
	"repro/internal/netsim"
	"repro/internal/vantage"
	"repro/internal/webgen"
	"repro/internal/webserve"
	"repro/internal/world"
)

func startServer(t *testing.T) (*webserve.Server, string, *webgen.Estate) {
	t.Helper()
	w := world.New()
	net := netsim.Build(w, 42)
	profiles := world.BuildProfiles(w, 42)
	estate := webgen.Build(w, net, profiles, 42, 0.02)
	srv := &webserve.Server{Estate: estate}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, estate
}

func get(t *testing.T, addr, host, path, vantageCountry string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+addr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = host
	if vantageCountry != "" {
		req.Header.Set(webserve.VantageHeader, vantageCountry)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServeLandingPage(t *testing.T) {
	_, addr, estate := startServer(t)
	site := estate.GovSites("UY")[0]
	resp := get(t, addr, site.Host, "/", "UY")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if int64(len(body)) != site.Pages["/"].Size {
		t.Fatalf("body %d bytes, want the page's nominal %d", len(body), site.Pages["/"].Size)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/html" {
		t.Fatalf("content type %q", got)
	}
}

func TestServeUnknownHostAndPath(t *testing.T) {
	_, addr, estate := startServer(t)
	if resp := get(t, addr, "unknown.example", "/", "US"); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unknown host status = %d", resp.StatusCode)
	}
	site := estate.GovSites("UY")[0]
	if resp := get(t, addr, site.Host, "/definitely-missing", "UY"); resp.StatusCode != 404 {
		t.Fatalf("missing path status = %d", resp.StatusCode)
	}
}

func TestGeoBlockingOverHTTP(t *testing.T) {
	_, addr, estate := startServer(t)
	var blocked *webgen.Site
	for _, s := range estate.SiteList {
		if s.GeoBlocked && s.Country != "" {
			blocked = s
			break
		}
	}
	if blocked == nil {
		t.Skip("no geo-blocked site at this scale")
	}
	if resp := get(t, addr, blocked.Host, "/", blocked.Country); resp.StatusCode != 200 {
		t.Fatalf("domestic request blocked: %d", resp.StatusCode)
	}
	if resp := get(t, addr, blocked.Host, "/", "ZZ"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("foreign request allowed: %d", resp.StatusCode)
	}
}

// TestHTTPCrawlMatchesMemCrawl crawls one country over real HTTP and
// over the in-memory backend and demands identical URL coverage — the
// property that lets full-scale studies use the fast path.
func TestHTTPCrawlMatchesMemCrawl(t *testing.T) {
	_, addr, estate := startServer(t)
	const country = "UY"
	landings := estate.LandingURLs[country]

	httpCrawler := &crawler.Crawler{
		Fetcher: vantage.NewHTTPFetcher(addr, country),
		Config:  crawler.Config{Concurrency: 8, Country: country},
	}
	memCrawler := &crawler.Crawler{
		Fetcher: &webgen.MemFetcher{Estate: estate, Vantage: country},
		Config:  crawler.Config{Concurrency: 8, Country: country},
	}
	ctx := context.Background()
	ha, err := httpCrawler.Crawl(ctx, landings)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := memCrawler.Crawl(ctx, landings)
	if err != nil {
		t.Fatal(err)
	}
	hu, mu := ha.URLs(), ma.URLs()
	if len(hu) != len(mu) {
		t.Fatalf("HTTP crawl found %d URLs, mem crawl %d", len(hu), len(mu))
	}
	for i := range hu {
		if hu[i] != mu[i] {
			t.Fatalf("URL sets diverge at %d: %s vs %s", i, hu[i], mu[i])
		}
	}
}

func TestVantageHTTPFetcherRewritesScheme(t *testing.T) {
	_, addr, estate := startServer(t)
	site := estate.GovSites("CL")[0]
	f := vantage.NewHTTPFetcher(addr, "CL")
	resp, err := f.Fetch(context.Background(), fmt.Sprintf("https://%s/", site.Host))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.BodySize == 0 {
		t.Fatalf("fetch over rewritten scheme failed: %+v", resp.Status)
	}
}

// TestSANInspectionOverTLS performs the §3.3 SAN-matching step against
// a real TLS handshake: the server picks the landing site's
// certificate by SNI, and the client reads the SAN list off the wire.
func TestSANInspectionOverTLS(t *testing.T) {
	_, _, estate := startServer(t)
	srv := &webserve.Server{Estate: estate}
	tlsAddr, err := srv.StartTLS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var landing *webgen.Site
	for _, s := range estate.GovSites("AR") {
		if s.Cert != nil && len(s.Cert.SANs) > 2 {
			landing = s
			break
		}
	}
	if landing == nil {
		for _, s := range estate.GovSites("AR") {
			if s.Cert != nil {
				landing = s
				break
			}
		}
	}
	if landing == nil {
		t.Skip("no certified landing site")
	}

	var sawSANs []string
	conn, err := tls.Dial("tcp", tlsAddr, &tls.Config{
		ServerName:         landing.Host,
		InsecureSkipVerify: true,
		VerifyPeerCertificate: func(raw [][]byte, _ [][]*x509.Certificate) error {
			c, err := x509.ParseCertificate(raw[0])
			if err != nil {
				return err
			}
			sawSANs = c.DNSNames
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	want := map[string]bool{}
	for _, s := range landing.Cert.SANs {
		want[s] = true
	}
	for _, s := range sawSANs {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Fatalf("SANs missing from the handshake: %v", want)
	}
}

// TestTLSRequiresKnownSNI rejects handshakes for hostnames without a
// certificate, mirroring how unknown names fail in the wild.
func TestTLSRequiresKnownSNI(t *testing.T) {
	_, _, estate := startServer(t)
	srv := &webserve.Server{Estate: estate}
	tlsAddr, err := srv.StartTLS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = tls.Dial("tcp", tlsAddr, &tls.Config{
		ServerName:         "no-such-host.invalid",
		InsecureSkipVerify: true,
	})
	if err == nil {
		t.Fatal("handshake for an unknown hostname succeeded")
	}
}

// TestHTTPFetcherBoundsBody: the body cap must cut an over-limit page
// at exactly MaxBodyBytes and flag the response as truncated, while an
// under-limit page passes through whole and unflagged.
func TestHTTPFetcherBoundsBody(t *testing.T) {
	_, addr, estate := startServer(t)
	site := estate.GovSites("CL")[0]
	url := fmt.Sprintf("https://%s/", site.Host)

	full := vantage.NewHTTPFetcher(addr, "CL")
	resp, err := full.Fetch(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Fatal("default cap truncated a landing page")
	}
	whole := resp.BodySize

	capped := vantage.NewHTTPFetcher(addr, "CL")
	capped.MaxBodyBytes = whole / 2
	resp, err = capped.Fetch(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("over-cap body not flagged Truncated")
	}
	if resp.BodySize != whole/2 || int64(len(resp.Body)) != whole/2 {
		t.Fatalf("truncated to %d bytes, want %d", resp.BodySize, whole/2)
	}

	exact := vantage.NewHTTPFetcher(addr, "CL")
	exact.MaxBodyBytes = whole
	resp, err = exact.Fetch(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || resp.BodySize != whole {
		t.Fatalf("exactly-cap-sized body misflagged: Truncated=%v size=%d", resp.Truncated, resp.BodySize)
	}
}
