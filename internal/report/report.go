// Package report renders analysis results as aligned text tables and
// ASCII bar charts, including the paper-vs-measured layout every
// experiment in EXPERIMENTS.md uses.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with padded columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a fraction as a fixed-width bar, e.g. "██████····".
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", filled) + strings.Repeat(".", width-filled)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%5.1f%%", v*100) }

// Frac formats a fraction with two decimals, Fig. 2 style.
func Frac(v float64) string { return fmt.Sprintf("%.2f", v) }

// PaperVsMeasured renders one comparison row: a metric name, the value
// the paper reports, and the value this reproduction measured.
func PaperVsMeasured(name string, paper, measured string) string {
	return fmt.Sprintf("  %-46s paper %-12s measured %s", name, paper, measured)
}

// Section renders a titled block.
func Section(title, body string) string {
	var b strings.Builder
	b.WriteString("== " + title + " ==\n")
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteString("\n")
	}
	return b.String()
}
