package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"Country", "Share"}}
	tab.AddRow("UY", "0.98")
	tab.AddRow("DE", "0.05")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "Country") {
		t.Fatalf("header missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator missing: %q", lines[2])
	}
	// Columns must be aligned: "UY" padded to the header width.
	if !strings.HasPrefix(lines[3], "UY     ") {
		t.Fatalf("padding wrong: %q", lines[3])
	}
}

func TestTableWidthFollowsWidestCell(t *testing.T) {
	tab := &Table{Header: []string{"X"}}
	tab.AddRow("a-much-longer-cell")
	out := tab.String()
	if !strings.Contains(out, "------------------") {
		t.Fatalf("separator shorter than widest cell:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5) = %q", got)
	}
	if got := Bar(0, 4); got != "...." {
		t.Errorf("Bar(0) = %q", got)
	}
	if got := Bar(1, 4); got != "####" {
		t.Errorf("Bar(1) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar clamps below: %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar clamps above: %q", got)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.123); got != " 12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Frac(0.4567); got != "0.46" {
		t.Errorf("Frac = %q", got)
	}
}

func TestPaperVsMeasured(t *testing.T) {
	line := PaperVsMeasured("third-party URLs", "62%", "61.4%")
	if !strings.Contains(line, "paper 62%") || !strings.Contains(line, "measured 61.4%") {
		t.Fatalf("line = %q", line)
	}
}

func TestSection(t *testing.T) {
	out := Section("Fig. 2", "body")
	if !strings.HasPrefix(out, "== Fig. 2 ==\n") || !strings.HasSuffix(out, "body\n") {
		t.Fatalf("section = %q", out)
	}
}
