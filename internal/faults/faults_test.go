package faults

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/fetch"
)

func TestParseProfileNamed(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ParseProfile(name)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ParseProfile(%q).Name = %q", name, p.Name)
		}
	}
	if p, err := ParseProfile("AGGRESSIVE"); err != nil || p.Name != "aggressive" {
		t.Errorf("named profiles should be case-insensitive: %+v, %v", p, err)
	}
	if p, err := ParseProfile(""); err != nil || p.Enabled() {
		t.Errorf("empty spec should be the off profile: %+v, %v", p, err)
	}
	if p, _ := ParseProfile("off"); p.Enabled() {
		t.Error("off profile reports Enabled")
	}
	if p, _ := ParseProfile("mild"); !p.Enabled() {
		t.Error("mild profile reports disabled")
	}
}

func TestParseProfileSpec(t *testing.T) {
	p, err := ParseProfile("timeout=0.25, reset=0.5,5xx=1,slowdelay=7ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Timeout != 0.25 || p.Reset != 0.5 || p.HTTP5xx != 1 || p.SlowDelay != 7*time.Millisecond {
		t.Errorf("parsed %+v", p)
	}
	for _, bad := range []string{"timeout", "timeout=2", "timeout=x", "bogus=0.1", "slowdelay=fast"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}

// TestPlanDeterminism: equal (seed, profile) pairs must make identical
// decisions; different seeds must diverge somewhere.
func TestPlanDeterminism(t *testing.T) {
	prof := namedProfiles["aggressive"]
	a := NewPlan(7, prof)
	b := NewPlan(7, prof)
	c := NewPlan(8, prof)
	hosts := []string{"www.gub.uy", "mx.gov.example", "a", "b", "c", "d", "e", "f"}
	diverged := false
	for _, h := range hosts {
		for attempt := 0; attempt < 5; attempt++ {
			fa, fb := a.FetchFault(h, attempt), b.FetchFault(h, attempt)
			if fa != fb {
				t.Fatalf("same seed diverged for %s/%d: %+v vs %+v", h, attempt, fa, fb)
			}
			da, db := a.DNSFault(h, attempt), b.DNSFault(h, attempt)
			if (da == nil) != (db == nil) {
				t.Fatalf("same seed DNS diverged for %s/%d", h, attempt)
			}
			if fa != c.FetchFault(h, attempt) {
				diverged = true
			}
			if a.EgressFlap(h, attempt) != b.EgressFlap(h, attempt) {
				t.Fatalf("same seed flap diverged for %s/%d", h, attempt)
			}
		}
	}
	if !diverged {
		t.Error("seeds 7 and 8 made identical decisions across all probes")
	}
}

// TestPlanFaultRates sanity-checks that a rate-1.0 profile always
// faults and a zero profile never does.
func TestPlanFaultRates(t *testing.T) {
	always := NewPlan(1, Profile{Timeout: 1})
	never := NewPlan(1, Profile{})
	for i := 0; i < 50; i++ {
		h := strings.Repeat("h", i+1) + ".gov"
		if f := always.FetchFault(h, i); f.Kind != KindTimeout {
			t.Fatalf("timeout=1.0 produced %+v", f)
		}
		if f := never.FetchFault(h, i); f.Kind != KindNone {
			t.Fatalf("empty profile produced %+v", f)
		}
	}
}

// TestDeadHostPersists: a dead host is dead on every attempt (retries
// cannot heal it), while per-attempt timeouts can clear.
func TestDeadHostPersists(t *testing.T) {
	p := NewPlan(3, Profile{DeadHost: 0.2})
	var dead string
	for i := 0; i < 100 && dead == ""; i++ {
		h := fmt.Sprintf("h%d.gov", i)
		if p.FetchFault(h, 0).Kind == KindTimeout {
			dead = h
		}
	}
	if dead == "" {
		t.Fatal("no dead host among 100 at rate 0.2 — roll() is not uniform")
	}
	for attempt := 0; attempt < 10; attempt++ {
		if p.FetchFault(dead, attempt).Kind != KindTimeout {
			t.Fatalf("dead host %s healed at attempt %d", dead, attempt)
		}
	}
}

// innerFetcher records calls and returns a canned page.
type innerFetcher struct {
	calls int
	body  string
}

func (f *innerFetcher) Fetch(ctx context.Context, url string) (*fetch.Response, error) {
	f.calls++
	return &fetch.Response{
		Status: 200, ContentType: "text/html",
		Body: []byte(f.body), BodySize: int64(len(f.body)),
	}, nil
}

func TestFetcherInjectsTimeout(t *testing.T) {
	in := &innerFetcher{body: "<html></html>"}
	f := &Fetcher{Inner: in, Plan: NewPlan(1, Profile{Timeout: 1})}
	_, err := f.Fetch(context.Background(), "https://x.gov/")
	if err == nil {
		t.Fatal("no error injected")
	}
	var te interface{ Timeout() bool }
	if !errors.As(err, &te) || !te.Timeout() {
		t.Fatalf("injected error %v is not a timeout", err)
	}
	if fetch.ClassifyError(err) != fetch.FailTimeout {
		t.Errorf("classified as %q", fetch.ClassifyError(err))
	}
	if in.calls != 0 {
		t.Errorf("inner fetcher reached %d times through a timeout", in.calls)
	}
}

func TestFetcherInjectsReset(t *testing.T) {
	f := &Fetcher{Inner: &innerFetcher{}, Plan: NewPlan(1, Profile{Reset: 1})}
	_, err := f.Fetch(context.Background(), "https://x.gov/")
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("injected reset %v does not unwrap to ECONNRESET", err)
	}
	if fetch.ClassifyError(err) != fetch.FailReset {
		t.Errorf("classified as %q", fetch.ClassifyError(err))
	}
}

func TestFetcherInjects5xx(t *testing.T) {
	f := &Fetcher{Inner: &innerFetcher{}, Plan: NewPlan(1, Profile{HTTP5xx: 1})}
	resp, err := f.Fetch(context.Background(), "https://x.gov/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status < 500 || resp.Status > 503 {
		t.Fatalf("injected status %d", resp.Status)
	}
	if fetch.ClassifyResponse(resp) != fetch.Fail5xx {
		t.Errorf("classified as %q", fetch.ClassifyResponse(resp))
	}
}

func TestFetcherTruncates(t *testing.T) {
	in := &innerFetcher{body: strings.Repeat("x", 100)}
	f := &Fetcher{Inner: in, Plan: NewPlan(1, Profile{Truncate: 1})}
	resp, err := f.Fetch(context.Background(), "https://x.gov/")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || len(resp.Body) != 50 || resp.BodySize != 50 {
		t.Fatalf("truncation: Truncated=%v len=%d size=%d", resp.Truncated, len(resp.Body), resp.BodySize)
	}
	if fetch.ClassifyResponse(resp) != fetch.FailTruncated {
		t.Errorf("classified as %q", fetch.ClassifyResponse(resp))
	}
}

func TestFetcherSlowRespectsContext(t *testing.T) {
	in := &innerFetcher{body: "ok"}
	f := &Fetcher{Inner: in, Plan: NewPlan(1, Profile{Slow: 1, SlowDelay: time.Hour})}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.Fetch(ctx, "https://x.gov/")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("slow fault ignored cancellation: %v", err)
	}
	if in.calls != 0 {
		t.Error("inner fetch ran despite cancelled slow response")
	}

	// With a sane delay the response goes through.
	f.Plan = NewPlan(1, Profile{Slow: 1, SlowDelay: time.Microsecond})
	resp, err := f.Fetch(context.Background(), "https://x.gov/")
	if err != nil || resp.Status != 200 {
		t.Fatalf("slow response did not recover: %v %+v", err, resp)
	}
}

// TestFetcherHealsOnRetry: with a mid-rate profile, find a host whose
// attempt-0 fault clears on a later attempt and verify FetchAttempt
// reflects it — the mechanism the Retrier relies on.
func TestFetcherHealsOnRetry(t *testing.T) {
	plan := NewPlan(11, Profile{Timeout: 0.5})
	in := &innerFetcher{body: "ok"}
	f := &Fetcher{Inner: in, Plan: plan}
	for i := 0; i < 100; i++ {
		h := fmt.Sprintf("h%d.gov", i)
		url := "https://" + h + "/"
		if plan.FetchFault(h, 0).Kind != KindTimeout || plan.FetchFault(h, 1).Kind != KindNone {
			continue
		}
		if _, err := f.FetchAttempt(context.Background(), url, 0); err == nil {
			t.Fatalf("%s attempt 0 should time out", h)
		}
		resp, err := f.FetchAttempt(context.Background(), url, 1)
		if err != nil || resp.Status != 200 {
			t.Fatalf("%s attempt 1 should heal: %v", h, err)
		}
		return
	}
	t.Fatal("no heal-on-attempt-1 host among 100 at rate 0.5 — attempts do not re-roll")
}

func TestServfailClassification(t *testing.T) {
	err := NewPlan(1, Profile{DNSServfail: 1}).DNSFault("x.gov", 0)
	if err == nil {
		t.Fatal("servfail=1.0 injected nothing")
	}
	if fetch.ClassifyError(err) != fetch.FailDNS {
		t.Errorf("classified as %q", fetch.ClassifyError(err))
	}
	if !fetch.RetryableError(err) {
		t.Error("injected SERVFAIL should be transient/retryable")
	}
}

func TestHostOf(t *testing.T) {
	for raw, want := range map[string]string{
		"https://www.gub.uy/path": "www.gub.uy",
		"not a url":               "not a url",
	} {
		if got := hostOf(raw); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", raw, got, want)
		}
	}
}
