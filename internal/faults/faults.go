// Package faults is the deterministic fault-injection layer for chaos
// runs. The paper's harness survived a hostile live web — unreachable
// sites, flaky VPN egresses, truncated transfers, lame DNS — while our
// synthetic world is pathologically healthy; this package makes the
// world hostile on demand, and does it reproducibly: every fault
// decision is a pure function of (fault seed, subject, attempt), hashed
// rather than drawn from a shared random stream, so the same seed
// yields byte-identical fault plans at any concurrency and a chaos run
// is as replayable as a clean one.
//
// Three injection points cover the fetch/resolve path:
//
//   - Fetcher wraps any fetch.Fetcher with per-host faults: timeouts,
//     connection resets, HTTP 5xx, truncated bodies, slow responses.
//   - Plan.DNSFault injects SERVFAIL into hostname resolution (the
//     core pipeline's resolver and dnswire.Resolver both consult it).
//   - Plan.EgressFlap makes a vantage's VPN egress fail location
//     validation, exercising the pipeline's bounded re-connection.
//
// Faults are per-attempt: attempt 2 hashes differently from attempt 0,
// so a retry can genuinely recover — except for dead hosts, which are
// chosen per host and never answer.
package faults

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fetch"
)

// Kind names one injectable fault.
type Kind string

// The fault kinds.
const (
	KindNone     Kind = ""
	KindTimeout  Kind = "timeout"
	KindReset    Kind = "reset"
	KindHTTP5xx  Kind = "5xx"
	KindTruncate Kind = "truncated"
	KindSlow     Kind = "slow"
	KindServfail Kind = "servfail"
	KindFlap     Kind = "flap"
)

// Profile sets the injection rate of each fault kind, each an
// independent per-attempt probability in [0, 1].
type Profile struct {
	Name string

	Timeout  float64 // fetch times out
	Reset    float64 // connection reset mid-transfer
	HTTP5xx  float64 // upstream answers 500/502/503
	Truncate float64 // body cut in half
	Slow     float64 // response delayed by SlowDelay

	// DeadHost is the per-host probability that a host never answers
	// at all — the one persistent fault, immune to retries.
	DeadHost float64

	// DNSServfail is the per-attempt probability a resolution returns
	// SERVFAIL.
	DNSServfail float64

	// EgressFlap is the per-attempt probability that a freshly
	// connected VPN egress fails location validation.
	EgressFlap float64

	// SlowDelay is how long a slow response stalls; 0 means 2ms (the
	// synthetic web answers in microseconds, so this is already an
	// order-of-magnitude degradation without slowing the suite).
	SlowDelay time.Duration
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.Timeout > 0 || p.Reset > 0 || p.HTTP5xx > 0 || p.Truncate > 0 ||
		p.Slow > 0 || p.DeadHost > 0 || p.DNSServfail > 0 || p.EgressFlap > 0
}

func (p Profile) slowDelay() time.Duration {
	if p.SlowDelay == 0 {
		return 2 * time.Millisecond
	}
	return p.SlowDelay
}

// The named profiles: Mild approximates a healthy production crawl
// (occasional transient noise); Aggressive approximates the worst the
// paper's harness met — double-digit failure rates on every axis —
// and is what the chaos suite runs under.
var namedProfiles = map[string]Profile{
	"off": {Name: "off"},
	"mild": {
		Name:    "mild",
		Timeout: 0.01, Reset: 0.01, HTTP5xx: 0.02, Truncate: 0.01, Slow: 0.02,
		DeadHost: 0.005, DNSServfail: 0.01, EgressFlap: 0.05,
	},
	"aggressive": {
		Name:    "aggressive",
		Timeout: 0.10, Reset: 0.08, HTTP5xx: 0.10, Truncate: 0.05, Slow: 0.05,
		DeadHost: 0.02, DNSServfail: 0.10, EgressFlap: 0.30,
	},
}

// ParseProfile resolves a -fault-profile flag value: a named profile
// ("off", "mild", "aggressive") or a comma-separated key=value spec
// over the rate fields, e.g. "timeout=0.2,reset=0.1,flap=0.5".
// Recognised keys: timeout, reset, 5xx, truncate, slow, dead,
// servfail, flap, slowdelay (a duration).
func ParseProfile(spec string) (Profile, error) {
	spec = strings.TrimSpace(spec)
	if p, ok := namedProfiles[strings.ToLower(spec)]; ok {
		return p, nil
	}
	p := Profile{Name: spec}
	if spec == "" {
		p.Name = "off"
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Profile{}, fmt.Errorf("faults: bad profile term %q (want key=value or a profile name)", kv)
		}
		if key == "slowdelay" {
			d, err := time.ParseDuration(val)
			if err != nil {
				return Profile{}, fmt.Errorf("faults: bad slowdelay %q: %v", val, err)
			}
			p.SlowDelay = d
			continue
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return Profile{}, fmt.Errorf("faults: bad rate %q for %q (want 0..1)", val, key)
		}
		switch key {
		case "timeout":
			p.Timeout = rate
		case "reset":
			p.Reset = rate
		case "5xx":
			p.HTTP5xx = rate
		case "truncate":
			p.Truncate = rate
		case "slow":
			p.Slow = rate
		case "dead":
			p.DeadHost = rate
		case "servfail":
			p.DNSServfail = rate
		case "flap":
			p.EgressFlap = rate
		default:
			return Profile{}, fmt.Errorf("faults: unknown fault kind %q", key)
		}
	}
	return p, nil
}

// ProfileNames lists the named profiles for usage strings.
func ProfileNames() []string {
	names := make([]string, 0, len(namedProfiles))
	for n := range namedProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Plan is a seeded fault plan: the deterministic oracle every
// injection point consults. Stateless and safe for concurrent use.
type Plan struct {
	seed    int64
	Profile Profile
}

// NewPlan builds a plan. The same (seed, profile) pair always yields
// the same faults.
func NewPlan(seed int64, p Profile) *Plan {
	return &Plan{seed: seed, Profile: p}
}

// Seed reports the plan's fault seed.
func (p *Plan) Seed() int64 { return p.seed }

// roll returns a uniform-ish value in [0, 1) that is a pure function
// of the plan seed and label — the same construction netsim uses for
// ping jitter, and for the same reason: no shared stream means no
// scheduling sensitivity.
func (p *Plan) roll(label string) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.seed))
	h.Write(buf[:])
	h.Write([]byte(label))
	return float64(h.Sum64()%1e6) / 1e6
}

// Fault is one decided fault.
type Fault struct {
	Kind   Kind
	Status int           // for KindHTTP5xx
	Delay  time.Duration // for KindSlow
}

// attemptLabel keys a per-attempt decision.
func attemptLabel(kind, subject string, attempt int) string {
	return kind + "/" + subject + "/" + strconv.Itoa(attempt)
}

// FetchFault decides the fault (if any) for fetching from host on the
// given retry attempt. Kinds are tested in a fixed priority order so
// the decision is single-valued.
func (p *Plan) FetchFault(host string, attempt int) Fault {
	pr := p.Profile
	if pr.DeadHost > 0 && p.roll("dead/"+host) < pr.DeadHost {
		return Fault{Kind: KindTimeout} // dead hosts time out on every attempt
	}
	if pr.Timeout > 0 && p.roll(attemptLabel("timeout", host, attempt)) < pr.Timeout {
		return Fault{Kind: KindTimeout}
	}
	if pr.Reset > 0 && p.roll(attemptLabel("reset", host, attempt)) < pr.Reset {
		return Fault{Kind: KindReset}
	}
	if pr.HTTP5xx > 0 && p.roll(attemptLabel("5xx", host, attempt)) < pr.HTTP5xx {
		statuses := [3]int{500, 502, 503}
		pick := int(p.roll(attemptLabel("5xx-status", host, attempt)) * 3)
		if pick > 2 {
			pick = 2
		}
		return Fault{Kind: KindHTTP5xx, Status: statuses[pick]}
	}
	if pr.Truncate > 0 && p.roll(attemptLabel("truncate", host, attempt)) < pr.Truncate {
		return Fault{Kind: KindTruncate}
	}
	if pr.Slow > 0 && p.roll(attemptLabel("slow", host, attempt)) < pr.Slow {
		return Fault{Kind: KindSlow, Delay: pr.slowDelay()}
	}
	return Fault{}
}

// DNSFault returns a SERVFAIL error for resolving host on the given
// attempt, or nil.
func (p *Plan) DNSFault(host string, attempt int) error {
	if pr := p.Profile; pr.DNSServfail > 0 &&
		p.roll(attemptLabel("servfail", host, attempt)) < pr.DNSServfail {
		return &ServfailError{Host: host}
	}
	return nil
}

// ResolverHook adapts DNSFault to the dnswire.Resolver fault hook.
func (p *Plan) ResolverHook() func(name string, attempt int) error {
	return p.DNSFault
}

// EgressFlap reports whether the VPN egress connected for country on
// the given connection attempt flaps during location validation.
func (p *Plan) EgressFlap(country string, attempt int) bool {
	pr := p.Profile
	return pr.EgressFlap > 0 && p.roll(attemptLabel("flap", country, attempt)) < pr.EgressFlap
}

// TimeoutError is an injected fetch timeout; it satisfies the
// net.Error timeout contract so classification treats it like a real
// deadline expiry.
type TimeoutError struct{ Host string }

func (e *TimeoutError) Error() string   { return fmt.Sprintf("faults: %s: i/o timeout (injected)", e.Host) }
func (e *TimeoutError) Timeout() bool   { return true }
func (e *TimeoutError) Temporary() bool { return true }

// ResetError is an injected connection reset; it unwraps to
// syscall.ECONNRESET so errors.Is-based classification matches it
// exactly like a real reset.
type ResetError struct{ Host string }

func (e *ResetError) Error() string {
	return fmt.Sprintf("faults: %s: connection reset by peer (injected)", e.Host)
}
func (e *ResetError) Unwrap() error { return syscall.ECONNRESET }

// ServfailError is an injected DNS SERVFAIL: a dns-class failure that
// is nonetheless transient, like a lame upstream.
type ServfailError struct{ Host string }

func (e *ServfailError) Error() string            { return fmt.Sprintf("faults: SERVFAIL for %s (injected)", e.Host) }
func (e *ServfailError) FailKind() fetch.FailKind { return fetch.FailDNS }
func (e *ServfailError) Transient() bool          { return true }

// hostOf extracts the hostname a fault plan keys on; unparseable URLs
// fault as their raw string.
func hostOf(raw string) string {
	if u, err := url.Parse(raw); err == nil && u.Hostname() != "" {
		return u.Hostname()
	}
	return raw
}
