package faults

import (
	"context"
	"time"

	"repro/internal/fetch"
	"repro/internal/metrics"
)

// Fetcher injects the plan's faults in front of any fetch.Fetcher. It
// is attempt-aware: the Retrier passes the retry attempt through
// FetchAttempt, and since fault decisions hash the attempt number, a
// host that timed out on attempt 0 may answer on attempt 1 — with the
// same seed always healing (or not) at the same attempt.
type Fetcher struct {
	Inner fetch.Fetcher
	Plan  *Plan
	// Metrics, when non-nil, receives the injection ledger. Decisions
	// hash (fault seed, host, attempt) and attempt sequences are
	// deterministic, so the ledger is golden-comparable.
	Metrics *metrics.FaultMetrics
}

// Fetch implements fetch.Fetcher as attempt 0.
func (f *Fetcher) Fetch(ctx context.Context, url string) (*fetch.Response, error) {
	return f.FetchAttempt(ctx, url, 0)
}

// FetchAttempt implements fetch.AttemptFetcher.
func (f *Fetcher) FetchAttempt(ctx context.Context, url string, attempt int) (*fetch.Response, error) {
	host := hostOf(url)
	ft := f.Plan.FetchFault(host, attempt)
	if ft.Kind != KindNone {
		f.Metrics.Inject(string(ft.Kind))
	}
	switch ft.Kind {
	case KindTimeout:
		return nil, &TimeoutError{Host: host}
	case KindReset:
		return nil, &ResetError{Host: host}
	case KindHTTP5xx:
		return &fetch.Response{
			Status:      ft.Status,
			ContentType: "text/html",
			Body:        []byte("<html><body>injected upstream error</body></html>"),
		}, nil
	case KindSlow:
		if !sleepCtx(ctx, ft.Delay) {
			return nil, ctx.Err()
		}
	}
	resp, err := f.fetchInner(ctx, url, attempt)
	if err != nil || resp == nil {
		return resp, err
	}
	if ft.Kind == KindTruncate && len(resp.Body) > 0 {
		cut := len(resp.Body) / 2
		resp.Body = resp.Body[:cut]
		resp.BodySize = int64(cut)
		resp.Truncated = true
	}
	return resp, err
}

func (f *Fetcher) fetchInner(ctx context.Context, url string, attempt int) (*fetch.Response, error) {
	if af, ok := f.Inner.(fetch.AttemptFetcher); ok {
		return af.FetchAttempt(ctx, url, attempt)
	}
	return f.Inner.Fetch(ctx, url)
}

// sleepCtx waits d or until ctx is done, reporting whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
