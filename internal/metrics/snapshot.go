package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Snapshot is a frozen view of a registry, split along the line the
// package doc draws: Deterministic is golden-comparable (equal seeds
// give equal bytes at any concurrency shape), Runtime is wall-clock
// and scheduling-shape observation. TestDeterministicSnapshotHasNoTimings
// enforces that no duration-typed field can ever migrate into the
// Deterministic half.
type Snapshot struct {
	Deterministic Deterministic `json:"deterministic"`
	Runtime       Runtime       `json:"runtime"`
}

// Deterministic is the golden-comparable half of the snapshot: integer
// counters only, all pure functions of (seed, fault seed, profile).
type Deterministic struct {
	Sched    SchedCounters    `json:"sched"`
	Cache    CacheCounters    `json:"cache"`
	Geo      GeoCounters      `json:"geo"`
	Fetch    FetchCounters    `json:"fetch"`
	Faults   FaultCounters    `json:"faults"`
	Crawl    CrawlCounters    `json:"crawl"`
	Pipeline PipelineCounters `json:"pipeline"`
}

// SchedCounters is the deterministic scheduler slice.
type SchedCounters struct {
	ItemsScheduled int64 `json:"items_scheduled"`
	ItemsRun       int64 `json:"items_run"`
}

// CacheCounters is the deterministic resolution-cache slice.
type CacheCounters struct {
	Lookups         int64 `json:"lookups"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	NegativeEntries int64 `json:"negative_entries"`
	NegativeHits    int64 `json:"negative_hits"`
}

// GeoCounters is the deterministic slice of the two geolocation
// verdict caches (probing's unicast and anycast single-flight maps).
type GeoCounters struct {
	Unicast CacheCounters `json:"unicast"`
	Anycast CacheCounters `json:"anycast"`
}

// FetchCounters is the deterministic fetch/retry slice.
type FetchCounters struct {
	Attempts      int64            `json:"attempts"`
	Retries       int64            `json:"retries"`
	RetriesByKind map[string]int64 `json:"retries_by_kind,omitempty"`
}

// FaultCounters is the injected-fault ledger.
type FaultCounters struct {
	Injections map[string]int64 `json:"injections,omitempty"`
}

// CrawlCounters is the deterministic frontier-admission slice.
type CrawlCounters struct {
	FrontierAdmitted  int64   `json:"frontier_admitted"`
	FrontierTruncated int64   `json:"frontier_truncated"`
	URLsByDepth       []int64 `json:"urls_by_depth,omitempty"`
}

// PipelineCounters is the deterministic pipeline slice, with one
// accounting row per country.
type PipelineCounters struct {
	Annotations     int64                      `json:"annotations"`
	Records         int64                      `json:"records"`
	Failures        int64                      `json:"failures"`
	FailuresByKind  map[string]int64           `json:"failures_by_kind,omitempty"`
	CountriesRun    int64                      `json:"countries_run"`
	CountriesFailed int64                      `json:"countries_failed"`
	Countries       map[string]CountryCounters `json:"countries,omitempty"`
}

// Runtime is the wall-clock half: durations, queue pressure,
// occupancy, coalesce counts. Reported, never golden-compared.
type Runtime struct {
	Sched     SchedRuntime                 `json:"sched"`
	Cache     CacheRuntime                 `json:"cache"`
	Geo       GeoRuntime                   `json:"geo"`
	Fetch     FetchRuntime                 `json:"fetch"`
	Pipeline  PipelineRuntime              `json:"pipeline"`
	Shard     ShardRuntime                 `json:"shard"`
	Serve     ServeRuntime                 `json:"serve"`
	Stages    map[string]HistogramSnapshot `json:"stages,omitempty"`
	Countries map[string]CountryTimings    `json:"countries,omitempty"`
}

// SchedRuntime is the scheduling-shape slice.
type SchedRuntime struct {
	TasksSubmitted       int64             `json:"tasks_submitted"`
	QueueDepthHighWater  int64             `json:"queue_depth_high_water"`
	WorkersBusyHighWater int64             `json:"workers_busy_high_water"`
	QueueWait            HistogramSnapshot `json:"queue_wait"`
}

// CacheRuntime is the interleaving-dependent cache slice.
type CacheRuntime struct {
	Coalesced int64 `json:"coalesced"`
}

// GeoRuntime is the interleaving-dependent slice of the geolocation
// caches.
type GeoRuntime struct {
	Unicast CacheRuntime `json:"unicast"`
	Anycast CacheRuntime `json:"anycast"`
}

// FetchRuntime is the budget-race slice.
type FetchRuntime struct {
	BudgetDenied int64 `json:"budget_denied"`
}

// PipelineRuntime is the merge-sink occupancy slice: the peak number
// of records parked in the streaming sink waiting for an earlier
// country. Which countries park depends on interleaving, but the bound
// — strictly below the study's total record count — is the streaming
// memory guarantee.
type PipelineRuntime struct {
	RecordsInFlightHighWater int64 `json:"records_in_flight_high_water"`
}

// ShardRuntime is the crash-recovery slice: restarts and quarantines
// count real-world damage (process crashes, torn files), so they can
// never be deterministic — a healthy run reports zeros.
type ShardRuntime struct {
	Restarts               int64 `json:"restarts"`
	Exhausted              int64 `json:"exhausted"`
	CheckpointsQuarantined int64 `json:"checkpoints_quarantined"`
}

// ServeRuntime is the serving-daemon slice: request traffic, response
// cache temperature, handler occupancy and snapshot reloads — all of
// it driven by clients and operators, never by the seed.
type ServeRuntime struct {
	Requests          map[string]int64             `json:"requests,omitempty"`
	Statuses          map[string]int64             `json:"statuses,omitempty"`
	CacheHits         int64                        `json:"cache_hits"`
	CacheMisses       int64                        `json:"cache_misses"`
	CacheCoalesced    int64                        `json:"cache_coalesced"`
	NotModified       int64                        `json:"not_modified"`
	InFlightHighWater int64                        `json:"in_flight_high_water"`
	Reloads           int64                        `json:"reloads"`
	ReloadFailures    int64                        `json:"reload_failures"`
	Latency           map[string]HistogramSnapshot `json:"latency,omitempty"`
}

// Active reports whether the daemon served anything — the Text render
// skips the serve section for ordinary pipeline runs.
func (s ServeRuntime) Active() bool {
	return len(s.Requests) > 0 || s.Reloads > 0 || s.ReloadFailures > 0
}

// Bucket is one histogram bucket; LE == -1 marks the overflow bucket.
type Bucket struct {
	LE time.Duration `json:"le"`
	N  int64         `json:"n"`
}

// HistogramSnapshot is a frozen duration histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Mean    time.Duration `json:"mean"`
	Max     time.Duration `json:"max"`
	Buckets []Bucket      `json:"buckets,omitempty"`
}

// Snapshot freezes the registry. Concurrent recording during the call
// is safe; the snapshot is then fully detached from the registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot

	s.Deterministic.Sched = SchedCounters{
		ItemsScheduled: r.Sched.ItemsScheduled.Load(),
		ItemsRun:       r.Sched.ItemsRun.Load(),
	}
	s.Deterministic.Cache = CacheCounters{
		Lookups:         r.Cache.Lookups.Load(),
		Hits:            r.Cache.Hits.Load(),
		Misses:          r.Cache.Misses.Load(),
		NegativeEntries: r.Cache.NegativeEntries.Load(),
		NegativeHits:    r.Cache.NegativeHits.Load(),
	}
	detCache := func(m *CacheMetrics) CacheCounters {
		return CacheCounters{
			Lookups:         m.Lookups.Load(),
			Hits:            m.Hits.Load(),
			Misses:          m.Misses.Load(),
			NegativeEntries: m.NegativeEntries.Load(),
			NegativeHits:    m.NegativeHits.Load(),
		}
	}
	s.Deterministic.Geo = GeoCounters{
		Unicast: detCache(&r.Geo.Unicast),
		Anycast: detCache(&r.Geo.Anycast),
	}
	s.Deterministic.Fetch = FetchCounters{
		Attempts:      r.Fetch.Attempts.Load(),
		Retries:       r.Fetch.Retries.Load(),
		RetriesByKind: r.Fetch.RetriesByKind.snapshot(),
	}
	s.Deterministic.Faults = FaultCounters{
		Injections: r.Faults.Injections.snapshot(),
	}
	s.Deterministic.Crawl = CrawlCounters{
		FrontierAdmitted:  r.Crawl.FrontierAdmitted.Load(),
		FrontierTruncated: r.Crawl.FrontierTruncated.Load(),
		URLsByDepth:       r.Crawl.urlsByDepth(),
	}
	s.Deterministic.Pipeline = PipelineCounters{
		Annotations:     r.Pipeline.Annotations.Load(),
		Records:         r.Pipeline.Records.Load(),
		Failures:        r.Pipeline.Failures.Load(),
		FailuresByKind:  r.Pipeline.FailuresByKind.snapshot(),
		CountriesRun:    r.Pipeline.CountriesRun.Load(),
		CountriesFailed: r.Pipeline.CountriesFailed.Load(),
		Countries:       r.Pipeline.countrySnapshots(),
	}

	s.Runtime.Sched = SchedRuntime{
		TasksSubmitted:       r.Sched.TasksSubmitted.Load(),
		QueueDepthHighWater:  r.Sched.QueueDepth.HighWater(),
		WorkersBusyHighWater: r.Sched.WorkersBusy.HighWater(),
		QueueWait:            r.Sched.QueueWait.snapshot(),
	}
	s.Runtime.Cache = CacheRuntime{Coalesced: r.Cache.Coalesced.Load()}
	s.Runtime.Geo = GeoRuntime{
		Unicast: CacheRuntime{Coalesced: r.Geo.Unicast.Coalesced.Load()},
		Anycast: CacheRuntime{Coalesced: r.Geo.Anycast.Coalesced.Load()},
	}
	s.Runtime.Fetch = FetchRuntime{BudgetDenied: r.Fetch.BudgetDenied.Load()}
	s.Runtime.Pipeline = PipelineRuntime{RecordsInFlightHighWater: r.Pipeline.InFlight.HighWater()}
	s.Runtime.Shard = ShardRuntime{
		Restarts:               r.Shard.Restarts.Load(),
		Exhausted:              r.Shard.Exhausted.Load(),
		CheckpointsQuarantined: r.Shard.Quarantined.Load(),
	}
	s.Runtime.Serve = ServeRuntime{
		Requests:          r.Serve.Requests.snapshot(),
		Statuses:          r.Serve.Statuses.snapshot(),
		CacheHits:         r.Serve.CacheHits.Load(),
		CacheMisses:       r.Serve.CacheMisses.Load(),
		CacheCoalesced:    r.Serve.CacheCoalesced.Load(),
		NotModified:       r.Serve.NotModified.Load(),
		InFlightHighWater: r.Serve.InFlight.HighWater(),
		Reloads:           r.Serve.Reloads.Load(),
		ReloadFailures:    r.Serve.ReloadFailures.Load(),
		Latency:           r.Serve.latencySnapshots(),
	}
	s.Runtime.Stages = r.Pipeline.stageSnapshots()
	s.Runtime.Countries = r.Pipeline.timingSnapshots()
	return s
}

// JSON renders the whole snapshot as indented JSON. Map keys are
// sorted by encoding/json, so equal deterministic halves render equal
// bytes.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DeterministicJSON renders only the golden-comparable half — the
// bytes the chaos suite asserts are identical across concurrency
// shapes for equal seeds.
func (s Snapshot) DeterministicJSON() ([]byte, error) {
	return json.MarshalIndent(s.Deterministic, "", "  ")
}

// Text renders the snapshot as aligned text: the deterministic ledger
// first, then the wall-clock observations, clearly fenced off from
// golden comparisons.
func (s Snapshot) Text() string {
	var b strings.Builder
	b.WriteString("deterministic counters (byte-identical for equal seeds at any concurrency)\n")
	d := s.Deterministic
	line := func(k string, v int64) { fmt.Fprintf(&b, "  %-36s %d\n", k, v) }
	vec := func(prefix string, m map[string]int64) {
		for _, k := range sortedKeys(m) {
			line(prefix+"["+k+"]", m[k])
		}
	}
	line("sched.items_scheduled", d.Sched.ItemsScheduled)
	line("sched.items_run", d.Sched.ItemsRun)
	line("cache.lookups", d.Cache.Lookups)
	line("cache.hits", d.Cache.Hits)
	line("cache.misses", d.Cache.Misses)
	line("cache.negative_entries", d.Cache.NegativeEntries)
	line("cache.negative_hits", d.Cache.NegativeHits)
	geoDet := func(prefix string, c CacheCounters) {
		line(prefix+".lookups", c.Lookups)
		line(prefix+".hits", c.Hits)
		line(prefix+".misses", c.Misses)
		line(prefix+".negative_entries", c.NegativeEntries)
		line(prefix+".negative_hits", c.NegativeHits)
	}
	geoDet("geo.unicast", d.Geo.Unicast)
	geoDet("geo.anycast", d.Geo.Anycast)
	line("fetch.attempts", d.Fetch.Attempts)
	line("fetch.retries", d.Fetch.Retries)
	vec("fetch.retries", d.Fetch.RetriesByKind)
	vec("faults.injections", d.Faults.Injections)
	line("crawl.frontier_admitted", d.Crawl.FrontierAdmitted)
	line("crawl.frontier_truncated", d.Crawl.FrontierTruncated)
	for depth, n := range d.Crawl.URLsByDepth {
		line(fmt.Sprintf("crawl.urls_by_depth[%d]", depth), n)
	}
	line("pipeline.annotations", d.Pipeline.Annotations)
	line("pipeline.records", d.Pipeline.Records)
	line("pipeline.failures", d.Pipeline.Failures)
	vec("pipeline.failures", d.Pipeline.FailuresByKind)
	line("pipeline.countries_run", d.Pipeline.CountriesRun)
	line("pipeline.countries_failed", d.Pipeline.CountriesFailed)

	if len(d.Pipeline.Countries) > 0 {
		b.WriteString("\nper-country deterministic counters\n")
		for _, code := range sortedKeys(d.Pipeline.Countries) {
			c := d.Pipeline.Countries[code]
			fmt.Fprintf(&b, "  %-3s attempted=%d records=%d failures=%d discarded=%d unusable=%d retries=%d vantage_attempts=%d\n",
				code, c.Attempted, c.Records, c.Failures, c.Discarded, c.Unusable, c.Retries, c.VantageAttempts)
		}
	}

	b.WriteString("\nwall-clock and scheduling-shape observations (excluded from golden comparisons)\n")
	rt := s.Runtime
	line("sched.tasks_submitted", rt.Sched.TasksSubmitted)
	line("sched.queue_depth_high_water", rt.Sched.QueueDepthHighWater)
	line("sched.workers_busy_high_water", rt.Sched.WorkersBusyHighWater)
	hist := func(k string, h HistogramSnapshot) {
		fmt.Fprintf(&b, "  %-36s count=%d mean=%v max=%v total=%v\n", k, h.Count, h.Mean, h.Max, h.Sum)
	}
	hist("sched.queue_wait", rt.Sched.QueueWait)
	line("cache.coalesced", rt.Cache.Coalesced)
	line("geo.unicast.coalesced", rt.Geo.Unicast.Coalesced)
	line("geo.anycast.coalesced", rt.Geo.Anycast.Coalesced)
	line("fetch.budget_denied", rt.Fetch.BudgetDenied)
	line("pipeline.records_in_flight_high_water", rt.Pipeline.RecordsInFlightHighWater)
	line("shard.restarts", rt.Shard.Restarts)
	line("shard.exhausted", rt.Shard.Exhausted)
	line("shard.checkpoints_quarantined", rt.Shard.CheckpointsQuarantined)
	if rt.Serve.Active() {
		vec("serve.requests", rt.Serve.Requests)
		vec("serve.statuses", rt.Serve.Statuses)
		line("serve.cache_hits", rt.Serve.CacheHits)
		line("serve.cache_misses", rt.Serve.CacheMisses)
		line("serve.cache_coalesced", rt.Serve.CacheCoalesced)
		line("serve.not_modified", rt.Serve.NotModified)
		line("serve.in_flight_high_water", rt.Serve.InFlightHighWater)
		line("serve.reloads", rt.Serve.Reloads)
		line("serve.reload_failures", rt.Serve.ReloadFailures)
		for _, ep := range sortedKeys(rt.Serve.Latency) {
			hist("serve.latency["+ep+"]", rt.Serve.Latency[ep])
		}
	}
	for _, stage := range sortedKeys(rt.Stages) {
		hist("stage."+stage, rt.Stages[stage])
	}
	if len(rt.Countries) > 0 {
		b.WriteString("\nper-country stage timings\n")
		for _, code := range sortedKeys(rt.Countries) {
			t := rt.Countries[code]
			fmt.Fprintf(&b, "  %-3s vantage=%v crawl=%v classify=%v annotate=%v\n",
				code, t.Vantage, t.Crawl, t.Classify, t.Annotate)
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
