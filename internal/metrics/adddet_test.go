package metrics

import (
	"bytes"
	"testing"
)

// TestAddDeterministicRoundTrip is the telescoping property the
// checkpoint deltas rely on: recording events live and replaying the
// resulting deterministic snapshot into a fresh registry must land on
// the same deterministic snapshot, for every counter family.
func TestAddDeterministicRoundTrip(t *testing.T) {
	r := New()
	r.Sched.ItemsScheduled.Add(9)
	r.Sched.ItemsRun.Add(9)

	r.Cache.Lookups.Add(10)
	r.Cache.Hits.Add(7)
	r.Cache.Misses.Add(3)
	r.Cache.NegativeEntries.Inc()
	r.Cache.NegativeHits.Add(2)
	r.Geo.Unicast.Lookups.Add(4)
	r.Geo.Unicast.Hits.Add(3)
	r.Geo.Unicast.Misses.Inc()
	r.Geo.Anycast.Lookups.Add(2)
	r.Geo.Anycast.Misses.Add(2)
	r.Geo.Anycast.NegativeEntries.Inc()

	r.Fetch.RecordAttempt()
	r.Fetch.RecordAttempt()
	r.Fetch.RecordRetry("timeout")
	r.Faults.Inject("reset")
	r.Faults.Inject("reset")
	r.Faults.Inject("servfail")

	r.Crawl.RecordLevel(0, 3, 1)
	r.Crawl.RecordLevel(2, 5, 0)
	r.Crawl.RecordLevel(99, 2, 0) // clamps into the deepest bucket

	r.Pipeline.RecordAnnotation()
	r.Pipeline.RecordCountry("US", CountryCounters{
		Attempted: 12, Records: 9, Failures: 2, Discarded: 1,
		Retries: 1, VantageAttempts: 1,
	}, false, map[string]int{"timeout": 2})
	r.Pipeline.RecordCountry("ZZ", CountryCounters{VantageAttempts: 3}, true, nil)

	want, err := r.Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}

	replay := New()
	replay.AddDeterministic(r.Snapshot().Deterministic)
	got, err := replay.Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("replayed deterministic snapshot diverged:\nwant %s\ngot  %s", want, got)
	}

	// Deltas are additive: replaying twice doubles every counter.
	replay.AddDeterministic(r.Snapshot().Deterministic)
	d := replay.Snapshot().Deterministic
	if d.Cache.Lookups != 20 || d.Fetch.Retries != 2 || d.Pipeline.CountriesRun != 4 {
		t.Fatalf("second replay did not add: %+v", d)
	}
}

// TestRecordsInFlightGauge covers the streaming memory bound's
// instrument: the gauge tracks parked record counts and its high-water
// mark survives into the runtime snapshot.
func TestRecordsInFlightGauge(t *testing.T) {
	r := New()
	r.Pipeline.RecordsInFlight(5)
	r.Pipeline.RecordsInFlight(3)
	r.Pipeline.RecordsInFlight(-5)
	r.Pipeline.RecordsInFlight(4)
	r.Pipeline.RecordsInFlight(-7)

	if got := r.Pipeline.InFlight.Value(); got != 0 {
		t.Fatalf("gauge value = %d, want 0 after all flushes", got)
	}
	snap := r.Snapshot()
	if got := snap.Runtime.Pipeline.RecordsInFlightHighWater; got != 8 {
		t.Fatalf("high water = %d, want 8", got)
	}

	// Nil-safe like every other recording method: a disabled registry
	// must not panic the sink.
	var pm *PipelineMetrics
	pm.RecordsInFlight(3)
}
