package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load() = %d, want 42", got)
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("Value() = %d, want 1", got)
	}
	if got := g.HighWater(); got != 3 {
		t.Errorf("HighWater() = %d, want 3", got)
	}
	// Going down never raises the mark; coming back up past it does.
	g.Add(-5)
	if got := g.HighWater(); got != 3 {
		t.Errorf("HighWater() after Add(-5) = %d, want 3", got)
	}
	g.Add(10)
	if got := g.HighWater(); got != 6 {
		t.Errorf("HighWater() after climb = %d, want 6", got)
	}
}

func TestGaugeConcurrentHighWater(t *testing.T) {
	var g Gauge
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("Value() = %d, want 0 after balanced inc/dec", got)
	}
	if hw := g.HighWater(); hw < 1 || hw > workers {
		t.Errorf("HighWater() = %d, want within [1, %d]", hw, workers)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	durs := []time.Duration{
		5 * time.Microsecond,   // bucket 0 (≤10µs)
		500 * time.Microsecond, // bucket 2 (≤1ms)
		5 * time.Millisecond,   // bucket 3 (≤10ms)
		2 * time.Second,        // overflow
	}
	for _, d := range durs {
		h.Observe(d)
	}
	s := h.snapshot()
	if s.Count != int64(len(durs)) {
		t.Errorf("Count = %d, want %d", s.Count, len(durs))
	}
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	if s.Sum != sum {
		t.Errorf("Sum = %v, want %v", s.Sum, sum)
	}
	if s.Max != 2*time.Second {
		t.Errorf("Max = %v, want 2s", s.Max)
	}
	if s.Mean != sum/time.Duration(len(durs)) {
		t.Errorf("Mean = %v, want %v", s.Mean, sum/time.Duration(len(durs)))
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.N
	}
	if bucketTotal != s.Count {
		t.Errorf("buckets sum to %d, want %d", bucketTotal, s.Count)
	}
	// The overflow bucket is last, marked LE == -1.
	last := s.Buckets[len(s.Buckets)-1]
	if last.LE != -1 || last.N != 1 {
		t.Errorf("overflow bucket = %+v, want {LE:-1 N:1}", last)
	}
}

func TestVec(t *testing.T) {
	var v Vec
	if snap := v.snapshot(); snap != nil {
		t.Errorf("empty vec snapshot = %v, want nil", snap)
	}
	if got := v.Load("missing"); got != 0 {
		t.Errorf("Load(missing) = %d, want 0", got)
	}
	v.Add("timeout", 2)
	v.Add("reset", 1)
	v.Add("timeout", 1)
	if got := v.Load("timeout"); got != 3 {
		t.Errorf("Load(timeout) = %d, want 3", got)
	}
	snap := v.snapshot()
	if len(snap) != 2 || snap["timeout"] != 3 || snap["reset"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestCrawlMetricsDepthTracking(t *testing.T) {
	var m CrawlMetrics
	m.RecordLevel(0, 10, 0)
	m.RecordLevel(2, 5, 3)
	if got := m.FrontierAdmitted.Load(); got != 15 {
		t.Errorf("FrontierAdmitted = %d, want 15", got)
	}
	if got := m.FrontierTruncated.Load(); got != 3 {
		t.Errorf("FrontierTruncated = %d, want 3", got)
	}
	want := []int64{10, 0, 5}
	got := m.urlsByDepth()
	if len(got) != len(want) {
		t.Fatalf("urlsByDepth = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("urlsByDepth = %v, want %v", got, want)
		}
	}
	// Out-of-range depths clamp instead of panicking, and an empty
	// level leaves the depth table untouched.
	m.RecordLevel(-4, 1, 0)
	m.RecordLevel(maxDepthTrack+10, 1, 0)
	m.RecordLevel(5, 0, 2)
	byDepth := m.urlsByDepth()
	if byDepth[0] != 11 || byDepth[maxDepthTrack-1] != 1 {
		t.Errorf("clamped depths not recorded: %v", byDepth)
	}
}

// TestNilSafeRecorders: every hot-path recording helper must tolerate a
// nil receiver, so disabled-metrics runs pay only a nil check.
func TestNilSafeRecorders(t *testing.T) {
	(*FetchMetrics)(nil).RecordAttempt()
	(*FetchMetrics)(nil).RecordRetry("timeout")
	(*FetchMetrics)(nil).RecordBudgetDenied()
	(*FaultMetrics)(nil).Inject("reset")
	(*CrawlMetrics)(nil).RecordLevel(1, 10, 2)
	(*PipelineMetrics)(nil).RecordAnnotation()
	(*PipelineMetrics)(nil).RecordCountry("US", CountryCounters{}, false, nil)
	(*PipelineMetrics)(nil).RecordCountryTimings("US", CountryTimings{})
	(*PipelineMetrics)(nil).ObserveStage("crawl", time.Millisecond)
}

func TestPipelineRecordCountryRollup(t *testing.T) {
	var m PipelineMetrics
	m.RecordCountry("US", CountryCounters{
		Attempted: 100, Records: 80, Failures: 15, Discarded: 3, Unusable: 2,
	}, false, map[string]int{"timeout": 10, "dns": 5})
	m.RecordCountry("NG", CountryCounters{VantageAttempts: 3}, true, nil)

	if got := m.CountriesRun.Load(); got != 2 {
		t.Errorf("CountriesRun = %d, want 2", got)
	}
	if got := m.CountriesFailed.Load(); got != 1 {
		t.Errorf("CountriesFailed = %d, want 1", got)
	}
	if got := m.Records.Load(); got != 80 {
		t.Errorf("Records = %d, want 80", got)
	}
	if got := m.Failures.Load(); got != 15 {
		t.Errorf("Failures = %d, want 15", got)
	}
	if got := m.FailuresByKind.Load("timeout"); got != 10 {
		t.Errorf("FailuresByKind[timeout] = %d, want 10", got)
	}
	rows := m.countrySnapshots()
	if len(rows) != 2 || rows["US"].Attempted != 100 || rows["NG"].VantageAttempts != 3 {
		t.Errorf("country rows = %+v", rows)
	}
}

func TestObserveStage(t *testing.T) {
	var m PipelineMetrics
	m.ObserveStage("crawl", 2*time.Millisecond)
	m.ObserveStage("crawl", 4*time.Millisecond)
	m.ObserveStage("annotate", time.Millisecond)
	stages := m.stageSnapshots()
	if len(stages) != 2 {
		t.Fatalf("stages = %v, want 2 entries", stages)
	}
	if got := stages["crawl"]; got.Count != 2 || got.Sum != 6*time.Millisecond {
		t.Errorf("crawl stage = %+v", got)
	}
}

// TestDeterministicJSONStable: two registries fed the same counts — in
// different orders and with different wall-clock observations — must
// render byte-identical deterministic halves, while the full JSON may
// differ. This is the property the chaos suite leans on.
func TestDeterministicJSONStable(t *testing.T) {
	feed := func(r *Registry, reverse bool, wait time.Duration) {
		kinds := []string{"timeout", "reset", "5xx"}
		if reverse {
			for i, j := 0, len(kinds)-1; i < j; i, j = i+1, j-1 {
				kinds[i], kinds[j] = kinds[j], kinds[i]
			}
		}
		for _, k := range kinds {
			r.Fetch.RecordRetry(k)
			r.Faults.Inject(k)
		}
		r.Sched.ItemsScheduled.Add(10)
		r.Sched.ItemsRun.Add(10)
		r.Sched.QueueWait.Observe(wait)
		r.Cache.Lookups.Add(5)
		r.Cache.Hits.Add(3)
		r.Cache.Misses.Add(2)
		r.Crawl.RecordLevel(1, 7, 1)
		r.Pipeline.RecordAnnotation()
		r.Pipeline.RecordCountry("UY", CountryCounters{Attempted: 7, Records: 7}, false, nil)
		r.Pipeline.RecordCountryTimings("UY", CountryTimings{Crawl: wait})
		r.Pipeline.ObserveStage("crawl", wait)
	}
	a, b := New(), New()
	feed(a, false, time.Millisecond)
	feed(b, true, 7*time.Millisecond)

	da, err := a.Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Errorf("deterministic halves diverged:\n%s\n---\n%s", da, db)
	}
	ja, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, jb) {
		t.Error("full snapshots identical despite different wall-clock observations")
	}
}

func TestSnapshotText(t *testing.T) {
	r := New()
	r.Fetch.RecordAttempt()
	r.Pipeline.RecordCountry("US", CountryCounters{Attempted: 3, Records: 3}, false, nil)
	r.Pipeline.RecordCountryTimings("US", CountryTimings{Vantage: time.Millisecond})
	r.Pipeline.ObserveStage("study", 10*time.Millisecond)
	text := r.Snapshot().Text()
	for _, want := range []string{
		"deterministic counters",
		"excluded from golden comparisons",
		"fetch.attempts",
		"US  attempted=3",
		"stage.study",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}
