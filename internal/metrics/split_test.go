package metrics

import (
	"reflect"
	"testing"
	"time"
)

// wallClockFields walks a snapshot type and returns the paths of every
// field whose type can carry wall-clock information: time.Duration,
// time.Time, or any float (means, rates and ratios are derived from
// timings or interleaving, never from seed-deterministic counts).
func wallClockFields(path string, typ reflect.Type) []string {
	switch typ {
	case reflect.TypeOf(time.Duration(0)), reflect.TypeOf(time.Time{}):
		return []string{path + " (" + typ.String() + ")"}
	}
	var out []string
	switch typ.Kind() {
	case reflect.Float32, reflect.Float64:
		out = append(out, path+" ("+typ.Kind().String()+")")
	case reflect.Struct:
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			out = append(out, wallClockFields(path+"."+f.Name, f.Type)...)
		}
	case reflect.Map:
		out = append(out, wallClockFields(path+"[key]", typ.Key())...)
		out = append(out, wallClockFields(path+"[]", typ.Elem())...)
	case reflect.Slice, reflect.Array, reflect.Pointer:
		out = append(out, wallClockFields(path+"[]", typ.Elem())...)
	}
	return out
}

// TestDeterministicSnapshotHasNoTimings enforces the package's split:
// no duration, timestamp or float field may ever migrate into the
// Deterministic half of the snapshot, because one such field silently
// breaks every golden comparison built on DeterministicJSON. Adding a
// timing to a metric means putting it in Runtime.
func TestDeterministicSnapshotHasNoTimings(t *testing.T) {
	for _, leak := range wallClockFields("Deterministic", reflect.TypeOf(Deterministic{})) {
		t.Errorf("wall-clock field in the golden-comparable snapshot half: %s", leak)
	}
	// Self-check: the same walker must flag the Runtime half's
	// histograms, or the assertion above would pass vacuously on a
	// walker bug.
	if got := wallClockFields("Runtime", reflect.TypeOf(Runtime{})); len(got) == 0 {
		t.Fatal("walker found no wall-clock fields even in the Runtime half")
	}
}
