// Package metrics is the pipeline's per-stage instrumentation: a
// low-overhead registry of atomic counters, gauges with high-water
// marks, and duration histograms, threaded through the scheduler, the
// resolution cache, the fetch/retry stack, the fault injector, and the
// crawler. Large-scale crawl-measurement systems (Akiwate et al.'s DNS
// dependency studies, Habib et al.'s longitudinal hosting census)
// treat per-stage accounting as the precondition for scaling
// collection; this package is that seam for the sharding and
// streaming-assembly work the ROADMAP names.
//
// The registry draws one hard line, enforced by a reflection test:
//
//   - Deterministic counters — task counts, cache hits/misses,
//     retries, fault injections, failure kinds, frontier admissions —
//     are pure functions of (seed, fault seed, profile). Equal seeds
//     must produce byte-identical deterministic snapshots at any
//     CountryConcurrency/FetchConcurrency shape, so they are safe for
//     golden comparisons and chaos replay checks.
//
//   - Runtime observations — wall-clock durations, queue-depth and
//     occupancy high-water marks, single-flight coalesce counts —
//     depend on worker interleaving and the host machine. They are
//     reported for operators but excluded from golden comparisons.
//
// Every recording method is safe for concurrent use, and the
// sub-registry helper methods tolerate a nil receiver so call sites in
// the hot path read as one line with no metrics-enabled branching.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load reads the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic level with a high-water mark: queue depth, busy
// workers. Add moves the level; the high-water mark records the
// largest level ever observed.
type Gauge struct{ cur, high atomic.Int64 }

// Inc raises the level by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add moves the level by n, updating the high-water mark on the way
// up.
func (g *Gauge) Add(n int64) {
	v := g.cur.Add(n)
	if n <= 0 {
		return
	}
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.cur.Load() }

// HighWater reads the largest level ever observed.
func (g *Gauge) HighWater() int64 { return g.high.Load() }

// histBounds are the histogram bucket upper bounds. The synthetic web
// answers in microseconds and chaos delays reach tens of milliseconds,
// so the range runs three decades below and above a millisecond.
var histBounds = [...]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// Histogram is a fixed-bucket duration histogram with count, sum and
// max. It belongs to the runtime (wall-clock) side of the snapshot by
// construction — durations are never deterministic.
type Histogram struct {
	count, sum, max atomic.Int64
	buckets         [len(histBounds) + 1]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
	for i, b := range histBounds {
		if d <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(histBounds)].Add(1)
}

// Count reads how many durations were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot freezes the histogram for callers outside the registry —
// the serving load generator reports its client-side latency this way.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// snapshot freezes the histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	for i := range histBounds {
		s.Buckets = append(s.Buckets, Bucket{LE: histBounds[i], N: h.buckets[i].Load()})
	}
	s.Buckets = append(s.Buckets, Bucket{LE: -1, N: h.buckets[len(histBounds)].Load()})
	return s
}

// Vec is a set of counters keyed by a small label set (failure kinds,
// fault kinds). Labels materialise on first use, so a label that never
// fires never appears in the snapshot — for a fixed seed the label set
// is itself deterministic.
type Vec struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// Add adds n to the label's counter, creating it on first use.
func (v *Vec) Add(label string, n int64) {
	v.counter(label).Add(n)
}

func (v *Vec) counter(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Counter)
	}
	c := v.m[label]
	if c == nil {
		c = &Counter{}
		v.m[label] = c
	}
	return c
}

// Load reads one label's count (0 when the label never fired).
func (v *Vec) Load(label string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[label]; c != nil {
		return c.Load()
	}
	return 0
}

// snapshot copies the vec into a plain map.
func (v *Vec) snapshot() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Load()
	}
	return out
}

// maxDepthTrack bounds the per-depth URL counters; crawls run at the
// paper's depth 7, so 16 slots leave headroom for depth overrides.
const maxDepthTrack = 16

// Registry is the study-wide metrics root. One registry serves a whole
// run: every Pool, Retrier, fault injector, crawler and cache the run
// assembles records into the same sub-structs, so the snapshot is the
// study's ledger, not one component's.
type Registry struct {
	Sched    SchedMetrics
	Cache    CacheMetrics
	Geo      GeoMetrics
	Fetch    FetchMetrics
	Faults   FaultMetrics
	Crawl    CrawlMetrics
	Pipeline PipelineMetrics
	Shard    ShardMetrics
	Serve    ServeMetrics
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{}
}

// SchedMetrics instruments sched.Pool. Item counts are deterministic
// (every index of every Each batch runs exactly once in a completed
// run); task submissions, queue pressure and occupancy depend on which
// workers were free and belong to the runtime side.
type SchedMetrics struct {
	// Deterministic.
	ItemsScheduled Counter // indexes handed to Each across all batches
	ItemsRun       Counter // indexes actually executed

	// Runtime (scheduling-shape dependent).
	TasksSubmitted Counter   // closures enqueued on the worker channel
	QueueDepth     Gauge     // queued-but-unstarted tasks, with high-water
	WorkersBusy    Gauge     // workers executing a task, with high-water
	QueueWait      Histogram // enqueue-to-start latency
}

// CacheMetrics instruments the resolution cache. Lookups, hits and
// misses are deterministic: the set of hostnames resolved and the
// number of lookups per hostname are pure functions of the seed, even
// though which worker performs the miss is not. Coalesced counts the
// non-creating lookups that arrived while the resolution was still in
// flight — a pure interleaving artifact, so it lives on the runtime
// side (every coalesce is also counted as a hit).
type CacheMetrics struct {
	// Deterministic.
	Lookups         Counter // resolve calls
	Hits            Counter // lookups that found an existing entry
	Misses          Counter // lookups that created the entry
	NegativeEntries Counter // distinct hostnames whose resolution failed
	NegativeHits    Counter // hits that returned a cached failure

	// Runtime.
	Coalesced Counter // hits that waited on an in-flight resolution
}

// GeoMetrics instruments the two geolocation verdict caches of the
// probing package. Each half follows the CacheMetrics split: the
// address multiset geolocated during a run is a pure function of the
// seed, so lookups, hits, misses and the negative (UR/EX verdict)
// counts are deterministic; coalesce counts are interleaving
// artifacts. Unicast keys on the address alone (verdicts are
// vantage-independent); anycast verification keys on (vantage, addr).
type GeoMetrics struct {
	Unicast CacheMetrics
	Anycast CacheMetrics
}

// FetchMetrics instruments the retrying fetch stack. Attempt and retry
// counts are deterministic because retry decisions hash (seed, url,
// attempt); budget denials only occur when a binding retry budget
// races workers for the last tokens, which is exactly the documented
// determinism trade-off — so they are runtime.
type FetchMetrics struct {
	// Deterministic.
	Attempts      Counter // individual fetch attempts issued
	Retries       Counter // attempts beyond each URL's first
	RetriesByKind Vec     // retries keyed by the failure kind that triggered them

	// Runtime.
	BudgetDenied Counter // retries skipped because the study budget ran dry
}

// RecordAttempt counts one fetch attempt. Nil-safe.
func (m *FetchMetrics) RecordAttempt() {
	if m != nil {
		m.Attempts.Inc()
	}
}

// RecordRetry counts one retry triggered by the given failure kind.
// Nil-safe.
func (m *FetchMetrics) RecordRetry(kind string) {
	if m != nil {
		m.Retries.Inc()
		m.RetriesByKind.Add(kind, 1)
	}
}

// RecordBudgetDenied counts one retry denied by the study budget.
// Nil-safe.
func (m *FetchMetrics) RecordBudgetDenied() {
	if m != nil {
		m.BudgetDenied.Inc()
	}
}

// FaultMetrics counts injected faults by kind. Injection decisions
// hash (fault seed, subject, attempt) and attempt sequences are
// themselves deterministic, so the whole ledger is golden-comparable.
type FaultMetrics struct {
	Injections Vec // injected faults by kind (timeout, reset, 5xx, …)
}

// Inject counts one injected fault of the given kind. Nil-safe.
func (m *FaultMetrics) Inject(kind string) {
	if m != nil {
		m.Injections.Add(kind, 1)
	}
}

// CrawlMetrics instruments frontier admission. Admission is the
// deterministic heart of the crawler — each level is deduplicated,
// sorted and capped before any fetch — so everything here is
// deterministic.
type CrawlMetrics struct {
	FrontierAdmitted  Counter // URLs admitted across all levels and crawls
	FrontierTruncated Counter // candidate URLs evicted by the MaxURLs cap

	depths [maxDepthTrack]Counter // admitted URLs per depth level
}

// RecordLevel counts one admitted frontier level at the given depth,
// plus the candidates the MaxURLs cap evicted from it. Nil-safe.
func (m *CrawlMetrics) RecordLevel(depth int, admitted, truncated int64) {
	if m == nil {
		return
	}
	m.FrontierAdmitted.Add(admitted)
	m.FrontierTruncated.Add(truncated)
	if admitted <= 0 {
		return
	}
	if depth < 0 {
		depth = 0
	}
	if depth >= maxDepthTrack {
		depth = maxDepthTrack - 1
	}
	m.depths[depth].Add(admitted)
}

// addURLsByDepth folds a snapshot's per-depth admission counts back
// into the live counters — the inverse of urlsByDepth, used when a
// checkpointed country's deterministic contribution is replayed.
func (m *CrawlMetrics) addURLsByDepth(urls []int64) {
	for depth, n := range urls {
		if depth >= maxDepthTrack {
			depth = maxDepthTrack - 1
		}
		m.depths[depth].Add(n)
	}
}

// urlsByDepth trims the per-depth counters to the deepest nonzero
// level.
func (m *CrawlMetrics) urlsByDepth() []int64 {
	last := -1
	for i := range m.depths {
		if m.depths[i].Load() > 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]int64, last+1)
	for i := range out {
		out[i] = m.depths[i].Load()
	}
	return out
}

// ShardMetrics instruments the shard supervisor and the checkpoint
// integrity machinery. Everything here is runtime by construction:
// restarts count real process crashes and quarantines count real file
// damage, neither of which is a function of the seed — so none of it
// ever feeds golden comparisons.
type ShardMetrics struct {
	Restarts    Counter // crashed shard workers restarted by the supervisor
	Exhausted   Counter // shards that ran out of restart budget
	Quarantined Counter // checkpoint files quarantined at load
}

// RecordRestart counts one crashed worker restarted. Nil-safe.
func (m *ShardMetrics) RecordRestart() {
	if m != nil {
		m.Restarts.Inc()
	}
}

// RecordExhausted counts one shard whose restart budget ran dry.
// Nil-safe.
func (m *ShardMetrics) RecordExhausted() {
	if m != nil {
		m.Exhausted.Inc()
	}
}

// RecordQuarantined counts checkpoint files quarantined during a load.
// Nil-safe.
func (m *ShardMetrics) RecordQuarantined(n int64) {
	if m != nil && n > 0 {
		m.Quarantined.Add(n)
	}
}

// ServeMetrics instruments the serving daemon (internal/serve):
// per-endpoint request and latency accounting, the versioned response
// cache's temperature, handler occupancy, and snapshot reloads.
// Everything here is runtime by construction — request traffic, cache
// hits and reload outcomes are properties of the clients driving the
// daemon and of operator actions, not of the study seed — so none of
// it ever feeds golden comparisons.
type ServeMetrics struct {
	Requests       Vec     // served requests by endpoint
	Statuses       Vec     // responses by HTTP status code
	CacheHits      Counter // responses answered from the versioned cache
	CacheMisses    Counter // responses that rendered the body
	CacheCoalesced Counter // hits that waited on an in-flight render
	NotModified    Counter // conditional requests answered 304 by ETag match
	InFlight       Gauge   // requests currently inside a handler, with high-water
	Reloads        Counter // snapshot swaps that landed
	ReloadFailures Counter // reload attempts refused; the old snapshot kept serving

	mu      sync.Mutex
	latency map[string]*Histogram // per-endpoint request latency
}

// RecordRequest counts one served request and its wall-clock latency
// under the endpoint's histogram. Nil-safe.
func (m *ServeMetrics) RecordRequest(endpoint string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.Requests.Add(endpoint, 1)
	m.Statuses.Add(fmt.Sprint(status), 1)
	m.mu.Lock()
	if m.latency == nil {
		m.latency = make(map[string]*Histogram)
	}
	h := m.latency[endpoint]
	if h == nil {
		h = &Histogram{}
		m.latency[endpoint] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// RecordCacheHit counts one cache hit; coalesced marks a hit that
// blocked on another request's in-flight render. Nil-safe.
func (m *ServeMetrics) RecordCacheHit(coalesced bool) {
	if m == nil {
		return
	}
	m.CacheHits.Inc()
	if coalesced {
		m.CacheCoalesced.Inc()
	}
}

// RecordNotModified counts one conditional request answered 304: the
// client's If-None-Match matched the response's strong ETag, so no
// body was sent. Nil-safe.
func (m *ServeMetrics) RecordNotModified() {
	if m != nil {
		m.NotModified.Inc()
	}
}

// RecordCacheMiss counts one cache fill. Nil-safe.
func (m *ServeMetrics) RecordCacheMiss() {
	if m != nil {
		m.CacheMisses.Inc()
	}
}

// RecordReload counts one reload attempt by outcome. Nil-safe.
func (m *ServeMetrics) RecordReload(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.Reloads.Inc()
	} else {
		m.ReloadFailures.Inc()
	}
}

func (m *ServeMetrics) latencySnapshots() map[string]HistogramSnapshot {
	m.mu.Lock()
	hists := make(map[string]*Histogram, len(m.latency))
	for k, h := range m.latency {
		hists[k] = h
	}
	m.mu.Unlock()
	if len(hists) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(hists))
	for k, h := range hists {
		out[k] = h.snapshot()
	}
	return out
}

// CountryCounters is one country's deterministic accounting row. The
// identity every completed country satisfies is
//
//	Attempted == Records + Failures + Discarded + Unusable
//
// — every crawled URL lands in exactly one bucket, which is what the
// invariant suite asserts from the snapshot.
type CountryCounters struct {
	Attempted       int64 // URLs fetched during the crawl
	Records         int64 // annotated records produced
	Failures        int64 // fetch + resolution failures (taxonomy total)
	Discarded       int64 // healthy fetches the §3.3 classifier rejected
	Unusable        int64 // healthy fetches with a non-200, non-failure status
	Retries         int64 // retry attempts the country's fetch stack spent
	VantageAttempts int64 // VPN connections to obtain a validated egress
}

// CountryTimings is one country's wall-clock stage durations.
type CountryTimings struct {
	Vantage  time.Duration
	Crawl    time.Duration
	Classify time.Duration
	Annotate time.Duration
}

// PipelineMetrics instruments Env.Run: study-level deterministic
// totals, one deterministic counter row per country, and the
// wall-clock per-stage and per-country timings.
type PipelineMetrics struct {
	// Deterministic.
	Annotations     Counter // annotate calls (gov + topsites)
	Records         Counter // government records produced
	Failures        Counter // failure-taxonomy total across countries
	FailuresByKind  Vec     // failures keyed by taxonomy bucket
	CountriesRun    Counter // countries the pipeline processed
	CountriesFailed Counter // countries with no validated vantage

	// Runtime: records buffered in the merge sink waiting for an
	// earlier country to finish. Which countries park depends on worker
	// interleaving, so the high-water mark is a runtime observation —
	// but its bound (strictly below the study's total record count) is
	// the streaming-assembly guarantee.
	InFlight Gauge

	mu        sync.Mutex
	countries map[string]CountryCounters
	timings   map[string]CountryTimings
	stages    map[string]*Histogram
}

// RecordsInFlight moves the records-in-flight level by delta: positive
// when a completed country's records park in the merge sink, negative
// when they flush into the dataset. Nil-safe.
func (m *PipelineMetrics) RecordsInFlight(delta int64) {
	if m != nil {
		m.InFlight.Add(delta)
	}
}

// RecordAnnotation counts one annotate call. Nil-safe.
func (m *PipelineMetrics) RecordAnnotation() {
	if m != nil {
		m.Annotations.Inc()
	}
}

// RecordCountry stores one country's deterministic counter row and
// rolls it into the study totals. Nil-safe.
func (m *PipelineMetrics) RecordCountry(code string, c CountryCounters, failed bool, failures map[string]int) {
	if m == nil {
		return
	}
	m.CountriesRun.Inc()
	if failed {
		m.CountriesFailed.Inc()
	}
	m.Records.Add(c.Records)
	m.Failures.Add(c.Failures)
	//lint:ignore map-order -- Vec.Add is a keyed atomic increment; per-kind adds commute, and the snapshot renders kinds sorted
	for kind, n := range failures {
		m.FailuresByKind.Add(kind, int64(n))
	}
	m.mu.Lock()
	if m.countries == nil {
		m.countries = make(map[string]CountryCounters)
	}
	m.countries[code] = c
	m.mu.Unlock()
}

// RecordCountryTimings stores one country's wall-clock stage
// durations. Nil-safe.
func (m *PipelineMetrics) RecordCountryTimings(code string, t CountryTimings) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.timings == nil {
		m.timings = make(map[string]CountryTimings)
	}
	m.timings[code] = t
	m.mu.Unlock()
}

// ObserveStage records one wall-clock duration for a named pipeline
// stage (vantage, crawl, classify, annotate, topsites, study).
// Nil-safe.
func (m *PipelineMetrics) ObserveStage(stage string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.stages == nil {
		m.stages = make(map[string]*Histogram)
	}
	h := m.stages[stage]
	if h == nil {
		h = &Histogram{}
		m.stages[stage] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// AddDeterministic folds a frozen deterministic snapshot into the live
// registry. This is how checkpointed work re-enters the ledger: a
// resumed run loads each stored country's contribution and adds it
// here instead of re-measuring, and a streaming run absorbs each
// country's fork registry at flush time. Counter adds commute, so the
// result is independent of the order contributions arrive — the
// property the byte-identical-resume contract leans on. Nil-safe.
func (r *Registry) AddDeterministic(d Deterministic) {
	if r == nil {
		return
	}
	r.Sched.ItemsScheduled.Add(d.Sched.ItemsScheduled)
	r.Sched.ItemsRun.Add(d.Sched.ItemsRun)

	addCache := func(m *CacheMetrics, c CacheCounters) {
		m.Lookups.Add(c.Lookups)
		m.Hits.Add(c.Hits)
		m.Misses.Add(c.Misses)
		m.NegativeEntries.Add(c.NegativeEntries)
		m.NegativeHits.Add(c.NegativeHits)
	}
	addCache(&r.Cache, d.Cache)
	addCache(&r.Geo.Unicast, d.Geo.Unicast)
	addCache(&r.Geo.Anycast, d.Geo.Anycast)

	r.Fetch.Attempts.Add(d.Fetch.Attempts)
	r.Fetch.Retries.Add(d.Fetch.Retries)
	//lint:ignore map-order -- Vec.Add is a keyed atomic increment; per-kind adds commute, and the snapshot renders kinds sorted
	for kind, n := range d.Fetch.RetriesByKind {
		r.Fetch.RetriesByKind.Add(kind, n)
	}
	//lint:ignore map-order -- Vec.Add is a keyed atomic increment; per-kind adds commute, and the snapshot renders kinds sorted
	for kind, n := range d.Faults.Injections {
		r.Faults.Injections.Add(kind, n)
	}

	r.Crawl.FrontierAdmitted.Add(d.Crawl.FrontierAdmitted)
	r.Crawl.FrontierTruncated.Add(d.Crawl.FrontierTruncated)
	r.Crawl.addURLsByDepth(d.Crawl.URLsByDepth)

	p := &r.Pipeline
	p.Annotations.Add(d.Pipeline.Annotations)
	p.Records.Add(d.Pipeline.Records)
	p.Failures.Add(d.Pipeline.Failures)
	//lint:ignore map-order -- Vec.Add is a keyed atomic increment; per-kind adds commute, and the snapshot renders kinds sorted
	for kind, n := range d.Pipeline.FailuresByKind {
		p.FailuresByKind.Add(kind, n)
	}
	p.CountriesRun.Add(d.Pipeline.CountriesRun)
	p.CountriesFailed.Add(d.Pipeline.CountriesFailed)
	if len(d.Pipeline.Countries) > 0 {
		p.mu.Lock()
		if p.countries == nil {
			p.countries = make(map[string]CountryCounters)
		}
		for code, c := range d.Pipeline.Countries {
			p.countries[code] = c
		}
		p.mu.Unlock()
	}
}

func (m *PipelineMetrics) countrySnapshots() map[string]CountryCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.countries) == 0 {
		return nil
	}
	out := make(map[string]CountryCounters, len(m.countries))
	for k, v := range m.countries {
		out[k] = v
	}
	return out
}

func (m *PipelineMetrics) timingSnapshots() map[string]CountryTimings {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.timings) == 0 {
		return nil
	}
	out := make(map[string]CountryTimings, len(m.timings))
	for k, v := range m.timings {
		out[k] = v
	}
	return out
}

func (m *PipelineMetrics) stageSnapshots() map[string]HistogramSnapshot {
	m.mu.Lock()
	hists := make(map[string]*Histogram, len(m.stages))
	for k, h := range m.stages {
		hists[k] = h
	}
	m.mu.Unlock()
	if len(hists) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(hists))
	for k, h := range hists {
		out[k] = h.snapshot()
	}
	return out
}
