// Package shard implements crash-safe country-sharded execution: a
// deterministic partition of the study's countries over n worker
// processes, and a supervisor that spawns the workers, restarts the
// ones that crash with capped seed-jittered backoff, and reports which
// shards survived. Workers checkpoint into one shared directory (each
// holding its own lease slot), so an assembly pass can load every
// shard's finished countries through the ordinary resume path and
// produce bytes identical to a single-process run.
//
// The split mirrors the metrics package's deterministic/runtime line:
// the partition and the backoff schedule are pure functions of
// (codes, shape, seed) and belong to the deterministic half; the
// supervisor's process management — spawning, waiting, sleeping
// between restarts — is wall-clock by nature and carries explicit
// lint ignores.
package shard

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
)

// Owned returns the country codes shard index owns under an n-way
// split: the codes whose position in the sorted full list ≡ index
// (mod count). The partition is a pure function of (codes, index,
// count) — every worker and the assembly pass agree on it without
// coordination — and a count of one (or less) owns everything.
func Owned(codes []string, index, count int) []string {
	sorted := append([]string(nil), codes...)
	sort.Strings(sorted)
	if count <= 1 {
		return sorted
	}
	var out []string
	for i, code := range sorted {
		if i%count == index {
			out = append(out, code)
		}
	}
	return out
}

// Backoff returns the delay before restart number restart (1-based) of
// one shard: capped exponential growth from base with a seeded jitter
// factor in [0.5, 1.5), so sibling shards crashing together do not
// thunder back together. The schedule is a pure function of
// (seed, shard, restart) — reproducible across supervisor runs.
func Backoff(seed int64, shard, restart int, base, cap time.Duration) time.Duration {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	d := base
	for i := 1; i < restart && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	r := rng.New(seed, fmt.Sprintf("shard-backoff-%d-%d", shard, restart))
	jittered := time.Duration(float64(d) * (0.5 + r.Float64()))
	if jittered > cap {
		jittered = cap
	}
	return jittered
}
