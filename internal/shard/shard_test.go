package shard

import (
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestOwnedPartitionsSortedCodes(t *testing.T) {
	codes := []string{"UY", "NG", "US", "DE", "FR"}
	var union []string
	seen := map[string]int{}
	for i := 0; i < 3; i++ {
		owned := Owned(codes, i, 3)
		union = append(union, owned...)
		for _, c := range owned {
			seen[c]++
		}
	}
	if len(union) != len(codes) {
		t.Fatalf("partition covers %d codes, want %d", len(union), len(codes))
	}
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("code %s owned by %d shards", c, n)
		}
	}
	// Ownership keys on sorted position, not input order.
	if got := Owned([]string{"US", "NG", "UY"}, 0, 2); !reflect.DeepEqual(got, []string{"NG", "UY"}) {
		t.Fatalf("Owned(0/2) = %v, want [NG UY]", got)
	}
	if got := Owned([]string{"US", "NG", "UY"}, 1, 2); !reflect.DeepEqual(got, []string{"US"}) {
		t.Fatalf("Owned(1/2) = %v, want [US]", got)
	}
}

func TestOwnedSingleShardOwnsEverythingSorted(t *testing.T) {
	got := Owned([]string{"UY", "NG", "US"}, 0, 1)
	want := append([]string(nil), "NG", "US", "UY")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Owned(0/1) = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("owned codes unsorted: %v", got)
	}
}

func TestBackoffDeterministicCappedAndGrowing(t *testing.T) {
	base, cap := 100*time.Millisecond, time.Second
	var prevCeil time.Duration
	for restart := 1; restart <= 8; restart++ {
		d := Backoff(42, 1, restart, base, cap)
		if d != Backoff(42, 1, restart, base, cap) {
			t.Fatalf("restart %d: backoff not deterministic", restart)
		}
		if d > cap {
			t.Fatalf("restart %d: %v exceeds cap %v", restart, d, cap)
		}
		if d < base/2 {
			t.Fatalf("restart %d: %v below the jitter floor", restart, d)
		}
		// The un-jittered ceiling doubles until the cap; the jittered
		// value stays within 1.5× of it.
		ceil := base
		for i := 1; i < restart && ceil < cap; i++ {
			ceil *= 2
		}
		if ceil > cap {
			ceil = cap
		}
		if d > time.Duration(float64(ceil)*1.5) {
			t.Fatalf("restart %d: %v above jittered ceiling of %v", restart, d, ceil)
		}
		if ceil < prevCeil {
			t.Fatalf("ceiling shrank at restart %d", restart)
		}
		prevCeil = ceil
	}
	if Backoff(42, 1, 2, base, cap) == Backoff(43, 1, 2, base, cap) &&
		Backoff(42, 1, 3, base, cap) == Backoff(43, 1, 3, base, cap) {
		t.Fatal("different seeds produced identical backoff schedules")
	}
}
