package shard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
)

// shCommand builds a Command factory running one shell script per
// shard, with $SHARD exported.
func shCommand(script string) func(ctx context.Context, shard, shards int) *exec.Cmd {
	return func(ctx context.Context, shard, shards int) *exec.Cmd {
		cmd := exec.CommandContext(ctx, "sh", "-c", script)
		cmd.Env = append(os.Environ(), fmt.Sprintf("SHARD=%d", shard))
		return cmd
	}
}

func TestSupervisorRestartsCrashedWorkerOnce(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "crashed-once")
	var reg metrics.Registry
	sup := &Supervisor{
		Shards: 2, Seed: 42,
		BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond,
		Metrics: &reg.Shard,
		// Shard 1 crashes on its first life, then exits cleanly; shard
		// 0 always succeeds.
		Command: shCommand(fmt.Sprintf(
			`if [ "$SHARD" = 1 ] && [ ! -e %q ]; then touch %q; exit 3; fi; exit 0`, marker, marker)),
	}
	outcomes, err := sup.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outcomes))
	}
	if o := outcomes[0]; o.Err != nil || o.Restarts != 0 {
		t.Fatalf("healthy shard outcome: %+v", o)
	}
	if o := outcomes[1]; o.Err != nil || o.Restarts != 1 {
		t.Fatalf("crashed-once shard outcome: %+v", o)
	}
	if got := reg.Shard.Restarts.Load(); got != 1 {
		t.Fatalf("restart counter = %d, want 1", got)
	}
	if got := reg.Shard.Exhausted.Load(); got != 0 {
		t.Fatalf("exhausted counter = %d, want 0", got)
	}
}

func TestSupervisorExhaustsRestartBudgetAndDegrades(t *testing.T) {
	var reg metrics.Registry
	sup := &Supervisor{
		Shards: 2, MaxRestarts: 2, Seed: 42,
		BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond,
		Metrics: &reg.Shard,
		Command: shCommand(`if [ "$SHARD" = 0 ]; then exit 7; fi; exit 0`),
	}
	outcomes, err := sup.Run(context.Background())
	if err != nil {
		t.Fatalf("an exhausted shard must degrade, not abort: %v", err)
	}
	dead := outcomes[0]
	if dead.Err == nil || dead.Restarts != 2 {
		t.Fatalf("exhausted shard outcome: %+v", dead)
	}
	if o := outcomes[1]; o.Err != nil {
		t.Fatalf("surviving shard outcome: %+v", o)
	}
	if got := reg.Shard.Restarts.Load(); got != 2 {
		t.Fatalf("restart counter = %d, want 2", got)
	}
	if got := reg.Shard.Exhausted.Load(); got != 1 {
		t.Fatalf("exhausted counter = %d, want 1", got)
	}
}

func TestSupervisorCancellationStopsRestarting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup := &Supervisor{
		Shards: 1, Seed: 42,
		Command: shCommand(`exit 1`),
	}
	outcomes, err := sup.Run(ctx)
	if err == nil {
		t.Fatal("cancelled supervision returned no error")
	}
	if outcomes[0].Err == nil {
		t.Fatalf("cancelled shard outcome: %+v", outcomes[0])
	}
}
