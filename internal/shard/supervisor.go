package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
)

// Supervisor spawns one worker process per shard, watches their exits,
// and restarts crashed workers with capped seed-jittered backoff. A
// shard that exhausts its restart budget is reported in its Outcome
// instead of aborting the run — the surviving shards finish and the
// caller degrades to a partial dataset with typed failure accounting.
type Supervisor struct {
	// Shards is the number of worker processes (and lease slots).
	Shards int
	// MaxRestarts caps how many times one crashed shard is restarted;
	// zero means the default of 3, negative disables restarts.
	MaxRestarts int
	// BackoffBase and BackoffCap bound the restart delay; zero values
	// default to 250ms and 5s.
	BackoffBase, BackoffCap time.Duration
	// Seed jitters the backoff schedule deterministically.
	Seed int64
	// Command builds the worker process for one shard. The returned
	// command must terminate when ctx is cancelled (exec.CommandContext
	// does).
	Command func(ctx context.Context, shard, shards int) *exec.Cmd
	// Metrics receives restart and exhaustion counts; nil records
	// nothing.
	Metrics *metrics.ShardMetrics
	// Log, when set, receives one line per crash, restart and
	// exhaustion.
	Log io.Writer
}

// Outcome is one shard's supervision result.
type Outcome struct {
	Shard    int
	Restarts int
	// Err is nil when the shard's worker eventually exited cleanly;
	// otherwise the last exit error after the restart budget ran dry
	// (or the cancellation error).
	Err error
}

// defaultMaxRestarts bounds how often one shard is revived: three
// restarts distinguishes a transient crash from a systematically dying
// worker without letting a broken binary spin forever.
const defaultMaxRestarts = 3

// Run supervises the fleet until every shard either exits cleanly,
// exhausts its restarts, or the context is cancelled. The returned
// outcomes are ordered by shard index. The error is non-nil only for
// configuration mistakes or cancellation — crashed shards are data
// (Outcome.Err), not failure.
func (s *Supervisor) Run(ctx context.Context) ([]Outcome, error) {
	if s.Shards <= 0 {
		return nil, errors.New("shard: supervisor needs a positive shard count")
	}
	if s.Command == nil {
		return nil, errors.New("shard: supervisor needs a worker command factory")
	}
	maxRestarts := s.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = defaultMaxRestarts
	}
	if maxRestarts < 0 {
		maxRestarts = 0
	}

	outcomes := make([]Outcome, s.Shards)
	wait := sched.Workers(s.Shards, func(w int) {
		outcomes[w] = s.superviseOne(ctx, w, maxRestarts)
	})
	wait()
	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	return outcomes, nil
}

// superviseOne runs one shard's spawn/wait/restart loop to its
// conclusion.
func (s *Supervisor) superviseOne(ctx context.Context, w, maxRestarts int) Outcome {
	o := Outcome{Shard: w}
	for {
		err := s.Command(ctx, w, s.Shards).Run()
		if err == nil {
			return o
		}
		if ctx.Err() != nil {
			o.Err = ctx.Err()
			return o
		}
		if o.Restarts >= maxRestarts {
			s.Metrics.RecordExhausted()
			s.logf("shard %d/%d: exhausted %d restarts; degrading to a partial run (last exit: %v)", w, s.Shards, o.Restarts, err)
			o.Err = fmt.Errorf("shard %d/%d exhausted its restart budget (%d restarts): %w", w, s.Shards, o.Restarts, err)
			return o
		}
		o.Restarts++
		s.Metrics.RecordRestart()
		delay := Backoff(s.Seed, w, o.Restarts, s.BackoffBase, s.BackoffCap)
		s.logf("shard %d/%d: worker crashed (%v); restart %d/%d in %v", w, s.Shards, err, o.Restarts, maxRestarts, delay)
		if !sleepCtx(ctx, delay) {
			o.Err = ctx.Err()
			return o
		}
	}
}

// sleepCtx waits out a restart delay, reporting false when the context
// was cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	//lint:ignore nondeterminism -- the supervisor's restart backoff stalls on the wall clock between real process crashes; it manages runtime process lifecycle and never feeds golden output
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// logf writes one supervision event line when a log sink is attached.
func (s *Supervisor) logf(format string, args ...any) {
	if s.Log != nil {
		fmt.Fprintf(s.Log, "shard: "+format+"\n", args...)
	}
}
