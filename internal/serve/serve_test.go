package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/world"
)

// testDataset hand-builds a small but fully-featured study: four
// countries across three regions, two EU members, cross-border and
// domestic serving, a multi-country global provider, an anycast
// address, and a topsite baseline — enough for every endpoint to
// produce non-trivial output. variant perturbs the byte sizes so
// different variants export different bytes and therefore hash to
// different versions.
func testDataset(variant int64, n int) *dataset.Dataset {
	type site struct {
		country string
		region  world.Region
		cat     world.Category
		asn     int
		org     string
		reg     string // WHOIS registration country
		srv     string // validated serving country
		anycast bool
	}
	sites := []site{
		{"US", world.NA, world.CatGovtSOE, 64500, "US Gov Net", "US", "US", false},
		{"US", world.NA, world.Cat3PGlobal, 13335, "GlobalCDN", "US", "US", true},
		{"DE", world.ECA, world.Cat3PGlobal, 13335, "GlobalCDN", "US", "US", true},
		{"DE", world.ECA, world.CatGovtSOE, 64501, "DE Gov Net", "DE", "DE", false},
		{"FR", world.ECA, world.Cat3PLocal, 64502, "FR Hoster", "FR", "DE", false},
		{"FR", world.ECA, world.CatGovtSOE, 64503, "FR Gov Net", "FR", "FR", false},
		{"BR", world.LAC, world.Cat3PRegional, 64504, "LatAm Host", "US", "US", false},
		{"BR", world.LAC, world.CatGovtSOE, 64505, "BR Gov Net", "BR", "BR", false},
	}
	ds := &dataset.Dataset{Scale: 0.01, Seed: variant}
	for i := 0; i < n; i++ {
		s := sites[i%len(sites)]
		ip := netip.AddrFrom4([4]byte{192, 0, byte(2 + i%len(sites)), byte(1 + (i/len(sites))%200)})
		ds.Records = append(ds.Records, dataset.URLRecord{
			URL:          fmt.Sprintf("https://gov%d.%s/page/%d", i, s.country, variant),
			Host:         fmt.Sprintf("gov%d.%s", i%len(sites), s.country),
			Country:      s.country,
			Region:       s.region,
			Bytes:        int64(1000 + i*37 + int(variant)*13),
			Method:       "tld",
			IP:           ip,
			ASN:          s.asn,
			Org:          s.org,
			RegCountry:   s.reg,
			GovAS:        s.cat == world.CatGovtSOE,
			Anycast:      s.anycast,
			ServeCountry: s.srv,
			GeoMethod:    "AP",
			Category:     s.cat,
		})
	}
	ds.Topsites = append(ds.Topsites, dataset.URLRecord{
		URL: "https://popular.US/", Host: "popular.US", Country: "US",
		Region: world.NA, Bytes: 5000, Category: world.Cat3PGlobal,
		ASN: 13335, Org: "GlobalCDN", RegCountry: "US", ServeCountry: "US", GeoMethod: "AP",
	})
	ds.PerCountry = map[string]*dataset.CountryStats{
		"US": {Country: "US", Region: world.NA, LandingURLs: 2, Attempted: 4, Retries: 1},
		"DE": {Country: "DE", Region: world.ECA, LandingURLs: 2, Attempted: 2},
	}
	return ds
}

func newTestSnapshot(t *testing.T, variant int64, n int) *Snapshot {
	t.Helper()
	snap, err := NewSnapshot(testDataset(variant, n), fmt.Sprintf("test:variant=%d", variant))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// endpointCalls enumerates one canonical query per endpoint plus the
// parameterized variants — the full surface the e2e and chaos tests
// sweep.
func endpointCalls(snap *Snapshot) []struct{ Name, Query string } {
	calls := []struct{ Name, Query string }{}
	for _, name := range EndpointNames() {
		switch name {
		case "fig9", "matrix":
			calls = append(calls,
				struct{ Name, Query string }{name, "kind=registration"},
				struct{ Name, Query string }{name, "kind=location"})
		case "country":
			for _, c := range snap.Countries() {
				calls = append(calls, struct{ Name, Query string }{name, "code=" + c})
			}
		default:
			calls = append(calls, struct{ Name, Query string }{name, ""})
		}
	}
	return calls
}

func TestEveryEndpointRenders(t *testing.T) {
	snap := newTestSnapshot(t, 1, 64)
	for _, call := range endpointCalls(snap) {
		q, _ := url.ParseQuery(call.Query)
		body, status := snap.Render(call.Name, q)
		if status != 200 {
			t.Fatalf("%s?%s: status %d: %s", call.Name, call.Query, status, body)
		}
		var env struct {
			Version  string          `json:"version"`
			Endpoint string          `json:"endpoint"`
			Data     json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("%s: bad body: %v", call.Name, err)
		}
		if env.Version != snap.Version() || env.Endpoint != call.Name {
			t.Fatalf("%s: envelope says %s/%s", call.Name, env.Version, env.Endpoint)
		}
		if len(env.Data) == 0 || string(env.Data) == "null" {
			t.Fatalf("%s: empty data", call.Name)
		}
	}
}

func TestParamValidation(t *testing.T) {
	snap := newTestSnapshot(t, 1, 16)
	cases := []struct {
		name, query string
		status      int
		code        string
	}{
		{"nonsense", "", 404, "unknown-endpoint"},
		{"fig2", "bogus=1", 400, "unknown-param"},
		{"fig9", "kind=sideways", 400, "bad-param"},
		{"country", "", 400, "missing-param"},
		{"country", "code=ZZ", 404, "unknown-country"},
	}
	for _, c := range cases {
		q, _ := url.ParseQuery(c.query)
		body, status := snap.Render(c.name, q)
		if status != c.status {
			t.Fatalf("%s?%s: status %d, want %d", c.name, c.query, status, c.status)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Fatalf("%s?%s: bad error envelope: %v", c.name, c.query, err)
		}
		if env.Error.Code != c.code {
			t.Fatalf("%s?%s: code %q, want %q", c.name, c.query, env.Error.Code, c.code)
		}
	}
}

// TestVersionIsContentDerived pins that equal datasets hash to equal
// versions and different datasets to different ones.
func TestVersionIsContentDerived(t *testing.T) {
	a1 := newTestSnapshot(t, 1, 32)
	a2 := newTestSnapshot(t, 1, 32)
	b := newTestSnapshot(t, 2, 32)
	if a1.Version() != a2.Version() {
		t.Fatalf("same dataset, different versions: %s vs %s", a1.Version(), a2.Version())
	}
	if a1.Version() == b.Version() {
		t.Fatalf("different datasets share version %s", a1.Version())
	}
}

// TestCacheDeterministicBodies hammers the same endpoint set from many
// goroutines in shuffled orders: every response for (version, endpoint,
// params) must be byte-identical, and the cache must count exactly one
// miss per distinct key.
func TestCacheDeterministicBodies(t *testing.T) {
	snap := newTestSnapshot(t, 3, 128)
	reg := &metrics.Registry{}
	calls := endpointCalls(snap)

	// Reference bodies from a fresh identical snapshot, rendered
	// serially — the concurrent responses must match these bytes.
	ref := newTestSnapshot(t, 3, 128)
	want := map[string][]byte{}
	for _, call := range calls {
		q, _ := url.ParseQuery(call.Query)
		body, _ := ref.Render(call.Name, q)
		want[call.Name+"?"+call.Query] = body
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range calls {
				call := calls[(i+w*7)%len(calls)] // different order per worker
				q, _ := url.ParseQuery(call.Query)
				body, status := snap.respond(call.Name, q, &reg.Serve)
				if status != 200 || !bytes.Equal(body, want[call.Name+"?"+call.Query]) {
					select {
					case errs <- fmt.Sprintf("%s?%s diverged (status %d)", call.Name, call.Query, status):
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	hits, misses := reg.Serve.CacheHits.Load(), reg.Serve.CacheMisses.Load()
	if misses != int64(len(calls)) {
		t.Fatalf("misses = %d, want one per distinct key (%d)", misses, len(calls))
	}
	if hits+misses != int64(workers*len(calls)) {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, workers*len(calls))
	}
}

// TestCacheCoalesceUnderStampede pins the single-flight behaviour
// deterministically: with the cache entry's fill held open, every
// concurrent requester must be counted as a coalesced hit and then
// receive the filled body — no second render, no divergent bytes.
func TestCacheCoalesceUnderStampede(t *testing.T) {
	snap := newTestSnapshot(t, 4, 64)
	reg := &metrics.Registry{}
	ep := endpointIndex["fig2"]
	key := cacheKey("fig2", nil)

	// Install the entry and start its fill, gated on release, exactly
	// as the first requester would.
	e := &cacheEntry{}
	snap.mu.Lock()
	snap.cache[key] = e
	snap.mu.Unlock()
	release := make(chan struct{})
	entered := make(chan struct{})
	var fill sync.WaitGroup
	fill.Add(1)
	go func() {
		defer fill.Done()
		e.once.Do(func() {
			close(entered)
			<-release
			e.body, e.status = snap.renderFresh(ep, nil)
			e.done.Store(true)
		})
	}()
	// Only start the stampede once the gated fill owns the once —
	// otherwise a requester could win it and fill ungated.
	<-entered

	const stampede = 10
	var wg sync.WaitGroup
	bodies := make([][]byte, stampede)
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _ = snap.respond("fig2", nil, &reg.Serve)
		}(i)
	}
	// Hit accounting happens before a requester blocks on the
	// in-flight fill; the fill cannot complete until release, so every
	// recorded hit observed done == false. Wait for all of them, then
	// let the fill finish.
	for reg.Serve.CacheHits.Load() < stampede {
		runtime.Gosched()
	}
	close(release)
	fill.Wait()
	wg.Wait()

	if co := reg.Serve.CacheCoalesced.Load(); co != stampede {
		t.Fatalf("coalesced = %d, want %d", co, stampede)
	}
	if misses := reg.Serve.CacheMisses.Load(); misses != 0 {
		t.Fatalf("misses = %d, want 0 (entry pre-created)", misses)
	}
	for i := 1; i < stampede; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("stampede bodies diverge at %d", i)
		}
	}
}

// flip between two snapshots as a stub reloader.
func flipReloader(snaps ...*Snapshot) ReloadFunc {
	i := 0
	var mu sync.Mutex
	return func(context.Context, Source) (*Snapshot, error) {
		mu.Lock()
		defer mu.Unlock()
		i++
		return snaps[i%len(snaps)], nil
	}
}

// TestChaosReloadUnderLoad hammers every endpoint from many goroutines
// while snapshots swap concurrently. Every response must be internally
// consistent with exactly one version — body bytes equal to that
// version's render — and after the final swap settles the cache must
// never serve the previous version.
func TestChaosReloadUnderLoad(t *testing.T) {
	snapA := newTestSnapshot(t, 1, 96)
	snapB := newTestSnapshot(t, 2, 96)
	srv := New(Config{Snapshot: snapA, Workers: 8, Reloader: flipReloader(snapA, snapB)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Expected bodies per version, from fresh identical snapshots so
	// the server's own cache cannot mask a rendering difference.
	expected := map[string]map[string][]byte{}
	for _, snap := range []*Snapshot{newTestSnapshot(t, 1, 96), newTestSnapshot(t, 2, 96)} {
		perCall := map[string][]byte{}
		for _, call := range endpointCalls(snap) {
			q, _ := url.ParseQuery(call.Query)
			body, _ := snap.Render(call.Name, q)
			perCall[call.Name+"?"+call.Query] = body
		}
		expected[snap.Version()] = perCall
	}

	calls := endpointCalls(snapA)
	const workers, rounds = 8, 30
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				call := calls[(r+w*5)%len(calls)]
				u := ts.URL + "/api/" + call.Name
				if call.Query != "" {
					u += "?" + call.Query
				}
				res, err := http.Get(u)
				if err != nil {
					errs <- err.Error()
					return
				}
				body, _ := io.ReadAll(res.Body)
				res.Body.Close()
				version := res.Header.Get("X-Dataset-Version")
				perCall, ok := expected[version]
				if !ok {
					errs <- fmt.Sprintf("unknown version %q", version)
					return
				}
				if want := perCall[call.Name+"?"+call.Query]; !bytes.Equal(body, want) {
					errs <- fmt.Sprintf("%s?%s: body not consistent with version %s", call.Name, call.Query, version)
					return
				}
			}
		}(w)
	}
	// Swap concurrently with the load above.
	for i := 0; i < 20; i++ {
		if _, err := srv.Reload(context.Background(), Source{Kind: "jsonl", Path: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}

	// Settle on a known snapshot: the very next response must carry
	// its version — the per-snapshot cache cannot serve a stale one.
	final, err := srv.Reload(context.Background(), Source{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(ts.URL + "/api/fig2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if v := res.Header.Get("X-Dataset-Version"); v != final.Version() {
		t.Fatalf("after final swap: version %q, want %q", v, final.Version())
	}
	q := url.Values{}
	if want, _ := final.Render("fig2", q); !bytes.Equal(body, want) {
		t.Fatal("after final swap: body does not match the final snapshot")
	}
	if reloads := srv.Registry().Serve.Reloads.Load(); reloads != 21 {
		t.Fatalf("reload counter = %d, want 21", reloads)
	}
}

// TestReloadGuards pins the typed reload failure surface: a checkpoint
// directory whose manifest diverges from the requesting configuration
// answers 409 naming the first divergent field; a corrupt directory
// answers 422; in both cases the old snapshot keeps serving.
func TestReloadGuards(t *testing.T) {
	snapA := newTestSnapshot(t, 1, 32)
	stored := checkpoint.Manifest{Seed: 1, Scale: 0.5, Countries: []string{"US"}}
	want := checkpoint.Manifest{Seed: 2, Scale: 0.5, Countries: []string{"US"}}

	mismatchDir := t.TempDir()
	if _, _, err := checkpoint.Open(mismatchDir, stored, checkpoint.Options{ValidateOnly: true}); err != nil {
		t.Fatal(err)
	}
	corruptDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(corruptDir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	reloader := func(_ context.Context, src Source) (*Snapshot, error) {
		if src.Kind != "checkpoint" {
			return nil, errors.New("test reloader handles checkpoints only")
		}
		if _, _, err := checkpoint.Open(src.Path, want, checkpoint.Options{Resume: true, ValidateOnly: true}); err != nil {
			return nil, err
		}
		return newTestSnapshot(t, 2, 32), nil
	}
	srv := New(Config{Snapshot: snapA, Reloader: reloader})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(query string) (int, errorEnvelope) {
		res, err := http.Post(ts.URL+"/admin/reload?"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var env errorEnvelope
		if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, env
	}

	status, env := post("checkpoint=" + mismatchDir)
	if status != http.StatusConflict {
		t.Fatalf("manifest mismatch: status %d, want 409", status)
	}
	if env.Error == nil || env.Error.Code != "manifest-mismatch" || env.Error.Field != "seed" {
		t.Fatalf("manifest mismatch: error %+v, want code=manifest-mismatch field=seed", env.Error)
	}
	if env.Error.Stored != "1" || env.Error.Want != "2" {
		t.Fatalf("manifest mismatch: stored/want = %q/%q", env.Error.Stored, env.Error.Want)
	}

	status, env = post("checkpoint=" + corruptDir)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt checkpoint: status %d, want 422", status)
	}
	if env.Error == nil || env.Error.Code != "load-failed" {
		t.Fatalf("corrupt checkpoint: error %+v, want code=load-failed", env.Error)
	}

	if status, env = post(""); status != 400 || env.Error.Code != "missing-source" {
		t.Fatalf("missing source: %d/%+v", status, env.Error)
	}
	if status, env = post("jsonl=a&checkpoint=b"); status != 400 || env.Error.Code != "ambiguous-source" {
		t.Fatalf("ambiguous source: %d/%+v", status, env.Error)
	}

	// Through every failure the old snapshot kept serving.
	res, err := http.Get(ts.URL + "/api/fig2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if v := res.Header.Get("X-Dataset-Version"); v != snapA.Version() {
		t.Fatalf("old snapshot gone: serving %q, want %q", v, snapA.Version())
	}
	if fails := srv.Registry().Serve.ReloadFailures.Load(); fails != 2 {
		t.Fatalf("reload failures = %d, want 2 (param errors never reach the reloader)", fails)
	}
}

// TestShutdownDrains starts a real listener, parks a request in
// flight, and shuts down: the in-flight request must complete, new
// requests must be refused, and Serve must return cleanly.
func TestShutdownDrains(t *testing.T) {
	snap := newTestSnapshot(t, 1, 64)
	srv := New(Config{Snapshot: snap, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := http.Get(ts.URL + "/api/fig5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	res, err = http.Get(ts.URL + "/api/fig5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: status %d, want 503", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown health: status %d, want 503", res.StatusCode)
	}
}
