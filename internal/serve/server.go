package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Source names where a reload should pull the next snapshot from.
type Source struct {
	Kind string `json:"kind"` // "jsonl" or "checkpoint"
	Path string `json:"path"`
}

// ReloadFunc builds a fresh snapshot from a source. The daemon calls
// it on /admin/reload and SIGHUP; the old snapshot keeps serving until
// the func returns successfully.
type ReloadFunc func(ctx context.Context, src Source) (*Snapshot, error)

// Config assembles a Server.
type Config struct {
	// Snapshot is the initial serving generation (required).
	Snapshot *Snapshot
	// Registry receives request, cache, and reload metrics; nil
	// allocates a private one. /metrics exports it live.
	Registry *metrics.Registry
	// Workers bounds how many requests render concurrently; requests
	// beyond it queue in the scheduler rather than spawning
	// goroutines. 0 picks 8.
	Workers int
	// Reloader serves /admin/reload; nil makes reloads answer 501.
	Reloader ReloadFunc
}

// Server is the HTTP face of the daemon: an atomic snapshot pointer,
// a bounded render pool, and the admin plumbing around them. Handlers
// load the pointer exactly once per request, so every response is
// internally consistent with a single snapshot generation even while
// a reload swaps the pointer underneath them.
type Server struct {
	reg      *metrics.Registry
	pool     *sched.Pool
	reloader ReloadFunc

	snap     atomic.Pointer[Snapshot]
	draining atomic.Bool
	reloadMu sync.Mutex // serializes reloads; requests never take it

	mux     *http.ServeMux
	httpSrv *http.Server
}

// New builds a Server around cfg.Snapshot.
func New(cfg Config) *Server {
	if cfg.Snapshot == nil {
		panic("serve: Config.Snapshot is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	reg := cfg.Registry
	if reg == nil {
		reg = &metrics.Registry{}
	}
	s := &Server{
		reg:      reg,
		pool:     sched.NewPool(workers),
		reloader: cfg.Reloader,
		mux:      http.NewServeMux(),
	}
	s.snap.Store(cfg.Snapshot)
	for i := range endpoints {
		name := endpoints[i].name
		s.mux.HandleFunc("/api/"+name, s.apiHandler(name))
	}
	s.mux.HandleFunc("/healthz", s.healthHandler)
	s.mux.HandleFunc("/version", s.versionHandler)
	s.mux.HandleFunc("/metrics", s.metricsHandler)
	s.mux.HandleFunc("/admin/reload", s.reloadHandler)
	s.httpSrv = &http.Server{Handler: s.mux}
	return s
}

// Handler exposes the daemon's routes, for tests that mount the
// server without a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the currently serving generation.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Serve accepts connections on ln until Shutdown. It reports nil on a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the daemon: new requests are refused immediately,
// in-flight ones finish (bounded by ctx), then the render pool winds
// down. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpSrv.Shutdown(ctx)
	s.pool.Close()
	return err
}

// Reload builds a snapshot from src and swaps it in. On error the old
// snapshot keeps serving and the error is returned as-is, so callers
// can inspect it (the HTTP handler maps checkpoint manifest
// mismatches to 409 and other load failures to 422).
func (s *Server) Reload(ctx context.Context, src Source) (*Snapshot, error) {
	if s.reloader == nil {
		return nil, &apiError{Status: 501, Code: "reload-disabled",
			Message: "this daemon was started without a reloader"}
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	next, err := s.reloader(ctx, src)
	if err != nil {
		s.reg.Serve.RecordReload(false)
		return nil, err
	}
	s.snap.Store(next)
	s.reg.Serve.RecordReload(true)
	return next, nil
}

// apiHandler wraps one endpoint: drain check, in-flight accounting,
// bounded render through the pool, conditional-request handling,
// latency recording. A 200 with a canonical parameter set carries a
// strong ETag (version + canonical-key digest); when the request's
// If-None-Match matches it, the handler answers 304 with the tag and
// version headers and no body — the client's cached bytes are the
// ones this snapshot would have served.
func (s *Server) apiHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		//lint:ignore nondeterminism -- request latency is wall-clock by definition; it feeds the Runtime metrics half only
		start := time.Now()
		sm := &s.reg.Serve
		status := http.StatusServiceUnavailable
		if s.draining.Load() {
			s.writeRefusal(w, name, status, "draining", "daemon is shutting down")
		} else {
			sm.InFlight.Inc()
			ran := s.pool.Do(r.Context(), func() {
				snap := s.snap.Load()
				var body []byte
				body, status = snap.respond(name, r.URL.Query(), sm)
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Dataset-Version", snap.Version())
				if status == http.StatusOK {
					if tag := ETagFor(snap.Version(), name, r.URL.Query()); tag != "" {
						w.Header().Set("ETag", tag)
						if etagMatch(r.Header.Get("If-None-Match"), tag) {
							status = http.StatusNotModified
							sm.RecordNotModified()
							w.WriteHeader(status)
							return
						}
					}
				}
				w.WriteHeader(status)
				w.Write(body)
			})
			sm.InFlight.Dec()
			if !ran {
				status = http.StatusServiceUnavailable
				s.writeRefusal(w, name, status, "canceled", "request canceled before a worker was free")
			}
		}
		//lint:ignore nondeterminism -- request latency is wall-clock by definition; it feeds the Runtime metrics half only
		sm.RecordRequest(name, status, time.Since(start))
	}
}

// writeRefusal answers a request the render path never saw.
func (s *Server) writeRefusal(w http.ResponseWriter, name string, status int, code, msg string) {
	body, _ := marshalError(s.snap.Load().Version(), name, &apiError{Status: status, Code: code, Message: msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) healthHandler(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{
		"status":  status,
		"version": s.snap.Load().Version(),
	})
}

func (s *Server) versionHandler(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"version":   snap.Version(),
		"source":    snap.Desc(),
		"records":   len(snap.ds.Records),
		"countries": len(snap.Countries()),
		"endpoints": EndpointNames(),
	})
}

func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// reloadHandler maps Reload results onto typed statuses: 409 for a
// checkpoint whose manifest diverges from the requesting
// configuration (naming the first divergent field), 422 for any other
// load failure. Either way the previous snapshot keeps serving.
func (s *Server) reloadHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	src, aerr := reloadSource(r)
	if aerr != nil {
		writeJSON(w, aerr.Status, errorEnvelope{Version: s.snap.Load().Version(), Error: aerr})
		return
	}
	prev := s.snap.Load()
	next, err := s.Reload(r.Context(), src)
	if err != nil {
		aerr := reloadError(err)
		writeJSON(w, aerr.Status, errorEnvelope{Version: prev.Version(), Error: aerr})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":      next.Version(),
		"prev_version": prev.Version(),
		"source":       next.Desc(),
		"records":      len(next.ds.Records),
	})
}

// reloadSource parses the ?jsonl= / ?checkpoint= selector.
func reloadSource(r *http.Request) (Source, *apiError) {
	jsonl := r.URL.Query().Get("jsonl")
	ckpt := r.URL.Query().Get("checkpoint")
	switch {
	case jsonl != "" && ckpt != "":
		return Source{}, &apiError{Status: 400, Code: "ambiguous-source",
			Message: "pass exactly one of jsonl= or checkpoint="}
	case jsonl != "":
		return Source{Kind: "jsonl", Path: jsonl}, nil
	case ckpt != "":
		return Source{Kind: "checkpoint", Path: ckpt}, nil
	}
	return Source{}, &apiError{Status: 400, Code: "missing-source",
		Message: "pass one of jsonl= or checkpoint="}
}

// reloadError types a reload failure for the wire.
func reloadError(err error) *apiError {
	var aerr *apiError
	if errors.As(err, &aerr) {
		return aerr
	}
	var mm *checkpoint.MismatchError
	if errors.As(err, &mm) {
		return &apiError{Status: http.StatusConflict, Code: "manifest-mismatch",
			Field: mm.Field, Stored: mm.Stored, Want: mm.Want, Message: err.Error()}
	}
	return &apiError{Status: http.StatusUnprocessableEntity, Code: "load-failed",
		Message: err.Error()}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}
