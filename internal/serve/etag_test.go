package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// get performs one GET against the test server with an optional
// If-None-Match header and returns the response plus its full body.
func get(t *testing.T, base, path, inm string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestETagOnSuccess pins the conditional-request contract for a plain
// 200: the response carries a strong quoted ETag, the tag equals what
// ETagFor computes offline from (version, endpoint, params), and
// distinct parameter sets get distinct tags under the same version.
func TestETagOnSuccess(t *testing.T) {
	snap := newTestSnapshot(t, 1, 64)
	srv := New(Config{Snapshot: snap, Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts.URL, "/api/fig2", "")
	if resp.StatusCode != 200 || len(body) == 0 {
		t.Fatalf("status %d, body %d bytes", resp.StatusCode, len(body))
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("200 response carries no ETag")
	}
	if !strings.HasPrefix(tag, `"`) || !strings.HasSuffix(tag, `"`) || strings.HasPrefix(tag, "W/") {
		t.Fatalf("tag %q is not a quoted strong tag", tag)
	}
	if want := ETagFor(snap.Version(), "fig2", nil); tag != want {
		t.Fatalf("served tag %q, ETagFor computes %q", tag, want)
	}
	if !strings.Contains(tag, snap.Version()) {
		t.Fatalf("tag %q does not embed version %s", tag, snap.Version())
	}

	respUS, _ := get(t, ts.URL, "/api/country?code=US", "")
	respDE, _ := get(t, ts.URL, "/api/country?code=DE", "")
	if respUS.Header.Get("ETag") == respDE.Header.Get("ETag") {
		t.Fatalf("different params share tag %q", respUS.Header.Get("ETag"))
	}
}

// TestConditionalRequestRoundTrip drives the full revalidation cycle:
// a match answers 304 with the tag and version headers and no body, a
// stale or garbage tag answers 200 with the full body, "*" and the
// weak W/ form both match, and the NotModified counter tracks exactly
// the 304s.
func TestConditionalRequestRoundTrip(t *testing.T) {
	snap := newTestSnapshot(t, 2, 64)
	reg := &metrics.Registry{}
	srv := New(Config{Snapshot: snap, Workers: 4, Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, full := get(t, ts.URL, "/api/fig5", "")
	tag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || tag == "" {
		t.Fatalf("priming request: status %d, tag %q", resp.StatusCode, tag)
	}

	// Exact match → 304, empty body, headers intact.
	resp, body := get(t, ts.URL, "/api/fig5", tag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching tag: status %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if got := resp.Header.Get("ETag"); got != tag {
		t.Fatalf("304 ETag %q, want %q", got, tag)
	}
	if got := resp.Header.Get("X-Dataset-Version"); got != snap.Version() {
		t.Fatalf("304 version header %q, want %q", got, snap.Version())
	}

	// A list with the tag buried in it still matches.
	if resp, _ = get(t, ts.URL, "/api/fig5", `"bogus", `+tag); resp.StatusCode != 304 {
		t.Fatalf("tag in list: status %d, want 304", resp.StatusCode)
	}
	// Weak comparison: W/ prefix on the client's copy must match.
	if resp, _ = get(t, ts.URL, "/api/fig5", "W/"+tag); resp.StatusCode != 304 {
		t.Fatalf("weak form: status %d, want 304", resp.StatusCode)
	}
	// "*" matches any current representation.
	if resp, _ = get(t, ts.URL, "/api/fig5", "*"); resp.StatusCode != 304 {
		t.Fatalf("star: status %d, want 304", resp.StatusCode)
	}

	// A stale tag revalidates to a full 200 with identical bytes.
	resp, body = get(t, ts.URL, "/api/fig5", `"`+snap.Version()+`-0000000000000000"`)
	if resp.StatusCode != 200 || string(body) != string(full) {
		t.Fatalf("stale tag: status %d, body diverges: %v", resp.StatusCode, string(body) != string(full))
	}

	if nm := reg.Serve.NotModified.Load(); nm != 4 {
		t.Fatalf("NotModified = %d, want 4", nm)
	}
	// The 304s were still requests; the per-endpoint count covers them.
	if reqs := reg.Serve.Requests.Load("fig5"); reqs != 6 {
		t.Fatalf("Requests[fig5] = %d, want 6", reqs)
	}
}

// TestConditionalRequestAcrossReload pins the strong-tag guarantee
// through a snapshot swap: the tag a client cached against version A
// must stop matching once version B serves, because equal tags must
// imply byte-equal bodies.
func TestConditionalRequestAcrossReload(t *testing.T) {
	snapA := newTestSnapshot(t, 1, 48)
	snapB := newTestSnapshot(t, 2, 48)
	srv := New(Config{Snapshot: snapA, Workers: 4, Reloader: flipReloader(snapA, snapB)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, bodyA := get(t, ts.URL, "/api/table5", "")
	tagA := resp.Header.Get("ETag")
	if tagA == "" {
		t.Fatal("no tag before reload")
	}

	reload, err := http.Post(ts.URL+"/admin/reload?jsonl=ignored", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	reload.Body.Close()
	if reload.StatusCode != 200 {
		t.Fatalf("reload status %d", reload.StatusCode)
	}

	resp, bodyB := get(t, ts.URL, "/api/table5", tagA)
	if resp.StatusCode != 200 {
		t.Fatalf("old tag after reload: status %d, want full 200", resp.StatusCode)
	}
	if string(bodyA) == string(bodyB) {
		t.Fatal("bodies identical across versions; test dataset variants must differ")
	}
	tagB := resp.Header.Get("ETag")
	if tagB == "" || tagB == tagA {
		t.Fatalf("post-reload tag %q, want a fresh tag != %q", tagB, tagA)
	}
	if want := ETagFor(snapB.Version(), "table5", nil); tagB != want {
		t.Fatalf("post-reload tag %q, ETagFor computes %q", tagB, want)
	}

	// The new tag now revalidates.
	if resp, _ = get(t, ts.URL, "/api/table5", tagB); resp.StatusCode != 304 {
		t.Fatalf("new tag: status %d, want 304", resp.StatusCode)
	}
}

// TestNoETagOnErrors: responses outside the cacheable 200 surface —
// unknown endpoints, invalid parameters — carry no ETag and never
// answer 304, even to If-None-Match: *.
func TestNoETagOnErrors(t *testing.T) {
	snap := newTestSnapshot(t, 3, 32)
	srv := New(Config{Snapshot: snap, Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/api/country",         // missing required code=
		"/api/country?code=zz", // malformed code
		"/api/fig9?kind=bogus", // invalid enum
		"/api/country?code=XX", // unknown country (deterministic 404)
	} {
		resp, _ := get(t, ts.URL, path, "*")
		if resp.StatusCode == 200 || resp.StatusCode == 304 {
			t.Fatalf("%s: status %d, want an error status", path, resp.StatusCode)
		}
		if tag := resp.Header.Get("ETag"); tag != "" {
			t.Fatalf("%s: error response carries ETag %q", path, tag)
		}
	}
}

// TestETagForIsPure covers the offline half of the contract used by
// the load generator: canonicalization folds equivalent queries onto
// one tag, and non-canonicalizable queries produce no tag at all.
func TestETagForIsPure(t *testing.T) {
	if got := ETagFor("abc", "nope", nil); got != "" {
		t.Fatalf("unknown endpoint: tag %q, want empty", got)
	}
	if got := ETagFor("abc", "country", nil); got != "" {
		t.Fatalf("missing required param: tag %q, want empty", got)
	}
	a := ETagFor("abc", "fig9", nil)
	b := ETagFor("abc", "fig9", url.Values{"kind": {"registration"}})
	if a == "" || a != b {
		t.Fatalf("default application split tags: %q vs %q", a, b)
	}
	if c := ETagFor("abc", "fig9", url.Values{"kind": {"location"}}); c == a {
		t.Fatalf("distinct params share tag %q", a)
	}
	if d := ETagFor("def", "fig9", nil); d == a {
		t.Fatalf("distinct versions share tag %q", a)
	}
	if got := ETagFor("abc", "fig9", url.Values{"kind": {"bogus"}}); got != "" {
		t.Fatalf("invalid enum: tag %q, want empty", got)
	}
}
