// Package serve is the always-on analysis daemon: it holds a loaded
// study as an immutable snapshot and answers every index-backed
// figure and table over HTTP/JSON. A snapshot bundles the dataset,
// its one-pass analysis index, the world model, a content-derived
// version string, and a per-snapshot response cache — swapping the
// snapshot pointer therefore swaps the cache atomically with the data
// it was computed from, so a response can never mix versions.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/metrics"
	"repro/internal/world"
)

// Snapshot is one immutable serving generation: a dataset, the
// aggregates derived from it, and the responses rendered from those
// aggregates. Snapshots are safe for unbounded concurrent reads; they
// are never mutated after NewSnapshot returns (the cache only gains
// entries, under its own lock).
type Snapshot struct {
	ds *dataset.Dataset
	ix *analysis.Index
	w  *world.Model

	version string // first 12 hex chars of sha256 over the canonical JSONL export
	desc    string // human-readable provenance ("jsonl:/path", "run:seed=42", ...)

	mu    sync.Mutex
	cache map[string]*cacheEntry
}

// cacheEntry is a single-flight response slot, mirroring the probing
// verdict cache: the first requester renders inside once while later
// requesters block on it; done distinguishes a settled entry (plain
// hit) from an in-flight one (coalesced hit).
type cacheEntry struct {
	once   sync.Once
	done   atomic.Bool
	body   []byte
	status int
}

// NewSnapshot freezes ds into a serving snapshot. It fills the
// dataset's derived totals (idempotent) so hand-built datasets serve
// the same stats a pipeline-produced one would, then derives the
// version from the canonical export bytes — equal datasets hash to
// equal versions no matter where they were loaded from.
func NewSnapshot(ds *dataset.Dataset, desc string) (*Snapshot, error) {
	return NewSnapshotWorkers(ds, desc, 0)
}

// NewSnapshotWorkers is NewSnapshot with the analysis index build
// partitioned across workers goroutines (0 picks the default of 8).
// The worker count shapes only the build's wall-clock time — the
// index, and therefore every body this snapshot will ever serve, is
// byte-identical at any setting — so snapshot builds and /admin/reload
// swaps complete faster without perturbing a single response.
func NewSnapshotWorkers(ds *dataset.Dataset, desc string, workers int) (*Snapshot, error) {
	if workers == 0 {
		workers = 8
	}
	ds.FillTotals()
	v, err := DatasetVersion(ds)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		ds:      ds,
		ix:      analysis.BuildIndexWorkers(ds, workers),
		w:       world.New(),
		version: v,
		desc:    desc,
		cache:   map[string]*cacheEntry{},
	}, nil
}

// DatasetVersion is the content version a snapshot of ds would carry:
// the first 12 hex characters of a sha256 over the canonical JSONL
// export. It is a pure function of the dataset, so a client holding
// the same JSONL file computes the same version the daemon serves.
func DatasetVersion(ds *dataset.Dataset) (string, error) {
	h := sha256.New()
	if err := export.WriteJSONL(h, ds); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:12], nil
}

// Version returns the snapshot's content version.
func (s *Snapshot) Version() string { return s.version }

// Desc returns the snapshot's provenance string.
func (s *Snapshot) Desc() string { return s.desc }

// Countries returns the sorted country codes present in the
// government records — the valid values for /api/country?code=.
func (s *Snapshot) Countries() []string {
	shares := s.ix.CountryShares()
	codes := make([]string, 0, len(shares))
	for c := range shares {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	return codes
}

// Render answers one endpoint for the given query, going through the
// same single-flight cache the HTTP handlers use but recording no
// metrics. Tests and the load generator use it to compute the exact
// bytes the daemon must produce for this snapshot.
func (s *Snapshot) Render(name string, query url.Values) (body []byte, status int) {
	return s.respond(name, query, nil)
}

// respond renders (or replays) the response for one endpoint call.
// Responses with a canonical parameter set — including deterministic
// errors like an unknown country code — are cached per snapshot;
// malformed parameter sets are rendered uncached so junk query keys
// cannot grow the cache without bound.
func (s *Snapshot) respond(name string, query url.Values, m *metrics.ServeMetrics) ([]byte, int) {
	ep := endpointIndex[name]
	if ep == nil {
		return marshalError(s.version, name, &apiError{
			Status: 404, Code: "unknown-endpoint",
			Message: "no such endpoint: " + name,
		})
	}
	params, aerr := canonicalParams(ep, query)
	if aerr != nil {
		return marshalError(s.version, name, aerr)
	}
	key := cacheKey(name, params)

	s.mu.Lock()
	e := s.cache[key]
	hit := e != nil
	if !hit {
		e = &cacheEntry{}
		s.cache[key] = e
	}
	s.mu.Unlock()

	if hit {
		m.RecordCacheHit(!e.done.Load())
	} else {
		m.RecordCacheMiss()
	}
	e.once.Do(func() {
		e.body, e.status = s.renderFresh(ep, params)
		e.done.Store(true)
	})
	return e.body, e.status
}

// renderFresh computes an endpoint's response body from the index.
func (s *Snapshot) renderFresh(ep *endpoint, params map[string]string) ([]byte, int) {
	data, err := ep.render(s, params)
	if err != nil {
		aerr, ok := err.(*apiError)
		if !ok {
			aerr = &apiError{Status: 500, Code: "render-failed", Message: err.Error()}
		}
		return marshalError(s.version, ep.name, aerr)
	}
	return marshalEnvelope(s.version, ep.name, params, data)
}

// ETagFor computes the strong entity tag a daemon at the given
// dataset version serves for one endpoint + query: the version joined
// with a 16-hex digest of the canonical cache key. Because a response
// body is a pure function of (version, endpoint, canonical params),
// the tag is strong in the RFC 9110 sense — equal tags imply
// byte-equal bodies. It returns "" when the query does not
// canonicalize (those responses are uncached errors and carry no
// ETag). Clients holding the same dataset file can compute the tag
// the daemon will serve without a first request.
func ETagFor(version, name string, query url.Values) string {
	ep := endpointIndex[name]
	if ep == nil {
		return ""
	}
	params, aerr := canonicalParams(ep, query)
	if aerr != nil {
		return ""
	}
	return etagOf(version, cacheKey(name, params))
}

// etagOf renders the quoted strong tag for a version + cache key.
func etagOf(version, key string) string {
	sum := sha256.Sum256([]byte(key))
	return `"` + version + "-" + hex.EncodeToString(sum[:8]) + `"`
}

// etagMatch reports whether an If-None-Match header value matches the
// given strong tag: a comma-separated list of entity tags, "*"
// matching anything, and weak tags (W/ prefix) compared by their
// opaque part — RFC 9110's weak comparison, which If-None-Match
// mandates.
func etagMatch(header, tag string) bool {
	if header == "" || tag == "" {
		return false
	}
	opaque := strings.TrimPrefix(tag, "W/")
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		if strings.TrimPrefix(part, "W/") == opaque {
			return true
		}
	}
	return false
}

// cacheKey is the canonical identity of one response: endpoint name
// plus the sorted canonical parameters.
func cacheKey(name string, params map[string]string) string {
	if len(params) == 0 {
		return name
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	sep := "?"
	for _, k := range keys {
		b.WriteString(sep)
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(params[k])
		sep = "&"
	}
	return b.String()
}
