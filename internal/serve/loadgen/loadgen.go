// Package loadgen drives a running govserve daemon with a seeded
// request mix and verifies every response body against snapshots
// rendered in-process from the same datasets. The request plan —
// which endpoint, with which parameters, at which index — is a pure
// function of (seed, mix), computed serially before any request is
// sent, so the planned-mix accounting is byte-identical no matter how
// many client workers execute the plan.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/serve"
)

// MixEntry is one weighted slot of the request mix.
type MixEntry struct {
	Endpoint string `json:"endpoint"`
	Query    string `json:"query,omitempty"` // raw query string, e.g. "kind=location"
	Weight   int    `json:"weight"`
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests is the total number of API requests to send.
	Requests int
	// Concurrency is the client worker count; 0 picks 8. The request
	// plan and its accounting do not depend on it.
	Concurrency int
	// Seed drives the endpoint draw for every request index.
	Seed int64
	// Verify holds one snapshot per dataset version the daemon may
	// serve during the run; each response is byte-compared against the
	// snapshot matching its claimed version. Required.
	Verify []*serve.Snapshot
	// Mix overrides the default endpoint mix (optional).
	Mix []MixEntry
	// ReloadAt fires a POST /admin/reload before request index
	// ReloadAt is sent (0 = never).
	ReloadAt int
	// ReloadQuery is the reload selector, e.g. "jsonl=/tmp/b.jsonl".
	ReloadQuery string
	// Fetcher overrides the HTTP client (tests); nil uses net/http.
	Fetcher fetch.Fetcher
	// Retry is the retry policy wrapped around the fetcher.
	Retry fetch.RetryPolicy
}

// Result is the run report. PlannedMix and Requests are deterministic
// for a (seed, mix, request count); everything else — latency,
// throughput, the per-version split, cache temperature — depends on
// wall-clock and interleaving and is reported for the benchmark
// ledger, not for golden comparison.
type Result struct {
	Requests        int            `json:"requests"`
	Failed          int            `json:"failed"`
	Mismatches      int            `json:"mismatches"`
	MismatchSamples []string       `json:"mismatch_samples,omitempty"`
	PlannedMix      map[string]int `json:"planned_mix"`
	// Conditional counts requests sent with an If-None-Match tag
	// precomputed from the first Verify snapshot; NotModified counts
	// how many of those the daemon answered 304 (proof it still serves
	// that exact version, since the strong tag encodes it). The
	// conditional plan is a pure function of the seed; the 304 split
	// depends on which version was serving when each request landed.
	Conditional int `json:"conditional"`
	NotModified int `json:"not_modified"`

	ByVersion     map[string]int            `json:"by_version"`
	ReloadStatus  int                       `json:"reload_status,omitempty"`
	DurationMS    float64                   `json:"duration_ms"`
	ThroughputRPS float64                   `json:"throughput_rps"`
	Latency       metrics.HistogramSnapshot `json:"latency"`
	CacheHitRate  float64                   `json:"cache_hit_rate"`
	ServerStats   *metrics.ServeRuntime     `json:"server_stats,omitempty"`
}

// DefaultMix covers every endpoint, weighting the headline figures
// heavier and adding per-country lookups for codes present in all
// verification snapshots (so the expected body exists under every
// version the daemon may serve).
func DefaultMix(verify []*serve.Snapshot) []MixEntry {
	mix := []MixEntry{
		{Endpoint: "fig1", Weight: 3}, {Endpoint: "fig2", Weight: 3},
		{Endpoint: "fig4", Weight: 3}, {Endpoint: "fig5", Weight: 2},
		{Endpoint: "fig6", Weight: 3}, {Endpoint: "fig8", Weight: 3},
		{Endpoint: "fig9", Query: "kind=registration", Weight: 2},
		{Endpoint: "fig9", Query: "kind=location", Weight: 2},
		{Endpoint: "fig10", Weight: 2}, {Endpoint: "fig11", Weight: 2},
		{Endpoint: "matrix", Query: "kind=registration", Weight: 1},
		{Endpoint: "matrix", Query: "kind=location", Weight: 1},
		{Endpoint: "affinity", Weight: 1}, {Endpoint: "nawe", Weight: 1},
		{Endpoint: "gdpr", Weight: 2}, {Endpoint: "table4", Weight: 2},
		{Endpoint: "table5", Weight: 2}, {Endpoint: "topsites", Weight: 2},
		{Endpoint: "coverage", Weight: 1}, {Endpoint: "stats", Weight: 3},
	}
	codes := sharedCountries(verify)
	if len(codes) > 8 {
		codes = codes[:8]
	}
	for _, c := range codes {
		mix = append(mix, MixEntry{Endpoint: "country", Query: "code=" + c, Weight: 1})
	}
	return mix
}

// sharedCountries returns the sorted intersection of the country
// codes of every verification snapshot.
func sharedCountries(verify []*serve.Snapshot) []string {
	if len(verify) == 0 {
		return nil
	}
	counts := map[string]int{}
	for _, snap := range verify {
		for _, c := range snap.Countries() {
			counts[c]++
		}
	}
	var codes []string
	for c, n := range counts {
		if n == len(verify) {
			codes = append(codes, c)
		}
	}
	sort.Strings(codes)
	return codes
}

// condSalt decorrelates the conditional-request draw from the mix
// draw; both are pure per-index hashes of the seed.
const condSalt = 0xe7a9c4d2f1b38657

// splitmix64 is the per-index draw: a pure hash of (seed, index), so
// the plan is independent of execution order.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// entryKey is a mix entry's identity in PlannedMix and the expected
// body tables.
func entryKey(e MixEntry) string {
	if e.Query == "" {
		return e.Endpoint
	}
	return e.Endpoint + "?" + e.Query
}

// plan draws the mix entry for every request index.
func plan(cfg *Config, mix []MixEntry) ([]int, map[string]int, error) {
	total := 0
	for _, e := range mix {
		if e.Weight < 0 {
			return nil, nil, fmt.Errorf("loadgen: negative weight for %s", entryKey(e))
		}
		total += e.Weight
	}
	if total == 0 {
		return nil, nil, errors.New("loadgen: empty mix")
	}
	picks := make([]int, cfg.Requests)
	planned := map[string]int{}
	for i := range picks {
		draw := int(splitmix64(uint64(cfg.Seed)^(uint64(i)*0x9e3779b97f4a7c15)) % uint64(total))
		for j, e := range mix {
			draw -= e.Weight
			if draw < 0 {
				picks[i] = j
				break
			}
		}
		planned[entryKey(mix[picks[i]])]++
	}
	return picks, planned, nil
}

// HeaderFetcher is the optional extension of fetch.Fetcher a client
// must implement for the conditional-request leg: the simulation-side
// Fetcher carries no request headers, so a fetcher that cannot attach
// If-None-Match simply skips that leg (every request goes out
// unconditional, as before).
type HeaderFetcher interface {
	FetchWithHeader(ctx context.Context, url string, header http.Header) (*fetch.Response, error)
}

// httpFetcher adapts net/http to the fetch.Fetcher interface (plus
// the HeaderFetcher extension).
type httpFetcher struct{ c *http.Client }

func (f httpFetcher) Fetch(ctx context.Context, u string) (*fetch.Response, error) {
	return f.FetchWithHeader(ctx, u, nil)
}

func (f httpFetcher) FetchWithHeader(ctx context.Context, u string, header http.Header) (*fetch.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	res, err := f.c.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	return &fetch.Response{Status: res.StatusCode, Body: body, BodySize: int64(len(body))}, nil
}

// Run executes the load plan against cfg.BaseURL and verifies every
// response. It returns an error only for setup failures; request
// failures and body mismatches are counted in the Result.
//
//lint:ignore determinism-taint -- harness wall times and latency stamps; the verification verdict compares bodies byte-for-byte and never depends on the clock
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL is required")
	}
	if len(cfg.Verify) == 0 {
		return nil, errors.New("loadgen: at least one Verify snapshot is required")
	}
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix(cfg.Verify)
	}
	picks, planned, err := plan(&cfg, mix)
	if err != nil {
		return nil, err
	}

	queries := make([]url.Values, len(mix))
	for j, e := range mix {
		q, err := url.ParseQuery(e.Query)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad query %q: %w", e.Query, err)
		}
		queries[j] = q
	}

	// Pre-render the expected body of every mix entry under every
	// version the daemon may serve. Verification then only needs the
	// version a response claims: expected[version][entry] is the one
	// legal body.
	type expectation struct {
		body   []byte
		status int
	}
	expected := make(map[string]map[int]expectation, len(cfg.Verify))
	for _, snap := range cfg.Verify {
		perEntry := make(map[int]expectation, len(mix))
		for j, e := range mix {
			body, status := snap.Render(e.Endpoint, queries[j])
			perEntry[j] = expectation{body: body, status: status}
		}
		expected[snap.Version()] = perEntry
	}

	client := cfg.Fetcher
	if client == nil {
		client = httpFetcher{c: &http.Client{Timeout: 30 * time.Second}}
	}
	retrier := &fetch.Retrier{Inner: client, Policy: cfg.Retry}

	// The conditional leg revalidates against the first Verify
	// snapshot: every fourth request (a salted per-index draw, as
	// order-independent as the mix draw) carries the If-None-Match tag
	// that version would serve. A 304 proves the daemon still serves
	// those exact bytes — the strong tag encodes version, endpoint, and
	// canonical params — while a full 200 (after a reload swapped
	// versions) falls through to ordinary byte verification.
	headerClient, _ := client.(HeaderFetcher)
	condVersion := cfg.Verify[0].Version()

	concurrency := cfg.Concurrency
	if concurrency <= 0 {
		concurrency = 8
	}

	res := &Result{
		Requests:   cfg.Requests,
		PlannedMix: planned,
		ByVersion:  map[string]int{},
	}
	var (
		mu      sync.Mutex
		lat     metrics.Histogram
		reload  sync.Once
		sampleN = 5
	)

	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		res.Failed++
		if len(res.MismatchSamples) < sampleN {
			res.MismatchSamples = append(res.MismatchSamples, fmt.Sprintf(format, args...))
		}
	}
	mismatch := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		res.Mismatches++
		if len(res.MismatchSamples) < sampleN {
			res.MismatchSamples = append(res.MismatchSamples, fmt.Sprintf(format, args...))
		}
	}

	start := time.Now()
	pool := sched.NewPool(concurrency)
	defer pool.Close()
	pool.Each(ctx, cfg.Requests, func(i int) {
		if cfg.ReloadAt > 0 && i == cfg.ReloadAt {
			reload.Do(func() {
				status, err := postReload(ctx, cfg.BaseURL, cfg.ReloadQuery)
				mu.Lock()
				res.ReloadStatus = status
				mu.Unlock()
				if err != nil {
					fail("reload: %v", err)
				}
			})
		}
		e := mix[picks[i]]
		u := cfg.BaseURL + "/api/" + e.Endpoint
		if e.Query != "" {
			u += "?" + e.Query
		}
		var condTag string
		if headerClient != nil && splitmix64(uint64(cfg.Seed)^condSalt^(uint64(i)*0x9e3779b97f4a7c15))%4 == 0 {
			if exp := expected[condVersion][picks[i]]; exp.status == http.StatusOK {
				condTag = serve.ETagFor(condVersion, e.Endpoint, queries[picks[i]])
			}
		}
		t0 := time.Now()
		var resp *fetch.Response
		var err error
		if condTag != "" {
			hdr := http.Header{}
			hdr.Set("If-None-Match", condTag)
			resp, err = headerClient.FetchWithHeader(ctx, u, hdr)
		} else {
			resp, err = retrier.Fetch(ctx, u)
		}
		lat.Observe(time.Since(t0))
		if err != nil {
			fail("request %d %s: %v", i, entryKey(e), err)
			return
		}
		if condTag != "" {
			mu.Lock()
			res.Conditional++
			mu.Unlock()
			if resp.Status == http.StatusNotModified {
				if len(resp.Body) != 0 {
					mismatch("request %d %s: 304 carried %d body bytes", i, entryKey(e), len(resp.Body))
					return
				}
				mu.Lock()
				res.NotModified++
				res.ByVersion[condVersion]++
				mu.Unlock()
				return
			}
			// Tag missed — the daemon moved to another version; the
			// full response verifies below like any other.
		}
		var env struct {
			Version string `json:"version"`
		}
		if err := json.Unmarshal(resp.Body, &env); err != nil {
			mismatch("request %d %s: unparseable body: %v", i, entryKey(e), err)
			return
		}
		mu.Lock()
		res.ByVersion[env.Version]++
		mu.Unlock()
		perEntry, ok := expected[env.Version]
		if !ok {
			mismatch("request %d %s: unknown version %q", i, entryKey(e), env.Version)
			return
		}
		want := perEntry[picks[i]]
		if resp.Status != want.status || !bytes.Equal(resp.Body, want.body) {
			mismatch("request %d %s: status %d vs %d, body diverges under version %s",
				i, entryKey(e), resp.Status, want.status, env.Version)
		}
	})
	elapsed := time.Since(start)

	res.DurationMS = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		res.ThroughputRPS = float64(cfg.Requests) / elapsed.Seconds()
	}
	res.Latency = lat.Snapshot()

	// Pull the daemon's own serve metrics for the cache hit rate; a
	// daemon without /metrics (or a test stub) just leaves them out.
	if snap, err := fetchMetrics(ctx, client, cfg.BaseURL); err == nil {
		res.ServerStats = &snap.Runtime.Serve
		if lookups := snap.Runtime.Serve.CacheHits + snap.Runtime.Serve.CacheMisses; lookups > 0 {
			res.CacheHitRate = float64(snap.Runtime.Serve.CacheHits) / float64(lookups)
		}
	}
	return res, nil
}

// postReload fires the mid-run snapshot swap.
func postReload(ctx context.Context, base, query string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/admin/reload?"+query, nil)
	if err != nil {
		return 0, err
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer res.Body.Close()
	io.Copy(io.Discard, res.Body)
	if res.StatusCode != http.StatusOK {
		return res.StatusCode, fmt.Errorf("reload answered %d", res.StatusCode)
	}
	return res.StatusCode, nil
}

// fetchMetrics reads the daemon's live registry snapshot.
func fetchMetrics(ctx context.Context, client fetch.Fetcher, base string) (*metrics.Snapshot, error) {
	resp, err := client.Fetch(ctx, base+"/metrics")
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, fmt.Errorf("metrics answered %d", resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
