package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/netip"
	"testing"

	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/world"
)

// lgDataset mirrors the serve package's hand-built study shape; the
// variant perturbs bytes so each variant hashes to its own version.
func lgDataset(variant int64, n int) *dataset.Dataset {
	countries := []struct {
		code   string
		region world.Region
	}{{"US", world.NA}, {"DE", world.ECA}, {"FR", world.ECA}, {"BR", world.LAC}}
	ds := &dataset.Dataset{Scale: 0.01, Seed: variant}
	for i := 0; i < n; i++ {
		c := countries[i%len(countries)]
		cat := world.Categories[i%len(world.Categories)]
		ds.Records = append(ds.Records, dataset.URLRecord{
			URL:     fmt.Sprintf("https://gov%d.%s/p/%d", i, c.code, variant),
			Host:    fmt.Sprintf("gov%d.%s", i%8, c.code),
			Country: c.code, Region: c.region,
			Bytes: int64(900 + i*31 + int(variant)*17), Method: "tld",
			IP:  netip.AddrFrom4([4]byte{198, 51, byte(100 + i%4), byte(1 + i%250)}),
			ASN: 64500 + i%6, Org: fmt.Sprintf("Org%d", i%6),
			RegCountry: c.code, ServeCountry: c.code, GeoMethod: "AP",
			Category: cat, GovAS: cat == world.CatGovtSOE,
		})
	}
	return ds
}

func lgSnapshot(t *testing.T, variant int64) *serve.Snapshot {
	t.Helper()
	snap, err := serve.NewSnapshot(lgDataset(variant, 80), fmt.Sprintf("test:%d", variant))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// startServer serves snapA with a reloader that always swaps to snapB.
func startServer(t *testing.T, snapA, snapB *serve.Snapshot) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{
		Snapshot: snapA,
		Workers:  8,
		Reloader: func(context.Context, serve.Source) (*serve.Snapshot, error) { return snapB, nil },
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadgenVerifiesAcrossReload drives the full default mix against
// a live server with a snapshot swap mid-run: zero failed requests,
// zero body mismatches, and every response accounted to one of the two
// legal versions.
func TestLoadgenVerifiesAcrossReload(t *testing.T) {
	snapA, snapB := lgSnapshot(t, 1), lgSnapshot(t, 2)
	ts := startServer(t, snapA, snapB)

	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Requests:    600,
		Concurrency: 8,
		Seed:        7,
		Verify:      []*serve.Snapshot{snapA, snapB},
		ReloadAt:    300,
		ReloadQuery: "jsonl=ignored-by-stub",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Mismatches != 0 {
		t.Fatalf("failed=%d mismatches=%d samples=%v", res.Failed, res.Mismatches, res.MismatchSamples)
	}
	if res.ReloadStatus != 200 {
		t.Fatalf("reload status = %d", res.ReloadStatus)
	}
	total := 0
	for v := range res.ByVersion {
		if v != snapA.Version() && v != snapB.Version() {
			t.Fatalf("response claimed unknown version %q", v)
		}
		total += res.ByVersion[v]
	}
	if total != 600 {
		t.Fatalf("by_version accounts for %d of 600 requests", total)
	}
	if res.Latency.Count != 600 {
		t.Fatalf("latency histogram holds %d observations", res.Latency.Count)
	}
	if res.ServerStats == nil || res.CacheHitRate <= 0 {
		t.Fatalf("server stats missing or cold cache: %+v", res.ServerStats)
	}
	// Roughly a quarter of the plan goes out conditional; the tags are
	// computed from snapA, so only requests landing before the swap can
	// revalidate. Both halves must exist in a 600-request reload run.
	if res.Conditional == 0 {
		t.Fatal("no conditional requests were sent")
	}
	if res.NotModified == 0 {
		t.Fatal("no conditional request was answered 304 before the reload")
	}
	if res.NotModified >= res.Conditional {
		t.Fatalf("all %d conditionals answered 304 despite the version swap", res.Conditional)
	}
	if res.ServerStats.NotModified != int64(res.NotModified) {
		t.Fatalf("daemon counted %d 304s, client saw %d", res.ServerStats.NotModified, res.NotModified)
	}
}

// TestLoadgenMixAccountingIsShapeInvariant pins the determinism
// contract: for a fixed seed the planned request mix is byte-identical
// no matter the client concurrency, and both runs verify cleanly.
func TestLoadgenMixAccountingIsShapeInvariant(t *testing.T) {
	snapA, snapB := lgSnapshot(t, 1), lgSnapshot(t, 2)

	mixJSON := func(concurrency int) []byte {
		ts := startServer(t, snapA, snapB)
		res, err := Run(context.Background(), Config{
			BaseURL:     ts.URL,
			Requests:    400,
			Concurrency: concurrency,
			Seed:        99,
			Verify:      []*serve.Snapshot{snapA, snapB},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 || res.Mismatches != 0 {
			t.Fatalf("concurrency %d: failed=%d mismatches=%d samples=%v",
				concurrency, res.Failed, res.Mismatches, res.MismatchSamples)
		}
		// No reload in this run: the daemon never leaves snapA, so
		// every conditional request must revalidate, and the
		// conditional split itself is part of the deterministic plan.
		if res.Conditional == 0 || res.NotModified != res.Conditional {
			t.Fatalf("concurrency %d: conditional=%d not_modified=%d, want all 304",
				concurrency, res.Conditional, res.NotModified)
		}
		body, err := json.Marshal(res.PlannedMix)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	serial := mixJSON(1)
	wide := mixJSON(8)
	if string(serial) != string(wide) {
		t.Fatalf("planned mix depends on concurrency:\n 1: %s\n 8: %s", serial, wide)
	}
	n := 0
	var mix map[string]int
	if err := json.Unmarshal(serial, &mix); err != nil {
		t.Fatal(err)
	}
	for _, c := range mix {
		n += c
	}
	if n != 400 {
		t.Fatalf("planned mix accounts for %d of 400 requests", n)
	}
}

// TestDefaultMixCoversEveryEndpoint keeps the default mix honest: any
// endpoint added to the API must join the load mix (or be excluded
// here on purpose).
func TestDefaultMixCoversEveryEndpoint(t *testing.T) {
	snap := lgSnapshot(t, 1)
	covered := map[string]bool{}
	for _, e := range DefaultMix([]*serve.Snapshot{snap}) {
		covered[e.Endpoint] = true
	}
	for _, name := range serve.EndpointNames() {
		if !covered[name] {
			t.Fatalf("endpoint %s missing from the default mix", name)
		}
	}
}
