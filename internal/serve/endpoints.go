package serve

import (
	"encoding/json"
	"net/url"
	"sort"

	"repro/internal/analysis"
	"repro/internal/probing"
	"repro/internal/world"
)

// Envelope is the wrapper every successful response carries. Field
// order is fixed by the struct, map-valued data marshals with sorted
// keys, and floats render canonically, so a response body is a pure
// function of (dataset version, endpoint, params) — which is what
// makes byte-level verification and caching sound.
type Envelope struct {
	Version  string            `json:"version"`
	Endpoint string            `json:"endpoint"`
	Params   map[string]string `json:"params,omitempty"`
	Data     any               `json:"data"`
}

// apiError is a typed endpoint failure; Status is the HTTP status the
// daemon maps it to.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Field   string `json:"field,omitempty"`
	Stored  string `json:"stored,omitempty"`
	Want    string `json:"want,omitempty"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

// errorEnvelope is the error-side counterpart of Envelope.
type errorEnvelope struct {
	Version  string    `json:"version"`
	Endpoint string    `json:"endpoint,omitempty"`
	Error    *apiError `json:"error"`
}

func marshalEnvelope(version, name string, params map[string]string, data any) ([]byte, int) {
	body, err := json.Marshal(Envelope{Version: version, Endpoint: name, Params: params, Data: data})
	if err != nil {
		return marshalError(version, name, &apiError{
			Status: 500, Code: "encode-failed", Message: err.Error(),
		})
	}
	return append(body, '\n'), 200
}

func marshalError(version, name string, aerr *apiError) ([]byte, int) {
	body, err := json.Marshal(errorEnvelope{Version: version, Endpoint: name, Error: aerr})
	if err != nil {
		// An apiError is plain strings and ints; it cannot fail to
		// encode, but never answer nothing.
		return []byte(`{"error":{"code":"encode-failed"}}` + "\n"), 500
	}
	return append(body, '\n'), aerr.Status
}

// param declares one recognized query parameter of an endpoint.
type param struct {
	key      string
	required bool
	allowed  []string // nil = validated by the renderer
	def      string   // substituted when the key is absent
}

// endpoint couples a name to its parameter schema and renderer. The
// renderer is a pure function of (snapshot, canonical params).
type endpoint struct {
	name   string
	params []param
	render func(s *Snapshot, p map[string]string) (any, error)
}

// canonicalParams validates raw query values against the endpoint's
// schema and returns the canonical parameter map that identifies the
// response: defaults applied, unknown keys rejected, enum values
// checked. Rejections come back as 400-class apiErrors.
func canonicalParams(ep *endpoint, query url.Values) (map[string]string, *apiError) {
	var out map[string]string
	for key := range query {
		known := false
		for i := range ep.params {
			if ep.params[i].key == key {
				known = true
				break
			}
		}
		if !known {
			return nil, &apiError{Status: 400, Code: "unknown-param", Field: key,
				Message: "unknown parameter: " + key}
		}
	}
	for i := range ep.params {
		p := &ep.params[i]
		v := query.Get(p.key)
		if v == "" {
			if p.required {
				return nil, &apiError{Status: 400, Code: "missing-param", Field: p.key,
					Message: "required parameter missing: " + p.key}
			}
			if p.def == "" {
				continue
			}
			v = p.def
		}
		if p.allowed != nil {
			ok := false
			for _, a := range p.allowed {
				if v == a {
					ok = true
					break
				}
			}
			if !ok {
				return nil, &apiError{Status: 400, Code: "bad-param", Field: p.key,
					Message: "invalid value for " + p.key + ": " + v}
			}
		}
		if out == nil {
			out = map[string]string{}
		}
		out[p.key] = v
	}
	return out, nil
}

// Wire types: stable JSON shapes for the analysis results. Category
// mixes become maps keyed by category name so the API does not leak
// the internal category ordering.

type sharesWire struct {
	URLs   map[string]float64 `json:"urls"`
	Bytes  map[string]float64 `json:"bytes"`
	NURLs  int                `json:"n_urls"`
	NBytes int64              `json:"n_bytes"`
}

func mixWire(m world.Mix) map[string]float64 {
	out := make(map[string]float64, len(world.Categories))
	for _, c := range world.Categories {
		out[c.String()] = m[c]
	}
	return out
}

func sharesWireOf(s analysis.Shares) sharesWire {
	return sharesWire{URLs: mixWire(s.URLs), Bytes: mixWire(s.Bytes), NURLs: s.NURL, NBytes: s.NByte}
}

type splitWire struct {
	RegDomestic float64 `json:"reg_domestic"`
	GeoDomestic float64 `json:"geo_domestic"`
	NReg        int     `json:"n_reg"`
	NGeo        int     `json:"n_geo"`
}

func splitWireOf(s analysis.SplitShares) splitWire {
	return splitWire{RegDomestic: s.RegDomestic, GeoDomestic: s.GeoDomestic, NReg: s.NReg, NGeo: s.NGeo}
}

type majorityWire struct {
	Country    string  `json:"country"`
	ThirdParty bool    `json:"third_party"`
	GovShare   float64 `json:"gov_share"`
}

type flowWire struct {
	Src   string  `json:"src"`
	Dst   string  `json:"dst"`
	URLs  int     `json:"urls"`
	Share float64 `json:"share"`
}

type footprintWire struct {
	ASN       int    `json:"asn"`
	Org       string `json:"org"`
	Countries int    `json:"countries"`
}

type divWire struct {
	Country     string  `json:"country"`
	HHIURLs     float64 `json:"hhi_urls"`
	HHIBytes    float64 `json:"hhi_bytes"`
	Dominant    string  `json:"dominant"`
	TopNetShare float64 `json:"top_net_share"`
}

type comparisonWire struct {
	Gov      sharesWire `json:"gov"`
	Topsites sharesWire `json:"topsites"`
	GovSplit splitWire  `json:"gov_split"`
	TopSplit splitWire  `json:"top_split"`
}

type table4Wire struct {
	UnicastAP int `json:"unicast_ap"`
	UnicastMG int `json:"unicast_mg"`
	UnicastUR int `json:"unicast_ur"`
	UnicastEX int `json:"unicast_ex"`
	AnycastAP int `json:"anycast_ap"`
	AnycastUR int `json:"anycast_ur"`
	Unicast   int `json:"unicast"`
	Anycast   int `json:"anycast"`
}

func table4WireOf(st probing.Stats) table4Wire {
	return table4Wire{
		UnicastAP: st.UnicastAP, UnicastMG: st.UnicastMG,
		UnicastUR: st.UnicastUR, UnicastEX: st.UnicastEX,
		AnycastAP: st.AnycastAP, AnycastUR: st.AnycastUR,
		Unicast: st.UnicastAP + st.UnicastMG + st.UnicastUR + st.UnicastEX,
		Anycast: st.AnycastAP + st.AnycastUR,
	}
}

type gdprWire struct {
	Compliant int     `json:"compliant"`
	Total     int     `json:"total"`
	Share     float64 `json:"share"`
}

type countryCoverageWire struct {
	Region        string         `json:"region"`
	LandingURLs   int            `json:"landing_urls"`
	InternalURLs  int            `json:"internal_urls"`
	Hostnames     int            `json:"hostnames"`
	Attempted     int            `json:"attempted"`
	FailedURLs    int            `json:"failed_urls"`
	Retries       int            `json:"retries"`
	Failures      map[string]int `json:"failures,omitempty"`
	Failed        bool           `json:"failed,omitempty"`
	FailureReason string         `json:"failure_reason,omitempty"`
}

type coverageWire struct {
	Countries       map[string]countryCoverageWire `json:"countries"`
	TotalAttempted  int                            `json:"total_attempted"`
	TotalFailedURLs int                            `json:"total_failed_urls"`
	TotalRetries    int                            `json:"total_retries"`
	FailuresByKind  map[string]int                 `json:"failures_by_kind,omitempty"`
	FailedCountries []string                       `json:"failed_countries,omitempty"`
}

type statsWire struct {
	Records         int     `json:"records"`
	Topsites        int     `json:"topsites"`
	Countries       int     `json:"countries"`
	TotalLanding    int     `json:"total_landing"`
	TotalInternal   int     `json:"total_internal"`
	TotalUniqueURLs int     `json:"total_unique_urls"`
	TotalHostnames  int     `json:"total_hostnames"`
	ASes            int     `json:"ases"`
	GovASes         int     `json:"gov_ases"`
	UniqueIPs       int     `json:"unique_ips"`
	AnycastIPs      int     `json:"anycast_ips"`
	ServerCountries int     `json:"server_countries"`
	Scale           float64 `json:"scale"`
	Seed            int64   `json:"seed"`
}

type countryWire struct {
	Code    string     `json:"code"`
	Region  string     `json:"region"`
	Shares  sharesWire `json:"shares"`
	Records int        `json:"records"`
}

// kindParam parses the fig9/matrix kind parameter (already validated
// against the enum by canonicalParams).
func kindParam(p map[string]string) analysis.FlowKind {
	if p["kind"] == "location" {
		return analysis.FlowLocation
	}
	return analysis.FlowRegistration
}

var kindSpec = []param{{key: "kind", allowed: []string{"registration", "location"}, def: "registration"}}

// endpoints is the full API surface, one entry per index-backed
// figure or table, in route-registration order.
var endpoints = []endpoint{
	{name: "fig1", render: func(s *Snapshot, _ map[string]string) (any, error) {
		entries := s.ix.MajorityMap()
		out := make([]majorityWire, 0, len(entries))
		for _, e := range entries {
			out = append(out, majorityWire{Country: e.Country, ThirdParty: e.ThirdPty, GovShare: e.GovShare})
		}
		return out, nil
	}},
	{name: "fig2", render: func(s *Snapshot, _ map[string]string) (any, error) {
		return sharesWireOf(s.ix.GlobalShares()), nil
	}},
	{name: "fig4", render: func(s *Snapshot, _ map[string]string) (any, error) {
		regional := s.ix.RegionalShares()
		out := make(map[string]sharesWire, len(regional))
		for reg, sh := range regional {
			out[string(reg)] = sharesWireOf(sh)
		}
		return out, nil
	}},
	{name: "fig5", render: func(s *Snapshot, _ map[string]string) (any, error) {
		byCountry := s.ix.CountryShares()
		out := make(map[string]sharesWire, len(byCountry))
		for c, sh := range byCountry {
			out[c] = sharesWireOf(sh)
		}
		return out, nil
	}},
	{name: "fig6", render: func(s *Snapshot, _ map[string]string) (any, error) {
		return splitWireOf(s.ix.DomesticIntl()), nil
	}},
	{name: "fig8", render: func(s *Snapshot, _ map[string]string) (any, error) {
		regional := s.ix.RegionalDomesticIntl()
		out := make(map[string]splitWire, len(regional))
		for reg, sp := range regional {
			out[string(reg)] = splitWireOf(sp)
		}
		return out, nil
	}},
	{name: "fig9", params: kindSpec, render: func(s *Snapshot, p map[string]string) (any, error) {
		flows := s.ix.CrossBorderFlows(kindParam(p))
		out := make([]flowWire, 0, len(flows))
		for _, f := range flows {
			out = append(out, flowWire{Src: f.Src, Dst: f.Dst, URLs: f.URLs, Share: f.Share})
		}
		return out, nil
	}},
	{name: "fig10", render: func(s *Snapshot, _ map[string]string) (any, error) {
		fps := s.ix.GlobalProviderFootprints()
		out := make([]footprintWire, 0, len(fps))
		for _, f := range fps {
			out = append(out, footprintWire{ASN: f.ASN, Org: f.Org, Countries: f.Countries})
		}
		return out, nil
	}},
	{name: "fig11", render: func(s *Snapshot, _ map[string]string) (any, error) {
		divs := s.ix.Diversify()
		out := make([]divWire, 0, len(divs))
		for _, d := range divs {
			out = append(out, divWire{Country: d.Country, HHIURLs: d.HHIURLs,
				HHIBytes: d.HHIBytes, Dominant: d.DominantCat.String(), TopNetShare: d.TopNetShare})
		}
		return out, nil
	}},
	{name: "matrix", params: kindSpec, render: func(s *Snapshot, p map[string]string) (any, error) {
		matrix := s.ix.RegionFlowMatrix(s.w, kindParam(p))
		out := make(map[string]map[string]int, len(matrix))
		for src, row := range matrix {
			wireRow := make(map[string]int, len(row))
			for dst, n := range row {
				wireRow[string(dst)] = n
			}
			out[string(src)] = wireRow
		}
		return out, nil
	}},
	{name: "affinity", render: func(s *Snapshot, _ map[string]string) (any, error) {
		aff := s.ix.RegionalAffinity(s.w)
		out := make(map[string]map[string]float64, len(aff))
		for reg, row := range aff {
			out[string(reg)] = row
		}
		return out, nil
	}},
	{name: "nawe", render: func(s *Snapshot, _ map[string]string) (any, error) {
		return map[string]float64{"share": s.ix.AbroadInNAWE()}, nil
	}},
	{name: "gdpr", render: func(s *Snapshot, _ map[string]string) (any, error) {
		compliant, total := s.ix.GDPRCompliance(s.w)
		out := gdprWire{Compliant: compliant, Total: total}
		if total > 0 {
			out.Share = float64(compliant) / float64(total)
		}
		return out, nil
	}},
	{name: "table4", render: func(s *Snapshot, _ map[string]string) (any, error) {
		return table4WireOf(analysis.GeoValidation(s.ds)), nil
	}},
	{name: "table5", render: func(s *Snapshot, _ map[string]string) (any, error) {
		shares := s.ix.InRegionShare(s.w)
		out := make(map[string]float64, len(shares))
		for reg, v := range shares {
			out[string(reg)] = v
		}
		return out, nil
	}},
	{name: "topsites", render: func(s *Snapshot, _ map[string]string) (any, error) {
		cmp := s.ix.CompareTopsites()
		return comparisonWire{
			Gov: sharesWireOf(cmp.Gov), Topsites: sharesWireOf(cmp.Topsites),
			GovSplit: splitWireOf(cmp.GovSplit), TopSplit: splitWireOf(cmp.TopSplit),
		}, nil
	}},
	{name: "coverage", render: func(s *Snapshot, _ map[string]string) (any, error) {
		out := coverageWire{
			Countries:       make(map[string]countryCoverageWire, len(s.ds.PerCountry)),
			TotalAttempted:  s.ds.TotalAttempted,
			TotalFailedURLs: s.ds.TotalFailedURLs,
			TotalRetries:    s.ds.TotalRetries,
			FailuresByKind:  s.ds.FailuresByKind,
			FailedCountries: s.ds.FailedCountries,
		}
		for code, st := range s.ds.PerCountry {
			out.Countries[code] = countryCoverageWire{
				Region: string(st.Region), LandingURLs: st.LandingURLs,
				InternalURLs: st.InternalURLs, Hostnames: st.Hostnames,
				Attempted: st.Attempted, FailedURLs: st.FailedURLs,
				Retries: st.Retries, Failures: st.Failures,
				Failed: st.Failed, FailureReason: st.FailureReason,
			}
		}
		return out, nil
	}},
	{name: "stats", render: func(s *Snapshot, _ map[string]string) (any, error) {
		ds := s.ds
		return statsWire{
			Records: len(ds.Records), Topsites: len(ds.Topsites),
			Countries: len(s.Countries()), TotalLanding: ds.TotalLanding,
			TotalInternal: ds.TotalInternal, TotalUniqueURLs: ds.TotalUniqueURLs,
			TotalHostnames: ds.TotalHostnames, ASes: ds.ASes, GovASes: ds.GovASes,
			UniqueIPs: ds.UniqueIPs, AnycastIPs: ds.AnycastIPs,
			ServerCountries: ds.ServerCountries, Scale: ds.Scale, Seed: ds.Seed,
		}, nil
	}},
	{name: "country", params: []param{{key: "code", required: true}}, render: func(s *Snapshot, p map[string]string) (any, error) {
		code := p["code"]
		sh, ok := s.ix.CountryShares()[code]
		if !ok {
			return nil, &apiError{Status: 404, Code: "unknown-country", Field: "code",
				Message: "no records for country: " + code}
		}
		region := ""
		if st := s.ds.PerCountry[code]; st != nil {
			region = string(st.Region)
		}
		return countryWire{Code: code, Region: region, Shares: sharesWireOf(sh), Records: sh.NURL}, nil
	}},
}

// endpointIndex resolves an endpoint by name.
var endpointIndex = func() map[string]*endpoint {
	ix := make(map[string]*endpoint, len(endpoints))
	for i := range endpoints {
		ix[endpoints[i].name] = &endpoints[i]
	}
	return ix
}()

// EndpointNames lists every API endpoint, sorted.
func EndpointNames() []string {
	names := make([]string, 0, len(endpoints))
	for i := range endpoints {
		names = append(names, endpoints[i].name)
	}
	sort.Strings(names)
	return names
}
