package whois

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Prefix:     netip.MustParsePrefix("16.12.0.0/16"),
		NetName:    "UY-GOV-FINANCE",
		ASN:        210042,
		Org:        "Ministry of Finance of Uruguay",
		Country:    "UY",
		Email:      "noc@gub.uy",
		PeeringURL: "https://www.finance.gub.uy",
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	r := sampleRecord()
	got, err := Parse(Render(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Org != r.Org || got.Country != r.Country || got.ASN != r.ASN ||
		got.Email != r.Email || got.NetName != r.NetName || got.Prefix != r.Prefix {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", got, r)
	}
}

func TestRenderFormat(t *testing.T) {
	text := Render(sampleRecord())
	for _, want := range []string{
		"inetnum:        16.12.0.0 - 16.12.255.255",
		"org-name:       Ministry of Finance of Uruguay",
		"country:        UY",
		"origin-as:      AS210042",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered WHOIS missing %q:\n%s", want, text)
		}
	}
}

func TestParseToleratesUnknownFields(t *testing.T) {
	text := "inetnum: 16.0.0.0 - 16.0.255.255\nweird-key: value\nno colon line is fine too maybe\norg-name: X Corp\ncountry: DE\norigin-as: AS1\n"
	rec, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Org != "X Corp" || rec.Country != "DE" {
		t.Fatalf("parse = %+v", rec)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse("% nothing here\n"); err == nil {
		t.Fatal("empty response accepted")
	}
}

func TestParseRangeQuick(t *testing.T) {
	f := func(a, b byte, bitsRaw uint8) bool {
		bits := 8 + int(bitsRaw%17) // /8 .. /24
		p, err := netip.AddrFrom4([4]byte{a, b, 0, 0}).Prefix(bits)
		if err != nil {
			return false
		}
		rendered := Render(Record{Prefix: p, ASN: 1, Org: "x", Country: "ZZ", NetName: "N"})
		got, err := Parse(rendered)
		return err == nil && got.Prefix == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDBLongestPrefixLookup(t *testing.T) {
	db := NewDB()
	db.Add(Record{Prefix: netip.MustParsePrefix("16.0.0.0/8"), Org: "Big", ASN: 1, Country: "US"})
	db.Add(Record{Prefix: netip.MustParsePrefix("16.12.0.0/16"), Org: "Specific", ASN: 2, Country: "UY"})
	db.Sort()
	rec, ok := db.Lookup(netip.MustParseAddr("16.12.1.1"))
	if !ok || rec.Org != "Specific" {
		t.Fatalf("lookup = %+v, want the /16", rec)
	}
	rec, ok = db.Lookup(netip.MustParseAddr("16.200.0.1"))
	if !ok || rec.Org != "Big" {
		t.Fatalf("lookup = %+v, want the /8", rec)
	}
	if _, ok := db.Lookup(netip.MustParseAddr("99.0.0.1")); ok {
		t.Fatal("lookup outside all prefixes must miss")
	}
}

// TestServerRFC3912 exercises the text protocol over a real TCP
// socket: one query line, one response, close.
func TestServerRFC3912(t *testing.T) {
	db := NewDB()
	db.Add(sampleRecord())
	db.Sort()
	srv := &Server{DB: db}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	rec, err := Query(ctx, addr, netip.MustParseAddr("16.12.34.56"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Org != "Ministry of Finance of Uruguay" || rec.Country != "UY" {
		t.Fatalf("query = %+v", rec)
	}

	if _, err := Query(ctx, addr, netip.MustParseAddr("99.99.99.99")); err == nil {
		t.Fatal("no-match query must error")
	}
}

func TestServerConcurrentQueries(t *testing.T) {
	db := NewDB()
	db.Add(sampleRecord())
	db.Sort()
	srv := &Server{DB: db}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := Query(ctx, addr, netip.MustParseAddr("16.12.0.1"))
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLastAddr(t *testing.T) {
	cases := map[string]string{
		"16.12.0.0/16": "16.12.255.255",
		"10.0.0.0/8":   "10.255.255.255",
		"1.2.3.4/32":   "1.2.3.4",
	}
	for in, want := range cases {
		got := lastAddr(netip.MustParsePrefix(in))
		if got.String() != want {
			t.Errorf("lastAddr(%s) = %s, want %s", in, got, want)
		}
	}
}
