// Package whois implements the public-registry lookup path of §3.4: a
// registry database derived from the synthetic Internet, an RFC 3912
// text-protocol server and client, and a response parser. The pipeline
// maps every server address to its AS number, organization and country
// of registration through this package.
package whois

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// Record is the registration data for one address block.
type Record struct {
	Prefix     netip.Prefix
	NetName    string
	ASN        int
	Org        string
	Country    string // country of registration
	Email      string // technical contact
	PeeringURL string // org website, when published
}

// DB is an in-memory registry supporting longest-prefix lookup.
type DB struct {
	mu      sync.RWMutex
	records []Record // sorted by prefix address for deterministic output
}

// NewDB returns an empty registry.
func NewDB() *DB { return &DB{} }

// Add registers a record.
func (db *DB) Add(r Record) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records = append(db.records, r)
}

// Sort finalises the database for deterministic iteration.
func (db *DB) Sort() {
	db.mu.Lock()
	defer db.mu.Unlock()
	sort.Slice(db.records, func(i, j int) bool {
		return db.records[i].Prefix.Addr().Less(db.records[j].Prefix.Addr())
	})
}

// Lookup returns the most specific record containing addr.
func (db *DB) Lookup(addr netip.Addr) (Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	best := -1
	bestBits := -1
	for i, r := range db.records {
		if r.Prefix.Contains(addr) && r.Prefix.Bits() > bestBits {
			best, bestBits = i, r.Prefix.Bits()
		}
	}
	if best < 0 {
		return Record{}, false
	}
	return db.records[best], true
}

// Len returns the number of records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Render produces the RFC 3912-style text response for a record,
// following RIPE/ARIN conventions closely enough for the parser and
// for human eyes.
func Render(r Record) string {
	var b strings.Builder
	first := r.Prefix.Addr()
	last := lastAddr(r.Prefix)
	fmt.Fprintf(&b, "inetnum:        %s - %s\n", first, last)
	fmt.Fprintf(&b, "netname:        %s\n", r.NetName)
	fmt.Fprintf(&b, "org-name:       %s\n", r.Org)
	fmt.Fprintf(&b, "country:        %s\n", r.Country)
	fmt.Fprintf(&b, "origin-as:      AS%d\n", r.ASN)
	if r.Email != "" {
		fmt.Fprintf(&b, "e-mail:         %s\n", r.Email)
	}
	if r.PeeringURL != "" {
		fmt.Fprintf(&b, "remarks:        %s\n", r.PeeringURL)
	}
	fmt.Fprintf(&b, "source:         GOVHOST-SIM\n")
	return b.String()
}

// Parse extracts a Record from a WHOIS text response; unknown keys are
// ignored, as real WHOIS output is full of registry-specific fields.
func Parse(text string) (Record, error) {
	var r Record
	sawAny := false
	for _, line := range strings.Split(text, "\n") {
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		value = strings.TrimSpace(value)
		switch strings.TrimSpace(key) {
		case "netname":
			r.NetName = value
			sawAny = true
		case "org-name", "OrgName", "organisation":
			r.Org = value
			sawAny = true
		case "country", "Country":
			r.Country = value
			sawAny = true
		case "origin-as", "OriginAS", "origin":
			var asn int
			if _, err := fmt.Sscanf(strings.TrimPrefix(value, "AS"), "%d", &asn); err == nil {
				r.ASN = asn
				sawAny = true
			}
		case "e-mail", "OrgTechEmail":
			r.Email = value
		case "remarks":
			if strings.HasPrefix(value, "http") {
				r.PeeringURL = value
			}
		case "inetnum", "NetRange":
			if p, err := parseRange(value); err == nil {
				r.Prefix = p
				sawAny = true
			}
		}
	}
	if !sawAny {
		return r, fmt.Errorf("whois: no parseable fields in response")
	}
	return r, nil
}

func parseRange(v string) (netip.Prefix, error) {
	firstStr, lastStr, ok := strings.Cut(v, "-")
	if !ok {
		return netip.ParsePrefix(strings.TrimSpace(v))
	}
	first, err := netip.ParseAddr(strings.TrimSpace(firstStr))
	if err != nil {
		return netip.Prefix{}, err
	}
	last, err := netip.ParseAddr(strings.TrimSpace(lastStr))
	if err != nil {
		return netip.Prefix{}, err
	}
	// Recover the prefix length from the range width (ranges in this
	// registry are always CIDR-aligned).
	f, l := first.As4(), last.As4()
	fv := uint32(f[0])<<24 | uint32(f[1])<<16 | uint32(f[2])<<8 | uint32(f[3])
	lv := uint32(l[0])<<24 | uint32(l[1])<<16 | uint32(l[2])<<8 | uint32(l[3])
	span := lv - fv
	bits := 32
	for span > 0 {
		span >>= 1
		bits--
	}
	return first.Prefix(bits)
}

func lastAddr(p netip.Prefix) netip.Addr {
	b := p.Addr().As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	v |= (1 << (32 - p.Bits())) - 1
	var out [4]byte
	out[0], out[1], out[2], out[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	return netip.AddrFrom4(out)
}
