package whois

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"
)

// Server answers RFC 3912 WHOIS queries over TCP: one query line,
// one text response, connection closed by the server.
type Server struct {
	DB *DB

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	shutdown bool
}

// Start listens on addr and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	//lint:ignore scheduler-bypass -- the TCP accept loop must outlive Start and is joined by Close via s.wg
	go s.serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

//lint:ignore determinism-taint -- per-connection idle deadlines on the live test wire; rendered WHOIS records are clock-free
func (s *Server) serve(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.shutdown
			s.mu.Unlock()
			if done {
				return
			}
			continue
		}
		s.wg.Add(1)
		//lint:ignore scheduler-bypass -- per-connection WHOIS replies are server plumbing, not pipeline work; joined by Close via s.wg
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			line, err := bufio.NewReader(conn).ReadString('\n')
			if err != nil && line == "" {
				return
			}
			query := strings.TrimSpace(line)
			addr, err := netip.ParseAddr(query)
			if err != nil {
				fmt.Fprintf(conn, "%% Invalid query %q\r\n", query)
				return
			}
			rec, ok := s.DB.Lookup(addr)
			if !ok {
				fmt.Fprintf(conn, "%% No match for %s\r\n", addr)
				return
			}
			fmt.Fprint(conn, Render(rec))
		}(conn)
	}
}

// Query performs one WHOIS lookup against the server at addr.
//
//lint:ignore determinism-taint -- socket-deadline fallback when the context carries none; the parsed record is clock-free
func Query(ctx context.Context, server string, addr netip.Addr) (Record, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", server)
	if err != nil {
		return Record{}, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Now().Add(5 * time.Second))
	}
	if _, err := fmt.Fprintf(conn, "%s\r\n", addr); err != nil {
		return Record{}, err
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	text := sb.String()
	if strings.HasPrefix(text, "%") {
		return Record{}, fmt.Errorf("whois: %s", strings.TrimSpace(strings.TrimPrefix(text, "%")))
	}
	return Parse(text)
}
