// Package fetch defines the minimal HTTP-fetch abstraction shared by
// the crawler and the two backends that implement it: the in-memory
// estate fetcher (fast, used for full-scale studies) and the real
// net/http fetcher (used in integration tests and examples against the
// simulated web server).
package fetch

import "context"

// Response is the result of fetching one URL.
type Response struct {
	Status      int
	ContentType string
	Body        []byte
	// BodySize is the logical body size in bytes. The in-memory
	// backend reports the generator's ground-truth size without
	// materialising padding; the HTTP backend reports len(Body).
	BodySize int64
}

// Fetcher fetches URLs from a fixed vantage point. Implementations
// must be safe for concurrent use.
type Fetcher interface {
	Fetch(ctx context.Context, url string) (*Response, error)
}
