// Package fetch defines the minimal HTTP-fetch abstraction shared by
// the crawler and the two backends that implement it: the in-memory
// estate fetcher (fast, used for full-scale studies) and the real
// net/http fetcher (used in integration tests and examples against the
// simulated web server). It also owns the failure taxonomy the
// pipeline's coverage statistics are built from: every fetch outcome —
// error or response — classifies into exactly one FailKind, and the
// classification decides whether a retry can help.
package fetch

import (
	"context"
	"errors"
	"net"
	"syscall"
)

// Response is the result of fetching one URL.
type Response struct {
	Status      int
	ContentType string
	Body        []byte
	// BodySize is the logical body size in bytes. The in-memory
	// backend reports the generator's ground-truth size without
	// materialising padding; the HTTP backend reports len(Body).
	BodySize int64
	// Truncated marks a body that was cut short — by a read cap, a
	// broken transfer, or an injected fault — so downstream stages can
	// treat the entry as a partial failure instead of silently parsing
	// half a page.
	Truncated bool
}

// Fetcher fetches URLs from a fixed vantage point. Implementations
// must be safe for concurrent use.
type Fetcher interface {
	Fetch(ctx context.Context, url string) (*Response, error)
}

// AttemptFetcher is implemented by fetchers whose behaviour depends on
// the retry attempt number — chiefly the deterministic fault injector,
// which must give attempt 2 a different (but seed-stable) outcome than
// attempt 0 so that retries can recover. The Retrier passes the
// attempt through when its inner fetcher implements this.
type AttemptFetcher interface {
	FetchAttempt(ctx context.Context, url string, attempt int) (*Response, error)
}

// FailKind is one bucket of the failure taxonomy (paper Tables 3–4
// report coverage in these terms).
type FailKind string

// The taxonomy. FailNone means the fetch is usable.
const (
	FailNone       FailKind = ""
	FailDNS        FailKind = "dns"         // name did not resolve (NXDOMAIN, SERVFAIL)
	FailTimeout    FailKind = "timeout"     // connection or read deadline expired
	FailReset      FailKind = "reset"       // connection reset mid-transfer
	FailGeoBlocked FailKind = "geo-blocked" // 403 from a domestically restricted site
	Fail5xx        FailKind = "5xx"         // upstream server error
	FailTruncated  FailKind = "truncated"   // body cut short
	FailOther      FailKind = "other"       // anything unclassified
)

// AllKinds returns every declared failure kind in report order:
// FailNone first, then the failure buckets as Tables 3–4 list them.
// Reports and accounting loops iterate this instead of hand-written
// kind lists, so a taxonomy addition shows up everywhere at once —
// govlint's failkind-switch rule enforces the same property for
// switches.
func AllKinds() []FailKind {
	return []FailKind{
		FailNone, FailDNS, FailTimeout, FailReset,
		FailGeoBlocked, Fail5xx, FailTruncated, FailOther,
	}
}

// ErrHostNotFound marks DNS-style resolution failures; backends wrap
// it so classification does not depend on error strings.
var ErrHostNotFound = errors.New("fetch: host not found")

// Failure lets an error name its own taxonomy bucket (the fault
// injector's SERVFAIL does, since no stdlib type models it).
type Failure interface {
	FailKind() FailKind
}

// Transient marks errors that a retry has a chance of clearing even
// when the taxonomy alone would call them terminal.
type Transient interface {
	Transient() bool
}

// ClassifyError maps a fetch error into the taxonomy. A nil error is
// FailNone.
func ClassifyError(err error) FailKind {
	if err == nil {
		return FailNone
	}
	var f Failure
	if errors.As(err, &f) {
		return f.FailKind()
	}
	if errors.Is(err, ErrHostNotFound) {
		return FailDNS
	}
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return FailDNS
	}
	var te interface{ Timeout() bool }
	if errors.As(err, &te) && te.Timeout() {
		return FailTimeout
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return FailReset
	}
	return FailOther
}

// ClassifyResponse maps a completed response into the taxonomy;
// FailNone for usable responses (any status outside 403/5xx with a
// complete body — a 404 is a valid answer, not a harness failure).
func ClassifyResponse(resp *Response) FailKind {
	switch {
	case resp == nil:
		return FailOther
	case resp.Status == 403:
		return FailGeoBlocked
	case resp.Status >= 500:
		return Fail5xx
	case resp.Truncated:
		return FailTruncated
	}
	return FailNone
}

// RetryableKind reports whether a failure bucket is worth retrying:
// timeouts, resets, server errors and truncations are transient on the
// live web; NXDOMAIN and geo-blocks are verdicts. The switch
// deliberately enumerates every kind with no default so that adding a
// taxonomy entry forces an explicit retry decision here (govlint's
// failkind-switch rule breaks the build otherwise).
func RetryableKind(k FailKind) bool {
	switch k {
	case FailTimeout, FailReset, Fail5xx, FailTruncated:
		return true
	case FailNone, FailDNS, FailGeoBlocked, FailOther:
		return false
	}
	return false
}

// RetryableError reports whether retrying the fetch might succeed. An
// explicit Transient marker wins; otherwise the taxonomy decides, with
// temporary DNS errors (SERVFAIL-style) also retryable.
func RetryableError(err error) bool {
	if err == nil {
		return false
	}
	var tr Transient
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return dnsErr.Temporary()
	}
	return RetryableKind(ClassifyError(err))
}
