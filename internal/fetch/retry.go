package fetch

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// RetryBudget caps how many extra attempts a whole study may spend;
// sched.Budget implements it. A nil budget means unlimited.
type RetryBudget interface {
	// Acquire consumes one retry token, reporting false when the
	// budget is exhausted.
	Acquire() bool
}

// RetryPolicy parameterises the Retrier. The zero value is usable:
// three attempts per URL, 1ms–50ms capped exponential backoff (the
// synthetic web answers in microseconds, so real-web second-scale
// backoffs would only slow the harness), no per-attempt timeout.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per URL including
	// the first; 0 means 3, negative means exactly one attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means 50ms.
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt; 0 leaves only
	// the caller's context deadline.
	PerAttemptTimeout time.Duration
	// Seed drives the backoff jitter: the delay before retry n of a
	// URL is a pure function of (Seed, url, n), so equal seeds sleep
	// equal schedules regardless of worker interleaving.
	Seed int64
}

func (p RetryPolicy) maxAttempts() int {
	switch {
	case p.MaxAttempts == 0:
		return 3
	case p.MaxAttempts < 0:
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay == 0 {
		return time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay == 0 {
		return 50 * time.Millisecond
	}
	return p.MaxDelay
}

// RetryStats is a snapshot of a Retrier's counters.
type RetryStats struct {
	Attempts     uint64 // individual fetch attempts issued
	Retries      uint64 // attempts beyond each URL's first
	BudgetDenied uint64 // retries skipped because the study budget ran dry
}

// Retrier wraps a Fetcher with classification-driven retries: terminal
// failures (NXDOMAIN, geo-blocks) return immediately, transient ones
// (timeouts, resets, 5xx, truncation) retry up to the policy's attempt
// cap with capped exponential backoff and seeded jitter. When the
// inner fetcher is attempt-aware the attempt number is passed through,
// which is what lets the deterministic fault injector heal a host on a
// later attempt. Safe for concurrent use.
type Retrier struct {
	Inner  Fetcher
	Policy RetryPolicy
	// Budget, when non-nil, is consulted before every retry; it is the
	// study-wide valve that keeps a fault storm from starving fresh
	// work. Exhaustion downgrades failures to terminal, it never
	// aborts.
	Budget RetryBudget
	// Metrics, when non-nil, receives the study-wide attempt/retry
	// ledger on top of the per-Retrier counters below. Attempt and
	// retry counts are deterministic; budget denials are not.
	Metrics *metrics.FetchMetrics

	attempts, retries, denied atomic.Uint64
}

// Fetch implements Fetcher.
func (r *Retrier) Fetch(ctx context.Context, url string) (*Response, error) {
	max := r.Policy.maxAttempts()
	af, _ := r.Inner.(AttemptFetcher)
	var resp *Response
	var err error
	for attempt := 0; attempt < max; attempt++ {
		actx, cancel := ctx, func() {}
		if t := r.Policy.PerAttemptTimeout; t > 0 {
			//lint:ignore context-cancel -- per-attempt context; cancel() runs unconditionally right after the attempt, a defer would pile timers up across the retry loop
			actx, cancel = context.WithTimeout(ctx, t)
		}
		if af != nil {
			resp, err = af.FetchAttempt(actx, url, attempt)
		} else {
			resp, err = r.Inner.Fetch(actx, url)
		}
		cancel()
		r.attempts.Add(1)
		r.Metrics.RecordAttempt()

		// The failure kind both drives the retry decision and labels
		// the retry in the study ledger.
		var retryable bool
		var kind FailKind
		if err != nil {
			retryable = RetryableError(err)
			kind = ClassifyError(err)
		} else {
			kind = ClassifyResponse(resp)
			retryable = RetryableKind(kind)
		}
		if !retryable || attempt+1 >= max {
			return resp, err
		}
		// A dead parent context explains any failure; do not spin on it.
		if ctx.Err() != nil {
			return resp, err
		}
		if r.Budget != nil && !r.Budget.Acquire() {
			r.denied.Add(1)
			r.Metrics.RecordBudgetDenied()
			return resp, err
		}
		r.retries.Add(1)
		r.Metrics.RecordRetry(string(kind))
		if !sleepCtx(ctx, r.backoff(url, attempt)) {
			return resp, err
		}
	}
	return resp, err
}

// backoff computes the deterministic delay before retrying url after
// its attempt-th try: exponential from BaseDelay, capped at MaxDelay,
// scaled by a jitter factor in [0.5, 1.0) hashed from (seed, url,
// attempt) — seeded jitter without any shared random stream, so equal
// seeds give equal schedules at any concurrency.
func (r *Retrier) backoff(url string, attempt int) time.Duration {
	d := r.Policy.baseDelay() << uint(attempt)
	if m := r.Policy.maxDelay(); d > m || d <= 0 {
		d = m
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(r.Policy.Seed))
	h.Write(buf[:])
	h.Write([]byte(url))
	binary.LittleEndian.PutUint32(buf[:4], uint32(attempt))
	h.Write(buf[:4])
	frac := float64(h.Sum64()%1024) / 1024
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// sleepCtx waits d or until ctx is done, reporting whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Stats snapshots the counters.
func (r *Retrier) Stats() RetryStats {
	return RetryStats{
		Attempts:     r.attempts.Load(),
		Retries:      r.retries.Load(),
		BudgetDenied: r.denied.Load(),
	}
}
