package fetch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scriptFetcher returns a scripted sequence of outcomes per URL and
// records how many attempts it saw.
type scriptFetcher struct {
	mu       sync.Mutex
	script   map[string][]outcome // consumed front to back; last repeats
	attempts map[string][]int     // attempt numbers observed per URL
}

type outcome struct {
	resp *Response
	err  error
}

func newScriptFetcher() *scriptFetcher {
	return &scriptFetcher{script: map[string][]outcome{}, attempts: map[string][]int{}}
}

func (f *scriptFetcher) add(url string, outs ...outcome) { f.script[url] = outs }

func (f *scriptFetcher) Fetch(ctx context.Context, url string) (*Response, error) {
	return f.FetchAttempt(ctx, url, 0)
}

func (f *scriptFetcher) FetchAttempt(ctx context.Context, url string, attempt int) (*Response, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts[url] = append(f.attempts[url], attempt)
	outs := f.script[url]
	if len(outs) == 0 {
		return &Response{Status: 200}, nil
	}
	o := outs[0]
	if len(outs) > 1 {
		f.script[url] = outs[1:]
	}
	return o.resp, o.err
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "deadline exceeded (test)" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestRetrierFlakyThenSuccess(t *testing.T) {
	f := newScriptFetcher()
	f.add("u", outcome{err: timeoutErr{}}, outcome{err: timeoutErr{}}, outcome{resp: &Response{Status: 200}})
	r := &Retrier{Inner: f, Policy: RetryPolicy{BaseDelay: time.Microsecond}}
	resp, err := r.Fetch(context.Background(), "u")
	if err != nil || resp.Status != 200 {
		t.Fatalf("got %v, %+v", err, resp)
	}
	if got := f.attempts["u"]; len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("attempt sequence %v, want [0 1 2]", got)
	}
	st := r.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.BudgetDenied != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestRetrierTerminalNoRetry(t *testing.T) {
	f := newScriptFetcher()
	f.add("nx", outcome{err: fmt.Errorf("resolve: %w", ErrHostNotFound)})
	f.add("geo", outcome{resp: &Response{Status: 403}})
	r := &Retrier{Inner: f, Policy: RetryPolicy{BaseDelay: time.Microsecond}}

	if _, err := r.Fetch(context.Background(), "nx"); !errors.Is(err, ErrHostNotFound) {
		t.Fatalf("err = %v", err)
	}
	if n := len(f.attempts["nx"]); n != 1 {
		t.Errorf("NXDOMAIN fetched %d times, want 1", n)
	}
	resp, err := r.Fetch(context.Background(), "geo")
	if err != nil || resp.Status != 403 {
		t.Fatalf("got %v, %+v", err, resp)
	}
	if n := len(f.attempts["geo"]); n != 1 {
		t.Errorf("geo-block fetched %d times, want 1", n)
	}
}

func TestRetrierRetries5xxAndTruncation(t *testing.T) {
	f := newScriptFetcher()
	f.add("five", outcome{resp: &Response{Status: 502}}, outcome{resp: &Response{Status: 200}})
	f.add("trunc", outcome{resp: &Response{Status: 200, Truncated: true}}, outcome{resp: &Response{Status: 200}})
	r := &Retrier{Inner: f, Policy: RetryPolicy{BaseDelay: time.Microsecond}}
	for _, u := range []string{"five", "trunc"} {
		resp, err := r.Fetch(context.Background(), u)
		if err != nil || resp.Status != 200 || resp.Truncated {
			t.Fatalf("%s: got %v, %+v", u, err, resp)
		}
		if n := len(f.attempts[u]); n != 2 {
			t.Errorf("%s fetched %d times, want 2", u, n)
		}
	}
}

func TestRetrierAttemptsExhausted(t *testing.T) {
	f := newScriptFetcher()
	f.add("u", outcome{err: timeoutErr{}})
	r := &Retrier{Inner: f, Policy: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond}}
	_, err := r.Fetch(context.Background(), "u")
	if err == nil {
		t.Fatal("exhausted retries returned success")
	}
	if n := len(f.attempts["u"]); n != 4 {
		t.Errorf("fetched %d times, want 4", n)
	}
	if ClassifyError(err) != FailTimeout {
		t.Errorf("final error classified %q", ClassifyError(err))
	}
}

func TestRetrierNegativeMaxAttempts(t *testing.T) {
	f := newScriptFetcher()
	f.add("u", outcome{err: timeoutErr{}})
	r := &Retrier{Inner: f, Policy: RetryPolicy{MaxAttempts: -1}}
	if _, err := r.Fetch(context.Background(), "u"); err == nil {
		t.Fatal("want error")
	}
	if n := len(f.attempts["u"]); n != 1 {
		t.Errorf("fetched %d times, want exactly 1", n)
	}
}

// fixedBudget allows n acquisitions.
type fixedBudget struct {
	mu sync.Mutex
	n  int
}

func (b *fixedBudget) Acquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n <= 0 {
		return false
	}
	b.n--
	return true
}

func TestRetrierBudgetDenial(t *testing.T) {
	f := newScriptFetcher()
	f.add("u", outcome{err: timeoutErr{}})
	r := &Retrier{
		Inner:  f,
		Policy: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond},
		Budget: &fixedBudget{n: 1},
	}
	if _, err := r.Fetch(context.Background(), "u"); err == nil {
		t.Fatal("want error")
	}
	// 1 initial + 1 budgeted retry; the second retry is denied.
	if n := len(f.attempts["u"]); n != 2 {
		t.Errorf("fetched %d times, want 2", n)
	}
	st := r.Stats()
	if st.Retries != 1 || st.BudgetDenied != 1 {
		t.Errorf("stats %+v", st)
	}
}

// slowFetcher blocks until its context dies.
type slowFetcher struct{}

func (slowFetcher) Fetch(ctx context.Context, url string) (*Response, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestRetrierPerAttemptTimeout(t *testing.T) {
	r := &Retrier{
		Inner: slowFetcher{},
		Policy: RetryPolicy{
			MaxAttempts: 2, PerAttemptTimeout: time.Millisecond, BaseDelay: time.Microsecond,
		},
	}
	start := time.Now()
	_, err := r.Fetch(context.Background(), "u")
	if err == nil {
		t.Fatal("want timeout error")
	}
	if ClassifyError(err) != FailTimeout {
		t.Errorf("classified %q", ClassifyError(err))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("per-attempt timeout did not bound the fetch: %v", elapsed)
	}
	if st := r.Stats(); st.Attempts != 2 {
		t.Errorf("stats %+v, want 2 attempts", st)
	}
}

func TestRetrierCancelledParentStopsRetrying(t *testing.T) {
	f := newScriptFetcher()
	f.add("u", outcome{err: timeoutErr{}})
	r := &Retrier{Inner: f, Policy: RetryPolicy{MaxAttempts: 10, BaseDelay: time.Microsecond}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Fetch(ctx, "u"); err == nil {
		t.Fatal("want error")
	}
	if n := len(f.attempts["u"]); n != 1 {
		t.Errorf("fetched %d times against a dead context, want 1", n)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	a := &Retrier{Policy: RetryPolicy{Seed: 42}}
	b := &Retrier{Policy: RetryPolicy{Seed: 42}}
	c := &Retrier{Policy: RetryPolicy{Seed: 43}}
	diverged := false
	for attempt := 0; attempt < 8; attempt++ {
		for _, u := range []string{"u1", "u2", "u3"} {
			da, db := a.backoff(u, attempt), b.backoff(u, attempt)
			if da != db {
				t.Fatalf("same seed diverged: %v vs %v", da, db)
			}
			if da != c.backoff(u, attempt) {
				diverged = true
			}
			max := a.Policy.maxDelay()
			if da < a.Policy.baseDelay()/2 && attempt == 0 || da > max {
				t.Errorf("backoff(%s, %d) = %v out of [base/2, max=%v]", u, attempt, da, max)
			}
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 gave identical backoff schedules")
	}
}

func TestClassifyResponse(t *testing.T) {
	cases := []struct {
		resp *Response
		want FailKind
	}{
		{&Response{Status: 200}, FailNone},
		{&Response{Status: 403}, FailGeoBlocked},
		{&Response{Status: 500}, Fail5xx},
		{&Response{Status: 503}, Fail5xx},
		{&Response{Status: 200, Truncated: true}, FailTruncated},
	}
	for _, c := range cases {
		if got := ClassifyResponse(c.resp); got != c.want {
			t.Errorf("ClassifyResponse(%+v) = %q, want %q", c.resp, got, c.want)
		}
	}
}
